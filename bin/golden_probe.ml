let () =
  (* probe deterministic values for golden tests *)
  let g = Generators.random_regular (Prng.create 1) 60 20 in
  Printf.printf "g m=%d\n" (Graph.m g);
  let t = Regular_dc.build (Prng.create 2) g in
  Printf.printf "alg1 m=%d sampled=%d reinserted=%d repaired=%d\n"
    (Graph.m t.Regular_dc.spanner) (Graph.m t.Regular_dc.sampled) t.Regular_dc.reinserted t.Regular_dc.repaired;
  let e = Expander_dc.build (Prng.create 3) g in
  Printf.printf "thm2 m=%d p=%.6f\n" (Graph.m e.Expander_dc.spanner) e.Expander_dc.p;
  let dc = Regular_dc.to_dc t g in
  let r = Dc.measure_matching dc (Prng.create 4) ~trials:3 in
  Printf.printf "match mean=%.6f max=%d\n" r.Dc.mean_congestion r.Dc.max_congestion;
  let h = Classic.baswana_sen_3 (Prng.create 5) g in
  Printf.printf "bs m=%d\n" (Graph.m h);
  let gr = Classic.greedy g ~k:2 in
  Printf.printf "greedy m=%d\n" (Graph.m gr);
  let lam = Spectral.lambda (Csr.snapshot g) in
  Printf.printf "lambda=%.6f\n" lam;
  let dist = Dist_spanner.run ~seed:6 g in
  Printf.printf "dist m=%d messages=%d\n" (Graph.m dist.Dist_spanner.spanner) dist.Dist_spanner.messages
