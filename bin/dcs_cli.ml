(* dcs — command-line interface to the DC-spanner library.

   Subcommands:
     graph        generate a graph family and print its statistics
     spanner      build a spanner and measure both stretches
     list         print the construction registry (premises, guarantees, references)
     faults       inject faults, simulate degraded routing, self-heal the spanner
     lowerbound   run the Theorem 4 lower-bound experiment
     distributed  run the Corollary 3 LOCAL protocol

   Examples:
     dune exec bin/dcs_cli.exe -- graph --family regular --n 343 --degree 60
     dune exec bin/dcs_cli.exe -- spanner --algorithm algorithm1 --n 343 --degree 60
     dune exec bin/dcs_cli.exe -- list --json
     dune exec bin/dcs_cli.exe -- lowerbound --k 8 --instances 50 --pool 1400
     dune exec bin/dcs_cli.exe -- distributed --n 100 --degree 24 --seed 7 *)

open Cmdliner

let ( let* ) = Result.bind

(* ---- observability (global flags, every subcommand) ---- *)

let obs_term =
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON trace of the run to $(docv) (open in \
             chrome://tracing or ui.perfetto.dev).  Equivalent to setting $(b,DCS_TRACE).")
  in
  let metrics_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Dump the metrics registry (counters, gauges, histograms) to $(docv) at exit — \
             JSON, or CSV when $(docv) ends in .csv.  Equivalent to setting $(b,DCS_METRICS).")
  in
  let log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:
            "Append structured JSONL events (faults, repairs, premise violations) to $(docv) at \
             Info level.  Equivalent to setting $(b,DCS_LOG); $(b,DCS_LOG_LEVEL) picks the \
             threshold.")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Record spans in memory and print a per-phase profile (wall time, allocation, major \
             GCs) on exit.")
  in
  let print_profile () =
    match Trace.profile () with
    | [] -> ()
    | rows ->
        let human us =
          if us > 1e6 then Printf.sprintf "%.2f s" (us /. 1e6)
          else if us > 1e3 then Printf.sprintf "%.2f ms" (us /. 1e3)
          else Printf.sprintf "%.0f us" us
        in
        let words w =
          if w > 1e6 then Printf.sprintf "%.2f Mw" (w /. 1e6)
          else if w > 1e3 then Printf.sprintf "%.1f kw" (w /. 1e3)
          else Printf.sprintf "%.0f w" w
        in
        Printf.printf "\nprofile (per span, busiest first):\n";
        Printf.printf "  %-28s %8s %10s %10s %12s %12s %6s\n" "span" "count" "total" "mean"
          "minor alloc" "major alloc" "mGCs";
        List.iter
          (fun r ->
            Printf.printf "  %-28s %8d %10s %10s %12s %12s %6d\n" r.Trace.pname r.Trace.pcount
              (human r.Trace.ptotal_us)
              (human (r.Trace.ptotal_us /. float_of_int (max 1 r.Trace.pcount)))
              (words r.Trace.pminor_words) (words r.Trace.pmajor_words)
              r.Trace.pmajor_collections)
          rows
  in
  let setup trace metrics log profile =
    Option.iter (fun f -> Trace.enable ~file:f) trace;
    Option.iter (fun f -> Metrics.enable ~file:f) metrics;
    Option.iter (fun f -> Log.enable ~file:f ()) log;
    if profile then begin
      Obs.set_tracing true;
      at_exit print_profile
    end;
    Resource.sample ();
    at_exit Resource.sample
  in
  Term.(const setup $ trace_arg $ metrics_arg $ log_arg $ profile_arg)

(* ---- graph families ---- *)

(* Malformed input files surface as a proper runtime error (exit 123) with
   the file/line context carried by [Io_error.Parse_error], not a crash. *)
let catch_parse f =
  try Ok (f ())
  with Io_error.Parse_error { file; line; msg } -> Error (Io_error.message ~file ~line msg)

(* Unknown names return [Error] (surfaced through [Term.term_result'] as a
   proper error message + usage), never an uncaught exception. *)
let make_graph ?input ?(w_max = 0) ~family ~n ~degree ~p ~seed () =
  if w_max < 0 then Error "w-max must be >= 0"
  else
    match input with
    | Some path -> catch_parse (fun () -> Graph_io.read path)
    | None -> (
        let rng = Prng.create seed in
        (* w_max > 0 turns any family weighted: torus and expander have native
           weighted generators, everything else redraws weights on its edge set *)
        let reweight g = if w_max > 0 then Generators.randomize_weights rng g ~w_max else g in
        match family with
        | "regular" ->
            let d = if n * degree mod 2 = 1 then degree + 1 else degree in
            Ok (reweight (Generators.random_regular rng n d))
        | "margulis" ->
            let m = int_of_float (ceil (sqrt (float_of_int n))) in
            Ok (reweight (Generators.margulis m))
        | "torus" ->
            let side = int_of_float (ceil (sqrt (float_of_int n))) in
            if w_max > 0 then Ok (Generators.weighted_torus rng side side ~w_max)
            else Ok (Generators.torus side side)
        | "hypercube" ->
            let d = int_of_float (ceil (log (float_of_int n) /. log 2.0)) in
            Ok (reweight (Generators.hypercube d))
        | "erdos" -> Ok (reweight (Generators.erdos_renyi rng n p))
        | "expander" ->
            (* streaming O(n + m) build — the family that scales to 10^6 nodes *)
            let nn = max 3 n and d = max 2 (min degree (n - 1)) in
            if w_max > 0 then Ok (Generators.weighted_expander rng nn d ~w_max)
            else Ok (Generators.expander rng nn d)
        | "complete" -> Ok (reweight (Generators.complete n))
        | "two-cliques" ->
            Ok (reweight (Generators.two_cliques_matching (if n mod 2 = 1 then n + 1 else n)))
        | "ring" -> Ok (reweight (Generators.ring_of_cliques (max 2 (n / 20)) 20))
        | other ->
            Error
              (Printf.sprintf
                 "unknown graph family %S (expected regular | margulis | torus | hypercube | \
                  erdos | expander | complete | two-cliques | ring)"
                 other))

let family_arg =
  let doc =
    "Graph family: regular | margulis | torus | hypercube | erdos | expander | complete | \
     two-cliques | ring."
  in
  Arg.(value & opt string "regular" & info [ "family"; "f" ] ~docv:"FAMILY" ~doc)

let n_arg = Arg.(value & opt int 343 & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Number of nodes.")

let degree_arg =
  Arg.(value & opt int 60 & info [ "degree"; "d" ] ~docv:"D" ~doc:"Degree for regular families.")

let p_arg =
  Arg.(value & opt float 0.1 & info [ "prob"; "p" ] ~docv:"P" ~doc:"Edge probability (erdos family).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"PRNG seed.")

let w_max_arg =
  Arg.(
    value & opt int 0
    & info [ "w-max" ] ~docv:"W"
        ~doc:
          "Draw integer edge weights uniformly from [1, $(docv)] (0 = unweighted).  Distances \
           and stretch bounds then count weight, not hops.")

let trials_arg =
  Arg.(value & opt int 5 & info [ "trials"; "t" ] ~docv:"T" ~doc:"Matching trials to measure.")

let input_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "input" ] ~docv:"FILE" ~doc:"Read the graph from an edge-list file instead of generating it.")

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "output"; "o" ] ~docv:"FILE"
        ~doc:"Write the (generated graph | computed spanner) as an edge-list file.")

(* ---- graph ---- *)

let graph_cmd =
  let run () family n degree p seed w_max input output =
    let* g = make_graph ?input ~w_max ~family ~n ~degree ~p ~seed () in
    (match output with None -> () | Some path -> Graph_io.write g path);
    let c = Csr.snapshot g in
    let rng = Prng.create (seed + 1) in
    Printf.printf "family:      %s\n" family;
    Printf.printf "nodes:       %d\n" (Graph.n g);
    Printf.printf "edges:       %d\n" (Graph.m g);
    if Graph.is_weighted g then begin
      let wmax = ref 1 in
      Graph.iter_edges_w g (fun _ _ w -> if w > !wmax then wmax := w);
      Printf.printf "weights:     positive integers, max %d\n" !wmax
    end;
    Printf.printf "degree:      min %d, max %d%s\n" (Graph.min_degree g) (Graph.max_degree g)
      (if Graph.is_regular g then " (regular)" else "");
    Printf.printf "connected:   %b (%d components)\n" (Connectivity.is_connected g)
      (Connectivity.count g);
    Printf.printf "lambda:      %.3f (expansion ratio %.3f)\n" (Spectral.lambda c)
      (Spectral.expansion_ratio c);
    (match Bfs.diameter_sampled c rng ~samples:20 with
    | d when d = max_int -> Printf.printf "diameter:    inf (disconnected)\n"
    | d -> Printf.printf "diameter:    >= %d (sampled)\n" d);
    Ok ()
  in
  let term =
    Term.term_result' ~usage:true
      Term.(
        const run $ obs_term $ family_arg $ n_arg $ degree_arg $ p_arg $ seed_arg $ w_max_arg
        $ input_arg $ output_arg)
  in
  Cmd.v (Cmd.info "graph" ~doc:"Generate a graph family and print its statistics.") term

(* ---- spanner ---- *)

(* Name parsing, the accepted-names doc string, premise validation and the
   [list] subcommand below are all derived from the construction registry:
   a new construction registered in [Construction.all] shows up in every
   subcommand without touching this file. *)

let algorithm_arg =
  let doc = "Spanner construction: " ^ Construction.expected ^ "." in
  Arg.(value & opt string "algorithm1" & info [ "algorithm"; "a" ] ~docv:"ALGO" ~doc)

let general_arg =
  Arg.(value & flag & info [ "general" ] ~doc:"Also measure a permutation routing problem.")

let spanner_cmd =
  let run () family n degree p seed w_max algorithm trials general input output =
    let* g = make_graph ?input ~w_max ~family ~n ~degree ~p ~seed () in
    let* ctor = Construction.find algorithm in
    let rng = Prng.create (seed + 1) in
    let dc = Construction.build ctor rng g in
    Printf.printf "construction: %s\n" dc.Dc.name;
    Printf.printf "guarantee:    %s\n" ctor.Construction.guarantee;
    List.iter (Printf.printf "warning:      %s\n") (Construction.premise_warnings ctor g);
    let row = Experiment.evaluate ~trials ~with_general:general rng dc in
    Printf.printf "graph:        n=%d m=%d lambda=%.2f\n" row.Experiment.n row.Experiment.m_graph
      row.Experiment.lambda;
    Printf.printf "spanner:      m=%d (%.1f%% of G), lambda=%.2f\n" row.Experiment.m_spanner
      (100.0 *. float_of_int row.Experiment.m_spanner /. float_of_int (max 1 row.Experiment.m_graph))
      row.Experiment.lambda_spanner;
    Printf.printf "dist stretch: %s\n"
      (if row.Experiment.dist_stretch = max_int then "disconnected"
       else string_of_int row.Experiment.dist_stretch);
    Printf.printf "matching congestion: mean %.2f, max %d over %d trials\n"
      row.Experiment.matching.Dc.mean_congestion row.Experiment.matching.Dc.max_congestion trials;
    (match row.Experiment.general with
    | None -> ()
    | Some gen ->
        Printf.printf "permutation routing: C_G=%d C_H=%d stretch=%.2f path-stretch=%.1f\n"
          gen.Dc.base_congestion gen.Dc.spanner_congestion gen.Dc.stretch gen.Dc.dist_stretch);
    (match output with
    | None -> ()
    | Some path ->
        Graph_io.write dc.Dc.spanner path;
        Printf.printf "spanner written to %s\n" path);
    Ok ()
  in
  let term =
    Term.term_result' ~usage:true
      Term.(
        const run $ obs_term $ family_arg $ n_arg $ degree_arg $ p_arg $ seed_arg $ w_max_arg
        $ algorithm_arg $ trials_arg $ general_arg $ input_arg $ output_arg)
  in
  Cmd.v (Cmd.info "spanner" ~doc:"Build a spanner and measure both stretches.") term

(* ---- list ---- *)

let list_cmd =
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the registry as a JSON document.")
  in
  let run () json =
    if json then print_string (Construction.to_json ())
    else begin
      (* every row below is generated from [Construction.all]; nothing here
         is hand-maintained per construction *)
      let header = [ "name"; "aliases"; "premise"; "guarantee"; "params"; "n^e"; "reference" ] in
      let rows =
        List.map
          (fun c ->
            [
              c.Construction.name;
              (match c.Construction.aliases with [] -> "-" | a -> String.concat "," a);
              Premise.requirement_text c.Construction.premise;
              c.Construction.guarantee;
              Construction.params_text c;
              Printf.sprintf "%.2f" c.Construction.edge_exponent;
              c.Construction.reference;
            ])
          Construction.all
      in
      let widths =
        List.fold_left
          (fun ws row -> List.map2 (fun w cell -> max w (String.length cell)) ws row)
          (List.map String.length header) rows
      in
      let print_row row =
        print_string
          (String.concat "  " (List.map2 (fun w cell -> Printf.sprintf "%-*s" w cell) widths row));
        print_newline ()
      in
      print_row header;
      print_row (List.map (fun w -> String.make w '-') widths);
      List.iter print_row rows
    end
  in
  let term = Term.(const run $ obs_term $ json_arg) in
  Cmd.v
    (Cmd.info "list" ~doc:"List every registered spanner construction (premise, guarantee, reference).")
    term

(* ---- lowerbound ---- *)

let lowerbound_cmd =
  let k_arg = Arg.(value & opt int 8 & info [ "faces"; "k" ] ~docv:"K" ~doc:"Faces per instance.") in
  let instances_arg =
    Arg.(value & opt int 50 & info [ "instances"; "i" ] ~docv:"I" ~doc:"Number of instances.")
  in
  let pool_arg =
    Arg.(value & opt int 1400 & info [ "pool" ] ~docv:"POOL" ~doc:"Shared line-node pool size.")
  in
  let run () k instances pool seed =
    let rng = Prng.create seed in
    let t = Theorem4.make rng ~pool ~instances ~k in
    let g = t.Theorem4.graph in
    let h, removed = Theorem4.optimal_spanner t in
    let cut = Array.fold_left (fun acc r -> acc + Array.length r) 0 removed in
    Printf.printf "graph:   n=%d m=%d (%d instances, k=%d)\n" (Graph.n g) (Graph.m g) instances k;
    Printf.printf "spanner: m=%d (removed %d), distance stretch %d\n" (Graph.m h) cut
      (Stretch.exact g h);
    let n = Graph.n g in
    let worst = ref 0 in
    for i = 0 to instances - 1 do
      worst := max !worst (Routing.congestion ~n (Theorem4.forced_routing t i))
    done;
    Printf.printf "congestion stretch: %d (claim >= (2k-1)/4 = %.2f)\n" !worst
      (float_of_int ((2 * k) - 1) /. 4.0)
  in
  let term = Term.(const run $ obs_term $ k_arg $ instances_arg $ pool_arg $ seed_arg) in
  Cmd.v (Cmd.info "lowerbound" ~doc:"Run the Theorem 4 lower-bound experiment.") term

(* ---- check ---- *)

let check_cmd =
  let alpha_arg =
    Arg.(value & opt float 3.0 & info [ "alpha" ] ~docv:"A" ~doc:"Distance stretch bound.")
  in
  let beta_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "beta" ] ~docv:"B"
          ~doc:"Congestion stretch bound (default: the Theorem 3 envelope 12(1+2sqrt(D))log n).")
  in
  let run () family n degree p seed w_max algorithm trials alpha beta input =
    let* g = make_graph ?input ~w_max ~family ~n ~degree ~p ~seed () in
    let* ctor = Construction.find algorithm in
    let rng = Prng.create (seed + 1) in
    let dc = Construction.build ctor rng g in
    let beta =
      match beta with
      | Some b -> b
      | None ->
          let delta = float_of_int (max 1 (Graph.max_degree g)) in
          12.0 *. (1.0 +. (2.0 *. sqrt delta)) *. Stats.log2 (float_of_int (max 2 (Graph.n g)))
    in
    Printf.printf "construction: %s on n=%d m=%d\n" dc.Dc.name (Graph.n g) (Graph.m g);
    Printf.printf "checking the (%.1f, %.1f)-DC property over %d sampled routings...\n" alpha beta
      trials;
    let e = Dc_check.estimate ~trials ~alpha ~beta dc rng in
    Printf.printf "rho (Definition 4): %d/%d = %.3f\n" e.Dc_check.successes e.Dc_check.trials
      e.Dc_check.rate;
    Printf.printf "worst distance stretch observed:   %.2f\n" e.Dc_check.worst_dist;
    Printf.printf "worst congestion stretch observed: %.2f\n" e.Dc_check.worst_cong;
    (if e.Dc_check.cert_dist = max_int then
       Printf.printf "exact distance certificate:        disconnected\n"
     else
       Printf.printf "exact distance certificate:        %d (all removed edges)\n"
         e.Dc_check.cert_dist);
    Ok ()
  in
  let term =
    Term.term_result' ~usage:true
      Term.(
        const run $ obs_term $ family_arg $ n_arg $ degree_arg $ p_arg $ seed_arg $ w_max_arg
        $ algorithm_arg $ trials_arg $ alpha_arg $ beta_arg $ input_arg)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Empirically verify the (alpha, beta)-DC property of a construction.")
    term

(* ---- route ---- *)

let route_cmd =
  let strategy_arg =
    Arg.(
      value & opt string "optimizer"
      & info [ "strategy" ] ~docv:"S"
          ~doc:"Routing strategy: det-sp | random-sp | valiant | optimizer.")
  in
  let requests_arg =
    Arg.(
      value & opt int 0
      & info [ "requests"; "r" ] ~docv:"R"
          ~doc:"Number of random requests (0 = a full random permutation).")
  in
  let problem_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "problem" ] ~docv:"FILE" ~doc:"Read the routing problem from a file (see Routing_io).")
  in
  let run () family n degree p seed strategy requests input problem_file =
    let* g = make_graph ?input ~family ~n ~degree ~p ~seed () in
    let c = Csr.snapshot g in
    let rng = Prng.create (seed + 1) in
    let* problem =
      match problem_file with
      | Some path -> catch_parse (fun () -> Routing_io.read ~n:(Graph.n g) path)
      | None ->
          Ok
            (if requests <= 0 then Problems.permutation rng g
             else Problems.random_pairs rng g ~k:requests)
    in
    let* routing =
      match strategy with
      | "det-sp" -> Ok (Sp_routing.route c problem)
      | "random-sp" -> Ok (Sp_routing.route_random c rng problem)
      | "valiant" -> Ok (Valiant.route c rng problem)
      | "optimizer" -> Ok (Congestion_opt.route c rng problem)
      | other ->
          Error
            (Printf.sprintf
               "unknown strategy %S (expected det-sp | random-sp | valiant | optimizer)" other)
    in
    let nn = Graph.n g in
    let max_len = Array.fold_left (fun acc pth -> max acc (Routing.length pth)) 0 routing in
    Printf.printf "graph:      n=%d m=%d (%s)\n" nn (Graph.m g) family;
    Printf.printf "problem:    %d requests\n" (Array.length problem);
    Printf.printf "strategy:   %s\n" strategy;
    Printf.printf "congestion: %d (node), %d (edge)\n"
      (Routing.congestion ~n:nn routing)
      (Routing.edge_congestion ~n:nn routing);
    Printf.printf "max hops:   %d\n" max_len;
    Ok ()
  in
  let term =
    Term.term_result' ~usage:true
      Term.(
        const run $ obs_term $ family_arg $ n_arg $ degree_arg $ p_arg $ seed_arg $ strategy_arg
        $ requests_arg $ input_arg $ problem_arg)
  in
  Cmd.v (Cmd.info "route" ~doc:"Route a workload on a graph and report congestion.") term

(* ---- verify ---- *)

let verify_cmd =
  let graph_file_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "graph"; "g" ] ~docv:"FILE" ~doc:"The original graph (edge-list file).")
  in
  let spanner_file_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "spanner" ] ~docv:"FILE" ~doc:"The candidate spanner (edge-list file).")
  in
  let run () graph_file spanner_file seed trials =
    let* g = catch_parse (fun () -> Graph_io.read graph_file) in
    let* h = catch_parse (fun () -> Graph_io.read spanner_file) in
    let* () =
      if Graph.n g <> Graph.n h then
        Error
          (Printf.sprintf "node counts differ: the graph has %d nodes, the spanner has %d"
             (Graph.n g) (Graph.n h))
      else Ok ()
    in
    let sub = Graph.is_subgraph h ~of_:g in
    Printf.printf "spanner is a subgraph of the graph: %b\n" sub;
    if sub then begin
      let dist = Stretch.exact g h in
      Printf.printf "distance stretch: %s\n"
        (if dist = max_int then "unbounded (disconnects some pair)" else string_of_int dist);
      if dist < max_int then begin
        let dc = Dc.of_sp_router ~name:"verify" ~graph:g ~spanner:h in
        let rng = Prng.create seed in
        let r = Dc.measure_matching dc rng ~trials in
        Printf.printf
          "matching congestion stretch over %d trials: mean %.2f, max %d (optimum 1)\n" trials
          r.Dc.mean_congestion r.Dc.max_congestion
      end
    end;
    Ok ()
  in
  let term =
    Term.term_result' ~usage:true
      Term.(const run $ obs_term $ graph_file_arg $ spanner_file_arg $ seed_arg $ trials_arg)
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify subgraph, distance stretch and congestion of a spanner file.")
    term

(* ---- faults ---- *)

let faults_cmd =
  let rate_arg =
    Arg.(
      value & opt float 0.05
      & info [ "fail-rate" ] ~docv:"P"
          ~doc:"Independent failure probability per node/edge (modes nodes and edges).")
  in
  let mode_arg =
    Arg.(
      value & opt string "nodes"
      & info [ "fail-mode" ] ~docv:"MODE"
          ~doc:"Fault model: nodes | edges | adversarial (kill the most-loaded nodes).")
  in
  let round_arg =
    Arg.(
      value & opt int 2
      & info [ "fail-round" ] ~docv:"R" ~doc:"Simulation round at which the faults strike.")
  in
  let kill_arg =
    Arg.(
      value & opt int 0
      & info [ "kill"; "k" ] ~docv:"K"
          ~doc:"Nodes to kill in adversarial mode (0 = n/20, at least 1).")
  in
  let requests_arg =
    Arg.(
      value & opt int 0
      & info [ "requests"; "r" ] ~docv:"R"
          ~doc:"Number of random requests (0 = a full random permutation).")
  in
  let timeout_arg =
    Arg.(
      value & opt int 4
      & info [ "timeout" ] ~docv:"T" ~doc:"Rounds before a lost packet is first retransmitted.")
  in
  let attempts_arg =
    Arg.(
      value & opt int 5
      & info [ "attempts" ] ~docv:"A" ~doc:"Retransmission attempts before a permanent drop.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the full fault report as JSON to $(docv).")
  in
  let run () family n degree p seed algorithm rate mode round kill requests timeout attempts json
      input =
    let* g = make_graph ?input ~family ~n ~degree ~p ~seed () in
    let* ctor = Construction.find algorithm in
    let* () =
      if rate < 0.0 || rate > 1.0 then Error "fail-rate must lie in [0, 1]"
      else if round < 1 then Error "fail-round must be >= 1"
      else if timeout < 1 || attempts < 1 then Error "timeout and attempts must be >= 1"
      else Ok ()
    in
    let rng = Prng.create (seed + 1) in
    let dc = Construction.build ctor rng g in
    let h = dc.Dc.spanner in
    let nn = Graph.n g in
    let problem =
      if requests <= 0 then Problems.permutation rng g else Problems.random_pairs rng g ~k:requests
    in
    let* routing =
      try Ok (Sp_routing.route_random (Csr.snapshot h) rng problem)
      with Failure _ -> Error "the spanner disconnects the workload; cannot route in it"
    in
    let frng = Prng.create (seed + 2) in
    let* plan =
      match mode with
      | "nodes" -> Ok (Fault_plan.uniform_nodes ~round frng g ~p:rate)
      | "edges" -> Ok (Fault_plan.uniform_edges ~round frng g ~p:rate)
      | "adversarial" ->
          let k = if kill > 0 then kill else max 1 (nn / 20) in
          Ok (Fault_plan.adversarial_load ~round ~n:nn routing ~k)
      | other ->
          Error
            (Printf.sprintf "unknown fault mode %S (expected nodes | edges | adversarial)" other)
    in
    let s = Fault_sim.run ~timeout ~max_attempts:attempts ~n:nn ~network:h ~plan routing in
    let g' = Fault_plan.survivor g plan in
    let h' = Fault_plan.survivor h plan in
    let rep = Repair.run h' ~within:g' in
    Printf.printf "construction: %s\n" dc.Dc.name;
    Printf.printf "graph:        n=%d m=%d, spanner m=%d\n" nn (Graph.m g) (Graph.m h);
    Printf.printf "fault plan:   mode=%s rate=%.3f round=%d -> %d node faults, %d edge faults\n"
      mode rate round (Fault_plan.node_faults plan) (Fault_plan.edge_faults plan);
    Printf.printf "sim:          delivered %d/%d, dropped %d, retransmits %d, reroutes %d\n"
      s.Fault_sim.delivered (Array.length routing) s.Fault_sim.dropped s.Fault_sim.retransmits
      s.Fault_sim.reroutes;
    Printf.printf "              makespan %d (C=%d D=%d), max queue %d, avg latency %.2f\n"
      s.Fault_sim.makespan s.Fault_sim.congestion s.Fault_sim.dilation s.Fault_sim.max_queue
      s.Fault_sim.avg_latency;
    Printf.printf
      "repair:       re-added %d edges (%d connectivity + %d stretch), connected %b, dist \
       stretch %s, certified %b\n"
      (List.length rep.Repair.added) rep.Repair.connectivity_added rep.Repair.stretch_added
      rep.Repair.connected
      (if rep.Repair.dist_stretch = max_int then "unbounded"
       else string_of_int rep.Repair.dist_stretch)
      rep.Repair.certified;
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Printf.fprintf oc
          "{\n\
          \  \"construction\": \"%s\",\n\
          \  \"graph\": { \"n\": %d, \"m\": %d },\n\
          \  \"spanner\": { \"m\": %d },\n\
          \  \"workload\": { \"requests\": %d },\n\
          \  \"plan\": { \"mode\": \"%s\", \"rate\": %s, \"round\": %d, \"node_faults\": %d, \
           \"edge_faults\": %d },\n\
          \  \"sim\": { \"delivered\": %d, \"dropped\": %d, \"retransmits\": %d, \"reroutes\": \
           %d, \"makespan\": %d, \"max_queue\": %d, \"avg_latency\": %s, \"congestion\": %d, \
           \"dilation\": %d },\n\
          \  \"repair\": { \"edges_added\": %d, \"connectivity_added\": %d, \"stretch_added\": \
           %d, \"connected\": %b, \"dist_stretch\": %d, \"certified\": %b }\n\
           }\n"
          (Obs.json_escape dc.Dc.name) nn (Graph.m g) (Graph.m h) (Array.length routing)
          (Obs.json_escape mode) (Obs.json_float rate) round (Fault_plan.node_faults plan)
          (Fault_plan.edge_faults plan) s.Fault_sim.delivered s.Fault_sim.dropped
          s.Fault_sim.retransmits s.Fault_sim.reroutes s.Fault_sim.makespan s.Fault_sim.max_queue
          (Obs.json_float s.Fault_sim.avg_latency) s.Fault_sim.congestion s.Fault_sim.dilation
          (List.length rep.Repair.added) rep.Repair.connectivity_added rep.Repair.stretch_added
          rep.Repair.connected
          (if rep.Repair.dist_stretch = max_int then -1 else rep.Repair.dist_stretch)
          rep.Repair.certified;
        close_out oc;
        Printf.printf "report written to %s\n" path);
    Ok ()
  in
  let term =
    Term.term_result' ~usage:true
      Term.(
        const run $ obs_term $ family_arg $ n_arg $ degree_arg $ p_arg $ seed_arg $ algorithm_arg
        $ rate_arg $ mode_arg $ round_arg $ kill_arg $ requests_arg $ timeout_arg $ attempts_arg
        $ json_arg $ input_arg)
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Inject faults into a spanner routing, simulate degraded-mode delivery, and self-heal \
          the spanner.")
    term

(* ---- soak ---- *)

let soak_cmd =
  let events_arg =
    Arg.(
      value & opt int 1000
      & info [ "events"; "e" ] ~docv:"E" ~doc:"Total churn events to generate.")
  in
  let batch_arg =
    Arg.(value & opt int 50 & info [ "batch"; "b" ] ~docv:"B" ~doc:"Churn events per batch.")
  in
  let plan_arg =
    Arg.(
      value & opt string "uniform"
      & info [ "plan" ] ~docv:"PLAN"
          ~doc:"Churn generator: uniform | adversarial (max-load) | targeted (spanner hubs).")
  in
  let alpha_arg =
    Arg.(
      value & opt int 0
      & info [ "alpha" ] ~docv:"A"
          ~doc:
            "Stretch bound to maintain (0 = derive from the construction's guarantee, \
             falling back to 3).")
  in
  let requests_arg =
    Arg.(
      value & opt int 16
      & info [ "requests"; "r" ] ~docv:"R" ~doc:"Routing requests sampled per batch.")
  in
  let timeout_arg =
    Arg.(
      value & opt int 4
      & info [ "timeout" ] ~docv:"T" ~doc:"Rounds before a lost packet is first retransmitted.")
  in
  let attempts_arg =
    Arg.(
      value & opt int 5
      & info [ "attempts" ] ~docv:"A" ~doc:"Retransmission attempts before a permanent drop.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the deterministic dcs-soak/1 report as JSON to $(docv).")
  in
  let run () family n degree p seed algorithm events batch plan alpha requests timeout attempts
      json input =
    let* g = make_graph ?input ~family ~n ~degree ~p ~seed () in
    let* ctor = Construction.find algorithm in
    let* kind =
      match Churn_gen.kind_of_string plan with
      | Some k -> Ok k
      | None ->
          Error
            (Printf.sprintf "unknown churn plan %S (expected uniform | adversarial | targeted)"
               plan)
    in
    let* () =
      if events < 1 then Error "events must be >= 1"
      else if batch < 1 then Error "batch must be >= 1"
      else if alpha < 0 then Error "alpha must be >= 0"
      else if requests < 0 then Error "requests must be >= 0"
      else if timeout < 1 || attempts < 1 then Error "timeout and attempts must be >= 1"
      else Ok ()
    in
    let alpha =
      if alpha > 0 then alpha
      else
        match ctor.Construction.alpha with
        | Some a -> int_of_float (ceil a)
        | None -> 3
    in
    let rng = Prng.create (seed + 1) in
    let dc = Construction.build ctor rng g in
    let config =
      {
        Soak.events;
        batch;
        seed;
        alpha;
        kind;
        requests;
        timeout;
        max_attempts = attempts;
      }
    in
    let report = Soak.run config ~graph:g ~spanner:dc.Dc.spanner in
    Printf.printf "construction: %s\n" dc.Dc.name;
    Printf.printf "churn:        plan=%s events=%d batch=%d seed=%d alpha=%d\n" report.Soak.r_kind
      report.Soak.r_events report.Soak.r_batch report.Soak.r_seed report.Soak.r_alpha;
    Printf.printf "graph:        n=%d, edges %d -> %d\n" (Graph.n g) report.Soak.r_m_graph_start
      report.Soak.r_m_graph_end;
    Printf.printf "spanner:      edges %d -> %d (%d re-added by the healer)\n"
      report.Soak.r_m_spanner_start report.Soak.r_m_spanner_end report.Soak.r_edges_readded;
    Printf.printf "certify:      %d/%d batches certified, swept %d/%d source groups\n"
      report.Soak.r_certified_batches report.Soak.r_batch_count report.Soak.r_swept
      report.Soak.r_groups_total;
    Printf.printf "traffic:      delivered %d, dropped %d, retransmits %d, reroutes %d\n"
      report.Soak.r_delivered report.Soak.r_dropped report.Soak.r_retransmits
      report.Soak.r_reroutes;
    Printf.printf "final:        dist stretch %s, certified %b\n"
      (if report.Soak.r_final_stretch = max_int then "unbounded"
       else string_of_int report.Soak.r_final_stretch)
      report.Soak.r_final_certified;
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Soak.to_json report);
        close_out oc;
        Printf.printf "report written to %s\n" path);
    if report.Soak.r_certified_batches = report.Soak.r_batch_count then Ok ()
    else Error "soak left uncertified batches"
  in
  let term =
    Term.term_result' ~usage:true
      Term.(
        const run $ obs_term $ family_arg $ n_arg $ degree_arg $ p_arg $ seed_arg $ algorithm_arg
        $ events_arg $ batch_arg $ plan_arg $ alpha_arg $ requests_arg $ timeout_arg
        $ attempts_arg $ json_arg $ input_arg)
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Run a sustained-churn soak: batched insert/delete/isolate events against a live \
          spanner with incremental repair, re-certification, and degraded-mode traffic.")
    term

(* ---- distributed ---- *)

let distributed_cmd =
  let run () n degree seed =
    let d = if n * degree mod 2 = 1 then degree + 1 else degree in
    let g = Generators.random_regular (Prng.create seed) n d in
    let r = Dist_spanner.run ~seed g in
    let ref_h = Dist_spanner.reference ~seed g in
    let equal =
      Graph.m r.Dist_spanner.spanner = Graph.m ref_h
      && Graph.is_subgraph r.Dist_spanner.spanner ~of_:ref_h
    in
    Printf.printf "graph:     n=%d Delta=%d m=%d\n" n d (Graph.m g);
    Printf.printf "rounds:    %d\n" r.Dist_spanner.rounds;
    Printf.printf "messages:  %d (%d flooded edge records)\n" r.Dist_spanner.messages
      r.Dist_spanner.entries;
    Printf.printf "spanner:   m=%d, distance stretch %d\n"
      (Graph.m r.Dist_spanner.spanner)
      (Stretch.exact g r.Dist_spanner.spanner);
    Printf.printf "matches centralized reference: %b\n" equal
  in
  let term = Term.(const run $ obs_term $ n_arg $ degree_arg $ seed_arg) in
  Cmd.v (Cmd.info "distributed" ~doc:"Run the Corollary 3 LOCAL protocol.") term

let () =
  let info =
    Cmd.info "dcs" ~version:"1.0.0"
      ~doc:"Sparse spanners with small distance and congestion stretches (SPAA 2024)."
  in
  (* [~term_err:some_error] (123): runtime failures — unknown family, unknown
     algorithm, mismatched files — report as errors, not as usage mistakes
     (124 stays reserved for genuine command-line syntax errors). *)
  exit
    (Cmd.eval ~term_err:Cmd.Exit.some_error
       (Cmd.group info
          [
            graph_cmd;
            spanner_cmd;
            list_cmd;
            check_cmd;
            route_cmd;
            verify_cmd;
            faults_cmd;
            soak_cmd;
            lowerbound_cmd;
            distributed_cmd;
          ]))
