(* dcs_lint — the repo's self-hosted static analyzer (see HACKING, "Static
   analysis").  Two-tier: typedtree passes over dune's .cmt files where they
   exist (alias/open/functor-proof), compiler-libs parsetree passes as the
   fallback for files that fail to compile.  Exits 1 on errors, 3 on
   warnings under --strict. *)

open Cmdliner

let paths_arg =
  let doc = "Files or directories to lint (default: lib bin bench)." in
  Arg.(value & pos_all string [ "lib"; "bin"; "bench" ] & info [] ~docv:"PATH" ~doc)

let json_arg =
  let doc = "Emit the machine-readable JSON report instead of the table." in
  Arg.(value & flag & info [ "json" ] ~doc)

let allow_arg =
  let doc =
    "Allowlist file (one '<pass-id> <path-suffix> [message substring]' per line). When \
     omitted, ./lint.allow is used if present."
  in
  Arg.(value & opt (some string) None & info [ "allow" ] ~docv:"FILE" ~doc)

let list_passes_arg =
  let doc = "List the registered passes (both tiers) and exit." in
  Arg.(value & flag & info [ "list-passes" ] ~doc)

let strict_arg =
  let doc =
    "Treat warnings as fatal: exit 3 when only Warning-severity findings remain. CI runs \
     with this flag."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let no_typed_arg =
  let doc = "Skip the typed tier even when .cmt files are available (parse-only run)." in
  Arg.(value & flag & info [ "no-typed" ] ~doc)

(* One row per pass id; a rule enforced by both tiers prints once with both
   tier tags.  The smoke test floors the number of distinct ids. *)
let list_passes () =
  let rows = ref [] in
  let add id title doc tier =
    match List.assoc_opt id !rows with
    | Some (t, d, tiers) -> rows := (id, (t, d, tiers @ [ tier ])) :: List.remove_assoc id !rows
    | None -> rows := (id, (title, doc, [ tier ])) :: !rows
  in
  List.iter (fun p -> add p.Lint_passes.id p.Lint_passes.title p.Lint_passes.doc "parse")
    Lint_passes.all;
  List.iter (fun p -> add p.Lint_typed.id p.Lint_typed.title p.Lint_typed.doc "typed")
    Lint_typed.all;
  List.iter
    (fun (id, (title, doc, tiers)) ->
      Printf.printf "%-15s [%s] %s\n    %s\n" id (String.concat "+" tiers) title doc)
    (List.sort compare (List.rev !rows));
  0

let load_allow = function
  | Some path -> (
      match Lint_allow.load path with
      | Ok allow -> Ok allow
      | Error msg -> Error (path ^ ": " ^ msg))
  | None ->
      if Sys.file_exists "lint.allow" then
        match Lint_allow.load "lint.allow" with
        | Ok allow -> Ok allow
        | Error msg -> Error ("lint.allow: " ^ msg)
      else Ok Lint_allow.empty

let main paths json allow_path list_passes_flag strict no_typed =
  if list_passes_flag then list_passes ()
  else
    match load_allow allow_path with
    | Error msg ->
        prerr_endline ("dcs_lint: " ^ msg);
        2
    | Ok allow ->
        let result = Lint_driver.run ~allow ~typed:(not no_typed) ~roots:paths () in
        print_string (if json then Lint_driver.to_json result else Lint_driver.to_table result);
        Lint_driver.exit_code ~strict result

let cmd =
  let doc = "enforce the repo's kernel, parallelism and error-handling invariants" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Two-tier static analysis over the project's own OCaml sources.  The typed tier \
         loads the .cmt files dune emits and checks resolved paths and inferred types, so \
         banned APIs (failwith, stray printing, raw CSR builds), unsafe accesses, \
         polymorphic compares on graph types, mutable state escaping into parallel code \
         and discarded audit results are caught through module aliases, opens and \
         functors.  Files without a .cmt fall back to the parsetree passes.  Exit status \
         is 0 when clean, 1 when error findings remain after the allowlist, 3 when only \
         warnings remain and $(b,--strict) was given.";
    ]
  in
  Cmd.v
    (Cmd.info "dcs_lint" ~version:"2.0.0" ~doc ~man)
    Term.(
      const main $ paths_arg $ json_arg $ allow_arg $ list_passes_arg $ strict_arg
      $ no_typed_arg)

let () = exit (Cmd.eval' cmd)
