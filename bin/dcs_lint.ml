(* dcs_lint — the repo's self-hosted static analyzer (see HACKING, "Static
   analysis").  Scans OCaml sources with compiler-libs parsetree passes and
   exits 1 when any non-allowlisted finding remains. *)

open Cmdliner

let paths_arg =
  let doc = "Files or directories to lint (default: lib bin bench)." in
  Arg.(value & pos_all string [ "lib"; "bin"; "bench" ] & info [] ~docv:"PATH" ~doc)

let json_arg =
  let doc = "Emit the machine-readable JSON report instead of the table." in
  Arg.(value & flag & info [ "json" ] ~doc)

let allow_arg =
  let doc =
    "Allowlist file (one '<pass-id> <path-suffix> [message substring]' per line). When \
     omitted, ./lint.allow is used if present."
  in
  Arg.(value & opt (some string) None & info [ "allow" ] ~docv:"FILE" ~doc)

let list_passes_arg =
  let doc = "List the registered passes and exit." in
  Arg.(value & flag & info [ "list-passes" ] ~doc)

let list_passes () =
  List.iter
    (fun p ->
      Printf.printf "%-15s %s\n    %s\n" p.Lint_passes.id p.Lint_passes.title
        p.Lint_passes.doc)
    Lint_passes.all;
  0

let load_allow = function
  | Some path -> (
      match Lint_allow.load path with
      | Ok allow -> Ok allow
      | Error msg -> Error (path ^ ": " ^ msg))
  | None ->
      if Sys.file_exists "lint.allow" then
        match Lint_allow.load "lint.allow" with
        | Ok allow -> Ok allow
        | Error msg -> Error ("lint.allow: " ^ msg)
      else Ok Lint_allow.empty

let main paths json allow_path list_passes_flag =
  if list_passes_flag then list_passes ()
  else
    match load_allow allow_path with
    | Error msg ->
        prerr_endline ("dcs_lint: " ^ msg);
        2
    | Ok allow ->
        let result = Lint_driver.run ~allow ~roots:paths () in
        print_string (if json then Lint_driver.to_json result else Lint_driver.to_table result);
        Lint_driver.exit_code result

let cmd =
  let doc = "enforce the repo's kernel, parallelism and error-handling invariants" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Multi-pass static analysis over the project's own OCaml sources: banned APIs \
         (failwith, stray printing, raw CSR builds), unsafe-access audit, parallelism \
         hygiene, interface coverage and polymorphic-compare detection.  Exit status is 0 \
         when clean, 1 when findings remain after the allowlist.";
    ]
  in
  Cmd.v
    (Cmd.info "dcs_lint" ~version:"1.0.0" ~doc ~man)
    Term.(const main $ paths_arg $ json_arg $ allow_arg $ list_passes_arg)

let () = exit (Cmd.eval' cmd)
