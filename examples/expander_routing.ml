(* Theorem 2 scenario: permutation routing on a sparsified dense expander.

   A data-center-style network is modelled as a dense regular expander.  We
   keep only ~n^{5/3} of its links with the Theorem 2 construction and show
   that an all-to-all permutation workload still routes with essentially the
   same node congestion, and no path more than 3x longer.

   Run with:  dune exec examples/expander_routing.exe *)

let () =
  let rng = Prng.create 7 in
  let n = 512 in
  (* Delta = n^{2/3 + eps}: dense enough that sparsifying pays. *)
  let delta = int_of_float (float_of_int n ** 0.8167) in
  let delta = if n * delta mod 2 = 1 then delta + 1 else delta in
  let g = Generators.random_regular rng n delta in
  let lam = Spectral.lambda (Csr.snapshot g) in
  Printf.printf "network: n=%d, Delta=%d, m=%d, lambda=%.1f (2*sqrt(Delta-1)=%.1f)\n" n delta
    (Graph.m g) lam
    (2.0 *. sqrt (float_of_int (delta - 1)));

  let t = Expander_dc.build rng g in
  let h = t.Expander_dc.spanner in
  Printf.printf "spanner: kept %d/%d edges (p=%.3f); m(H)/n^{5/3} = %.3f\n" (Graph.m h)
    (Graph.m g) t.Expander_dc.p
    (float_of_int (Graph.m h) /. (float_of_int n ** (5.0 /. 3.0)));
  Printf.printf "distance stretch: %d\n" (Stretch.exact g h);

  (* Permutation workload: every node talks to a random partner. *)
  let dc = Expander_dc.to_dc t g in
  let problem = Problems.permutation rng g in
  let base = Sp_routing.route_random (Csr.snapshot g) rng problem in
  let report = Dc.measure_general dc rng base in
  Printf.printf "\npermutation routing (%d requests):\n" (Array.length problem);
  Printf.printf "  congestion in G:           %d\n" report.Dc.base_congestion;
  Printf.printf "  congestion in H:           %d  (stretch %.2f, paper: O(log^2 n) = %.0f)\n"
    report.Dc.spanner_congestion report.Dc.stretch
    (let l = log (float_of_int n) /. log 2.0 in
     l *. l);
  Printf.printf "  worst per-path stretch:    %.1fx\n" report.Dc.dist_stretch;
  Printf.printf "  matchings routed:          %d (levels %d)\n"
    report.Dc.decompose.Decompose.matchings report.Dc.decompose.Decompose.levels;
  Printf.printf "  router BFS fallbacks:      %d (Lemma 6 failures; 0 expected)\n"
    !(t.Expander_dc.fallbacks);

  (* The matching special case of Theorem 2: expected congestion 1 + o(1). *)
  let m_report = Dc.measure_matching dc rng ~trials:5 in
  Printf.printf "\nmatching workloads: mean congestion %.2f, max %d (paper: 1+o(1) mean, O(log n) whp)\n"
    m_report.Dc.mean_congestion m_report.Dc.max_congestion
