(* Theorem 4 demo: watching an *optimal-size* 3-distance spanner blow up
   congestion.

   The composed lower-bound graph makes the tension unavoidable: any
   3-distance spanner of optimal size must cut one line edge per face of
   every ray-line instance, and then an adversarial matching of the removed
   edges funnels k paths through each special node.

   Run with:  dune exec examples/lower_bound_demo.exe *)

let () =
  let rng = Prng.create 3 in
  let k = 8 and instances = 50 and pool = 1400 in
  let t = Theorem4.make rng ~pool ~instances ~k in
  let g = t.Theorem4.graph in
  Printf.printf "lower-bound graph: n=%d, m=%d (%d edge-disjoint ray-line instances, k=%d)\n"
    (Graph.n g) (Graph.m g) instances k;

  let h, removed = Theorem4.optimal_spanner t in
  let cut = Array.fold_left (fun acc r -> acc + Array.length r) 0 removed in
  Printf.printf "optimal 3-spanner: removed %d edges -> m(H)=%d, distance stretch %d\n" cut
    (Graph.m h) (Stretch.exact g h);

  (* Lemma 18's structural claim: cutting even one more ray edge breaks the
     3-stretch, so H is size-optimal. *)
  let h' = Graph.copy h in
  let inst = t.Theorem4.instances.(0) in
  ignore (Graph.remove_edge h' inst.Theorem4.special inst.Theorem4.line.(2));
  Printf.printf "removing one more ray edge: 3-stretch holds? %b (Lemma 18)\n"
    (Stretch.is_three_spanner g h');

  (* The adversarial routing: per instance, the removed edges as requests. *)
  Printf.printf "\nper-instance adversarial matching (removed edges as requests):\n";
  let n = Graph.n g in
  let worst = ref 0 in
  for i = 0 to instances - 1 do
    let c_h = Routing.congestion ~n (Theorem4.forced_routing t i) in
    let c_g = Routing.congestion ~n (Theorem4.edge_routing t i) in
    assert (c_g = 1);
    worst := max !worst c_h
  done;
  Printf.printf "  optimal congestion in G: 1 (the requests are edges)\n";
  Printf.printf "  forced congestion in H:  %d at the special nodes\n" !worst;
  Printf.printf "  congestion stretch:      %d (paper claim: >= (2k-1)/4 = %.2f)\n" !worst
    (float_of_int ((2 * k) - 1) /. 4.0);

  (* Compare: what does a congestion-oblivious spanner construction do on
     this graph?  The greedy 3-spanner keeps the graph nearly intact here
     (the instance edges are already near-optimal), so the real message is
     about *optimal-size* spanners: sparsity forces congestion. *)
  let greedy = Classic.greedy g ~k:2 in
  Printf.printf "\ngreedy 3-spanner on the same graph: %d edges (optimal-size H has %d)\n"
    (Graph.m greedy) (Graph.m h);
  Printf.printf
    "Theorem 4's point: at the optimal size, congestion stretch Omega(n^{1/6}) is\n\
     unavoidable — no spanner construction can do better on this family.\n"
