(* Corollary 3 demo: Algorithm 1 as an O(1)-round LOCAL protocol.

   Every node samples its incident edges, floods its 3-hop neighborhood
   knowledge for three rounds, and decides locally which of its edges to
   reinsert.  The result is *identical* to the centralized construction
   under the same per-edge coins — locality suffices.

   Run with:  dune exec examples/distributed_demo.exe *)

let () =
  let rng = Prng.create 19 in
  let n = 120 in
  let g = Generators.random_regular rng n 30 in
  Printf.printf "network: n=%d, Delta=%d, m=%d\n\n" n 30 (Graph.m g);

  let seed = 2024 in
  let result = Dist_spanner.run ~seed g in
  let reference = Dist_spanner.reference ~seed g in

  Printf.printf "LOCAL protocol:\n";
  Printf.printf "  rounds:                 %d (constant: sample + 3 floods + decide + deliver)\n"
    result.Dist_spanner.rounds;
  Printf.printf "  messages delivered:     %d\n" result.Dist_spanner.messages;
  Printf.printf "  flooded edge records:   %d (LOCAL allows unbounded messages;\n"
    result.Dist_spanner.entries;
  Printf.printf "                          the model charges rounds, not bits)\n";
  Printf.printf "  spanner edges:          %d of %d\n"
    (Graph.m result.Dist_spanner.spanner)
    (Graph.m g);

  let equal =
    Graph.m result.Dist_spanner.spanner = Graph.m reference
    && Graph.is_subgraph result.Dist_spanner.spanner ~of_:reference
  in
  Printf.printf "\ndistributed output = centralized reference? %b\n" equal;
  Printf.printf "distance stretch of the distributed spanner: %d\n"
    (Stretch.exact g result.Dist_spanner.spanner);

  (* Beyond the paper: Theorem 2's router is also 2-hop local, so a removed
     edge's replacement path can be computed distributedly in O(1) rounds. *)
  let pairs = Matching.random_maximal (Prng.create 5) g in
  let r2 = Dist_expander.run ~seed:7 g pairs in
  let _, ref_routing = Dist_expander.reference ~seed:7 g pairs in
  let same = Array.for_all2 (fun a b -> a = b) r2.Dist_expander.routing ref_routing in
  Printf.printf
    "\ndistributed Theorem 2 (spanner + routing of a %d-request matching):\n"
    (Array.length pairs);
  Printf.printf "  rounds: %d, replacement paths = centralized choice: %b\n"
    r2.Dist_expander.rounds same;

  (* Round count does not grow with n. *)
  Printf.printf "\nscaling check (rounds vs n):\n";
  List.iter
    (fun n ->
      let g = Generators.random_regular (Prng.create n) n (max 16 (n / 4)) in
      let r = Dist_spanner.run ~seed:n g in
      Printf.printf "  n=%-4d rounds=%d  messages=%d\n" n r.Dist_spanner.rounds
        r.Dist_spanner.messages)
    [ 40; 80; 160 ]
