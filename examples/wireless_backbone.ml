(* Wireless-network scenario (paper Section 1.1, [12]): node congestion
   bounds packet latency and queue sizes, because a wireless node forwards
   roughly one packet per slot.

   A dense wireless backbone (every node hears many neighbors) wastes energy
   keeping all links scheduled.  We thin it to a DC-spanner and compare, for
   an all-to-all permutation of flows routed with the congestion-aware
   optimizer on both networks:

     - delivered-by         = simulated makespan under one-packet-per-node slots
     - max queue            = largest queue that actually formed
     - radio links to keep  = spanner edges

   Run with:  dune exec examples/wireless_backbone.exe *)

let describe name g routing =
  let n = Graph.n g in
  (* play the flows out packet-by-packet under node capacity 1 *)
  let s = Packet_sim.run ~n routing in
  Printf.printf
    "%-18s links=%-6d C=%-3d D=%-3d delivered-by=%-4d (lower bound %d)  max-queue=%-3d avg-latency=%.1f\n"
    name (Graph.m g) s.Packet_sim.congestion s.Packet_sim.dilation s.Packet_sim.makespan
    (Packet_sim.lower_bound s) s.Packet_sim.max_queue s.Packet_sim.avg_latency

let () =
  let rng = Prng.create 99 in
  let n = 216 in
  let backbone = Generators.random_regular rng n 43 in
  Printf.printf "dense wireless backbone: n=%d, %d radio links\n\n" n (Graph.m backbone);

  (* all-to-all flow pattern *)
  let problem = Problems.permutation rng backbone in
  Printf.printf "traffic: permutation, %d flows\n\n" (Array.length problem);

  (* route on the full backbone with the congestion-aware router *)
  let full_routing = Congestion_opt.route (Csr.snapshot backbone) rng problem in
  describe "full backbone" backbone full_routing;

  (* thin it to the DC-spanner and route the same flows *)
  let t = Regular_dc.build rng backbone in
  let spanner = t.Regular_dc.spanner in
  let sp_routing = Congestion_opt.route (Csr.snapshot spanner) rng problem in
  describe "DC-spanner" spanner sp_routing;

  (* the congestion-oblivious alternative at the same link budget *)
  let greedy = Classic.greedy backbone ~k:2 in
  let greedy_routing = Congestion_opt.route (Csr.snapshot greedy) rng problem in
  describe "greedy 3-spanner" greedy greedy_routing;

  Printf.printf
    "\nThe DC-spanner keeps ~%.0f%% of the links with a small constant increase in\n\
     delivery time; the greedy spanner is sparser still, but its hot nodes queue\n\
     several times more packets and delay delivery accordingly — exactly the\n\
     congestion stretch the paper controls.\n"
    (100.0 *. float_of_int (Graph.m spanner) /. float_of_int (Graph.m backbone))
