(* Quickstart: build a DC-spanner, check both stretches, route a workload.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* Every randomized step draws from an explicit generator: runs are
     reproducible from the seed. *)
  let rng = Prng.create 42 in

  (* 1. A graph to sparsify: a 60-regular random graph on 343 nodes
        (Delta >= n^{2/3}, the Theorem 3 regime; near-Ramanujan w.h.p.). *)
  let n = 343 in
  let g = Generators.random_regular rng n 60 in
  Printf.printf "G: %d nodes, %d edges, regular=%b, lambda=%.2f\n" (Graph.n g) (Graph.m g)
    (Graph.is_regular g)
    (Spectral.lambda (Csr.snapshot g));

  (* 2. Build the DC-spanner with Algorithm 1 (Theorem 3). *)
  let dc = Dc_spanner.build Dc_spanner.Algorithm1 rng g in
  Printf.printf "H: %d edges (%.0f%% of G) — guarantee: %s\n" (Graph.m dc.Dc.spanner)
    (100.0 *. float_of_int (Graph.m dc.Dc.spanner) /. float_of_int (Graph.m g))
    (Dc_spanner.stretch_guarantee Dc_spanner.Algorithm1);

  (* 3. Distance stretch: exact, certified on every removed edge. *)
  Printf.printf "distance stretch: %d (paper: 3)\n" (Stretch.exact g dc.Dc.spanner);

  (* 4. Congestion stretch on a matching routing problem.  A matching of
        G-edges routes in G with congestion exactly 1, so the congestion of
        the substitute routing in H *is* the stretch. *)
  let report = Dc.measure_matching dc rng ~trials:5 in
  Printf.printf "matching congestion: mean %.2f, max %d (paper: O(sqrt(Delta)) = %.1f)\n"
    report.Dc.mean_congestion report.Dc.max_congestion (sqrt 60.0);

  (* 5. An arbitrary routing problem, via the Theorem 1 decomposition. *)
  let problem = Problems.permutation rng g in
  let base = Sp_routing.route_random (Csr.snapshot g) rng problem in
  let general = Dc.measure_general dc rng base in
  Printf.printf
    "permutation routing: C_G = %d, C_H = %d (stretch %.2f); every path <= %.0fx longer\n"
    general.Dc.base_congestion general.Dc.spanner_congestion general.Dc.stretch
    general.Dc.dist_stretch;
  Printf.printf "decomposition: %d levels, %d matchings (Lemma 23 cap: O(n^3))\n"
    general.Dc.decompose.Decompose.levels general.Dc.decompose.Decompose.matchings
