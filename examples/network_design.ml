(* Theorem 3 scenario — the paper's introduction use-case: shrink routing
   state without sacrificing routing quality.

   A node's routing table stores one entry per incident spanner edge, so
   total routing state is proportional to the number of edges.  This example
   compares, on the same Delta-regular network:

     - keeping the full graph          (perfect routing, maximal state),
     - a classic greedy 3-spanner      (small state, congestion uncontrolled),
     - Algorithm 1's DC-spanner        (small state, congestion bounded).

   Run with:  dune exec examples/network_design.exe *)

let evaluate name g spanner_dc rng =
  let h = spanner_dc.Dc.spanner in
  let dist = Stretch.exact g h in
  let m_report = Dc.measure_matching spanner_dc rng ~trials:5 in
  (* compile actual forwarding tables: port state is what the spanner shrinks *)
  let tables = Route_tables.compile (Csr.snapshot h) in
  Printf.printf "%-22s ports=%-6d entries=%-7d dist=%-4s match-congestion: mean %.1f max %d\n"
    name (Route_tables.ports tables) (Route_tables.entries tables)
    (if dist = max_int then "disc" else string_of_int dist)
    m_report.Dc.mean_congestion m_report.Dc.max_congestion

let () =
  let rng = Prng.create 11 in
  let n = 343 in
  let delta = 60 in
  let g = Generators.random_regular rng n delta in
  Printf.printf "network: n=%d, Delta=%d, full port state = %d\n\n" n delta (2 * Graph.m g);

  (* Full graph: the trivial (1,1)-DC-spanner. *)
  evaluate "full graph" g (Dc.of_sp_router ~name:"full" ~graph:g ~spanner:(Graph.copy g)) rng;

  (* Classic distance-only spanner. *)
  evaluate "greedy 3-spanner" g (Dc_spanner.build (Dc_spanner.Greedy 2) rng g) rng;

  (* Baswana-Sen randomized 3-spanner. *)
  evaluate "baswana-sen 3-spanner" g (Dc_spanner.build Dc_spanner.Baswana_sen rng g) rng;

  (* The paper's DC-spanner. *)
  evaluate "algorithm 1 (paper)" g (Dc_spanner.build Dc_spanner.Algorithm1 rng g) rng;

  Printf.printf
    "\nEvery option keeps full reachability (same next-hop entries); the sparse\n\
     ones cut the per-node port state.  All three sparse spanners give distance\n\
     stretch 3, but only the DC-spanner bounds the congestion stretch\n\
     (O(sqrt(Delta) log n), Theorem 3); the greedy spanner concentrates matching\n\
     traffic on its sparse skeleton.\n"
