(* Tests for dcs_obs: span recording and Chrome-trace export, the sharded
   metrics registry under domain fan-out, disabled-mode silence, and the
   machine-readable report formats the dumps share their escaping with. *)

let check = Alcotest.check

(* ---- a minimal JSON reader (no external dependency) ----------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let lit word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "bad \\u";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              (* the emitters only escape ASCII control chars this way *)
              if code < 128 then Buffer.add_char b (Char.chr code)
              else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
          | c -> fail (Printf.sprintf "bad escape %C" c));
          incr pos;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> fail "expected , or }"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected , or ]"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> Str (string_body ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj fields -> ( match List.assoc_opt k fields with Some v -> v | None -> Null)
  | _ -> Null

let num_of = function Num f -> f | _ -> nan

(* Observability state is process-global; every test starts from a clean,
   enabled (or explicitly disabled) slate and restores "off" afterwards. *)
let with_obs ~tracing ~metrics f =
  Trace.clear ();
  Metrics.reset ();
  Obs.set_tracing tracing;
  Obs.set_metrics metrics;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_tracing false;
      Obs.set_metrics false)
    f

(* ---- tracing -------------------------------------------------------- *)

let test_span_nesting () =
  with_obs ~tracing:true ~metrics:false (fun () ->
      let r =
        Trace.with_span ~name:"outer" (fun () ->
            let a = Trace.with_span ~name:"inner_a" (fun () -> 1) in
            let b = Trace.with_span ~name:"inner_b" (fun () -> 2) in
            a + b)
      in
      check Alcotest.int "with_span is transparent" 3 r;
      let spans = Trace.snapshot () in
      check Alcotest.int "three spans recorded" 3 (List.length spans);
      let find name = List.find (fun s -> s.Trace.name = name) spans in
      let outer = find "outer" and ia = find "inner_a" and ib = find "inner_b" in
      let inside inner =
        inner.Trace.ts_us >= outer.Trace.ts_us
        && inner.Trace.ts_us +. inner.Trace.dur_us <= outer.Trace.ts_us +. outer.Trace.dur_us
      in
      check Alcotest.bool "inner_a contained in outer" true (inside ia);
      check Alcotest.bool "inner_b contained in outer" true (inside ib);
      check Alcotest.bool "inners do not overlap" true
        (ia.Trace.ts_us +. ia.Trace.dur_us <= ib.Trace.ts_us))

let test_span_survives_raise () =
  with_obs ~tracing:true ~metrics:false (fun () ->
      (try Trace.with_span ~name:"doomed" (fun () -> failwith "boom") with Failure _ -> ());
      let spans = Trace.snapshot () in
      check Alcotest.int "span recorded despite the raise" 1 (List.length spans))

let test_trace_json_well_formed () =
  with_obs ~tracing:true ~metrics:false (fun () ->
      Trace.with_span
        ~args:[ ("note", "quote \" backslash \\ newline \n done") ]
        ~name:"weird \"name\"\n"
        (fun () -> Trace.with_span ~name:"child" (fun () -> ()));
      let doc = parse_json (Trace.to_json ()) in
      match member "traceEvents" doc with
      | List events ->
          check Alcotest.int "two events" 2 (List.length events);
          List.iter
            (fun e ->
              check Alcotest.bool "has name" true (member "name" e <> Null);
              check Alcotest.bool "complete event" true (member "ph" e = Str "X");
              check Alcotest.bool "dur is a number" false (Float.is_nan (num_of (member "dur" e))))
            events
      | _ -> Alcotest.fail "traceEvents missing")

let test_trace_summary () =
  with_obs ~tracing:true ~metrics:false (fun () ->
      for _ = 1 to 3 do
        Trace.with_span ~name:"phase" (fun () -> ())
      done;
      match Trace.summary () with
      | [ ("phase", 3, total) ] -> check Alcotest.bool "total >= 0" true (total >= 0.0)
      | _ -> Alcotest.fail "expected a single aggregated row")

(* ---- metrics -------------------------------------------------------- *)

let test_counter_parallel_fanout () =
  with_obs ~tracing:false ~metrics:true (fun () ->
      let c = Metrics.counter "test.fanout" in
      let n = 1000 in
      let expected = n * (n - 1) / 2 in
      for run = 1 to 3 do
        Metrics.reset ();
        let out =
          Parallel.map_range ~domains:4 n (fun i ->
              Metrics.add c i;
              i)
        in
        check Alcotest.int "map_range output intact" n (Array.length out);
        check Alcotest.int
          (Printf.sprintf "shards fold to the exact total (run %d)" run)
          expected (Metrics.counter_value c)
      done)

let test_gauge_last_and_peak () =
  with_obs ~tracing:false ~metrics:true (fun () ->
      let g = Metrics.gauge "test.gauge" in
      List.iter (Metrics.set_gauge g) [ 3; 17; 5 ];
      check Alcotest.int "last" 5 (Metrics.gauge_last g);
      check Alcotest.int "peak" 17 (Metrics.gauge_peak g))

let test_histo_stats () =
  with_obs ~tracing:false ~metrics:true (fun () ->
      let h = Metrics.histo "test.histo" in
      List.iter (Metrics.observe h) [ 1; 2; 4; 100 ];
      let count, sum, mn, mx = Metrics.histo_stats h in
      check Alcotest.int "count" 4 count;
      check Alcotest.int "sum" 107 sum;
      check Alcotest.int "min" 1 mn;
      check Alcotest.int "max" 100 mx)

let test_metrics_json_folds_shards () =
  with_obs ~tracing:false ~metrics:true (fun () ->
      let c = Metrics.counter "test.folded" in
      ignore (Parallel.map_range ~domains:4 64 (fun i -> Metrics.add c 2; i));
      let doc = parse_json (Metrics.to_json ()) in
      let v = num_of (member "test.folded" (member "counters" doc)) in
      check (Alcotest.float 0.0) "one folded total in the dump" 128.0 v)

let test_disabled_mode_emits_nothing () =
  with_obs ~tracing:false ~metrics:false (fun () ->
      let c = Metrics.counter "test.silent" in
      let g = Metrics.gauge "test.silent_gauge" in
      let h = Metrics.histo "test.silent_histo" in
      let r =
        Trace.with_span ~name:"invisible" (fun () ->
            Metrics.incr c;
            Metrics.add c 41;
            Metrics.set_gauge g 9;
            Metrics.observe h 9;
            7)
      in
      check Alcotest.int "with_span still transparent" 7 r;
      check Alcotest.int "no spans" 0 (List.length (Trace.snapshot ()));
      check Alcotest.int "counter untouched" 0 (Metrics.counter_value c);
      check Alcotest.int "gauge untouched" 0 (Metrics.gauge_peak g);
      let count, _, _, _ = Metrics.histo_stats h in
      check Alcotest.int "histo untouched" 0 count)

let test_snapshot_counters () =
  with_obs ~tracing:false ~metrics:true (fun () ->
      Metrics.reset ();
      let hits = Metrics.counter "csr.snapshot_hits" in
      let builds = Metrics.counter "csr.snapshot_builds" in
      let g = Generators.torus 5 5 in
      ignore (Csr.snapshot g);
      ignore (Csr.snapshot g);
      ignore (Csr.snapshot g);
      check Alcotest.int "one build for a stable graph" 1 (Metrics.counter_value builds);
      check Alcotest.int "repeat snapshots hit" 2 (Metrics.counter_value hits);
      ignore (Graph.remove_edge g 0 1);
      ignore (Csr.snapshot g);
      check Alcotest.int "mutation forces a rebuild" 2 (Metrics.counter_value builds))

(* ---- report formats the dumps share their escaping with -------------- *)

let contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

let test_report_csv_quoting () =
  let t = Report.create ~title:"edge cases" ~columns:[ "plain"; "tricky" ] in
  Report.add_row t [ "a"; "has,comma" ];
  Report.add_row t [ "b"; "has \"quote\"" ];
  Report.add_row t [ "c"; "line\nbreak" ];
  let csv = Report.csv t in
  check Alcotest.bool "comma cell quoted" true (contains ~sub:"\"has,comma\"" csv);
  check Alcotest.bool "quote cell doubled" true (contains ~sub:"\"has \"\"quote\"\"\"" csv)

let test_report_json_escaping () =
  let t = Report.create ~title:"json \"title\"" ~columns:[ "c" ] in
  Report.add_row t [ "cell with \"quotes\" and \\ and \nnewline" ];
  Report.add_note t "a note";
  let doc = parse_json (Report.to_json t) in
  check Alcotest.string "title round-trips" "json \"title\""
    (match member "title" doc with Str s -> s | _ -> "?");
  (match member "rows" doc with
  | List [ List [ Str cell ] ] ->
      check Alcotest.string "cell round-trips" "cell with \"quotes\" and \\ and \nnewline" cell
  | _ -> Alcotest.fail "rows shape");
  match member "notes" doc with
  | List [ Str "a note" ] -> ()
  | _ -> Alcotest.fail "notes shape"

let test_percentile_extremes () =
  let xs = [| 5.0; 1.0; 9.0; 3.0 |] in
  check (Alcotest.float 0.0) "p0 is the minimum" 1.0 (Stats.percentile xs 0.0);
  check (Alcotest.float 0.0) "p100 is the maximum" 9.0 (Stats.percentile xs 100.0);
  check (Alcotest.float 0.0) "singleton at any p" 4.0 (Stats.percentile [| 4.0 |] 50.0)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span survives raise" `Quick test_span_survives_raise;
          Alcotest.test_case "json well-formed" `Quick test_trace_json_well_formed;
          Alcotest.test_case "summary aggregates" `Quick test_trace_summary;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "parallel fan-out exact" `Quick test_counter_parallel_fanout;
          Alcotest.test_case "gauge last/peak" `Quick test_gauge_last_and_peak;
          Alcotest.test_case "histo stats" `Quick test_histo_stats;
          Alcotest.test_case "json folds shards" `Quick test_metrics_json_folds_shards;
          Alcotest.test_case "disabled emits nothing" `Quick test_disabled_mode_emits_nothing;
          Alcotest.test_case "snapshot hit/build counters" `Quick test_snapshot_counters;
        ] );
      ( "report",
        [
          Alcotest.test_case "csv quoting" `Quick test_report_csv_quoting;
          Alcotest.test_case "json escaping" `Quick test_report_json_escaping;
          Alcotest.test_case "percentile extremes" `Quick test_percentile_extremes;
        ] );
    ]
