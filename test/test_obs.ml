(* Tests for dcs_obs: span recording and Chrome-trace export, the sharded
   metrics registry under domain fan-out, disabled-mode silence, and the
   machine-readable report formats the dumps share their escaping with. *)

let check = Alcotest.check

(* ---- a minimal JSON reader (no external dependency) ----------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let lit word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "bad \\u";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              (* the emitters only escape ASCII control chars this way *)
              if code < 128 then Buffer.add_char b (Char.chr code)
              else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
          | c -> fail (Printf.sprintf "bad escape %C" c));
          incr pos;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> fail "expected , or }"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected , or ]"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> Str (string_body ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj fields -> ( match List.assoc_opt k fields with Some v -> v | None -> Null)
  | _ -> Null

let num_of = function Num f -> f | _ -> nan

(* Observability state is process-global; every test starts from a clean,
   enabled (or explicitly disabled) slate and restores "off" afterwards. *)
let with_obs ~tracing ~metrics f =
  Trace.clear ();
  Metrics.reset ();
  Obs.set_tracing tracing;
  Obs.set_metrics metrics;
  Fun.protect
    ~finally:(fun () ->
      Obs.set_tracing false;
      Obs.set_metrics false)
    f

(* ---- tracing -------------------------------------------------------- *)

let test_span_nesting () =
  with_obs ~tracing:true ~metrics:false (fun () ->
      let r =
        Trace.with_span ~name:"outer" (fun () ->
            let a = Trace.with_span ~name:"inner_a" (fun () -> 1) in
            let b = Trace.with_span ~name:"inner_b" (fun () -> 2) in
            a + b)
      in
      check Alcotest.int "with_span is transparent" 3 r;
      let spans = Trace.snapshot () in
      check Alcotest.int "three spans recorded" 3 (List.length spans);
      let find name = List.find (fun s -> s.Trace.name = name) spans in
      let outer = find "outer" and ia = find "inner_a" and ib = find "inner_b" in
      let inside inner =
        inner.Trace.ts_us >= outer.Trace.ts_us
        && inner.Trace.ts_us +. inner.Trace.dur_us <= outer.Trace.ts_us +. outer.Trace.dur_us
      in
      check Alcotest.bool "inner_a contained in outer" true (inside ia);
      check Alcotest.bool "inner_b contained in outer" true (inside ib);
      check Alcotest.bool "inners do not overlap" true
        (ia.Trace.ts_us +. ia.Trace.dur_us <= ib.Trace.ts_us))

let test_span_survives_raise () =
  with_obs ~tracing:true ~metrics:false (fun () ->
      (try Trace.with_span ~name:"doomed" (fun () -> failwith "boom") with Failure _ -> ());
      let spans = Trace.snapshot () in
      check Alcotest.int "span recorded despite the raise" 1 (List.length spans))

let test_trace_json_well_formed () =
  with_obs ~tracing:true ~metrics:false (fun () ->
      Trace.with_span
        ~args:[ ("note", "quote \" backslash \\ newline \n done") ]
        ~name:"weird \"name\"\n"
        (fun () -> Trace.with_span ~name:"child" (fun () -> ()));
      let doc = parse_json (Trace.to_json ()) in
      match member "traceEvents" doc with
      | List events ->
          let spans = List.filter (fun e -> member "ph" e = Str "X") events in
          let counters = List.filter (fun e -> member "ph" e = Str "C") events in
          check Alcotest.int "two complete events" 2 (List.length spans);
          List.iter
            (fun e ->
              check Alcotest.bool "has name" true (member "name" e <> Null);
              check Alcotest.bool "dur is a number" false (Float.is_nan (num_of (member "dur" e)));
              check Alcotest.bool "major GC delta is a number" false
                (Float.is_nan (num_of (member "major_collections" (member "args" e)))))
            spans;
          (* every span close emits one memory counter sample *)
          check Alcotest.bool "memory counter events present" true (List.length counters >= 1);
          List.iter
            (fun e ->
              check Alcotest.bool "counter named memory" true (member "name" e = Str "memory");
              check Alcotest.bool "heap_words series present" false
                (Float.is_nan (num_of (member "heap_words" (member "args" e)))))
            counters
      | _ -> Alcotest.fail "traceEvents missing")

let test_trace_summary () =
  with_obs ~tracing:true ~metrics:false (fun () ->
      for _ = 1 to 3 do
        Trace.with_span ~name:"phase" (fun () -> ())
      done;
      match Trace.summary () with
      | [ ("phase", 3, total) ] -> check Alcotest.bool "total >= 0" true (total >= 0.0)
      | _ -> Alcotest.fail "expected a single aggregated row")

(* ---- metrics -------------------------------------------------------- *)

let test_counter_parallel_fanout () =
  with_obs ~tracing:false ~metrics:true (fun () ->
      let c = Metrics.counter "test.fanout" in
      let n = 1000 in
      let expected = n * (n - 1) / 2 in
      for run = 1 to 3 do
        Metrics.reset ();
        let out =
          Parallel.map_range ~domains:4 n (fun i ->
              Metrics.add c i;
              i)
        in
        check Alcotest.int "map_range output intact" n (Array.length out);
        check Alcotest.int
          (Printf.sprintf "shards fold to the exact total (run %d)" run)
          expected (Metrics.counter_value c)
      done)

let test_gauge_last_and_peak () =
  with_obs ~tracing:false ~metrics:true (fun () ->
      let g = Metrics.gauge "test.gauge" in
      List.iter (Metrics.set_gauge g) [ 3; 17; 5 ];
      check Alcotest.int "last" 5 (Metrics.gauge_last g);
      check Alcotest.int "peak" 17 (Metrics.gauge_peak g))

let test_histo_stats () =
  with_obs ~tracing:false ~metrics:true (fun () ->
      let h = Metrics.histo "test.histo" in
      List.iter (Metrics.observe h) [ 1; 2; 4; 100 ];
      let count, sum, mn, mx = Metrics.histo_stats h in
      check Alcotest.int "count" 4 count;
      check Alcotest.int "sum" 107 sum;
      check Alcotest.int "min" 1 mn;
      check Alcotest.int "max" 100 mx)

let test_metrics_json_folds_shards () =
  with_obs ~tracing:false ~metrics:true (fun () ->
      let c = Metrics.counter "test.folded" in
      ignore (Parallel.map_range ~domains:4 64 (fun i -> Metrics.add c 2; i));
      let doc = parse_json (Metrics.to_json ()) in
      let v = num_of (member "test.folded" (member "counters" doc)) in
      check (Alcotest.float 0.0) "one folded total in the dump" 128.0 v)

let test_disabled_mode_emits_nothing () =
  with_obs ~tracing:false ~metrics:false (fun () ->
      let c = Metrics.counter "test.silent" in
      let g = Metrics.gauge "test.silent_gauge" in
      let h = Metrics.histo "test.silent_histo" in
      let r =
        Trace.with_span ~name:"invisible" (fun () ->
            Metrics.incr c;
            Metrics.add c 41;
            Metrics.set_gauge g 9;
            Metrics.observe h 9;
            7)
      in
      check Alcotest.int "with_span still transparent" 7 r;
      check Alcotest.int "no spans" 0 (List.length (Trace.snapshot ()));
      check Alcotest.int "counter untouched" 0 (Metrics.counter_value c);
      check Alcotest.int "gauge untouched" 0 (Metrics.gauge_peak g);
      let count, _, _, _ = Metrics.histo_stats h in
      check Alcotest.int "histo untouched" 0 count)

let test_snapshot_counters () =
  with_obs ~tracing:false ~metrics:true (fun () ->
      Metrics.reset ();
      let hits = Metrics.counter "csr.snapshot_hits" in
      let builds = Metrics.counter "csr.snapshot_builds" in
      let g = Generators.torus 5 5 in
      ignore (Csr.snapshot g);
      ignore (Csr.snapshot g);
      ignore (Csr.snapshot g);
      check Alcotest.int "one build for a stable graph" 1 (Metrics.counter_value builds);
      check Alcotest.int "repeat snapshots hit" 2 (Metrics.counter_value hits);
      ignore (Graph.remove_edge g 0 1);
      ignore (Csr.snapshot g);
      check Alcotest.int "mutation forces a rebuild" 2 (Metrics.counter_value builds))

(* ---- report formats the dumps share their escaping with -------------- *)

let contains ~sub s =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  lb = 0 || go 0

let test_report_csv_quoting () =
  let t = Report.create ~title:"edge cases" ~columns:[ "plain"; "tricky" ] in
  Report.add_row t [ "a"; "has,comma" ];
  Report.add_row t [ "b"; "has \"quote\"" ];
  Report.add_row t [ "c"; "line\nbreak" ];
  let csv = Report.csv t in
  check Alcotest.bool "comma cell quoted" true (contains ~sub:"\"has,comma\"" csv);
  check Alcotest.bool "quote cell doubled" true (contains ~sub:"\"has \"\"quote\"\"\"" csv)

let test_report_json_escaping () =
  let t = Report.create ~title:"json \"title\"" ~columns:[ "c" ] in
  Report.add_row t [ "cell with \"quotes\" and \\ and \nnewline" ];
  Report.add_note t "a note";
  let doc = parse_json (Report.to_json t) in
  check Alcotest.string "title round-trips" "json \"title\""
    (match member "title" doc with Str s -> s | _ -> "?");
  (match member "rows" doc with
  | List [ List [ Str cell ] ] ->
      check Alcotest.string "cell round-trips" "cell with \"quotes\" and \\ and \nnewline" cell
  | _ -> Alcotest.fail "rows shape");
  match member "notes" doc with
  | List [ Str "a note" ] -> ()
  | _ -> Alcotest.fail "notes shape"

let test_percentile_extremes () =
  let xs = [| 5.0; 1.0; 9.0; 3.0 |] in
  check (Alcotest.float 0.0) "p0 is the minimum" 1.0 (Stats.percentile xs 0.0);
  check (Alcotest.float 0.0) "p100 is the maximum" 9.0 (Stats.percentile xs 100.0);
  check (Alcotest.float 0.0) "singleton at any p" 4.0 (Stats.percentile [| 4.0 |] 50.0)

(* ---- json_float edge values ------------------------------------------ *)

let test_json_float_non_finite () =
  check Alcotest.string "nan renders null" "null" (Obs.json_float nan);
  check Alcotest.string "+inf renders null" "null" (Obs.json_float infinity);
  check Alcotest.string "-inf renders null" "null" (Obs.json_float neg_infinity);
  check Alcotest.bool "finite value parses back" true
    (num_of (parse_json (Obs.json_float 2.5)) = 2.5)

(* ---- histogram buckets and quantiles --------------------------------- *)

let test_bucket_of_boundaries () =
  check Alcotest.int "v <= 0 lands in bucket 0" 0 (Metrics.bucket_of 0);
  check Alcotest.int "negative lands in bucket 0" 0 (Metrics.bucket_of (-7));
  check Alcotest.int "1 is bucket 1" 1 (Metrics.bucket_of 1);
  for k = 1 to 61 do
    let v = 1 lsl k in
    check Alcotest.int (Printf.sprintf "2^%d opens bucket %d" k (k + 1)) (k + 1)
      (Metrics.bucket_of v);
    check Alcotest.int (Printf.sprintf "2^%d - 1 closes bucket %d" k k) k
      (Metrics.bucket_of (v - 1))
  done;
  check Alcotest.int "max_int lands in bucket 62" 62 (Metrics.bucket_of max_int);
  check Alcotest.int "bucket 0 bound" 1 (Metrics.bucket_lt 0);
  check Alcotest.bool "saturated top bounds never go negative" true
    (Metrics.bucket_lt 62 = max_int && Metrics.bucket_lt 63 = max_int)

(* the inclusive lower bound of bucket [b]; mirrors the private bucket_lo *)
let bucket_lo b = if b <= 1 then 0 else 1 lsl (b - 1)

let prop_bucket_contains_value =
  QCheck.Test.make ~name:"bucket_of places v inside its [lo, lt) bucket" ~count:500
    QCheck.(int_range 1 max_int)
    (fun v ->
      let b = Metrics.bucket_of v in
      let lt = Metrics.bucket_lt b in
      v >= bucket_lo b && (v < lt || lt = max_int))

let prop_quantile_vs_oracle =
  (* the estimator interpolates inside the pow-2 bucket holding the target
     rank — the bucket of the exact nearest-rank answer from a sorted copy —
     and its midpoint convention can overshoot that bucket's upper bound by
     at most half a bucket width, so check the [lo, hi + width/2] band *)
  QCheck.Test.make ~name:"histo_quantile lands in the oracle's bucket" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 60) (int_range 1 100_000)) (int_range 0 100))
    (fun (vs, q100) ->
      vs = []
      (* the shrinker may go below the generator's size floor *)
      || with_obs ~tracing:false ~metrics:true (fun () ->
          let h = Metrics.histo "test.oracle" in
          List.iter (Metrics.observe h) vs;
          let q = float_of_int q100 /. 100.0 in
          let est = Metrics.histo_quantile h q in
          let sorted = Array.of_list (List.sort compare vs) in
          let target = q *. float_of_int (Array.length sorted - 1) in
          let oracle = sorted.(int_of_float target) in
          let b = Metrics.bucket_of oracle in
          let lo = float_of_int (bucket_lo b) and hi = float_of_int (Metrics.bucket_lt b) in
          est >= lo -. 1e-6 && est <= hi +. (0.5 *. (hi -. lo)) +. 1e-6))

let test_quantile_empty_and_clamp () =
  with_obs ~tracing:false ~metrics:true (fun () ->
      let e = Metrics.histo "test.q_empty" in
      check Alcotest.bool "empty histo quantile is nan" true
        (Float.is_nan (Metrics.histo_quantile e 0.5));
      let h = Metrics.histo "test.q_clamp" in
      List.iter (Metrics.observe h) [ 5; 5; 5; 5 ];
      check (Alcotest.float 0.0) "p0 clamps to min" 5.0 (Metrics.histo_quantile h 0.0);
      check (Alcotest.float 0.0) "p100 clamps to max" 5.0 (Metrics.histo_quantile h 1.0);
      let doc = parse_json (Metrics.to_json ()) in
      let empty = member "test.q_empty" (member "histograms" doc) in
      check Alcotest.bool "empty histo p50 renders null" true (member "p50" empty = Null);
      let filled = member "test.q_clamp" (member "histograms" doc) in
      let p50 = num_of (member "p50" filled)
      and p90 = num_of (member "p90" filled)
      and p99 = num_of (member "p99" filled) in
      check Alcotest.bool "p50/p90/p99 present and ordered" true
        ((not (Float.is_nan p50)) && p50 <= p90 && p90 <= p99))

let test_csv_quantile_parity () =
  with_obs ~tracing:false ~metrics:true (fun () ->
      let h = Metrics.histo "test.csv_parity" in
      List.iter (Metrics.observe h) [ 1; 3; 9; 27; 81 ];
      let csv = Metrics.to_csv () in
      List.iter
        (fun field ->
          check Alcotest.bool (field ^ " row present") true
            (contains ~sub:(Printf.sprintf "histo,test.csv_parity,%s," field) csv))
        [ "count"; "sum"; "mean"; "min"; "max"; "p50"; "p90"; "p99" ];
      check Alcotest.bool "per-bucket rows present" true
        (contains ~sub:"histo,test.csv_parity,bucket_lt_" csv))

let test_gauge_peak_across_domains () =
  with_obs ~tracing:false ~metrics:true (fun () ->
      let g = Metrics.gauge "test.domain_peak" in
      ignore
        (Parallel.map_range ~domains:4 64 (fun i ->
             Metrics.set_gauge g i;
             i));
      check Alcotest.int "peak folds the max over all domain shards" 63 (Metrics.gauge_peak g))

(* ---- structured logging ---------------------------------------------- *)

(* Log state is process-global like the rest of lib/obs: always restore
   "disabled" on the way out. *)
let with_log level f =
  Log.clear ();
  Log.set_level level;
  Fun.protect ~finally:Log.disable f

let test_log_threshold () =
  with_log Log.Warn (fun () ->
      Log.debug "lvl.debug";
      Log.info "lvl.info";
      Log.warn "lvl.warn";
      Log.error "lvl.error";
      let events = List.map (fun e -> e.Log.event) (Log.recent ()) in
      check (Alcotest.list Alcotest.string) "only >= warn recorded" [ "lvl.warn"; "lvl.error" ]
        events;
      check Alcotest.bool "enabled reflects the threshold" true
        (Log.enabled Log.Error && not (Log.enabled Log.Info)))

let test_log_render_jsonl () =
  with_log Log.Debug (fun () ->
      Log.info ~fields:[ ("k", "va\"l"); ("n", "7") ] "render.check";
      match Log.recent () with
      | [ e ] ->
          let doc = parse_json (Log.render e) in
          check Alcotest.bool "level field" true (member "level" doc = Str "info");
          check Alcotest.bool "event field" true (member "event" doc = Str "render.check");
          check Alcotest.bool "fields nest as an object" true
            (member "k" (member "fields" doc) = Str "va\"l");
          check Alcotest.bool "ts_us numeric" false (Float.is_nan (num_of (member "ts_us" doc)))
      | _ -> Alcotest.fail "expected exactly one entry")

let test_log_ring_overflow () =
  with_log Log.Debug (fun () ->
      for i = 1 to 1100 do
        Log.info ~fields:[ ("i", string_of_int i) ] "ring.entry"
      done;
      let entries = Log.recent () in
      check Alcotest.int "ring keeps the last 1024" 1024 (List.length entries);
      let first = List.hd entries and last = List.nth entries 1023 in
      check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        "oldest surviving entry is #77" [ ("i", "77") ] first.Log.fields;
      check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        "newest entry is #1100" [ ("i", "1100") ] last.Log.fields)

let test_log_disabled_is_silent () =
  Log.disable ();
  Log.clear ();
  Log.warn "off.warn";
  Log.info "off.info";
  check Alcotest.int "nothing recorded when disabled" 0 (List.length (Log.recent ()))

(* ---- bench reports and the regression gate --------------------------- *)

let mk_report ?(block = "blk") metrics =
  let t = Bench_report.create ~block ~scale:"quick" in
  List.iter
    (fun (name, v, hib, stable) ->
      Bench_report.add t ~higher_is_better:hib ~stable ~units:"u" name v)
    metrics;
  t

let verdict_for metric verdicts =
  List.find (fun v -> v.Bench_report.v_metric = metric) verdicts

let test_bench_report_json_shape () =
  let t = mk_report [ ("a.count", 42.0, false, true); ("a.wall", nan, false, false) ] in
  check Alcotest.string "block accessor" "blk" (Bench_report.block_name t);
  check Alcotest.int "rows kept in add order" 2 (List.length (Bench_report.metrics t));
  (try
     Bench_report.add t ~units:"u" "" 1.0;
     Alcotest.fail "empty metric name must be rejected"
   with Invalid_argument _ -> ());
  let doc = parse_json (Bench_report.to_json t) in
  check Alcotest.bool "schema tag" true (member "schema" doc = Str "dcs-bench/1");
  check Alcotest.bool "block name" true (member "block" doc = Str "blk");
  check Alcotest.bool "scale recorded" true (member "scale" doc = Str "quick");
  check Alcotest.bool "domains numeric" false (Float.is_nan (num_of (member "domains" doc)));
  match member "metrics" doc with
  | List [ a; wall ] ->
      check Alcotest.bool "metric name" true (member "name" a = Str "a.count");
      check (Alcotest.float 0.0) "metric value" 42.0 (num_of (member "value" a));
      check Alcotest.bool "stable flag" true (member "stable" a = Bool true);
      check Alcotest.bool "nan value renders null" true (member "value" wall = Null)
  | _ -> Alcotest.fail "metrics shape"

let test_bench_compare_directions () =
  let base =
    Bench_report.baseline_to_json
      [ mk_report [ ("cost", 100.0, false, true); ("wins", 100.0, true, true) ] ]
  in
  let run cost wins tolerance =
    match
      Bench_report.compare_json ~baseline:base ~tolerance
        [ mk_report [ ("cost", cost, false, true); ("wins", wins, true, true) ] ]
    with
    | Ok vs -> vs
    | Error msg -> Alcotest.fail msg
  in
  let vs = run 103.0 100.0 2.0 in
  check Alcotest.bool "cost +3% past 2% regresses" true
    (verdict_for "cost" vs).Bench_report.v_regressed;
  check Alcotest.bool "wins flat is fine" false (verdict_for "wins" vs).Bench_report.v_regressed;
  let vs = run 103.0 100.0 5.0 in
  check Alcotest.bool "cost +3% within 5% passes" false
    (verdict_for "cost" vs).Bench_report.v_regressed;
  let vs = run 90.0 97.0 2.0 in
  check Alcotest.bool "cost improving never regresses" false
    (verdict_for "cost" vs).Bench_report.v_regressed;
  check Alcotest.bool "wins -3% past 2% regresses" true
    (verdict_for "wins" vs).Bench_report.v_regressed;
  check Alcotest.bool "delta is signed" true ((verdict_for "wins" vs).Bench_report.v_delta_pct < 0.0)

let test_bench_compare_errors () =
  let base = Bench_report.baseline_to_json [ mk_report [ ("cost", 100.0, false, true) ] ] in
  (* a baseline metric the current run no longer reports always regresses *)
  (match
     Bench_report.compare_json ~baseline:base ~tolerance:50.0
       [ mk_report [ ("other", 1.0, false, true) ] ]
   with
  | Ok vs ->
      let v = verdict_for "cost" vs in
      check Alcotest.bool "missing metric regresses" true v.Bench_report.v_regressed;
      check Alcotest.bool "missing metric reported as nan" true
        (Float.is_nan v.Bench_report.v_current)
  | Error msg -> Alcotest.fail msg);
  (* blocks that did not run are skipped; matching none is an error *)
  (match
     Bench_report.compare_json ~baseline:base ~tolerance:2.0 [ mk_report ~block:"zzz" [] ]
   with
  | Ok _ -> Alcotest.fail "no matched blocks must be an error"
  | Error _ -> ());
  (* scale mismatch is an error, not a silent pass *)
  let t = Bench_report.create ~block:"blk" ~scale:"standard" in
  (match Bench_report.compare_json ~baseline:base ~tolerance:2.0 [ t ] with
  | Ok _ -> Alcotest.fail "scale mismatch must be an error"
  | Error _ -> ());
  match Bench_report.compare_json ~baseline:"not json at all" ~tolerance:2.0 [ mk_report [] ] with
  | Ok _ -> Alcotest.fail "garbage baseline must be an error"
  | Error _ -> ()

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span survives raise" `Quick test_span_survives_raise;
          Alcotest.test_case "json well-formed" `Quick test_trace_json_well_formed;
          Alcotest.test_case "summary aggregates" `Quick test_trace_summary;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "parallel fan-out exact" `Quick test_counter_parallel_fanout;
          Alcotest.test_case "gauge last/peak" `Quick test_gauge_last_and_peak;
          Alcotest.test_case "histo stats" `Quick test_histo_stats;
          Alcotest.test_case "json folds shards" `Quick test_metrics_json_folds_shards;
          Alcotest.test_case "disabled emits nothing" `Quick test_disabled_mode_emits_nothing;
          Alcotest.test_case "snapshot hit/build counters" `Quick test_snapshot_counters;
          Alcotest.test_case "json_float non-finite" `Quick test_json_float_non_finite;
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_of_boundaries;
          Alcotest.test_case "quantile empty/clamp/json" `Quick test_quantile_empty_and_clamp;
          Alcotest.test_case "csv quantile parity" `Quick test_csv_quantile_parity;
          Alcotest.test_case "gauge peak across domains" `Quick test_gauge_peak_across_domains;
          QCheck_alcotest.to_alcotest prop_bucket_contains_value;
          QCheck_alcotest.to_alcotest prop_quantile_vs_oracle;
        ] );
      ( "log",
        [
          Alcotest.test_case "level threshold" `Quick test_log_threshold;
          Alcotest.test_case "jsonl render" `Quick test_log_render_jsonl;
          Alcotest.test_case "ring overflow" `Quick test_log_ring_overflow;
          Alcotest.test_case "disabled is silent" `Quick test_log_disabled_is_silent;
        ] );
      ( "bench_report",
        [
          Alcotest.test_case "json shape" `Quick test_bench_report_json_shape;
          Alcotest.test_case "compare directions" `Quick test_bench_compare_directions;
          Alcotest.test_case "compare errors" `Quick test_bench_compare_errors;
        ] );
      ( "report",
        [
          Alcotest.test_case "csv quoting" `Quick test_report_csv_quoting;
          Alcotest.test_case "json escaping" `Quick test_report_json_escaping;
          Alcotest.test_case "percentile extremes" `Quick test_percentile_extremes;
        ] );
    ]
