(* Tests for the extension modules: congestion-minimizing routing (heuristic
   + exact), the DC-property checker, the k-hop and arbitrary-degree
   DC-spanner generalizations, heavy-tailed generators, and graph I/O. *)

let check = Alcotest.check

(* ---- Congestion_opt ---- *)

let test_copt_validity () =
  let g = Generators.torus 6 6 in
  let c = Csr.snapshot g in
  let rng = Prng.create 1 in
  let problem = Problems.random_pairs rng g ~k:40 in
  let routing = Congestion_opt.route c rng problem in
  check Alcotest.bool "valid" true (Routing.is_valid g problem routing);
  (* slack 0: every path is a shortest path *)
  Array.iteri
    (fun i { Routing.src; dst } ->
      check Alcotest.int "shortest" (Bfs.distance c src dst) (Routing.length routing.(i)))
    problem

let test_copt_improves_on_sp () =
  (* The optimizer should never be (much) worse than random shortest paths;
     check across several seeds that it is <= the random-SP congestion. *)
  let g = Generators.torus 7 7 in
  let c = Csr.snapshot g in
  for seed = 1 to 5 do
    let rng = Prng.create seed in
    let problem = Problems.random_pairs rng g ~k:60 in
    let sp = Sp_routing.congestion_of_problem c (Prng.create (seed + 100)) problem in
    let opt = Congestion_opt.congestion c (Prng.create (seed + 200)) problem in
    check Alcotest.bool (Printf.sprintf "opt %d <= sp %d (seed %d)" opt sp seed) true (opt <= sp)
  done

let test_copt_star_forced () =
  (* On a star every path between leaves crosses the center: congestion = k
     regardless of routing. *)
  let g = Generators.star 10 in
  let c = Csr.snapshot g in
  let rng = Prng.create 3 in
  let problem = [| { Routing.src = 1; dst = 2 }; { Routing.src = 3; dst = 4 } |] in
  check Alcotest.int "star congestion" 2 (Congestion_opt.congestion c rng problem)

let test_copt_slack_helps () =
  (* Two requests sharing the only shortest path; one extra hop lets the
     second avoid the middle.  Graph: path 0-1-2 plus detour 0-3-4-2. *)
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (0, 3); (3, 4); (4, 2) ] in
  let c = Csr.snapshot g in
  let problem = [| { Routing.src = 0; dst = 2 }; { Routing.src = 0; dst = 2 } |] in
  let rng = Prng.create 4 in
  let tight = Congestion_opt.congestion c rng problem in
  check Alcotest.int "no slack: both on 0-1-2" 2 tight;
  let loose = Congestion_opt.route ~slack:1 c (Prng.create 5) problem in
  check Alcotest.bool "valid with slack" true (Routing.is_valid g problem loose);
  (* endpoints 0 and 2 are shared anyway, so congestion stays 2, but the
     middle should split: node 1 carries at most one path *)
  let loads = Routing.node_loads ~n:5 loose in
  check Alcotest.bool "middle splits" true (loads.(1) <= 1)

let test_copt_exact_known_instances () =
  let c4 = Csr.snapshot (Generators.cycle 4) in
  let problem = [| { Routing.src = 0; dst = 2 }; { Routing.src = 1; dst = 3 } |] in
  (match Congestion_opt.exact c4 problem with
  | None -> Alcotest.fail "expected exact result"
  | Some (c, routing) ->
      check Alcotest.int "C4 crossing pairs" 2 c;
      check Alcotest.bool "routing valid" true
        (Routing.is_valid (Generators.cycle 4) problem routing));
  (* two independent requests on a 6-cycle can be routed disjointly *)
  let c6 = Csr.snapshot (Generators.cycle 6) in
  let problem6 = [| { Routing.src = 0; dst = 1 }; { Routing.src = 3; dst = 4 } |] in
  match Congestion_opt.exact c6 problem6 with
  | None -> Alcotest.fail "expected exact result"
  | Some (c, _) -> check Alcotest.int "disjoint requests" 1 c

let test_copt_exact_vs_heuristic () =
  (* On random small instances the heuristic must be >= the optimum and the
     optimum must be >= 1; also exact <= congestion of deterministic SP. *)
  for seed = 1 to 10 do
    let rng = Prng.create seed in
    let g = Generators.erdos_renyi rng 14 0.3 in
    if Connectivity.is_connected g then begin
      let c = Csr.snapshot g in
      let problem = Problems.random_pairs rng g ~k:5 in
      match Congestion_opt.exact c problem with
      | None -> () (* too many shortest paths; fine *)
      | Some (opt, routing) ->
          check Alcotest.bool "exact routing valid" true (Routing.is_valid g problem routing);
          check Alcotest.int "exact congestion consistent" opt
            (Routing.congestion ~n:14 routing);
          let heur = Congestion_opt.congestion c (Prng.create (seed + 50)) problem in
          check Alcotest.bool
            (Printf.sprintf "heuristic %d >= optimal %d" heur opt)
            true (heur >= opt);
          let sp = Routing.congestion ~n:14 (Sp_routing.route c problem) in
          check Alcotest.bool "optimal <= deterministic SP" true (opt <= sp)
    end
  done

let test_copt_disconnected_raises () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let c = Csr.snapshot g in
  let rng = Prng.create 9 in
  check Alcotest.bool "raises" true
    (try
       ignore (Congestion_opt.route c rng [| { Routing.src = 0; dst = 3 } |]);
       false
     with Invalid_argument _ -> true)

(* ---- Dc_check ---- *)

let regular seed n d =
  let d = if n * d mod 2 = 1 then d + 1 else d in
  Generators.random_regular (Prng.create seed) n d

let test_dc_check_pass () =
  let g = regular 11 120 30 in
  let rng = Prng.create 12 in
  let dc = Dc_spanner.build Dc_spanner.Algorithm1 rng g in
  let problem = Problems.edge_matching rng g in
  let routing = Array.map (fun { Routing.src; dst } -> [| src; dst |]) problem in
  let beta = 3.0 *. sqrt 30.0 in
  let verdict = Dc_check.check_routing ~alpha:3.0 ~beta dc rng routing in
  check Alcotest.bool "ok" true verdict.Dc_check.ok;
  check Alcotest.bool "dist <= 3" true (verdict.Dc_check.dist_stretch <= 3.0);
  check Alcotest.(list bool) "no violations" []
    (List.map (fun _ -> true) verdict.Dc_check.violations)

let test_dc_check_distance_violation_detected () =
  let g = regular 13 120 30 in
  let rng = Prng.create 14 in
  let dc = Dc_spanner.build Dc_spanner.Algorithm1 rng g in
  (* find a removed edge; its substitute has length 2 or 3 > alpha = 1 *)
  let removed = ref None in
  Graph.iter_edges g (fun u v ->
      if !removed = None && not (Graph.mem_edge dc.Dc.spanner u v) then removed := Some (u, v));
  match !removed with
  | None -> Alcotest.fail "expected a removed edge"
  | Some (u, v) ->
      let verdict = Dc_check.check_routing ~alpha:1.0 ~beta:1000.0 dc rng [| [| u; v |] |] in
      check Alcotest.bool "not ok" false verdict.Dc_check.ok;
      check Alcotest.bool "distance violation" true
        (List.exists
           (function Dc_check.Distance _ -> true | _ -> false)
           verdict.Dc_check.violations)

let test_dc_check_congestion_violation_detected () =
  (* beta = 0.1 is unsatisfiable whenever the substitute uses any node. *)
  let g = regular 15 100 26 in
  let rng = Prng.create 16 in
  let dc = Dc_spanner.build Dc_spanner.Algorithm1 rng g in
  let problem = Problems.edge_matching rng g in
  let routing = Array.map (fun { Routing.src; dst } -> [| src; dst |]) problem in
  let verdict = Dc_check.check_routing ~alpha:3.0 ~beta:0.1 dc rng routing in
  check Alcotest.bool "congestion violation" true
    (List.exists (function Dc_check.Congestion _ -> true | _ -> false) verdict.Dc_check.violations)

let test_dc_check_estimate () =
  let g = regular 17 120 30 in
  let rng = Prng.create 18 in
  let dc = Dc_spanner.build Dc_spanner.Algorithm1 rng g in
  let beta = 12.0 *. (1.0 +. (2.0 *. sqrt 30.0)) *. Stats.log2 120.0 in
  let e = Dc_check.estimate ~trials:8 ~alpha:3.0 ~beta dc rng in
  check Alcotest.int "trials" 8 e.Dc_check.trials;
  check (Alcotest.float 1e-9) "rate 1.0 at the theorem's beta" 1.0 e.Dc_check.rate;
  check Alcotest.bool "worst dist <= 3" true (e.Dc_check.worst_dist <= 3.0 +. 1e-9)

(* ---- Khop_dc ---- *)

let test_khop_k1_identity () =
  let g = regular 21 80 20 in
  let rng = Prng.create 22 in
  let t = Khop_dc.build ~k:1 rng g in
  check Alcotest.int "k=1 keeps G" (Graph.m g) (Graph.m t.Khop_dc.spanner)

let test_khop_stretch_certificate () =
  List.iter
    (fun k ->
      let g = regular (30 + k) 200 50 in
      let rng = Prng.create (40 + k) in
      let t = Khop_dc.build ~k rng g in
      check Alcotest.bool "subgraph" true (Graph.is_subgraph t.Khop_dc.spanner ~of_:g);
      let bound = (2 * k) - 1 in
      let s = Stretch.exact_bounded g t.Khop_dc.spanner ~bound in
      check Alcotest.bool
        (Printf.sprintf "stretch %d <= %d (k=%d)" s bound k)
        true (s <= bound))
    [ 2; 3; 4 ]

let test_khop_sparser_with_larger_k () =
  (* k = 3 samples at Delta^{-2/3} < Delta^{-1/2} and should beat k = 2; for
     larger k at this scale the repair flood can dominate (the sampled graph
     gets too sparse to provide (2k-1)-detours), so no monotonicity is
     asserted beyond that — the bench block shows the full frontier. *)
  let g = regular 51 300 80 in
  let size k = Graph.m (Khop_dc.build ~k (Prng.create 52) g).Khop_dc.spanner in
  let m2 = size 2 and m3 = size 3 in
  check Alcotest.bool (Printf.sprintf "k=3 (%d) sparser than k=2 (%d)" m3 m2) true (m3 <= m2);
  check Alcotest.bool "both sparser than G" true (m2 < Graph.m g)

let test_khop_router () =
  let g = regular 53 150 40 in
  let rng = Prng.create 54 in
  let t = Khop_dc.build ~k:3 rng g in
  let dc = Khop_dc.to_dc t g in
  let m = Matching.random_maximal rng g in
  let problem = Routing.problem_of_edges m in
  let paths = dc.Dc.route_matching rng m in
  check Alcotest.bool "valid in H" true (Routing.is_valid t.Khop_dc.spanner problem paths);
  Array.iter (fun p -> check Alcotest.bool "length <= 5" true (Routing.length p <= 5)) paths

let test_khop_custom_rho () =
  let g = regular 55 100 30 in
  let t = Khop_dc.build ~rho:1.0 ~k:2 (Prng.create 56) g in
  check Alcotest.int "rho=1 keeps G" (Graph.m g) (Graph.m t.Khop_dc.spanner)

(* ---- Irregular_dc ---- *)

let heavy_tailed seed n =
  let rng = Prng.create seed in
  let w = Generators.power_law_weights rng ~n ~exponent:2.5 ~w_min:8.0 in
  let g = Generators.chung_lu rng w in
  (* make sure the playground is connected for routing tests *)
  let backbone = Generators.cycle n in
  ignore (Connectivity.repair g ~within:backbone);
  g

let test_irregular_stretch () =
  List.iter
    (fun seed ->
      let g = heavy_tailed seed 150 in
      let rng = Prng.create (seed + 5) in
      let t = Irregular_dc.build rng g in
      check Alcotest.bool "subgraph" true (Graph.is_subgraph t.Irregular_dc.spanner ~of_:g);
      check Alcotest.bool "3-spanner" true (Stretch.is_three_spanner g t.Irregular_dc.spanner))
    [ 1; 2; 3 ]

let test_irregular_router () =
  let g = heavy_tailed 7 150 in
  let rng = Prng.create 8 in
  let t = Irregular_dc.build rng g in
  let dc = Irregular_dc.to_dc t g in
  let m = Matching.random_maximal rng g in
  let problem = Routing.problem_of_edges m in
  let paths = dc.Dc.route_matching rng m in
  check Alcotest.bool "valid in H" true (Routing.is_valid t.Irregular_dc.spanner problem paths)

let test_irregular_on_regular_matches_shape () =
  (* On a regular graph the degree-local rule coincides with Algorithm 1's
     sampling rate; sizes should be in the same ballpark. *)
  let g = regular 61 200 50 in
  let t_irr = Irregular_dc.build (Prng.create 62) g in
  let t_reg = Regular_dc.build (Prng.create 62) g in
  let m_irr = Graph.m t_irr.Irregular_dc.spanner in
  let m_reg = Graph.m t_reg.Regular_dc.spanner in
  check Alcotest.bool
    (Printf.sprintf "same ballpark: %d vs %d" m_irr m_reg)
    true
    (float_of_int m_irr < 2.0 *. float_of_int m_reg
    && float_of_int m_reg < 2.0 *. float_of_int m_irr)

let test_irregular_keeps_low_degree_edges () =
  (* Pendant-ish structure: low-degree edges sample at rate ~1 and survive. *)
  let g = Graph.copy (Generators.star 30) in
  ignore (Graph.add_edge g 1 2);
  let t = Irregular_dc.build (Prng.create 63) g in
  check Alcotest.int "nothing lost on a star" (Graph.m g) (Graph.m t.Irregular_dc.spanner)

(* ---- heavy-tailed generators ---- *)

let test_power_law_weights () =
  let rng = Prng.create 71 in
  let w = Generators.power_law_weights rng ~n:500 ~exponent:2.5 ~w_min:4.0 in
  check Alcotest.int "size" 500 (Array.length w);
  Array.iter
    (fun x ->
      check Alcotest.bool "above w_min" true (x >= 4.0 -. 1e-9);
      check Alcotest.bool "capped" true (x <= sqrt (500.0 *. 4.0) +. 1e-9))
    w

let test_chung_lu_degrees () =
  let rng = Prng.create 72 in
  let n = 300 in
  let w = Array.make n 12.0 in
  let g = Generators.chung_lu rng w in
  (* constant weights: expected degree ~ w (up to the (n-1)/n factor) *)
  let mean_deg = 2.0 *. float_of_int (Graph.m g) /. float_of_int n in
  check Alcotest.bool (Printf.sprintf "mean degree %.1f near 12" mean_deg) true
    (mean_deg > 9.0 && mean_deg < 15.0)

let test_preferential_attachment () =
  let rng = Prng.create 73 in
  let n = 400 and m = 4 in
  let g = Generators.preferential_attachment rng ~n ~m in
  check Alcotest.int "n nodes" n (Graph.n g);
  check Alcotest.bool "connected" true (Connectivity.is_connected g);
  let expected_m = ((m + 1) * m / 2) + ((n - m - 1) * m) in
  check Alcotest.bool
    (Printf.sprintf "edge count %d near %d" (Graph.m g) expected_m)
    true
    (Graph.m g > (9 * expected_m) / 10 && Graph.m g <= expected_m);
  (* heavy tail: max degree well above the mean *)
  let mean_deg = 2.0 *. float_of_int (Graph.m g) /. float_of_int n in
  check Alcotest.bool "hub exists" true (float_of_int (Graph.max_degree g) > 3.0 *. mean_deg)

let test_preferential_attachment_rejects () =
  let rng = Prng.create 74 in
  check Alcotest.bool "m >= n rejected" true
    (try
       ignore (Generators.preferential_attachment rng ~n:3 ~m:3);
       false
     with Invalid_argument _ -> true)

(* ---- Graph_io ---- *)

let roundtrip g =
  let path = Filename.temp_file "dcs_test" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.write g path;
      Graph_io.read path)

let test_io_roundtrip () =
  List.iter
    (fun g ->
      let g' = roundtrip g in
      check Alcotest.int "n" (Graph.n g) (Graph.n g');
      check Alcotest.int "m" (Graph.m g) (Graph.m g');
      check Alcotest.bool "same edges" true (Graph.is_subgraph g' ~of_:g))
    [
      Generators.torus 5 5;
      Generators.complete 10;
      Graph.create 7;
      Generators.erdos_renyi (Prng.create 81) 40 0.15;
    ]

let parse_string s =
  let path = Filename.temp_file "dcs_test" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc s;
      close_out oc;
      Graph_io.read path)

let test_io_comments_and_whitespace () =
  let g = parse_string "# a comment\n\nn 4 2\n0 1\n\n# another\n2\t3\n" in
  check Alcotest.int "n" 4 (Graph.n g);
  check Alcotest.int "m" 2 (Graph.m g);
  check Alcotest.bool "edge" true (Graph.mem_edge g 2 3)

let test_io_malformed () =
  let expect_fail s =
    check Alcotest.bool s true
      (try
         ignore (parse_string s);
         false
       with Io_error.Parse_error _ -> true)
  in
  expect_fail "0 1\n";
  expect_fail "n 4 1\n0 4\n";
  expect_fail "n 4 1\n1 1\n";
  expect_fail "n 4 2\n0 1\n";
  expect_fail "n x y\n";
  expect_fail ""

(* ---- qcheck ---- *)

let prop_khop_stretch =
  QCheck.Test.make ~name:"khop stretch bound" ~count:15
    QCheck.(pair small_int (int_range 2 4))
    (fun (seed, k) ->
      let g = regular (seed + 300) 120 30 in
      let t = Khop_dc.build ~k (Prng.create seed) g in
      let s = Stretch.exact_bounded g t.Khop_dc.spanner ~bound:((2 * k) - 1) in
      s <= (2 * k) - 1)

let prop_io_roundtrip =
  QCheck.Test.make ~name:"graph io roundtrip" ~count:30
    QCheck.(pair small_int (int_range 1 40))
    (fun (seed, n) ->
      let g = Generators.erdos_renyi (Prng.create seed) n 0.3 in
      let g' = roundtrip g in
      Graph.m g = Graph.m g' && Graph.is_subgraph g' ~of_:g)

let prop_copt_never_worse_than_det_sp =
  QCheck.Test.make ~name:"congestion_opt <= deterministic SP congestion" ~count:20
    QCheck.(pair small_int (int_range 5 40))
    (fun (seed, k) ->
      let g = Generators.torus 6 6 in
      let c = Csr.snapshot g in
      let rng = Prng.create seed in
      let problem = Problems.random_pairs rng g ~k in
      let det = Routing.congestion ~n:36 (Sp_routing.route c problem) in
      let opt = Congestion_opt.congestion c (Prng.create (seed + 1)) problem in
      opt <= det)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "extensions"
    [
      ( "congestion-opt",
        [
          Alcotest.test_case "validity" `Quick test_copt_validity;
          Alcotest.test_case "improves on sp" `Quick test_copt_improves_on_sp;
          Alcotest.test_case "star forced" `Quick test_copt_star_forced;
          Alcotest.test_case "slack helps" `Quick test_copt_slack_helps;
          Alcotest.test_case "exact known instances" `Quick test_copt_exact_known_instances;
          Alcotest.test_case "exact vs heuristic" `Quick test_copt_exact_vs_heuristic;
          Alcotest.test_case "disconnected raises" `Quick test_copt_disconnected_raises;
        ] );
      ( "dc-check",
        [
          Alcotest.test_case "passes at theorem bounds" `Quick test_dc_check_pass;
          Alcotest.test_case "distance violation" `Quick test_dc_check_distance_violation_detected;
          Alcotest.test_case "congestion violation" `Quick
            test_dc_check_congestion_violation_detected;
          Alcotest.test_case "estimate" `Quick test_dc_check_estimate;
        ] );
      ( "khop",
        [
          Alcotest.test_case "k=1 identity" `Quick test_khop_k1_identity;
          Alcotest.test_case "stretch certificate" `Quick test_khop_stretch_certificate;
          Alcotest.test_case "sparser with larger k" `Quick test_khop_sparser_with_larger_k;
          Alcotest.test_case "router" `Quick test_khop_router;
          Alcotest.test_case "custom rho" `Quick test_khop_custom_rho;
        ] );
      ( "irregular",
        [
          Alcotest.test_case "stretch on heavy-tailed" `Quick test_irregular_stretch;
          Alcotest.test_case "router" `Quick test_irregular_router;
          Alcotest.test_case "regular ballpark" `Quick test_irregular_on_regular_matches_shape;
          Alcotest.test_case "keeps low-degree edges" `Quick test_irregular_keeps_low_degree_edges;
        ] );
      ( "generators",
        [
          Alcotest.test_case "power-law weights" `Quick test_power_law_weights;
          Alcotest.test_case "chung-lu degrees" `Quick test_chung_lu_degrees;
          Alcotest.test_case "preferential attachment" `Quick test_preferential_attachment;
          Alcotest.test_case "pa rejects" `Quick test_preferential_attachment_rejects;
        ] );
      ( "graph-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "comments/whitespace" `Quick test_io_comments_and_whitespace;
          Alcotest.test_case "malformed" `Quick test_io_malformed;
        ] );
      ("properties", q [ prop_khop_stretch; prop_io_roundtrip; prop_copt_never_worse_than_det_sp ]);
    ]
