(* Graph-engine tests: the Bigarray CSR store (Csr_store), the delta-log
   mutation path behind Graph.snapshot, the streaming expander generator,
   and the Elkin–Neiman near-linear-time spanner.

   The central property is the oracle: a CSR built from an edge stream must
   be element-for-element identical to a naive per-node sorted-list model,
   for any interleaving of add_edge / remove_edge / isolate — both through
   the pure [Csr.of_graph] path and the delta-replaying [Csr.snapshot]
   path. *)

let check = Alcotest.check

(* ---- naive reference model: per-node sorted neighbor lists ---- *)

type model = { mn : int; tbl : (int * int, unit) Hashtbl.t }

let model_create n = { mn = n; tbl = Hashtbl.create 64 }

let model_add md u v =
  if u <> v then Hashtbl.replace md.tbl (min u v, max u v) ()

let model_remove md u v = Hashtbl.remove md.tbl (min u v, max u v)

let model_isolate md v =
  Hashtbl.iter
    (fun (a, b) () -> if a = v || b = v then Hashtbl.remove md.tbl (a, b))
    (Hashtbl.copy md.tbl)

(* expected flat arrays, exactly the canonical CSR layout *)
let model_arrays md =
  let adj = Array.make (max 1 md.mn) [] in
  Hashtbl.iter
    (fun (a, b) () ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    md.tbl;
  let xadj = Array.make (md.mn + 1) 0 in
  for v = 0 to md.mn - 1 do
    adj.(v) <- List.sort compare adj.(v);
    xadj.(v + 1) <- xadj.(v) + List.length adj.(v)
  done;
  let adjncy = Array.make xadj.(md.mn) 0 in
  for v = 0 to md.mn - 1 do
    List.iteri (fun i w -> adjncy.(xadj.(v) + i) <- w) adj.(v)
  done;
  (xadj, adjncy)

(* element-for-element comparison of a Csr.t against the model arrays *)
let csr_matches_model md (c : Csr.t) =
  let xadj, adjncy = model_arrays md in
  Csr.n c = md.mn
  && Bigarray.Array1.dim c.Csr.xadj = Array.length xadj
  && Bigarray.Array1.dim c.Csr.adjncy = Array.length adjncy
  &&
  let ok = ref true in
  Array.iteri (fun i x -> if c.Csr.xadj.{i} <> x then ok := false) xadj;
  Array.iteri (fun i x -> if c.Csr.adjncy.{i} <> x then ok := false) adjncy;
  !ok

(* ---- Csr_store unit behavior ---- *)

let test_store_basic () =
  let c =
    Csr_store.of_stream ~n:5 (fun emit ->
        emit 0 1;
        emit 1 0;
        (* duplicate, reversed orientation *)
        emit 3 3;
        (* self-loop: dropped *)
        emit 4 2;
        emit 0 1;
        (* duplicate, same orientation *)
        emit 1 2)
  in
  check Alcotest.int "n" 5 (Csr_store.n c);
  check Alcotest.int "m" 3 (Csr_store.m c);
  check Alcotest.int "arcs" 6 (Csr_store.arcs c);
  check Alcotest.int "degree 1" 2 (Csr_store.degree c 1);
  check Alcotest.int "degree 3" 0 (Csr_store.degree c 3);
  check Alcotest.bool "mem 2 4" true (Csr_store.mem c 2 4);
  check Alcotest.bool "mem 0 2" false (Csr_store.mem c 0 2);
  let row = ref [] in
  Csr_store.iter_row c 2 (fun w -> row := w :: !row);
  check Alcotest.(list int) "row 2 sorted" [ 1; 4 ] (List.rev !row);
  let edges = ref [] in
  Csr_store.iter_edges c (fun u v -> edges := (u, v) :: !edges);
  check
    Alcotest.(list (pair int int))
    "edges ascending" [ (0, 1); (1, 2); (2, 4) ] (List.rev !edges)

let test_store_empty_and_invalid () =
  let e = Csr_store.empty 4 in
  check Alcotest.int "empty m" 0 (Csr_store.m e);
  check Alcotest.int "empty degree" 0 (Csr_store.degree e 3);
  let expects_invalid name f =
    check Alcotest.bool name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expects_invalid "endpoint too large" (fun () ->
      Csr_store.of_stream ~n:3 (fun emit -> emit 0 3));
  expects_invalid "negative endpoint" (fun () ->
      Csr_store.of_stream ~n:3 (fun emit -> emit (-1) 2));
  expects_invalid "degree out of range" (fun () -> Csr_store.degree e 4)

let test_store_canonical () =
  (* same edge set, wildly different emit orders -> identical arrays *)
  let edges = [ (0, 9); (3, 4); (1, 2); (5, 8); (2, 7); (0, 3) ] in
  let build order =
    Csr_store.of_stream ~n:10 (fun emit ->
        List.iter (fun (u, v) -> emit u v) order)
  in
  let a = build edges in
  let b =
    build (List.rev_map (fun (u, v) -> (v, u)) edges @ [ (1, 2); (9, 0) ])
  in
  check Alcotest.bool "canonical xadj" true (a.Csr_store.xadj = b.Csr_store.xadj);
  check Alcotest.bool "canonical adjncy" true
    (a.Csr_store.adjncy = b.Csr_store.adjncy)

(* ---- qcheck oracle: CSR = model under interleaved mutation ---- *)

(* op stream encoded as (kind, a, b): 0 = add, 1 = remove, 2 = isolate *)
let apply_ops n ops =
  let g = Graph.create n in
  let md = model_create n in
  List.iter
    (fun (kind, a, b) ->
      let u = a mod n and v = b mod n in
      match kind mod 3 with
      | 0 ->
          ignore (Graph.add_edge g u v);
          model_add md u v
      | 1 ->
          ignore (Graph.remove_edge g u v);
          model_remove md u v
      | _ ->
          ignore (Graph.isolate g u);
          model_isolate md u)
    ops;
  (g, md)

let prop_csr_matches_model =
  QCheck.Test.make ~name:"CSR from mutation stream = sorted-list model"
    ~count:120
    QCheck.(
      triple (int_range 1 40)
        (small_list (triple small_nat small_nat small_nat))
        small_nat)
    (fun (n, ops, extra) ->
      let ops = List.map (fun (k, a, b) -> (k, a, b)) ops in
      let g, md = apply_ops n ops in
      (* of_graph: pure O(m) rebuild; snapshot: delta-log commit + cache *)
      let pure = Csr.of_graph g in
      let snap = Csr.snapshot g in
      let ok1 = csr_matches_model md pure && csr_matches_model md snap in
      (* mutate again after the snapshot to exercise cache invalidation *)
      let u = extra mod n in
      ignore (Graph.add_edge g u ((u + 1) mod n));
      model_add md u ((u + 1) mod n);
      let ok2 = csr_matches_model md (Csr.snapshot g) in
      ok1 && ok2)

let prop_snapshot_accessors_match_graph =
  QCheck.Test.make ~name:"snapshot m/degree/mem agree with Graph" ~count:80
    QCheck.(
      pair (int_range 1 30) (small_list (triple small_nat small_nat small_nat)))
    (fun (n, ops) ->
      let g, _ = apply_ops n ops in
      let c = Csr.snapshot g in
      Csr.m c = Graph.m g
      && Seq.for_all
           (fun v ->
             Csr.degree c v = Graph.degree g v
             && Seq.for_all
                  (fun w -> Csr.mem_edge c v w = Graph.mem_edge g v w)
                  (Seq.init n Fun.id))
           (Seq.init n Fun.id))

(* ---- expander generator ---- *)

let test_expander_shape () =
  let n = 600 and d = 8 in
  let g = Generators.expander (Prng.create 42) n d in
  check Alcotest.int "n" n (Graph.n g);
  let c = Csr.snapshot g in
  let dist = Bfs.distances c 0 in
  Array.iteri
    (fun v dv -> if dv < 0 then Alcotest.failf "node %d unreachable" v)
    dist;
  let dmin = ref max_int and dmax = ref 0 in
  for v = 0 to n - 1 do
    let dv = Graph.degree g v in
    if dv < !dmin then dmin := dv;
    if dv > !dmax then dmax := dv
  done;
  check Alcotest.bool "min degree >= 2" true (!dmin >= 2);
  check Alcotest.bool "max degree <= d" true (!dmax <= d);
  (* permutation collisions are a o(1) fraction: mean degree near d *)
  check Alcotest.bool "mean degree > d - 2" true
    (2 * Graph.m g > (d - 2) * n)

let test_expander_deterministic () =
  let build seed = Csr.snapshot (Generators.expander (Prng.create seed) 300 6) in
  let a = build 7 and b = build 7 and c = build 8 in
  check Alcotest.bool "same seed, same arrays" true
    (a.Csr.xadj = b.Csr.xadj && a.Csr.adjncy = b.Csr.adjncy);
  check Alcotest.bool "different seed differs" true
    (c.Csr.adjncy <> a.Csr.adjncy)

let test_expander_invalid () =
  let expects_invalid name f =
    check Alcotest.bool name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expects_invalid "n too small" (fun () ->
      Generators.expander (Prng.create 1) 2 2);
  expects_invalid "d too small" (fun () ->
      Generators.expander (Prng.create 1) 10 1);
  expects_invalid "d >= n" (fun () ->
      Generators.expander (Prng.create 1) 10 10)

(* ---- Elkin–Neiman spanner: certification + sparsity ---- *)

(* k = 2: stretch bound 3, expected O(n^{3/2}) edges.  The sparsity check
   uses a generous constant so it stays a property of the algorithm, not of
   one seed. *)
let en_bound n m = min m (int_of_float (4.0 *. (float_of_int n ** 1.5)) + n)

let check_en_case name seed g =
  let r = Elkin_neiman.build (Prng.create seed) g in
  let h = r.Elkin_neiman.spanner in
  check Alcotest.int (name ^ ": same node set") (Graph.n g) (Graph.n h);
  Graph.iter_edges h (fun u v ->
      if not (Graph.mem_edge g u v) then
        Alcotest.failf "%s: spanner edge (%d,%d) not in g" name u v);
  let s = Stretch.exact_bounded g h ~bound:3 in
  check Alcotest.bool (name ^ ": stretch <= 3") true (s >= 1 && s <= 3);
  check Alcotest.bool (name ^ ": sparsity") true
    (Graph.m h <= en_bound (Graph.n g) (Graph.m g));
  check Alcotest.int
    (name ^ ": removed accounting")
    (Graph.m g)
    (Graph.m h - r.Elkin_neiman.repaired + r.Elkin_neiman.removed)

let test_en_families () =
  (* dense (where the keep rule actually bites), sparse, expander, random —
     several seeds each *)
  List.iter
    (fun seed ->
      check_en_case "complete" seed (Generators.complete 120);
      check_en_case "two-cliques" seed (Generators.two_cliques_matching 80);
      check_en_case "torus" seed (Generators.torus 12 12);
      check_en_case "expander" seed
        (Generators.expander (Prng.create (seed + 100)) 1500 8);
      check_en_case "erdos-renyi" seed
        (Generators.erdos_renyi (Prng.create (seed + 200)) 250 0.15))
    [ 1; 2; 3 ]

let test_en_dense_sparsifies () =
  (* on K_n the exponential race must remove a constant fraction *)
  let g = Generators.complete 200 in
  let r = Elkin_neiman.build (Prng.create 11) g in
  check Alcotest.bool "removes at least a third of K_200" true
    (3 * Graph.m r.Elkin_neiman.spanner < 2 * Graph.m g)

let test_en_deterministic () =
  let g = Generators.expander (Prng.create 5) 800 8 in
  let build seed =
    Csr.snapshot (Elkin_neiman.build (Prng.create seed) g).Elkin_neiman.spanner
  in
  let a = build 9 and b = build 9 in
  check Alcotest.bool "same seed, same spanner" true
    (a.Csr.xadj = b.Csr.xadj && a.Csr.adjncy = b.Csr.adjncy)

let test_en_invalid () =
  check Alcotest.bool "k = 0 rejected" true
    (try
       ignore (Elkin_neiman.build ~k:0 (Prng.create 1) (Generators.cycle 5));
       false
     with Invalid_argument _ -> true)

let prop_en_certified =
  QCheck.Test.make ~name:"Elkin–Neiman stretch <= 3 on random graphs"
    ~count:40
    QCheck.(triple small_int (int_range 2 60) (int_range 0 100))
    (fun (seed, n, p100) ->
      let g =
        Generators.erdos_renyi (Prng.create seed) n
          (float_of_int p100 /. 100.0)
      in
      let r = Elkin_neiman.build (Prng.create (seed + 1)) g in
      let s = Stretch.exact_bounded g r.Elkin_neiman.spanner ~bound:3 in
      s <= 3 && Graph.m r.Elkin_neiman.spanner <= Graph.m g)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "csr-store",
        Alcotest.test_case "basic" `Quick test_store_basic
        :: Alcotest.test_case "empty/invalid" `Quick
             test_store_empty_and_invalid
        :: Alcotest.test_case "canonical" `Quick test_store_canonical
        :: q [ prop_csr_matches_model; prop_snapshot_accessors_match_graph ]
      );
      ( "expander",
        [
          Alcotest.test_case "shape" `Quick test_expander_shape;
          Alcotest.test_case "deterministic" `Quick test_expander_deterministic;
          Alcotest.test_case "invalid" `Quick test_expander_invalid;
        ] );
      ( "elkin-neiman",
        Alcotest.test_case "families x seeds" `Quick test_en_families
        :: Alcotest.test_case "dense sparsifies" `Quick test_en_dense_sparsifies
        :: Alcotest.test_case "deterministic" `Quick test_en_deterministic
        :: Alcotest.test_case "invalid" `Quick test_en_invalid
        :: q [ prop_en_certified ] );
    ]
