(* Tests for dcs_spanner: stretch measurement vs brute force, support
   structure, Algorithm 1 (Theorem 3), the Theorem 2 expander construction,
   classic baselines and the sparsifier substitutes. *)

let check = Alcotest.check

let random_graph seed n p =
  let rng = Prng.create seed in
  Generators.erdos_renyi rng n p

(* ---- Stretch ---- *)

let brute_force_stretch g h =
  (* max over all connected pairs of d_H / d_G; must equal max over edges. *)
  let dg = Bfs.all_distances (Csr.snapshot g) in
  let dh = Bfs.all_distances (Csr.snapshot h) in
  let n = Graph.n g in
  let worst = ref 1.0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if dg.(u).(v) > 0 then begin
        if dh.(u).(v) < 0 then worst := infinity
        else worst := max !worst (float_of_int dh.(u).(v) /. float_of_int dg.(u).(v))
      end
    done
  done;
  !worst

let test_stretch_exact_equals_pairwise () =
  for seed = 1 to 12 do
    let g = random_graph seed 25 0.25 in
    let rng = Prng.create (seed * 7) in
    (* random spanner: drop ~30% of edges, then reconnect *)
    let h = Graph.empty_like g in
    Graph.iter_edges g (fun u v -> if Prng.bool rng 0.7 then ignore (Graph.add_edge h u v));
    ignore (Connectivity.repair h ~within:g);
    let edge_stretch = Stretch.exact g h in
    let pairwise = brute_force_stretch g h in
    if Connectivity.is_connected g then
      check (Alcotest.float 1e-9)
        (Printf.sprintf "edge stretch = pairwise stretch (seed %d)" seed)
        pairwise
        (if edge_stretch = max_int then infinity else float_of_int edge_stretch)
  done

let test_stretch_identity () =
  let g = Generators.torus 5 5 in
  check Alcotest.int "identity spanner" 1 (Stretch.exact g (Graph.copy g))

let test_stretch_disconnected () =
  let g = Generators.cycle 6 in
  let h = Graph.copy g in
  ignore (Graph.remove_edge h 0 1);
  ignore (Graph.remove_edge h 3 4);
  check Alcotest.int "disconnected" max_int (Stretch.exact g h);
  check Alcotest.bool "not 3-spanner" false (Stretch.is_three_spanner g h);
  check Alcotest.int "two violations" 2 (List.length (Stretch.violations g h ~bound:3))

let test_stretch_cycle () =
  (* Removing one edge of C_n forces a detour of length n-1. *)
  let g = Generators.cycle 8 in
  let h = Graph.copy g in
  ignore (Graph.remove_edge h 0 7);
  check Alcotest.int "cycle detour" 7 (Stretch.exact g h);
  check Alcotest.int "bounded miss" max_int (Stretch.exact_bounded g h ~bound:3)

let test_stretch_sampled_consistent () =
  let g = Generators.two_cliques_matching 20 in
  let h = Graph.copy g in
  for i = 1 to 9 do
    ignore (Graph.remove_edge h i (10 + i))
  done;
  let rng = Prng.create 2 in
  let s = Stretch.sampled_pairs rng g h ~samples:500 in
  check Alcotest.bool "sampled <= exact" true (s <= float_of_int (Stretch.exact g h) +. 1e-9)

(* ---- Support structure ---- *)

let test_base_support_matches_common_neighbors () =
  let g = random_graph 31 40 0.2 in
  let bm = Bitmat.of_graph g in
  for u = 0 to 39 do
    for z = u + 1 to 39 do
      check Alcotest.int "base support" (List.length (Graph.common_neighbors g u z))
        (Support.base_support bm u z)
    done
  done

let test_supported_extensions_definition () =
  (* Figure 3.b style hand-built instance: u-v edge; extensions of (u,v)
     toward v are neighbors z of v (z<>u) with |N(u) ∩ N(z)| >= a+1. *)
  let g =
    Graph.of_edges 7
      [
        (0, 1) (* u=0, v=1 *);
        (1, 2) (* extension toward z=2 *);
        (0, 3);
        (3, 2) (* 2-detour u-3-z *);
        (0, 4);
        (4, 2) (* 2-detour u-4-z *);
        (1, 5) (* extension toward z=5, no 2-detours except via... none *);
      ]
  in
  let bm = Bitmat.of_graph g in
  (* Base {0,2} has routers {1,3,4} (the router v=1 itself counts, per the
     paper's "one of the 2-detours is {(u,v)(v,z)}"): it is 3-supported, so
     the extension (1,2) of (0,1) toward 1 is a-supported iff a <= 2. *)
  let exts2 = Support.supported_extensions g bm ~u:0 ~v:1 ~a:2 in
  check Alcotest.(list int) "a=2 extensions" [ 2 ] (List.sort compare exts2);
  let exts3 = Support.supported_extensions g bm ~u:0 ~v:1 ~a:3 in
  check Alcotest.(list int) "a=3 extensions" [] exts3;
  check Alcotest.bool "(2,1)-supported toward v" true
    (Support.is_ab_supported_toward g bm ~u:0 ~v:1 ~a:2 ~b:1);
  check Alcotest.bool "(2,2)-supported toward v" false
    (Support.is_ab_supported_toward g bm ~u:0 ~v:1 ~a:2 ~b:2)

let test_complete_graph_support () =
  (* In K_n every edge is (n-3, n-2)-supported toward each direction:
     every extension's base has n-2 common neighbors. *)
  let n = 10 in
  let g = Generators.complete n in
  let bm = Bitmat.of_graph g in
  check Alcotest.bool "max support" true
    (Support.is_ab_supported g bm 0 1 ~a:(n - 3) ~b:(n - 2));
  check Alcotest.bool "beyond max" false
    (Support.is_ab_supported g bm 0 1 ~a:(n - 2) ~b:1)

let test_three_detours () =
  let g = Generators.complete 6 in
  (* 3-detours of (0,1): z in N(1)\{0}, x in N(0) ∩ N(z) \ {0,1,z}:
     4 choices of z, 3 of x. *)
  let detours = Support.three_detours g ~u:0 ~v:1 ~cap:1000 in
  check Alcotest.int "count in K6" 12 (List.length detours);
  List.iter
    (fun (x, z) ->
      check Alcotest.bool "path valid" true
        (Graph.mem_edge g 0 x && Graph.mem_edge g x z && Graph.mem_edge g z 1);
      check Alcotest.bool "avoids endpoints" true (x <> 1 && z <> 0))
    detours;
  let capped = Support.three_detours g ~u:0 ~v:1 ~cap:5 in
  check Alcotest.int "cap respected" 5 (List.length capped)

let test_two_detours () =
  let g = Generators.complete 6 in
  check Alcotest.int "common in K6" 4 (List.length (Support.two_detours g ~u:0 ~v:1 ~cap:100));
  let path = Generators.path 5 in
  check Alcotest.int "none on path" 0 (List.length (Support.two_detours path ~u:0 ~v:1 ~cap:10))

let test_census () =
  let rng = Prng.create 5 in
  let g = Generators.random_regular rng 60 20 in
  let c = Support.census rng g ~a:2 ~b:5 in
  check Alcotest.int "edges total" (Graph.m g) c.Support.edges_total;
  check Alcotest.bool "supported fraction sane" true
    (c.Support.edges_supported >= 0 && c.Support.edges_supported <= c.Support.edges_total);
  check Alcotest.bool "samples" true (Array.length c.Support.extension_counts > 0)

(* ---- Algorithm 1 / Theorem 3 ---- *)

let build_alg1 seed n =
  let rng = Prng.create seed in
  let d = int_of_float (float_of_int n ** 0.7) in
  let d = if n * d mod 2 = 1 then d + 1 else d in
  let g = Generators.random_regular rng n d in
  (g, Regular_dc.build rng g)

let test_alg1_subgraph_and_stretch () =
  List.iter
    (fun seed ->
      let g, t = build_alg1 seed 150 in
      check Alcotest.bool "H subgraph of G" true (Graph.is_subgraph t.Regular_dc.spanner ~of_:g);
      check Alcotest.bool "G' subgraph of H" true
        (Graph.is_subgraph t.Regular_dc.sampled ~of_:t.Regular_dc.spanner);
      check Alcotest.bool "3-spanner (repair on)" true
        (Stretch.is_three_spanner g t.Regular_dc.spanner))
    [ 1; 2; 3 ]

let test_alg1_sampling_rate () =
  let g, t = build_alg1 7 200 in
  (* G' should have ~ m * rho = m/sqrt(D) edges; allow 40% slack. *)
  let expected = float_of_int (Graph.m g) /. sqrt (float_of_int t.Regular_dc.delta) in
  let got = float_of_int (Graph.m t.Regular_dc.sampled) in
  check Alcotest.bool
    (Printf.sprintf "sampled size %.0f vs expected %.0f" got expected)
    true
    (got > 0.6 *. expected && got < 1.4 *. expected)

let test_alg1_no_repair_mostly_3 () =
  (* Without repair the stretch certificate can fail, but the spanner is
     still a subgraph and contains all of G'. *)
  let rng = Prng.create 11 in
  let g = Generators.random_regular rng 150 34 in
  let t = Regular_dc.build ~repair:false rng g in
  check Alcotest.int "no repaired edges" 0 t.Regular_dc.repaired;
  check Alcotest.bool "subgraph" true (Graph.is_subgraph t.Regular_dc.spanner ~of_:g)

let test_alg1_explicit_thresholds () =
  let rng = Prng.create 12 in
  let g = Generators.random_regular rng 80 24 in
  let t = Regular_dc.build ~thresholds:(Regular_dc.Explicit (3, 7)) rng g in
  check Alcotest.int "a" 3 t.Regular_dc.support_a;
  check Alcotest.int "b" 7 t.Regular_dc.support_b

let test_alg1_paper_thresholds_degenerate () =
  (* With the paper's constants at laptop n, no edge is supported: everything
     gets reinserted and H = G (the documented degenerate regime). *)
  let rng = Prng.create 13 in
  let g = Generators.random_regular rng 60 20 in
  let t = Regular_dc.build ~thresholds:Regular_dc.Paper rng g in
  check Alcotest.int "H = G" (Graph.m g) (Graph.m t.Regular_dc.spanner)

let test_alg1_router_valid () =
  let g, t = build_alg1 17 120 in
  let dc = Regular_dc.to_dc t g in
  let rng = Prng.create 99 in
  for _ = 1 to 5 do
    let m = Matching.random_maximal rng g in
    let problem = Routing.problem_of_edges m in
    let paths = dc.Dc.route_matching rng m in
    check Alcotest.bool "valid in H" true (Routing.is_valid t.Regular_dc.spanner problem paths);
    Array.iter
      (fun p -> check Alcotest.bool "length <= 3" true (Routing.length p <= 3))
      paths
  done

let test_alg1_matching_congestion_lemma17 () =
  let g, t = build_alg1 23 200 in
  let dc = Regular_dc.to_dc t g in
  let rng = Prng.create 5 in
  let report = Dc.measure_matching dc rng ~trials:5 in
  (* Lemma 17: C <= 1 + 2 sqrt(D) (whp); allow slack for the small-n regime. *)
  let bound = 1.0 +. (3.0 *. sqrt (float_of_int t.Regular_dc.delta)) in
  check Alcotest.bool
    (Printf.sprintf "lemma17: %d <= %.0f" report.Dc.max_congestion bound)
    true
    (float_of_int report.Dc.max_congestion <= bound)

let test_alg1_general_routing () =
  let g, t = build_alg1 29 120 in
  let dc = Regular_dc.to_dc t g in
  let rng = Prng.create 3 in
  let problem = Problems.permutation rng g in
  let base = Sp_routing.route_random (Csr.snapshot g) rng problem in
  let report = Dc.measure_general dc rng base in
  check Alcotest.bool "substitute congestion >= base is allowed but bounded" true
    (report.Dc.spanner_congestion >= 1);
  check Alcotest.bool "distance stretch <= 3" true (report.Dc.dist_stretch <= 3.0 +. 1e-9);
  (* Theorem 1 bound with the measured matching beta': very loose check *)
  check Alcotest.bool "congestion bounded" true
    (report.Dc.spanner_congestion
    <= 12 * (1 + (2 * t.Regular_dc.delta')) * report.Dc.base_congestion
       * int_of_float (ceil (Stats.log2 (float_of_int (Graph.n g)))))

(* ---- Theorem 2 ---- *)

let build_thm2 seed n epsilon =
  let rng = Prng.create seed in
  let d = int_of_float (float_of_int n ** (2.0 /. 3.0 +. epsilon)) in
  let d = if n * d mod 2 = 1 then d + 1 else d in
  let g = Generators.random_regular rng n d in
  (g, Expander_dc.build rng g)

let test_thm2_sampling_probability () =
  let g, t = build_thm2 1 180 0.12 in
  let n = float_of_int (Graph.n g) in
  let expected_p = (n ** (2.0 /. 3.0)) /. float_of_int (Graph.max_degree g) in
  check (Alcotest.float 1e-9) "p = n^{2/3}/Delta" expected_p t.Expander_dc.p;
  let expected_m = expected_p *. float_of_int (Graph.m g) in
  check Alcotest.bool "spanner size concentrates" true
    (float_of_int (Graph.m t.Expander_dc.spanner) > 0.75 *. expected_m
    && float_of_int (Graph.m t.Expander_dc.spanner) < 1.25 *. expected_m)

let test_thm2_stretch_3 () =
  List.iter
    (fun seed ->
      let g, t = build_thm2 seed 180 0.12 in
      check Alcotest.bool "subgraph" true (Graph.is_subgraph t.Expander_dc.spanner ~of_:g);
      check Alcotest.bool "stretch <= 3" true (Stretch.is_three_spanner g t.Expander_dc.spanner))
    [ 2; 3; 4 ]

let test_thm2_router () =
  let g, t = build_thm2 5 150 0.12 in
  let dc = Expander_dc.to_dc t g in
  let rng = Prng.create 5 in
  let m = Matching.random_maximal rng g in
  let problem = Routing.problem_of_edges m in
  let paths = dc.Dc.route_matching rng m in
  check Alcotest.bool "valid in H" true (Routing.is_valid t.Expander_dc.spanner problem paths);
  Array.iter (fun p -> check Alcotest.bool "length <= 3" true (Routing.length p <= 3)) paths;
  let report = Dc.measure_matching dc rng ~trials:3 in
  (* Lemma 7: expected congestion 1 + o(1), whp O(log n); generous cap. *)
  let bound = 4.0 *. log (float_of_int (Graph.n g)) in
  check Alcotest.bool
    (Printf.sprintf "matching congestion %d <= %.1f" report.Dc.max_congestion bound)
    true
    (float_of_int report.Dc.max_congestion <= bound)

let test_thm2_custom_p () =
  let rng = Prng.create 6 in
  let g = Generators.random_regular rng 100 30 in
  let t = Expander_dc.build ~p:1.0 rng g in
  check Alcotest.int "p=1 keeps everything" (Graph.m g) (Graph.m t.Expander_dc.spanner)

(* ---- Classic baselines ---- *)

let test_greedy_spanner_stretch () =
  List.iter
    (fun k ->
      for seed = 1 to 5 do
        let g = random_graph (seed * 13) 40 0.3 in
        let h = Classic.greedy g ~k in
        check Alcotest.bool "subgraph" true (Graph.is_subgraph h ~of_:g);
        let s = Stretch.exact g h in
        check Alcotest.bool
          (Printf.sprintf "stretch %d <= %d (k=%d, seed=%d)" s ((2 * k) - 1) k seed)
          true
          (s <= (2 * k) - 1)
      done)
    [ 1; 2; 3 ]

let test_greedy_k1_identity () =
  let g = random_graph 3 20 0.3 in
  let h = Classic.greedy g ~k:1 in
  check Alcotest.int "k=1 keeps all edges" (Graph.m g) (Graph.m h)

let test_greedy_sparsity_decreases_in_k () =
  let g = random_graph 17 60 0.5 in
  let m2 = Graph.m (Classic.greedy g ~k:2) in
  let m3 = Graph.m (Classic.greedy g ~k:3) in
  check Alcotest.bool "monotone" true (m3 <= m2 && m2 <= Graph.m g)

let test_greedy_girth_property () =
  (* The greedy (2k-1)-spanner has girth > 2k: check no triangles for k=2. *)
  let g = random_graph 19 40 0.4 in
  let h = Classic.greedy g ~k:2 in
  let ok = ref true in
  Graph.iter_edges h (fun u v ->
      List.iter
        (fun w -> if Graph.mem_edge h v w then ok := false)
        (Graph.common_neighbors h u v |> List.filter (fun w -> Graph.mem_edge h u w)));
  check Alcotest.bool "triangle-free" true !ok

let test_baswana_sen () =
  for seed = 1 to 8 do
    let rng = Prng.create seed in
    let g = random_graph (seed * 31) 60 0.3 in
    let h = Classic.baswana_sen_3 rng g in
    check Alcotest.bool "subgraph" true (Graph.is_subgraph h ~of_:g);
    let s = Stretch.exact g h in
    check Alcotest.bool (Printf.sprintf "stretch %d <= 3 (seed=%d)" s seed) true (s <= 3)
  done

let test_baswana_sen_sparsifies_dense () =
  let rng = Prng.create 41 in
  let g = Generators.complete 100 in
  let h = Classic.baswana_sen_3 rng g in
  (* O(n^{3/2}) = 1000; complete graph has 4950 edges. *)
  check Alcotest.bool
    (Printf.sprintf "sparse: %d" (Graph.m h))
    true
    (Graph.m h < 2500)

(* ---- Sparsifiers ---- *)

let test_sparsify_spectral () =
  let rng = Prng.create 51 in
  let g = Generators.random_regular rng 200 50 in
  let t = Sparsify.spectral rng g in
  check Alcotest.bool "subgraph" true (Graph.is_subgraph t.Sparsify.spanner ~of_:g);
  check Alcotest.bool "connected" true (Connectivity.is_connected t.Sparsify.spanner);
  (* ~ c n ln n / 2 edges *)
  let expected = 6.0 *. log 200.0 *. 200.0 /. 2.0 in
  check Alcotest.bool "size about n log n" true
    (float_of_int (Graph.m t.Sparsify.spanner) < 1.6 *. expected);
  (* expansion survives: ratio below 0.8 *)
  check Alcotest.bool "still an expander" true
    (Spectral.expansion_ratio (Csr.snapshot t.Sparsify.spanner) < 0.8)

let test_sparsify_bounded_degree () =
  let rng = Prng.create 52 in
  let g = Generators.random_regular rng 300 74 in
  let t = Sparsify.bounded_degree ~target:12 rng g in
  check Alcotest.bool "connected" true (Connectivity.is_connected t.Sparsify.spanner);
  let avg_deg = 2.0 *. float_of_int (Graph.m t.Sparsify.spanner) /. 300.0 in
  check Alcotest.bool (Printf.sprintf "constant avg degree %.1f" avg_deg) true (avg_deg < 20.0)

let test_dc_of_sp_router () =
  let rng = Prng.create 53 in
  let g = Generators.torus 6 6 in
  let h = Classic.greedy g ~k:2 in
  let dc = Dc.of_sp_router ~name:"test" ~graph:g ~spanner:h in
  let m = Matching.random_maximal rng g in
  let problem = Routing.problem_of_edges m in
  let paths = dc.Dc.route_matching rng m in
  check Alcotest.bool "valid" true (Routing.is_valid h problem paths)

(* ---- qcheck ---- *)

let prop_alg1_always_subgraph_3spanner =
  QCheck.Test.make ~name:"algorithm1 subgraph + 3-spanner" ~count:15
    QCheck.(pair small_int (int_range 40 120))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let d = max 8 (int_of_float (float_of_int n ** 0.7)) in
      let d = min d (n - 1) in
      let d = if n * d mod 2 = 1 then d - 1 else d in
      let g = Generators.random_regular rng n d in
      let t = Regular_dc.build rng g in
      Graph.is_subgraph t.Regular_dc.spanner ~of_:g
      && Stretch.is_three_spanner g t.Regular_dc.spanner)

let prop_greedy_stretch_bound =
  QCheck.Test.make ~name:"greedy spanner respects 2k-1" ~count:25
    QCheck.(triple small_int (int_range 5 40) (int_range 1 3))
    (fun (seed, n, k) ->
      let g = random_graph seed n 0.4 in
      let h = Classic.greedy g ~k in
      let s = Stretch.exact g h in
      s = max_int || s <= (2 * k) - 1)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "spanner"
    [
      ( "stretch",
        [
          Alcotest.test_case "edge stretch = pairwise" `Quick test_stretch_exact_equals_pairwise;
          Alcotest.test_case "identity" `Quick test_stretch_identity;
          Alcotest.test_case "disconnected" `Quick test_stretch_disconnected;
          Alcotest.test_case "cycle detour" `Quick test_stretch_cycle;
          Alcotest.test_case "sampled consistency" `Quick test_stretch_sampled_consistent;
        ] );
      ( "support",
        [
          Alcotest.test_case "base support" `Quick test_base_support_matches_common_neighbors;
          Alcotest.test_case "extension definitions" `Quick test_supported_extensions_definition;
          Alcotest.test_case "complete graph" `Quick test_complete_graph_support;
          Alcotest.test_case "3-detours" `Quick test_three_detours;
          Alcotest.test_case "2-detours" `Quick test_two_detours;
          Alcotest.test_case "census" `Quick test_census;
        ] );
      ( "algorithm1",
        [
          Alcotest.test_case "subgraph + stretch" `Quick test_alg1_subgraph_and_stretch;
          Alcotest.test_case "sampling rate" `Quick test_alg1_sampling_rate;
          Alcotest.test_case "no repair mode" `Quick test_alg1_no_repair_mostly_3;
          Alcotest.test_case "explicit thresholds" `Quick test_alg1_explicit_thresholds;
          Alcotest.test_case "paper thresholds degenerate" `Quick test_alg1_paper_thresholds_degenerate;
          Alcotest.test_case "router validity" `Quick test_alg1_router_valid;
          Alcotest.test_case "lemma 17 congestion" `Quick test_alg1_matching_congestion_lemma17;
          Alcotest.test_case "general routing" `Quick test_alg1_general_routing;
        ] );
      ( "theorem2",
        [
          Alcotest.test_case "sampling probability" `Quick test_thm2_sampling_probability;
          Alcotest.test_case "stretch 3" `Quick test_thm2_stretch_3;
          Alcotest.test_case "router + congestion" `Quick test_thm2_router;
          Alcotest.test_case "custom p" `Quick test_thm2_custom_p;
        ] );
      ( "classic",
        [
          Alcotest.test_case "greedy stretch" `Quick test_greedy_spanner_stretch;
          Alcotest.test_case "greedy k=1" `Quick test_greedy_k1_identity;
          Alcotest.test_case "greedy monotone in k" `Quick test_greedy_sparsity_decreases_in_k;
          Alcotest.test_case "greedy triangle-free" `Quick test_greedy_girth_property;
          Alcotest.test_case "baswana-sen stretch" `Quick test_baswana_sen;
          Alcotest.test_case "baswana-sen sparsity" `Quick test_baswana_sen_sparsifies_dense;
        ] );
      ( "sparsify",
        [
          Alcotest.test_case "spectral substitute" `Quick test_sparsify_spectral;
          Alcotest.test_case "bounded degree substitute" `Quick test_sparsify_bounded_degree;
          Alcotest.test_case "sp-router dc" `Quick test_dc_of_sp_router;
        ] );
      ("properties", q [ prop_alg1_always_subgraph_3spanner; prop_greedy_stretch_bound ]);
    ]
