(* Focused edge-case tests across the substrate: boundary inputs, degenerate
   graphs, formatting branches, and structural properties not covered by the
   per-module suites. *)

let check = Alcotest.check

(* ---- Graph boundaries ---- *)

let test_empty_graph () =
  let g = Graph.create 0 in
  check Alcotest.int "n" 0 (Graph.n g);
  check Alcotest.int "m" 0 (Graph.m g);
  check Alcotest.int "max degree" 0 (Graph.max_degree g);
  check Alcotest.int "min degree" 0 (Graph.min_degree g);
  check Alcotest.bool "regular" true (Graph.is_regular g);
  check Alcotest.int "components" 0 (Connectivity.count g);
  check Alcotest.bool "connected (vacuous)" true (Connectivity.is_connected g)

let test_single_node () =
  let g = Graph.create 1 in
  check Alcotest.bool "connected" true (Connectivity.is_connected g);
  check Alcotest.int "stretch of itself" 1 (Stretch.exact g (Graph.copy g));
  let c = Csr.snapshot g in
  check Alcotest.int "self distance" 0 (Bfs.distance c 0 0)

let test_of_edges_dedup () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 0); (0, 1); (2, 2) ] in
  check Alcotest.int "dedup + no self-loops" 1 (Graph.m g)

let test_common_neighbors_adjacent_nodes () =
  (* common neighbors of adjacent nodes in a triangle *)
  let g = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  check Alcotest.(list int) "triangle commons" [ 2 ] (Graph.common_neighbors g 0 1)

let test_fold_neighbors () =
  let g = Generators.star 5 in
  let sum = Graph.fold_neighbors g 0 (fun acc v -> acc + v) 0 in
  check Alcotest.int "fold over leaves" (1 + 2 + 3 + 4) sum

let test_edge_array_matches_edges () =
  let g = Generators.torus 4 4 in
  let from_list = List.sort compare (Graph.edges g) in
  let from_array = List.sort compare (Array.to_list (Graph.edge_array g)) in
  check Alcotest.(list (pair int int)) "consistent" from_list from_array

(* ---- CSR binary search boundaries ---- *)

let test_csr_mem_edge_extremes () =
  let g = Graph.of_edges 10 [ (5, 0); (5, 9); (5, 4) ] in
  let c = Csr.snapshot g in
  check Alcotest.bool "first neighbor" true (Csr.mem_edge c 5 0);
  check Alcotest.bool "last neighbor" true (Csr.mem_edge c 5 9);
  check Alcotest.bool "middle neighbor" true (Csr.mem_edge c 5 4);
  check Alcotest.bool "absent below" false (Csr.mem_edge c 5 1);
  check Alcotest.bool "absent above" false (Csr.mem_edge c 5 8);
  check Alcotest.bool "empty adjacency" false (Csr.mem_edge c 1 2)

(* ---- Generators boundaries ---- *)

let test_generators_tiny () =
  check Alcotest.int "path 1" 0 (Graph.m (Generators.path 1));
  check Alcotest.int "star 1" 0 (Graph.m (Generators.star 1));
  check Alcotest.int "complete 1" 0 (Graph.m (Generators.complete 1));
  check Alcotest.int "hypercube 0" 1 (Graph.n (Generators.hypercube 0));
  check Alcotest.int "grid 1x1" 0 (Graph.m (Generators.grid 1 1));
  check Alcotest.int "circulant no offsets" 0 (Graph.m (Generators.circulant 5 []));
  check Alcotest.int "circulant offset 0 ignored" 0 (Graph.m (Generators.circulant 5 [ 0 ]))

let test_random_regular_d0_d1 () =
  let rng = Prng.create 1 in
  let g0 = Generators.random_regular rng 6 0 in
  check Alcotest.int "0-regular" 0 (Graph.m g0);
  let g1 = Generators.random_regular rng 6 1 in
  check Alcotest.bool "1-regular = perfect matching" true
    (Graph.is_regular g1 && Graph.max_degree g1 = 1 && Graph.m g1 = 3)

let test_torus_small_dims () =
  (* 2xk torus has doubled wrap edges collapsing; stays simple *)
  let g = Generators.torus 2 4 in
  check Alcotest.bool "simple graph" true (Graph.m g <= 2 * 8)

(* ---- Theorem 4 degree structure ---- *)

let test_theorem4_degrees_balanced () =
  (* the paper notes the composed graph has degrees within constant factors:
     pool-node degree ~ 2-3 per owning instance, special degree = k+1 *)
  let rng = Prng.create 5 in
  let t = Theorem4.make rng ~pool:400 ~instances:60 ~k:3 in
  let g = t.Theorem4.graph in
  Array.iter
    (fun inst ->
      check Alcotest.int "special degree k+1" (t.Theorem4.k + 1)
        (Graph.degree g inst.Theorem4.special))
    t.Theorem4.instances;
  (* pool nodes: degree <= 3 * (#owning instances); bounded by design load *)
  let max_pool_degree = ref 0 in
  for v = 0 to t.Theorem4.pool - 1 do
    max_pool_degree := max !max_pool_degree (Graph.degree g v)
  done;
  check Alcotest.bool
    (Printf.sprintf "pool degrees bounded (%d)" !max_pool_degree)
    true (!max_pool_degree <= 30)

(* ---- Stats formatting branches ---- *)

let test_fmt_float_branches () =
  check Alcotest.string "integer" "42" (Stats.fmt_float 42.0);
  check Alcotest.string "large" "123.5" (Stats.fmt_float 123.456);
  check Alcotest.string "small" "0.123" (Stats.fmt_float 0.1234)

(* ---- Prng int64 split determinism ---- *)

let test_split_deterministic () =
  let mk () =
    let a = Prng.create 9 in
    let child = Prng.split a in
    (Prng.int64 a, Prng.int64 child)
  in
  let x1, y1 = mk () in
  let x2, y2 = mk () in
  check Alcotest.int64 "parent deterministic" x1 x2;
  check Alcotest.int64 "child deterministic" y1 y2

(* ---- Routing degenerate cases ---- *)

let test_routing_self_request_path () =
  let g = Generators.cycle 4 in
  let problem = [| { Routing.src = 2; dst = 2 } |] in
  check Alcotest.bool "single-node path valid" true (Routing.is_valid g problem [| [| 2 |] |])

let test_decompose_duplicate_requests () =
  (* two identical paths share every edge: two levels, each a matching *)
  let routing = [| [| 0; 1; 2 |]; [| 0; 1; 2 |] |] in
  let matchings = Decompose.level_matchings ~n:3 routing in
  Array.iter
    (fun m -> check Alcotest.bool "matching" true (Matching.is_matching m))
    matchings;
  let total = Array.fold_left (fun acc m -> acc + Array.length m) 0 matchings in
  check Alcotest.int "4 edge slots" 4 total;
  let { Decompose.substitute; stats } =
    Decompose.run ~n:3 ~router:(fun pairs -> Array.map (fun (u, v) -> [| u; v |]) pairs) routing
  in
  check Alcotest.int "2 levels" 2 stats.Decompose.levels;
  Array.iteri (fun i p -> check Alcotest.(array int) "unchanged" routing.(i) p) substitute

let test_edge_coloring_empty_and_single () =
  let empty = Graph.create 4 in
  let c = Edge_coloring.misra_gries empty in
  check Alcotest.int "no colors" 0 c.Edge_coloring.num;
  check Alcotest.bool "vacuously proper" true (Edge_coloring.is_proper empty c);
  let single = Graph.of_edges 2 [ (0, 1) ] in
  let c1 = Edge_coloring.misra_gries single in
  check Alcotest.int "one color" 1 c1.Edge_coloring.num

(* ---- spanner edge cases ---- *)

let test_algorithm1_on_tiny_graphs () =
  (* must not crash on degenerate inputs *)
  List.iter
    (fun g ->
      let rng = Prng.create 3 in
      let t = Regular_dc.build rng g in
      check Alcotest.bool "subgraph" true (Graph.is_subgraph t.Regular_dc.spanner ~of_:g))
    [ Graph.create 0; Graph.create 1; Generators.cycle 3; Generators.complete 4 ]

let test_expander_dc_on_clique () =
  let g = Generators.complete 30 in
  let rng = Prng.create 4 in
  let t = Expander_dc.build rng g in
  check Alcotest.bool "3-spanner of clique" true (Stretch.is_three_spanner g t.Expander_dc.spanner)

let test_greedy_empty () =
  let g = Graph.create 5 in
  check Alcotest.int "empty stays empty" 0 (Graph.m (Classic.greedy g ~k:2))

let test_baswana_sen_tiny () =
  let rng = Prng.create 5 in
  let g = Generators.cycle 3 in
  let h = Classic.baswana_sen_3 rng g in
  check Alcotest.bool "valid spanner" true
    (Graph.is_subgraph h ~of_:g && Stretch.exact g h <= 3)

(* ---- lowerbound edge cases ---- *)

let test_ray_line_k1 () =
  let t = Ray_line.make 1 in
  check Alcotest.int "4 nodes" 4 (Graph.n t.Ray_line.graph);
  check Alcotest.int "4 edges" 4 (Graph.m t.Ray_line.graph);
  let h, removed = Ray_line.extremal_spanner t in
  check Alcotest.int "1 removed" 1 (Array.length removed);
  check Alcotest.bool "3-spanner" true (Stretch.is_three_spanner t.Ray_line.graph h)

let test_lemma2_size_1 () =
  let t = Lemma2.make ~alpha:3 ~size:1 in
  (* only the kept matching edge: trivially fine *)
  check Alcotest.int "stretch 1" 1 (Stretch.exact t.Lemma2.graph t.Lemma2.spanner);
  check Alcotest.int "congestion" 1
    (Routing.congestion ~n:(Graph.n t.Lemma2.graph) (Lemma2.short_routing t))

(* ---- distributed edge cases ---- *)

let test_dist_spanner_on_clique () =
  let g = Generators.complete 20 in
  let r = Dist_spanner.run ~seed:3 g in
  let ref_h = Dist_spanner.reference ~seed:3 g in
  check Alcotest.bool "clique agrees" true
    (Graph.m r.Dist_spanner.spanner = Graph.m ref_h
    && Graph.is_subgraph r.Dist_spanner.spanner ~of_:ref_h)

let test_local_model_zero_rounds () =
  let g = Generators.cycle 4 in
  let states, stats =
    Local_model.run g ~rounds:0 ~init:(fun v -> v) ~step:(fun ~round:_ ~me:_ ~neighbors:_ s _ -> (s, []))
  in
  check Alcotest.int "no rounds" 0 stats.Local_model.rounds;
  check Alcotest.(array int) "states untouched" [| 0; 1; 2; 3 |] states

(* ---- congestion opt corner ---- *)

let test_copt_single_request () =
  let g = Generators.path 6 in
  let c = Csr.snapshot g in
  let rng = Prng.create 6 in
  let routing = Congestion_opt.route c rng [| { Routing.src = 0; dst = 5 } |] in
  check Alcotest.int "unique path" 5 (Routing.length routing.(0))

let test_copt_zero_requests () =
  let g = Generators.path 4 in
  let c = Csr.snapshot g in
  check Alcotest.int "empty problem" 0 (Congestion_opt.congestion c (Prng.create 7) [||])

let () =
  Alcotest.run "edge-cases"
    [
      ( "graph",
        [
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "of_edges dedup" `Quick test_of_edges_dedup;
          Alcotest.test_case "triangle commons" `Quick test_common_neighbors_adjacent_nodes;
          Alcotest.test_case "fold neighbors" `Quick test_fold_neighbors;
          Alcotest.test_case "edge array" `Quick test_edge_array_matches_edges;
          Alcotest.test_case "csr binary search" `Quick test_csr_mem_edge_extremes;
        ] );
      ( "generators",
        [
          Alcotest.test_case "tiny instances" `Quick test_generators_tiny;
          Alcotest.test_case "d = 0, 1" `Quick test_random_regular_d0_d1;
          Alcotest.test_case "small torus" `Quick test_torus_small_dims;
          Alcotest.test_case "theorem4 degrees" `Quick test_theorem4_degrees_balanced;
        ] );
      ( "util",
        [
          Alcotest.test_case "fmt_float branches" `Quick test_fmt_float_branches;
          Alcotest.test_case "split deterministic" `Quick test_split_deterministic;
        ] );
      ( "routing",
        [
          Alcotest.test_case "self request" `Quick test_routing_self_request_path;
          Alcotest.test_case "duplicate requests" `Quick test_decompose_duplicate_requests;
          Alcotest.test_case "coloring empty/single" `Quick test_edge_coloring_empty_and_single;
          Alcotest.test_case "copt single request" `Quick test_copt_single_request;
          Alcotest.test_case "copt empty" `Quick test_copt_zero_requests;
        ] );
      ( "spanner",
        [
          Alcotest.test_case "algorithm1 tiny graphs" `Quick test_algorithm1_on_tiny_graphs;
          Alcotest.test_case "theorem2 on clique" `Quick test_expander_dc_on_clique;
          Alcotest.test_case "greedy empty" `Quick test_greedy_empty;
          Alcotest.test_case "baswana-sen tiny" `Quick test_baswana_sen_tiny;
        ] );
      ( "lowerbound",
        [
          Alcotest.test_case "ray-line k=1" `Quick test_ray_line_k1;
          Alcotest.test_case "lemma2 size 1" `Quick test_lemma2_size_1;
        ] );
      ( "distributed",
        [
          Alcotest.test_case "clique" `Quick test_dist_spanner_on_clique;
          Alcotest.test_case "zero rounds" `Quick test_local_model_zero_rounds;
        ] );
    ]
