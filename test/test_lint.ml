(* Dcs_lint tests: every pass must fire on a minimal bad fixture and stay
   quiet on the matching clean one; the repo itself must be lint-clean under
   the checked-in lint.allow; the JSON report and the allowlist format must
   round-trip. *)

let check = Alcotest.check

(* ---- fixture harness ---- *)

let ctx ?(files = []) ?(par = []) () =
  {
    Lint_passes.file_exists = (fun f -> List.mem f files);
    parallel_reachable = (fun m -> List.mem m par);
  }

let run_pass id ?files ?par ~path src =
  match Lint_passes.find id with
  | None -> Alcotest.failf "unknown pass %s" id
  | Some p -> p.Lint_passes.check (ctx ?files ?par ()) (Lint_source.of_string ~path src)

let fires name findings = check Alcotest.bool (name ^ " fires") true (findings <> [])

let clean name findings =
  check Alcotest.bool
    (Printf.sprintf "%s clean (got: %s)" name
       (String.concat "; " (List.map (fun f -> f.Lint_finding.msg) findings)))
    true (findings = [])

(* ---- banned-api ---- *)

let test_banned_api () =
  let p = "lib/routing/x.ml" in
  fires "failwith" (run_pass "banned-api" ~path:p {|let f () = failwith "boom"|});
  fires "Failure" (run_pass "banned-api" ~path:p {|let f () = raise (Failure "boom")|});
  fires "print" (run_pass "banned-api" ~path:p {|let f () = print_endline "hi"|});
  fires "printf" (run_pass "banned-api" ~path:p {|let f () = Printf.printf "hi"|});
  fires "eprintf" (run_pass "banned-api" ~path:p {|let f () = Printf.eprintf "hi"|});
  fires "of_graph" (run_pass "banned-api" ~path:p {|let f g = Csr.of_graph g|});
  fires "to_csr" (run_pass "banned-api" ~path:p {|let f g = Graph.to_csr g|});
  fires "bare invalid_arg"
    (run_pass "banned-api" ~path:p {|let f () = invalid_arg "no prefix here"|});
  fires "bare Invalid_argument"
    (run_pass "banned-api" ~path:p {|let f () = raise (Invalid_argument "no prefix")|});
  clean "prefixed invalid_arg"
    (run_pass "banned-api" ~path:p {|let f () = invalid_arg "Routing.f: bad input"|});
  clean "colon prefix" (run_pass "banned-api" ~path:p {|let f () = invalid_arg "Graph: oops"|});
  clean "sprintf is fine"
    (run_pass "banned-api" ~path:p {|let f x = Printf.sprintf "%d" x|});
  clean "fprintf to channel is fine"
    (run_pass "banned-api" ~path:p {|let f oc = Printf.fprintf oc "row"|});
  clean "snapshot is fine" (run_pass "banned-api" ~path:p {|let f g = Csr.snapshot g|});
  clean "string literal not flagged"
    (run_pass "banned-api" ~path:p {|let f () = "failwith Printf.printf"|});
  (* scoping exemptions *)
  clean "io_error.ml may raise"
    (run_pass "banned-api" ~path:"lib/util/io_error.ml" {|let f () = failwith "x"|});
  clean "report.ml may print"
    (run_pass "banned-api" ~path:"lib/util/report.ml" {|let f () = Printf.printf "t"|});
  clean "obs may warn"
    (run_pass "banned-api" ~path:"lib/obs/trace.ml" {|let f () = Printf.eprintf "w"|});
  clean "lib/graph may build CSRs"
    (run_pass "banned-api" ~path:"lib/graph/csr.ml" {|let f g = Csr.of_graph g|});
  clean "bin/ is out of scope"
    (run_pass "banned-api" ~path:"bin/dcs_cli.ml" {|let f () = Printf.printf "t"|})

(* ---- unsafe-audit ---- *)

let test_unsafe_audit () =
  let kernel = "lib/graph/bitmat.ml" in
  fires "unsafe without SAFETY"
    (run_pass "unsafe-audit" ~path:kernel {|let f a = Array.unsafe_get a 0|});
  fires "unsafe outside kernels, even with SAFETY"
    (run_pass "unsafe-audit" ~path:"lib/spanner/dc.ml"
       "(* SAFETY: nope *)\nlet f a = Array.unsafe_get a 0");
  fires "bytes unsafe counted"
    (run_pass "unsafe-audit" ~path:"lib/routing/x.ml" {|let f b = Bytes.unsafe_get b 0|});
  clean "SAFETY within window"
    (run_pass "unsafe-audit" ~path:kernel
       "(* SAFETY: i is bounded by construction *)\nlet f a = Array.unsafe_get a 0");
  clean "safe access" (run_pass "unsafe-audit" ~path:kernel {|let f a = a.(0)|});
  (* the marker must be close: > marker_window lines away does not count *)
  let far =
    "(* SAFETY: too far away *)\n" ^ String.concat "" (List.init 12 (fun _ -> "let _ = ()\n"))
    ^ "let f a = Array.unsafe_get a 0"
  in
  fires "SAFETY out of window" (run_pass "unsafe-audit" ~path:kernel far)

(* ---- par-hygiene ---- *)

let test_par_hygiene () =
  let p = "lib/foo/state.ml" in
  let par = [ "State" ] in
  fires "toplevel ref" (run_pass "par-hygiene" ~path:p ~par {|let total = ref 0|});
  fires "toplevel Hashtbl"
    (run_pass "par-hygiene" ~path:p ~par {|let cache = Hashtbl.create 16|});
  fires "toplevel array" (run_pass "par-hygiene" ~path:p ~par {|let buf = Array.make 4 0|});
  fires "mutated record global"
    (run_pass "par-hygiene" ~path:p ~par
       "type r = { mutable x : int }\nlet st = { x = 0 }\nlet bump () = st.x <- st.x + 1");
  clean "annotated DOMAIN-SAFE"
    (run_pass "par-hygiene" ~path:p ~par
       "(* DOMAIN-SAFE: guarded by mutex m *)\nlet total = ref 0");
  clean "not reachable from parallel code"
    (run_pass "par-hygiene" ~path:p ~par:[] {|let total = ref 0|});
  clean "local mutable state is fine"
    (run_pass "par-hygiene" ~path:p ~par {|let f () = let acc = ref 0 in !acc|});
  clean "immutable toplevel" (run_pass "par-hygiene" ~path:p ~par {|let limit = 42|});
  clean "unmutated record is fine"
    (run_pass "par-hygiene" ~path:p ~par
       "type r = { mutable x : int }\nlet mk () = { x = 0 }")

(* ---- iface-coverage ---- *)

let test_iface_coverage () =
  let p = "lib/foo/bar.ml" in
  fires "missing mli" (run_pass "iface-coverage" ~path:p ~files:[ p ] "let x = 1");
  clean "mli present" (run_pass "iface-coverage" ~path:p ~files:[ p; p ^ "i" ] "let x = 1");
  clean "bin/ exempt" (run_pass "iface-coverage" ~path:"bin/main.ml" ~files:[] "let x = 1")

(* ---- poly-compare ---- *)

let test_poly_compare () =
  let p = "lib/spanner/x.ml" in
  fires "= on graph ident" (run_pass "poly-compare" ~path:p {|let f graph h = graph = h|});
  fires "= on snapshot"
    (run_pass "poly-compare" ~path:p {|let f a b = Graph.snapshot a = Graph.snapshot b|});
  fires "compare on csr" (run_pass "poly-compare" ~path:p {|let f (csr : Csr.t) x = compare csr x|});
  fires "<> on generator result"
    (run_pass "poly-compare" ~path:p {|let f rng h = Generators.cycle 5 <> h|});
  clean "ints are fine" (run_pass "poly-compare" ~path:p {|let f a b = a = b|});
  clean "counts are fine" (run_pass "poly-compare" ~path:p {|let f g h = Graph.n g = Graph.n h|});
  clean "physical identity is fine" (run_pass "poly-compare" ~path:p {|let f graph h = graph == h|})

(* ---- parse pseudo-pass ---- *)

let test_parse_failure_is_a_finding () =
  let dir = Filename.temp_file "dcs_lint" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let bad = Filename.concat dir "broken.ml" in
  Out_channel.with_open_text bad (fun oc -> output_string oc "let let let");
  Fun.protect
    ~finally:(fun () ->
      Sys.remove bad;
      Sys.rmdir dir)
    (fun () ->
      let r = Lint_driver.run ~roots:[ dir ] () in
      check Alcotest.int "one finding" 1 (List.length r.Lint_driver.findings);
      match r.Lint_driver.findings with
      | [ f ] -> check Alcotest.string "parse pass" "parse" f.Lint_finding.pass
      | _ -> Alcotest.fail "expected exactly one parse finding")

(* ---- end-to-end: the repo is lint-clean ---- *)

let repo_roots = [ "../lib"; "../bin"; "../bench" ]

let test_repo_is_lint_clean () =
  let allow =
    match Lint_allow.load "../lint.allow" with
    | Ok a -> a
    | Error msg -> Alcotest.failf "lint.allow unreadable: %s" msg
  in
  let r = Lint_driver.run ~allow ~roots:repo_roots () in
  check Alcotest.bool "scanned a realistic number of sources" true (r.Lint_driver.files_scanned > 50);
  check
    Alcotest.(list string)
    "repo lint-clean" []
    (List.map
       (fun f -> Printf.sprintf "%s:%d %s: %s" f.Lint_finding.file f.line f.pass f.msg)
       r.Lint_driver.findings)

let test_every_pass_exercised_by_repo_kernels () =
  (* the unsafe-audit pass must actually see unsafe sites in the kernels:
     if the kernels drop Array.unsafe_*, the SAFETY convention (and this
     pass) silently stops being exercised *)
  let src =
    match Lint_source.load "../lib/graph/bfs_batch.ml" with
    | Ok s -> s
    | Error msg -> Alcotest.failf "cannot load bfs_batch.ml: %s" msg
  in
  let contains needle hay =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let uses_unsafe =
    contains "Array.unsafe_get" src.Lint_source.text
    && contains "SAFETY:" src.Lint_source.text
  in
  check Alcotest.bool "kernels use justified unsafe accesses" true uses_unsafe

(* ---- JSON report ---- *)

let test_json_report () =
  let r = Lint_driver.run ~roots:repo_roots () in
  let json = Lint_driver.to_json r in
  List.iter
    (fun key ->
      check Alcotest.bool (Printf.sprintf "json has %S" key) true
        (let re = Printf.sprintf "\"%s\"" key in
         let rec find i =
           i + String.length re <= String.length json
           && (String.sub json i (String.length re) = re || find (i + 1))
         in
         find 0))
    [ "findings"; "summary"; "files"; "errors"; "warnings"; "suppressed" ];
  (* escaping: a finding whose message embeds quotes/newlines must stay
     well-formed (spot-check the escaper directly) *)
  check Alcotest.string "escape" {|a\"b\\c\nd|} (Lint_finding.json_escape "a\"b\\c\nd");
  let f =
    Lint_finding.make ~pass:"banned-api" ~file:"lib/x.ml" ~line:3 ~col:2
      ~severity:Lint_finding.Error "uses \"quotes\""
  in
  check Alcotest.bool "finding json shape" true
    (Lint_finding.to_json f
    = {|{"pass":"banned-api","file":"lib/x.ml","line":3,"col":2,"severity":"error","msg":"uses \"quotes\""}|}
    )

(* ---- allowlist ---- *)

let test_allowlist_round_trip () =
  let entries =
    [
      { Lint_allow.pass = "banned-api"; path = "lib/routing/valiant.ml"; substring = "" };
      { Lint_allow.pass = "*"; path = "lib/obs/trace.ml"; substring = "top-level mutable state" };
    ]
  in
  (match Lint_allow.of_string (Lint_allow.to_string entries) with
  | Ok parsed -> check Alcotest.bool "round trip" true (parsed = entries)
  | Error msg -> Alcotest.failf "round trip failed: %s" msg);
  (* comments and blanks vanish *)
  (match Lint_allow.of_string "# header\n\n  # indented comment\n" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "comments produced entries"
  | Error msg -> Alcotest.failf "comment parse failed: %s" msg);
  (* matching: pass, path suffix (whole segments), message substring *)
  let f =
    Lint_finding.make ~pass:"par-hygiene" ~file:"../lib/obs/trace.ml" ~line:15 ~col:0
      ~severity:Lint_finding.Warning "top-level mutable state: spans is a ref cell"
  in
  check Alcotest.bool "wildcard + suffix + substring" true (Lint_allow.matches entries f);
  check Alcotest.bool "wrong path" false
    (Lint_allow.matches entries { f with Lint_finding.file = "../lib/obs/metrics.ml" });
  check Alcotest.bool "partial segment does not match" false
    (Lint_allow.matches
       [ { Lint_allow.pass = "*"; path = "race.ml"; substring = "" } ]
       f);
  check Alcotest.bool "wrong substring" false
    (Lint_allow.matches entries { f with Lint_finding.msg = "something else" })

let test_allowlist_suppresses () =
  (* suppress a synthetic violation end-to-end through the driver *)
  let dir = Filename.temp_file "dcs_lint_allow" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Sys.mkdir (Filename.concat dir "lib") 0o755;
  let bad = Filename.concat (Filename.concat dir "lib") "naughty.ml" in
  Out_channel.with_open_text bad (fun oc -> output_string oc "let f () = failwith \"x\"\n");
  Fun.protect
    ~finally:(fun () ->
      Sys.remove bad;
      Sys.rmdir (Filename.concat dir "lib");
      Sys.rmdir dir)
    (fun () ->
      let without = Lint_driver.run ~roots:[ dir ] () in
      (* naughty.ml also misses its mli: expect both passes to fire *)
      check Alcotest.bool "fires without allowlist" true
        (List.length without.Lint_driver.findings >= 2);
      let allow =
        [
          { Lint_allow.pass = "banned-api"; path = "lib/naughty.ml"; substring = "failwith" };
          { Lint_allow.pass = "iface-coverage"; path = "lib/naughty.ml"; substring = "" };
        ]
      in
      let r = Lint_driver.run ~allow ~roots:[ dir ] () in
      check Alcotest.int "all suppressed" 0 (List.length r.Lint_driver.findings);
      check Alcotest.bool "suppression counted" true (r.Lint_driver.suppressed >= 2);
      check Alcotest.int "exit 0 when suppressed" 0 (Lint_driver.exit_code r);
      check Alcotest.int "exit 1 otherwise" 1 (Lint_driver.exit_code without))

(* ---- the executable ---- *)

let lint_exe =
  Filename.concat Filename.parent_dir_name (Filename.concat "bin" "dcs_lint.exe")

let test_exe_json_clean () =
  check Alcotest.bool "dcs_lint.exe built" true (Sys.file_exists lint_exe);
  let out = Filename.temp_file "dcs_lint_out" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      let code =
        Sys.command
          (Printf.sprintf "%s --json --allow ../lint.allow ../lib ../bin ../bench > %s"
             lint_exe out)
      in
      check Alcotest.int "exit 0 on clean repo" 0 code;
      let body = In_channel.with_open_text out In_channel.input_all in
      check Alcotest.bool "json body" true
        (String.length body > 0 && body.[0] = '{');
      let contains needle =
        let nh = String.length body and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub body i nn = needle || go (i + 1)) in
        go 0
      in
      check Alcotest.bool "empty findings array" true (contains "\"findings\":[\n]");
      check Alcotest.bool "summary present" true (contains "\"summary\""))

let () =
  Alcotest.run "lint"
    [
      ( "passes",
        [
          Alcotest.test_case "banned-api" `Quick test_banned_api;
          Alcotest.test_case "unsafe-audit" `Quick test_unsafe_audit;
          Alcotest.test_case "par-hygiene" `Quick test_par_hygiene;
          Alcotest.test_case "iface-coverage" `Quick test_iface_coverage;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "parse failure" `Quick test_parse_failure_is_a_finding;
        ] );
      ( "repo",
        [
          Alcotest.test_case "lint-clean" `Quick test_repo_is_lint_clean;
          Alcotest.test_case "kernels exercised" `Quick test_every_pass_exercised_by_repo_kernels;
        ] );
      ( "output",
        [
          Alcotest.test_case "json report" `Quick test_json_report;
          Alcotest.test_case "exe --json" `Quick test_exe_json_clean;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "round trip" `Quick test_allowlist_round_trip;
          Alcotest.test_case "suppression" `Quick test_allowlist_suppresses;
        ] );
    ]
