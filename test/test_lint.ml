(* Dcs_lint tests: every pass must fire on a minimal bad fixture and stay
   quiet on the matching clean one; the typed tier must catch the module-
   alias and open evasions the parse tier provably misses (asserted on the
   same fixture, both tiers); the repo itself must be lint-clean under the
   checked-in lint.allow; the JSON report and the allowlist format must
   round-trip. *)

let check = Alcotest.check

let contains needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---- fixture harness (parse tier) ---- *)

let ctx ?(files = []) ?(par = []) () =
  {
    Lint_passes.file_exists = (fun f -> List.mem f files);
    parallel_reachable = (fun m -> List.mem m par);
  }

let run_pass id ?files ?par ~path src =
  match Lint_passes.find id with
  | None -> Alcotest.failf "unknown pass %s" id
  | Some p -> p.Lint_passes.check (ctx ?files ?par ()) (Lint_source.of_string ~path src)

let fires name findings = check Alcotest.bool (name ^ " fires") true (findings <> [])

let clean name findings =
  check Alcotest.bool
    (Printf.sprintf "%s clean (got: %s)" name
       (String.concat "; " (List.map (fun f -> f.Lint_finding.msg) findings)))
    true (findings = [])

(* ---- fixture harness (typed tier) ----

   The typed tier needs real .cmt files, so fixtures are compiled with
   ocamlc -bin-annot into a throwaway directory: stub dependencies (Graph,
   Csr, Stretch, Repair) at the root, the fixture modules under lib/ so the
   lib-scoped rules apply.  Lint_driver.run is then pointed at <dir>/lib —
   its cmt discovery and load-path remapping find the fixture's artifacts
   the same way they find dune's. *)

let stub_graph = "type t = { n : int }\nlet make n = { n }\nlet n t = t.n\n"

let stub_csr =
  "type t = { deg : int array }\nlet of_graph (_ : Graph.t) = { deg = [||] }\n\
   let snapshot = of_graph\n"

let stub_stretch = "let violations (_ : Graph.t) : (int * int) list = []\n"
let stub_repair = "let run (_ : Graph.t) = 3\n"

let write_file path contents =
  Out_channel.with_open_text path (fun oc -> output_string oc contents)

let sh cmd = if Sys.command cmd <> 0 then Alcotest.failf "command failed: %s" cmd

let with_typed_project lib_files f =
  let dir = Filename.temp_file "dcs_lint_typed" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Sys.mkdir (Filename.concat dir "lib") 0o755;
  let stubs =
    [
      ("graph.ml", stub_graph);
      ("csr.ml", stub_csr);
      ("stretch.ml", stub_stretch);
      ("repair.ml", stub_repair);
    ]
  in
  List.iter (fun (n, c) -> write_file (Filename.concat dir n) c) stubs;
  List.iter
    (fun (n, c) -> write_file (Filename.concat (Filename.concat dir "lib") n) c)
    lib_files;
  Fun.protect
    ~finally:(fun () -> ignore (Sys.command ("rm -rf " ^ Filename.quote dir)))
    (fun () ->
      sh
        (Printf.sprintf "cd %s && ocamlc -bin-annot -c %s" (Filename.quote dir)
           (String.concat " " (List.map fst stubs)));
      sh
        (Printf.sprintf "cd %s && ocamlc -bin-annot -I %s -c %s"
           (Filename.quote (Filename.concat dir "lib"))
           (Filename.quote dir)
           (String.concat " " (List.map fst lib_files)));
      f dir)

let lint ?(typed = true) dir =
  Lint_driver.run ~typed ~roots:[ Filename.concat dir "lib" ] ()

let by_pass id (r : Lint_driver.result) =
  List.filter (fun f -> f.Lint_finding.pass = id) r.Lint_driver.findings

(* ---- banned-api ---- *)

let test_banned_api () =
  let p = "lib/routing/x.ml" in
  fires "failwith" (run_pass "banned-api" ~path:p {|let f () = failwith "boom"|});
  fires "Failure" (run_pass "banned-api" ~path:p {|let f () = raise (Failure "boom")|});
  fires "print" (run_pass "banned-api" ~path:p {|let f () = print_endline "hi"|});
  fires "printf" (run_pass "banned-api" ~path:p {|let f () = Printf.printf "hi"|});
  fires "eprintf" (run_pass "banned-api" ~path:p {|let f () = Printf.eprintf "hi"|});
  fires "of_graph" (run_pass "banned-api" ~path:p {|let f g = Csr.of_graph g|});
  fires "to_csr" (run_pass "banned-api" ~path:p {|let f g = Graph.to_csr g|});
  fires "bare invalid_arg"
    (run_pass "banned-api" ~path:p {|let f () = invalid_arg "no prefix here"|});
  fires "bare Invalid_argument"
    (run_pass "banned-api" ~path:p {|let f () = raise (Invalid_argument "no prefix")|});
  clean "prefixed invalid_arg"
    (run_pass "banned-api" ~path:p {|let f () = invalid_arg "Routing.f: bad input"|});
  clean "colon prefix" (run_pass "banned-api" ~path:p {|let f () = invalid_arg "Graph: oops"|});
  clean "sprintf is fine"
    (run_pass "banned-api" ~path:p {|let f x = Printf.sprintf "%d" x|});
  clean "fprintf to channel is fine"
    (run_pass "banned-api" ~path:p {|let f oc = Printf.fprintf oc "row"|});
  clean "snapshot is fine" (run_pass "banned-api" ~path:p {|let f g = Csr.snapshot g|});
  clean "string literal not flagged"
    (run_pass "banned-api" ~path:p {|let f () = "failwith Printf.printf"|});
  (* scoping exemptions *)
  clean "io_error.ml may raise"
    (run_pass "banned-api" ~path:"lib/util/io_error.ml" {|let f () = failwith "x"|});
  clean "report.ml may print"
    (run_pass "banned-api" ~path:"lib/util/report.ml" {|let f () = Printf.printf "t"|});
  clean "obs may warn"
    (run_pass "banned-api" ~path:"lib/obs/trace.ml" {|let f () = Printf.eprintf "w"|});
  clean "lib/graph may build CSRs"
    (run_pass "banned-api" ~path:"lib/graph/csr.ml" {|let f g = Csr.of_graph g|});
  clean "bin/ is out of scope"
    (run_pass "banned-api" ~path:"bin/dcs_cli.ml" {|let f () = Printf.printf "t"|})

(* ---- unsafe-audit ---- *)

let test_unsafe_audit () =
  let kernel = "lib/graph/bitmat.ml" in
  fires "unsafe without SAFETY"
    (run_pass "unsafe-audit" ~path:kernel {|let f a = Array.unsafe_get a 0|});
  fires "unsafe outside kernels, even with SAFETY"
    (run_pass "unsafe-audit" ~path:"lib/spanner/dc.ml"
       "(* SAFETY: nope *)\nlet f a = Array.unsafe_get a 0");
  fires "bytes unsafe counted"
    (run_pass "unsafe-audit" ~path:"lib/routing/x.ml" {|let f b = Bytes.unsafe_get b 0|});
  clean "SAFETY within window"
    (run_pass "unsafe-audit" ~path:kernel
       "(* SAFETY: i is bounded by construction *)\nlet f a = Array.unsafe_get a 0");
  clean "safe access" (run_pass "unsafe-audit" ~path:kernel {|let f a = a.(0)|});
  (* the marker must be close: > marker_window lines away does not count *)
  let far =
    "(* SAFETY: too far away *)\n" ^ String.concat "" (List.init 12 (fun _ -> "let _ = ()\n"))
    ^ "let f a = Array.unsafe_get a 0"
  in
  fires "SAFETY out of window" (run_pass "unsafe-audit" ~path:kernel far)

(* ---- par-hygiene ---- *)

let test_par_hygiene () =
  let p = "lib/foo/state.ml" in
  let par = [ "State" ] in
  fires "toplevel ref" (run_pass "par-hygiene" ~path:p ~par {|let total = ref 0|});
  fires "toplevel Hashtbl"
    (run_pass "par-hygiene" ~path:p ~par {|let cache = Hashtbl.create 16|});
  fires "toplevel array" (run_pass "par-hygiene" ~path:p ~par {|let buf = Array.make 4 0|});
  fires "mutated record global"
    (run_pass "par-hygiene" ~path:p ~par
       "type r = { mutable x : int }\nlet st = { x = 0 }\nlet bump () = st.x <- st.x + 1");
  clean "annotated DOMAIN-SAFE"
    (run_pass "par-hygiene" ~path:p ~par
       "(* DOMAIN-SAFE: guarded by mutex m *)\nlet total = ref 0");
  clean "not reachable from parallel code"
    (run_pass "par-hygiene" ~path:p ~par:[] {|let total = ref 0|});
  clean "local mutable state is fine"
    (run_pass "par-hygiene" ~path:p ~par {|let f () = let acc = ref 0 in !acc|});
  clean "immutable toplevel" (run_pass "par-hygiene" ~path:p ~par {|let limit = 42|});
  clean "unmutated record is fine"
    (run_pass "par-hygiene" ~path:p ~par
       "type r = { mutable x : int }\nlet mk () = { x = 0 }")

(* ---- iface-coverage ---- *)

let test_iface_coverage () =
  let p = "lib/foo/bar.ml" in
  fires "missing mli" (run_pass "iface-coverage" ~path:p ~files:[ p ] "let x = 1");
  clean "mli present" (run_pass "iface-coverage" ~path:p ~files:[ p; p ^ "i" ] "let x = 1");
  clean "bin/ exempt" (run_pass "iface-coverage" ~path:"bin/main.ml" ~files:[] "let x = 1")

(* ---- poly-compare ---- *)

let test_poly_compare () =
  let p = "lib/spanner/x.ml" in
  fires "= on graph ident" (run_pass "poly-compare" ~path:p {|let f graph h = graph = h|});
  fires "= on snapshot"
    (run_pass "poly-compare" ~path:p {|let f a b = Graph.snapshot a = Graph.snapshot b|});
  fires "compare on csr" (run_pass "poly-compare" ~path:p {|let f (csr : Csr.t) x = compare csr x|});
  fires "<> on generator result"
    (run_pass "poly-compare" ~path:p {|let f rng h = Generators.cycle 5 <> h|});
  clean "ints are fine" (run_pass "poly-compare" ~path:p {|let f a b = a = b|});
  clean "counts are fine" (run_pass "poly-compare" ~path:p {|let f g h = Graph.n g = Graph.n h|});
  clean "physical identity is fine" (run_pass "poly-compare" ~path:p {|let f graph h = graph == h|})

(* ---- typed tier: alias/open evasion (the reason the tier exists) ---- *)

let evade_src =
  "module C = Csr\n\
   let build g = C.of_graph g\n\
   open Csr\n\
   let build2 g = of_graph g\n\
   module A = Array\n\
   let got (a : int array) = A.unsafe_get a 0\n"

let test_typed_catches_alias_evasion () =
  with_typed_project [ ("evade.ml", evade_src) ] (fun dir ->
      (* the parse tier provably misses every spelling in this fixture: the
         banned name never appears under its own module *)
      let parse = lint ~typed:false dir in
      check Alcotest.int "parse tier misses the aliased/opened Csr.of_graph" 0
        (List.length (by_pass "banned-api" parse));
      check Alcotest.int "parse tier misses the aliased unsafe_get" 0
        (List.length (by_pass "unsafe-audit" parse));
      let r = lint dir in
      check Alcotest.int "typed tier ran on the fixture" 1 r.Lint_driver.typed_files;
      let banned = by_pass "banned-api" r in
      check Alcotest.int "typed catches both evasions" 2 (List.length banned);
      check
        Alcotest.(list int)
        "at the alias and open call sites" [ 2; 4 ]
        (List.map (fun f -> f.Lint_finding.line) banned);
      List.iter
        (fun f ->
          check
            Alcotest.(option string)
            "resolved path recorded" (Some "Csr.of_graph") f.Lint_finding.resolved_path)
        banned;
      match by_pass "unsafe-audit" r with
      | [ f ] ->
          check
            Alcotest.(option string)
            "unsafe resolved through the alias" (Some "Array.unsafe_get")
            f.Lint_finding.resolved_path
      | fs -> Alcotest.failf "expected one unsafe-audit finding, got %d" (List.length fs))

(* ---- typed tier: poly-compare through aliases and containers ---- *)

let pcmp_src =
  "type g_alias = Graph.t\n\
   let cmp (a : g_alias) (b : g_alias) = compare a b\n\
   let eq_list (a : Graph.t list) (b : Graph.t list) = a = b\n\
   let ok (a : int) (b : int) = compare a b\n\
   let shadow compare (a : Graph.t) (b : Graph.t) = compare (Graph.n a) (Graph.n b)\n"

let test_typed_poly_compare () =
  with_typed_project [ ("pcmp.ml", pcmp_src) ] (fun dir ->
      let parse = lint ~typed:false dir in
      check Alcotest.int "parse tier sees no graph-looking operand" 0
        (List.length (by_pass "poly-compare" parse));
      let r = lint dir in
      let found = by_pass "poly-compare" r in
      check
        Alcotest.(list int)
        "alias and container flagged; int compare and shadowed compare not" [ 2; 3 ]
        (List.map (fun f -> f.Lint_finding.line) found);
      List.iter
        (fun f ->
          check
            Alcotest.(option string)
            "offending type recorded" (Some "Graph.t") f.Lint_finding.resolved_path)
        found)

(* ---- typed tier: mutable-escape ---- *)

let state_bad =
  "let cache : (int, int) Hashtbl.t = Hashtbl.create 16\n\
   let get k = Hashtbl.find_opt cache k\n"

let state_safe =
  "(* DOMAIN-SAFE: populated before the domains spawn, read-only after *)\n\
   let cache : (int, int) Hashtbl.t = Hashtbl.create 16\n\
   let get k = Hashtbl.find_opt cache k\n"

(* Worker pulls in Domain (→ Stdlib__Domain in cmt_imports) and State, so
   the typed reachability closure marks State without any lexical hint in
   state.ml itself — exactly what the parse-tier heuristic cannot see. *)
let worker_src = "let tick () = Domain.cpu_relax ()\nlet peek k = State.get k\n"

let test_mutable_escape () =
  with_typed_project
    [ ("state.ml", state_bad); ("worker.ml", worker_src) ]
    (fun dir ->
      let r = lint dir in
      (match by_pass "mutable-escape" r with
      | [ f ] ->
          check Alcotest.bool "warning severity" true
            (f.Lint_finding.severity = Lint_finding.Warning);
          check
            Alcotest.(option string)
            "mutable type recorded" (Some "Hashtbl.t") f.Lint_finding.resolved_path;
          check Alcotest.bool "points at state.ml" true
            (contains "state.ml" f.Lint_finding.file)
      | fs -> Alcotest.failf "expected one mutable-escape finding, got %d" (List.length fs));
      (* the lexical par-hygiene pass must NOT double-report on typed files *)
      check Alcotest.int "par-hygiene skipped on typed files" 0
        (List.length (by_pass "par-hygiene" r)));
  with_typed_project
    [ ("state.ml", state_safe); ("worker.ml", worker_src) ]
    (fun dir -> clean "DOMAIN-SAFE annotation" (by_pass "mutable-escape" (lint dir)));
  with_typed_project
    [ ("state.ml", state_bad) ]
    (fun dir -> clean "not reachable from Domain users" (by_pass "mutable-escape" (lint dir)))

(* ---- typed tier: ignored-result ---- *)

let audit_src =
  "let check g = ignore (Stretch.violations g)\n\
   let check2 g = let _ = Stretch.violations g in ()\n\
   let sweep g = ignore (Repair.run g)\n\
   let ok g = List.length (Stretch.violations g)\n"

let test_ignored_result () =
  with_typed_project [ ("audit.ml", audit_src) ] (fun dir ->
      let found = by_pass "ignored-result" (lint dir) in
      check
        Alcotest.(list int)
        "ignore and let _ flagged; bound use not" [ 1; 2; 3 ]
        (List.map (fun f -> f.Lint_finding.line) found);
      check
        Alcotest.(list (option string))
        "resolved watchlist entries"
        [ Some "Stretch.violations"; Some "Stretch.violations"; Some "Repair.run" ]
        (List.map (fun f -> f.Lint_finding.resolved_path) found));
  with_typed_project
    [ ("audit.ml", "let ok g = List.length (Stretch.violations g)\n") ]
    (fun dir -> clean "bound result" (by_pass "ignored-result" (lint dir)))

(* ---- --strict: warnings promote to exit 3 ---- *)

let test_strict_exit () =
  (* .mli files keep iface-coverage quiet, so the only finding is the
     Warning-severity mutable-escape — the exact case --strict exists for *)
  let files =
    [
      ("state.mli", "val get : int -> int option\n");
      ("state.ml", state_bad);
      ("worker.mli", "val tick : unit -> unit\nval peek : int -> int option\n");
      ("worker.ml", worker_src);
    ]
  in
  with_typed_project files (fun dir ->
      let r = lint dir in
      check Alcotest.bool "warnings only" true
        (r.Lint_driver.findings <> []
        && List.for_all
             (fun f -> f.Lint_finding.severity = Lint_finding.Warning)
             r.Lint_driver.findings);
      check Alcotest.int "exit 0 without strict" 0 (Lint_driver.exit_code r);
      check Alcotest.int "exit 3 under strict" 3 (Lint_driver.exit_code ~strict:true r);
      let root = Filename.quote (Filename.concat dir "lib") in
      let exe = Filename.concat Filename.parent_dir_name (Filename.concat "bin" "dcs_lint.exe") in
      check Alcotest.int "exe exit 0 without --strict" 0
        (Sys.command (Printf.sprintf "%s %s > /dev/null" exe root));
      check Alcotest.int "exe exit 3 with --strict" 3
        (Sys.command (Printf.sprintf "%s --strict %s > /dev/null" exe root)))

(* ---- parse pseudo-pass ---- *)

let test_parse_failure_is_a_finding () =
  let dir = Filename.temp_file "dcs_lint" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let bad = Filename.concat dir "broken.ml" in
  Out_channel.with_open_text bad (fun oc -> output_string oc "let let let");
  Fun.protect
    ~finally:(fun () ->
      Sys.remove bad;
      Sys.rmdir dir)
    (fun () ->
      let r = Lint_driver.run ~roots:[ dir ] () in
      check Alcotest.int "one finding" 1 (List.length r.Lint_driver.findings);
      match r.Lint_driver.findings with
      | [ f ] -> check Alcotest.string "parse pass" "parse" f.Lint_finding.pass
      | _ -> Alcotest.fail "expected exactly one parse finding")

(* ---- end-to-end: the repo is lint-clean ---- *)

let repo_roots = [ "../lib"; "../bin"; "../bench" ]

let test_repo_is_lint_clean () =
  let allow =
    match Lint_allow.load "../lint.allow" with
    | Ok a -> a
    | Error msg -> Alcotest.failf "lint.allow unreadable: %s" msg
  in
  let r = Lint_driver.run ~allow ~roots:repo_roots () in
  check Alcotest.bool "scanned a realistic number of sources" true (r.Lint_driver.files_scanned > 50);
  check Alcotest.bool "typed tier covers the libraries" true (r.Lint_driver.typed_files > 50);
  check
    Alcotest.(list string)
    "repo lint-clean" []
    (List.map
       (fun f -> Printf.sprintf "%s:%d %s: %s" f.Lint_finding.file f.line f.pass f.msg)
       r.Lint_driver.findings)

let test_every_pass_exercised_by_repo_kernels () =
  (* the unsafe-audit pass must actually see unsafe sites in the kernels:
     if the kernels drop Array.unsafe_*, the SAFETY convention (and this
     pass) silently stops being exercised *)
  let src =
    match Lint_source.load "../lib/graph/bfs_batch.ml" with
    | Ok s -> s
    | Error msg -> Alcotest.failf "cannot load bfs_batch.ml: %s" msg
  in
  let uses_unsafe =
    contains "Array.unsafe_get" src.Lint_source.text
    && contains "SAFETY:" src.Lint_source.text
  in
  check Alcotest.bool "kernels use justified unsafe accesses" true uses_unsafe

(* ---- JSON report ---- *)

let test_json_report () =
  let r = Lint_driver.run ~roots:repo_roots () in
  let json = Lint_driver.to_json r in
  List.iter
    (fun key ->
      check Alcotest.bool (Printf.sprintf "json has %S" key) true
        (contains (Printf.sprintf "\"%s\"" key) json))
    [ "schema"; "findings"; "summary"; "files"; "typed"; "errors"; "warnings"; "suppressed" ];
  check Alcotest.bool "schema is v2" true (contains "\"schema\":\"dcs-lint/2\"" json);
  (* escaping: a finding whose message embeds quotes/newlines must stay
     well-formed (spot-check the escaper directly) *)
  check Alcotest.string "escape" {|a\"b\\c\nd|} (Lint_finding.json_escape "a\"b\\c\nd");
  let f =
    Lint_finding.make ~pass:"banned-api" ~file:"lib/x.ml" ~line:3 ~col:2
      ~severity:Lint_finding.Error "uses \"quotes\""
  in
  check Alcotest.bool "finding json shape" true
    (Lint_finding.to_json f
    = {|{"pass":"banned-api","file":"lib/x.ml","line":3,"col":2,"severity":"error","msg":"uses \"quotes\""}|}
    );
  let fr =
    Lint_finding.make ~resolved_path:"Csr.of_graph" ~pass:"banned-api" ~file:"lib/x.ml"
      ~line:3 ~col:2 ~severity:Lint_finding.Error "m"
  in
  check Alcotest.bool "resolved_path serialized" true
    (contains {|"resolved_path":"Csr.of_graph"|} (Lint_finding.to_json fr))

(* ---- allowlist ---- *)

let test_allowlist_round_trip () =
  let entries =
    [
      { Lint_allow.pass = "banned-api"; path = "lib/routing/valiant.ml"; substring = "" };
      { Lint_allow.pass = "*"; path = "lib/obs/trace.ml"; substring = "top-level mutable state" };
    ]
  in
  (match Lint_allow.of_string (Lint_allow.to_string entries) with
  | Ok parsed -> check Alcotest.bool "round trip" true (parsed = entries)
  | Error msg -> Alcotest.failf "round trip failed: %s" msg);
  (* comments and blanks vanish, including tab-only lines *)
  (match Lint_allow.of_string "# header\n\n  # indented comment\n\t \n \t# tabbed comment\n" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "comments produced entries"
  | Error msg -> Alcotest.failf "comment parse failed: %s" msg);
  (* tabs and runs of whitespace separate fields like single spaces, and the
     message substring is stored whitespace-normal *)
  (match Lint_allow.of_string "banned-api\tlib/x.ml \t failwith   here \n" with
  | Ok [ e ] ->
      check Alcotest.string "tab-separated pass" "banned-api" e.Lint_allow.pass;
      check Alcotest.string "tab-separated path" "lib/x.ml" e.Lint_allow.path;
      check Alcotest.string "normalized substring" "failwith here" e.Lint_allow.substring
  | Ok es -> Alcotest.failf "expected one entry, got %d" (List.length es)
  | Error msg -> Alcotest.failf "tab parse failed: %s" msg);
  check Alcotest.string "normalize_ws collapses runs" "a b c"
    (Lint_allow.normalize_ws " a\t\tb \r c ");
  (* matching: pass, path suffix (whole segments), message substring *)
  let f =
    Lint_finding.make ~pass:"par-hygiene" ~file:"../lib/obs/trace.ml" ~line:15 ~col:0
      ~severity:Lint_finding.Warning "top-level mutable state: spans is a ref cell"
  in
  check Alcotest.bool "wildcard + suffix + substring" true (Lint_allow.matches entries f);
  check Alcotest.bool "wrong path" false
    (Lint_allow.matches entries { f with Lint_finding.file = "../lib/obs/metrics.ml" });
  check Alcotest.bool "partial segment does not match" false
    (Lint_allow.matches
       [ { Lint_allow.pass = "*"; path = "race.ml"; substring = "" } ]
       f);
  check Alcotest.bool "wrong substring" false
    (Lint_allow.matches entries { f with Lint_finding.msg = "something else" });
  (* the finding message is matched whitespace-normal too: internal tabs or
     doubled spaces in the rendered message cannot defeat a suppression *)
  check Alcotest.bool "ws-insensitive message match" true
    (Lint_allow.matches entries
       { f with Lint_finding.msg = "top-level \t mutable  state: spans" })

let test_allowlist_suppresses () =
  (* suppress a synthetic violation end-to-end through the driver *)
  let dir = Filename.temp_file "dcs_lint_allow" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Sys.mkdir (Filename.concat dir "lib") 0o755;
  let bad = Filename.concat (Filename.concat dir "lib") "naughty.ml" in
  Out_channel.with_open_text bad (fun oc -> output_string oc "let f () = failwith \"x\"\n");
  Fun.protect
    ~finally:(fun () ->
      Sys.remove bad;
      Sys.rmdir (Filename.concat dir "lib");
      Sys.rmdir dir)
    (fun () ->
      let without = Lint_driver.run ~roots:[ dir ] () in
      (* naughty.ml also misses its mli: expect both passes to fire *)
      check Alcotest.bool "fires without allowlist" true
        (List.length without.Lint_driver.findings >= 2);
      let allow =
        [
          { Lint_allow.pass = "banned-api"; path = "lib/naughty.ml"; substring = "failwith" };
          { Lint_allow.pass = "iface-coverage"; path = "lib/naughty.ml"; substring = "" };
        ]
      in
      let r = Lint_driver.run ~allow ~roots:[ dir ] () in
      check Alcotest.int "all suppressed" 0 (List.length r.Lint_driver.findings);
      check Alcotest.bool "suppression counted" true (r.Lint_driver.suppressed >= 2);
      check Alcotest.int "exit 0 when suppressed" 0 (Lint_driver.exit_code r);
      check Alcotest.int "exit 1 otherwise" 1 (Lint_driver.exit_code without))

(* ---- the executable ---- *)

let lint_exe =
  Filename.concat Filename.parent_dir_name (Filename.concat "bin" "dcs_lint.exe")

let test_exe_json_clean () =
  check Alcotest.bool "dcs_lint.exe built" true (Sys.file_exists lint_exe);
  let out = Filename.temp_file "dcs_lint_out" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      let code =
        Sys.command
          (Printf.sprintf "%s --json --strict --allow ../lint.allow ../lib ../bin ../bench > %s"
             lint_exe out)
      in
      check Alcotest.int "exit 0 on clean repo (even strict)" 0 code;
      let body = In_channel.with_open_text out In_channel.input_all in
      check Alcotest.bool "json body" true
        (String.length body > 0 && body.[0] = '{');
      check Alcotest.bool "v2 schema" true (contains "\"schema\":\"dcs-lint/2\"" body);
      check Alcotest.bool "empty findings array" true (contains "\"findings\":[\n]" body);
      check Alcotest.bool "typed coverage reported" true (contains "\"typed\":" body);
      check Alcotest.bool "summary present" true (contains "\"summary\"" body))

let () =
  Alcotest.run "lint"
    [
      ( "passes",
        [
          Alcotest.test_case "banned-api" `Quick test_banned_api;
          Alcotest.test_case "unsafe-audit" `Quick test_unsafe_audit;
          Alcotest.test_case "par-hygiene" `Quick test_par_hygiene;
          Alcotest.test_case "iface-coverage" `Quick test_iface_coverage;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "parse failure" `Quick test_parse_failure_is_a_finding;
        ] );
      ( "typed",
        [
          Alcotest.test_case "alias/open evasion" `Quick test_typed_catches_alias_evasion;
          Alcotest.test_case "poly-compare aliases" `Quick test_typed_poly_compare;
          Alcotest.test_case "mutable-escape" `Quick test_mutable_escape;
          Alcotest.test_case "ignored-result" `Quick test_ignored_result;
          Alcotest.test_case "strict exit" `Quick test_strict_exit;
        ] );
      ( "repo",
        [
          Alcotest.test_case "lint-clean" `Quick test_repo_is_lint_clean;
          Alcotest.test_case "kernels exercised" `Quick test_every_pass_exercised_by_repo_kernels;
        ] );
      ( "output",
        [
          Alcotest.test_case "json report" `Quick test_json_report;
          Alcotest.test_case "exe --json" `Quick test_exe_json_clean;
        ] );
      ( "allowlist",
        [
          Alcotest.test_case "round trip" `Quick test_allowlist_round_trip;
          Alcotest.test_case "suppression" `Quick test_allowlist_suppresses;
        ] );
    ]
