(* End-to-end CLI tests: malformed input files must surface as runtime
   errors (exit 123, the [Cmd.Exit.some_error] convention documented in
   bin/dcs_cli.ml) rather than crashes, and the [faults] subcommand must
   emit a well-formed JSON report. *)

let check = Alcotest.check

(* tests run from _build/default/test/; the binary sits next door *)
let cli = Filename.concat Filename.parent_dir_name (Filename.concat "bin" "dcs_cli.exe")

let with_temp_file contents f =
  let path = Filename.temp_file "dcs_cli_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let run_cli args = Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" cli args)

let test_cli_exists () = check Alcotest.bool "binary built" true (Sys.file_exists cli)

let test_malformed_graph_exits_123 () =
  List.iter
    (fun contents ->
      with_temp_file contents (fun path ->
          check Alcotest.int
            (Printf.sprintf "graph --input on %S" contents)
            123
            (run_cli (Printf.sprintf "graph --input %s" path))))
    [ "garbage\n"; ""; "n 4 2\n0 1\n"; "n 4 1\n0 9\n"; "n 4 1\nx y\n" ]

let test_malformed_problem_exits_123 () =
  with_temp_file "p 1\n0 99\n" (fun path ->
      check Alcotest.int "route --problem out of range" 123
        (run_cli (Printf.sprintf "route --family torus -n 25 --problem %s" path)))

let test_wellformed_graph_exits_0 () =
  with_temp_file "n 3 3\n0 1\n1 2\n2 0\n" (fun path ->
      check Alcotest.int "triangle accepted" 0 (run_cli (Printf.sprintf "graph --input %s" path)))

let test_faults_json_report () =
  let json = Filename.temp_file "dcs_cli_faults" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove json)
    (fun () ->
      check Alcotest.int "faults runs" 0
        (run_cli
           (Printf.sprintf
              "faults --family regular -n 60 -d 8 --fail-rate 0.05 --seed 7 --json %s" json));
      let ic = open_in json in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      List.iter
        (fun key ->
          check Alcotest.bool (Printf.sprintf "report has %S" key) true
            (let re = Printf.sprintf "\"%s\"" key in
             let rec find i =
               i + String.length re <= String.length body
               && (String.sub body i (String.length re) = re || find (i + 1))
             in
             find 0))
        [ "delivered"; "dropped"; "retransmits"; "reroutes"; "repair"; "certified"; "plan" ])

let test_faults_bad_mode_exits_123 () =
  check Alcotest.int "unknown fault mode" 123
    (run_cli "faults --family torus -n 25 --fail-mode cosmic")

let test_unknown_algorithm_exits_123 () =
  check Alcotest.int "unknown algorithm" 123
    (run_cli "spanner --family torus -n 25 --algorithm bogus")

let test_bad_weight_exits_123 () =
  List.iter
    (fun contents ->
      with_temp_file contents (fun path ->
          check Alcotest.int
            (Printf.sprintf "graph --input on %S" contents)
            123
            (run_cli (Printf.sprintf "graph --input %s" path))))
    [ "n 3 1\n0 1 0\n"; "n 3 1\n0 1 -4\n"; "n 3 1\n0 1 x\n" ]

let test_negative_w_max_exits_123 () =
  check Alcotest.int "negative --w-max" 123 (run_cli "graph --family torus -n 25 --w-max -2")

let test_weighted_pipeline_exits_0 () =
  (* graph --w-max -> weighted file -> bsw spanner -> verify, all green *)
  let gfile = Filename.temp_file "dcs_cli_wgraph" ".txt" in
  let sfile = Filename.temp_file "dcs_cli_wspan" ".txt" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove gfile;
      Sys.remove sfile)
    (fun () ->
      check Alcotest.int "weighted graph" 0
        (run_cli (Printf.sprintf "graph --family torus -n 64 --w-max 6 --seed 9 -o %s" gfile));
      check Alcotest.int "bsw spanner" 0
        (run_cli (Printf.sprintf "spanner --input %s --algorithm bsw --seed 9 -o %s" gfile sfile));
      check Alcotest.int "verify weighted spanner" 0
        (run_cli (Printf.sprintf "verify -g %s --spanner %s" gfile sfile)))

(* capture stdout of a CLI invocation *)
let read_cli args =
  let out = Filename.temp_file "dcs_cli_out" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      let code = Sys.command (Printf.sprintf "%s %s >%s 2>/dev/null" cli args out) in
      let ic = open_in out in
      let body = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (code, body))

let body_contains body needle =
  let nl = String.length needle in
  let rec find i = i + nl <= String.length body && (String.sub body i nl = needle || find (i + 1)) in
  find 0

let test_list_names_every_construction () =
  let code, body = read_cli "list" in
  check Alcotest.int "list exits 0" 0 code;
  List.iter
    (fun name ->
      check Alcotest.bool (Printf.sprintf "list shows %S" name) true (body_contains body name))
    Construction.names

let test_list_json_is_registry () =
  let code, body = read_cli "list --json" in
  check Alcotest.int "list --json exits 0" 0 code;
  check Alcotest.string "payload is Construction.to_json" (Construction.to_json ()) body

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_profile_prints_breakdown () =
  let code, body =
    read_cli "faults --family regular -n 60 -d 8 --fail-rate 0.1 --seed 7 --profile"
  in
  check Alcotest.int "faults --profile exits 0" 0 code;
  check Alcotest.bool "profile table printed" true (body_contains body "span");
  check Alcotest.bool "per-span GC attribution shown" true (body_contains body "repair.run")

let test_log_writes_jsonl () =
  let log = Filename.temp_file "dcs_cli_log" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove log)
    (fun () ->
      check Alcotest.int "faults --log exits 0" 0
        (run_cli
           (Printf.sprintf "faults --family regular -n 60 -d 8 --fail-rate 0.1 --seed 7 --log %s"
              log));
      let body = read_file log in
      check Alcotest.bool "log is non-empty" true (String.length body > 0);
      check Alcotest.bool "entries carry event names" true (body_contains body "\"event\":");
      (* every line is one JSON object: starts '{', ends '}' *)
      String.split_on_char '\n' body
      |> List.iter (fun line ->
             if String.length line > 0 then
               check Alcotest.bool "line is a JSON object" true
                 (line.[0] = '{' && line.[String.length line - 1] = '}')))

(* ---- soak subcommand -------------------------------------------------- *)

let soak_args json =
  Printf.sprintf
    "soak --family regular -n 60 -d 8 --events 120 --batch 30 --seed 11 --json %s" json

let test_soak_json_report () =
  let json = Filename.temp_file "dcs_cli_soak" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove json)
    (fun () ->
      check Alcotest.int "soak runs certified" 0 (run_cli (soak_args json));
      let body = read_file json in
      List.iter
        (fun key ->
          check Alcotest.bool (Printf.sprintf "report has %S" key) true
            (body_contains body (Printf.sprintf "\"%s\"" key)))
        [
          "schema"; "plan"; "seed"; "alpha"; "certified_batches"; "final";
          "certified"; "traffic_stretch"; "batches"; "swept"; "groups";
        ];
      check Alcotest.bool "schema is dcs-soak/1" true (body_contains body "dcs-soak/1"))

let test_soak_same_seed_byte_identical () =
  let a = Filename.temp_file "dcs_cli_soak_a" ".json" in
  let b = Filename.temp_file "dcs_cli_soak_b" ".json" in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ a; b ])
    (fun () ->
      check Alcotest.int "first run" 0 (run_cli (soak_args a));
      check Alcotest.int "second run" 0 (run_cli (soak_args b));
      check Alcotest.string "same seed, byte-identical JSON" (read_file a) (read_file b))

let test_soak_bad_plan_exits_123 () =
  check Alcotest.int "unknown churn plan" 123
    (run_cli "soak --family torus -n 25 --events 10 --plan chaotic")

(* ---- bench regression gate (exit codes 0 / 1 / 2) -------------------- *)

let bench = Filename.concat Filename.parent_dir_name (Filename.concat "bench" "main.exe")

let run_bench args =
  Sys.command (Printf.sprintf "DCS_BENCH_SCALE=quick %s %s >/dev/null 2>&1" bench args)

let test_bench_compare_gate () =
  let baseline = Filename.temp_file "dcs_bench_base" ".json" in
  let munged = Filename.temp_file "dcs_bench_munged" ".json" in
  let garbage = Filename.temp_file "dcs_bench_garbage" ".json" in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ baseline; munged; garbage ])
    (fun () ->
      check Alcotest.int "write-baseline exits 0" 0
        (run_bench (Printf.sprintf "lemmas --write-baseline %s" baseline));
      check Alcotest.int "clean compare exits 0" 0
        (run_bench (Printf.sprintf "lemmas --compare %s" baseline));
      (* shrink every stable value by an order of magnitude: the re-run is
         now way outside the tolerance band and must fail the gate *)
      let body = read_file baseline in
      let oc = open_out munged in
      String.iteri
        (fun i c ->
          output_char oc c;
          if c = ':' && i >= 7 && String.sub body (i - 7) 7 = "\"value\"" then output_char oc '9')
        body;
      close_out oc;
      check Alcotest.int "regressed compare exits 1" 1
        (run_bench (Printf.sprintf "lemmas --compare %s" munged));
      let oc = open_out garbage in
      output_string oc "not a baseline document";
      close_out oc;
      check Alcotest.int "unusable baseline exits 2" 2
        (run_bench (Printf.sprintf "lemmas --compare %s" garbage));
      check Alcotest.int "bad --tolerance exits 2" 2
        (run_bench (Printf.sprintf "lemmas --compare %s --tolerance nope" baseline)))

let () =
  Alcotest.run "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "binary exists" `Quick test_cli_exists;
          Alcotest.test_case "malformed graph" `Quick test_malformed_graph_exits_123;
          Alcotest.test_case "malformed problem" `Quick test_malformed_problem_exits_123;
          Alcotest.test_case "wellformed graph" `Quick test_wellformed_graph_exits_0;
          Alcotest.test_case "bad fault mode" `Quick test_faults_bad_mode_exits_123;
          Alcotest.test_case "unknown algorithm" `Quick test_unknown_algorithm_exits_123;
          Alcotest.test_case "bad edge weight" `Quick test_bad_weight_exits_123;
          Alcotest.test_case "negative w-max" `Quick test_negative_w_max_exits_123;
        ] );
      ( "weighted",
        [ Alcotest.test_case "graph/spanner/verify pipeline" `Quick test_weighted_pipeline_exits_0 ] );
      ( "list",
        [
          Alcotest.test_case "names every construction" `Quick test_list_names_every_construction;
          Alcotest.test_case "json matches registry" `Quick test_list_json_is_registry;
        ] );
      ("faults", [ Alcotest.test_case "json report" `Quick test_faults_json_report ]);
      ( "soak",
        [
          Alcotest.test_case "json report" `Quick test_soak_json_report;
          Alcotest.test_case "same seed byte-identical" `Quick test_soak_same_seed_byte_identical;
          Alcotest.test_case "bad plan" `Quick test_soak_bad_plan_exits_123;
        ] );
      ( "observability",
        [
          Alcotest.test_case "--profile prints breakdown" `Quick test_profile_prints_breakdown;
          Alcotest.test_case "--log writes jsonl" `Quick test_log_writes_jsonl;
        ] );
      ("bench", [ Alcotest.test_case "compare gate exit codes" `Quick test_bench_compare_gate ]);
    ]
