(* Fault machinery tests: deterministic fault plans, the fault-aware packet
   simulation (including the exact rate-0 equivalence with Packet_sim), and
   self-healing repair. *)

let check = Alcotest.check

(* ---- Graph survivor helpers ---- *)

let test_graph_isolate () =
  let g = Generators.cycle 5 in
  check Alcotest.int "degree removed" 2 (Graph.isolate g 2);
  check Alcotest.int "edges left" 3 (Graph.m g);
  check Alcotest.(list int) "no neighbors" [] (Graph.neighbors g 2);
  check Alcotest.int "second isolate is free" 0 (Graph.isolate g 2)

let test_graph_survivor () =
  let g = Generators.complete 4 in
  let alive = [| true; false; true; true |] in
  let h = Graph.survivor g ~alive in
  check Alcotest.int "original untouched" 6 (Graph.m g);
  check Alcotest.int "triangle remains" 3 (Graph.m h);
  check Alcotest.(list int) "dead node isolated" [] (Graph.neighbors h 1);
  check Alcotest.bool "size mismatch rejected" true
    (try
       ignore (Graph.survivor g ~alive:[| true |]);
       false
     with Invalid_argument _ -> true)

(* ---- fault plans ---- *)

let test_plan_schedule_canonical () =
  let open Fault_plan in
  let p =
    schedule ~n:6
      [
        (3, [ Fail_edge (4, 2); Fail_node 1 ]);
        (1, [ Fail_node 5 ]);
        (3, [ Fail_edge (2, 4); Fail_node 1 ]);
      ]
  in
  check Alcotest.bool "canonical events" true
    (events p = [ (1, [ Fail_node 5 ]); (3, [ Fail_node 1; Fail_edge (2, 4) ]) ]);
  check Alcotest.int "node faults" 2 (node_faults p);
  check Alcotest.int "edge faults" 1 (edge_faults p);
  check Alcotest.int "last round" 3 (last_round p);
  check Alcotest.bool "marks failed nodes" true
    (failed_nodes p = [| false; true; false; false; false; true |])

let test_plan_schedule_rejects () =
  let expects_invalid name f =
    check Alcotest.bool name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  expects_invalid "round 0" (fun () -> Fault_plan.(schedule ~n:4 [ (0, [ Fail_node 1 ]) ]));
  expects_invalid "node range" (fun () -> Fault_plan.(schedule ~n:4 [ (1, [ Fail_node 4 ]) ]));
  expects_invalid "edge range" (fun () -> Fault_plan.(schedule ~n:4 [ (1, [ Fail_edge (0, 9) ]) ]));
  expects_invalid "self loop" (fun () -> Fault_plan.(schedule ~n:4 [ (1, [ Fail_edge (2, 2) ]) ]))

let test_plan_seed_reproducible () =
  let g = Generators.random_regular (Prng.create 3) 60 6 in
  List.iter
    (fun seed ->
      let a = Fault_plan.uniform_nodes (Prng.create seed) g ~p:0.3 in
      let b = Fault_plan.uniform_nodes (Prng.create seed) g ~p:0.3 in
      check Alcotest.bool "same seed, same node plan" true
        (Fault_plan.events a = Fault_plan.events b);
      let c = Fault_plan.uniform_edges ~round:4 (Prng.create seed) g ~p:0.1 in
      let d = Fault_plan.uniform_edges ~round:4 (Prng.create seed) g ~p:0.1 in
      check Alcotest.bool "same seed, same edge plan" true
        (Fault_plan.events c = Fault_plan.events d))
    [ 1; 7; 42 ]

let test_plan_rates () =
  let g = Generators.complete 30 in
  check Alcotest.bool "p=0 is empty" true
    (Fault_plan.is_empty (Fault_plan.uniform_nodes (Prng.create 1) g ~p:0.0));
  check Alcotest.int "p=1 kills everything" 30
    (Fault_plan.node_faults (Fault_plan.uniform_nodes (Prng.create 1) g ~p:1.0));
  check Alcotest.int "p=1 removes every edge" (Graph.m g)
    (Fault_plan.edge_faults (Fault_plan.uniform_edges (Prng.create 1) g ~p:1.0))

let test_plan_adversarial_targets_hotspots () =
  (* star-through-center routing: node 0 carries every path *)
  let routing = [| [| 1; 0; 2 |]; [| 3; 0; 4 |]; [| 5; 0; 6 |] |] in
  let p = Fault_plan.adversarial_load ~n:7 routing ~k:1 in
  check Alcotest.bool "kills the hub" true (Fault_plan.failed_nodes p).(0);
  check Alcotest.int "exactly one fault" 1 (Fault_plan.node_faults p);
  (* zero-load nodes are never targeted even when k is large *)
  let all = Fault_plan.adversarial_load ~n:20 routing ~k:20 in
  check Alcotest.int "only loaded nodes" 7 (Fault_plan.node_faults all)

let test_plan_merge_and_survivor () =
  let g = Generators.cycle 6 in
  let a = Fault_plan.(schedule ~n:6 [ (1, [ Fail_node 0 ]) ]) in
  let b = Fault_plan.(schedule ~n:6 [ (2, [ Fail_edge (2, 3) ]) ]) in
  let m = Fault_plan.merge a b in
  check Alcotest.int "merged rounds" 2 (List.length (Fault_plan.events m));
  let s = Fault_plan.survivor g m in
  check Alcotest.int "edges gone" 3 (Graph.m s);
  check Alcotest.(list int) "node 0 isolated" [] (Graph.neighbors s 0);
  check Alcotest.bool "edge removed" false (Graph.mem_edge s 2 3);
  check Alcotest.int "input untouched" 6 (Graph.m g)

let test_plan_merge_rejects_mismatched_n () =
  let a = Fault_plan.(schedule ~n:6 [ (1, [ Fail_node 0 ]) ]) in
  let b = Fault_plan.(schedule ~n:7 [ (1, [ Fail_node 0 ]) ]) in
  check Alcotest.bool "node-count mismatch rejected with prefixed message" true
    (try
       ignore (Fault_plan.merge a b);
       false
     with Invalid_argument msg ->
       String.length msg >= 16 && String.sub msg 0 16 = "Fault_plan.merge")

(* ---- fault-aware simulation: scenarios ---- *)

let cycle4 = Generators.cycle 4

let test_sim_reroute_around_dead_node () =
  (* 0-1-2 on a 4-cycle; node 1 dies at round 2, after the packet reached
     it: the packet is lost, retransmitted from 0 and rerouted via 3 *)
  let plan = Fault_plan.(schedule ~n:4 [ (2, [ Fail_node 1 ]) ]) in
  let s = Fault_sim.run ~n:4 ~network:cycle4 ~plan [| [| 0; 1; 2 |] |] in
  check Alcotest.int "delivered" 1 s.Fault_sim.delivered;
  check Alcotest.int "dropped" 0 s.Fault_sim.dropped;
  check Alcotest.int "retransmits" 1 s.Fault_sim.retransmits;
  check Alcotest.int "reroutes" 1 s.Fault_sim.reroutes;
  (* lost at round 2, backoff 4 -> reinjected round 6, two hops: round 7 *)
  check Alcotest.int "makespan" 7 s.Fault_sim.makespan;
  check Alcotest.int "one node fault" 1 s.Fault_sim.failed_nodes

let test_sim_edge_fault_burns_slot () =
  (* the edge (1,2) vanishes while the packet sits at 1: the transmission
     into the missing link is lost, then rerouted 0-3-2 *)
  let plan = Fault_plan.(schedule ~n:4 [ (2, [ Fail_edge (1, 2) ]) ]) in
  let s = Fault_sim.run ~n:4 ~network:cycle4 ~plan [| [| 0; 1; 2 |] |] in
  check Alcotest.int "delivered" 1 s.Fault_sim.delivered;
  check Alcotest.int "retransmits" 1 s.Fault_sim.retransmits;
  check Alcotest.int "reroutes" 1 s.Fault_sim.reroutes;
  check Alcotest.int "makespan" 7 s.Fault_sim.makespan;
  check Alcotest.int "one edge fault" 1 s.Fault_sim.failed_edges

let test_sim_drop_when_disconnected () =
  (* a bare path 0-1-2: killing node 1 leaves no survivor route at all *)
  let g = Graph.create 3 in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 2);
  let plan = Fault_plan.(schedule ~n:3 [ (2, [ Fail_node 1 ]) ]) in
  let s = Fault_sim.run ~n:3 ~network:g ~plan [| [| 0; 1; 2 |] |] in
  check Alcotest.int "delivered" 0 s.Fault_sim.delivered;
  check Alcotest.int "dropped" 1 s.Fault_sim.dropped;
  check Alcotest.int "no retransmit" 0 s.Fault_sim.retransmits;
  check Alcotest.int "no reroute" 0 s.Fault_sim.reroutes

let test_sim_drop_dead_destination () =
  let plan = Fault_plan.(schedule ~n:4 [ (1, [ Fail_node 1 ]) ]) in
  let s = Fault_sim.run ~n:4 ~network:cycle4 ~plan [| [| 0; 1 |] |] in
  check Alcotest.int "delivered" 0 s.Fault_sim.delivered;
  check Alcotest.int "dropped" 1 s.Fault_sim.dropped;
  check Alcotest.int "no retransmit" 0 s.Fault_sim.retransmits

let test_sim_attempt_budget () =
  (* with max_attempts = 0 the very first loss is a permanent drop, even
     though a survivor route exists *)
  let plan = Fault_plan.(schedule ~n:4 [ (2, [ Fail_node 1 ]) ]) in
  let s = Fault_sim.run ~max_attempts:0 ~n:4 ~network:cycle4 ~plan [| [| 0; 1; 2 |] |] in
  check Alcotest.int "dropped outright" 1 s.Fault_sim.dropped;
  check Alcotest.int "no retransmit" 0 s.Fault_sim.retransmits

let test_sim_late_faults_never_strike () =
  let plan = Fault_plan.(schedule ~n:4 [ (1000, [ Fail_node 1 ]) ]) in
  let s = Fault_sim.run ~n:4 ~network:cycle4 ~plan [| [| 0; 1; 2 |] |] in
  check Alcotest.int "delivered" 1 s.Fault_sim.delivered;
  check Alcotest.int "fault never applied" 0 s.Fault_sim.failed_nodes

let test_sim_deterministic () =
  let g = Generators.random_regular (Prng.create 5) 80 8 in
  let rng = Prng.create 6 in
  let routing = Sp_routing.route_random (Csr.snapshot g) rng (Problems.permutation rng g) in
  let plan = Fault_plan.uniform_nodes ~round:2 (Prng.create 7) g ~p:0.1 in
  let a = Fault_sim.run ~n:80 ~network:g ~plan routing in
  let b = Fault_sim.run ~n:80 ~network:g ~plan routing in
  check Alcotest.bool "same inputs, same stats" true (a = b)

(* ---- rate-0 equivalence with Packet_sim ---- *)

let rate0_cases =
  [
    ("torus permutation", Generators.torus 6 6, 0, 11);
    ("regular pairs", Generators.random_regular (Prng.create 21) 90 8, 25, 22);
    ("expander permutation", Generators.random_regular (Prng.create 23) 120 20, 0, 23);
  ]

let test_sim_rate0_equivalence () =
  List.iter
    (fun (name, g, k, seed) ->
      let rng = Prng.create seed in
      let problem =
        if k = 0 then Problems.permutation rng g else Problems.random_pairs rng g ~k
      in
      let routing = Sp_routing.route_random (Csr.snapshot g) rng problem in
      let n = Graph.n g in
      let faulty = Fault_sim.run ~n ~network:g ~plan:(Fault_plan.empty n) routing in
      let base = Packet_sim.run ~n routing in
      check Alcotest.bool (name ^ ": stats identical") true
        (Fault_sim.base_stats faulty = base);
      check Alcotest.int (name ^ ": all delivered") (Array.length routing)
        faulty.Fault_sim.delivered;
      check Alcotest.int (name ^ ": no drops") 0 faulty.Fault_sim.dropped;
      check Alcotest.int (name ^ ": no retransmits") 0 faulty.Fault_sim.retransmits)
    rate0_cases

(* the equivalence must also hold when the routing leaves the network graph
   (liveness checks never consult edge membership) *)
let test_sim_rate0_offnetwork_routing () =
  let g = Generators.complete 10 in
  let h = Classic.greedy g ~k:2 in
  let rng = Prng.create 31 in
  let routing = Sp_routing.route_random (Csr.snapshot g) rng (Problems.permutation rng g) in
  let faulty = Fault_sim.run ~n:10 ~network:h ~plan:(Fault_plan.empty 10) routing in
  check Alcotest.bool "stats identical" true
    (Fault_sim.base_stats faulty = Packet_sim.run ~n:10 routing)

(* ---- repair ---- *)

let repair_case seed p =
  let g = Generators.random_regular (Prng.create seed) 90 16 in
  let h = Classic.greedy g ~k:2 in
  let plan = Fault_plan.uniform_nodes (Prng.create (seed + 100)) g ~p in
  let g' = Fault_plan.survivor g plan in
  let h' = Fault_plan.survivor h plan in
  (g', h', Repair.run h' ~within:g')

let test_repair_invariants () =
  List.iter
    (fun (seed, p) ->
      let g', _, rep = repair_case seed p in
      check Alcotest.bool "subgraph of survivor" true
        (Graph.is_subgraph rep.Repair.spanner ~of_:g');
      check Alcotest.bool "connectivity restored" true rep.Repair.connected;
      check Alcotest.bool "certified" true rep.Repair.certified;
      check Alcotest.bool "stretch within alpha" true (rep.Repair.dist_stretch <= 3);
      check Alcotest.int "cost accounting" (List.length rep.Repair.added)
        (rep.Repair.connectivity_added + rep.Repair.stretch_added))
    [ (1, 0.1); (2, 0.2); (3, 0.3); (4, 0.05) ]

let test_repair_noop_on_intact_spanner () =
  let g = Generators.random_regular (Prng.create 9) 60 10 in
  let h = Classic.greedy g ~k:2 in
  let rep = Repair.run h ~within:g in
  check Alcotest.int "nothing to re-add" 0 (List.length rep.Repair.added);
  check Alcotest.bool "certified" true rep.Repair.certified

let test_repair_reconnects_bridge () =
  (* two triangles joined by a bridge; the damaged spanner lost the bridge *)
  let g = Graph.create 6 in
  List.iter
    (fun (u, v) -> ignore (Graph.add_edge g u v))
    [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3); (2, 3) ];
  let h = Graph.copy g in
  ignore (Graph.remove_edge h 2 3);
  let rep = Repair.run h ~within:g in
  check Alcotest.bool "bridge restored" true (Graph.mem_edge rep.Repair.spanner 2 3);
  check Alcotest.int "one connectivity edge" 1 rep.Repair.connectivity_added;
  check Alcotest.bool "certified" true rep.Repair.certified

let test_repair_rejects_non_subgraph () =
  let g = Generators.cycle 5 in
  let h = Generators.complete 5 in
  check Alcotest.bool "invalid argument" true
    (try
       ignore (Repair.run h ~within:g);
       false
     with Invalid_argument _ -> true)

let test_repair_deterministic () =
  let _, _, a = repair_case 5 0.2 in
  let _, _, b = repair_case 5 0.2 in
  check Alcotest.bool "same added edges" true (a.Repair.added = b.Repair.added)

let test_repair_certify_dc () =
  (* edge faults keep every node alive, so the survivor stays connected and
     Definition 4's whole-graph routing problems are routable *)
  let g = Generators.random_regular (Prng.create 6) 60 16 in
  let h = Classic.greedy g ~k:2 in
  let plan = Fault_plan.uniform_edges (Prng.create 106) g ~p:0.05 in
  let g' = Fault_plan.survivor g plan in
  check Alcotest.bool "survivor connected" true (Connectivity.is_connected g');
  let rep = Repair.run (Fault_plan.survivor h plan) ~within:g' in
  let e = Repair.certify_dc ~trials:4 ~alpha:3.0 rep ~within:g' (Prng.create 77) in
  check Alcotest.int "trials run" 4 e.Dc_check.trials;
  check Alcotest.bool "distance stretch within alpha" true (e.Dc_check.worst_dist <= 3.0);
  (* and the disconnected regime is rejected, not mis-certified *)
  let _, _, node_rep = repair_case 6 0.3 in
  check Alcotest.bool "disconnected survivor rejected" true
    (try
       ignore
         (Repair.certify_dc ~trials:1 ~alpha:3.0 node_rep
            ~within:(let g', _, _ = repair_case 6 0.3 in g')
            (Prng.create 1));
       false
     with Invalid_argument _ -> true)

(* ---- repair robustness edge cases ---- *)

let test_repair_multi_component_survivor () =
  (* two disjoint triangles: repair must report connected (component counts
     match [within]) and certified, without inventing cross-component edges *)
  let g = Graph.create 6 in
  List.iter
    (fun (u, v) -> ignore (Graph.add_edge g u v))
    [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ];
  let h = Graph.empty_like g in
  let rep = Repair.run h ~within:g in
  check Alcotest.int "components match within" (Connectivity.count g)
    (Connectivity.count rep.Repair.spanner);
  check Alcotest.bool "connected (per component)" true rep.Repair.connected;
  check Alcotest.bool "certified" true rep.Repair.certified;
  check Alcotest.bool "stretch within alpha" true (rep.Repair.dist_stretch <= 3)

let test_repair_empty_survivor () =
  (* every edge gone from both graphs: nothing to add, trivially certified *)
  let within = Graph.create 5 in
  let rep = Repair.run (Graph.create 5) ~within in
  check Alcotest.int "nothing added" 0 (List.length rep.Repair.added);
  check Alcotest.bool "connected" true rep.Repair.connected;
  check Alcotest.bool "certified" true rep.Repair.certified;
  check Alcotest.int "stretch 1" 1 rep.Repair.dist_stretch

(* ---- qcheck ---- *)

let prop_repair_idempotent =
  QCheck.Test.make ~name:"repairing an already-repaired spanner adds zero edges" ~count:20
    QCheck.(pair small_int (int_range 0 30))
    (fun (seed, pct) ->
      let g = Generators.random_regular (Prng.create 19) 60 10 in
      let h = Classic.greedy g ~k:2 in
      let plan =
        Fault_plan.uniform_nodes (Prng.create (400 + seed)) g ~p:(float_of_int pct /. 100.0)
      in
      let g' = Fault_plan.survivor g plan in
      let h' = Fault_plan.survivor h plan in
      let first = Repair.run h' ~within:g' in
      let again = Repair.run first.Repair.spanner ~within:g' in
      again.Repair.added = [] && again.Repair.certified = first.Repair.certified)

let prop_plan_reproducible =
  QCheck.Test.make ~name:"fault plans are pure functions of the seed" ~count:40
    QCheck.(pair small_int (int_range 0 100))
    (fun (seed, pct) ->
      let g = Generators.random_regular (Prng.create 11) 50 6 in
      let p = float_of_int pct /. 100.0 in
      let a = Fault_plan.uniform_nodes (Prng.create seed) g ~p in
      let b = Fault_plan.uniform_nodes (Prng.create seed) g ~p in
      Fault_plan.events a = Fault_plan.events b)

let prop_rate0_equivalence =
  QCheck.Test.make ~name:"empty plan reproduces Packet_sim exactly" ~count:25
    QCheck.(pair small_int (int_range 1 40))
    (fun (seed, k) ->
      let g = Generators.torus 5 5 in
      let rng = Prng.create seed in
      let routing =
        Sp_routing.route_random (Csr.snapshot g) rng (Problems.random_pairs rng g ~k)
      in
      let s = Fault_sim.run ~n:25 ~network:g ~plan:(Fault_plan.empty 25) routing in
      Fault_sim.base_stats s = Packet_sim.run ~n:25 routing)

let prop_repair_certifies =
  QCheck.Test.make ~name:"repair certifies inside every survivor" ~count:20
    QCheck.(pair small_int (int_range 0 30))
    (fun (seed, pct) ->
      let g = Generators.random_regular (Prng.create 13) 60 12 in
      let h = Classic.greedy g ~k:2 in
      let plan =
        Fault_plan.uniform_nodes (Prng.create seed) g ~p:(float_of_int pct /. 100.0)
      in
      let g' = Fault_plan.survivor g plan in
      let h' = Fault_plan.survivor h plan in
      let rep = Repair.run h' ~within:g' in
      Graph.is_subgraph rep.Repair.spanner ~of_:g' && rep.Repair.certified)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "fault"
    [
      ( "graph-survivor",
        [
          Alcotest.test_case "isolate" `Quick test_graph_isolate;
          Alcotest.test_case "survivor" `Quick test_graph_survivor;
        ] );
      ( "plans",
        [
          Alcotest.test_case "canonical schedule" `Quick test_plan_schedule_canonical;
          Alcotest.test_case "rejects invalid" `Quick test_plan_schedule_rejects;
          Alcotest.test_case "seed reproducible" `Quick test_plan_seed_reproducible;
          Alcotest.test_case "rate extremes" `Quick test_plan_rates;
          Alcotest.test_case "adversarial hotspots" `Quick test_plan_adversarial_targets_hotspots;
          Alcotest.test_case "merge and survivor" `Quick test_plan_merge_and_survivor;
          Alcotest.test_case "merge rejects mismatched n" `Quick
            test_plan_merge_rejects_mismatched_n;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "reroute around dead node" `Quick test_sim_reroute_around_dead_node;
          Alcotest.test_case "edge fault burns slot" `Quick test_sim_edge_fault_burns_slot;
          Alcotest.test_case "drop when disconnected" `Quick test_sim_drop_when_disconnected;
          Alcotest.test_case "drop dead destination" `Quick test_sim_drop_dead_destination;
          Alcotest.test_case "attempt budget" `Quick test_sim_attempt_budget;
          Alcotest.test_case "late faults never strike" `Quick test_sim_late_faults_never_strike;
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
        ] );
      ( "rate-0",
        [
          Alcotest.test_case "equivalence" `Quick test_sim_rate0_equivalence;
          Alcotest.test_case "off-network routing" `Quick test_sim_rate0_offnetwork_routing;
        ] );
      ( "repair",
        [
          Alcotest.test_case "invariants" `Quick test_repair_invariants;
          Alcotest.test_case "noop on intact spanner" `Quick test_repair_noop_on_intact_spanner;
          Alcotest.test_case "reconnects bridge" `Quick test_repair_reconnects_bridge;
          Alcotest.test_case "rejects non-subgraph" `Quick test_repair_rejects_non_subgraph;
          Alcotest.test_case "deterministic" `Quick test_repair_deterministic;
          Alcotest.test_case "certify dc" `Quick test_repair_certify_dc;
          Alcotest.test_case "multi-component survivor" `Quick
            test_repair_multi_component_survivor;
          Alcotest.test_case "empty survivor" `Quick test_repair_empty_survivor;
        ] );
      ("properties", q
          [
            prop_plan_reproducible;
            prop_rate0_equivalence;
            prop_repair_certifies;
            prop_repair_idempotent;
          ]);
    ]
