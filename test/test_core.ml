(* Integration tests for the public facade (Dc_spanner) and the shared
   experiment harness: every algorithm end-to-end on suitable graphs. *)

let check = Alcotest.check

let expander seed n d =
  let d = if n * d mod 2 = 1 then d + 1 else d in
  Generators.random_regular (Prng.create seed) n d

let all_algorithms =
  [
    Dc_spanner.Theorem2;
    Dc_spanner.Algorithm1;
    Dc_spanner.Greedy 2;
    Dc_spanner.Baswana_sen;
    Dc_spanner.Spectral_sparsify;
    Dc_spanner.Bounded_degree;
    Dc_spanner.Khop 3;
    Dc_spanner.Irregular;
  ]

let test_algorithm_names_unique () =
  let names = List.map Dc_spanner.algorithm_name all_algorithms in
  let uniq = List.sort_uniq compare names in
  check Alcotest.int "unique names" (List.length names) (List.length uniq);
  List.iter
    (fun a -> check Alcotest.bool "guarantee non-empty" true (Dc_spanner.stretch_guarantee a <> ""))
    all_algorithms

let test_build_all_algorithms () =
  let g = expander 1 120 34 in
  List.iter
    (fun algo ->
      let rng = Prng.create 7 in
      let dc = Dc_spanner.build algo rng g in
      check Alcotest.bool
        (Dc_spanner.algorithm_name algo ^ ": spanner subgraph")
        true
        (Graph.is_subgraph dc.Dc.spanner ~of_:g);
      (* route one matching through each *)
      let m = Matching.random_maximal rng g in
      let paths = dc.Dc.route_matching rng m in
      let problem = Routing.problem_of_edges m in
      check Alcotest.bool
        (Dc_spanner.algorithm_name algo ^ ": routing valid")
        true
        (Routing.is_valid dc.Dc.spanner problem paths))
    all_algorithms

let test_build_deterministic () =
  let g = expander 2 100 30 in
  let build () =
    let rng = Prng.create 13 in
    (Dc_spanner.build Dc_spanner.Algorithm1 rng g).Dc.spanner
  in
  let a = build () and b = build () in
  check Alcotest.int "same edge count" (Graph.m a) (Graph.m b);
  check Alcotest.bool "same edges" true (Graph.is_subgraph a ~of_:b)

let test_dc_spanners_have_stretch_3 () =
  let g = expander 3 150 40 in
  List.iter
    (fun algo ->
      let rng = Prng.create 19 in
      let dc = Dc_spanner.build algo rng g in
      check Alcotest.bool
        (Dc_spanner.algorithm_name algo ^ ": stretch <= 3")
        true
        (Stretch.exact g dc.Dc.spanner <= 3))
    [ Dc_spanner.Theorem2; Dc_spanner.Algorithm1; Dc_spanner.Greedy 2; Dc_spanner.Baswana_sen ]

let test_evaluate_row () =
  let g = expander 4 100 30 in
  let rng = Prng.create 23 in
  let dc = Dc_spanner.build Dc_spanner.Algorithm1 rng g in
  let row = Experiment.evaluate ~trials:2 rng dc in
  check Alcotest.int "n" 100 row.Experiment.n;
  check Alcotest.int "m(G)" (Graph.m g) row.Experiment.m_graph;
  check Alcotest.int "m(H)" (Graph.m dc.Dc.spanner) row.Experiment.m_spanner;
  check Alcotest.bool "lambda measured" true (row.Experiment.lambda > 0.0);
  check Alcotest.bool "dist stretch <= 3" true (row.Experiment.dist_stretch <= 3);
  check Alcotest.bool "matching measured" true
    (row.Experiment.matching.Dc.mean_congestion >= 1.0);
  (match row.Experiment.general with
  | None -> Alcotest.fail "expected general measurement"
  | Some gen ->
      check Alcotest.bool "general stretch >= 0" true (gen.Dc.stretch >= 0.0);
      check Alcotest.bool "dist stretch of substitute <= 3" true (gen.Dc.dist_stretch <= 3.0));
  let cells = Experiment.row_cells row ~norm_exp:(5.0 /. 3.0) in
  check Alcotest.int "cells match columns" (List.length Experiment.row_columns) (List.length cells)

let test_evaluate_without_general () =
  let g = expander 5 80 24 in
  let rng = Prng.create 29 in
  let dc = Dc_spanner.build Dc_spanner.Theorem2 rng g in
  let row = Experiment.evaluate ~trials:1 ~with_general:false ~with_lambda:false rng dc in
  check Alcotest.bool "no general" true (row.Experiment.general = None);
  check (Alcotest.float 1e-9) "lambda skipped" 0.0 row.Experiment.lambda;
  let cells = Experiment.row_cells row ~norm_exp:1.0 in
  check Alcotest.int "cells still render" (List.length Experiment.row_columns) (List.length cells)

let test_edges_norm () =
  let g = expander 6 64 20 in
  let rng = Prng.create 31 in
  let dc = Dc_spanner.build Dc_spanner.Bounded_degree rng g in
  let row = Experiment.evaluate ~trials:1 ~with_general:false ~with_lambda:false rng dc in
  check (Alcotest.float 1e-9) "norm exponent 0 = raw edges"
    (float_of_int row.Experiment.m_spanner)
    (Experiment.edges_norm row 0.0)

let test_classic_vs_dc_on_lower_bound_family () =
  (* The motivating comparison: on the Theorem 4 family, a pure distance
     spanner of optimal size has congestion stretch k; the full graph (a
     trivial DC-spanner) has stretch 1. *)
  let rng = Prng.create 37 in
  let t = Theorem4.make rng ~pool:300 ~instances:25 ~k:3 in
  let h, removed = Theorem4.optimal_spanner t in
  check Alcotest.bool "optimal spanner is 3-distance" true
    (Stretch.is_three_spanner t.Theorem4.graph h);
  let n = Graph.n t.Theorem4.graph in
  let worst = ref 0 in
  for i = 0 to 24 do
    ignore removed;
    let c = Routing.congestion ~n (Theorem4.forced_routing t i) in
    worst := max !worst c
  done;
  check Alcotest.int "congestion stretch = k" 3 !worst

let () =
  Alcotest.run "core"
    [
      ( "facade",
        [
          Alcotest.test_case "algorithm names" `Quick test_algorithm_names_unique;
          Alcotest.test_case "build all" `Quick test_build_all_algorithms;
          Alcotest.test_case "deterministic" `Quick test_build_deterministic;
          Alcotest.test_case "stretch-3 constructions" `Quick test_dc_spanners_have_stretch_3;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "evaluate row" `Quick test_evaluate_row;
          Alcotest.test_case "evaluate minimal" `Quick test_evaluate_without_general;
          Alcotest.test_case "edges norm" `Quick test_edges_norm;
          Alcotest.test_case "lower-bound family comparison" `Quick
            test_classic_vs_dc_on_lower_bound_family;
        ] );
    ]
