(* Tests for dcs_util: PRNG determinism and distribution sanity, statistics,
   report rendering. *)

let check = Alcotest.check

let test_prng_deterministic () =
  let a = Prng.create 123 and b = Prng.create 123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.int64 a = Prng.int64 b then incr same
  done;
  check Alcotest.bool "streams differ" true (!same < 4)

let test_prng_copy_independent () =
  let a = Prng.create 99 in
  ignore (Prng.int64 a);
  let b = Prng.copy a in
  let xa = Prng.int64 a in
  let xb = Prng.int64 b in
  check Alcotest.int64 "copy continues identically" xa xb;
  (* advancing one does not affect the other *)
  ignore (Prng.int64 a);
  ignore (Prng.int64 a);
  let ya = Prng.int64 a and yb = Prng.int64 b in
  check Alcotest.bool "copies diverge after different numbers of draws" true (ya <> yb || xa = xb)

let test_prng_split_independent () =
  let a = Prng.create 7 in
  let child = Prng.split a in
  let xs = Array.init 16 (fun _ -> Prng.int64 a) in
  let ys = Array.init 16 (fun _ -> Prng.int64 child) in
  let clashes = ref 0 in
  Array.iteri (fun i x -> if x = ys.(i) then incr clashes) xs;
  check Alcotest.bool "split stream decorrelated" true (!clashes <= 1)

let test_prng_int_bounds () =
  let rng = Prng.create 5 in
  for _ = 1 to 1000 do
    let bound = 1 + Prng.int rng 100 in
    let x = Prng.int rng bound in
    check Alcotest.bool "0 <= x < bound" true (x >= 0 && x < bound)
  done

let test_prng_int_rejects_bad_bound () =
  let rng = Prng.create 5 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0))

let test_prng_int_covers_range () =
  let rng = Prng.create 11 in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    seen.(Prng.int rng 10) <- true
  done;
  Array.iteri (fun i s -> check Alcotest.bool (Printf.sprintf "value %d reached" i) true s) seen

let test_prng_float_range () =
  let rng = Prng.create 17 in
  for _ = 1 to 1000 do
    let x = Prng.float rng in
    check Alcotest.bool "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_prng_bool_bias () =
  let rng = Prng.create 23 in
  let count = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Prng.bool rng 0.25 then incr count
  done;
  let rate = float_of_int !count /. float_of_int trials in
  check Alcotest.bool "empirical rate near 0.25" true (rate > 0.22 && rate < 0.28)

let test_shuffle_is_permutation () =
  let rng = Prng.create 31 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "same multiset" (Array.init 50 (fun i -> i)) sorted

let test_permutation_uniform_smoke () =
  (* Each position should see many distinct values across trials. *)
  let rng = Prng.create 37 in
  let seen = Array.init 5 (fun _ -> Hashtbl.create 8) in
  for _ = 1 to 200 do
    let p = Prng.permutation rng 5 in
    Array.iteri (fun i v -> Hashtbl.replace seen.(i) v ()) p
  done;
  Array.iter (fun h -> check Alcotest.int "all values at each position" 5 (Hashtbl.length h)) seen

let test_sample_distinct () =
  let rng = Prng.create 41 in
  for _ = 1 to 50 do
    let n = 2 + Prng.int rng 60 in
    let k = Prng.int rng (n + 1) in
    let s = Prng.sample_distinct rng ~n ~k in
    check Alcotest.int "size k" k (Array.length s);
    let tbl = Hashtbl.create k in
    Array.iter
      (fun x ->
        check Alcotest.bool "in range" true (x >= 0 && x < n);
        check Alcotest.bool "distinct" false (Hashtbl.mem tbl x);
        Hashtbl.add tbl x ())
      s
  done

let test_pick_empty () =
  let rng = Prng.create 2 in
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty array") (fun () ->
      ignore (Prng.pick rng [||]))

(* ---- stats ---- *)

let feq msg a b = check (Alcotest.float 1e-9) msg a b

let test_mean () =
  feq "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  feq "mean empty" 0.0 (Stats.mean [||])

let test_variance_stddev () =
  feq "variance" 1.25 (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |]);
  feq "stddev" (sqrt 1.25) (Stats.stddev [| 1.0; 2.0; 3.0; 4.0 |]);
  feq "variance singleton" 0.0 (Stats.variance [| 5.0 |])

let test_min_max () =
  feq "min" (-2.0) (Stats.minimum [| 3.0; -2.0; 7.0 |]);
  feq "max" 7.0 (Stats.maximum [| 3.0; -2.0; 7.0 |])

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  feq "p0" 1.0 (Stats.percentile xs 0.0);
  feq "p100" 5.0 (Stats.percentile xs 100.0);
  feq "p50" 3.0 (Stats.percentile xs 50.0);
  feq "p25" 2.0 (Stats.percentile xs 25.0);
  feq "median unsorted input" 3.0 (Stats.median [| 5.0; 1.0; 3.0; 2.0; 4.0 |])

let test_percentile_interpolates () =
  let xs = [| 0.0; 10.0 |] in
  feq "p75 interpolated" 7.5 (Stats.percentile xs 75.0)

let test_histogram () =
  let h = Stats.histogram ~bucket:10 [| 1; 5; 11; 19; 25; 9 |] in
  check
    Alcotest.(list (pair int int))
    "buckets" [ (0, 3); (10, 2); (20, 1) ] h

let test_histogram_rejects () =
  Alcotest.check_raises "bucket 0" (Invalid_argument "Stats.histogram: bucket must be positive")
    (fun () -> ignore (Stats.histogram ~bucket:0 [| 1 |]))

let test_log2 () = feq "log2 8" 3.0 (Stats.log2 8.0)

let test_linear_fit () =
  let slope, intercept = Stats.linear_fit [| (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) |] in
  feq "slope" 2.0 slope;
  feq "intercept" 1.0 intercept;
  Alcotest.check_raises "one point" (Invalid_argument "Stats.linear_fit: need at least two points")
    (fun () -> ignore (Stats.linear_fit [| (1.0, 1.0) |]));
  Alcotest.check_raises "degenerate x" (Invalid_argument "Stats.linear_fit: degenerate x values")
    (fun () -> ignore (Stats.linear_fit [| (2.0, 1.0); (2.0, 5.0) |]))

let test_fitted_exponent () =
  (* y = 3 n^2 exactly *)
  let pts = Array.map (fun n -> (n, 3 * n * n)) [| 2; 4; 8; 16 |] in
  check (Alcotest.float 1e-6) "exponent 2" 2.0 (Stats.fitted_exponent pts);
  Alcotest.check_raises "positive values"
    (Invalid_argument "Stats.fitted_exponent: values must be positive") (fun () ->
      ignore (Stats.fitted_exponent [| (1, 0); (2, 4) |]))

(* ---- report (rendering does not raise; widths consistent) ---- *)

let test_report () =
  let t = Report.create ~title:"t" ~columns:[ "a"; "b" ] in
  Report.add_row t [ "1"; "2" ];
  Report.add_note t "note";
  Alcotest.check_raises "row width" (Invalid_argument "Report.add_row: row width mismatch")
    (fun () -> Report.add_row t [ "only-one" ])

(* ---- qcheck properties ---- *)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile within [min,max]" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 30) (float_bound_inclusive 1000.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let arr = Array.of_list xs in
      let v = Stats.percentile arr p in
      v >= Stats.minimum arr -. 1e-9 && v <= Stats.maximum arr +. 1e-9)

let prop_shuffle_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let rng = Prng.create seed in
      let arr = Array.of_list xs in
      let before = List.sort compare xs in
      Prng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = before)

let prop_sample_distinct_sorted_subset =
  QCheck.Test.make ~name:"sample_distinct subset of range" ~count:200
    QCheck.(pair small_int (pair (int_range 1 100) (int_range 0 100)))
    (fun (seed, (n, k0)) ->
      let k = min k0 n in
      let rng = Prng.create seed in
      let s = Prng.sample_distinct rng ~n ~k in
      Array.for_all (fun x -> x >= 0 && x < n) s)

let prop_histogram_total =
  QCheck.Test.make ~name:"histogram counts sum to length" ~count:200
    QCheck.(pair (int_range 1 20) (list (int_range 0 500)))
    (fun (bucket, xs) ->
      let h = Stats.histogram ~bucket (Array.of_list xs) in
      List.fold_left (fun acc (_, c) -> acc + c) 0 h = List.length xs)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int bad bound" `Quick test_prng_int_rejects_bad_bound;
          Alcotest.test_case "int covers range" `Quick test_prng_int_covers_range;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "bool bias" `Quick test_prng_bool_bias;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "permutation coverage" `Quick test_permutation_uniform_smoke;
          Alcotest.test_case "sample_distinct" `Quick test_sample_distinct;
          Alcotest.test_case "pick empty" `Quick test_pick_empty;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "variance/stddev" `Quick test_variance_stddev;
          Alcotest.test_case "min/max" `Quick test_min_max;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile interpolation" `Quick test_percentile_interpolates;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram rejects" `Quick test_histogram_rejects;
          Alcotest.test_case "log2" `Quick test_log2;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
          Alcotest.test_case "fitted exponent" `Quick test_fitted_exponent;
        ] );
      ("report", [ Alcotest.test_case "rendering" `Quick test_report ]);
      ( "properties",
        q
          [
            prop_percentile_bounds;
            prop_shuffle_multiset;
            prop_sample_distinct_sorted_subset;
            prop_histogram_total;
          ] );
    ]
