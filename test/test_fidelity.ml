(* Fidelity and tooling tests: the literal Algorithm 2 loop vs the closed
   form, the Lanczos eigenvalue estimator vs closed forms and power
   iteration, the expander mixing lemma checker (Lemma 3), routing-problem
   serialization, and CSV export. *)

let check = Alcotest.check

(* ---- literal Algorithm 2 vs closed form ---- *)

let routing_for seed k =
  let g = Generators.torus 6 6 in
  let c = Csr.snapshot g in
  let rng = Prng.create seed in
  let problem = Problems.random_pairs rng g ~k in
  Sp_routing.route_random c rng problem

let test_literal_levels_structure () =
  for seed = 1 to 8 do
    let routing = routing_for seed 50 in
    let literal = Decompose.literal_levels routing in
    (* 1. every (path, edge) pair appears exactly once *)
    let pairs = Hashtbl.create 64 in
    List.iter
      (fun (key, _) ->
        check Alcotest.bool "pair unique" false (Hashtbl.mem pairs key);
        Hashtbl.add pairs key ())
      literal;
    let total_edges =
      Array.fold_left (fun acc p -> acc + Routing.length p) 0 routing
    in
    check Alcotest.int "covers all path edges" total_edges (List.length literal);
    (* 2. per edge, the multiset of levels is exactly {0 .. t-1} where t is
       the number of owning paths — the closed-form invariant *)
    let by_edge = Hashtbl.create 64 in
    List.iter
      (fun ((_, e), level) ->
        let cur = try Hashtbl.find by_edge e with Not_found -> [] in
        Hashtbl.replace by_edge e (level :: cur))
      literal;
    Hashtbl.iter
      (fun _ levels ->
        let sorted = List.sort compare levels in
        List.iteri (fun i l -> check Alcotest.int "levels are 0..t-1" i l) sorted)
      by_edge
  done

let test_literal_levels_single_path () =
  let literal = Decompose.literal_levels [| [| 0; 1; 2; 3 |] |] in
  check Alcotest.int "three pairs" 3 (List.length literal);
  List.iter (fun (_, level) -> check Alcotest.int "all level 0" 0 level) literal

let test_literal_levels_shared_edge () =
  (* two paths over the same edge: one gets level 0, the other level 1 *)
  let literal = Decompose.literal_levels [| [| 0; 1 |]; [| 0; 1 |] |] in
  let levels = List.sort compare (List.map snd literal) in
  check Alcotest.(list int) "levels split" [ 0; 1 ] levels

(* ---- Lanczos ---- *)

let feq tol msg a b = check (Alcotest.float tol) msg a b

let test_lanczos_closed_forms () =
  feq 0.02 "K_20" 1.0 (Spectral.lambda_lanczos (Csr.snapshot (Generators.complete 20)));
  feq 0.02 "Q_5 (bipartite)" 5.0 (Spectral.lambda_lanczos (Csr.snapshot (Generators.hypercube 5)));
  let n = 25 in
  feq 0.02 "C_25"
    (2.0 *. cos (Float.pi /. float_of_int n))
    (Spectral.lambda_lanczos (Csr.snapshot (Generators.cycle n)));
  feq 0.02 "K_{8,8}" 8.0 (Spectral.lambda_lanczos (Csr.snapshot (Generators.complete_bipartite 8 8)))

let test_lanczos_matches_power_iteration () =
  List.iter
    (fun seed ->
      let g = Generators.random_regular (Prng.create seed) 150 12 in
      let c = Csr.snapshot g in
      let p = Spectral.lambda c in
      let l = Spectral.lambda_lanczos c in
      check Alcotest.bool
        (Printf.sprintf "agree: power %.3f vs lanczos %.3f" p l)
        true
        (Float.abs (p -. l) < 0.15))
    [ 1; 2; 3 ]

let test_lanczos_trivial () =
  feq 1e-9 "single node" 0.0 (Spectral.lambda_lanczos (Csr.snapshot (Graph.create 1)));
  (* two isolated nodes: spectrum {0}; deflated operator is 0 *)
  feq 0.05 "empty graph" 0.0 (Spectral.lambda_lanczos (Csr.snapshot (Graph.create 2)))

(* ---- mixing lemma ---- *)

let test_e_between () =
  let g = Csr.snapshot (Generators.complete_bipartite 3 4) in
  (* S = left part, T = right part: all 12 edges cross *)
  check Alcotest.int "K_{3,4} full cut" 12
    (Mixing.e_between g [| 0; 1; 2 |] [| 3; 4; 5; 6 |]);
  check Alcotest.int "partial" 4 (Mixing.e_between g [| 0 |] [| 3; 4; 5; 6 |]);
  check Alcotest.int "no left-left edges" 0 (Mixing.e_between g [| 0 |] [| 1; 2 |])

let test_mixing_lemma_holds () =
  (* With the true lambda, the inequality must hold on every sample. *)
  List.iter
    (fun (name, g, lambda) ->
      let c = Csr.snapshot g in
      let rng = Prng.create 7 in
      let r = Mixing.check ~trials:60 rng c ~lambda in
      check Alcotest.int (name ^ ": no violations") 0 r.Mixing.violations;
      check Alcotest.bool (name ^ ": ratio <= 1") true (r.Mixing.worst_ratio <= 1.0))
    [
      ("complete", Generators.complete 40, 1.0);
      ("hypercube", Generators.hypercube 6, 6.0);
      ( "random regular",
        Generators.random_regular (Prng.create 3) 120 20,
        Spectral.lambda_lanczos (Csr.snapshot (Generators.random_regular (Prng.create 3) 120 20))
      );
    ]

let test_mixing_lemma_detects_fake_lambda () =
  (* With lambda far below the truth, some sample must violate. *)
  let g = Generators.random_regular (Prng.create 4) 120 20 in
  let c = Csr.snapshot g in
  let rng = Prng.create 8 in
  let r = Mixing.check ~trials:80 rng c ~lambda:0.3 in
  check Alcotest.bool "violations found" true (r.Mixing.violations > 0)

(* ---- routing problem I/O ---- *)

let roundtrip problem =
  let path = Filename.temp_file "dcs_problem" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Routing_io.write problem path;
      Routing_io.read path)

let test_routing_io_roundtrip () =
  let rng = Prng.create 9 in
  let g = Generators.torus 5 5 in
  List.iter
    (fun problem ->
      let got = roundtrip problem in
      check Alcotest.int "size" (Array.length problem) (Array.length got);
      Array.iteri
        (fun i { Routing.src; dst } ->
          check Alcotest.int "src" src got.(i).Routing.src;
          check Alcotest.int "dst" dst got.(i).Routing.dst)
        problem)
    [ Problems.permutation rng g; Problems.random_pairs rng g ~k:12; [||] ]

let parse_problem_string ?n s =
  let path = Filename.temp_file "dcs_problem" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc s;
      close_out oc;
      Routing_io.read ?n path)

let test_routing_io_validation () =
  let expect_fail ?n s =
    check Alcotest.bool s true
      (try
         ignore (parse_problem_string ?n s);
         false
       with Io_error.Parse_error _ -> true)
  in
  expect_fail "0 1\n";
  expect_fail "p 2\n0 1\n";
  expect_fail "p 1\n3 3\n";
  expect_fail ~n:4 "p 1\n0 9\n";
  expect_fail "p 1\nx y\n";
  let ok = parse_problem_string ~n:5 "# c\np 1\n0 4\n" in
  check Alcotest.int "parsed" 1 (Array.length ok)

(* ---- Premise diagnostics ---- *)

let test_premise_good_regular () =
  let g = Generators.random_regular (Prng.create 21) 216 80 in
  let p = Premise.check g in
  check Alcotest.bool "delta ok" true p.Premise.delta_ok;
  check Alcotest.bool "regular" true p.Premise.regular;
  check Alcotest.bool "theorem 3 premises" true (Premise.theorem3_ok p);
  check Alcotest.bool "theorem 2 premises" true (Premise.theorem2_ok p);
  check Alcotest.(list string) "no warnings" [] (Premise.describe p)

let test_premise_sparse_graph_flagged () =
  let g = Generators.torus 10 10 in
  let p = Premise.check g in
  check Alcotest.bool "delta too small" false p.Premise.delta_ok;
  check Alcotest.bool "theorem 3 fails" false (Premise.theorem3_ok p);
  check Alcotest.bool "warnings present" true (Premise.describe p <> [])

let test_premise_irregular_flagged () =
  let g = Generators.star 100 in
  let p = Premise.check g in
  check Alcotest.bool "degree ratio large" true (p.Premise.degree_ratio > 2.0);
  check Alcotest.bool "theorem 3 fails" false (Premise.theorem3_ok p)

let test_premise_weak_expander_flagged () =
  (* ring of cliques: dense enough locally but terrible expansion *)
  let g = Generators.ring_of_cliques 10 22 in
  let p = Premise.check g in
  check Alcotest.bool "expander check fails" false p.Premise.expander_ok;
  check Alcotest.bool "theorem 2 fails" false (Premise.theorem2_ok p)

(* ---- Report CSV ---- *)

let test_report_csv () =
  let t = Report.create ~title:"x" ~columns:[ "a"; "b" ] in
  Report.add_row t [ "1"; "two, quoted \"here\"" ];
  Report.add_note t "a note";
  let csv = Report.csv t in
  check Alcotest.string "csv escaping"
    "a,b\n1,\"two, quoted \"\"here\"\"\"\n# a note\n" csv

(* ---- qcheck ---- *)

let prop_literal_levels_cover =
  QCheck.Test.make ~name:"literal levels cover all path edges once" ~count:40
    QCheck.(pair small_int (int_range 5 60))
    (fun (seed, k) ->
      let routing = routing_for seed k in
      let literal = Decompose.literal_levels routing in
      let total = Array.fold_left (fun acc p -> acc + Routing.length p) 0 routing in
      List.length literal = total)

let prop_routing_io_roundtrip =
  QCheck.Test.make ~name:"routing io roundtrip" ~count:40
    QCheck.(pair small_int (int_range 0 30))
    (fun (seed, k) ->
      let rng = Prng.create seed in
      let g = Generators.torus 5 5 in
      let problem = Problems.random_pairs rng g ~k:(max 1 k) in
      let got = roundtrip problem in
      got = problem)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "fidelity"
    [
      ( "literal-algorithm2",
        [
          Alcotest.test_case "structure" `Quick test_literal_levels_structure;
          Alcotest.test_case "single path" `Quick test_literal_levels_single_path;
          Alcotest.test_case "shared edge" `Quick test_literal_levels_shared_edge;
        ] );
      ( "lanczos",
        [
          Alcotest.test_case "closed forms" `Quick test_lanczos_closed_forms;
          Alcotest.test_case "matches power iteration" `Quick test_lanczos_matches_power_iteration;
          Alcotest.test_case "trivial graphs" `Quick test_lanczos_trivial;
        ] );
      ( "mixing-lemma",
        [
          Alcotest.test_case "e_between" `Quick test_e_between;
          Alcotest.test_case "holds with true lambda" `Quick test_mixing_lemma_holds;
          Alcotest.test_case "detects fake lambda" `Quick test_mixing_lemma_detects_fake_lambda;
        ] );
      ( "routing-io",
        [
          Alcotest.test_case "roundtrip" `Quick test_routing_io_roundtrip;
          Alcotest.test_case "validation" `Quick test_routing_io_validation;
        ] );
      ( "premise",
        [
          Alcotest.test_case "good regular expander" `Quick test_premise_good_regular;
          Alcotest.test_case "sparse graph flagged" `Quick test_premise_sparse_graph_flagged;
          Alcotest.test_case "irregular flagged" `Quick test_premise_irregular_flagged;
          Alcotest.test_case "weak expander flagged" `Quick test_premise_weak_expander_flagged;
        ] );
      ("report-csv", [ Alcotest.test_case "escaping" `Quick test_report_csv ]);
      ("properties", q [ prop_literal_levels_cover; prop_routing_io_roundtrip ]);
    ]
