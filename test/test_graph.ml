(* Tests for dcs_graph: graph ops, CSR, BFS (vs Floyd–Warshall), generators,
   connectivity, union-find, spectral estimates vs closed forms, bitmat. *)

let check = Alcotest.check

let random_graph seed n p =
  let rng = Prng.create seed in
  Generators.erdos_renyi rng n p

(* ---- Graph basics ---- *)

let test_graph_add_remove () =
  let g = Graph.create 5 in
  check Alcotest.bool "add" true (Graph.add_edge g 0 1);
  check Alcotest.bool "duplicate" false (Graph.add_edge g 1 0);
  check Alcotest.bool "self-loop" false (Graph.add_edge g 2 2);
  check Alcotest.int "m" 1 (Graph.m g);
  check Alcotest.bool "mem" true (Graph.mem_edge g 1 0);
  check Alcotest.bool "remove" true (Graph.remove_edge g 0 1);
  check Alcotest.bool "remove again" false (Graph.remove_edge g 0 1);
  check Alcotest.int "m after" 0 (Graph.m g)

let test_graph_out_of_range () =
  let g = Graph.create 3 in
  Alcotest.check_raises "node range" (Invalid_argument "Graph: node out of range") (fun () ->
      ignore (Graph.add_edge g 0 3))

let test_graph_degree_neighbors () =
  let g = Graph.of_edges 4 [ (0, 1); (0, 2); (0, 3); (1, 2) ] in
  check Alcotest.int "deg 0" 3 (Graph.degree g 0);
  check Alcotest.int "deg 3" 1 (Graph.degree g 3);
  check Alcotest.(list int) "neighbors sorted" [ 1; 2; 3 ] (List.sort compare (Graph.neighbors g 0));
  check Alcotest.int "max deg" 3 (Graph.max_degree g);
  check Alcotest.int "min deg" 1 (Graph.min_degree g);
  check Alcotest.bool "not regular" false (Graph.is_regular g)

let test_graph_edges_normalized () =
  let g = Graph.of_edges 4 [ (3, 1); (2, 0) ] in
  let es = List.sort compare (Graph.edges g) in
  check Alcotest.(list (pair int int)) "normalized" [ (0, 2); (1, 3) ] es

let test_graph_copy_independent () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let h = Graph.copy g in
  ignore (Graph.add_edge h 1 2);
  check Alcotest.int "orig m" 1 (Graph.m g);
  check Alcotest.int "copy m" 2 (Graph.m h)

let test_is_subgraph () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let h = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  check Alcotest.bool "subgraph" true (Graph.is_subgraph h ~of_:g);
  check Alcotest.bool "not subgraph" false (Graph.is_subgraph g ~of_:h);
  let wrong_size = Graph.of_edges 3 [ (0, 1) ] in
  check Alcotest.bool "size mismatch" false (Graph.is_subgraph wrong_size ~of_:g)

let test_common_neighbors () =
  let g = Graph.of_edges 5 [ (0, 2); (0, 3); (1, 2); (1, 3); (1, 4) ] in
  check Alcotest.(list int) "commons of 0,1" [ 2; 3 ]
    (List.sort compare (Graph.common_neighbors g 0 1));
  check Alcotest.(list int) "no commons" [] (Graph.common_neighbors g 0 4)

(* ---- CSR ---- *)

let test_csr_matches_graph () =
  let g = random_graph 3 40 0.2 in
  let c = Csr.snapshot g in
  check Alcotest.int "n" (Graph.n g) (Csr.n c);
  check Alcotest.int "m" (Graph.m g) (Csr.m c);
  for v = 0 to Graph.n g - 1 do
    check Alcotest.int "degree" (Graph.degree g v) (Csr.degree c v);
    let from_csr = ref [] in
    Csr.iter_neighbors c v (fun u -> from_csr := u :: !from_csr);
    check Alcotest.(list int) "neighbors"
      (List.sort compare (Graph.neighbors g v))
      (List.sort compare !from_csr)
  done;
  for u = 0 to Graph.n g - 1 do
    for v = 0 to Graph.n g - 1 do
      if u <> v then check Alcotest.bool "mem" (Graph.mem_edge g u v) (Csr.mem_edge c u v)
    done
  done

(* ---- BFS vs Floyd–Warshall ---- *)

let floyd_warshall g =
  let n = Graph.n g in
  let inf = 1_000_000 in
  let d = Array.make_matrix n n inf in
  for v = 0 to n - 1 do
    d.(v).(v) <- 0
  done;
  Graph.iter_edges g (fun u v ->
      d.(u).(v) <- 1;
      d.(v).(u) <- 1);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) + d.(k).(j) < d.(i).(j) then d.(i).(j) <- d.(i).(k) + d.(k).(j)
      done
    done
  done;
  Array.map (Array.map (fun x -> if x >= inf then -1 else x)) d

let test_bfs_vs_floyd_warshall () =
  List.iter
    (fun (seed, n, p) ->
      let g = random_graph seed n p in
      let c = Csr.snapshot g in
      let fw = floyd_warshall g in
      for s = 0 to n - 1 do
        let dist = Bfs.distances c s in
        check Alcotest.(array int) (Printf.sprintf "source %d" s) fw.(s) dist
      done)
    [ (1, 20, 0.15); (2, 30, 0.08); (3, 25, 0.3); (4, 15, 0.05) ]

let test_bfs_bounded () =
  let g = Generators.path 10 in
  let c = Csr.snapshot g in
  let dist = Bfs.distances_bounded c 0 ~bound:3 in
  check Alcotest.int "within bound" 3 dist.(3);
  check Alcotest.int "beyond bound" (-1) dist.(4);
  check Alcotest.int "distance_bounded hit" 2 (Bfs.distance_bounded c 0 2 ~bound:3);
  check Alcotest.int "distance_bounded miss" (-1) (Bfs.distance_bounded c 0 7 ~bound:3)

let test_bfs_distance_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let c = Csr.snapshot g in
  check Alcotest.int "disconnected" (-1) (Bfs.distance c 0 3);
  check Alcotest.(option (array int)) "no path" None (Bfs.shortest_path c 0 3)

let test_shortest_path_valid () =
  let g = random_graph 7 30 0.15 in
  let c = Csr.snapshot g in
  for u = 0 to 29 do
    for v = 0 to 29 do
      let d = Bfs.distance c u v in
      match Bfs.shortest_path c u v with
      | None -> check Alcotest.int "consistent none" (-1) d
      | Some p ->
          check Alcotest.int "length = distance" d (Array.length p - 1);
          check Alcotest.int "starts" u p.(0);
          check Alcotest.int "ends" v p.(Array.length p - 1);
          for i = 0 to Array.length p - 2 do
            check Alcotest.bool "edge exists" true (Graph.mem_edge g p.(i) p.(i + 1))
          done
    done
  done

let test_random_shortest_path () =
  let g = Generators.torus 5 5 in
  let c = Csr.snapshot g in
  let rng = Prng.create 9 in
  for _ = 1 to 50 do
    let u = Prng.int rng 25 and v = Prng.int rng 25 in
    match Bfs.random_shortest_path c rng u v with
    | None -> Alcotest.fail "torus connected"
    | Some p ->
        check Alcotest.int "length optimal" (Bfs.distance c u v) (Array.length p - 1);
        check Alcotest.int "src" u p.(0);
        check Alcotest.int "dst" v p.(Array.length p - 1)
  done

let test_random_shortest_path_spreads () =
  (* On a 4-cycle the two shortest paths between antipodes should both
     appear across many draws. *)
  let g = Generators.cycle 4 in
  let c = Csr.snapshot g in
  let rng = Prng.create 13 in
  let via = Hashtbl.create 2 in
  for _ = 1 to 100 do
    match Bfs.random_shortest_path c rng 0 2 with
    | Some [| 0; mid; 2 |] -> Hashtbl.replace via mid ()
    | _ -> Alcotest.fail "expected length-2 path"
  done;
  check Alcotest.int "both midpoints used" 2 (Hashtbl.length via)

let test_eccentricity_diameter () =
  let g = Generators.path 10 in
  let c = Csr.snapshot g in
  check Alcotest.int "ecc of end" 9 (Bfs.eccentricity c 0);
  check Alcotest.int "ecc of middle" 5 (Bfs.eccentricity c 4);
  let rng = Prng.create 1 in
  check Alcotest.int "diameter exact" 9 (Bfs.diameter_sampled c rng ~samples:10)

(* ---- Connectivity / union-find ---- *)

let test_union_find () =
  let uf = Union_find.create 6 in
  check Alcotest.int "initial count" 6 (Union_find.count uf);
  check Alcotest.bool "union new" true (Union_find.union uf 0 1);
  check Alcotest.bool "union merged" false (Union_find.union uf 1 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 3);
  check Alcotest.bool "same" true (Union_find.same uf 1 2);
  check Alcotest.bool "not same" false (Union_find.same uf 1 4);
  check Alcotest.int "count" 3 (Union_find.count uf)

let test_components () =
  let g = Graph.of_edges 6 [ (0, 1); (1, 2); (3, 4) ] in
  check Alcotest.int "count" 3 (Connectivity.count g);
  check Alcotest.bool "not connected" false (Connectivity.is_connected g);
  let labels = Connectivity.components g in
  check Alcotest.int "0 and 2 together" labels.(0) labels.(2);
  check Alcotest.bool "different comps" true (labels.(0) <> labels.(3));
  check Alcotest.bool "singleton" true (labels.(5) <> labels.(0) && labels.(5) <> labels.(3))

let test_repair () =
  let g = Generators.cycle 8 in
  let h = Graph.create 8 in
  let added = Connectivity.repair h ~within:g in
  check Alcotest.int "spanning tree size" 7 added;
  check Alcotest.bool "connected" true (Connectivity.is_connected h);
  check Alcotest.bool "subgraph" true (Graph.is_subgraph h ~of_:g);
  (* repairing an already-connected graph is a no-op *)
  check Alcotest.int "no-op" 0 (Connectivity.repair h ~within:g)

let test_repair_cannot_exceed_g () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let h = Graph.create 4 in
  ignore (Connectivity.repair h ~within:g);
  check Alcotest.int "as connected as g" (Connectivity.count g) (Connectivity.count h)

(* ---- Generators ---- *)

let test_complete () =
  let g = Generators.complete 6 in
  check Alcotest.int "m" 15 (Graph.m g);
  check Alcotest.bool "regular" true (Graph.is_regular g);
  check Alcotest.int "degree" 5 (Graph.max_degree g)

let test_complete_bipartite () =
  let g = Generators.complete_bipartite 3 4 in
  check Alcotest.int "m" 12 (Graph.m g);
  check Alcotest.int "left degree" 4 (Graph.degree g 0);
  check Alcotest.int "right degree" 3 (Graph.degree g 3);
  check Alcotest.bool "no intra-left" false (Graph.mem_edge g 0 1)

let test_cycle_path_star () =
  let c = Generators.cycle 7 in
  check Alcotest.int "cycle m" 7 (Graph.m c);
  check Alcotest.bool "cycle regular" true (Graph.is_regular c);
  let p = Generators.path 7 in
  check Alcotest.int "path m" 6 (Graph.m p);
  let s = Generators.star 7 in
  check Alcotest.int "star m" 6 (Graph.m s);
  check Alcotest.int "star center degree" 6 (Graph.degree s 0)

let test_grid_torus () =
  let g = Generators.grid 3 4 in
  check Alcotest.int "grid m" ((2 * 4) + (3 * 3)) (Graph.m g);
  let t = Generators.torus 4 5 in
  check Alcotest.int "torus m" (2 * 20) (Graph.m t);
  check Alcotest.bool "torus 4-regular" true (Graph.is_regular t && Graph.max_degree t = 4)

let test_hypercube () =
  let g = Generators.hypercube 4 in
  check Alcotest.int "n" 16 (Graph.n g);
  check Alcotest.int "m" 32 (Graph.m g);
  check Alcotest.bool "regular" true (Graph.is_regular g);
  (* distance = Hamming distance *)
  let c = Csr.snapshot g in
  let popcount x =
    let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
    go x 0
  in
  for u = 0 to 15 do
    for v = 0 to 15 do
      check Alcotest.int "hamming" (popcount (u lxor v)) (Bfs.distance c u v)
    done
  done

let test_circulant () =
  let g = Generators.circulant 10 [ 1; 2 ] in
  check Alcotest.int "m" 20 (Graph.m g);
  check Alcotest.bool "4-regular" true (Graph.is_regular g && Graph.max_degree g = 4)

let test_erdos_renyi_extremes () =
  let rng = Prng.create 1 in
  let empty = Generators.erdos_renyi rng 10 0.0 in
  check Alcotest.int "p=0" 0 (Graph.m empty);
  let full = Generators.erdos_renyi rng 10 1.0 in
  check Alcotest.int "p=1" 45 (Graph.m full)

let test_random_regular_degrees () =
  List.iter
    (fun (seed, n, d) ->
      let rng = Prng.create seed in
      let g = Generators.random_regular rng n d in
      check Alcotest.bool
        (Printf.sprintf "exactly %d-regular (n=%d)" d n)
        true
        (Graph.is_regular g && Graph.max_degree g = d);
      check Alcotest.int "edge count" (n * d / 2) (Graph.m g))
    [ (1, 20, 3); (2, 50, 8); (3, 100, 15); (4, 40, 20); (5, 30, 29); (6, 64, 4) ]

let test_random_regular_rejects () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "odd nd" (Invalid_argument "Generators.random_regular: n*d must be even")
    (fun () -> ignore (Generators.random_regular rng 5 3));
  Alcotest.check_raises "d >= n" (Invalid_argument "Generators.random_regular: need 0 <= d < n")
    (fun () -> ignore (Generators.random_regular rng 5 5))

let test_random_regular_connected_expander () =
  let rng = Prng.create 99 in
  let g = Generators.random_regular rng 200 8 in
  check Alcotest.bool "connected" true (Connectivity.is_connected g);
  let lam = Spectral.lambda (Csr.snapshot g) in
  (* Friedman: lambda ~ 2*sqrt(7) ~ 5.29; allow generous slack. *)
  check Alcotest.bool "near-Ramanujan" true (lam < 6.5)

let test_margulis () =
  let g = Generators.margulis 8 in
  check Alcotest.int "n" 64 (Graph.n g);
  check Alcotest.bool "degree <= 8" true (Graph.max_degree g <= 8);
  check Alcotest.bool "connected" true (Connectivity.is_connected g);
  let ratio = Spectral.expansion_ratio (Csr.snapshot g) in
  check Alcotest.bool "expander" true (ratio < 0.95)

let test_two_cliques_matching () =
  let g = Generators.two_cliques_matching 12 in
  let half = 6 in
  check Alcotest.int "m" ((2 * (half * (half - 1) / 2)) + half) (Graph.m g);
  check Alcotest.bool "matching edge" true (Graph.mem_edge g 0 half);
  check Alcotest.bool "no cross non-matching" false (Graph.mem_edge g 0 (half + 1));
  check Alcotest.bool "clique A" true (Graph.mem_edge g 0 1);
  check Alcotest.bool "clique B" true (Graph.mem_edge g half (half + 1))

let test_ring_of_cliques () =
  let g = Generators.ring_of_cliques 4 5 in
  check Alcotest.int "n" 20 (Graph.n g);
  check Alcotest.int "m" ((4 * 10) + 4) (Graph.m g);
  check Alcotest.bool "connected" true (Connectivity.is_connected g);
  (* Non-expander: ratio should be large. *)
  check Alcotest.bool "not an expander" true (Spectral.expansion_ratio (Csr.snapshot g) > 0.5)

(* ---- Spectral closed forms ---- *)

let test_spectral_complete () =
  (* K_n has eigenvalues n-1 and -1: lambda = 1. *)
  let g = Generators.complete 20 in
  let lam = Spectral.lambda (Csr.snapshot g) in
  check (Alcotest.float 0.05) "K_20 lambda" 1.0 lam

let test_spectral_cycle () =
  (* Even cycles are bipartite (lambda_n = -2); odd C_n has extreme
     eigenvalue magnitude 2 cos(pi / n). *)
  let even = Generators.cycle 24 in
  check (Alcotest.float 0.02) "C_24 lambda (bipartite)" 2.0
    (Spectral.lambda (Csr.snapshot even));
  let n = 25 in
  let odd = Generators.cycle n in
  let expected = 2.0 *. cos (Float.pi /. float_of_int n) in
  check (Alcotest.float 0.02) "C_25 lambda" expected
    (Spectral.lambda (Csr.snapshot odd))

let test_spectral_hypercube () =
  (* Q_d has eigenvalues d - 2k: lambda = d - 2 (and |-d| on the bipartite
     side, but |λ_n| = d equals degree... note Q_d is bipartite so
     max(|l2|,|ln|) = d). *)
  let d = 5 in
  let g = Generators.hypercube d in
  let lam = Spectral.lambda (Csr.snapshot g) in
  check (Alcotest.float 0.1) "Q_5 lambda (bipartite: = d)" (float_of_int d) lam

let test_spectral_complete_bipartite () =
  (* K_{a,b} has eigenvalues ±sqrt(ab); deflating all-ones is only exact for
     regular graphs, so use the balanced (regular) case. *)
  let g = Generators.complete_bipartite 8 8 in
  let lam = Spectral.lambda (Csr.snapshot g) in
  check (Alcotest.float 0.1) "K_{8,8} lambda" 8.0 lam

let test_expansion_ratio_star () =
  check (Alcotest.float 1e-6) "empty graph" 0.0 (Spectral.lambda (Csr.snapshot (Graph.create 1)))

(* ---- Bitmat ---- *)

let test_bitmat_matches_common_neighbors () =
  let g = random_graph 21 70 0.12 in
  let bm = Bitmat.of_graph g in
  for u = 0 to 69 do
    for v = 0 to 69 do
      if u <> v then begin
        let expected = List.length (Graph.common_neighbors g u v) in
        check Alcotest.int "common count" expected (Bitmat.common_count bm u v);
        check Alcotest.bool "at least" true (Bitmat.common_count_at_least bm u v expected);
        check Alcotest.bool "not more" false (Bitmat.common_count_at_least bm u v (expected + 1));
        check Alcotest.bool "mem" (Graph.mem_edge g u v) (Bitmat.mem bm u v)
      end
    done
  done

(* ---- version-cached snapshots ---- *)

let test_snapshot_cached () =
  let g = random_graph 7 30 0.3 in
  let a = Csr.snapshot g in
  let b = Csr.snapshot g in
  check Alcotest.bool "unmutated snapshots physically equal" true (a == b);
  (* any successful mutation must invalidate the cache *)
  let u, v =
    let e = ref (-1, -1) in
    Graph.iter_edges g (fun x y -> if !e = (-1, -1) then e := (x, y));
    !e
  in
  check Alcotest.bool "remove" true (Graph.remove_edge g u v);
  let c = Csr.snapshot g in
  check Alcotest.bool "mutation invalidates" true (not (c == a));
  check Alcotest.int "snapshot m tracks graph" (Graph.m g) (Csr.m c);
  (* a failed mutation (removing a non-edge) must NOT invalidate *)
  check Alcotest.bool "remove again" false (Graph.remove_edge g u v);
  check Alcotest.bool "no-op keeps cache" true (Csr.snapshot g == c);
  (* re-adding restores the edge set; the snapshot follows *)
  check Alcotest.bool "add back" true (Graph.add_edge g u v);
  check Alcotest.int "restored m" (Csr.m a) (Csr.m (Csr.snapshot g))

let test_snapshot_copy_independent () =
  let g = random_graph 8 20 0.3 in
  let snap_g = Csr.snapshot g in
  let g' = Graph.copy g in
  (* the copy may share the cached snapshot (same version, same edges)... *)
  check Alcotest.int "copy snapshot m" (Csr.m snap_g) (Csr.m (Csr.snapshot g'));
  (* ...but mutating the copy must not disturb the original's cache *)
  ignore (Graph.isolate g' 0);
  check Alcotest.bool "original cache untouched" true (Csr.snapshot g == snap_g);
  check Alcotest.int "copy snapshot follows its graph" (Graph.m g') (Csr.m (Csr.snapshot g'))

(* ---- qcheck properties ---- *)

let graph_param = QCheck.(triple small_int (int_range 2 40) (int_range 0 100))

let prop_csr_roundtrip =
  QCheck.Test.make ~name:"csr preserves edge count" ~count:100 graph_param (fun (seed, n, p100) ->
      let g = random_graph seed n (float_of_int p100 /. 100.0) in
      Csr.m (Csr.snapshot g) = Graph.m g)

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"bfs distances obey triangle inequality over edges" ~count:60 graph_param
    (fun (seed, n, p100) ->
      let g = random_graph seed n (float_of_int p100 /. 100.0) in
      let c = Csr.snapshot g in
      let dist = Bfs.distances c 0 in
      let ok = ref true in
      Graph.iter_edges g (fun u v ->
          if dist.(u) >= 0 && dist.(v) >= 0 && abs (dist.(u) - dist.(v)) > 1 then ok := false);
      !ok)

let prop_random_regular_is_regular =
  QCheck.Test.make ~name:"random_regular degrees exact" ~count:40
    QCheck.(pair small_int (pair (int_range 4 40) (int_range 1 6)))
    (fun (seed, (n, d)) ->
      let d = min d (n - 1) in
      let n = if n * d mod 2 = 1 then n + 1 else n in
      let rng = Prng.create seed in
      let g = Generators.random_regular rng n d in
      Graph.is_regular g && Graph.max_degree g = d)

let prop_snapshot_matches_fresh =
  (* satellite invariant for the version cache: after an arbitrary interleaving
     of mutations and snapshots, [Csr.snapshot] is bit-identical to a fresh
     [Csr.of_graph] build that bypasses the cache *)
  QCheck.Test.make ~name:"snapshot = fresh of_graph under interleaved mutation" ~count:100
    QCheck.(
      pair small_int (small_list (triple (int_range 0 3) (int_range 0 19) (int_range 0 19))))
    (fun (seed, ops) ->
      let g = random_graph seed 20 0.2 in
      ignore (Csr.snapshot g);
      List.iter
        (fun (op, u, v) ->
          (match op with
          | 0 -> ignore (Graph.add_edge g u v)
          | 1 -> ignore (Graph.remove_edge g u v)
          | 2 -> ignore (Graph.isolate g u)
          (* interleave reads so stale caches would be observed mid-sequence *)
          | _ -> ignore (Csr.snapshot g)))
        ops;
      let snap = Csr.snapshot g in
      let fresh = Csr.of_graph g in
      snap.Csr.n = fresh.Csr.n
      && snap.Csr.xadj = fresh.Csr.xadj
      && snap.Csr.adjncy = fresh.Csr.adjncy)

let prop_components_partition =
  QCheck.Test.make ~name:"component labels consistent with edges" ~count:80 graph_param
    (fun (seed, n, p100) ->
      let g = random_graph seed n (float_of_int p100 /. 100.0) in
      let labels = Connectivity.components g in
      let ok = ref true in
      Graph.iter_edges g (fun u v -> if labels.(u) <> labels.(v) then ok := false);
      !ok)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "add/remove" `Quick test_graph_add_remove;
          Alcotest.test_case "out of range" `Quick test_graph_out_of_range;
          Alcotest.test_case "degree/neighbors" `Quick test_graph_degree_neighbors;
          Alcotest.test_case "edges normalized" `Quick test_graph_edges_normalized;
          Alcotest.test_case "copy independent" `Quick test_graph_copy_independent;
          Alcotest.test_case "is_subgraph" `Quick test_is_subgraph;
          Alcotest.test_case "common_neighbors" `Quick test_common_neighbors;
        ] );
      ( "csr",
        [
          Alcotest.test_case "matches graph" `Quick test_csr_matches_graph;
          Alcotest.test_case "snapshot cached" `Quick test_snapshot_cached;
          Alcotest.test_case "snapshot copy independent" `Quick test_snapshot_copy_independent;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "vs floyd-warshall" `Quick test_bfs_vs_floyd_warshall;
          Alcotest.test_case "bounded" `Quick test_bfs_bounded;
          Alcotest.test_case "disconnected" `Quick test_bfs_distance_disconnected;
          Alcotest.test_case "shortest path valid" `Quick test_shortest_path_valid;
          Alcotest.test_case "random shortest path" `Quick test_random_shortest_path;
          Alcotest.test_case "random path spreads" `Quick test_random_shortest_path_spreads;
          Alcotest.test_case "eccentricity/diameter" `Quick test_eccentricity_diameter;
        ] );
      ( "connectivity",
        [
          Alcotest.test_case "union-find" `Quick test_union_find;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "repair" `Quick test_repair;
          Alcotest.test_case "repair bounded by g" `Quick test_repair_cannot_exceed_g;
        ] );
      ( "generators",
        [
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "complete bipartite" `Quick test_complete_bipartite;
          Alcotest.test_case "cycle/path/star" `Quick test_cycle_path_star;
          Alcotest.test_case "grid/torus" `Quick test_grid_torus;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "circulant" `Quick test_circulant;
          Alcotest.test_case "erdos-renyi extremes" `Quick test_erdos_renyi_extremes;
          Alcotest.test_case "random regular degrees" `Quick test_random_regular_degrees;
          Alcotest.test_case "random regular rejects" `Quick test_random_regular_rejects;
          Alcotest.test_case "random regular expander" `Quick test_random_regular_connected_expander;
          Alcotest.test_case "margulis" `Quick test_margulis;
          Alcotest.test_case "two cliques + matching" `Quick test_two_cliques_matching;
          Alcotest.test_case "ring of cliques" `Quick test_ring_of_cliques;
        ] );
      ( "spectral",
        [
          Alcotest.test_case "complete graph" `Quick test_spectral_complete;
          Alcotest.test_case "cycle" `Quick test_spectral_cycle;
          Alcotest.test_case "hypercube" `Quick test_spectral_hypercube;
          Alcotest.test_case "complete bipartite" `Quick test_spectral_complete_bipartite;
          Alcotest.test_case "trivial graph" `Quick test_expansion_ratio_star;
        ] );
      ("bitmat", [ Alcotest.test_case "matches brute force" `Quick test_bitmat_matches_common_neighbors ]);
      ( "properties",
        q
          [
            prop_csr_roundtrip;
            prop_snapshot_matches_fresh;
            prop_bfs_triangle_inequality;
            prop_random_regular_is_regular;
            prop_components_partition;
          ] );
    ]
