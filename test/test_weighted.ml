(* Weighted-stack tests: weights threaded through CSR, the delta-log Graph,
   the Dijkstra / bounded Bellman–Ford kernels, Graph_io, Stretch dispatch
   and the weighted Baswana–Sen construction.  Two oracles anchor all of it:
   on unit weights every weighted routine must coincide with its BFS-based
   counterpart bit for bit, and on small weighted graphs everything is
   checked against a Floyd–Warshall reference. *)

let check = Alcotest.check

(* ---- helpers ---- *)

let random_weighted_graph seed n p ~w_max =
  let rng = Prng.create seed in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.bool rng p then
        ignore (Graph.add_edge ~weight:(1 + Prng.int rng w_max) g u v)
    done
  done;
  g

let random_subgraph seed keep g =
  let rng = Prng.create seed in
  let h = Graph.create (Graph.n g) in
  Graph.iter_edges_w g (fun u v w ->
      if Prng.bool rng keep then ignore (Graph.add_edge ~weight:w h u v));
  h

(* Floyd–Warshall reference: d.(u).(v) = weighted distance, [inf] if none *)
let fw_inf = max_int / 4

let floyd_warshall g =
  let n = Graph.n g in
  let d = Array.make_matrix n n fw_inf in
  for v = 0 to n - 1 do
    d.(v).(v) <- 0
  done;
  Graph.iter_edges_w g (fun u v w ->
      if w < d.(u).(v) then begin
        d.(u).(v) <- w;
        d.(v).(u) <- w
      end);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if d.(i).(k) + d.(k).(j) < d.(i).(j) then d.(i).(j) <- d.(i).(k) + d.(k).(j)
      done
    done
  done;
  d

let fw_row d s = Array.map (fun x -> if x >= fw_inf then -1 else x) d.(s)

(* ---- CSR weights ---- *)

let test_csr_weighted_stream () =
  let c =
    Csr.of_weighted_stream ~n:3 (fun emit ->
        emit 0 1 5;
        emit 1 0 2;
        (* duplicate arc: min weight must win on both directions *)
        emit 1 2 7)
  in
  check Alcotest.bool "weighted" true (Csr.is_weighted c);
  check Alcotest.int "dedup keeps min (0,1)" 2 (Csr.edge_weight c 0 1);
  check Alcotest.int "dedup keeps min (1,0)" 2 (Csr.edge_weight c 1 0);
  check Alcotest.int "plain weight" 7 (Csr.edge_weight c 2 1);
  check Alcotest.bool "bad weight rejected" true
    (try
       ignore (Csr.of_weighted_stream ~n:2 (fun emit -> emit 0 1 0));
       false
     with Invalid_argument _ -> true)

let test_csr_unweighted_reports_one () =
  let c = Csr.of_stream ~n:3 (fun emit -> emit 0 1; emit 1 2) in
  check Alcotest.bool "unweighted" false (Csr.is_weighted c);
  check Alcotest.int "unit weight" 1 (Csr.edge_weight c 0 1)

(* ---- Graph delta log ---- *)

let test_graph_weight_roundtrip () =
  let g = Graph.of_weighted_edges 4 [ (0, 1, 3); (1, 2, 5); (2, 3, 1) ] in
  check Alcotest.bool "weighted flag" true (Graph.is_weighted g);
  check Alcotest.int "edge_weight" 5 (Graph.edge_weight g 1 2);
  let c = Csr.snapshot g in
  check Alcotest.int "snapshot carries weights" 5 (Csr.edge_weight c 1 2);
  (* delta on top of a weighted base *)
  ignore (Graph.add_edge ~weight:9 g 0 3);
  check Alcotest.int "delta edge weight" 9 (Graph.edge_weight g 0 3);
  check Alcotest.int "snapshot after delta" 9 (Csr.edge_weight (Csr.snapshot g) 0 3);
  (* resurrect-reweight: delete a base edge, re-add it with a new weight *)
  ignore (Graph.remove_edge g 1 2);
  check Alcotest.bool "deleted" false (Graph.mem_edge g 1 2);
  ignore (Graph.add_edge ~weight:2 g 1 2);
  check Alcotest.int "reweighted after resurrect" 2 (Graph.edge_weight g 1 2);
  check Alcotest.int "snapshot sees reweight" 2 (Csr.edge_weight (Csr.snapshot g) 1 2);
  (* re-add with the original weight must restore the plain base edge *)
  ignore (Graph.remove_edge g 2 3);
  ignore (Graph.add_edge ~weight:1 g 2 3);
  check Alcotest.int "resurrect at base weight" 1 (Graph.edge_weight g 2 3);
  check Alcotest.bool "invalid weight rejected" true
    (try ignore (Graph.add_edge ~weight:0 g 0 2); false with Invalid_argument _ -> true)

let test_unit_weights_stay_unweighted () =
  let g = Graph.create 3 in
  ignore (Graph.add_edge ~weight:1 g 0 1);
  ignore (Graph.add_edge g 1 2);
  check Alcotest.bool "all-1 graph is unweighted" false (Graph.is_weighted g);
  check Alcotest.bool "snapshot unweighted" false (Csr.is_weighted (Csr.snapshot g))

let prop_copy_and_survivor_preserve_weights =
  QCheck.Test.make ~name:"copy/survivor/to_csr preserve weights" ~count:40
    QCheck.(pair small_int (int_range 2 30))
    (fun (seed, n) ->
      let g = random_weighted_graph seed n 0.3 ~w_max:7 in
      let ok_copy =
        let g' = Graph.copy g in
        let ok = ref (Graph.m g' = Graph.m g) in
        Graph.iter_edges_w g (fun u v w -> if Graph.edge_weight g' u v <> w then ok := false);
        !ok
      in
      let ok_surv =
        let alive = Array.init n (fun v -> v mod 5 <> 0) in
        let s = Graph.survivor g ~alive in
        let ok = ref true in
        Graph.iter_edges_w s (fun u v w ->
            if (not alive.(u)) || (not alive.(v)) || Graph.edge_weight g u v <> w then ok := false);
        !ok
      in
      let ok_csr =
        let c = Csr.snapshot g in
        let ok = ref true in
        Graph.iter_edges_w g (fun u v w -> if Csr.edge_weight c u v <> w then ok := false);
        !ok
      in
      ok_copy && ok_surv && ok_csr)

(* ---- Dijkstra vs BFS on unit weights, vs Floyd–Warshall on weights ---- *)

let unit_families =
  [|
    (fun seed -> Generators.expander (Prng.create seed) 40 4);
    (fun seed -> Generators.erdos_renyi (Prng.create seed) 30 0.12);
    (fun _ -> Generators.torus 5 6);
    (fun _ -> Generators.margulis 5);
    (fun _ -> Generators.ring_of_cliques 4 5);
    (fun seed -> Generators.preferential_attachment (Prng.create seed) ~n:30 ~m:3);
  |]

let prop_dijkstra_eq_bfs_on_unit_weights =
  QCheck.Test.make ~name:"dijkstra = bfs on every unit-weight family" ~count:60
    QCheck.(pair small_int (int_range 0 1000))
    (fun (seed, pick) ->
      let g = unit_families.(pick mod Array.length unit_families) seed in
      let c = Csr.snapshot g in
      let n = Csr.n c in
      let s = seed mod n in
      Dijkstra.distances c s = Bfs.distances c s
      && Dijkstra.distances_bounded c s ~bound:3 = Bfs.distances_bounded c s ~bound:3)

let prop_dijkstra_eq_floyd_warshall =
  QCheck.Test.make ~name:"dijkstra = floyd-warshall on weighted graphs" ~count:50
    QCheck.(triple small_int (int_range 2 25) (int_range 1 9))
    (fun (seed, n, w_max) ->
      let g = random_weighted_graph seed n 0.25 ~w_max in
      let c = Csr.snapshot g in
      let d = floyd_warshall g in
      let s = seed mod n in
      let row = fw_row d s in
      Dijkstra.distances c s = row
      && Array.for_all2
           (fun got want -> got = if want >= 0 && want <= 4 then want else -1)
           (Dijkstra.distances_bounded c s ~bound:4)
           row
      && Dijkstra.distance c s ((s + 1) mod n) = row.((s + 1) mod n))

let prop_bellman_ford_bounded =
  QCheck.Test.make ~name:"bounded bellman-ford: one-sided, exact at n-1 hops" ~count:50
    QCheck.(triple small_int (int_range 2 25) (int_range 1 9))
    (fun (seed, n, w_max) ->
      let g = random_weighted_graph seed n 0.25 ~w_max in
      let c = Csr.snapshot g in
      let s = seed mod n in
      let exact = Dijkstra.distances c s in
      (* hops >= n-1: exactly the true distances *)
      Dijkstra.bellman_ford_bounded c s ~hops:(n - 1) = exact
      && List.for_all
           (fun hops ->
             let bf = Dijkstra.bellman_ford_bounded c s ~hops in
             Array.for_all2
               (fun b e ->
                 (* never under-shoots; -1 marks not-yet-reached *)
                 if b < 0 then true else e >= 0 && b >= e)
               bf exact)
           [ 0; 1; 2; n / 2 ])

(* ---- weighted Baswana–Sen vs Floyd–Warshall ---- *)

let prop_weighted_bs_stretch =
  QCheck.Test.make ~name:"weighted baswana-sen: subgraph + stretch <= 2k-1" ~count:40
    QCheck.(quad small_int (int_range 4 40) (int_range 1 9) (int_range 2 3))
    (fun (seed, n, w_max, k) ->
      let g = random_weighted_graph seed n 0.3 ~w_max in
      let h = Baswana_sen_weighted.build ~k (Prng.create (seed + 1)) g in
      let subgraph = ref true in
      Graph.iter_edges_w h (fun u v w ->
          if (not (Graph.mem_edge g u v)) || Graph.edge_weight g u v <> w then subgraph := false);
      let d = floyd_warshall h in
      let stretch_ok = ref true in
      Graph.iter_edges_w g (fun u v w ->
          if d.(u).(v) > ((2 * k) - 1) * w then stretch_ok := false);
      !subgraph && !stretch_ok)

(* ---- Stretch dispatch: weighted kernels agree with each other and FW ---- *)

let weighted_pair seed n ~w_max =
  let g = random_weighted_graph seed n 0.3 ~w_max in
  (* keep connectivity-ish pairs interesting: the spanner drops 30% *)
  let h = random_subgraph (seed + 7) 0.7 g in
  (g, h)

let ratio_ceil d w = (d + w - 1) / w

let stretch_reference g h =
  let d = floyd_warshall h in
  let worst = ref 1 in
  Graph.iter_edges_w g (fun u v w ->
      if not (Graph.mem_edge h u v) then
        if d.(u).(v) >= fw_inf then worst := max_int
        else if !worst <> max_int then worst := max !worst (ratio_ceil d.(u).(v) w));
  !worst

let prop_weighted_stretch_kernels_agree =
  QCheck.Test.make ~name:"weighted exact/parallel/reference/grouped = floyd-warshall" ~count:40
    QCheck.(triple small_int (int_range 2 25) (int_range 2 9))
    (fun (seed, n, w_max) ->
      let g, h = weighted_pair seed n ~w_max in
      let want = stretch_reference g h in
      Stretch.exact g h = want
      && Stretch.exact_parallel ~domains:2 g h = want
      && Stretch.exact_reference g h = want
      && Stretch.exact_grouped g h = want)

let prop_weighted_violations_and_cert =
  QCheck.Test.make ~name:"weighted violations / cert / incremental agree" ~count:30
    QCheck.(triple small_int (int_range 3 20) (int_range 2 9))
    (fun (seed, n, w_max) ->
      (* QCheck's int shrinker ignores int_range bounds; clamp defensively *)
      let n = max 3 n and w_max = max 2 w_max in
      let g, h = weighted_pair seed n ~w_max in
      let bound = 3 in
      let want = Stretch.violations g h ~bound in
      let d = floyd_warshall h in
      let fw_want = ref [] in
      Graph.iter_edges_w g (fun u v w ->
          if (not (Graph.mem_edge h u v)) && d.(u).(v) > bound * w then
            fw_want := (min u v, max u v) :: !fw_want);
      let same_set a b =
        List.sort compare (List.map (fun (u, v) -> (min u v, max u v)) a)
        = List.sort compare b
      in
      let cert = Stretch.cert_create g h ~bound in
      (* read the cert BEFORE the mutation below refreshes it in place *)
      let cert_ok =
        List.sort compare (Stretch.cert_violations cert) = List.sort compare want
      in
      let inc_ok =
        (* mutate, then the incremental refresh must match a fresh sweep *)
        let u = seed mod n and v = (seed + 1) mod n in
        let touched = [| u; v |] in
        if u <> v then ignore (Graph.add_edge ~weight:2 g u v);
        let r = Stretch.violations_incremental cert g h ~touched in
        r.Stretch.inc_violations = Stretch.violations g h ~bound
      in
      same_set want !fw_want && cert_ok && inc_ok)

let prop_sampled_pairs_weighted_sound =
  QCheck.Test.make ~name:"sampled_pairs uses weighted distances" ~count:30
    QCheck.(triple small_int (int_range 3 20) (int_range 2 9))
    (fun (seed, n, w_max) ->
      let g, h = weighted_pair seed n ~w_max in
      Stretch.sampled_pairs (Prng.create seed) g h ~samples:20 >= 1.0)

(* ---- Graph_io weighted format ---- *)

let with_temp_file contents f =
  let path = Filename.temp_file "dcs_weighted_test" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let test_graph_io_weighted_roundtrip () =
  let g = Graph.of_weighted_edges 4 [ (0, 1, 3); (1, 2, 5); (0, 3, 1) ] in
  let path = Filename.temp_file "dcs_weighted_io" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.write g path;
      let g' = Graph_io.read path in
      check Alcotest.bool "read back weighted" true (Graph.is_weighted g');
      check Alcotest.int "m" (Graph.m g) (Graph.m g');
      Graph.iter_edges_w g (fun u v w ->
          check Alcotest.int (Printf.sprintf "weight %d-%d" u v) w (Graph.edge_weight g' u v)))

let test_graph_io_mixed_lines () =
  (* 2-field lines read as weight 1 next to 3-field lines *)
  with_temp_file "n 3 2\n0 1\n1 2 4\n" (fun path ->
      let g = Graph_io.read path in
      check Alcotest.bool "weighted" true (Graph.is_weighted g);
      check Alcotest.int "default weight" 1 (Graph.edge_weight g 0 1);
      check Alcotest.int "explicit weight" 4 (Graph.edge_weight g 1 2))

let test_graph_io_rejects_bad_weights () =
  List.iter
    (fun contents ->
      with_temp_file contents (fun path ->
          check Alcotest.bool (Printf.sprintf "%S rejected" contents) true
            (try
               ignore (Graph_io.read path);
               false
             with Io_error.Parse_error { line; _ } -> line = 2)))
    [ "n 3 1\n0 1 0\n"; "n 3 1\n0 1 -4\n"; "n 3 1\n0 1 x\n" ]

let test_unweighted_write_has_no_third_field () =
  let g = Generators.cycle 4 in
  let path = Filename.temp_file "dcs_unweighted_io" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graph_io.write g path;
      let ic = open_in path in
      let header = input_line ic in
      let first_edge = input_line ic in
      close_in ic;
      check Alcotest.string "header" "n 4 4" header;
      check Alcotest.int "two fields"
        2
        (List.length (String.split_on_char ' ' first_edge)))

(* ---- weighted generators ---- *)

let prop_weighted_generators_in_range =
  QCheck.Test.make ~name:"weighted generators: weights in [1, w_max], same shape" ~count:30
    QCheck.(pair small_int (int_range 1 9))
    (fun (seed, w_max) ->
      let in_range g =
        let ok = ref (Graph.m g > 0) in
        Graph.iter_edges_w g (fun _ _ w -> if w < 1 || w > w_max then ok := false);
        !ok
      in
      let torus_ok =
        let g = Generators.weighted_torus (Prng.create seed) 5 6 ~w_max in
        in_range g && Graph.m g = Graph.m (Generators.torus 5 6)
      in
      let exp_ok =
        let g = Generators.weighted_expander (Prng.create seed) 40 6 ~w_max in
        in_range g
      in
      let rand_ok =
        let base = Generators.erdos_renyi (Prng.create seed) 20 0.4 in
        let g = Generators.randomize_weights (Prng.create (seed + 1)) base ~w_max in
        in_range g && Graph.m g = Graph.m base
        && (let same = ref true in
            Graph.iter_edges base (fun u v -> if not (Graph.mem_edge g u v) then same := false);
            !same)
      in
      torus_ok && exp_ok && rand_ok)

(* ---- end-to-end: registry entry certifies on a weighted graph ---- *)

let test_bsw_registry_end_to_end () =
  let g = Generators.weighted_expander (Prng.create 11) 120 40 ~w_max:6 in
  let ctor = Construction.find_exn "bsw" in
  let dc = Construction.build ctor (Prng.create 12) g in
  let stretch = Stretch.exact g dc.Dc.spanner in
  check Alcotest.bool "sparsified or equal" true (Graph.m dc.Dc.spanner <= Graph.m g);
  check Alcotest.bool "certified <= 3" true (stretch <> max_int && stretch <= 3)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "weighted"
    [
      ( "csr",
        [
          Alcotest.test_case "weighted stream + min dedup" `Quick test_csr_weighted_stream;
          Alcotest.test_case "unweighted reports weight 1" `Quick test_csr_unweighted_reports_one;
        ] );
      ( "graph",
        [
          Alcotest.test_case "delta log round-trip + resurrect" `Quick test_graph_weight_roundtrip;
          Alcotest.test_case "all-1 weights stay unweighted" `Quick
            test_unit_weights_stay_unweighted;
          qt prop_copy_and_survivor_preserve_weights;
        ] );
      ( "kernels",
        [
          qt prop_dijkstra_eq_bfs_on_unit_weights;
          qt prop_dijkstra_eq_floyd_warshall;
          qt prop_bellman_ford_bounded;
        ] );
      ("baswana-sen", [ qt prop_weighted_bs_stretch ]);
      ( "stretch",
        [
          qt prop_weighted_stretch_kernels_agree;
          qt prop_weighted_violations_and_cert;
          qt prop_sampled_pairs_weighted_sound;
        ] );
      ( "io",
        [
          Alcotest.test_case "weighted round-trip" `Quick test_graph_io_weighted_roundtrip;
          Alcotest.test_case "mixed 2/3-field lines" `Quick test_graph_io_mixed_lines;
          Alcotest.test_case "bad weights rejected" `Quick test_graph_io_rejects_bad_weights;
          Alcotest.test_case "unweighted files unchanged" `Quick
            test_unweighted_write_has_no_third_field;
        ] );
      ("generators", [ qt prop_weighted_generators_in_range ]);
      ( "end-to-end",
        [ Alcotest.test_case "bsw registry certifies" `Quick test_bsw_registry_end_to_end ] );
    ]
