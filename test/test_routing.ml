(* Tests for dcs_routing: congestion semantics, matchings, Hopcroft–Karp vs
   brute force, Misra–Gries edge coloring, shortest-path routing, and the
   Algorithm 2 decomposition. *)

let check = Alcotest.check

let random_graph seed n p =
  let rng = Prng.create seed in
  Generators.erdos_renyi rng n p

(* ---- Routing basics ---- *)

let test_congestion_counts_paths_once () =
  (* A path that revisits a node still counts once at that node. *)
  let routing = [| [| 0; 1; 2; 1; 3 |]; [| 1; 4 |] |] in
  let loads = Routing.node_loads ~n:5 routing in
  check Alcotest.int "node 1 load" 2 loads.(1);
  check Alcotest.int "node 0 load" 1 loads.(0);
  check Alcotest.int "congestion" 2 (Routing.congestion ~n:5 routing)

let test_congestion_empty () =
  check Alcotest.int "empty" 0 (Routing.congestion ~n:3 [||])

let test_congestion_hand_example () =
  (* Three paths crossing at node 2. *)
  let routing = [| [| 0; 2; 1 |]; [| 3; 2; 4 |]; [| 5; 2; 6 |] |] in
  check Alcotest.int "star crossing" 3 (Routing.congestion ~n:7 routing)

let test_edge_congestion () =
  let routing = [| [| 0; 1; 2 |]; [| 3; 1; 2 |]; [| 0; 1 |] |] in
  check Alcotest.int "edge (1,2) shared" 2 (Routing.edge_congestion ~n:4 routing)

let test_path_length () =
  check Alcotest.int "singleton" 0 (Routing.length [| 3 |]);
  check Alcotest.int "len" 3 (Routing.length [| 0; 1; 2; 3 |])

let test_validity () =
  let g = Generators.cycle 5 in
  let problem = [| { Routing.src = 0; dst = 2 } |] in
  check Alcotest.bool "valid" true (Routing.is_valid g problem [| [| 0; 1; 2 |] |]);
  check Alcotest.bool "wrong endpoint" false (Routing.is_valid g problem [| [| 0; 1 |] |]);
  check Alcotest.bool "non-edge hop" false (Routing.is_valid g problem [| [| 0; 2 |] |]);
  check Alcotest.bool "size mismatch" false (Routing.is_valid g problem [||])

let test_max_stretch () =
  let original = [| [| 0; 1 |]; [| 2; 3 |] |] in
  let substitute = [| [| 0; 9; 1 |]; [| 2; 8; 7; 3 |] |] in
  check (Alcotest.float 1e-9) "stretch" 3.0 (Routing.max_stretch substitute ~against:original)

let test_problem_of_edges () =
  let p = Routing.problem_of_edges [| (1, 2); (3, 4) |] in
  check Alcotest.int "size" 2 (Array.length p);
  check Alcotest.int "src" 1 p.(0).Routing.src;
  check Alcotest.int "dst" 2 p.(0).Routing.dst

(* ---- Matchings ---- *)

let test_is_matching () =
  check Alcotest.bool "ok" true (Matching.is_matching [| (0, 1); (2, 3) |]);
  check Alcotest.bool "shared node" false (Matching.is_matching [| (0, 1); (1, 2) |]);
  check Alcotest.bool "self-loop" false (Matching.is_matching [| (0, 0) |]);
  check Alcotest.bool "empty" true (Matching.is_matching [||])

let test_greedy_maximal () =
  let g = Generators.path 6 in
  let m = Matching.greedy_maximal g in
  check Alcotest.bool "is matching" true (Matching.is_matching m);
  (* maximal: no remaining edge has both endpoints free *)
  let used = Hashtbl.create 12 in
  Array.iter
    (fun (u, v) ->
      Hashtbl.replace used u ();
      Hashtbl.replace used v ())
    m;
  Graph.iter_edges g (fun u v ->
      check Alcotest.bool "maximal" true (Hashtbl.mem used u || Hashtbl.mem used v))

let test_random_maximal_property () =
  let rng = Prng.create 4 in
  for seed = 1 to 10 do
    let g = random_graph seed 30 0.2 in
    let m = Matching.random_maximal rng g in
    check Alcotest.bool "is matching" true (Matching.is_matching m);
    Array.iter (fun (u, v) -> check Alcotest.bool "uses edges" true (Graph.mem_edge g u v)) m
  done

let test_random_node_matching () =
  let rng = Prng.create 5 in
  let m = Matching.random_node_matching rng 20 ~k:8 in
  check Alcotest.int "size" 8 (Array.length m);
  check Alcotest.bool "is matching" true (Matching.is_matching m);
  Alcotest.check_raises "too large" (Invalid_argument "Matching.random_node_matching: 2k > n")
    (fun () -> ignore (Matching.random_node_matching rng 5 ~k:3))

(* ---- Hopcroft–Karp vs brute force ---- *)

(* Exponential-time exact maximum matching on a bipartite adjacency. *)
let brute_force_max_matching ~l ~r ~adj =
  let best = ref 0 in
  let used_r = Array.make r false in
  let rec go i count =
    best := max !best count;
    if i < l then begin
      go (i + 1) count;
      for j = 0 to r - 1 do
        if (not used_r.(j)) && adj i j then begin
          used_r.(j) <- true;
          go (i + 1) (count + 1);
          used_r.(j) <- false
        end
      done
    end
  in
  go 0 0;
  !best

let test_hopcroft_karp_vs_brute () =
  let rng = Prng.create 17 in
  for _ = 1 to 40 do
    let l = 1 + Prng.int rng 7 and r = 1 + Prng.int rng 7 in
    let adj_m = Array.init l (fun _ -> Array.init r (fun _ -> Prng.bool rng 0.4)) in
    let left = Array.init l (fun i -> i) in
    let right = Array.init r (fun j -> 100 + j) in
    let matched =
      Bipartite_matching.maximum ~left ~right ~adj:(fun a b -> adj_m.(a).(b - 100))
    in
    (* validity: pairs are edges, no endpoint reused *)
    let seen = Hashtbl.create 8 in
    Array.iter
      (fun (a, b) ->
        check Alcotest.bool "edge" true adj_m.(a).(b - 100);
        check Alcotest.bool "left unused" false (Hashtbl.mem seen a);
        check Alcotest.bool "right unused" false (Hashtbl.mem seen b);
        Hashtbl.add seen a ();
        Hashtbl.add seen b ())
      matched;
    let expected = brute_force_max_matching ~l ~r ~adj:(fun i j -> adj_m.(i).(j)) in
    check Alcotest.int "maximum size" expected (Array.length matched)
  done

let test_hopcroft_karp_perfect () =
  let left = Array.init 10 (fun i -> i) in
  let right = Array.init 10 (fun i -> 10 + i) in
  let m = Bipartite_matching.maximum ~left ~right ~adj:(fun _ _ -> true) in
  check Alcotest.int "perfect on complete" 10 (Array.length m)

let test_hopcroft_karp_empty () =
  let m = Bipartite_matching.maximum ~left:[| 0 |] ~right:[| 1 |] ~adj:(fun _ _ -> false) in
  check Alcotest.int "no edges" 0 (Array.length m)

let test_neighborhood_matching_lemma4 () =
  (* On a strong expander the matching between two neighborhoods should be
     nearly perfect: |commons| + |matched| >= Delta (1 - lambda n / Delta^2). *)
  let rng = Prng.create 23 in
  let n = 120 and d = 40 in
  let g = Generators.random_regular rng n d in
  let lam = Spectral.lambda (Csr.snapshot g) in
  let bound =
    float_of_int d *. (1.0 -. (lam *. float_of_int n /. float_of_int (d * d)))
  in
  for _ = 1 to 10 do
    let u = Prng.int rng n in
    let v = Prng.int rng n in
    if u <> v then begin
      let commons, matched = Bipartite_matching.neighborhood_matching g u v in
      let size = List.length commons + Array.length matched in
      check Alcotest.bool
        (Printf.sprintf "lemma4 bound (got %d >= %.1f)" size bound)
        true
        (float_of_int size >= bound -. 1e-9);
      (* matched pairs must be disjoint G-edges between exclusive neighborhoods *)
      Array.iter
        (fun (x, y) ->
          check Alcotest.bool "matching edge in G" true (Graph.mem_edge g x y);
          check Alcotest.bool "x in N(u)" true (Graph.mem_edge g u x);
          check Alcotest.bool "y in N(v)" true (Graph.mem_edge g v y))
        matched
    end
  done

(* ---- Edge coloring ---- *)

let test_misra_gries_small () =
  let g = Generators.cycle 5 in
  let c = Edge_coloring.misra_gries g in
  check Alcotest.bool "proper" true (Edge_coloring.is_proper g c);
  check Alcotest.bool "at most D+1 colors" true (c.Edge_coloring.num <= 3)

let test_misra_gries_random () =
  for seed = 1 to 25 do
    let g = random_graph seed (10 + (seed * 3)) 0.25 in
    let c = Edge_coloring.misra_gries g in
    check Alcotest.bool (Printf.sprintf "proper seed=%d" seed) true (Edge_coloring.is_proper g c);
    check Alcotest.bool
      (Printf.sprintf "Vizing bound seed=%d (%d colors, D=%d)" seed c.Edge_coloring.num
         (Graph.max_degree g))
      true
      (c.Edge_coloring.num <= Graph.max_degree g + 1)
  done

let test_misra_gries_structured () =
  List.iter
    (fun g ->
      let c = Edge_coloring.misra_gries g in
      check Alcotest.bool "proper" true (Edge_coloring.is_proper g c);
      check Alcotest.bool "Vizing bound" true (c.Edge_coloring.num <= Graph.max_degree g + 1))
    [
      Generators.complete 8;
      Generators.complete_bipartite 5 7;
      Generators.star 20;
      Generators.hypercube 4;
      Generators.torus 4 4;
      Graph.create 3;
    ]

let test_color_classes_are_matchings () =
  for seed = 1 to 10 do
    let g = random_graph (100 + seed) 25 0.3 in
    let c = Edge_coloring.misra_gries g in
    let classes = Edge_coloring.color_classes c in
    let total = Array.fold_left (fun acc cls -> acc + Array.length cls) 0 classes in
    check Alcotest.int "classes cover all edges" (Graph.m g) total;
    Array.iter
      (fun cls -> check Alcotest.bool "class is matching" true (Matching.is_matching cls))
      classes
  done

let test_greedy_coloring () =
  for seed = 1 to 10 do
    let g = random_graph (200 + seed) 20 0.3 in
    let c = Edge_coloring.greedy g in
    check Alcotest.bool "proper" true (Edge_coloring.is_proper g c);
    check Alcotest.bool "2D-1 bound" true (c.Edge_coloring.num <= max 1 ((2 * Graph.max_degree g) - 1))
  done

(* ---- Problems & shortest-path routing ---- *)

let test_problem_generators () =
  let rng = Prng.create 3 in
  let g = Generators.torus 5 5 in
  let em = Problems.edge_matching rng g in
  check Alcotest.bool "edge matching pairs adjacent" true
    (Array.for_all (fun { Routing.src; dst } -> Graph.mem_edge g src dst) em);
  let perm = Problems.permutation rng g in
  check Alcotest.bool "permutation: no fixed points" true
    (Array.for_all (fun { Routing.src; dst } -> src <> dst) perm);
  (* each node at most once as source, once as destination *)
  let srcs = Hashtbl.create 32 and dsts = Hashtbl.create 32 in
  Array.iter
    (fun { Routing.src; dst } ->
      check Alcotest.bool "src once" false (Hashtbl.mem srcs src);
      check Alcotest.bool "dst once" false (Hashtbl.mem dsts dst);
      Hashtbl.add srcs src ();
      Hashtbl.add dsts dst ())
    perm;
  let ae = Problems.all_edges g in
  check Alcotest.int "all edges size" (Graph.m g) (Array.length ae);
  let rp = Problems.random_pairs rng g ~k:40 in
  check Alcotest.int "random pairs size" 40 (Array.length rp);
  check Alcotest.bool "no self pairs" true
    (Array.for_all (fun { Routing.src; dst } -> src <> dst) rp)

let test_sp_routing () =
  let rng = Prng.create 6 in
  let g = Generators.torus 6 6 in
  let c = Csr.snapshot g in
  let problem = Problems.random_pairs rng g ~k:30 in
  let det = Sp_routing.route c problem in
  check Alcotest.bool "valid routing" true (Routing.is_valid g problem det);
  let ran = Sp_routing.route_random c rng problem in
  check Alcotest.bool "valid random routing" true (Routing.is_valid g problem ran);
  Array.iteri
    (fun i p ->
      check Alcotest.int "optimal length" (Routing.length det.(i)) (Routing.length p))
    ran;
  let cong = Sp_routing.congestion_of_problem c rng problem in
  check Alcotest.bool "congestion at least 1" true (cong >= 1)

let test_sp_routing_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let c = Csr.snapshot g in
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Sp_routing: request endpoints are disconnected") (fun () ->
      ignore (Sp_routing.route c [| { Routing.src = 0; dst = 3 } |]))

(* ---- Algorithm 2 decomposition ---- *)

let multiset_of_path_edges routing =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun p ->
      for i = 0 to Array.length p - 2 do
        let e = if p.(i) < p.(i + 1) then (p.(i), p.(i + 1)) else (p.(i + 1), p.(i)) in
        let c = try Hashtbl.find tbl e with Not_found -> 0 in
        Hashtbl.replace tbl e (c + 1)
      done)
    routing;
  tbl

let test_level_matchings_cover () =
  let rng = Prng.create 8 in
  let g = Generators.torus 6 6 in
  let c = Csr.snapshot g in
  let problem = Problems.random_pairs rng g ~k:40 in
  let routing = Sp_routing.route_random c rng problem in
  let matchings = Decompose.level_matchings ~n:36 routing in
  Array.iter
    (fun m -> check Alcotest.bool "each class is a matching" true (Matching.is_matching m))
    matchings;
  (* The multiset union of all matchings equals the multiset of path edges
     (up to per-path dedup of repeated edges, which simple paths don't have). *)
  let expected = multiset_of_path_edges routing in
  let got = Hashtbl.create 64 in
  Array.iter
    (fun m ->
      Array.iter
        (fun (u, v) ->
          let e = if u < v then (u, v) else (v, u) in
          let c = try Hashtbl.find got e with Not_found -> 0 in
          Hashtbl.replace got e (c + 1))
        m)
    matchings;
  Hashtbl.iter
    (fun e c ->
      let c' = try Hashtbl.find got e with Not_found -> 0 in
      check Alcotest.int "edge multiplicity preserved" c c')
    expected

let identity_router pairs = Array.map (fun (u, v) -> [| u; v |]) pairs

let test_decompose_identity_router () =
  (* Routing each matching by its own edges must reproduce the original
     routing exactly. *)
  let rng = Prng.create 9 in
  let g = Generators.torus 6 6 in
  let c = Csr.snapshot g in
  let problem = Problems.random_pairs rng g ~k:50 in
  let routing = Sp_routing.route_random c rng problem in
  let { Decompose.substitute; stats } = Decompose.run ~n:36 ~router:identity_router routing in
  Array.iteri
    (fun i p -> check Alcotest.(array int) "path unchanged" routing.(i) p)
    substitute;
  check Alcotest.bool "levels >= 1" true (stats.Decompose.levels >= 1)

let test_decompose_lemma21_bound () =
  (* sum (d_k + 1) <= 12 C(P) log2 n *)
  let rng = Prng.create 10 in
  List.iter
    (fun (n_side, k) ->
      let g = Generators.torus n_side n_side in
      let n = n_side * n_side in
      let c = Csr.snapshot g in
      let problem = Problems.random_pairs rng g ~k in
      let routing = Sp_routing.route_random c rng problem in
      let cong = Routing.congestion ~n routing in
      let { Decompose.stats; _ } = Decompose.run ~n ~router:identity_router routing in
      let bound = 12.0 *. float_of_int cong *. Stats.log2 (float_of_int n) in
      check Alcotest.bool
        (Printf.sprintf "lemma21: %d <= %.1f" stats.Decompose.degree_sum bound)
        true
        (float_of_int stats.Decompose.degree_sum <= bound))
    [ (5, 30); (6, 80); (7, 150) ]

let test_decompose_lemma23_matchings_bound () =
  let rng = Prng.create 11 in
  let g = Generators.torus 6 6 in
  let n = 36 in
  let c = Csr.snapshot g in
  let problem = Problems.random_pairs rng g ~k:100 in
  let routing = Sp_routing.route_random c rng problem in
  let { Decompose.stats; _ } = Decompose.run ~n ~router:identity_router routing in
  check Alcotest.bool "matchings O(n^3)" true (stats.Decompose.matchings <= n * n * (n + 1))

let test_decompose_with_detour_router () =
  (* Route matchings in a spanner with BFS paths; substitute must be valid in
     the spanner and solve the same problem. *)
  let rng = Prng.create 12 in
  let g = Generators.torus 6 6 in
  let n = 36 in
  let gc = Csr.snapshot g in
  (* spanner: remove a few edges whose endpoints stay close *)
  let h = Graph.copy g in
  ignore (Graph.remove_edge h 0 1);
  ignore (Graph.remove_edge h 7 8);
  let hc = Csr.snapshot h in
  let router pairs =
    Array.map
      (fun (u, v) ->
        match Bfs.random_shortest_path hc rng u v with
        | Some p -> p
        | None -> Alcotest.fail "spanner disconnected")
      pairs
  in
  let problem = Problems.random_pairs rng g ~k:60 in
  let routing = Sp_routing.route_random gc rng problem in
  let { Decompose.substitute; _ } = Decompose.run ~n ~router routing in
  check Alcotest.bool "substitute valid in spanner" true (Routing.is_valid h problem substitute)

let test_decompose_router_endpoint_check () =
  let routing = [| [| 0; 1 |] |] in
  let bad_router pairs = Array.map (fun (u, _) -> [| u; u |]) pairs in
  (try
     ignore (Decompose.run ~n:2 ~router:bad_router routing);
     Alcotest.fail "expected failure"
   with Invalid_argument msg ->
     check Alcotest.bool "endpoint mismatch detected" true
       (String.length msg > 0))

let test_decompose_empty_and_trivial () =
  let { Decompose.substitute; stats } = Decompose.run ~n:5 ~router:identity_router [||] in
  check Alcotest.int "empty" 0 (Array.length substitute);
  check Alcotest.int "no levels" 0 stats.Decompose.levels;
  (* single-node paths survive *)
  let { Decompose.substitute = s2; _ } =
    Decompose.run ~n:5 ~router:identity_router [| [| 3 |] |]
  in
  check Alcotest.(array int) "trivial path" [| 3 |] s2.(0)

(* ---- qcheck properties ---- *)

let prop_decompose_preserves_endpoints =
  QCheck.Test.make ~name:"decompose+identity preserves endpoints" ~count:50
    QCheck.(pair small_int (int_range 5 60))
    (fun (seed, k) ->
      let rng = Prng.create seed in
      let g = Generators.torus 5 5 in
      let c = Csr.snapshot g in
      let problem = Problems.random_pairs rng g ~k in
      let routing = Sp_routing.route_random c rng problem in
      let { Decompose.substitute; _ } = Decompose.run ~n:25 ~router:identity_router routing in
      Routing.is_valid g problem substitute)

let prop_coloring_proper =
  QCheck.Test.make ~name:"misra-gries proper on random graphs" ~count:60
    QCheck.(pair small_int (pair (int_range 2 30) (int_range 0 100)))
    (fun (seed, (n, p100)) ->
      let g = random_graph seed n (float_of_int p100 /. 100.0) in
      let c = Edge_coloring.misra_gries g in
      Edge_coloring.is_proper g c && c.Edge_coloring.num <= Graph.max_degree g + 1)

let prop_matching_router_congestion_1 =
  QCheck.Test.make ~name:"edge-matching routed by itself has congestion 1" ~count:50
    QCheck.(pair small_int (int_range 4 40))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = random_graph (seed + 1000) n 0.3 in
      if Graph.m g = 0 then true
      else begin
        let m = Matching.random_maximal rng g in
        let routing = identity_router m in
        Array.length m = 0 || Routing.congestion ~n routing = 1
      end)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "routing"
    [
      ( "routing",
        [
          Alcotest.test_case "congestion dedupe" `Quick test_congestion_counts_paths_once;
          Alcotest.test_case "congestion empty" `Quick test_congestion_empty;
          Alcotest.test_case "congestion crossing" `Quick test_congestion_hand_example;
          Alcotest.test_case "edge congestion" `Quick test_edge_congestion;
          Alcotest.test_case "path length" `Quick test_path_length;
          Alcotest.test_case "validity" `Quick test_validity;
          Alcotest.test_case "max stretch" `Quick test_max_stretch;
          Alcotest.test_case "problem of edges" `Quick test_problem_of_edges;
        ] );
      ( "matching",
        [
          Alcotest.test_case "is_matching" `Quick test_is_matching;
          Alcotest.test_case "greedy maximal" `Quick test_greedy_maximal;
          Alcotest.test_case "random maximal" `Quick test_random_maximal_property;
          Alcotest.test_case "random node matching" `Quick test_random_node_matching;
        ] );
      ( "hopcroft-karp",
        [
          Alcotest.test_case "vs brute force" `Quick test_hopcroft_karp_vs_brute;
          Alcotest.test_case "perfect on complete" `Quick test_hopcroft_karp_perfect;
          Alcotest.test_case "empty" `Quick test_hopcroft_karp_empty;
          Alcotest.test_case "lemma 4 neighborhood matching" `Quick test_neighborhood_matching_lemma4;
        ] );
      ( "edge-coloring",
        [
          Alcotest.test_case "cycle" `Quick test_misra_gries_small;
          Alcotest.test_case "random graphs" `Quick test_misra_gries_random;
          Alcotest.test_case "structured graphs" `Quick test_misra_gries_structured;
          Alcotest.test_case "classes are matchings" `Quick test_color_classes_are_matchings;
          Alcotest.test_case "greedy variant" `Quick test_greedy_coloring;
        ] );
      ( "sp-routing",
        [
          Alcotest.test_case "problem generators" `Quick test_problem_generators;
          Alcotest.test_case "routing validity" `Quick test_sp_routing;
          Alcotest.test_case "disconnected raises" `Quick test_sp_routing_disconnected;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "matchings cover path edges" `Quick test_level_matchings_cover;
          Alcotest.test_case "identity router" `Quick test_decompose_identity_router;
          Alcotest.test_case "lemma 21 bound" `Quick test_decompose_lemma21_bound;
          Alcotest.test_case "lemma 23 bound" `Quick test_decompose_lemma23_matchings_bound;
          Alcotest.test_case "spanner router" `Quick test_decompose_with_detour_router;
          Alcotest.test_case "router endpoint check" `Quick test_decompose_router_endpoint_check;
          Alcotest.test_case "empty/trivial" `Quick test_decompose_empty_and_trivial;
        ] );
      ( "properties",
        q
          [
            prop_decompose_preserves_endpoints;
            prop_coloring_proper;
            prop_matching_router_congestion_1;
          ] );
    ]
