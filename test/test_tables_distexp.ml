(* Tests for Route_tables (next-hop compilation) and Dist_expander (the
   distributed Theorem 2 spanner + router). *)

let check = Alcotest.check

(* ---- Route_tables ---- *)

let test_tables_shortest () =
  List.iter
    (fun g ->
      let c = Csr.snapshot g in
      let t = Route_tables.compile c in
      let n = Graph.n g in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          let d = Bfs.distance c src dst in
          match Route_tables.forward t ~src ~dst with
          | None -> check Alcotest.bool "unreachable iff disconnected" true (d < 0 && src <> dst)
          | Some p ->
              check Alcotest.int "forwarding follows a shortest path" (max d 0)
                (Routing.length p);
              check Alcotest.int "starts at src" src p.(0);
              check Alcotest.int "ends at dst" dst p.(Array.length p - 1)
        done
      done)
    [ Generators.torus 5 5; Generators.path 8; Generators.complete 7 ]

let test_tables_disconnected () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let t = Route_tables.compile (Csr.snapshot g) in
  check Alcotest.(option int) "cross-component" None (Route_tables.next_hop t ~src:0 ~dst:3);
  check Alcotest.(option (array int)) "no path" None (Route_tables.forward t ~src:0 ~dst:3);
  (* entries: only within components: 2 ordered pairs per component *)
  check Alcotest.int "entries" 4 (Route_tables.entries t)

let test_tables_counts () =
  let g = Generators.torus 6 6 in
  let t = Route_tables.compile (Csr.snapshot g) in
  check Alcotest.int "entries = n(n-1)" (36 * 35) (Route_tables.entries t);
  check Alcotest.int "ports = 2m" (2 * Graph.m g) (Route_tables.ports t)

let test_tables_spanner_state_reduction () =
  (* the motivating measurement: spanner tables keep the same reachability
     with strictly less port state *)
  let g = Generators.random_regular (Prng.create 1) 100 30 in
  let t = Regular_dc.build (Prng.create 2) g in
  let full = Route_tables.compile (Csr.snapshot g) in
  let sparse = Route_tables.compile (Csr.snapshot t.Regular_dc.spanner) in
  check Alcotest.int "same reachability" (Route_tables.entries full) (Route_tables.entries sparse);
  check Alcotest.bool "less port state" true (Route_tables.ports sparse < Route_tables.ports full)

let test_tables_self () =
  let g = Generators.cycle 4 in
  let t = Route_tables.compile (Csr.snapshot g) in
  check Alcotest.(option int) "no self hop" None (Route_tables.next_hop t ~src:2 ~dst:2);
  check Alcotest.(option (array int)) "self path" (Some [| 2 |]) (Route_tables.forward t ~src:2 ~dst:2)

(* ---- Dist_expander ---- *)

let expander seed n d =
  let d = if n * d mod 2 = 1 then d + 1 else d in
  Generators.random_regular (Prng.create seed) n d

let routings_equal a b =
  Array.length a = Array.length b && Array.for_all2 (fun x y -> x = y) a b

let test_dist_expander_matches_reference () =
  List.iter
    (fun (seed, n, d) ->
      let g = expander seed n d in
      let rng = Prng.create (seed + 40) in
      let pairs = Matching.random_maximal rng g in
      let r = Dist_expander.run ~seed g pairs in
      let ref_spanner, ref_routing = Dist_expander.reference ~seed g pairs in
      check Alcotest.int "spanner size equal" (Graph.m ref_spanner) (Graph.m r.Dist_expander.spanner);
      check Alcotest.bool "spanner edges equal" true
        (Graph.is_subgraph r.Dist_expander.spanner ~of_:ref_spanner);
      check Alcotest.bool "routings identical" true
        (routings_equal r.Dist_expander.routing ref_routing))
    [ (1, 80, 28); (2, 100, 30); (3, 120, 40) ]

let test_dist_expander_paths_valid () =
  let g = expander 5 100 34 in
  let rng = Prng.create 6 in
  let pairs = Matching.random_maximal rng g in
  let r = Dist_expander.run ~seed:5 g pairs in
  Array.iteri
    (fun i path ->
      if Array.length path > 0 then begin
        let u, v = pairs.(i) in
        check Alcotest.int "starts at src" u path.(0);
        check Alcotest.int "ends at dst" v path.(Array.length path - 1);
        check Alcotest.bool "length <= 3" true (Routing.length path <= 3);
        for j = 0 to Array.length path - 2 do
          check Alcotest.bool "edges in spanner" true
            (Graph.mem_edge r.Dist_expander.spanner path.(j) path.(j + 1))
        done
      end)
    r.Dist_expander.routing

let test_dist_expander_constant_rounds () =
  let g = expander 7 90 30 in
  let pairs = Matching.random_maximal (Prng.create 8) g in
  let r = Dist_expander.run ~seed:7 g pairs in
  check Alcotest.int "4 rounds" 4 r.Dist_expander.rounds;
  check Alcotest.bool "messages flowed" true (r.Dist_expander.messages > 0)

let test_dist_expander_rejects_non_edges () =
  let g = expander 9 60 20 in
  check Alcotest.bool "non-edge request rejected" true
    (try
       (* find a non-edge *)
       let rec non_edge u v =
         if u <> v && not (Graph.mem_edge g u v) then (u, v) else non_edge ((u + 1) mod 60) ((v + 7) mod 60)
       in
       ignore (Dist_expander.run ~seed:9 g [| non_edge 0 1 |]);
       false
     with Invalid_argument _ -> true)

(* ---- qcheck ---- *)

let prop_tables_match_bfs =
  QCheck.Test.make ~name:"route tables realize BFS distances" ~count:25
    QCheck.(pair small_int (int_range 4 30))
    (fun (seed, n) ->
      let g = Generators.erdos_renyi (Prng.create seed) n 0.3 in
      let c = Csr.snapshot g in
      let t = Route_tables.compile c in
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          let d = Bfs.distance c src dst in
          match Route_tables.forward t ~src ~dst with
          | None -> if d >= 0 && src <> dst then ok := false
          | Some p -> if Routing.length p <> max d 0 then ok := false
        done
      done;
      !ok)

let prop_dist_expander_equality =
  QCheck.Test.make ~name:"distributed theorem 2 = centralized" ~count:8
    QCheck.(pair small_int (int_range 60 100))
    (fun (seed, n) ->
      let g = expander (seed + 11) n (n / 3) in
      let pairs = Matching.random_maximal (Prng.create (seed + 12)) g in
      let r = Dist_expander.run ~seed g pairs in
      let ref_spanner, ref_routing = Dist_expander.reference ~seed g pairs in
      Graph.m ref_spanner = Graph.m r.Dist_expander.spanner
      && routings_equal r.Dist_expander.routing ref_routing)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "tables-distexp"
    [
      ( "route-tables",
        [
          Alcotest.test_case "shortest forwarding" `Quick test_tables_shortest;
          Alcotest.test_case "disconnected" `Quick test_tables_disconnected;
          Alcotest.test_case "entry/port counts" `Quick test_tables_counts;
          Alcotest.test_case "spanner state reduction" `Quick test_tables_spanner_state_reduction;
          Alcotest.test_case "self routing" `Quick test_tables_self;
        ] );
      ( "dist-expander",
        [
          Alcotest.test_case "matches reference" `Quick test_dist_expander_matches_reference;
          Alcotest.test_case "paths valid" `Quick test_dist_expander_paths_valid;
          Alcotest.test_case "constant rounds" `Quick test_dist_expander_constant_rounds;
          Alcotest.test_case "rejects non-edges" `Quick test_dist_expander_rejects_non_edges;
        ] );
      ("properties", q [ prop_tables_match_bfs; prop_dist_expander_equality ]);
    ]
