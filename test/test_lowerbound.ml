(* Tests for dcs_lowerbound: the Lemma 18 gadget, Lemma 19 design, Theorem 4
   composition, Lemma 2 separation family, and the Figure 1 VFT example. *)

let check = Alcotest.check

(* ---- Ray-line gadget (Lemma 18) ---- *)

let test_ray_line_structure () =
  List.iter
    (fun k ->
      let t = Ray_line.make k in
      let g = t.Ray_line.graph in
      check Alcotest.int "|V| = 2k+2" ((2 * k) + 2) (Graph.n g);
      check Alcotest.int "|E| = 3k+1" ((3 * k) + 1) (Graph.m g);
      (* rays touch odd-indexed a's *)
      for i = 0 to k do
        check Alcotest.bool "ray edge" true (Graph.mem_edge g t.Ray_line.s (Ray_line.a t ((2 * i) + 1)))
      done;
      check Alcotest.int "s degree = k+1" (k + 1) (Graph.degree g t.Ray_line.s))
    [ 1; 3; 8 ]

let test_ray_line_extremal_spanner () =
  List.iter
    (fun k ->
      let t = Ray_line.make k in
      let h, removed = Ray_line.extremal_spanner t in
      check Alcotest.int "k edges removed" k (Array.length removed);
      check Alcotest.int "spanner size" ((2 * k) + 1) (Graph.m h);
      check Alcotest.bool "3-distance spanner" true (Stretch.is_three_spanner t.Ray_line.graph h);
      Array.iter
        (fun (u, v) -> check Alcotest.bool "removed from h" false (Graph.mem_edge h u v))
        removed)
    [ 1; 4; 10 ]

let test_ray_line_forced_congestion () =
  let k = 9 in
  let t = Ray_line.make k in
  let h, removed = Ray_line.extremal_spanner t in
  let routing = Ray_line.forced_routing t in
  let problem = Routing.problem_of_edges removed in
  check Alcotest.bool "forced routing valid in spanner" true (Routing.is_valid h problem routing);
  (* every forced path crosses s; optimal congestion of the problem in G is 1 *)
  let n = Graph.n t.Ray_line.graph in
  check Alcotest.int "congestion k at s" k (Routing.congestion ~n routing);
  let in_g = Array.map (fun (u, v) -> [| u; v |]) removed in
  check Alcotest.int "congestion 1 in G" 1 (Routing.congestion ~n in_g);
  (* the forced paths are the *only* <=3 substitutes: removing s disconnects
     the endpoints in H *)
  Array.iter
    (fun (u, v) ->
      let hc = Csr.snapshot h in
      check Alcotest.int "spanner distance exactly 3" 3 (Bfs.distance hc u v))
    removed

let test_ray_line_cannot_remove_more () =
  (* Removing any additional ray edge r_i next to a removed line edge breaks
     the 3-stretch: sanity-check Lemma 18's structural argument on k=3. *)
  let t = Ray_line.make 3 in
  let h, _ = Ray_line.extremal_spanner t in
  (* remove middle ray r_1 = (s, a_3) *)
  ignore (Graph.remove_edge h t.Ray_line.s (Ray_line.a t 3));
  check Alcotest.bool "stretch violated" false (Stretch.is_three_spanner t.Ray_line.graph h)

(* ---- Lemma 19 design ---- *)

let test_design_pairwise_intersection () =
  let rng = Prng.create 3 in
  let d = Design.make rng ~n:400 ~subset_size:5 ~count:60 in
  check Alcotest.int "count" 60 (Array.length d.Design.subsets);
  Array.iter
    (fun s -> check Alcotest.int "size" 5 (Array.length s))
    d.Design.subsets;
  check Alcotest.bool "pairwise <= 1" true (Design.max_pairwise_intersection d <= 1)

let test_design_loads_balanced () =
  let rng = Prng.create 4 in
  let n = 300 and subset_size = 4 and count = 150 in
  let d = Design.make rng ~n ~subset_size ~count in
  let loads = Design.element_loads d in
  let total = Array.fold_left ( + ) 0 loads in
  check Alcotest.int "total load" (subset_size * count) total;
  let mean = float_of_int total /. float_of_int n in
  let max_load = Array.fold_left max 0 loads in
  check Alcotest.bool
    (Printf.sprintf "max load %d vs mean %.1f" max_load mean)
    true
    (float_of_int max_load <= (6.0 *. mean) +. 3.0)

let test_design_too_dense_fails () =
  let rng = Prng.create 5 in
  (* 50 subsets of size 5 over only 10 elements cannot have pairwise
     intersections <= 1 (only C(10,2)=45 pairs available). *)
  check Alcotest.bool "raises" true
    (try
       ignore (Design.make rng ~n:10 ~subset_size:5 ~count:50);
       false
     with Invalid_argument _ -> true)

let test_design_element_range () =
  let rng = Prng.create 6 in
  let d = Design.make rng ~n:100 ~subset_size:3 ~count:30 in
  Array.iter
    (fun s -> Array.iter (fun x -> check Alcotest.bool "in range" true (x >= 0 && x < 100)) s)
    d.Design.subsets

(* ---- Theorem 4 ---- *)

let make_thm4 seed =
  let rng = Prng.create seed in
  Theorem4.make rng ~pool:500 ~instances:40 ~k:4

let test_theorem4_structure () =
  let t = make_thm4 1 in
  let g = t.Theorem4.graph in
  check Alcotest.int "node count" (500 + 40) (Graph.n g);
  (* each instance contributes 3k+1 edges and they are edge-disjoint *)
  check Alcotest.int "edge count" (40 * ((3 * 4) + 1)) (Graph.m g);
  Array.iter
    (fun inst ->
      check Alcotest.int "line size" ((2 * 4) + 1) (Array.length inst.Theorem4.line);
      check Alcotest.int "special degree" (4 + 1) (Graph.degree g inst.Theorem4.special))
    t.Theorem4.instances

let test_theorem4_default_k () =
  check Alcotest.bool "k >= 1" true (Theorem4.default_k ~pool:100 >= 1);
  (* 2k = (n/17)^{1/6}: for n = 17 * 4^6 = 69632, 2k = 4, k = 2 *)
  check Alcotest.int "k formula" 2 (Theorem4.default_k ~pool:(17 * 4096))

let test_theorem4_optimal_spanner () =
  let t = make_thm4 2 in
  let h, removed = Theorem4.optimal_spanner t in
  check Alcotest.int "removed per instance" 40 (Array.length removed);
  Array.iter (fun r -> check Alcotest.int "k removed" 4 (Array.length r)) removed;
  check Alcotest.int "spanner edges" (Graph.m t.Theorem4.graph - (40 * 4)) (Graph.m h);
  check Alcotest.bool "still 3-spanner" true (Stretch.is_three_spanner t.Theorem4.graph h)

let test_theorem4_congestion_blowup () =
  let t = make_thm4 3 in
  let h, removed = Theorem4.optimal_spanner t in
  let n = Graph.n t.Theorem4.graph in
  for i = 0 to Array.length t.Theorem4.instances - 1 do
    let forced = Theorem4.forced_routing t i in
    let problem = Routing.problem_of_edges removed.(i) in
    check Alcotest.bool "forced valid in spanner" true (Routing.is_valid h problem forced);
    check Alcotest.int "spanner congestion = k" t.Theorem4.k (Routing.congestion ~n forced);
    check Alcotest.int "optimal congestion 1" 1 (Routing.congestion ~n (Theorem4.edge_routing t i))
  done

let test_theorem4_forced_is_only_short_option () =
  let t = make_thm4 4 in
  let h, removed = Theorem4.optimal_spanner t in
  let hc = Csr.snapshot h in
  Array.iter
    (fun r ->
      Array.iter
        (fun (u, v) -> check Alcotest.int "distance exactly 3" 3 (Bfs.distance hc u v))
        r)
    removed

(* ---- Lemma 2 ---- *)

let test_lemma2_structure () =
  let t = Lemma2.make ~alpha:3 ~size:10 in
  let g = t.Lemma2.graph in
  (* (2 + alpha) n nodes: alpha interior detour nodes per pair (the proof's
     (alpha+1)-length detours; see Lemma2 doc). *)
  check Alcotest.int "node count" 50 (Graph.n g);
  check Alcotest.bool "spanner subgraph" true (Graph.is_subgraph t.Lemma2.spanner ~of_:g);
  check Alcotest.int "9 matching edges removed" (Graph.m g - 9) (Graph.m t.Lemma2.spanner)

let test_lemma2_three_distance_spanner () =
  let t = Lemma2.make ~alpha:3 ~size:12 in
  check Alcotest.int "exact stretch 3" 3 (Stretch.exact t.Lemma2.graph t.Lemma2.spanner)

let test_lemma2_detour_routing () =
  let t = Lemma2.make ~alpha:3 ~size:10 in
  let problem = Lemma2.matching_problem t in
  let detours = Lemma2.detour_routing t in
  check Alcotest.bool "valid in spanner" true (Routing.is_valid t.Lemma2.spanner problem detours);
  let n = Graph.n t.Lemma2.graph in
  check Alcotest.int "congestion 1" 1 (Routing.congestion ~n detours);
  (* but the paths are longer than alpha: the DC property fails there *)
  Array.iter
    (fun p -> check Alcotest.int "length alpha+1" (t.Lemma2.alpha + 1) (Routing.length p))
    detours

let test_lemma2_short_routing_congestion () =
  let t = Lemma2.make ~alpha:3 ~size:15 in
  let problem = Lemma2.matching_problem t in
  let short = Lemma2.short_routing t in
  check Alcotest.bool "valid in spanner" true (Routing.is_valid t.Lemma2.spanner problem short);
  Array.iter
    (fun p -> check Alcotest.bool "length <= alpha" true (Routing.length p <= t.Lemma2.alpha))
    short;
  let n = Graph.n t.Lemma2.graph in
  (* all n paths cross a_1 (and b_1): congestion = size *)
  check Alcotest.int "congestion n" 15 (Routing.congestion ~n short)

let test_lemma2_dc_failure_is_forced () =
  (* Any length-<=3 routing of pair (a_i, b_i), i >= 1, must use edge
     (a_1, b_1): check via distance in spanner minus that edge. *)
  let t = Lemma2.make ~alpha:3 ~size:8 in
  let cut = Graph.copy t.Lemma2.spanner in
  ignore (Graph.remove_edge cut t.Lemma2.a.(0) t.Lemma2.b.(0));
  let cc = Csr.snapshot cut in
  for i = 1 to 7 do
    let d = Bfs.distance cc t.Lemma2.a.(i) t.Lemma2.b.(i) in
    check Alcotest.bool
      (Printf.sprintf "pair %d needs (a1,b1) for <=3 routing (d=%d)" i d)
      true (d > 3)
  done

let test_lemma2_congestion_2_substitute () =
  let t = Lemma2.make ~alpha:3 ~size:10 in
  let rng = Prng.create 7 in
  let g = t.Lemma2.graph in
  let n = Graph.n g in
  for _ = 1 to 5 do
    let problem = Problems.random_pairs rng g ~k:25 in
    let routing = Sp_routing.route_random (Csr.snapshot g) rng problem in
    let substitute = Lemma2.congestion_2_substitute t routing in
    check Alcotest.bool "valid in spanner" true
      (Routing.is_valid t.Lemma2.spanner problem substitute);
    let base = Routing.congestion ~n routing in
    let got = Routing.congestion ~n substitute in
    check Alcotest.bool
      (Printf.sprintf "congestion %d <= 2 * %d" got base)
      true
      (got <= 2 * base)
  done

let test_lemma2_alpha4 () =
  let t = Lemma2.make ~alpha:4 ~size:6 in
  check Alcotest.int "node count (2+alpha)n" ((2 + 4) * 6) (Graph.n t.Lemma2.graph);
  check Alcotest.bool "3-distance still" true (Stretch.exact t.Lemma2.graph t.Lemma2.spanner <= 3);
  let detours = Lemma2.detour_routing t in
  Array.iter
    (fun p -> check Alcotest.int "detour length 5" 5 (Routing.length p))
    detours

(* ---- Figure 1 VFT example ---- *)

let test_vft_structure () =
  let t = Vft_example.make 64 in
  check Alcotest.int "kept edges" (int_of_float (ceil (64.0 ** (1.0 /. 3.0))) + 1)
    (Array.length t.Vft_example.kept);
  check Alcotest.bool "spanner subgraph" true
    (Graph.is_subgraph t.Vft_example.spanner ~of_:t.Vft_example.graph);
  check Alcotest.bool "3-spanner" true
    (Stretch.is_three_spanner t.Vft_example.graph t.Vft_example.spanner)

let test_vft_congestion_blowup () =
  let t = Vft_example.make 128 in
  let rng = Prng.create 11 in
  let problem = Vft_example.matching_problem t in
  let routing = Vft_example.route t rng in
  check Alcotest.bool "valid" true (Routing.is_valid t.Vft_example.spanner problem routing);
  let n = Graph.n t.Vft_example.graph in
  let c = Routing.congestion ~n routing in
  (* ~ (n/2) / (f+1) = 64/6; require a blowup of at least n^{1/3} *)
  check Alcotest.bool (Printf.sprintf "congestion %d blows up" c) true (c >= 5);
  check Alcotest.int "optimum in G is 1" 1
    (Routing.congestion ~n (Array.map (fun { Routing.src; dst } -> [| src; dst |]) problem))

let test_vft_congestion_lower_bound () =
  (* the Figure 1 claim quantitatively: across sizes and seeds the kept-
     matching routing is measured at Omega(n^{2/3}) node congestion, while
     the same problem costs 1 in G.  The n^{2/3}/4 constant has slack: by
     pigeonhole some kept endpoint carries >= 1 + (n/2 - kept)/kept paths *)
  List.iter
    (fun n ->
      let t = Vft_example.make n in
      let nn = Graph.n t.Vft_example.graph in
      let bound = int_of_float (ceil (float_of_int n ** (2.0 /. 3.0) /. 4.0)) in
      List.iter
        (fun seed ->
          let routing = Vft_example.route t (Prng.create seed) in
          let c = Routing.congestion ~n:nn routing in
          check Alcotest.bool
            (Printf.sprintf "n=%d seed=%d: congestion %d >= n^(2/3)/4 = %d" n seed c bound)
            true (c >= bound))
        [ 1; 2; 3; 42 ];
      let problem = Vft_example.matching_problem t in
      check Alcotest.int
        (Printf.sprintf "n=%d: matching costs 1 in G" n)
        1
        (Routing.congestion ~n:nn
           (Array.map (fun { Routing.src; dst } -> [| src; dst |]) problem)))
    [ 64; 128; 256; 512 ]

(* ---- qcheck ---- *)

let prop_ray_line_spanner_stretch =
  QCheck.Test.make ~name:"ray-line extremal spanner always 3-stretch" ~count:30
    QCheck.(int_range 1 40)
    (fun k ->
      let t = Ray_line.make k in
      let h, _ = Ray_line.extremal_spanner t in
      Stretch.is_three_spanner t.Ray_line.graph h)

let prop_design_valid =
  QCheck.Test.make ~name:"design pairwise intersection <= 1" ~count:20
    QCheck.(pair small_int (int_range 2 5))
    (fun (seed, size) ->
      let rng = Prng.create seed in
      let d = Design.make rng ~n:200 ~subset_size:size ~count:20 in
      Design.max_pairwise_intersection d <= 1)

let prop_lemma2_short_routing_congestion_n =
  QCheck.Test.make ~name:"lemma2 short routing congestion = size" ~count:20
    QCheck.(int_range 2 30)
    (fun size ->
      let t = Lemma2.make ~alpha:3 ~size in
      Routing.congestion ~n:(Graph.n t.Lemma2.graph) (Lemma2.short_routing t) = size)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "lowerbound"
    [
      ( "ray-line",
        [
          Alcotest.test_case "structure" `Quick test_ray_line_structure;
          Alcotest.test_case "extremal spanner" `Quick test_ray_line_extremal_spanner;
          Alcotest.test_case "forced congestion" `Quick test_ray_line_forced_congestion;
          Alcotest.test_case "cannot remove more" `Quick test_ray_line_cannot_remove_more;
        ] );
      ( "design",
        [
          Alcotest.test_case "pairwise intersection" `Quick test_design_pairwise_intersection;
          Alcotest.test_case "balanced loads" `Quick test_design_loads_balanced;
          Alcotest.test_case "too dense fails" `Quick test_design_too_dense_fails;
          Alcotest.test_case "element range" `Quick test_design_element_range;
        ] );
      ( "theorem4",
        [
          Alcotest.test_case "structure" `Quick test_theorem4_structure;
          Alcotest.test_case "default k" `Quick test_theorem4_default_k;
          Alcotest.test_case "optimal spanner" `Quick test_theorem4_optimal_spanner;
          Alcotest.test_case "congestion blowup" `Quick test_theorem4_congestion_blowup;
          Alcotest.test_case "forced distance 3" `Quick test_theorem4_forced_is_only_short_option;
        ] );
      ( "lemma2",
        [
          Alcotest.test_case "structure" `Quick test_lemma2_structure;
          Alcotest.test_case "3-distance spanner" `Quick test_lemma2_three_distance_spanner;
          Alcotest.test_case "detour routing" `Quick test_lemma2_detour_routing;
          Alcotest.test_case "short routing congestion" `Quick test_lemma2_short_routing_congestion;
          Alcotest.test_case "DC failure forced" `Quick test_lemma2_dc_failure_is_forced;
          Alcotest.test_case "2-congestion substitute" `Quick test_lemma2_congestion_2_substitute;
          Alcotest.test_case "alpha = 4" `Quick test_lemma2_alpha4;
        ] );
      ( "vft",
        [
          Alcotest.test_case "structure" `Quick test_vft_structure;
          Alcotest.test_case "congestion blowup" `Quick test_vft_congestion_blowup;
          Alcotest.test_case "omega n^(2/3) across sizes" `Quick test_vft_congestion_lower_bound;
        ] );
      ( "properties",
        q [ prop_ray_line_spanner_stretch; prop_design_valid; prop_lemma2_short_routing_congestion_n ]
      );
    ]
