(* Tests for the multicore helpers (Parallel), the parallel measurement
   entry points (Stretch.exact_parallel, Bfs.all_distances_parallel), and
   Valiant's randomized two-phase routing with its adversarial permutation
   generators. *)

let check = Alcotest.check

(* ---- Parallel ---- *)

let test_parallel_map_range_matches_init () =
  List.iter
    (fun domains ->
      List.iter
        (fun n ->
          let expected = Array.init n (fun i -> (i * i) + 1) in
          let got = Parallel.map_range ~domains n (fun i -> (i * i) + 1) in
          check Alcotest.(array int) (Printf.sprintf "n=%d domains=%d" n domains) expected got)
        [ 0; 1; 2; 5; 17; 100 ])
    [ 1; 2; 3; 4; 7 ]

let test_parallel_max_range () =
  List.iter
    (fun domains ->
      check Alcotest.int
        (Printf.sprintf "max domains=%d" domains)
        99
        (Parallel.max_range ~domains 100 (fun i -> if i = 63 then 99 else i mod 50));
      check Alcotest.int "empty" min_int (Parallel.max_range ~domains 0 (fun _ -> 42)))
    [ 1; 2; 4 ]

let test_parallel_default_domains () =
  check Alcotest.bool "at least 1" true (Parallel.default_domains () >= 1)

let test_parallel_side_effect_free_reads () =
  (* domains reading a shared CSR concurrently must agree with sequential *)
  let g = Generators.torus 8 8 in
  let c = Csr.snapshot g in
  let seq = Array.init 64 (fun s -> Array.fold_left ( + ) 0 (Bfs.distances c s)) in
  let par =
    Parallel.map_range ~domains:4 64 (fun s -> Array.fold_left ( + ) 0 (Bfs.distances c s))
  in
  check Alcotest.(array int) "concurrent reads consistent" seq par

(* ---- parallel measurement entry points ---- *)

let test_all_distances_parallel () =
  let g = Generators.erdos_renyi (Prng.create 5) 50 0.15 in
  let c = Csr.snapshot g in
  let seq = Bfs.all_distances c in
  let par = Bfs.all_distances_parallel ~domains:4 c in
  Array.iteri (fun i row -> check Alcotest.(array int) (Printf.sprintf "row %d" i) row par.(i)) seq

let test_exact_parallel_matches_sequential () =
  for seed = 1 to 6 do
    let g = Generators.erdos_renyi (Prng.create seed) 40 0.25 in
    let rng = Prng.create (seed + 10) in
    let h = Graph.empty_like g in
    Graph.iter_edges g (fun u v -> if Prng.bool rng 0.7 then ignore (Graph.add_edge h u v));
    ignore (Connectivity.repair h ~within:g);
    let seq = Stretch.exact g h in
    let par = Stretch.exact_parallel ~domains:4 g h in
    check Alcotest.int (Printf.sprintf "seed %d" seed) seq par
  done;
  (* identity spanner: no removed edges *)
  let g = Generators.torus 5 5 in
  check Alcotest.int "identity" 1 (Stretch.exact_parallel ~domains:4 g (Graph.copy g))

let test_exact_parallel_disconnected () =
  let g = Generators.cycle 6 in
  let h = Graph.copy g in
  ignore (Graph.remove_edge h 0 1);
  ignore (Graph.remove_edge h 3 4);
  check Alcotest.int "disconnected = max_int" max_int (Stretch.exact_parallel ~domains:3 g h)

(* ---- Valiant routing ---- *)

let test_valiant_validity () =
  let g = Generators.torus 6 6 in
  let c = Csr.snapshot g in
  let rng = Prng.create 7 in
  let problem = Problems.permutation rng g in
  let routing = Valiant.route c rng problem in
  check Alcotest.bool "valid" true (Routing.is_valid g problem routing);
  (* each path at most 2x diameter *)
  let diam = Bfs.diameter_sampled c rng ~samples:36 in
  Array.iter
    (fun p -> check Alcotest.bool "length <= 2 diam" true (Routing.length p <= 2 * diam))
    routing

let test_valiant_congestion_reasonable () =
  (* On an expander, Valiant congestion for a permutation stays polylog-ish. *)
  let g = Generators.random_regular (Prng.create 8) 128 8 in
  let c = Csr.snapshot g in
  let rng = Prng.create 9 in
  let problem = Problems.permutation rng g in
  let cong = Valiant.congestion c rng problem in
  check Alcotest.bool (Printf.sprintf "congestion %d bounded" cong) true (cong <= 60)

let test_torus_transpose () =
  let side = 5 in
  let p = Valiant.torus_transpose side in
  check Alcotest.int "size excludes diagonal" (side * side - side) (Array.length p);
  Array.iter
    (fun { Routing.src; dst } ->
      let r = src / side and c = src mod side in
      check Alcotest.int "transposed" ((c * side) + r) dst)
    p;
  (* it's a permutation restricted off the diagonal: sources distinct *)
  let seen = Hashtbl.create 32 in
  Array.iter
    (fun { Routing.src; _ } ->
      check Alcotest.bool "distinct" false (Hashtbl.mem seen src);
      Hashtbl.add seen src ())
    p

let test_bit_reversal () =
  let d = 4 in
  let p = Valiant.hypercube_bit_reversal d in
  Array.iter
    (fun { Routing.src; dst } ->
      (* reversing twice is the identity *)
      let reverse x =
        let r = ref 0 in
        for bit = 0 to d - 1 do
          if x land (1 lsl bit) <> 0 then r := !r lor (1 lsl (d - 1 - bit))
        done;
        !r
      in
      check Alcotest.int "involution" src (reverse dst);
      check Alcotest.bool "no fixed points included" true (src <> dst))
    p;
  (* d=4: fixed points of bit reversal are the 4 palindromic patterns *)
  check Alcotest.int "size" (16 - 4) (Array.length p)

let test_valiant_on_adversarial_patterns () =
  (* Both adversarial problems route validly through Valiant. *)
  let torus = Generators.torus 8 8 in
  let tc = Csr.snapshot torus in
  let rng = Prng.create 11 in
  let tp = Valiant.torus_transpose 8 in
  let tr = Valiant.route tc rng tp in
  check Alcotest.bool "torus transpose valid" true (Routing.is_valid torus tp tr);
  let cube = Generators.hypercube 6 in
  let cc = Csr.snapshot cube in
  let bp = Valiant.hypercube_bit_reversal 6 in
  let br = Valiant.route cc rng bp in
  check Alcotest.bool "bit reversal valid" true (Routing.is_valid cube bp br)

(* ---- Packet_sim ---- *)

let test_packet_single () =
  let routing = [| [| 0; 1; 2; 3 |] |] in
  let s = Packet_sim.run ~n:4 routing in
  check Alcotest.int "alone: makespan = path length" 3 s.Packet_sim.makespan;
  check Alcotest.int "dilation" 3 s.Packet_sim.dilation;
  check Alcotest.int "congestion" 1 s.Packet_sim.congestion;
  check (Alcotest.float 1e-9) "latency" 3.0 s.Packet_sim.avg_latency

let test_packet_star_contention () =
  (* two packets crossing the center of a star: one must wait *)
  let routing = [| [| 1; 0; 2 |]; [| 3; 0; 4 |] |] in
  let s = Packet_sim.run ~n:5 routing in
  check Alcotest.int "congestion 2" 2 s.Packet_sim.congestion;
  check Alcotest.int "makespan 3 (one waits a round)" 3 s.Packet_sim.makespan;
  check Alcotest.bool "queue formed" true (s.Packet_sim.max_queue >= 2)

let test_packet_bounds () =
  let g = Generators.torus 6 6 in
  let c = Csr.snapshot g in
  for seed = 1 to 6 do
    let rng = Prng.create seed in
    let problem = Problems.random_pairs rng g ~k:40 in
    let routing = Sp_routing.route_random c rng problem in
    let s = Packet_sim.run ~n:36 routing in
    check Alcotest.bool "makespan >= lower bound" true
      (s.Packet_sim.makespan >= Packet_sim.lower_bound s);
    check Alcotest.bool "makespan <= C*D + D" true
      (s.Packet_sim.makespan
      <= (s.Packet_sim.congestion * s.Packet_sim.dilation) + s.Packet_sim.dilation);
    check Alcotest.bool "avg <= makespan" true
      (s.Packet_sim.avg_latency <= float_of_int s.Packet_sim.makespan)
  done

let test_packet_empty_and_trivial () =
  let s = Packet_sim.run ~n:3 [||] in
  check Alcotest.int "empty makespan" 0 s.Packet_sim.makespan;
  let s1 = Packet_sim.run ~n:3 [| [| 2 |] |] in
  check Alcotest.int "self-delivery at 0" 0 s1.Packet_sim.makespan;
  check Alcotest.bool "empty path rejected" true
    (try
       ignore (Packet_sim.run ~n:1 [| [||] |]);
       false
     with Invalid_argument _ -> true)

let test_packet_lower_congestion_lower_latency () =
  (* the motivating monotonicity: an optimized (lower-congestion) routing of
     the same problem should not simulate slower *)
  let g = Generators.torus 7 7 in
  let c = Csr.snapshot g in
  let rng = Prng.create 31 in
  let problem = Problems.random_pairs rng g ~k:80 in
  let naive = Sp_routing.route c problem in
  let opt = Congestion_opt.route c (Prng.create 32) problem in
  let s_naive = Packet_sim.run ~n:49 naive in
  let s_opt = Packet_sim.run ~n:49 opt in
  check Alcotest.bool
    (Printf.sprintf "optimized makespan %d <= naive %d + slack" s_opt.Packet_sim.makespan
       s_naive.Packet_sim.makespan)
    true
    (s_opt.Packet_sim.makespan <= s_naive.Packet_sim.makespan + s_opt.Packet_sim.dilation)

(* ---- qcheck ---- *)

let prop_packet_bounds =
  QCheck.Test.make ~name:"packet sim between lower bound and C*D+D" ~count:40
    QCheck.(pair small_int (int_range 2 50))
    (fun (seed, k) ->
      let g = Generators.torus 5 5 in
      let c = Csr.snapshot g in
      let rng = Prng.create seed in
      let problem = Problems.random_pairs rng g ~k in
      let routing = Sp_routing.route_random c rng problem in
      let s = Packet_sim.run ~n:25 routing in
      s.Packet_sim.makespan >= Packet_sim.lower_bound s
      && s.Packet_sim.makespan
         <= (s.Packet_sim.congestion * s.Packet_sim.dilation) + s.Packet_sim.dilation)


let prop_parallel_map_eq_sequential =
  QCheck.Test.make ~name:"map_range = Array.init" ~count:100
    QCheck.(pair (int_range 0 200) (int_range 1 6))
    (fun (n, domains) ->
      Parallel.map_range ~domains n (fun i -> 3 * i) = Array.init n (fun i -> 3 * i))

let prop_valiant_endpoints =
  QCheck.Test.make ~name:"valiant paths have right endpoints" ~count:30
    QCheck.(pair small_int (int_range 2 30))
    (fun (seed, k) ->
      let g = Generators.torus 6 6 in
      let c = Csr.snapshot g in
      let rng = Prng.create seed in
      let problem = Problems.random_pairs rng g ~k in
      let routing = Valiant.route c rng problem in
      Routing.is_valid g problem routing)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "parallel-routing"
    [
      ( "parallel",
        [
          Alcotest.test_case "map_range" `Quick test_parallel_map_range_matches_init;
          Alcotest.test_case "max_range" `Quick test_parallel_max_range;
          Alcotest.test_case "default domains" `Quick test_parallel_default_domains;
          Alcotest.test_case "concurrent reads" `Quick test_parallel_side_effect_free_reads;
        ] );
      ( "parallel-measurement",
        [
          Alcotest.test_case "all_distances" `Quick test_all_distances_parallel;
          Alcotest.test_case "exact stretch" `Quick test_exact_parallel_matches_sequential;
          Alcotest.test_case "disconnected" `Quick test_exact_parallel_disconnected;
        ] );
      ( "valiant",
        [
          Alcotest.test_case "validity" `Quick test_valiant_validity;
          Alcotest.test_case "congestion" `Quick test_valiant_congestion_reasonable;
          Alcotest.test_case "torus transpose" `Quick test_torus_transpose;
          Alcotest.test_case "bit reversal" `Quick test_bit_reversal;
          Alcotest.test_case "adversarial patterns" `Quick test_valiant_on_adversarial_patterns;
        ] );
      ( "packet-sim",
        [
          Alcotest.test_case "single packet" `Quick test_packet_single;
          Alcotest.test_case "star contention" `Quick test_packet_star_contention;
          Alcotest.test_case "C/D bounds" `Quick test_packet_bounds;
          Alcotest.test_case "empty/trivial" `Quick test_packet_empty_and_trivial;
          Alcotest.test_case "optimized routing not slower" `Quick
            test_packet_lower_congestion_lower_latency;
        ] );
      ( "properties",
        q [ prop_parallel_map_eq_sequential; prop_valiant_endpoints; prop_packet_bounds ] );
    ]
