(* Golden regression tests.

   Every randomized component draws from the explicit SplitMix64 generator,
   so whole pipelines are bit-reproducible.  These tests pin down exact
   outputs for fixed seeds: any unintended change to sampling order, RNG
   consumption, or algorithm structure shows up as a golden mismatch even if
   all behavioural invariants still hold.  (If you change an algorithm
   deliberately, re-derive the constants with `bin/golden_probe.ml`.) *)

let check = Alcotest.check

let base_graph () = Generators.random_regular (Prng.create 1) 60 20

let test_graph_golden () =
  let g = base_graph () in
  check Alcotest.int "m(G)" 600 (Graph.m g);
  check Alcotest.bool "regular" true (Graph.is_regular g);
  (* spectral estimate is deterministic given the fixed internal seed *)
  let lam = Spectral.lambda (Csr.snapshot g) in
  check (Alcotest.float 1e-4) "lambda" 7.188976 lam

let test_algorithm1_golden () =
  let g = base_graph () in
  let t = Regular_dc.build (Prng.create 2) g in
  check Alcotest.int "m(H)" 226 (Graph.m t.Regular_dc.spanner);
  check Alcotest.int "m(G')" 141 (Graph.m t.Regular_dc.sampled);
  check Alcotest.int "reinserted" 0 t.Regular_dc.reinserted;
  check Alcotest.int "repaired" 85 t.Regular_dc.repaired

let test_theorem2_golden () =
  let g = base_graph () in
  let e = Expander_dc.build (Prng.create 3) g in
  check Alcotest.int "m(H)" 467 (Graph.m e.Expander_dc.spanner);
  check (Alcotest.float 1e-6) "p" 0.766309 e.Expander_dc.p

let test_matching_congestion_golden () =
  let g = base_graph () in
  let t = Regular_dc.build (Prng.create 2) g in
  let dc = Regular_dc.to_dc t g in
  let r = Dc.measure_matching dc (Prng.create 4) ~trials:3 in
  check (Alcotest.float 1e-6) "mean congestion" 4.000000 r.Dc.mean_congestion;
  check Alcotest.int "max congestion" 4 r.Dc.max_congestion

let test_classic_golden () =
  let g = base_graph () in
  check Alcotest.int "baswana-sen size" 326 (Graph.m (Classic.baswana_sen_3 (Prng.create 5) g));
  check Alcotest.int "greedy size" 121 (Graph.m (Classic.greedy g ~k:2))

let test_distributed_golden () =
  let g = base_graph () in
  let d = Dist_spanner.run ~seed:6 g in
  check Alcotest.int "spanner size" 229 (Graph.m d.Dist_spanner.spanner);
  check Alcotest.int "messages" 4200 d.Dist_spanner.messages;
  check Alcotest.int "rounds" 6 d.Dist_spanner.rounds

let test_repeated_builds_identical () =
  (* Beyond pinned constants: the same seed twice gives the same edge sets. *)
  let g = base_graph () in
  let t1 = Regular_dc.build (Prng.create 2) g in
  let t2 = Regular_dc.build (Prng.create 2) g in
  check Alcotest.bool "same spanner" true
    (Graph.m t1.Regular_dc.spanner = Graph.m t2.Regular_dc.spanner
    && Graph.is_subgraph t1.Regular_dc.spanner ~of_:t2.Regular_dc.spanner);
  let g' = base_graph () in
  check Alcotest.bool "same generated graph" true
    (Graph.m g = Graph.m g' && Graph.is_subgraph g ~of_:g')

let () =
  Alcotest.run "golden"
    [
      ( "golden",
        [
          Alcotest.test_case "graph + lambda" `Quick test_graph_golden;
          Alcotest.test_case "algorithm 1" `Quick test_algorithm1_golden;
          Alcotest.test_case "theorem 2" `Quick test_theorem2_golden;
          Alcotest.test_case "matching congestion" `Quick test_matching_congestion_golden;
          Alcotest.test_case "classic spanners" `Quick test_classic_golden;
          Alcotest.test_case "distributed" `Quick test_distributed_golden;
          Alcotest.test_case "repeatability" `Quick test_repeated_builds_identical;
        ] );
    ]
