(* Tests for the construction registry: the single source every layer (CLI
   parsing, premise validation, bench sweeps, edge normalization) reads. *)

let check = Alcotest.check

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* ---- lookup ---- *)

let test_find_canonical () =
  List.iter
    (fun name ->
      match Construction.find name with
      | Ok c -> check Alcotest.string "canonical resolves to itself" name c.Construction.name
      | Error e -> Alcotest.failf "find %S: %s" name e)
    Construction.names

let test_find_alias () =
  List.iter
    (fun c ->
      List.iter
        (fun alias ->
          match Construction.find alias with
          | Ok c' ->
              check Alcotest.string
                (Printf.sprintf "alias %S resolves" alias)
                c.Construction.name c'.Construction.name
          | Error e -> Alcotest.failf "alias %S: %s" alias e)
        c.Construction.aliases)
    Construction.all

let test_find_case_insensitive () =
  match Construction.find "THEOREM2" with
  | Ok c -> check Alcotest.string "uppercase resolves" "theorem2" c.Construction.name
  | Error e -> Alcotest.fail e

let test_find_unknown_names_every_alias () =
  (* the "expected ..." error message is generated from the registry: it must
     name every canonical name AND every alias, so a user who typed a stale
     spelling sees the accepted one *)
  match Construction.find "no-such-construction" with
  | Ok _ -> Alcotest.fail "unknown name resolved"
  | Error msg ->
      check Alcotest.bool "mentions the query" true
        (contains ~needle:"no-such-construction" msg);
      List.iter
        (fun name ->
          check Alcotest.bool
            (Printf.sprintf "error message names %S" name)
            true (contains ~needle:name msg))
        Construction.all_names

let test_find_exn_raises () =
  Alcotest.check_raises "find_exn unknown"
    (Invalid_argument
       (match Construction.find "bogus" with
       | Error msg -> "Construction.find_exn: " ^ msg
       | Ok _ -> assert false))
    (fun () -> ignore (Construction.find_exn "bogus"))

(* ---- registry invariants ---- *)

let test_no_collisions () =
  let seen = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let k = String.lowercase_ascii s in
      check Alcotest.bool (Printf.sprintf "%S unique" s) false (Hashtbl.mem seen k);
      Hashtbl.replace seen k ())
    Construction.all_names

let test_metadata_nonempty () =
  List.iter
    (fun c ->
      check Alcotest.bool (c.Construction.name ^ " has a guarantee") true
        (String.length c.Construction.guarantee > 0);
      check Alcotest.bool (c.Construction.name ^ " has a reference") true
        (String.length c.Construction.reference > 0);
      check Alcotest.bool (c.Construction.name ^ " premise text") true
        (String.length (Premise.requirement_text c.Construction.premise) > 0);
      check Alcotest.bool (c.Construction.name ^ " edge exponent sane") true
        (c.Construction.edge_exponent >= 1.0 && c.Construction.edge_exponent <= 2.0))
    Construction.all

let test_accepting_subset () =
  let g = Generators.random_regular (Prng.create 11) 150 40 in
  let p = Premise.check g in
  let acc = Construction.accepting p in
  check Alcotest.bool "accepting is non-empty (Any entries)" true (List.length acc > 0);
  List.iter
    (fun c -> check Alcotest.bool (c.Construction.name ^ " accepted") true (Construction.premise_ok c p))
    acc;
  (* every [Any] construction accepts every graph *)
  List.iter
    (fun c ->
      if c.Construction.premise = Premise.Any then
        check Alcotest.bool (c.Construction.name ^ " (Any) in accepting") true
          (List.exists (fun c' -> c'.Construction.name = c.Construction.name) acc))
    Construction.all

let test_json_mentions_every_name () =
  let json = Construction.to_json () in
  List.iter
    (fun name ->
      check Alcotest.bool (Printf.sprintf "json names %S" name) true
        (contains ~needle:(Printf.sprintf "\"name\":\"%s\"" name) json))
    Construction.names

(* ---- building through the registry ---- *)

let test_build_smoke () =
  let g = Generators.random_regular (Prng.create 21) 64 24 in
  List.iter
    (fun c ->
      let dc = Construction.build c (Prng.create 22) g in
      check Alcotest.bool
        (c.Construction.name ^ " spanner is a subgraph")
        true
        (Graph.is_subgraph dc.Dc.spanner ~of_:g))
    Construction.all

let test_premise_warnings_any_empty () =
  let g = Generators.ring_of_cliques 4 10 in
  List.iter
    (fun c ->
      if c.Construction.premise = Premise.Any then
        check Alcotest.(list string) (c.Construction.name ^ " no warnings") []
          (Construction.premise_warnings c g))
    Construction.all

let () =
  Alcotest.run "registry"
    [
      ( "lookup",
        [
          Alcotest.test_case "canonical names" `Quick test_find_canonical;
          Alcotest.test_case "aliases" `Quick test_find_alias;
          Alcotest.test_case "case insensitive" `Quick test_find_case_insensitive;
          Alcotest.test_case "unknown names every alias" `Quick test_find_unknown_names_every_alias;
          Alcotest.test_case "find_exn raises" `Quick test_find_exn_raises;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "no name collisions" `Quick test_no_collisions;
          Alcotest.test_case "metadata non-empty" `Quick test_metadata_nonempty;
          Alcotest.test_case "accepting filter" `Quick test_accepting_subset;
          Alcotest.test_case "json covers registry" `Quick test_json_mentions_every_name;
        ] );
      ( "build",
        [
          Alcotest.test_case "every entry builds" `Quick test_build_smoke;
          Alcotest.test_case "Any premises never warn" `Quick test_premise_warnings_any_empty;
        ] );
    ]
