(* Bit-parallel kernel tests: the batched BFS (Bfs_batch) and everything
   rebuilt on top of it (Stretch certification, all-pairs distances,
   eccentricity/diameter signalling) must be bit-identical to the scalar
   reference paths, on connected and disconnected graphs alike. *)

let check = Alcotest.check

(* random graph that is disconnected reasonably often: sparse ER *)
let random_graph seed n p = Generators.erdos_renyi (Prng.create seed) n p

(* random subgraph on the same node set: keep each edge with probability
   [keep] — the generic "spanner pair" for certification properties *)
let random_subgraph seed keep g =
  let rng = Prng.create seed in
  let h = Graph.create (Graph.n g) in
  Graph.iter_edges g (fun u v -> if Prng.bool rng keep then ignore (Graph.add_edge h u v));
  h

(* ---- Bfs_batch vs scalar BFS ---- *)

let test_batch_empty_and_invalid () =
  let g = Csr.snapshot (Generators.cycle 5) in
  check Alcotest.int "no sources, no rows" 0 (Array.length (Bfs_batch.run g [||]));
  let too_many = Array.make (Bfs_batch.width + 1) 0 in
  let expects_invalid name f =
    check Alcotest.bool name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  expects_invalid "width overflow" (fun () -> Bfs_batch.run g too_many);
  expects_invalid "source range" (fun () -> Bfs_batch.run g [| 5 |]);
  expects_invalid "negative source" (fun () -> Bfs_batch.run g [| -1 |])

let test_batch_duplicates () =
  let g = Csr.snapshot (Generators.torus 4 4) in
  let rows = Bfs_batch.run g [| 3; 3; 3 |] in
  let d = Bfs.distances g 3 in
  Array.iter (fun row -> check Alcotest.(array int) "duplicated source rows" d row) rows

let test_batches_cover () =
  check Alcotest.int "empty" 0 (Array.length (Bfs_batch.batches 0));
  List.iter
    (fun n ->
      let bs = Bfs_batch.batches n in
      let seen = Array.concat (Array.to_list bs) in
      check Alcotest.bool "consecutive cover" true (seen = Array.init n (fun i -> i));
      Array.iter
        (fun b -> check Alcotest.bool "batch size" true (Array.length b <= Bfs_batch.width))
        bs)
    [ 1; Bfs_batch.width; Bfs_batch.width + 1; 200 ]

let prop_batch_matches_scalar =
  QCheck.Test.make ~name:"batched BFS rows = scalar distances" ~count:60
    QCheck.(triple small_int (int_range 2 60) (int_range 0 100))
    (fun (seed, n, pct) ->
      (* pct sweeps from almost surely disconnected to dense *)
      let g = Csr.snapshot (random_graph seed n (float_of_int pct /. 100.0 *. 0.2)) in
      let k = 1 + (seed mod min n Bfs_batch.width) in
      let sources = Array.init k (fun i -> (seed + (i * 7)) mod n) in
      let rows = Bfs_batch.run g sources in
      Array.for_all2 (fun row s -> row = Bfs.distances g s) rows sources)

let prop_batch_bounded_matches_scalar =
  QCheck.Test.make ~name:"bounded batched BFS = scalar bounded distances" ~count:60
    QCheck.(triple small_int (int_range 2 60) (int_range 0 5))
    (fun (seed, n, bound) ->
      let g = Csr.snapshot (random_graph seed n 0.08) in
      let k = 1 + (seed mod min n Bfs_batch.width) in
      let sources = Array.init k (fun i -> (seed + (i * 3)) mod n) in
      let rows = Bfs_batch.run ~bound g sources in
      Array.for_all2 (fun row s -> row = Bfs.distances_bounded g s ~bound) rows sources)

let prop_all_distances_matches_scalar =
  QCheck.Test.make ~name:"all_distances(_parallel) = per-source scalar BFS" ~count:30
    QCheck.(pair small_int (int_range 1 80))
    (fun (seed, n) ->
      let g = Csr.snapshot (random_graph seed n 0.1) in
      let want = Array.init n (Bfs.distances g) in
      Bfs.all_distances g = want && Bfs.all_distances_parallel ~domains:3 g = want)

(* ---- Stretch certification vs the per-edge reference ---- *)

let prop_exact_matches_reference =
  QCheck.Test.make ~name:"grouped+batched Stretch.exact = per-edge reference" ~count:50
    QCheck.(triple small_int (int_range 2 50) (int_range 0 100))
    (fun (seed, n, keep_pct) ->
      let g = random_graph (seed + 1) n 0.15 in
      let h = random_subgraph (seed + 2) (float_of_int keep_pct /. 100.0) g in
      let want = Stretch.exact_reference g h in
      Stretch.exact g h = want
      && Stretch.exact_parallel ~domains:4 g h = want
      && Stretch.exact ~snapshot:(Csr.snapshot h) g h = want)

let prop_exact_bounded_matches_reference =
  QCheck.Test.make ~name:"bounded certification = bounded reference" ~count:50
    QCheck.(triple small_int (int_range 2 50) (int_range 0 6))
    (fun (seed, n, bound) ->
      let bound = max 1 bound in
      let g = random_graph (seed + 1) n 0.15 in
      let h = random_subgraph (seed + 5) 0.6 g in
      let want = Stretch.exact_reference ~bound g h in
      Stretch.exact_bounded g h ~bound = want
      && Stretch.exact_grouped ~bound g h = want
      && Stretch.exact_parallel ~domains:3 ~bound g h = want)

let prop_violations_consistent =
  QCheck.Test.make ~name:"violations = removed edges beyond the bound, sorted" ~count:40
    QCheck.(pair small_int (int_range 2 40))
    (fun (seed, n) ->
      let g = random_graph (seed + 1) n 0.2 in
      let h = random_subgraph (seed + 9) 0.5 g in
      let bound = 3 in
      let hc = Csr.snapshot h in
      let want = ref [] in
      Graph.iter_edges g (fun u v ->
          if not (Graph.mem_edge h u v) then begin
            let d = Bfs.distance hc u v in
            if d < 0 || d > bound then want := (u, v) :: !want
          end);
      Stretch.violations g h ~bound = List.sort compare !want)

let test_stretch_spanner_pair () =
  (* a real construction: certificates identical across all three kernels *)
  let g = Generators.random_regular (Prng.create 5) 80 16 in
  let h = Classic.greedy g ~k:2 in
  let want = Stretch.exact_reference g h in
  check Alcotest.int "exact" want (Stretch.exact g h);
  check Alcotest.int "grouped" want (Stretch.exact_grouped g h);
  check Alcotest.int "parallel" want (Stretch.exact_parallel ~domains:4 g h)

let test_exact_disconnected_early_exit () =
  let g = Generators.cycle 12 in
  let h = Graph.create 12 in
  check Alcotest.int "exact = max_int" max_int (Stretch.exact g h);
  check Alcotest.int "parallel = max_int" max_int (Stretch.exact_parallel ~domains:4 g h);
  check Alcotest.int "reference = max_int" max_int (Stretch.exact_reference g h)

let prop_sampled_pairs_snapshot_invariant =
  QCheck.Test.make ~name:"sampled_pairs draws are snapshot-invariant" ~count:20
    QCheck.(pair small_int (int_range 2 40))
    (fun (seed, n) ->
      let g = random_graph (seed + 1) n 0.2 in
      let h = random_subgraph (seed + 3) 0.7 g in
      let a = Stretch.sampled_pairs (Prng.create seed) g h ~samples:50 in
      let b =
        Stretch.sampled_pairs
          ~snapshots:(Csr.snapshot g, Csr.snapshot h)
          (Prng.create seed) g h ~samples:50
      in
      a = b)

(* ---- disconnection signalling ---- *)

let test_eccentricity_signals () =
  let c = Csr.snapshot (Generators.path 6) in
  check Alcotest.int "path end" 5 (Bfs.eccentricity c 0);
  let g = Generators.path 6 in
  ignore (Graph.isolate g 5);
  let c = Csr.snapshot g in
  check Alcotest.int "disconnected = max_int" max_int (Bfs.eccentricity c 0)

let test_diameter_signals () =
  let c = Csr.snapshot (Generators.cycle 9) in
  check Alcotest.int "cycle diameter" 4 (Bfs.diameter_sampled c (Prng.create 1) ~samples:20);
  let g = Generators.cycle 9 in
  ignore (Graph.isolate g 0);
  let c = Csr.snapshot g in
  check Alcotest.int "disconnected = max_int" max_int
    (Bfs.diameter_sampled c (Prng.create 1) ~samples:20)

(* ---- Parallel.max_range_saturating ---- *)

let prop_saturating_matches_max =
  QCheck.Test.make ~name:"max_range_saturating = max_range at top saturate" ~count:80
    QCheck.(pair (int_range 0 200) (int_range 1 4))
    (fun (n, domains) ->
      let f i = (i * 37) mod 101 in
      Parallel.max_range_saturating ~domains n f ~saturate:max_int
      = Parallel.max_range ~domains n f)

let test_saturating_early_exit () =
  (* once the saturation value is seen the remaining indices may be skipped,
     but the result must still include it *)
  let hits = Atomic.make 0 in
  let f i =
    Atomic.incr hits;
    if i = 3 then 1000 else i
  in
  let r = Parallel.max_range_saturating ~domains:1 100 f ~saturate:1000 in
  check Alcotest.int "saturated max" 1000 r;
  check Alcotest.bool "skipped the tail" true (Atomic.get hits <= 10);
  check Alcotest.int "empty range" min_int
    (Parallel.max_range_saturating ~domains:2 0 (fun i -> i) ~saturate:5)

(* ---- scratch arenas ---- *)

let test_scratch_resizes () =
  (* growing then shrinking the graph exercises realloc and reuse paths *)
  List.iter
    (fun n ->
      let c = Csr.snapshot (Generators.cycle n) in
      check Alcotest.int "cycle distance" (n / 2) (Bfs.distance c 0 (n / 2)))
    [ 4; 64; 8; 128; 6 ]

(* ---- unsafe-site oracles ----

   bfs_batch.ml, bitmat.ml and csr.ml are the only modules allowed to use
   Array.unsafe_* (enforced by dcs_lint's unsafe-audit pass); every site
   carries a (* SAFETY: ... *) argument.  These properties back those
   arguments with an independent, fully bounds-checked oracle written
   against the plain Graph API — on random graphs including empty,
   singleton and disconnected inputs. *)

(* queue-based BFS over Graph adjacency: no CSR, no bit-packing, no unsafe *)
let oracle_distances g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let oracle_common_count g u z =
  let acc = ref 0 in
  Graph.iter_neighbors g u (fun w -> if Graph.mem_edge g z w then incr acc);
  !acc

let prop_batch_matches_oracle =
  QCheck.Test.make ~name:"batched BFS rows = bounds-checked oracle" ~count:60
    QCheck.(triple small_int (int_range 1 40) (int_range 0 100))
    (fun (seed, n, pct) ->
      (* pct near 0 gives empty-edge/disconnected graphs, near 100 dense *)
      let g = random_graph seed n (float_of_int pct /. 100.0 *. 0.25) in
      let c = Csr.snapshot g in
      let k = 1 + (seed mod min n Bfs_batch.width) in
      let sources = Array.init k (fun i -> (seed + (i * 11)) mod n) in
      let rows = Bfs_batch.run c sources in
      Array.for_all2 (fun row s -> row = oracle_distances g s) rows sources)

let prop_bitmat_matches_oracle =
  QCheck.Test.make ~name:"Bitmat = bounds-checked neighbor-set oracle" ~count:60
    QCheck.(triple small_int (int_range 1 40) (int_range 0 100))
    (fun (seed, n, pct) ->
      let g = random_graph seed n (float_of_int pct /. 100.0 *. 0.25) in
      let bm = Bitmat.of_graph g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for z = 0 to n - 1 do
          let oracle = oracle_common_count g u z in
          if Bitmat.common_count bm u z <> oracle then ok := false;
          if Bitmat.mem bm u z <> Graph.mem_edge g u z then ok := false;
          (* at_least must agree with the exact count at, below and above
             the threshold (and for the k <= 0 shortcut) *)
          List.iter
            (fun k ->
              if Bitmat.common_count_at_least bm u z k <> (oracle >= k) then ok := false)
            [ -1; 0; oracle; oracle + 1 ]
        done
      done;
      !ok)

let test_unsafe_degenerate_inputs () =
  (* empty graph: no sources to run, nothing to intersect *)
  let empty = Csr.snapshot (Graph.create 0) in
  check Alcotest.int "empty graph, no rows" 0 (Array.length (Bfs_batch.run empty [||]));
  let bm0 = Bitmat.of_graph (Graph.create 0) in
  ignore bm0;
  (* singleton: one node, no edges *)
  let one = Graph.create 1 in
  let rows = Bfs_batch.run (Csr.snapshot one) [| 0 |] in
  check Alcotest.(array (array int)) "singleton distances" [| [| 0 |] |] rows;
  let bm1 = Bitmat.of_graph one in
  check Alcotest.int "singleton common" 0 (Bitmat.common_count bm1 0 0);
  check Alcotest.bool "singleton mem" false (Bitmat.mem bm1 0 0);
  (* disconnected: two components, cross distances signal -1 *)
  let g = Generators.two_cliques_matching 8 in
  let h = Graph.create (Graph.n g) in
  Graph.iter_edges g (fun u v -> if u < 4 && v < 4 then ignore (Graph.add_edge h u v));
  let rows = Bfs_batch.run (Csr.snapshot h) [| 0; 5 |] in
  check Alcotest.(array int) "cross component -1" (oracle_distances h 0) rows.(0);
  check Alcotest.(array int) "isolated source" (oracle_distances h 5) rows.(1)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "kernels"
    [
      ( "bfs-batch",
        Alcotest.test_case "empty/invalid" `Quick test_batch_empty_and_invalid
        :: Alcotest.test_case "duplicate sources" `Quick test_batch_duplicates
        :: Alcotest.test_case "batches cover" `Quick test_batches_cover
        :: q
             [
               prop_batch_matches_scalar;
               prop_batch_bounded_matches_scalar;
               prop_all_distances_matches_scalar;
             ] );
      ( "stretch",
        Alcotest.test_case "spanner pair" `Quick test_stretch_spanner_pair
        :: Alcotest.test_case "disconnected" `Quick test_exact_disconnected_early_exit
        :: q
             [
               prop_exact_matches_reference;
               prop_exact_bounded_matches_reference;
               prop_violations_consistent;
               prop_sampled_pairs_snapshot_invariant;
             ] );
      ( "signalling",
        [
          Alcotest.test_case "eccentricity" `Quick test_eccentricity_signals;
          Alcotest.test_case "diameter" `Quick test_diameter_signals;
        ] );
      ( "parallel",
        Alcotest.test_case "early exit" `Quick test_saturating_early_exit
        :: q [ prop_saturating_matches_max ] );
      ("scratch", [ Alcotest.test_case "resizes" `Quick test_scratch_resizes ]);
      ( "unsafe-oracles",
        Alcotest.test_case "degenerate inputs" `Quick test_unsafe_degenerate_inputs
        :: q [ prop_batch_matches_oracle; prop_bitmat_matches_oracle ] );
    ]
