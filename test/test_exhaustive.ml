(* Exhaustive mechanical verification of the Lemma 18 / Lemma 1 claims on
   gadget-sized instances: instead of trusting one extremal construction,
   enumerate every subset of edges, keep the valid 3-spanners, and compute
   exact minimum congestions by branch-and-bound. *)

let check = Alcotest.check

(* ---- Brute primitives ---- *)

let test_bounded_paths_cycle () =
  let g = Generators.cycle 6 in
  (* between antipodes of C6: two simple paths of length 3 *)
  let paths = Brute.bounded_paths g ~src:0 ~dst:3 ~max_len:3 in
  check Alcotest.int "two geodesics" 2 (List.length paths);
  let all = Brute.bounded_paths g ~src:0 ~dst:3 ~max_len:5 in
  check Alcotest.int "still two (longer would repeat nodes)" 2 (List.length all);
  let short = Brute.bounded_paths g ~src:0 ~dst:3 ~max_len:2 in
  check Alcotest.int "none within 2" 0 (List.length short)

let test_bounded_paths_complete () =
  let g = Generators.complete 5 in
  (* length <= 2 paths from 0 to 1: direct + 3 via intermediates *)
  let paths = Brute.bounded_paths g ~src:0 ~dst:1 ~max_len:2 in
  check Alcotest.int "1 + 3 paths" 4 (List.length paths)

let test_min_congestion_simple () =
  let g = Generators.cycle 4 in
  let problem = [| { Routing.src = 0; dst = 2 }; { Routing.src = 1; dst = 3 } |] in
  (match Brute.min_congestion g problem ~max_len:2 with
  | None -> Alcotest.fail "expected routing"
  | Some (c, routing) ->
      check Alcotest.int "crossing pairs force 2" 2 c;
      check Alcotest.bool "valid" true (Routing.is_valid g problem routing));
  match Brute.min_congestion g [| { Routing.src = 0; dst = 2 } |] ~max_len:1 with
  | None -> ()
  | Some _ -> Alcotest.fail "no length-1 path exists"

let test_min_congestion_matches_copt_exact () =
  (* Against the independent shortest-path-only optimizer: when restricted to
     max_len = shortest distance, the two must agree. *)
  for seed = 1 to 6 do
    let rng = Prng.create seed in
    let g = Generators.erdos_renyi rng 10 0.4 in
    if Connectivity.is_connected g then begin
      let c = Csr.snapshot g in
      let problem = Problems.random_pairs rng g ~k:4 in
      let diam = Bfs.diameter_sampled c (Prng.create 1) ~samples:10 in
      let all_shortest_equal =
        Array.for_all
          (fun { Routing.src; dst } -> Bfs.distance c src dst >= 0)
          problem
      in
      if all_shortest_equal then begin
        match Congestion_opt.exact ~max_paths:500 c problem with
        | None -> ()
        | Some (e1, _) -> (
            (* brute over ALL bounded paths can only do better or equal when
               given more slack, and must match when max_len = per-pair
               shortest... use diam to allow everything: brute <= exact *)
            match Brute.min_congestion g problem ~max_len:diam with
            | None -> Alcotest.fail "brute found nothing"
            | Some (e2, _) ->
                check Alcotest.bool
                  (Printf.sprintf "brute %d <= shortest-only %d" e2 e1)
                  true (e2 <= e1))
      end
    end
  done

(* ---- exhaustive Lemma 18 ---- *)

let test_all_three_spanners_max_removal_is_k () =
  (* Lemma 18's structural claim: at most k edges can be removed. *)
  List.iter
    (fun k ->
      let t = Ray_line.make k in
      let spanners = Brute.all_three_spanners t.Ray_line.graph in
      let max_removed =
        List.fold_left (fun acc (_, removed) -> max acc (Array.length removed)) 0 spanners
      in
      check Alcotest.int (Printf.sprintf "max removable = k (k=%d)" k) k max_removed;
      (* and the extremal spanner is among them *)
      let _, extremal_removed = Ray_line.extremal_spanner t in
      check Alcotest.int "extremal removes k" k (Array.length extremal_removed))
    [ 1; 2; 3 ]

let test_lemma18_congestion_all_spanners () =
  (* For EVERY valid 3-spanner of the gadget, verified exactly:

     (i)   the adversarial routing of the removed *line* edges E1 has exact
           minimum congestion >= |E1| in H (all substitutes cross s);
     (ii)  the number of removed *ray* edges never exceeds ceil((k+1)/2);
     (iii) hence any maximal spanner (e = k removed edges, the Theorem 4
           regime) has |E1| >= k - ceil((k+1)/2) = Omega(k) forced
           congestion.

     Errata found by this enumeration (see DESIGN.md): the paper's
     per-instance bound beta >= x/4 fails at small k — e.g. for k = 2 the
     removals {line of f1, ray r2} give x = 3 with beta = 1/2, and the
     rays-only removal {r0, r2} is a maximal-size spanner with no forced
     congestion at all.  The Omega(n^{1/6}) of Theorem 4 survives with a
     degraded constant via (iii). *)
  List.iter
    (fun k ->
      let t = Ray_line.make k in
      let g = t.Ray_line.graph in
      let n = Graph.n g in
      let line_edge (u, v) = u <> t.Ray_line.s && v <> t.Ray_line.s in
      let max_rays = (k + 2) / 2 in
      let spanners = Brute.all_three_spanners g in
      List.iter
        (fun (h, removed) ->
          let e1 = Array.of_list (List.filter line_edge (Array.to_list removed)) in
          let rays_removed = Array.length removed - Array.length e1 in
          check Alcotest.bool
            (Printf.sprintf "(ii) rays removed %d <= %d (k=%d)" rays_removed max_rays k)
            true (rays_removed <= max_rays);
          if Array.length removed = k then
            check Alcotest.bool
              (Printf.sprintf "(iii) maximal spanner: |E1| = %d >= %d" (Array.length e1)
                 (k - max_rays))
              true
              (Array.length e1 >= k - max_rays);
          if Array.length e1 > 0 then begin
            let problem = Routing.problem_of_edges e1 in
            let in_g = Array.map (fun (u, v) -> [| u; v |]) e1 in
            check Alcotest.bool "C_G <= 2" true (Routing.congestion ~n in_g <= 2);
            match Brute.min_congestion h problem ~max_len:(min n ((2 * k) + 2)) with
            | None -> Alcotest.fail "3-spanner must route its removed edges"
            | Some (c_h, _) ->
                check Alcotest.bool
                  (Printf.sprintf "(i) C_H %d >= |E1| = %d (k=%d)" c_h (Array.length e1) k)
                  true
                  (c_h >= Array.length e1)
          end)
        spanners)
    [ 2; 3 ]

let test_lemma18_no_three_consecutive_rays () =
  (* Structural sub-claim used in the proof: no valid 3-spanner removes
     three consecutive rays. *)
  let k = 3 in
  let t = Ray_line.make k in
  let spanners = Brute.all_three_spanners t.Ray_line.graph in
  List.iter
    (fun (h, _) ->
      let consecutive_missing = ref 0 in
      let worst = ref 0 in
      for i = 0 to k do
        if not (Graph.mem_edge h t.Ray_line.s (Ray_line.a t ((2 * i) + 1))) then begin
          incr consecutive_missing;
          worst := max !worst !consecutive_missing
        end
        else consecutive_missing := 0
      done;
      check Alcotest.bool "at most 2 consecutive rays removed" true (!worst <= 2))
    spanners

(* ---- exhaustive Lemma 1 (DC -> both stretches) on a small instance ---- *)

let test_lemma1_small_instance () =
  (* Take Algorithm 1's spanner of a small dense graph; verify on ALL
     single-edge routing problems that the substitute stretches hold with
     beta = max congestion over matchings (Lemma 1's direction). *)
  let g = Generators.random_regular (Prng.create 3) 24 10 in
  let t = Regular_dc.build (Prng.create 4) g in
  let h = t.Regular_dc.spanner in
  check Alcotest.bool "3-spanner" true (Stretch.is_three_spanner g h);
  (* all-edges problem (Lemma 1's R): every edge individually routable <= 3 *)
  let dc = Regular_dc.to_dc t g in
  let rng = Prng.create 5 in
  Graph.iter_edges g (fun u v ->
      let paths = dc.Dc.route_matching rng [| (u, v) |] in
      check Alcotest.bool "edge substitute valid" true
        (Routing.is_valid h [| { Routing.src = u; dst = v } |] paths);
      check Alcotest.bool "edge substitute <= 3" true (Routing.length paths.(0) <= 3))

let () =
  Alcotest.run "exhaustive"
    [
      ( "brute",
        [
          Alcotest.test_case "bounded paths cycle" `Quick test_bounded_paths_cycle;
          Alcotest.test_case "bounded paths complete" `Quick test_bounded_paths_complete;
          Alcotest.test_case "min congestion basics" `Quick test_min_congestion_simple;
          Alcotest.test_case "consistent with shortest-path exact" `Quick
            test_min_congestion_matches_copt_exact;
        ] );
      ( "lemma18",
        [
          Alcotest.test_case "max removal = k" `Slow test_all_three_spanners_max_removal_is_k;
          Alcotest.test_case "congestion over ALL spanners" `Slow
            test_lemma18_congestion_all_spanners;
          Alcotest.test_case "no 3 consecutive rays" `Slow test_lemma18_no_three_consecutive_rays;
        ] );
      ("lemma1", [ Alcotest.test_case "small instance" `Quick test_lemma1_small_instance ]);
    ]
