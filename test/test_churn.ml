(* Churn machinery tests: seeded event generators, the incremental
   certification seam (qcheck oracle against the full sweep, plus the
   strictly-fewer-groups locality guarantee), and the soak engine's
   certified-after-every-batch + same-seed-byte-identical contracts. *)

let check = Alcotest.check

let no_loads g = Array.make (Graph.n g) 0

(* ---- generators ---- *)

let test_gen_deterministic () =
  let g = Generators.random_regular (Prng.create 5) 60 8 in
  let h = Classic.greedy g ~k:2 in
  let mg = Graph.m g and mh = Graph.m h in
  List.iter
    (fun kind ->
      let ev seed =
        Churn_gen.generate kind (Prng.create seed) ~g ~h ~loads:(no_loads g) ~count:40
      in
      check Alcotest.bool
        (Churn_gen.kind_name kind ^ " same seed same events")
        true (ev 3 = ev 3);
      check Alcotest.bool
        (Churn_gen.kind_name kind ^ " inputs not mutated")
        true
        (Graph.m g = mg && Graph.m h = mh))
    [ Churn_gen.Uniform; Churn_gen.Adversarial; Churn_gen.Targeted ]

let test_gen_events_applicable () =
  (* drawn against scratch state: every event changes a graph when applied *)
  let g = Generators.random_regular (Prng.create 6) 50 6 in
  let h = Classic.greedy g ~k:2 in
  let events =
    Churn_gen.generate Churn_gen.Uniform (Prng.create 9) ~g ~h ~loads:(no_loads g) ~count:60
  in
  let ap = Churn_gen.apply ~g ~h events in
  check Alcotest.int "all events applied"
    (List.length events)
    (ap.Churn_gen.ap_added + ap.Churn_gen.ap_deleted + ap.Churn_gen.ap_isolated)

let test_gen_kind_names () =
  List.iter
    (fun kind ->
      check Alcotest.bool "round trip" true
        (Churn_gen.kind_of_string (Churn_gen.kind_name kind) = Some kind))
    [ Churn_gen.Uniform; Churn_gen.Adversarial; Churn_gen.Targeted ];
  check Alcotest.bool "unknown rejected" true (Churn_gen.kind_of_string "cosmic" = None)

let test_apply_touched_includes_isolate_neighbors () =
  let g = Generators.cycle 6 in
  let h = Graph.copy g in
  let ap = Churn_gen.apply ~g ~h [ Churn_gen.Isolate 2 ] in
  check
    Alcotest.(list int)
    "node and former neighbours touched" [ 1; 2; 3 ]
    (Array.to_list ap.Churn_gen.ap_touched);
  check Alcotest.int "isolations counted" 1 ap.Churn_gen.ap_isolated;
  check Alcotest.(list int) "edges cut" [] (Graph.neighbors g 2)

let test_apply_rejects_bad_events () =
  let expects_invalid name f =
    check Alcotest.bool name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  let g () = Generators.cycle 4 in
  expects_invalid "out of range" (fun () ->
      Churn_gen.apply ~g:(g ()) ~h:(g ()) [ Churn_gen.Isolate 9 ]);
  expects_invalid "self loop" (fun () ->
      Churn_gen.apply ~g:(g ()) ~h:(g ()) [ Churn_gen.Add_edge (1, 1) ])

let test_to_fault_plan_projection () =
  let network = Generators.cycle 5 in
  let plan =
    Churn_gen.to_fault_plan ~round:2 ~network
      [
        Churn_gen.Add_edge (0, 2);
        (* in the network: becomes an edge fault *)
        Churn_gen.Del_edge (1, 2);
        (* not a network link: no fault, traffic cannot lose it *)
        Churn_gen.Del_edge (0, 3);
        Churn_gen.Isolate 4;
      ]
  in
  check Alcotest.int "edge faults" 1 (Fault_plan.edge_faults plan);
  check Alcotest.int "node faults" 1 (Fault_plan.node_faults plan);
  check Alcotest.int "strikes at round 2" 2 (Fault_plan.last_round plan)

(* ---- incremental certification ---- *)

let test_cert_create_matches_full () =
  let g = Generators.random_regular (Prng.create 7) 60 8 in
  let h = Classic.greedy g ~k:2 in
  let cert = Stretch.cert_create g h ~bound:3 in
  check Alcotest.bool "violations match" true
    (Stretch.cert_violations cert = Stretch.violations g h ~bound:3);
  check Alcotest.bool "stretch matches" true
    (Stretch.cert_stretch_bound cert = Stretch.exact_bounded g h ~bound:3);
  check Alcotest.int "bound recorded" 3 (Stretch.cert_bound cert)

let test_cert_create_rejects () =
  let expects_invalid name f =
    check Alcotest.bool name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  expects_invalid "node counts differ" (fun () ->
      Stretch.cert_create (Generators.cycle 5) (Generators.cycle 4) ~bound:3);
  expects_invalid "bound < 1" (fun () ->
      Stretch.cert_create (Generators.cycle 5) (Generators.cycle 5) ~bound:0);
  expects_invalid "touched out of range" (fun () ->
      let g = Generators.cycle 5 in
      let cert = Stretch.cert_create g g ~bound:3 in
      Stretch.violations_incremental cert g g ~touched:[| 7 |])

let test_incremental_sweeps_strictly_fewer () =
  (* large-diameter torus, localized single-edge churn: the dirty 3-ball
     covers a corner of the graph, so the incremental certifier must skip
     most source groups while agreeing with the full sweep *)
  let g = Generators.torus 12 12 in
  let h = Graph.copy g in
  (* scatter removed edges so many source groups exist *)
  let i = ref 0 in
  Graph.iter_edges g (fun u v ->
      incr i;
      if !i mod 5 = 0 then ignore (Graph.remove_edge h u v));
  let cert = Stretch.cert_create g h ~bound:3 in
  let ap = Churn_gen.apply ~g ~h [ Churn_gen.Del_edge (0, 1) ] in
  let r = Stretch.violations_incremental cert g h ~touched:ap.Churn_gen.ap_touched in
  check Alcotest.bool "many groups" true (r.Stretch.inc_groups > 20);
  check Alcotest.bool
    (Printf.sprintf "swept %d strictly fewer than %d groups" r.Stretch.inc_swept
       r.Stretch.inc_groups)
    true
    (r.Stretch.inc_swept < r.Stretch.inc_groups);
  check Alcotest.bool "agrees with full sweep" true
    (r.Stretch.inc_violations = Stretch.violations g h ~bound:3)

let prop_incremental_oracle =
  QCheck.Test.make ~name:"violations_incremental == full violations under churn" ~count:25
    QCheck.(pair small_int (int_range 1 5))
    (fun (seed, nbatches) ->
      let g = Generators.random_regular (Prng.create 17) 48 6 in
      let h = Classic.greedy g ~k:2 in
      let bound = 3 in
      let cert = Stretch.cert_create g h ~bound in
      let rng = Prng.create (100 + seed) in
      let ok = ref (Stretch.cert_violations cert = Stretch.violations g h ~bound) in
      for _ = 1 to nbatches do
        let events =
          Churn_gen.generate Churn_gen.Uniform rng ~g ~h ~loads:(no_loads g) ~count:6
        in
        let ap = Churn_gen.apply ~g ~h events in
        let r = Stretch.violations_incremental cert g h ~touched:ap.Churn_gen.ap_touched in
        ok :=
          !ok
          && r.Stretch.inc_violations = Stretch.violations g h ~bound
          && r.Stretch.inc_swept <= r.Stretch.inc_groups
          && Stretch.cert_stretch_bound cert = Stretch.exact_bounded g h ~bound
      done;
      !ok)

(* ---- soak engine ---- *)

let soak_inputs seed =
  let g = Generators.random_regular (Prng.create seed) 100 12 in
  let h = Classic.greedy g ~k:2 in
  (g, h)

let test_soak_certified_every_batch () =
  (* the acceptance run: >= 1000 churn events at quick scale, certified
     (dist_stretch <= alpha) after every batch *)
  let g, h = soak_inputs 21 in
  let config = { Soak.default with events = 1000; batch = 50; seed = 77 } in
  let r = Soak.run config ~graph:g ~spanner:h in
  check Alcotest.int "1000 events generated" 1000 r.Soak.r_events_generated;
  check Alcotest.int "every batch certified" r.Soak.r_batch_count r.Soak.r_certified_batches;
  List.iter
    (fun b ->
      check Alcotest.bool
        (Printf.sprintf "batch %d certified with stretch <= alpha" b.Soak.bs_round)
        true
        (b.Soak.bs_certified && b.Soak.bs_dist_stretch <= config.Soak.alpha))
    r.Soak.r_batches;
  check Alcotest.bool "final full audit certified" true r.Soak.r_final_certified;
  check Alcotest.bool "inputs not mutated" true
    (Graph.m g = 600 && Graph.is_subgraph h ~of_:g)

let test_soak_deterministic () =
  let run () =
    let g, h = soak_inputs 22 in
    Soak.run { Soak.default with events = 300; batch = 30; seed = 5 } ~graph:g ~spanner:h
  in
  let a = run () and b = run () in
  check Alcotest.bool "same-seed reports identical" true (a = b);
  check Alcotest.bool "same-seed json byte-identical" true (Soak.to_json a = Soak.to_json b)

let test_soak_traffic_accounting () =
  let g, h = soak_inputs 23 in
  let config = { Soak.default with events = 200; batch = 20; seed = 9; requests = 8 } in
  let r = Soak.run config ~graph:g ~spanner:h in
  check Alcotest.int "every request resolved"
    (r.Soak.r_batch_count * config.Soak.requests)
    (r.Soak.r_delivered + r.Soak.r_dropped);
  List.iter
    (fun b ->
      check Alcotest.bool "traffic stretch >= 1" true (b.Soak.bs_traffic_stretch >= 1.0))
    r.Soak.r_batches

let test_soak_rejects () =
  let expects_invalid name f =
    check Alcotest.bool name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  let g, h = soak_inputs 24 in
  expects_invalid "events < 1" (fun () ->
      Soak.run { Soak.default with events = 0 } ~graph:g ~spanner:h);
  expects_invalid "batch < 1" (fun () ->
      Soak.run { Soak.default with batch = 0 } ~graph:g ~spanner:h);
  expects_invalid "non-subgraph spanner" (fun () ->
      Soak.run Soak.default ~graph:h ~spanner:g);
  expects_invalid "node counts differ" (fun () ->
      Soak.run Soak.default ~graph:g ~spanner:(Generators.cycle 5))

let test_soak_json_shape () =
  let g, h = soak_inputs 25 in
  let r = Soak.run { Soak.default with events = 100; batch = 25 } ~graph:g ~spanner:h in
  let js = Soak.to_json r in
  List.iter
    (fun key ->
      let re = Printf.sprintf "\"%s\"" key in
      let rec find i =
        i + String.length re <= String.length js
        && (String.sub js i (String.length re) = re || find (i + 1))
      in
      check Alcotest.bool (Printf.sprintf "json has %S" key) true (find 0))
    [
      "dcs-soak/1"; "plan"; "seed"; "alpha"; "totals"; "swept"; "groups"; "batches";
      "dist_stretch"; "certified"; "traffic_stretch";
    ]

let prop_soak_deterministic =
  QCheck.Test.make ~name:"soak reports are pure functions of the seed" ~count:5
    QCheck.small_int
    (fun seed ->
      let run () =
        let g = Generators.torus 8 8 in
        let h = Classic.greedy g ~k:2 in
        Soak.run
          { Soak.default with events = 60; batch = 10; seed; requests = 4 }
          ~graph:g ~spanner:h
      in
      Soak.to_json (run ()) = Soak.to_json (run ()))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "churn"
    [
      ( "generators",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "events applicable" `Quick test_gen_events_applicable;
          Alcotest.test_case "kind names" `Quick test_gen_kind_names;
          Alcotest.test_case "touched includes neighbours" `Quick
            test_apply_touched_includes_isolate_neighbors;
          Alcotest.test_case "rejects bad events" `Quick test_apply_rejects_bad_events;
          Alcotest.test_case "fault plan projection" `Quick test_to_fault_plan_projection;
        ] );
      ( "incremental-cert",
        [
          Alcotest.test_case "create matches full" `Quick test_cert_create_matches_full;
          Alcotest.test_case "rejects invalid" `Quick test_cert_create_rejects;
          Alcotest.test_case "sweeps strictly fewer" `Quick
            test_incremental_sweeps_strictly_fewer;
        ] );
      ( "soak",
        [
          Alcotest.test_case "certified every batch (1000 events)" `Quick
            test_soak_certified_every_batch;
          Alcotest.test_case "deterministic" `Quick test_soak_deterministic;
          Alcotest.test_case "traffic accounting" `Quick test_soak_traffic_accounting;
          Alcotest.test_case "rejects invalid" `Quick test_soak_rejects;
          Alcotest.test_case "json shape" `Quick test_soak_json_shape;
        ] );
      ("qcheck", q [ prop_incremental_oracle; prop_soak_deterministic ]);
    ]
