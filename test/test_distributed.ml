(* Tests for dcs_distributed: the LOCAL simulator semantics and the
   Corollary 3 distributed Algorithm 1 (equality with the centralized
   reference under shared randomness). *)

let check = Alcotest.check

(* ---- LOCAL simulator ---- *)

let test_local_no_messages_round0 () =
  (* Inboxes are empty in round 0. *)
  let g = Generators.cycle 5 in
  let saw_msg = ref false in
  let step ~round ~me:_ ~neighbors:_ state inbox =
    if round = 0 && inbox <> [] then saw_msg := true;
    (state, [])
  in
  let _, stats = Local_model.run g ~rounds:2 ~init:(fun _ -> ()) ~step in
  check Alcotest.bool "no round-0 inbox" false !saw_msg;
  check Alcotest.int "rounds" 2 stats.Local_model.rounds;
  check Alcotest.int "messages" 0 stats.Local_model.messages

let test_local_delivery () =
  (* Every node sends its id to all neighbors; next round each node must
     receive exactly its neighbor set. *)
  let g = Generators.torus 4 4 in
  let received = Array.make 16 [] in
  let step ~round ~me ~neighbors state inbox =
    if round = 0 then (state, Array.to_list (Array.map (fun v -> (v, me)) neighbors))
    else begin
      if round = 1 then received.(me) <- List.map fst inbox;
      (state, [])
    end
  in
  let _, stats = Local_model.run g ~rounds:2 ~init:(fun _ -> ()) ~step in
  check Alcotest.int "messages = 2m" (2 * Graph.m g) stats.Local_model.messages;
  for v = 0 to 15 do
    check Alcotest.(list int) "inbox = neighbors"
      (List.sort compare (Graph.neighbors g v))
      (List.sort compare received.(v))
  done

let test_local_sender_matches_payload () =
  let g = Generators.path 3 in
  let ok = ref true in
  let step ~round ~me ~neighbors state inbox =
    List.iter (fun (src, payload) -> if src <> payload then ok := false) inbox;
    if round = 0 then (state, Array.to_list (Array.map (fun v -> (v, me)) neighbors))
    else (state, [])
  in
  ignore (Local_model.run g ~rounds:3 ~init:(fun _ -> ()) ~step);
  check Alcotest.bool "senders faithful" true !ok

let test_local_rejects_non_neighbor () =
  let g = Generators.path 4 in
  let step ~round:_ ~me ~neighbors:_ state _ =
    if me = 0 then (state, [ (3, ()) ]) else (state, [])
  in
  Alcotest.check_raises "non-neighbor send"
    (Invalid_argument "Local_model.run: message to a non-neighbor") (fun () ->
      ignore (Local_model.run g ~rounds:1 ~init:(fun _ -> ()) ~step))

let test_local_bfs_protocol () =
  (* A tiny distributed BFS: node 0 floods a counter; states converge to
     BFS distances, validating synchronous-round semantics. *)
  let g = Generators.torus 4 4 in
  let c = Csr.snapshot g in
  let expected = Bfs.distances c 0 in
  let diameter = 4 in
  let step ~round ~me ~neighbors state inbox =
    let best =
      List.fold_left (fun acc (_, d) -> min acc (d + 1)) state inbox
    in
    let state' = if me = 0 then 0 else best in
    if round <= diameter then (state', Array.to_list (Array.map (fun v -> (v, state')) neighbors))
    else (state', [])
  in
  let states, _ =
    Local_model.run g ~rounds:(diameter + 2) ~init:(fun v -> if v = 0 then 0 else max_int / 2) ~step
  in
  Array.iteri
    (fun v d -> check Alcotest.int (Printf.sprintf "bfs dist %d" v) expected.(v) d)
    states

(* ---- Corollary 3 ---- *)

let graphs_for_cor3 =
  [
    ("regular-60-20", fun () -> Generators.random_regular (Prng.create 1) 60 20);
    ("regular-80-24", fun () -> Generators.random_regular (Prng.create 2) 80 24);
    ("torus-8x8", fun () -> Generators.torus 8 8);
    ("complete-30", fun () -> Generators.complete 30);
    ("margulis-7", fun () -> Generators.margulis 7);
  ]

let graphs_equal a b =
  Graph.n a = Graph.n b && Graph.m a = Graph.m b && Graph.is_subgraph a ~of_:b

let test_cor3_matches_reference () =
  List.iter
    (fun (name, mk) ->
      let g = mk () in
      List.iter
        (fun seed ->
          let dist = Dist_spanner.run ~seed g in
          let ref_h = Dist_spanner.reference ~seed g in
          check Alcotest.bool
            (Printf.sprintf "%s seed=%d distributed = centralized" name seed)
            true
            (graphs_equal dist.Dist_spanner.spanner ref_h))
        [ 1; 7; 42 ])
    graphs_for_cor3

let test_cor3_constant_rounds () =
  let g = Generators.random_regular (Prng.create 3) 100 28 in
  let r = Dist_spanner.run ~seed:5 g in
  check Alcotest.int "constant rounds" 6 r.Dist_spanner.rounds;
  check Alcotest.bool "messages sent" true (r.Dist_spanner.messages > 0);
  check Alcotest.bool "entries counted" true (r.Dist_spanner.entries > 0)

let test_cor3_spanner_properties () =
  let g = Generators.random_regular (Prng.create 4) 90 30 in
  let r = Dist_spanner.run ~seed:11 g in
  check Alcotest.bool "subgraph" true (Graph.is_subgraph r.Dist_spanner.spanner ~of_:g);
  check Alcotest.bool "3-distance spanner" true (Stretch.is_three_spanner g r.Dist_spanner.spanner)

let test_cor3_custom_thresholds () =
  let g = Generators.random_regular (Prng.create 5) 60 20 in
  let r = Dist_spanner.run ~thresholds:(2, 4) ~seed:9 g in
  let ref_h = Dist_spanner.reference ~thresholds:(2, 4) ~seed:9 g in
  check Alcotest.bool "custom thresholds agree" true (graphs_equal r.Dist_spanner.spanner ref_h)

let test_cor3_deterministic_in_seed () =
  let g = Generators.random_regular (Prng.create 6) 60 20 in
  let a = Dist_spanner.run ~seed:21 g in
  let b = Dist_spanner.run ~seed:21 g in
  check Alcotest.bool "same seed, same spanner" true
    (graphs_equal a.Dist_spanner.spanner b.Dist_spanner.spanner);
  let c = Dist_spanner.run ~seed:22 g in
  check Alcotest.bool "different seed, (almost surely) different spanner" true
    (not (graphs_equal a.Dist_spanner.spanner c.Dist_spanner.spanner))

(* ---- qcheck ---- *)

let prop_cor3_equality =
  QCheck.Test.make ~name:"distributed = centralized on random regular graphs" ~count:10
    QCheck.(pair small_int (int_range 30 70))
    (fun (seed, n) ->
      let d = max 6 (n / 4) in
      let n = if n * d mod 2 = 1 then n + 1 else n in
      let g = Generators.random_regular (Prng.create (seed + 77)) n d in
      let dist = Dist_spanner.run ~seed g in
      let ref_h = Dist_spanner.reference ~seed g in
      graphs_equal dist.Dist_spanner.spanner ref_h)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "distributed"
    [
      ( "local-model",
        [
          Alcotest.test_case "empty round-0 inbox" `Quick test_local_no_messages_round0;
          Alcotest.test_case "delivery" `Quick test_local_delivery;
          Alcotest.test_case "sender ids" `Quick test_local_sender_matches_payload;
          Alcotest.test_case "non-neighbor rejected" `Quick test_local_rejects_non_neighbor;
          Alcotest.test_case "distributed BFS" `Quick test_local_bfs_protocol;
        ] );
      ( "corollary3",
        [
          Alcotest.test_case "matches reference" `Quick test_cor3_matches_reference;
          Alcotest.test_case "constant rounds" `Quick test_cor3_constant_rounds;
          Alcotest.test_case "spanner properties" `Quick test_cor3_spanner_properties;
          Alcotest.test_case "custom thresholds" `Quick test_cor3_custom_thresholds;
          Alcotest.test_case "seed determinism" `Quick test_cor3_deterministic_in_seed;
        ] );
      ("properties", q [ prop_cor3_equality ]);
    ]
