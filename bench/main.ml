(* Benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md §4 for the experiment index) and runs Bechamel timing
   benches for the constructions.

   Usage:  dune exec bench/main.exe [-- block ... [flags]]
   Blocks: table1 figures lemmas distributed ablations extensions fault soak
   engine weighted timing kernels obs; all (default all).
   Flags:  --write-baseline FILE   combined stable-metric baseline of this run
           --compare FILE          judge this run against a baseline; exit 1 on
                                   regression, 2 on a malformed/unmatched baseline
           --tolerance PCT         band for --compare (default 2.0)
   Every block also writes BENCH_<block>.json under DCS_BENCH_DIR when set.
   Set DCS_BENCH_SCALE=quick for smaller sweeps (CI), =full for larger. *)

let scale =
  match Sys.getenv_opt "DCS_BENCH_SCALE" with
  | Some "quick" -> `Quick
  | Some "full" -> `Full
  | _ -> `Standard

let scale_name = match scale with `Quick -> "quick" | `Standard -> "standard" | `Full -> "full"

let pick ~quick ~standard ~full =
  match scale with `Quick -> quick | `Standard -> standard | `Full -> full

let fmt = Stats.fmt_float

let even_degree n d = if n * d mod 2 = 1 then d + 1 else d

let regular_expander seed n d = Generators.random_regular (Prng.create seed) n (even_degree n d)

(* ------------------------------------------------------------------ *)
(* Table 1, row 1 — Theorem 2: expander DC-spanner                     *)
(* ------------------------------------------------------------------ *)

let table1_theorem2 br =
  Report.subsection "table1/theorem2  (Table 1 row 1)";
  Printf.printf
    "paper: n^{2/3+eps}-regular expander -> (3, O(log^2 n))-DC-spanner, O(n^{5/3}) edges\n";
  Printf.printf "workload: random maximal edge-matchings (opt C=1) + permutation routing\n\n";
  let ns = pick ~quick:[ 216; 343 ] ~standard:[ 216; 343; 512 ] ~full:[ 216; 343; 512; 729 ] in
  let eps = 0.15 in
  let ctor = Construction.find_exn "theorem2" in
  let table =
    Report.create ~title:"theorem 2 sweep (e = 5/3 for the edge norm)"
      ~columns:("Delta" :: "E[T_w] max" :: Experiment.row_columns)
  in
  let sizes = ref [] in
  List.iter
    (fun n ->
      let d = int_of_float (float_of_int n ** ((2.0 /. 3.0) +. eps)) in
      let g = regular_expander (1000 + n) n d in
      let rng = Prng.create (2000 + n) in
      let dc = Construction.build ctor rng g in
      (* more trials sharpen the per-node expected-load estimate; the
         router's candidate cache makes repeat trials cheap *)
      let row = Experiment.evaluate ~trials:10 rng dc in
      sizes := (n, row.Experiment.m_spanner) :: !sizes;
      Bench_report.add br ~units:"edges"
        (Printf.sprintf "theorem2.m_spanner.n%d" n)
        (float_of_int row.Experiment.m_spanner);
      Report.add_row table
        (string_of_int (Graph.max_degree g)
        :: fmt row.Experiment.matching.Dc.max_mean_node_load
        :: Experiment.row_cells_of ctor row))
    ns;
  if List.length !sizes >= 2 then begin
    let e = Stats.fitted_exponent (Array.of_list !sizes) in
    Bench_report.add br ~units:"exponent" "theorem2.size_exponent" e;
    Report.add_note table (Printf.sprintf "fitted size exponent: %.3f (paper: 5/3 = 1.667)" e)
  end;
  Report.add_note table "shape checks: m(H)/n^{5/3} flat; dist = 3; match-cong = O(log n);";
  Report.add_note table "E[T_w] max is the worst per-node load averaged over trials -- the";
  Report.add_note table "'expected node congestion 1+o(1)' claim; lam(G) certifies the premise.";
  Report.print table

(* ------------------------------------------------------------------ *)
(* Table 1, row 2 — [5]-substitute: O(n) edges inside a dense expander *)
(* ------------------------------------------------------------------ *)

let table1_becchetti br =
  Report.subsection "table1/becchetti  (Table 1 row 2, [5]-substitute)";
  Printf.printf
    "paper: Delta = Omega(n) expander -> (O(log n), O(log^3 n))-DC-spanner, O(n) edges\n\n";
  let ns = pick ~quick:[ 200 ] ~standard:[ 200; 400 ] ~full:[ 200; 400; 800 ] in
  let ctor = Construction.find_exn "bounded-degree" in
  let table =
    Report.create ~title:"bounded-degree sparsifier sweep (e = 1 for the edge norm)"
      ~columns:("Delta" :: Experiment.row_columns)
  in
  List.iter
    (fun n ->
      let g = regular_expander (3000 + n) n (n / 4) in
      let rng = Prng.create (4000 + n) in
      let dc = Construction.build ctor rng g in
      let row = Experiment.evaluate ~trials:3 rng dc in
      Bench_report.add br ~units:"edges"
        (Printf.sprintf "becchetti.m_spanner.n%d" n)
        (float_of_int row.Experiment.m_spanner);
      Report.add_row table
        (string_of_int (Graph.max_degree g) :: Experiment.row_cells_of ctor row))
    ns;
  Report.add_note table "shape checks: m(H)/n constant; dist = O(log n); lam(H)/deg(H) < 1";
  Report.add_note table "certifies the sparsifier is still an expander (DESIGN.md 3.3).";
  Report.print table

(* ------------------------------------------------------------------ *)
(* Table 1, row 3 — [16]-substitute: O(n log n) spectral sparsifier    *)
(* ------------------------------------------------------------------ *)

let table1_koutis_xu br =
  Report.subsection "table1/koutis_xu  (Table 1 row 3, [16]-substitute)";
  Printf.printf
    "paper: any expander -> (O(log n), O(log^4 n))-DC-spanner, O(n log n) edges\n\n";
  let ns = pick ~quick:[ 200 ] ~standard:[ 200; 400 ] ~full:[ 200; 400; 800 ] in
  let ctor = Construction.find_exn "spectral" in
  let table =
    Report.create ~title:"spectral sparsifier sweep"
      ~columns:("Delta" :: "m(H)/(n ln n)" :: Experiment.row_columns)
  in
  List.iter
    (fun n ->
      let g = regular_expander (5000 + n) n (n / 4) in
      let rng = Prng.create (6000 + n) in
      let dc = Construction.build ctor rng g in
      let row = Experiment.evaluate ~trials:3 rng dc in
      let per_nlogn =
        float_of_int row.Experiment.m_spanner /. (float_of_int n *. log (float_of_int n))
      in
      Bench_report.add br ~units:"edges"
        (Printf.sprintf "koutis_xu.m_spanner.n%d" n)
        (float_of_int row.Experiment.m_spanner);
      Report.add_row table
        (string_of_int (Graph.max_degree g)
        :: fmt per_nlogn
        :: Experiment.row_cells_of ctor row))
    ns;
  Report.add_note table
    "uniform sampling at Theta(log n / Delta) stands in for effective-resistance";
  Report.add_note table "sampling; on regular expanders the two are within constant factors.";
  Report.print table

(* ------------------------------------------------------------------ *)
(* Table 1, row 4 — Theorem 3 / Algorithm 1                            *)
(* ------------------------------------------------------------------ *)

let table1_theorem3 br =
  Report.subsection "table1/theorem3  (Table 1 row 4, Algorithm 1)";
  Printf.printf
    "paper: Delta-regular, Delta >= n^{2/3} -> (3, O(sqrt(Delta) log n))-DC-spanner,\n";
  Printf.printf "       O(n^{5/3} log^2 n) edges; matchings route with C <= 1 + 2 sqrt(Delta)\n\n";
  let ns = pick ~quick:[ 216; 343 ] ~standard:[ 216; 343; 512 ] ~full:[ 216; 343; 512; 729 ] in
  let ctor = Construction.find_exn "algorithm1" in
  let table =
    Report.create ~title:"algorithm 1 sweep (e = 5/3)"
      ~columns:
        ([ "Delta"; "sqrt(D)"; "m(G')"; "reinserted"; "repaired"; "cong/sqrt(D)" ]
        @ Experiment.row_columns)
  in
  let sizes = ref [] in
  List.iter
    (fun n ->
      let d = int_of_float (float_of_int n ** 0.7) in
      let g = regular_expander (7000 + n) n d in
      let rng = Prng.create (8000 + n) in
      let t = Regular_dc.build rng g in
      let dc = Regular_dc.to_dc t g in
      let row = Experiment.evaluate ~trials:3 rng dc in
      sizes := (n, row.Experiment.m_spanner) :: !sizes;
      Bench_report.add br ~units:"edges"
        (Printf.sprintf "theorem3.m_spanner.n%d" n)
        (float_of_int row.Experiment.m_spanner);
      let sqrt_d = sqrt (float_of_int t.Regular_dc.delta) in
      Report.add_row table
        ([
           string_of_int t.Regular_dc.delta;
           fmt sqrt_d;
           string_of_int (Graph.m t.Regular_dc.sampled);
           string_of_int t.Regular_dc.reinserted;
           string_of_int t.Regular_dc.repaired;
           fmt (row.Experiment.matching.Dc.mean_congestion /. sqrt_d);
         ]
        @ Experiment.row_cells_of ctor row))
    ns;
  if List.length !sizes >= 2 then
    Report.add_note table
      (Printf.sprintf "fitted size exponent: %.3f (paper: 5/3 = 1.667 up to log factors)"
         (Stats.fitted_exponent (Array.of_list !sizes)));
  Report.add_note table "shape checks: dist = 3 (repair makes it unconditional);";
  Report.add_note table "cong/sqrt(D) bounded by a constant (Lemma 17: C <= 1 + 2 sqrt(D));";
  Report.add_note table "gen-stretch within the O(sqrt(D) log n) envelope via Theorem 1.";
  Report.print table

(* ------------------------------------------------------------------ *)
(* Table 1, row 5 — Theorem 4 lower bound                              *)
(* ------------------------------------------------------------------ *)

let table1_theorem4 br =
  Report.subsection "table1/theorem4  (Table 1 row 5, lower bound)";
  Printf.printf
    "paper: a Theta(n^{1/6})-degree graph where any optimal-size 3-distance spanner\n";
  Printf.printf
    "       has Omega(n^{7/6}) edges and congestion stretch Omega(n^{1/6}); the gadget\n";
  Printf.printf "       guarantee is beta >= x/4 = (2k-1)/4, realized here as exactly k\n\n";
  let cases =
    pick
      ~quick:[ (2, 40, 300) ]
      ~standard:[ (2, 40, 300); (4, 50, 700); (8, 50, 1400) ]
      ~full:[ (2, 40, 300); (4, 50, 700); (8, 50, 1400); (16, 60, 3000) ]
  in
  let table =
    Report.create ~title:"theorem 4 sweep"
      ~columns:
        [
          "k";
          "instances";
          "pool";
          "n";
          "m(G)";
          "m(H)";
          "removed";
          "C_G(R)";
          "C_H(R)";
          "stretch";
          "claim (2k-1)/4";
          "dist";
        ]
  in
  List.iter
    (fun (k, instances, pool) ->
      let rng = Prng.create (9000 + k) in
      let t = Theorem4.make rng ~pool ~instances ~k in
      let g = t.Theorem4.graph in
      let h, removed = Theorem4.optimal_spanner t in
      let n = Graph.n g in
      let worst = ref 0 in
      for i = 0 to instances - 1 do
        worst := max !worst (Routing.congestion ~n (Theorem4.forced_routing t i))
      done;
      let removed_total = Array.fold_left (fun acc r -> acc + Array.length r) 0 removed in
      Bench_report.add br ~units:"load"
        (Printf.sprintf "theorem4.forced_congestion.k%d" k)
        (float_of_int !worst);
      Report.add_row table
        [
          string_of_int k;
          string_of_int instances;
          string_of_int pool;
          string_of_int n;
          string_of_int (Graph.m g);
          string_of_int (Graph.m h);
          string_of_int removed_total;
          "1";
          string_of_int !worst;
          fmt (float_of_int !worst);
          fmt (float_of_int ((2 * k) - 1) /. 4.0);
          string_of_int (Stretch.exact g h);
        ])
    cases;
  Report.add_note table "C_G is 1 (requests are edges); C_H is forced through the special";
  Report.add_note table "nodes: measured stretch k beats the claimed (2k-1)/4 lower bound.";
  Report.print table

let run_table1 br =
  Report.section "TABLE 1 — summary of results (measured)";
  table1_theorem2 br;
  table1_becchetti br;
  table1_koutis_xu br;
  table1_theorem3 br;
  table1_theorem4 br

(* ------------------------------------------------------------------ *)
(* Figure 1 — VFT spanners do not control congestion                   *)
(* ------------------------------------------------------------------ *)

let figures_fig1 br =
  Report.subsection "figures/fig1_vft  (Figure 1)";
  Printf.printf
    "paper: two n/2-cliques + perfect matching; an f-VFT-style 3-spanner keeping\n";
  Printf.printf
    "       f+1 = n^{1/3}+1 matching edges forces Omega(n^{2/3}) congestion on the\n";
  Printf.printf "       perfect-matching problem (optimal congestion 1 in G)\n\n";
  let ns =
    pick ~quick:[ 64; 128 ] ~standard:[ 64; 128; 256; 512 ] ~full:[ 64; 128; 256; 512; 1024 ]
  in
  let table =
    Report.create ~title:"figure 1 sweep"
      ~columns:[ "n"; "kept"; "m(H)"; "dist"; "C_H(R)"; "C/n^{2/3}"; "claim Omega(n^{2/3})" ]
  in
  List.iter
    (fun n ->
      let t = Vft_example.make n in
      let rng = Prng.create (100 + n) in
      let routing = Vft_example.route t rng in
      let c = Routing.congestion ~n:(Graph.n t.Vft_example.graph) routing in
      Bench_report.add br ~units:"load"
        (Printf.sprintf "fig1.congestion.n%d" n)
        (float_of_int c);
      let n23 = float_of_int n ** (2.0 /. 3.0) in
      Report.add_row table
        [
          string_of_int n;
          string_of_int (Array.length t.Vft_example.kept);
          string_of_int (Graph.m t.Vft_example.spanner);
          string_of_int (Stretch.exact t.Vft_example.graph t.Vft_example.spanner);
          string_of_int c;
          fmt (float_of_int c /. n23);
          fmt (n23 /. 2.0);
        ])
    ns;
  Report.add_note table "C/n^{2/3} flat across the sweep = the Omega(n^{2/3}) shape.";
  Report.print table

(* ------------------------------------------------------------------ *)
(* Figure 2 / Lemma 4 — matchings between neighborhoods                *)
(* ------------------------------------------------------------------ *)

let figures_fig2 () =
  Report.subsection "figures/fig2_matching  (Figure 2 / Lemma 4)";
  Printf.printf
    "paper: in a Delta-regular lambda-expander, any two nodes have a matching of\n";
  Printf.printf "       size >= Delta (1 - lambda n / Delta^2) between their neighborhoods\n\n";
  let n = pick ~quick:200 ~standard:400 ~full:700 in
  let table =
    Report.create ~title:(Printf.sprintf "lemma 4 on random regular graphs (n = %d)" n)
      ~columns:
        [ "Delta"; "lambda"; "mixing worst"; "bound"; "min matched"; "mean matched"; "pairs" ]
  in
  List.iter
    (fun d ->
      let g = regular_expander (200 + d) n d in
      let gc = Csr.snapshot g in
      let lam = Spectral.lambda_lanczos gc in
      (* Lemma 3 (expander mixing lemma) verified with the measured lambda *)
      let mixing = Mixing.check ~trials:40 (Prng.create (250 + d)) gc ~lambda:lam in
      let rng = Prng.create (300 + d) in
      let pairs = 25 in
      let sizes =
        Array.init pairs (fun _ ->
            let u = Prng.int rng n in
            let rec other () =
              let v = Prng.int rng n in
              if v = u then other () else v
            in
            let v = other () in
            let commons, matched = Bipartite_matching.neighborhood_matching g u v in
            float_of_int (List.length commons + Array.length matched))
      in
      let delta = float_of_int (Graph.max_degree g) in
      let bound = delta *. (1.0 -. (lam *. float_of_int n /. (delta *. delta))) in
      Report.add_row table
        [
          string_of_int (Graph.max_degree g);
          fmt lam;
          fmt mixing.Mixing.worst_ratio;
          fmt bound;
          fmt (Stats.minimum sizes);
          fmt (Stats.mean sizes);
          string_of_int pairs;
        ])
    (pick ~quick:[ 60 ] ~standard:[ 60; 100; 140 ] ~full:[ 60; 100; 140; 200 ]);
  Report.add_note table "min matched >= bound on every row = Lemma 4 (bound can be";
  Report.add_note table "negative for small Delta, where it is vacuous); 'mixing worst' is";
  Report.add_note table "the Lemma 3 discrepancy as a fraction of its allowance (<= 1 = holds).";
  Report.print table

(* ------------------------------------------------------------------ *)
(* Figures 3-4 — the support structure census                          *)
(* ------------------------------------------------------------------ *)

let figures_fig34 br =
  Report.subsection "figures/fig34_support  (Figures 3-4)";
  Printf.printf
    "paper: (a,b)-supported edges own >= a*b 3-detours; Algorithm 1 reinserts the\n";
  Printf.printf "       unsupported edges (E'') and routes the rest over surviving detours\n\n";
  let n = pick ~quick:216 ~standard:343 ~full:512 in
  let d = int_of_float (float_of_int n ** 0.7) in
  let g = regular_expander 777 n d in
  let rng = Prng.create 778 in
  let a = max 2 (int_of_float (ceil (log (float_of_int n)))) in
  let b = max 1 (Graph.max_degree g / 4) in
  let census = Support.census rng g ~a ~b in
  Bench_report.add br ~units:"edges" ~higher_is_better:true "fig34.edges_supported"
    (float_of_int census.Support.edges_supported);
  Bench_report.add br ~units:"edges" "fig34.edges_total"
    (float_of_int census.Support.edges_total);
  let table =
    Report.create
      ~title:
        (Printf.sprintf "support census: n=%d Delta=%d thresholds (a,b)=(%d,%d)" n
           (Graph.max_degree g) a b)
      ~columns:[ "quantity"; "p10"; "median"; "p90"; "max" ]
  in
  let quart name xs =
    let xs = Stats.of_ints xs in
    Report.add_row table
      [
        name;
        fmt (Stats.percentile xs 10.0);
        fmt (Stats.median xs);
        fmt (Stats.percentile xs 90.0);
        fmt (Stats.maximum xs);
      ]
  in
  quart "a-supported extensions per edge" census.Support.extension_counts;
  quart "3-detours per edge (cap 1000)" census.Support.detour_counts;
  Report.add_note table
    (Printf.sprintf "edges (a,b)-supported: %d / %d (%.1f%%) -- the complement is E''"
       census.Support.edges_supported census.Support.edges_total
       (100.0
       *. float_of_int census.Support.edges_supported
       /. float_of_int (max 1 census.Support.edges_total)));
  Report.print table

(* ------------------------------------------------------------------ *)
(* Lemma 2 — distance + congestion spanner that is not a DC-spanner    *)
(* ------------------------------------------------------------------ *)

let lemmas_lemma2 br =
  Report.subsection "lemmas/lemma2  (Lemma 2)";
  Printf.printf
    "paper: H is a 3-distance spanner AND a 2-congestion spanner, yet any routing\n";
  Printf.printf
    "       of the matching problem respecting the length bound has congestion n:\n";
  Printf.printf "       the two stretches must hold simultaneously\n\n";
  let sizes = pick ~quick:[ 10; 40 ] ~standard:[ 10; 40; 100 ] ~full:[ 10; 40; 100; 250 ] in
  let table =
    Report.create ~title:"lemma 2 family (alpha = 3)"
      ~columns:
        [ "n pairs"; "dist"; "detour C (len 4)"; "short C (len <=3)"; "DC stretch"; "claim >= n" ]
  in
  List.iter
    (fun size ->
      let t = Lemma2.make ~alpha:3 ~size in
      let nn = Graph.n t.Lemma2.graph in
      let detour_c = Routing.congestion ~n:nn (Lemma2.detour_routing t) in
      let short_c = Routing.congestion ~n:nn (Lemma2.short_routing t) in
      Bench_report.add br ~units:"load"
        (Printf.sprintf "lemma2.short_congestion.s%d" size)
        (float_of_int short_c);
      Report.add_row table
        [
          string_of_int size;
          string_of_int (Stretch.exact t.Lemma2.graph t.Lemma2.spanner);
          string_of_int detour_c;
          string_of_int short_c;
          string_of_int short_c;
          string_of_int size;
        ])
    sizes;
  Report.add_note table "detour routing keeps congestion 1 but breaks the length bound;";
  Report.add_note table "length-respecting routing is forced through (a1,b1): congestion n.";
  Report.print table

(* ------------------------------------------------------------------ *)
(* Theorem 1 — decomposition into matchings                            *)
(* ------------------------------------------------------------------ *)

let lemmas_theorem1 br =
  Report.subsection "lemmas/theorem1  (Theorem 1 / Lemmas 21-23)";
  Printf.printf
    "paper: any routing P decomposes into <= O(n^3) matchings across levels with\n";
  Printf.printf
    "       sum(d_k + 1) <= 12 C(P) log n; a beta'-router per matching yields a\n";
  Printf.printf "       substitute with congestion <= 12 beta' C(P) log n\n\n";
  let side = pick ~quick:8 ~standard:10 ~full:14 in
  let g = Generators.torus side side in
  let n = side * side in
  let c = Csr.snapshot g in
  let table =
    Report.create
      ~title:
        (Printf.sprintf "decomposition on a %dx%d torus (identity router: beta' = 1)" side side)
      ~columns:
        [
          "requests";
          "C(P)";
          "levels";
          "sum(dk+1)";
          "12 C log n";
          "matchings";
          "C(P')";
          "C(P')/C(P)";
        ]
  in
  List.iter
    (fun k ->
      let rng = Prng.create (400 + k) in
      let problem = Problems.random_pairs rng g ~k in
      let routing = Sp_routing.route_random c rng problem in
      let cong = Routing.congestion ~n routing in
      let { Decompose.substitute; stats } =
        Decompose.run ~n ~router:(fun pairs -> Array.map (fun (u, v) -> [| u; v |]) pairs) routing
      in
      let c' = Routing.congestion ~n substitute in
      Bench_report.add br ~units:"load"
        (Printf.sprintf "theorem1.substitute_congestion.k%d" k)
        (float_of_int c');
      Bench_report.add br ~units:"matchings"
        (Printf.sprintf "theorem1.matchings.k%d" k)
        (float_of_int stats.Decompose.matchings);
      Report.add_row table
        [
          string_of_int k;
          string_of_int cong;
          string_of_int stats.Decompose.levels;
          string_of_int stats.Decompose.degree_sum;
          fmt (12.0 *. float_of_int cong *. Stats.log2 (float_of_int n));
          string_of_int stats.Decompose.matchings;
          string_of_int c';
          fmt (float_of_int c' /. float_of_int (max 1 cong));
        ])
    (pick ~quick:[ 20; 100 ] ~standard:[ 20; 100; 400 ] ~full:[ 20; 100; 400; 1200 ]);
  Report.add_note table "sum(dk+1) stays under the Lemma 21 bound; with the identity router";
  Report.add_note table "the substitute equals P, so C(P')/C(P) = 1 (sanity floor).";
  Report.print table

(* ------------------------------------------------------------------ *)
(* Lemma 18 exhaustive census                                          *)
(* ------------------------------------------------------------------ *)

let lemmas_lemma18_census br =
  Report.subsection "lemmas/lemma18_census  (exhaustive gadget enumeration)";
  Printf.printf
    "every subset of gadget edges is tried; valid 3-spanners are kept and the exact\n";
  Printf.printf
    "minimum congestion of the removed-line-edge routing is computed by branch-and-\n";
  Printf.printf "bound.  This is the mechanical check behind the Lemma 18 erratum (DESIGN.md)\n\n";
  let table =
    Report.create ~title:"all 3-spanners of the ray-line gadget"
      ~columns:
        [
          "k";
          "|E|";
          "valid spanners";
          "max removed";
          "min |E1| at max size";
          "max rays removed";
          "extremal beta";
        ]
  in
  List.iter
    (fun k ->
      let t = Ray_line.make k in
      let g = t.Ray_line.graph in
      let line_edge (u, v) = u <> t.Ray_line.s && v <> t.Ray_line.s in
      let spanners = Brute.all_three_spanners g in
      let max_removed =
        List.fold_left (fun acc (_, r) -> max acc (Array.length r)) 0 spanners
      in
      let min_e1_at_max = ref max_int in
      let max_rays = ref 0 in
      List.iter
        (fun (_, removed) ->
          let e1 = List.length (List.filter line_edge (Array.to_list removed)) in
          let rays = Array.length removed - e1 in
          max_rays := max !max_rays rays;
          if Array.length removed = max_removed then min_e1_at_max := min !min_e1_at_max e1)
        spanners;
      Bench_report.add br ~units:"spanners" ~higher_is_better:true
        (Printf.sprintf "lemma18.valid_spanners.k%d" k)
        (float_of_int (List.length spanners));
      Report.add_row table
        [
          string_of_int k;
          string_of_int (Graph.m g);
          string_of_int (List.length spanners);
          string_of_int max_removed;
          string_of_int !min_e1_at_max;
          string_of_int !max_rays;
          string_of_int k (* the all-line extremal removal forces beta = k *);
        ])
    (pick ~quick:[ 2 ] ~standard:[ 2; 3 ] ~full:[ 2; 3; 4 ]);
  Report.add_note table "max removed = k (paper's structural claim, confirmed); the minimum";
  Report.add_note table "|E1| over maximal spanners is the real forced-congestion constant.";
  Report.print table

let run_figures br =
  Report.section "FIGURES 1-4 (measured constructions)";
  figures_fig1 br;
  figures_fig2 ();
  figures_fig34 br

let run_lemmas br =
  Report.section "LEMMA 2, LEMMA 18 and THEOREM 1 (machinery checks)";
  lemmas_lemma2 br;
  lemmas_lemma18_census br;
  lemmas_theorem1 br

(* ------------------------------------------------------------------ *)
(* Corollary 3 — distributed construction                              *)
(* ------------------------------------------------------------------ *)

let run_distributed br =
  Report.section "COROLLARY 3 — distributed Algorithm 1 in the LOCAL model";
  Printf.printf
    "paper: O(1) LOCAL rounds suffice on any Delta-regular graph with Delta >= n^{2/3}\n\n";
  let cases =
    pick
      ~quick:[ (60, 20); (80, 24) ]
      ~standard:[ (60, 20); (80, 24); (120, 30) ]
      ~full:[ (60, 20); (80, 24); (120, 30); (200, 40) ]
  in
  let table =
    Report.create ~title:"distributed = centralized under shared coins"
      ~columns:[ "n"; "Delta"; "rounds"; "messages"; "flood entries"; "m(H)"; "= reference"; "dist" ]
  in
  List.iter
    (fun (n, d) ->
      let g = regular_expander (500 + n) n d in
      let r = Dist_spanner.run ~seed:(600 + n) g in
      let ref_h = Dist_spanner.reference ~seed:(600 + n) g in
      let equal =
        Graph.m r.Dist_spanner.spanner = Graph.m ref_h
        && Graph.is_subgraph r.Dist_spanner.spanner ~of_:ref_h
      in
      Bench_report.add br ~units:"messages"
        (Printf.sprintf "distributed.messages.n%d" n)
        (float_of_int r.Dist_spanner.messages);
      Bench_report.add br ~units:"edges"
        (Printf.sprintf "distributed.m_spanner.n%d" n)
        (float_of_int (Graph.m r.Dist_spanner.spanner));
      Report.add_row table
        [
          string_of_int n;
          string_of_int d;
          string_of_int r.Dist_spanner.rounds;
          string_of_int r.Dist_spanner.messages;
          string_of_int r.Dist_spanner.entries;
          string_of_int (Graph.m r.Dist_spanner.spanner);
          string_of_bool equal;
          string_of_int (Stretch.exact g r.Dist_spanner.spanner);
        ])
    cases;
  Report.add_note table "rounds constant in n (1 sample + 3 floods + decide + deliver).";
  Report.print table;
  (* beyond the paper: Theorem 2's construction *and* router distributedly *)
  let table2 =
    Report.create ~title:"distributed theorem 2 (spanner + matching routing, 4 rounds)"
      ~columns:[ "n"; "Delta"; "requests"; "rounds"; "messages"; "m(H)"; "routing = centralized" ]
  in
  List.iter
    (fun (n, d) ->
      let g = regular_expander (700 + n) n d in
      let pairs = Matching.random_maximal (Prng.create (800 + n)) g in
      let r = Dist_expander.run ~seed:(900 + n) g pairs in
      let _, ref_routing = Dist_expander.reference ~seed:(900 + n) g pairs in
      let same = Array.for_all2 (fun a b -> a = b) r.Dist_expander.routing ref_routing in
      Report.add_row table2
        [
          string_of_int n;
          string_of_int d;
          string_of_int (Array.length pairs);
          string_of_int r.Dist_expander.rounds;
          string_of_int r.Dist_expander.messages;
          string_of_int (Graph.m r.Dist_expander.spanner);
          string_of_bool same;
        ])
    cases;
  Report.add_note table2 "replacement paths live in 2-hop balls, so local knowledge suffices";
  Report.add_note table2 "to reproduce the centralized Lemma 4 matchings exactly.";
  Report.print table2

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §5)                                            *)
(* ------------------------------------------------------------------ *)

let ablation_reinsertion () =
  Report.subsection "ablations/reinsertion  (Algorithm 1 design choices)";
  let n = pick ~quick:216 ~standard:343 ~full:512 in
  let d = int_of_float (float_of_int n ** 0.7) in
  let table =
    Report.create
      ~title:(Printf.sprintf "reinsertion rule across graph families (n ~ %d)" n)
      ~columns:[ "graph"; "variant"; "m(G)"; "m(H)"; "reinserted"; "repaired"; "violations"; "dist" ]
  in
  let variants =
    [
      ("pure sampling", Regular_dc.Explicit (0, 0), false);
      ("support reinsert", Regular_dc.Scaled, false);
      ("support + repair", Regular_dc.Scaled, true);
    ]
  in
  let families =
    [
      (* dense random regular: everything is supported, so sampling + repair
         carries the construction *)
      (Printf.sprintf "regular(%d,%d)" n (even_degree n d), regular_expander 901 n d);
      (* ring of cliques: bridges have no 2-detours at all, so the support
         rule must reinsert them or the graph disconnects *)
      ("ring-of-cliques(12,18)", Generators.ring_of_cliques 12 18);
      (* torus: no edge has any common neighbor -> nothing is supported and
         Algorithm 1 correctly refuses to sparsify (H = G) *)
      ("torus(15,15)", Generators.torus 15 15);
    ]
  in
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun (name, thresholds, repair) ->
          let rng = Prng.create 902 in
          let t = Regular_dc.build ~thresholds ~repair rng g in
          let h = t.Regular_dc.spanner in
          let violations = List.length (Stretch.violations g h ~bound:3) in
          let dist = Stretch.exact g h in
          Report.add_row table
            [
              gname;
              name;
              string_of_int (Graph.m g);
              string_of_int (Graph.m h);
              string_of_int t.Regular_dc.reinserted;
              string_of_int t.Regular_dc.repaired;
              string_of_int violations;
              (if dist = max_int then "disc" else string_of_int dist);
            ])
        variants)
    families;
  Report.add_note table "pure sampling leaves stretch-3 violations everywhere; the support";
  Report.add_note table "rule reinserts structurally weak edges (all of them on the torus,";
  Report.add_note table "the bridges on the clique ring) and repair removes the rest.";
  Report.print table

let ablation_detour_choice () =
  Report.subsection "ablations/detour_choice  (random vs first-available detour)";
  let n = pick ~quick:216 ~standard:343 ~full:512 in
  let d = int_of_float (float_of_int n ** 0.7) in
  let g = regular_expander 911 n d in
  let rng0 = Prng.create 912 in
  let t = Regular_dc.build rng0 g in
  let table =
    Report.create ~title:"matching congestion by detour strategy"
      ~columns:[ "strategy"; "mean C"; "max C" ]
  in
  List.iter
    (fun (name, cap) ->
      let dc = Regular_dc.to_dc ~detour_cap:cap t g in
      let rng = Prng.create 913 in
      let r = Dc.measure_matching dc rng ~trials:5 in
      Report.add_row table [ name; fmt r.Dc.mean_congestion; string_of_int r.Dc.max_congestion ])
    [ ("first available (cap 1)", 1); ("random of <= 8", 8); ("random of <= 64 (default)", 64) ];
  Report.add_note table "more candidates to randomize over -> flatter congestion (Lemma 7's";
  Report.add_note table "uniform choice argument).";
  Report.print table

let ablation_decomposition () =
  Report.subsection "ablations/decomposition  (Theorem 1 vs naive per-path rerouting)";
  let n = pick ~quick:216 ~standard:343 ~full:512 in
  let d = int_of_float (float_of_int n ** 0.7) in
  let g = regular_expander 921 n d in
  let rng = Prng.create 922 in
  let t = Regular_dc.build rng g in
  let dc = Regular_dc.to_dc t g in
  let problem = Problems.permutation rng g in
  let base = Sp_routing.route_random (Csr.snapshot g) rng problem in
  let base_c = Routing.congestion ~n:(Graph.n g) base in
  let report = Dc.measure_general dc rng base in
  (* naive: independently reroute each pair by a random shortest path in H *)
  let hc = Csr.snapshot t.Regular_dc.spanner in
  let naive = Sp_routing.route_random hc rng problem in
  let naive_c = Routing.congestion ~n:(Graph.n g) naive in
  let table =
    Report.create
      ~title:(Printf.sprintf "permutation routing, n=%d, base C(P)=%d" n base_c)
      ~columns:[ "strategy"; "C(P')"; "stretch vs C(P)"; "per-path stretch" ]
  in
  Report.add_row table
    [
      "theorem 1 decomposition";
      string_of_int report.Dc.spanner_congestion;
      fmt report.Dc.stretch;
      fmt report.Dc.dist_stretch;
    ];
  let naive_stretch = Routing.max_stretch naive ~against:base in
  Report.add_row table
    [
      "naive shortest-path reroute";
      string_of_int naive_c;
      fmt (float_of_int naive_c /. float_of_int (max 1 base_c));
      fmt naive_stretch;
    ];
  Report.add_note table "the decomposition bounds per-path stretch relative to the original";
  Report.add_note table "paths (<= 3x each edge) while keeping congestion comparable.";
  Report.print table

let ablation_classic_congestion br =
  Report.subsection "ablations/classic_congestion  (why distance spanners are not enough)";
  let n = pick ~quick:216 ~standard:343 ~full:512 in
  let d = int_of_float (float_of_int n ** 0.7) in
  let g = regular_expander 931 n d in
  let table =
    Report.create
      ~title:(Printf.sprintf "matching congestion stretch on n=%d Delta=%d" n (even_degree n d))
      ~columns:[ "construction"; "m(H)"; "dist"; "match C mean"; "match C max" ]
  in
  List.iter
    (fun ctor ->
      let rng = Prng.create 932 in
      let dc = Construction.build ctor rng g in
      let row = Experiment.evaluate ~trials:3 ~with_general:false ~with_lambda:false rng dc in
      Bench_report.add br ~units:"load"
        (Printf.sprintf "classic.match_congestion_max.%s" dc.Dc.name)
        (float_of_int row.Experiment.matching.Dc.max_congestion);
      Report.add_row table
        [
          dc.Dc.name;
          string_of_int row.Experiment.m_spanner;
          (if row.Experiment.dist_stretch = max_int then "disc"
           else string_of_int row.Experiment.dist_stretch);
          fmt row.Experiment.matching.Dc.mean_congestion;
          string_of_int row.Experiment.matching.Dc.max_congestion;
        ])
    (List.map Construction.find_exn [ "algorithm1"; "theorem2"; "greedy"; "baswana-sen" ]);
  Report.add_note table "greedy/Baswana-Sen control only distance; their matching congestion";
  Report.add_note table "is set by whatever the sparse topology forces.";
  Report.print table

let ablation_valiant () =
  Report.subsection "ablations/valiant  (the [25]-substitute: two-phase randomized routing)";
  Printf.printf
    "permutation routing on sparse topologies: direct (randomized) shortest paths vs\n";
  Printf.printf "Valiant's random-intermediate scheme, on random and adversarial permutations\n\n";
  let table =
    Report.create ~title:"max node congestion by routing strategy"
      ~columns:[ "graph"; "permutation"; "det SP"; "random SP"; "valiant"; "optimizer" ]
  in
  let cases =
    [
      ( "torus 12x12",
        Generators.torus 12 12,
        [
          ("random", fun rng g -> Problems.permutation rng g);
          ("transpose", fun _ _ -> Valiant.torus_transpose 12);
        ] );
      ( "hypercube d=8",
        Generators.hypercube 8,
        [
          ("random", fun rng g -> Problems.permutation rng g);
          ("bit-reversal", fun _ _ -> Valiant.hypercube_bit_reversal 8);
        ] );
      ( "margulis 13 (n=169)",
        Generators.margulis 13,
        [ ("random", fun rng g -> Problems.permutation rng g) ] );
    ]
  in
  List.iter
    (fun (gname, g, problems) ->
      let c = Csr.snapshot g in
      List.iter
        (fun (pname, mk) ->
          let rng = Prng.create 981 in
          let problem = mk rng g in
          let det = Routing.congestion ~n:(Csr.n c) (Sp_routing.route c problem) in
          let direct = Sp_routing.congestion_of_problem c (Prng.create 982) problem in
          let valiant = Valiant.congestion c (Prng.create 983) problem in
          let optimizer = Congestion_opt.congestion c (Prng.create 984) problem in
          Report.add_row table
            [
              gname;
              pname;
              string_of_int det;
              string_of_int direct;
              string_of_int valiant;
              string_of_int optimizer;
            ])
        problems)
    cases;
  Report.add_note table "deterministic oblivious routing is the classic Valiant foil: the";
  Report.add_note table "adversarial patterns hurt it most, and Valiant's congestion is pattern-";
  Report.add_note table "independent (pay ~2x length).  Randomized SP already diffuses well at";
  Report.add_note table "these sizes; the offline optimizer wins when it may pick paths.";
  Report.print table

let run_ablations br =
  Report.section "ABLATIONS (DESIGN.md section 5)";
  ablation_reinsertion ();
  ablation_detour_choice ();
  ablation_decomposition ();
  ablation_classic_congestion br;
  ablation_valiant ()

(* ------------------------------------------------------------------ *)
(* Extensions: open problems of Section 8 + stronger baselines         *)
(* ------------------------------------------------------------------ *)

let ext_khop_frontier br =
  Report.subsection "extensions/khop  (Section 8: trade stretch for sparsity)";
  Printf.printf
    "open problem: does increasing the distance stretch give sparser spanners with\n";
  Printf.printf "better congestion?  k-hop generalization, sampling at Delta^{-(k-1)/k}\n\n";
  let n = pick ~quick:216 ~standard:343 ~full:512 in
  let d = int_of_float (float_of_int n ** 0.7) in
  let g = regular_expander 941 n d in
  let table =
    Report.create
      ~title:(Printf.sprintf "stretch/sparsity/congestion frontier (n=%d, Delta=%d)" n
                (even_degree n d))
      ~columns:[ "k"; "target 2k-1"; "rho"; "m(H)"; "reinserted"; "dist"; "match C mean"; "match C max" ]
  in
  List.iter
    (fun k ->
      let rng = Prng.create 942 in
      let t = Khop_dc.build ~k rng g in
      let dc = Khop_dc.to_dc t g in
      let r = Dc.measure_matching dc (Prng.create 943) ~trials:3 in
      let dist = Stretch.exact g t.Khop_dc.spanner in
      Bench_report.add br ~units:"edges"
        (Printf.sprintf "khop.m_spanner.k%d" k)
        (float_of_int (Graph.m t.Khop_dc.spanner));
      Report.add_row table
        [
          string_of_int k;
          string_of_int ((2 * k) - 1);
          fmt t.Khop_dc.rho;
          string_of_int (Graph.m t.Khop_dc.spanner);
          string_of_int t.Khop_dc.reinserted;
          (if dist = max_int then "disc" else string_of_int dist);
          fmt r.Dc.mean_congestion;
          string_of_int r.Dc.max_congestion;
        ])
    [ 1; 2; 3; 4 ];
  Report.add_note table "k=2 is Algorithm 1's rate; beyond the sweet spot the sampled graph";
  Report.add_note table "is too sparse for (2k-1)-detours and the repair flood brings edges back.";
  Report.print table

let ext_irregular () =
  Report.subsection "extensions/irregular  (Section 8: arbitrary-degree graphs)";
  Printf.printf
    "open problem: generalize Theorem 3 beyond (near-)regular graphs.  Degree-local\n";
  Printf.printf "sampling rho_uv = 1/sqrt(min deg) on heavy-tailed graphs\n\n";
  let n = pick ~quick:200 ~standard:300 ~full:500 in
  let table =
    Report.create ~title:"degree-local Algorithm 1 on heavy-tailed graphs"
      ~columns:
        [ "graph"; "m(G)"; "deg min/max"; "m(H)"; "dist"; "match C mean"; "match C max" ]
  in
  let families =
    [
      ( "chung-lu(2.5)",
        fun () ->
          let rng = Prng.create 951 in
          let w = Generators.power_law_weights rng ~n ~exponent:2.5 ~w_min:10.0 in
          let g = Generators.chung_lu rng w in
          ignore (Connectivity.repair g ~within:(Generators.cycle n));
          g );
      ("pref-attach(m=6)", fun () -> Generators.preferential_attachment (Prng.create 952) ~n ~m:6);
      ( "regular(control)",
        fun () -> regular_expander 953 n (int_of_float (float_of_int n ** 0.7)) );
    ]
  in
  List.iter
    (fun (name, mk) ->
      let g = mk () in
      let rng = Prng.create 954 in
      let t = Irregular_dc.build rng g in
      let dc = Irregular_dc.to_dc t g in
      let r = Dc.measure_matching dc (Prng.create 955) ~trials:3 in
      let dist = Stretch.exact g t.Irregular_dc.spanner in
      Report.add_row table
        [
          name;
          string_of_int (Graph.m g);
          Printf.sprintf "%d/%d" (Graph.min_degree g) (Graph.max_degree g);
          string_of_int (Graph.m t.Irregular_dc.spanner);
          (if dist = max_int then "disc" else string_of_int dist);
          fmt r.Dc.mean_congestion;
          string_of_int r.Dc.max_congestion;
        ])
    families;
  Report.add_note table "stretch 3 holds on every family (repair); low-degree regions sample";
  Report.add_note table "at rate ~1, so sparsification concentrates on the dense cores.";
  Report.print table

let ext_congestion_baselines () =
  Report.subsection "extensions/congestion_baselines  (how good is the C_G(R) proxy?)";
  Printf.printf
    "the harness approximates the optimal congestion C_G(R); this block compares the\n";
  Printf.printf "routers against the exact optimum (branch-and-bound) on small instances\n\n";
  let g = Generators.torus 6 6 in
  let c = Csr.snapshot g in
  let table =
    Report.create ~title:"routing a random-pairs problem on a 6x6 torus"
      ~columns:[ "requests"; "deterministic SP"; "random SP"; "optimizer"; "exact optimum" ]
  in
  List.iter
    (fun k ->
      let rng = Prng.create (960 + k) in
      let problem = Problems.random_pairs rng g ~k in
      let det = Routing.congestion ~n:36 (Sp_routing.route c problem) in
      let rnd = Sp_routing.congestion_of_problem c (Prng.create 1) problem in
      let opt = Congestion_opt.congestion c (Prng.create 2) problem in
      let exact =
        match Congestion_opt.exact ~max_paths:400 c problem with
        | Some (e, _) -> string_of_int e
        | None -> "n/a"
      in
      Report.add_row table
        [ string_of_int k; string_of_int det; string_of_int rnd; string_of_int opt; exact ])
    (pick ~quick:[ 6; 10 ] ~standard:[ 6; 10; 14 ] ~full:[ 6; 10; 14; 18 ]);
  Report.add_note table "optimizer <= min(random SP, deterministic SP) by construction;";
  Report.add_note table "on these sizes it matches the exact optimum or is within 1 of it.";
  Report.print table

let ext_dc_estimates () =
  Report.subsection "extensions/dc_estimates  (Definition 4: empirical rho)";
  Printf.printf
    "probabilistic DC-spanner check: fraction of sampled routing problems (edge\n";
  Printf.printf
    "matchings, node matchings, permutations, random pairs) admitting a\n";
  Printf.printf "(3, beta)-substitute via each construction's router + Theorem 1\n\n";
  let n = pick ~quick:150 ~standard:216 ~full:343 in
  let d = int_of_float (float_of_int n ** 0.7) in
  let g = regular_expander 971 n d in
  let delta = float_of_int (Graph.max_degree g) in
  let beta = 12.0 *. (1.0 +. (2.0 *. sqrt delta)) *. Stats.log2 (float_of_int n) in
  let table =
    Report.create
      ~title:
        (Printf.sprintf "empirical rho at (alpha, beta) = (3, %.0f) on n=%d Delta=%.0f" beta n
           delta)
      ~columns:[ "construction"; "trials"; "successes"; "rho"; "worst dist"; "worst cong" ]
  in
  List.iter
    (fun ctor ->
      let rng = Prng.create 972 in
      let dc = Construction.build ctor rng g in
      (* the registry carries each construction's target distance stretch *)
      let alpha = Option.value ctor.Construction.alpha ~default:3.0 in
      let e = Dc_check.estimate ~trials:8 ~alpha ~beta dc rng in
      Report.add_row table
        [
          dc.Dc.name;
          string_of_int e.Dc_check.trials;
          string_of_int e.Dc_check.successes;
          fmt e.Dc_check.rate;
          fmt e.Dc_check.worst_dist;
          fmt e.Dc_check.worst_cong;
        ])
    (List.map Construction.find_exn [ "algorithm1"; "theorem2"; "khop-5"; "greedy" ]);
  Report.add_note table "the DC constructions hold at the theorem's beta with rho = 1; the";
  Report.add_note table "distance-only greedy baseline passes or fails on congestion alone.";
  Report.print table

let ext_packets () =
  Report.subsection "extensions/packets  (store-and-forward latency, Section 1.1)";
  Printf.printf
    "permutation flows simulated packet-by-packet under node capacity 1: the paper's\n";
  Printf.printf "congestion stretch shows up as delivered latency and queue growth\n\n";
  let n = pick ~quick:216 ~standard:343 ~full:512 in
  let d = int_of_float (float_of_int n ** 0.7) in
  let g = regular_expander 961 n d in
  let rng = Prng.create 962 in
  let problem = Problems.permutation rng g in
  let table =
    Report.create
      ~title:(Printf.sprintf "simulated permutation delivery (n=%d, Delta=%d)" n (even_degree n d))
      ~columns:
        [ "network"; "links"; "C"; "D"; "lower bd"; "delivered by"; "max queue"; "avg latency" ]
  in
  let simulate name h =
    let routing = Congestion_opt.route (Csr.snapshot h) (Prng.create 963) problem in
    let s = Packet_sim.run ~n:(Graph.n g) routing in
    Report.add_row table
      [
        name;
        string_of_int (Graph.m h);
        string_of_int s.Packet_sim.congestion;
        string_of_int s.Packet_sim.dilation;
        string_of_int (Packet_sim.lower_bound s);
        string_of_int s.Packet_sim.makespan;
        string_of_int s.Packet_sim.max_queue;
        fmt s.Packet_sim.avg_latency;
      ]
  in
  simulate "full graph" g;
  let t = Regular_dc.build (Prng.create 964) g in
  simulate "algorithm 1 spanner" t.Regular_dc.spanner;
  simulate "greedy 3-spanner" (Classic.greedy g ~k:2);
  Report.add_note table "delivered-by tracks the C+D envelope; the greedy spanner's hot";
  Report.add_note table "nodes turn its congestion stretch into real queueing delay.";
  Report.print table

let run_extensions br =
  Report.section "EXTENSIONS (Section 8 open problems + stronger baselines)";
  ext_khop_frontier br;
  ext_irregular ();
  ext_congestion_baselines ();
  ext_dc_estimates ();
  ext_packets ()

(* ------------------------------------------------------------------ *)
(* Fault injection: degraded-mode routing + self-healing repair        *)
(* ------------------------------------------------------------------ *)

let fault_degradation_sweep br =
  Report.subsection "fault/degradation_sweep  (random node failures vs delivery and repair)";
  Printf.printf
    "permutation flows routed in each spanner while nodes fail uniformly at rate p\n";
  Printf.printf
    "mid-delivery (round 2); lost packets retransmit from the source and reroute in\n";
  Printf.printf "the survivor spanner; Repair then heals the spanner inside the survivor graph\n\n";
  let n = pick ~quick:150 ~standard:216 ~full:343 in
  let d = int_of_float (float_of_int n ** 0.7) in
  let g = regular_expander 1201 n d in
  let rates =
    pick ~quick:[ 0.02; 0.1 ] ~standard:[ 0.02; 0.05; 0.1; 0.2 ]
      ~full:[ 0.01; 0.02; 0.05; 0.1; 0.2; 0.3 ]
  in
  let table =
    Report.create
      ~title:(Printf.sprintf "degradation sweep (n=%d, Delta=%d, faults at round 2)" n
                (even_degree n d))
      ~columns:
        [
          "construction";
          "p";
          "faults";
          "delivered";
          "dropped";
          "retrans";
          "reroutes";
          "makespan";
          "repair +e";
          "certified";
        ]
  in
  (* every registered construction whose premise accepts this graph takes a
     turn — a new registry entry joins the sweep automatically *)
  let premise = Premise.check g in
  let delivered_total = ref 0 and dropped_total = ref 0 and repair_total = ref 0 in
  List.iter
    (fun ctor ->
      let dc = Construction.build ctor (Prng.create 1202) g in
      let h = dc.Dc.spanner in
      let problem = Problems.permutation (Prng.create 1203) g in
      let routing = Sp_routing.route_random (Csr.snapshot h) (Prng.create 1204) problem in
      List.iter
        (fun p ->
          let plan = Fault_plan.uniform_nodes ~round:2 (Prng.create 1205) g ~p in
          let s = Fault_sim.run ~n:(Graph.n g) ~network:h ~plan routing in
          let rep =
            Repair.run (Fault_plan.survivor h plan) ~within:(Fault_plan.survivor g plan)
          in
          delivered_total := !delivered_total + s.Fault_sim.delivered;
          dropped_total := !dropped_total + s.Fault_sim.dropped;
          repair_total := !repair_total + List.length rep.Repair.added;
          Report.add_row table
            [
              dc.Dc.name;
              fmt p;
              string_of_int s.Fault_sim.failed_nodes;
              Printf.sprintf "%d/%d" s.Fault_sim.delivered (Array.length routing);
              string_of_int s.Fault_sim.dropped;
              string_of_int s.Fault_sim.retransmits;
              string_of_int s.Fault_sim.reroutes;
              string_of_int s.Fault_sim.makespan;
              string_of_int (List.length rep.Repair.added);
              string_of_bool rep.Repair.certified;
            ])
        rates)
    (Construction.accepting premise);
  Bench_report.add br ~units:"packets" ~higher_is_better:true "fault.delivered_total"
    (float_of_int !delivered_total);
  Bench_report.add br ~units:"packets" "fault.dropped_total" (float_of_int !dropped_total);
  Bench_report.add br ~units:"edges" "fault.repair_edges_total" (float_of_int !repair_total);
  Report.add_note table "drops are packets whose endpoint died (unavoidable) or that exhausted";
  Report.add_note table "their retransmission budget; the DC spanners' spare detours keep the";
  Report.add_note table "reroute success rate up and the repair bill low at the same p.";
  Report.print table

let fault_vft_attack br =
  Report.subsection "fault/vft_attack  (Figure 1 under the targeted matching attack)";
  Printf.printf
    "the paper's VFT foil: kill all but one kept matching edge of the Figure 1\n";
  Printf.printf
    "spanner mid-delivery -- every cross packet must reroute through the single\n";
  Printf.printf "survivor, the congestion collapse the DC property is designed to prevent\n\n";
  let ns = pick ~quick:[ 64 ] ~standard:[ 64; 128 ] ~full:[ 64; 128; 256 ] in
  let table =
    Report.create ~title:"targeted edge faults on the VFT spanner"
      ~columns:
        [
          "n";
          "kept";
          "killed";
          "delivered";
          "dropped";
          "retrans";
          "reroutes";
          "makespan";
          "repair +e";
          "certified";
        ]
  in
  List.iter
    (fun n ->
      let t = Vft_example.make n in
      let g = t.Vft_example.graph and h = t.Vft_example.spanner in
      let routing = Vft_example.route t (Prng.create (1300 + n)) in
      let kept = t.Vft_example.kept in
      let killed =
        (* spare kept.(0): the attack leaves exactly one cross edge alive *)
        Array.to_list (Array.map (fun i -> (i, i + t.Vft_example.half)) kept) |> List.tl
      in
      let plan = Fault_plan.targeted_edges ~round:2 ~n:(Graph.n g) killed in
      let s = Fault_sim.run ~n:(Graph.n g) ~network:h ~plan routing in
      let rep = Repair.run (Fault_plan.survivor h plan) ~within:(Fault_plan.survivor g plan) in
      Bench_report.add br ~units:"rounds"
        (Printf.sprintf "fault.vft_makespan.n%d" n)
        (float_of_int s.Fault_sim.makespan);
      Report.add_row table
        [
          string_of_int n;
          string_of_int (Array.length kept);
          string_of_int (List.length killed);
          Printf.sprintf "%d/%d" s.Fault_sim.delivered (Array.length routing);
          string_of_int s.Fault_sim.dropped;
          string_of_int s.Fault_sim.retransmits;
          string_of_int s.Fault_sim.reroutes;
          string_of_int s.Fault_sim.makespan;
          string_of_int (List.length rep.Repair.added);
          string_of_bool rep.Repair.certified;
        ])
    ns;
  Report.add_note table "repair adds nothing: one surviving cross edge already gives every";
  Report.add_note table "matching pair a 3-hop detour, so the spanner re-certifies -- yet that";
  Report.add_note table "edge carries every rerouted packet (makespan tracks the serialization).";
  Report.add_note table "distance stretch alone cannot see the collapse; that is Figure 1's point.";
  Report.print table

let run_fault br =
  Report.section "FAULT INJECTION (degraded-mode routing and self-healing repair)";
  fault_degradation_sweep br;
  fault_vft_attack br

(* ------------------------------------------------------------------ *)
(* Bechamel timing benches                                             *)
(* ------------------------------------------------------------------ *)

let run_timing br =
  Report.section "TIMING (Bechamel, monotonic clock)";
  let open Bechamel in
  let n = pick ~quick:125 ~standard:216 ~full:343 in
  let d = even_degree n (int_of_float (float_of_int n ** 0.7)) in
  let g = regular_expander 991 n d in
  let gc = Csr.snapshot g in
  let small_routing =
    let rng = Prng.create 992 in
    let problem = Problems.random_pairs rng g ~k:(n / 2) in
    Sp_routing.route_random gc rng problem
  in
  let tests =
    Test.make_grouped ~name:"dc-spanner"
      [
        Test.make ~name:"algorithm1-build"
          (Staged.stage (fun () ->
               let rng = Prng.create 1 in
               ignore (Regular_dc.build rng g)));
        Test.make ~name:"theorem2-build"
          (Staged.stage (fun () ->
               let rng = Prng.create 2 in
               ignore (Expander_dc.build rng g)));
        Test.make ~name:"greedy-3-spanner" (Staged.stage (fun () -> ignore (Classic.greedy g ~k:2)));
        Test.make ~name:"baswana-sen"
          (Staged.stage (fun () ->
               let rng = Prng.create 3 in
               ignore (Classic.baswana_sen_3 rng g)));
        Test.make ~name:"spectral-sparsify"
          (Staged.stage (fun () ->
               let rng = Prng.create 4 in
               ignore (Sparsify.spectral rng g)));
        Test.make ~name:"misra-gries-coloring"
          (Staged.stage (fun () -> ignore (Edge_coloring.misra_gries g)));
        Test.make ~name:"decompose-levels"
          (Staged.stage (fun () -> ignore (Decompose.level_matchings ~n:(Graph.n g) small_routing)));
        Test.make ~name:"spectral-lambda"
          (Staged.stage (fun () -> ignore (Spectral.lambda ~iterations:100 gc)));
        Test.make ~name:"bfs-sssp" (Staged.stage (fun () -> ignore (Bfs.distances gc 0)));
        Test.make ~name:"stretch-exact-seq"
          (Staged.stage
             (let t = Regular_dc.build (Prng.create 5) g in
              fun () -> ignore (Stretch.exact g t.Regular_dc.spanner)));
        Test.make ~name:"stretch-exact-par"
          (Staged.stage
             (let t = Regular_dc.build (Prng.create 5) g in
              fun () -> ignore (Stretch.exact_parallel g t.Regular_dc.spanner)));
      ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Report.create
      ~title:(Printf.sprintf "construction timings (n=%d, Delta=%d, m=%d)" n d (Graph.m g))
      ~columns:[ "benchmark"; "time/run" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let time_ns =
        match Analyze.OLS.estimates ols_result with Some (t :: _) -> t | _ -> nan
      in
      rows := (name, time_ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      (* wall times are machine-dependent: exported for trend dashboards but
         never baseline-eligible *)
      let metric =
        String.map (fun c -> match c with '/' | ' ' -> '_' | _ -> c) name
      in
      Bench_report.add br ~stable:false ~units:"ns" ("timing." ^ metric ^ "_ns") ns;
      Report.add_row table [ name; human ])
    (List.sort compare !rows);
  Report.print table

(* ------------------------------------------------------------------ *)
(* Observability overhead (lib/obs)                                    *)
(* ------------------------------------------------------------------ *)

(* A verbatim copy of [Bfs.distances]' hot loop with every observability
   hook deleted — the baseline for the "disabled instrumentation costs
   under 5%" claim.  Keep in sync with lib/graph/bfs.ml. *)
let bfs_plain g s =
  let n = Csr.n g in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  dist.(s) <- 0;
  queue.(0) <- s;
  tail := 1;
  let frontier_peak = ref 1 in
  let finished = ref false in
  while (not !finished) && !head < !tail do
    let v = queue.(!head) in
    incr head;
    if dist.(v) < max_int then begin
      try
        Csr.iter_neighbors g v (fun u ->
            if dist.(u) < 0 then begin
              dist.(u) <- dist.(v) + 1;
              if u = -1 then raise Exit;
              queue.(!tail) <- u;
              incr tail
            end)
      with Exit -> finished := true
    end;
    if !tail - !head > !frontier_peak then frontier_peak := !tail - !head
  done;
  dist

let run_obs br =
  Report.section "OBSERVABILITY OVERHEAD (lib/obs, instrumentation disabled)";
  Printf.printf
    "claim: with tracing and metrics off, every hook costs one flag check; the\n";
  Printf.printf "instrumented BFS must stay within 5%% of an uninstrumented copy\n\n";
  let open Bechamel in
  let was_metrics = !Obs.metrics and was_tracing = !Obs.tracing in
  Obs.set_metrics false;
  Obs.set_tracing false;
  let n = pick ~quick:216 ~standard:343 ~full:512 in
  let d = even_degree n (int_of_float (float_of_int n ** 0.7)) in
  let g = regular_expander 995 n d in
  let gc = Csr.snapshot g in
  let probe = Metrics.counter "bench.obs_probe" in
  let probe_h = Metrics.histo "bench.obs_probe_h" in
  let tests =
    Test.make_grouped ~name:"obs"
      [
        Test.make ~name:"bfs-instrumented" (Staged.stage (fun () -> ignore (Bfs.distances gc 0)));
        Test.make ~name:"bfs-plain" (Staged.stage (fun () -> ignore (bfs_plain gc 0)));
        Test.make ~name:"counter-add-off" (Staged.stage (fun () -> Metrics.add probe 1));
        Test.make ~name:"histo-observe-off" (Staged.stage (fun () -> Metrics.observe probe_h 7));
        Test.make ~name:"with-span-off"
          (Staged.stage (fun () -> Trace.with_span ~name:"bench.noop" (fun () -> ())));
      ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name r ->
      let t = match Analyze.OLS.estimates r with Some (t :: _) -> t | _ -> nan in
      rows := (name, t) :: !rows)
    results;
  let time_of suffix =
    match List.find_opt (fun (name, _) -> String.ends_with ~suffix name) !rows with
    | Some (_, t) -> t
    | None -> nan
  in
  let human ns =
    if Float.is_nan ns then "n/a"
    else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.1f ns" ns
  in
  let table =
    Report.create
      ~title:(Printf.sprintf "disabled-mode hook costs (BFS on n=%d, Delta=%d)" n d)
      ~columns:[ "benchmark"; "time/run" ]
  in
  List.iter (fun (name, ns) -> Report.add_row table [ name; human ns ]) (List.sort compare !rows);
  let instr = time_of "bfs-instrumented" and plain = time_of "bfs-plain" in
  let overhead = 100.0 *. (instr -. plain) /. plain in
  Bench_report.add br ~stable:false ~units:"pct" "obs.bfs_overhead_pct" overhead;
  Report.add_note table
    (Printf.sprintf "BFS disabled-instrumentation overhead: %.2f%% (claim: < 5%%)%s" overhead
       (if Float.is_nan overhead || overhead < 5.0 then "" else "  ** OVER BUDGET **"));
  Report.add_note table "counter-add/histo-observe/with-span are the per-call-site costs when";
  Report.add_note table "observability is off: a flag load and a branch each.";
  Report.print table;
  Obs.set_metrics was_metrics;
  Obs.set_tracing was_tracing

(* ------------------------------------------------------------------ *)
(* Kernel comparison: scalar / grouped / batched certification         *)
(* ------------------------------------------------------------------ *)

(* wall-clock ms for [f ()]: best of [reps] runs (first result returned) *)
let time_best ~reps f =
  let result = f () in
  let best = ref infinity in
  for _ = 1 to reps do
    let t = Obs.now_us () in
    ignore (f ());
    best := min !best ((Obs.now_us () -. t) /. 1e3)
  done;
  (result, !best)

let run_kernels br =
  Report.section "KERNEL COMPARISON (stretch certification)";
  Printf.printf "claim: grouping removed edges by source and answering %d sources per\n"
    Bfs_batch.width;
  Printf.printf "bit-parallel sweep beats the per-edge scalar path by >= 5x at n=512,\n";
  Printf.printf "with bit-identical certificates\n\n";
  let ns = pick ~quick:[ 125; 216 ] ~standard:[ 216; 343; 512 ] ~full:[ 216; 343; 512; 729 ] in
  let eps = 0.15 in
  let constructions = List.map Construction.find_exn [ "theorem2"; "algorithm1" ] in
  let table =
    Report.create
      ~title:(Printf.sprintf "certification kernels (batch width %d)" Bfs_batch.width)
      ~columns:
        [
          "construction"; "n"; "Delta"; "removed"; "sources"; "scalar ms"; "grouped ms";
          "batched ms"; "x grouped"; "x batched"; "identical";
        ]
  in
  List.iter
    (fun ctor ->
      let cname = ctor.Construction.name in
      List.iter
        (fun n ->
          let d = int_of_float (float_of_int n ** ((2.0 /. 3.0) +. eps)) in
          let g = regular_expander (1000 + n) n d in
          let rng = Prng.create (2000 + n) in
          let dc = Construction.build ctor rng g in
          let h = dc.Dc.spanner in
          let removed = Graph.m g - Graph.m h in
          let sources =
            let marked = Array.make (Graph.n g) false in
            Graph.iter_edges g (fun u v -> if not (Graph.mem_edge h u v) then marked.(u) <- true);
            Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 marked
          in
          let s_scalar, t_scalar = time_best ~reps:1 (fun () -> Stretch.exact_reference g h) in
          let s_grouped, t_grouped = time_best ~reps:3 (fun () -> Stretch.exact_grouped g h) in
          let s_batched, t_batched = time_best ~reps:3 (fun () -> Stretch.exact_parallel g h) in
          let identical = s_scalar = s_grouped && s_grouped = s_batched in
          let speedup t = t_scalar /. t in
          Report.add_row table
            [
              cname;
              string_of_int n;
              string_of_int (Graph.max_degree g);
              string_of_int removed;
              string_of_int sources;
              Printf.sprintf "%.2f" t_scalar;
              Printf.sprintf "%.2f" t_grouped;
              Printf.sprintf "%.2f" t_batched;
              Printf.sprintf "%.1fx" (speedup t_grouped);
              Printf.sprintf "%.1fx" (speedup t_batched);
              (if identical then "yes" else "** NO **");
            ];
          let case = Printf.sprintf "kernels.%s.n%d" cname n in
          Bench_report.add br ~units:"edges" (case ^ ".removed") (float_of_int removed);
          Bench_report.add br ~units:"sources" (case ^ ".sources") (float_of_int sources);
          Bench_report.add br ~units:"bool" ~higher_is_better:true (case ^ ".identical")
            (if identical then 1.0 else 0.0);
          Bench_report.add br ~stable:false ~units:"ms" (case ^ ".batched_ms") t_batched;
          Bench_report.add br ~stable:false ~units:"x" ~higher_is_better:true
            (case ^ ".speedup_batched") (speedup t_batched))
        ns)
    constructions;
  Report.add_note table "scalar = per-removed-edge bounded BFS (pre-kernel path, 1 rep);";
  Report.add_note table
    (Printf.sprintf "grouped = one sweep per source; batched = %d sources/sweep + domains."
       Bfs_batch.width);
  Report.print table

(* ------------------------------------------------------------------ *)
(* Sustained-churn soak: steady-state robustness under continuous      *)
(* faults and traffic (ROADMAP soak-harness item)                      *)
(* ------------------------------------------------------------------ *)

let soak_case br ~case ~graph ~kind ~events ~batch ~requests =
  let rng = Prng.create 4242 in
  let dc = Regular_dc.build rng graph in
  let config =
    { Soak.default with events; batch; requests; seed = 4243; kind; alpha = 3 }
  in
  let r = Soak.run config ~graph ~spanner:dc.Regular_dc.spanner in
  let metric name units v = Bench_report.add br ~units (Printf.sprintf "soak.%s.%s" case name) v in
  (* the whole run is seeded and wall-clock-free, so every quantity below is
     a stable metric for the regression gate *)
  metric "certified_batches" "batches" (float_of_int r.Soak.r_certified_batches);
  metric "batch_count" "batches" (float_of_int r.Soak.r_batch_count);
  metric "readded" "edges" (float_of_int r.Soak.r_edges_readded);
  metric "swept" "groups" (float_of_int r.Soak.r_swept);
  metric "groups" "groups" (float_of_int r.Soak.r_groups_total);
  metric "delivered" "packets" (float_of_int r.Soak.r_delivered);
  metric "dropped" "packets" (float_of_int r.Soak.r_dropped);
  metric "final_stretch" "hops"
    (if r.Soak.r_final_stretch = max_int then -1.0 else float_of_int r.Soak.r_final_stretch);
  metric "m_spanner_end" "edges" (float_of_int r.Soak.r_m_spanner_end);
  r

let run_soak br =
  Report.section "SOAK (sustained churn: incremental repair + re-certification)";
  let table =
    Report.create ~title:"soak steady state (alpha = 3, algorithm1 spanner)"
      ~columns:
        [
          "case"; "events"; "certified"; "re-added"; "swept/groups"; "delivered"; "dropped";
          "final stretch";
        ]
  in
  let cases =
    [
      (* expander churn: dirty sets are global (3-hop balls cover the graph),
         so this case exercises throughput of the full re-sweep path *)
      ( "uniform.expander",
        regular_expander 4241 (pick ~quick:100 ~standard:216 ~full:343) 12,
        Churn_gen.Uniform,
        pick ~quick:400 ~standard:1000 ~full:2000,
        40 );
      (* torus churn: large diameter keeps batches localized — this is the
         case whose swept/groups ratio certifies the incremental win *)
      ( "targeted.torus",
        Generators.torus (pick ~quick:20 ~standard:32 ~full:48) (pick ~quick:20 ~standard:32 ~full:48),
        Churn_gen.Targeted,
        pick ~quick:200 ~standard:500 ~full:1000,
        5 );
    ]
  in
  List.iter
    (fun (case, graph, kind, events, batch) ->
      let r = soak_case br ~case ~graph ~kind ~events ~batch ~requests:16 in
      Report.add_row table
        [
          case;
          string_of_int r.Soak.r_events_generated;
          Printf.sprintf "%d/%d" r.Soak.r_certified_batches r.Soak.r_batch_count;
          string_of_int r.Soak.r_edges_readded;
          Printf.sprintf "%d/%d" r.Soak.r_swept r.Soak.r_groups_total;
          string_of_int r.Soak.r_delivered;
          string_of_int r.Soak.r_dropped;
          (if r.Soak.r_final_stretch = max_int then "inf"
           else string_of_int r.Soak.r_final_stretch);
        ])
    cases;
  Report.add_note table "every batch heals to a certified spanner; swept/groups < 1 on the";
  Report.add_note table "torus shows the incremental certifier skipping clean source groups.";
  Report.print table

(* ------------------------------------------------------------------ *)
(* Engine: streaming Bigarray-CSR build + near-linear-time spanner at  *)
(* million-node scale (ROADMAP graph-engine item)                      *)
(* ------------------------------------------------------------------ *)

(* DCS_ENGINE_MAX_N caps the engine sweep sizes (CI smoke runs just the
   10^5 case without forking a dedicated scale). *)
let engine_max_n () =
  match Sys.getenv_opt "DCS_ENGINE_MAX_N" with
  | None | Some "" -> max_int
  | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> max_int)

let run_engine br =
  Report.section "ENGINE (Bigarray CSR storage + Elkin-Neiman construction)";
  Printf.printf "streaming expander -> Elkin-Neiman (k = 2) -> full grouped certification\n\n";
  let table =
    Report.create ~title:"graph engine at scale (expander, degree 16)"
      ~columns:
        [
          "n"; "m"; "m(H)"; "removed"; "repaired"; "stretch"; "build s"; "spanner s";
          "certify s"; "Mnodes/s"; "Medges/s"; "peak RSS";
        ]
  in
  let ns =
    pick
      ~quick:[ 100_000; 1_000_000 ]
      ~standard:[ 100_000; 1_000_000; 2_000_000 ]
      ~full:[ 100_000; 1_000_000; 4_000_000 ]
    |> List.filter (fun n -> n <= engine_max_n ())
  in
  (* Resource.sample is a no-op unless metrics (or tracing) is on; enable it
     for the duration of the block so the peak-RSS gauge sees every phase
     boundary, then restore the flag. *)
  let saved_metrics = !Obs.metrics in
  Obs.metrics := true;
  Fun.protect
    ~finally:(fun () -> Obs.metrics := saved_metrics)
    (fun () ->
      List.iter
        (fun n ->
          let degree = 16 in
          Resource.sample ();
          let t0 = Obs.now_us () in
          let g = Generators.expander (Prng.create (8000 + (n / 1000))) n degree in
          let t1 = Obs.now_us () in
          Resource.sample ();
          let r = Elkin_neiman.build (Prng.create (8100 + (n / 1000))) g in
          let t2 = Obs.now_us () in
          Resource.sample ();
          let h = r.Elkin_neiman.spanner in
          let stretch = Stretch.exact_bounded g h ~bound:3 in
          let t3 = Obs.now_us () in
          Resource.sample ();
          let m_graph = Graph.m g and m_spanner = Graph.m h in
          let total_s = (t3 -. t0) /. 1e6 in
          let nodes_per_sec = float_of_int n /. total_s in
          let edges_per_sec = float_of_int m_graph /. total_s in
          let peak = Resource.peak_rss_kb () in
          let case = Printf.sprintf "engine.n%d" n in
          (* seeded + integer-only generator: exact across platforms *)
          Bench_report.add br ~units:"edges" (case ^ ".m_graph") (float_of_int m_graph);
          (* EN keep rule compares libm-derived floats, so the edge count can
             drift by a handful of edges across libms — well inside the
             percent-scale gate tolerance *)
          Bench_report.add br ~units:"edges" (case ^ ".m_spanner") (float_of_int m_spanner);
          Bench_report.add br ~units:"bool" ~higher_is_better:true (case ^ ".certified")
            (if stretch <= 3 then 1.0 else 0.0);
          Bench_report.add br ~stable:false ~units:"edges" (case ^ ".removed")
            (float_of_int r.Elkin_neiman.removed);
          Bench_report.add br ~stable:false ~units:"edges" (case ^ ".repaired")
            (float_of_int r.Elkin_neiman.repaired);
          Bench_report.add br ~stable:false ~units:"ms" (case ^ ".build_ms")
            ((t1 -. t0) /. 1e3);
          Bench_report.add br ~stable:false ~units:"ms" (case ^ ".spanner_ms")
            ((t2 -. t1) /. 1e3);
          Bench_report.add br ~stable:false ~units:"ms" (case ^ ".certify_ms")
            ((t3 -. t2) /. 1e3);
          Bench_report.add br ~stable:false ~units:"nodes/s" ~higher_is_better:true
            (case ^ ".nodes_per_sec") nodes_per_sec;
          Bench_report.add br ~stable:false ~units:"edges/s" ~higher_is_better:true
            (case ^ ".edges_per_sec") edges_per_sec;
          Bench_report.add br ~stable:false ~units:"kb" (case ^ ".peak_rss_kb")
            (float_of_int peak);
          Report.add_row table
            [
              string_of_int n;
              string_of_int m_graph;
              string_of_int m_spanner;
              string_of_int r.Elkin_neiman.removed;
              string_of_int r.Elkin_neiman.repaired;
              string_of_int stretch;
              Printf.sprintf "%.2f" ((t1 -. t0) /. 1e6);
              Printf.sprintf "%.2f" ((t2 -. t1) /. 1e6);
              Printf.sprintf "%.2f" ((t3 -. t2) /. 1e6);
              Printf.sprintf "%.2f" (nodes_per_sec /. 1e6);
              Printf.sprintf "%.2f" (edges_per_sec /. 1e6);
              Printf.sprintf "%d MB" (peak / 1024);
            ])
        ns);
  Report.add_note table "whole pipeline is O(n + m): streaming generator, counting-sort CSR,";
  Report.add_note table "k rounds of max-propagation, grouped MS-BFS certificate; peak RSS is";
  Report.add_note table "checkpoint-sampled at phase boundaries (Dcs_obs.Resource).";
  Report.print table

(* ------------------------------------------------------------------ *)
(* Weighted: integer edge weights end to end — weighted generators,    *)
(* the weight-aware Baswana–Sen entry, Dijkstra certification          *)
(* (ROADMAP weighted-graphs item)                                      *)
(* ------------------------------------------------------------------ *)

let run_weighted br =
  Report.section "WEIGHTED (integer edge weights: generators, Baswana-Sen, Dijkstra certification)";
  Printf.printf
    "weighted families -> baswana-sen-weighted (k = 2) -> exact weighted stretch via\n";
  Printf.printf "Dijkstra sweeps; certificate bound is (2k-1) = 3 per edge weight\n\n";
  let w_max = 8 in
  let table =
    Report.create ~title:(Printf.sprintf "weighted spanner pipeline (w_max = %d)" w_max)
      ~columns:[ "case"; "n"; "m(G)"; "m(H)"; "kept %"; "stretch"; "certified"; "build ms"; "certify ms" ]
  in
  let ctor = Construction.find_exn "baswana-sen-weighted" in
  let cases =
    [
      (* degree ~3 sqrt(n): above the n^{3/2} crossover, so the clustering
         actually sparsifies instead of keeping every edge *)
      ( "expander",
        let n = pick ~quick:300 ~standard:600 ~full:1200 in
        let d = 3 * int_of_float (sqrt (float_of_int n)) in
        Generators.weighted_expander (Prng.create 7001) n d ~w_max );
      ( "torus",
        let side = pick ~quick:18 ~standard:28 ~full:40 in
        Generators.weighted_torus (Prng.create 7002) side side ~w_max );
    ]
  in
  List.iter
    (fun (case, g) ->
      let t0 = Obs.now_us () in
      let dc = Construction.build ctor (Prng.create 7003) g in
      let t1 = Obs.now_us () in
      let h = dc.Dc.spanner in
      let stretch = Stretch.exact g h in
      let t2 = Obs.now_us () in
      let mg = Graph.m g and mh = Graph.m h in
      let certified = stretch <> max_int && stretch <= 3 in
      let key name = Printf.sprintf "weighted.%s.%s" case name in
      (* seeded, integer-weight, integer-distance pipeline: exact across
         platforms, so all four rows are baseline-eligible *)
      Bench_report.add br ~units:"edges" (key "m_graph") (float_of_int mg);
      Bench_report.add br ~units:"edges" (key "m_spanner") (float_of_int mh);
      Bench_report.add br ~units:"ratio" (key "stretch")
        (if stretch = max_int then -1.0 else float_of_int stretch);
      Bench_report.add br ~units:"bool" ~higher_is_better:true (key "certified")
        (if certified then 1.0 else 0.0);
      Bench_report.add br ~stable:false ~units:"ms" (key "build_ms") ((t1 -. t0) /. 1e3);
      Bench_report.add br ~stable:false ~units:"ms" (key "certify_ms") ((t2 -. t1) /. 1e3);
      Report.add_row table
        [
          case;
          string_of_int (Graph.n g);
          string_of_int mg;
          string_of_int mh;
          Printf.sprintf "%.1f" (100.0 *. float_of_int mh /. float_of_int (if mg = 0 then 1 else mg));
          (if stretch = max_int then "inf" else string_of_int stretch);
          string_of_bool certified;
          Printf.sprintf "%.2f" ((t1 -. t0) /. 1e3);
          Printf.sprintf "%.2f" ((t2 -. t1) /. 1e3);
        ])
    cases;
  (* cross-kernel check: on a unit-weight graph the Dijkstra arena must agree
     with BFS source by source — the dispatch rule's semantic anchor *)
  let n = pick ~quick:400 ~standard:800 ~full:1600 in
  let g = Generators.expander (Prng.create 7004) n 8 in
  let gc = Csr.snapshot g in
  let identical = ref true in
  for s = 0 to min (n - 1) 63 do
    if Dijkstra.distances gc s <> Bfs.distances gc s then identical := false
  done;
  Bench_report.add br ~units:"bool" ~higher_is_better:true "weighted.unit.dijkstra_identical"
    (if !identical then 1.0 else 0.0);
  Report.add_note table
    (Printf.sprintf "unit-weight cross-check (Dijkstra == BFS on %d sources): %s"
       (min n 64)
       (if !identical then "identical" else "** MISMATCH **"));
  Report.add_note table "stretch counts weight: d_H(u,v) <= 3*w(u,v) for every removed edge;";
  Report.add_note table "unit-weight graphs never enter this path (they keep the MS-BFS kernel).";
  Report.print table

(* ------------------------------------------------------------------ *)

(* dcs_lint wall-clock: how long the two-tier analyzer takes over the whole
   tree.  Shells out to the built executable — linking dcs_lint here would
   drag compiler-libs into the bench image, and its Matching/Trace module
   names collide with lib/routing and lib/obs under (wrapped false).  All
   rows are non-stable: wall time is machine-dependent and the exit code is
   the repo's business (CI gates it), not the baseline's. *)
let run_lint br =
  let candidates = [ "bin/dcs_lint.exe"; "_build/default/bin/dcs_lint.exe" ] in
  match List.find_opt Sys.file_exists candidates with
  | None ->
      Printf.printf "lint: dcs_lint.exe not built, skipping\n";
      Bench_report.add br ~stable:false ~units:"bool" "lint.ran" 0.0
  | Some exe ->
      let allow = if Sys.file_exists "lint.allow" then " --allow lint.allow" else "" in
      let cmd =
        Printf.sprintf "%s --json --strict%s lib bin bench > /dev/null"
          (Filename.quote exe) allow
      in
      let t0 = Obs.now_us () in
      let code = Sys.command cmd in
      let ms = (Obs.now_us () -. t0) /. 1e3 in
      Bench_report.add br ~stable:false ~units:"bool" "lint.ran" 1.0;
      Bench_report.add br ~stable:false ~units:"ms" "lint.wall_ms" ms;
      Bench_report.add br ~stable:false ~units:"code" "lint.exit_code" (float_of_int code);
      let table =
        Report.create ~title:"dcs_lint (two-tier static analysis)"
          ~columns:[ "metric"; "value" ]
      in
      Report.add_row table [ "exit code (strict)"; string_of_int code ];
      Report.add_row table [ "wall ms"; Printf.sprintf "%.1f" ms ];
      Report.print table

let all_blocks =
  [
    "table1";
    "figures";
    "lemmas";
    "distributed";
    "ablations";
    "extensions";
    "fault";
    "soak";
    "engine";
    "weighted";
    "timing";
    "kernels";
    "obs";
    "lint";
  ]

let print_trace_breakdown () =
  match Trace.profile () with
  | [] -> ()
  | rows ->
      let human us =
        if us > 1e6 then Printf.sprintf "%.2f s" (us /. 1e6)
        else if us > 1e3 then Printf.sprintf "%.2f ms" (us /. 1e3)
        else Printf.sprintf "%.0f us" us
      in
      let words w =
        if w > 1e9 then Printf.sprintf "%.2f Gw" (w /. 1e9)
        else if w > 1e6 then Printf.sprintf "%.2f Mw" (w /. 1e6)
        else if w > 1e3 then Printf.sprintf "%.1f kw" (w /. 1e3)
        else Printf.sprintf "%.0f w" w
      in
      let table =
        Report.create ~title:"trace phase breakdown (DCS_TRACE)"
          ~columns:[ "span"; "count"; "total"; "mean"; "minor alloc"; "major alloc"; "major GCs" ]
      in
      List.iter
        (fun r ->
          Report.add_row table
            [
              r.Trace.pname;
              string_of_int r.Trace.pcount;
              human r.Trace.ptotal_us;
              human (r.Trace.ptotal_us /. float_of_int (max 1 r.Trace.pcount));
              words r.Trace.pminor_words;
              words r.Trace.pmajor_words;
              string_of_int r.Trace.pmajor_collections;
            ])
        rows;
      Report.print table

let block_runners =
  [
    ("table1", run_table1);
    ("figures", run_figures);
    ("lemmas", run_lemmas);
    ("distributed", run_distributed);
    ("ablations", run_ablations);
    ("extensions", run_extensions);
    ("fault", run_fault);
    ("soak", run_soak);
    ("engine", run_engine);
    ("weighted", run_weighted);
    ("timing", run_timing);
    ("kernels", run_kernels);
    ("obs", run_obs);
    ("lint", run_lint);
  ]

(* exit codes under --compare: 0 clean, 1 regression, 2 unusable baseline *)
let () =
  let compare_with = ref None and tolerance = ref 2.0 and baseline_out = ref None in
  let bad_flag msg =
    Printf.eprintf "bench: %s\n" msg;
    exit 2
  in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--compare" :: file :: rest ->
        compare_with := Some file;
        parse acc rest
    | "--write-baseline" :: file :: rest ->
        baseline_out := Some file;
        parse acc rest
    | "--tolerance" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some p when p >= 0.0 -> tolerance := p; parse acc rest
        | _ -> bad_flag (Printf.sprintf "--tolerance expects a non-negative percent, got %S" pct))
    | [ ("--compare" | "--write-baseline" | "--tolerance") as flag ] ->
        bad_flag (flag ^ " expects an argument")
    | arg :: rest -> parse (arg :: acc) rest
  in
  let blocks =
    match parse [] (List.tl (Array.to_list Sys.argv)) with
    | [] | [ "all" ] -> all_blocks
    | args -> args
  in
  Printf.printf "DC-spanner benchmark harness (scale: %s)\n" scale_name;
  let reports = ref [] in
  List.iter
    (fun block ->
      match List.assoc_opt block block_runners with
      | None ->
          Printf.printf
            "unknown block %S (use \
             table1|figures|lemmas|distributed|ablations|extensions|fault|soak|engine|weighted|timing|kernels|obs|lint)\n"
            block
      | Some run ->
          let br = Bench_report.create ~block ~scale:scale_name in
          Resource.sample ();
          let t0 = Obs.now_us () in
          Trace.with_span ~name:("bench." ^ block) (fun () -> run br);
          Bench_report.add br ~stable:false ~units:"ms" "wall_ms" ((Obs.now_us () -. t0) /. 1e3);
          Resource.sample ();
          (match Obs.rss_kb () with
          | Some kb -> Bench_report.add br ~stable:false ~units:"kb" "rss_kb" (float_of_int kb)
          | None -> ());
          (match Bench_report.bench_dir () with
          | Some dir -> Printf.printf "wrote %s\n" (Bench_report.write ~dir br)
          | None -> ());
          reports := br :: !reports)
    blocks;
  let reports = List.rev !reports in
  if !Obs.tracing then print_trace_breakdown ();
  (match !baseline_out with
  | None -> ()
  | Some file ->
      Bench_report.write_baseline ~file reports;
      Printf.printf "wrote baseline %s\n" file);
  match !compare_with with
  | None -> ()
  | Some file -> (
      match Bench_report.compare_file ~file ~tolerance:!tolerance reports with
      | Error msg ->
          Printf.eprintf "bench --compare: %s\n" msg;
          exit 2
      | Ok verdicts ->
          let table =
            Report.create
              ~title:
                (Printf.sprintf "regression gate vs %s (tolerance %.1f%%)" file !tolerance)
              ~columns:[ "block"; "metric"; "baseline"; "current"; "delta"; "status" ]
          in
          let regressions = ref 0 in
          List.iter
            (fun v ->
              if v.Bench_report.v_regressed then incr regressions;
              Report.add_row table
                [
                  v.Bench_report.v_block;
                  v.Bench_report.v_metric;
                  fmt v.Bench_report.v_baseline;
                  (if Float.is_nan v.Bench_report.v_current then "missing"
                   else fmt v.Bench_report.v_current);
                  (if Float.is_nan v.Bench_report.v_delta_pct then "n/a"
                   else Printf.sprintf "%+.2f%%" v.Bench_report.v_delta_pct);
                  (if v.Bench_report.v_regressed then "** REGRESSED **" else "ok");
                ])
            verdicts;
          Report.print table;
          if !regressions > 0 then begin
            Printf.printf "%d metric(s) regressed past the %.1f%% tolerance\n" !regressions
              !tolerance;
            exit 1
          end
          else Printf.printf "compare ok: %d stable metric(s) within tolerance\n"
              (List.length verdicts))
