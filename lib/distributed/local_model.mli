(** Synchronous LOCAL-model simulator.

    The LOCAL model (paper Section 7): computation proceeds in synchronous
    rounds; in each round every node reads the messages its neighbors sent in
    the previous round, updates its state, and sends one (unbounded) message
    per incident edge.  There is no bandwidth limit — the model measures
    {e locality} (round count), which is why Corollary 3's O(1)-round bound
    is meaningful.

    The simulator is deterministic: nodes are stepped in index order and
    inboxes are sorted by sender. *)

type 'msg outbox = (int * 'msg) list
(** Messages to send this round: [(neighbor, message)].  Sending to a
    non-neighbor raises. *)

type ('state, 'msg) step =
  round:int -> me:int -> neighbors:int array -> 'state -> (int * 'msg) list -> 'state * 'msg outbox
(** One node's transition: receives the round number (starting at 0), its id,
    its neighbor list (sorted), its state, and the inbox
    [(sender, message)] from the previous round (empty in round 0). *)

type stats = {
  rounds : int;  (** rounds executed *)
  messages : int;  (** total messages delivered *)
}

val run :
  Graph.t -> rounds:int -> init:(int -> 'state) -> step:('state, 'msg) step -> 'state array * stats
(** Execute [rounds] synchronous rounds on the graph and return the final
    states. *)
