(** Distributed Theorem 2: O(1)-round spanner {e and} routing in LOCAL.

    Section 7 gives the distributed implementation for Algorithm 1; the
    Theorem 2 construction distributes even more readily, and — going beyond
    the paper — so does its {e router}, because a removed edge's replacement
    path lives entirely inside the 2-hop ball of its endpoints:

    + {b Round 0} — every edge's smaller endpoint flips the shared sampling
      coin ([p = n^{2/3}/Δ]) and announces the outcome; the surviving edges
      are the spanner (the construction needs nothing else);
    + {b Rounds 1–2} — two knowledge floods: afterwards each node knows all
      edges (with coins) incident to its distance-≤2 ball — exactly the
      inputs of the Lemma 4 neighborhood matching for any incident edge;
    + {b Round 3} — the source of every routing request that lost its edge
      computes the surviving-candidate set {e locally} (the same Hopcroft–
      Karp the centralized router runs) and picks a replacement with a
      shared per-request coin.

    {!run} executes the protocol for a matching routing problem and the test
    suite asserts the resulting paths equal {!reference}'s centralized
    computation — full-information and 2-hop-local routing coincide. *)

type result = {
  spanner : Graph.t;
  routing : Routing.routing;  (** replacement paths, one per request *)
  rounds : int;
  messages : int;
}

val run : seed:int -> Graph.t -> (int * int) array -> result
(** Execute the protocol: build the sampled spanner and route the given
    matching (pairs must be edges of the graph; each source must own its
    request, i.e. pairs are oriented).  Deterministic in [seed]. *)

val reference : seed:int -> Graph.t -> (int * int) array -> Graph.t * Routing.routing
(** The same computation with full information; {!run} must match it
    edge-for-edge and path-for-path. *)
