let norm u v = if u < v then (u, v) else (v, u)

let edge_coin ~seed ~p u v =
  let u, v = norm u v in
  let mix = (Hashtbl.hash (seed, u, v, 'e') lsl 31) lxor Hashtbl.hash (v, u, seed, 0x7e2) in
  Prng.bool (Prng.create mix) p

(* Deterministic per-request candidate choice shared by both sides. *)
let pick_index ~seed u v count =
  if count <= 0 then -1
  else begin
    let mix = (Hashtbl.hash (seed, v, u, 'r') lsl 29) lxor Hashtbl.hash (u, seed, v, 0x95c) in
    Prng.int (Prng.create mix) count
  end

(* The router's candidate computation over any graph view that contains the
   2-hop ball of (u, v): identical code for local and full knowledge, which
   is what makes the equality assertion meaningful. *)
let candidates view ~sampled u v =
  let commons, matched = Bipartite_matching.neighborhood_matching view u v in
  let two_hop =
    List.filter_map
      (fun x -> if sampled u x && sampled x v then Some [| u; x; v |] else None)
      (List.sort compare commons)
  in
  let three_hop =
    Array.to_list matched
    |> List.filter_map (fun (x, y) ->
           if sampled u x && sampled x y && sampled y v then Some [| u; x; y; v |] else None)
  in
  Array.of_list (two_hop @ three_hop)

let route_one view ~sampled ~seed (u, v) =
  if sampled u v then [| u; v |]
  else begin
    let cands = candidates view ~sampled u v in
    let idx = pick_index ~seed u v (Array.length cands) in
    if idx < 0 then [||] (* no surviving candidate: reported as empty *)
    else cands.(idx)
  end

let sampling_p g =
  let n = float_of_int (Graph.n g) in
  let delta = float_of_int (max 1 (Graph.max_degree g)) in
  min 1.0 ((n ** (2.0 /. 3.0)) /. delta)

let reference ~seed g pairs =
  let p = sampling_p g in
  let spanner = Graph.empty_like g in
  Graph.iter_edges g (fun u v ->
      if edge_coin ~seed ~p u v then ignore (Graph.add_edge spanner u v));
  let sampled x y = Graph.mem_edge spanner x y in
  let routing = Array.map (route_one g ~sampled ~seed) pairs in
  (spanner, routing)

(* ---- LOCAL protocol ---- *)

type state = {
  know : (int * int, bool) Hashtbl.t;
  mutable fresh : (int * int * bool) list;
  mutable answers : ((int * int) * Routing.path) list;
}

type result = { spanner : Graph.t; routing : Routing.routing; rounds : int; messages : int }

let run ~seed g pairs =
  let n = Graph.n g in
  let p = sampling_p g in
  Array.iter
    (fun (u, v) ->
      if not (Graph.mem_edge g u v) then
        invalid_arg "Dist_expander.run: request pairs must be graph edges")
    pairs;
  (* requests owned by their source *)
  let owned = Array.make n [] in
  Array.iter (fun (u, v) -> owned.(u) <- (u, v) :: owned.(u)) pairs;
  let init _ = { know = Hashtbl.create 64; fresh = []; answers = [] } in
  let learn st (u, v, flag) =
    if not (Hashtbl.mem st.know (u, v)) then begin
      Hashtbl.replace st.know (u, v) flag;
      st.fresh <- (u, v, flag) :: st.fresh
    end
  in
  let step ~round ~me ~neighbors st inbox =
    List.iter (fun (_, entries) -> List.iter (learn st) entries) inbox;
    match round with
    | 0 ->
        Array.iter (fun v -> if me < v then learn st (me, v, edge_coin ~seed ~p me v)) neighbors;
        let fresh = st.fresh in
        st.fresh <- [];
        (st, Array.to_list (Array.map (fun v -> (v, fresh)) neighbors))
    | 1 | 2 ->
        let fresh = st.fresh in
        st.fresh <- [];
        if fresh = [] then (st, [])
        else (st, Array.to_list (Array.map (fun v -> (v, fresh)) neighbors))
    | 3 ->
        (* local view: a graph over the global id space holding the ball *)
        if owned.(me) <> [] then begin
          let view = Graph.create n in
          Hashtbl.iter (fun (u, v) _ -> ignore (Graph.add_edge view u v)) st.know;
          let sampled x y =
            match Hashtbl.find_opt st.know (norm x y) with Some f -> f | None -> false
          in
          List.iter
            (fun req -> st.answers <- (req, route_one view ~sampled ~seed req) :: st.answers)
            owned.(me)
        end;
        (st, [])
    | _ -> (st, [])
  in
  let states, stats = Local_model.run g ~rounds:4 ~init ~step in
  (* assemble the spanner from the authoritative owner knowledge *)
  let spanner = Graph.empty_like g in
  Array.iteri
    (fun me st ->
      Hashtbl.iter
        (fun (u, v) flag -> if u = me && flag then ignore (Graph.add_edge spanner u v))
        st.know)
    states;
  let answer_map = Hashtbl.create (Array.length pairs) in
  Array.iter
    (fun st -> List.iter (fun (req, path) -> Hashtbl.replace answer_map req path) st.answers)
    states;
  let routing =
    Array.map
      (fun req ->
        match Hashtbl.find_opt answer_map req with
        | Some p -> p
        | None -> invalid_arg "Dist_expander.run: request not answered")
      pairs
  in
  { spanner; routing; rounds = stats.Local_model.rounds; messages = stats.Local_model.messages }
