(** Corollary 3: O(1)-round distributed Algorithm 1 in the LOCAL model.

    Protocol (paper Section 7):

    + {b Round 0} — for each edge, its smaller endpoint flips the sampling
      coin (shared randomness: a per-edge coin derived from the seed, so the
      centralized reference makes identical choices) and tells the other
      endpoint whether the edge survived into [G'];
    + {b Rounds 1–3} — every node floods everything it has learned about [G]
      and [G'] to its neighbors; after [k] flood rounds a node knows every
      edge incident to its distance-[k] ball, so 3 rounds cover the
      3-hop information that the support and 3-detour tests read;
    + {b Round 4} — the smaller endpoint of every non-sampled edge decides
      locally whether the edge is [(a, b)]-supported (keep removed) or must
      be reinserted, including the repair rule (reinsert when no 2-/3-detour
      survived into [G']), and informs the other endpoint.

    5 rounds total, independent of [n].  {!run} and {!reference} provably
    compute the same spanner (asserted by the test suite): locality is
    sufficient for Algorithm 1's decisions. *)

type result = {
  spanner : Graph.t;
  rounds : int;  (** LOCAL rounds executed (constant: 5) *)
  messages : int;  (** messages delivered by the simulator *)
  entries : int;  (** total edge-records carried by flood messages *)
}

val run : ?thresholds:int * int -> seed:int -> Graph.t -> result
(** Execute the protocol on the simulator.  [thresholds] is the support pair
    [(a, b)]; defaults to Algorithm 1's scaled defaults
    ([a = max 2 ⌈ln n⌉], [b = ⌈Δ/4⌉]). *)

val reference : ?thresholds:int * int -> seed:int -> Graph.t -> Graph.t
(** The centralized computation with the same per-edge coins — the spanner
    {!run} must reproduce exactly. *)
