let norm u v = if u < v then (u, v) else (v, u)

(* Per-edge coin shared by the distributed protocol and the centralized
   reference: both endpoints (and the reference) can evaluate it without
   communication, modelling shared randomness. *)
let edge_coin ~seed ~rho u v =
  let u, v = norm u v in
  let mix = (Hashtbl.hash (seed, u, v) lsl 31) lxor Hashtbl.hash (v, 0x5bd1e995, u, seed) in
  let rng = Prng.create mix in
  Prng.bool rng rho

let default_thresholds g =
  let n = Graph.n g in
  let delta = Graph.max_degree g in
  let a = max 2 (int_of_float (ceil (log (float_of_int (max 2 n))))) in
  let b = max 1 (delta / 4) in
  (a, b)

(* A knowledge view: everything the decision rule reads.  The reference
   instantiates it with the full graph, a node with its flooded local
   knowledge; running the *same* rule over both is what makes the
   equality assertion of Corollary 3 meaningful. *)
type view = {
  iter_nbrs : int -> (int -> unit) -> unit;  (* N_G as far as known *)
  mem : int -> int -> bool;  (* edge of G known *)
  sampled : int -> int -> bool;  (* known and survived into G' *)
}

(* [exists] over an iterator; all the decision-rule queries below are counts
   or existence checks, so they never depend on the iteration order *)
let exists_nbr view x p =
  try
    view.iter_nbrs x (fun z -> if p z then raise Exit);
    false
  with Exit -> true

let common_count view x y limit =
  let count = ref 0 in
  (try
     view.iter_nbrs x (fun z ->
         if view.mem y z then begin
           incr count;
           if !count >= limit then raise Exit
         end)
   with Exit -> ());
  !count

let supported_toward view ~a ~b u v =
  let count = ref 0 in
  (try
     view.iter_nbrs v (fun z ->
         if z <> u && common_count view u z (a + 1) >= a + 1 then begin
           incr count;
           if !count >= b then raise Exit
         end)
   with Exit -> ());
  !count >= b

let has_surviving_detour view u v =
  exists_nbr view u (fun x -> x <> v && view.sampled u x && view.sampled x v)
  || exists_nbr view v (fun z ->
         z <> u && z <> v && view.sampled v z
         && exists_nbr view z (fun x ->
                x <> u && x <> v && x <> z && view.sampled z x && view.sampled u x))

(* Whether a *non-sampled* edge (u, v) belongs to H: reinserted when it is
   not (a,b)-supported in either direction (Algorithm 1 line 9) or when all
   its detours died in the sampling (repair rule). *)
let removed_edge_in_h view ~a ~b u v =
  let supported = supported_toward view ~a ~b u v || supported_toward view ~a ~b v u in
  (not supported) || not (has_surviving_detour view u v)

let reference ?thresholds ~seed g =
  let a, b = match thresholds with Some t -> t | None -> default_thresholds g in
  let delta = max 1 (Graph.max_degree g) in
  let rho = float_of_int (max 1 (int_of_float (ceil (sqrt (float_of_int delta))))) /. float_of_int delta in
  let sampled_tbl = Hashtbl.create (2 * Graph.m g) in
  Graph.iter_edges g (fun u v -> Hashtbl.replace sampled_tbl (u, v) (edge_coin ~seed ~rho u v));
  let view =
    {
      iter_nbrs = (fun x f -> Graph.iter_neighbors g x f);
      mem = (fun x y -> Graph.mem_edge g x y);
      sampled =
        (fun x y -> match Hashtbl.find_opt sampled_tbl (norm x y) with Some f -> f | None -> false);
    }
  in
  let h = Graph.empty_like g in
  Graph.iter_edges g (fun u v ->
      let in_h =
        if view.sampled u v then true else removed_edge_in_h view ~a ~b u v
      in
      if in_h then ignore (Graph.add_edge h u v));
  h

(* ---- the LOCAL protocol ---- *)

type msg =
  | Entries of (int * int * bool) list  (* (u, v, sampled) knowledge records *)
  | Decision of int * int * bool  (* (u, v, in_h) from the deciding endpoint *)

type state = {
  know : (int * int, bool) Hashtbl.t;
  adj : (int, int list) Hashtbl.t;  (* adjacency derived from [know] *)
  mutable fresh : (int * int * bool) list;  (* learned last round, to flood *)
  mutable decisions : (int * int * bool) list;  (* for edges this node owns *)
  mutable heard : (int * int * bool) list;  (* decisions received from owners *)
  mutable entries_sent : int;
}

type result = { spanner : Graph.t; rounds : int; messages : int; entries : int }

let add_adj st x y =
  let cur = try Hashtbl.find st.adj x with Not_found -> [] in
  Hashtbl.replace st.adj x (y :: cur)

let learn st (u, v, flag) =
  if not (Hashtbl.mem st.know (u, v)) then begin
    Hashtbl.replace st.know (u, v) flag;
    add_adj st u v;
    add_adj st v u;
    st.fresh <- (u, v, flag) :: st.fresh
  end

let view_of st =
  {
    iter_nbrs = (fun x f -> List.iter f (try Hashtbl.find st.adj x with Not_found -> []));
    mem = (fun x y -> Hashtbl.mem st.know (norm x y));
    sampled =
      (fun x y -> match Hashtbl.find_opt st.know (norm x y) with Some f -> f | None -> false);
  }

let run ?thresholds ~seed g =
  let a, b = match thresholds with Some t -> t | None -> default_thresholds g in
  let delta = max 1 (Graph.max_degree g) in
  let rho = float_of_int (max 1 (int_of_float (ceil (sqrt (float_of_int delta))))) /. float_of_int delta in
  let init _ =
    {
      know = Hashtbl.create 64;
      adj = Hashtbl.create 64;
      fresh = [];
      decisions = [];
      heard = [];
      entries_sent = 0;
    }
  in
  let step ~round ~me ~neighbors st inbox =
    (* Integrate whatever arrived. *)
    List.iter
      (fun (_, msg) ->
        match msg with
        | Entries entries -> List.iter (learn st) entries
        | Decision (u, v, in_h) -> st.heard <- (u, v, in_h) :: st.heard)
      inbox;
    match round with
    | 0 ->
        (* Sample the edges this node owns (me < neighbor) and announce. *)
        Array.iter
          (fun v -> if me < v then learn st (me, v, edge_coin ~seed ~rho me v))
          neighbors;
        let fresh = st.fresh in
        st.fresh <- [];
        st.entries_sent <- st.entries_sent + (List.length fresh * Array.length neighbors);
        (st, Array.to_list (Array.map (fun v -> (v, Entries fresh)) neighbors))
    | 1 | 2 | 3 ->
        (* Flood rounds: forward newly-learned records everywhere. *)
        let fresh = st.fresh in
        st.fresh <- [];
        if fresh = [] then (st, [])
        else begin
          st.entries_sent <- st.entries_sent + (List.length fresh * Array.length neighbors);
          (st, Array.to_list (Array.map (fun v -> (v, Entries fresh)) neighbors))
        end
    | 4 ->
        (* Decide every owned edge and tell the partner. *)
        let view = view_of st in
        let outbox = ref [] in
        Array.iter
          (fun v ->
            if me < v then begin
              let sampled =
                match Hashtbl.find_opt st.know (me, v) with Some f -> f | None -> false
              in
              let in_h = if sampled then true else removed_edge_in_h view ~a ~b me v in
              st.decisions <- (me, v, in_h) :: st.decisions;
              outbox := (v, Decision (me, v, in_h)) :: !outbox
            end)
          neighbors;
        (st, !outbox)
    | _ -> (st, [])
  in
  let states, stats = Local_model.run g ~rounds:6 ~init ~step in
  let spanner = Graph.empty_like g in
  Array.iter
    (fun st -> List.iter (fun (u, v, in_h) -> if in_h then ignore (Graph.add_edge spanner u v)) st.decisions)
    states;
  (* Cross-check: every non-owner heard exactly its owner's decision, and
     the assembled spanner agrees with it (owners are the only writers, so
     membership must equal the announced bit in both directions). *)
  Array.iteri
    (fun me st ->
      List.iter
        (fun (u, v, in_h) ->
          assert (v = me);
          assert (Graph.mem_edge spanner u v = in_h))
        st.heard)
    states;
  let entries = Array.fold_left (fun acc st -> acc + st.entries_sent) 0 states in
  { spanner; rounds = stats.Local_model.rounds; messages = stats.Local_model.messages; entries }
