type 'msg outbox = (int * 'msg) list

type ('state, 'msg) step =
  round:int -> me:int -> neighbors:int array -> 'state -> (int * 'msg) list -> 'state * 'msg outbox

type stats = { rounds : int; messages : int }

(* Observed LOCAL complexity: rounds and messages accumulate across every
   simulated protocol run, so "rounds per run" vs. the paper's O(1)/O(log n)
   bounds is a checkable metric ([local.runs] gives the divisor). *)
let m_runs = Metrics.counter "local.runs"
let m_rounds = Metrics.counter "local.rounds"
let m_messages = Metrics.counter "local.messages"
let m_round_messages = Metrics.gauge "local.round_messages"

let run g ~rounds ~init ~step =
  Trace.with_span ~name:"local.run" @@ fun () ->
  let n = Graph.n g in
  let neighbors =
    Array.init n (fun v ->
        let ns = Array.make (Graph.degree g v) 0 in
        let i = ref 0 in
        Graph.iter_neighbors g v (fun x ->
            ns.(!i) <- x;
            incr i);
        Array.sort compare ns;
        ns)
  in
  let states = Array.init n init in
  let inboxes = Array.make n [] in
  let messages = ref 0 in
  for round = 0 to rounds - 1 do
    let at_round_start = !messages in
    let next_inboxes = Array.make n [] in
    for v = 0 to n - 1 do
      let inbox = List.sort (fun (a, _) (b, _) -> compare a b) inboxes.(v) in
      let state, outbox = step ~round ~me:v ~neighbors:neighbors.(v) states.(v) inbox in
      states.(v) <- state;
      List.iter
        (fun (dst, msg) ->
          if not (Graph.mem_edge g v dst) then
            invalid_arg "Local_model.run: message to a non-neighbor";
          incr messages;
          next_inboxes.(dst) <- (v, msg) :: next_inboxes.(dst))
        outbox
    done;
    Metrics.set_gauge m_round_messages (!messages - at_round_start);
    Array.blit next_inboxes 0 inboxes 0 n
  done;
  Metrics.incr m_runs;
  Metrics.add m_rounds rounds;
  Metrics.add m_messages !messages;
  (states, { rounds; messages = !messages })
