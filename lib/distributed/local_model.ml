type 'msg outbox = (int * 'msg) list

type ('state, 'msg) step =
  round:int -> me:int -> neighbors:int array -> 'state -> (int * 'msg) list -> 'state * 'msg outbox

type stats = { rounds : int; messages : int }

let run g ~rounds ~init ~step =
  let n = Graph.n g in
  let neighbors =
    Array.init n (fun v ->
        let ns = Array.of_list (Graph.neighbors g v) in
        Array.sort compare ns;
        ns)
  in
  let states = Array.init n init in
  let inboxes = Array.make n [] in
  let messages = ref 0 in
  for round = 0 to rounds - 1 do
    let next_inboxes = Array.make n [] in
    for v = 0 to n - 1 do
      let inbox = List.sort (fun (a, _) (b, _) -> compare a b) inboxes.(v) in
      let state, outbox = step ~round ~me:v ~neighbors:neighbors.(v) states.(v) inbox in
      states.(v) <- state;
      List.iter
        (fun (dst, msg) ->
          if not (Graph.mem_edge g v dst) then
            invalid_arg "Local_model.run: message to a non-neighbor";
          incr messages;
          next_inboxes.(dst) <- (v, msg) :: next_inboxes.(dst))
        outbox
    done;
    Array.blit next_inboxes 0 inboxes 0 n
  done;
  (states, { rounds; messages = !messages })
