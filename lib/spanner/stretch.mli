(** Distance-stretch measurement (Definition 1).

    For unweighted graphs the worst pairwise stretch of a spanner is attained
    on an edge of [G]: replacing every edge of a shortest path by its spanner
    detour multiplies the length by at most the worst edge detour, and edges
    are themselves pairs at distance 1.  So the exact distance stretch equals
    [max_{(u,v) ∈ E(G)} d_H(u, v)], which is what {!exact} computes.

    {b Kernel.}  Removed edges are grouped by their smaller endpoint and each
    group is answered from one bounded sweep; up to {!Bfs_batch.width} of
    those sweeps run bit-parallel in a single {!Bfs_batch} pass.  On the
    paper's regular constructions this is a [Δ × word]-factor fewer
    traversals than the per-edge path ({!exact_reference}), with
    bit-identical certificates — enforced by the property tests.

    {b Weighted graphs.}  When [g] (or [h]) {!Graph.is_weighted}, every
    entry point below dispatches to the weighted kernels instead: the
    stretch of a removed edge [(u,v)] is the ceiling ratio
    [⌈d_H(u,v) / w(u,v)⌉] (so [exact <= b] iff every removed edge satisfies
    [d_H <= b·w]); unbounded measurements run one {!Dijkstra} per source
    group, bounded measurements and certificates run the hop-capped
    {!Dijkstra.bellman_ford_bounded} ([bound·wmax] rounds suffice because
    weights are ≥ 1).  Unit-weight graphs never reach this path: they keep
    the MS-BFS kernel byte-for-byte. *)

val exact : ?snapshot:Csr.t -> Graph.t -> Graph.t -> int
(** [exact g h] is the exact distance stretch of spanner [h]: the maximum
    over edges [(u,v)] of [G] of [d_H(u,v)].  Returns [max_int] if some edge
    is disconnected in [h], stopping at the first such batch.  [snapshot],
    when given, must be [Csr.snapshot h] (lets callers reuse one snapshot
    across measurements). *)

val exact_parallel :
  ?domains:int -> ?bound:int -> ?snapshot:Csr.t -> Graph.t -> Graph.t -> int
(** {!exact} fanned out over OCaml 5 domains — one batched sweep
    ({!Bfs_batch.width} source groups) per work unit, read-only snapshots.
    Identical result to the sequential version; used by the harness at full
    scale.  A disconnected removed edge saturates the running max, letting
    every domain stop early.  [bound] as in {!exact_bounded}. *)

val exact_bounded : ?snapshot:Csr.t -> Graph.t -> Graph.t -> bound:int -> int
(** Like {!exact} but sweeps stop at depth [bound]; any edge whose spanner
    distance exceeds [bound] makes the result [max_int].  Much faster when
    the expected stretch is a small constant (the stretch-3 certificate). *)

val exact_reference : ?bound:int -> Graph.t -> Graph.t -> int
(** The pre-kernel implementation: one scalar bounded BFS per removed edge.
    Kept as the oracle for the property tests and as the baseline of the
    kernel-comparison bench ([bench kernels]).  Same contract as
    {!exact_bounded} (default [bound] = [max_int], i.e. {!exact}). *)

val exact_grouped : ?bound:int -> Graph.t -> Graph.t -> int
(** Half-way point between {!exact_reference} and the batched kernel: one
    scalar sweep per removed-edge {e source group} (no bit-parallelism).
    Isolates the grouping win from the batching win in [bench kernels]. *)

val is_three_spanner : Graph.t -> Graph.t -> bool
(** [is_three_spanner g h] checks the paper's headline guarantee:
    every removed edge has a spanner detour of length ≤ 3. *)

val sampled_pairs :
  ?snapshots:Csr.t * Csr.t -> Prng.t -> Graph.t -> Graph.t -> samples:int -> float
(** Monte-Carlo pairwise stretch: max over [samples] random connected node
    pairs of [d_H / d_G]; a sanity cross-check of {!exact} at scale.
    [snapshots], when given, must be [(Csr.snapshot g, Csr.snapshot h)].
    The random draws are identical with or without [snapshots]. *)

val violations : Graph.t -> Graph.t -> bound:int -> (int * int) list
(** Removed edges whose spanner distance exceeds [bound] — the counter-
    examples reported when a stretch certificate fails.  Sorted ascending
    (lexicographic on [(u, v)], [u < v]). *)

(** {2 Incremental certification}

    The churn seam: {!cert_create} runs the full grouped sweep once and
    caches each source group's verdict; after a mutation batch,
    {!violations_incremental} re-sweeps only the groups whose verdict could
    have changed.  Soundness of the dirty set: if a bounded spanner distance
    [d_H(u, v) ≤ bound] changed, the old or the new witness path uses a
    changed edge, and its prefix up to the {e first} changed edge survives
    in the new spanner — so [u] lies within [bound] hops of a touched node
    in the new spanner.  One multi-seed bounded BFS from the touched set
    therefore over-approximates every stale group, and the incremental
    result is byte-identical to a fresh {!violations} (qcheck-enforced). *)

type cert
(** Cached per-source certificate for one [(g, h, bound)] triple.  Mutable:
    updated in place by {!violations_incremental}. *)

type inc_report = {
  inc_violations : (int * int) list;
      (** same contract (content and order) as {!violations} *)
  inc_swept : int;  (** source groups re-swept this call *)
  inc_groups : int;  (** total source groups (removed-edge sources) *)
  inc_dirty : int;  (** nodes within [bound] of the touched set *)
}

val cert_create : ?snapshot:Csr.t -> Graph.t -> Graph.t -> bound:int -> cert
(** Full sweep; caches every group's violation list and worst bounded
    detour.  Raises [Invalid_argument] if the node counts differ or
    [bound < 1].  [snapshot], when given, must be [Csr.snapshot h]. *)

val violations_incremental :
  cert -> ?snapshot:Csr.t -> Graph.t -> Graph.t -> touched:int array -> inc_report
(** [violations_incremental cert g h ~touched] refreshes [cert] after a
    mutation batch whose churned endpoints are [touched] (for an isolated
    node: the node and its former neighbours; for an added or deleted edge:
    both endpoints — in either graph).  Every node whose [g]- or
    [h]-incident edges changed since the last refresh must appear in
    [touched]; duplicates are fine.  Returns the violations of the {e
    current} [(g, h)] — byte-identical to {!violations}[ g h ~bound] — plus
    sweep accounting.  Raises [Invalid_argument] on node-count mismatch or
    out-of-range touched nodes. *)

val cert_bound : cert -> int
(** The [bound] the certificate was built with. *)

val cert_groups : cert -> int
(** Source-group count at the last refresh. *)

val cert_violations : cert -> (int * int) list
(** Cached violations as of the last refresh (no sweep; same contract as
    {!violations}). *)

val cert_stretch_bound : cert -> int
(** Worst bounded detour over all cached groups: equals
    {!exact_bounded}[ g h ~bound] as of the last refresh ([max_int] when
    some removed edge is unreachable within the bound, [1] when no edges
    are removed). *)
