(** Distance-stretch measurement (Definition 1).

    For unweighted graphs the worst pairwise stretch of a spanner is attained
    on an edge of [G]: replacing every edge of a shortest path by its spanner
    detour multiplies the length by at most the worst edge detour, and edges
    are themselves pairs at distance 1.  So the exact distance stretch equals
    [max_{(u,v) ∈ E(G)} d_H(u, v)], which is what {!exact} computes.

    {b Kernel.}  Removed edges are grouped by their smaller endpoint and each
    group is answered from one bounded sweep; up to {!Bfs_batch.width} of
    those sweeps run bit-parallel in a single {!Bfs_batch} pass.  On the
    paper's regular constructions this is a [Δ × word]-factor fewer
    traversals than the per-edge path ({!exact_reference}), with
    bit-identical certificates — enforced by the property tests. *)

val exact : ?snapshot:Csr.t -> Graph.t -> Graph.t -> int
(** [exact g h] is the exact distance stretch of spanner [h]: the maximum
    over edges [(u,v)] of [G] of [d_H(u,v)].  Returns [max_int] if some edge
    is disconnected in [h], stopping at the first such batch.  [snapshot],
    when given, must be [Csr.snapshot h] (lets callers reuse one snapshot
    across measurements). *)

val exact_parallel :
  ?domains:int -> ?bound:int -> ?snapshot:Csr.t -> Graph.t -> Graph.t -> int
(** {!exact} fanned out over OCaml 5 domains — one batched sweep
    ({!Bfs_batch.width} source groups) per work unit, read-only snapshots.
    Identical result to the sequential version; used by the harness at full
    scale.  A disconnected removed edge saturates the running max, letting
    every domain stop early.  [bound] as in {!exact_bounded}. *)

val exact_bounded : ?snapshot:Csr.t -> Graph.t -> Graph.t -> bound:int -> int
(** Like {!exact} but sweeps stop at depth [bound]; any edge whose spanner
    distance exceeds [bound] makes the result [max_int].  Much faster when
    the expected stretch is a small constant (the stretch-3 certificate). *)

val exact_reference : ?bound:int -> Graph.t -> Graph.t -> int
(** The pre-kernel implementation: one scalar bounded BFS per removed edge.
    Kept as the oracle for the property tests and as the baseline of the
    kernel-comparison bench ([bench kernels]).  Same contract as
    {!exact_bounded} (default [bound] = [max_int], i.e. {!exact}). *)

val exact_grouped : ?bound:int -> Graph.t -> Graph.t -> int
(** Half-way point between {!exact_reference} and the batched kernel: one
    scalar sweep per removed-edge {e source group} (no bit-parallelism).
    Isolates the grouping win from the batching win in [bench kernels]. *)

val is_three_spanner : Graph.t -> Graph.t -> bool
(** [is_three_spanner g h] checks the paper's headline guarantee:
    every removed edge has a spanner detour of length ≤ 3. *)

val sampled_pairs :
  ?snapshots:Csr.t * Csr.t -> Prng.t -> Graph.t -> Graph.t -> samples:int -> float
(** Monte-Carlo pairwise stretch: max over [samples] random connected node
    pairs of [d_H / d_G]; a sanity cross-check of {!exact} at scale.
    [snapshots], when given, must be [(Csr.snapshot g, Csr.snapshot h)].
    The random draws are identical with or without [snapshots]. *)

val violations : Graph.t -> Graph.t -> bound:int -> (int * int) list
(** Removed edges whose spanner distance exceeds [bound] — the counter-
    examples reported when a stretch certificate fails.  Sorted ascending
    (lexicographic on [(u, v)], [u < v]). *)
