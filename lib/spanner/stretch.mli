(** Distance-stretch measurement (Definition 1).

    For unweighted graphs the worst pairwise stretch of a spanner is attained
    on an edge of [G]: replacing every edge of a shortest path by its spanner
    detour multiplies the length by at most the worst edge detour, and edges
    are themselves pairs at distance 1.  So the exact distance stretch equals
    [max_{(u,v) ∈ E(G)} d_H(u, v)], which is what {!exact} computes. *)

val exact : Graph.t -> Graph.t -> int
(** [exact g h] is the exact distance stretch of spanner [h]: the maximum
    over edges [(u,v)] of [G] of [d_H(u,v)].  Returns [max_int] if some edge
    is disconnected in [h].  O(removed-edges × BFS). *)

val exact_parallel : ?domains:int -> ?bound:int -> Graph.t -> Graph.t -> int
(** {!exact} fanned out over OCaml 5 domains (one bounded BFS per removed
    edge, read-only snapshots).  Identical result to the sequential version;
    used by the harness at full scale.  [bound] as in {!exact_bounded}. *)

val exact_bounded : Graph.t -> Graph.t -> bound:int -> int
(** Like {!exact} but BFS stops at depth [bound]; any edge whose spanner
    distance exceeds [bound] makes the result [max_int].  Much faster when
    the expected stretch is a small constant (the stretch-3 certificate). *)

val is_three_spanner : Graph.t -> Graph.t -> bool
(** [is_three_spanner g h] checks the paper's headline guarantee:
    every removed edge has a spanner detour of length ≤ 3. *)

val sampled_pairs : Prng.t -> Graph.t -> Graph.t -> samples:int -> float
(** Monte-Carlo pairwise stretch: max over [samples] random connected node
    pairs of [d_H / d_G]; a sanity cross-check of {!exact} at scale. *)

val violations : Graph.t -> Graph.t -> bound:int -> (int * int) list
(** Removed edges whose spanner distance exceeds [bound] — the counter-
    examples reported when a stretch certificate fails. *)
