(* The removed edges of a spanner cluster heavily by endpoint: a node that
   lost one of its Delta edges typically lost Theta(Delta) of them.  Grouping
   the removed edges by source answers all of a source's edges from ONE
   bounded sweep — a Delta-factor fewer sweeps than the per-edge path — and
   the batched kernel then runs up to [Bfs_batch.width] of those sweeps at
   once.  [exact_reference] keeps the per-edge scalar path as the oracle the
   property tests and the kernel-comparison bench compare against. *)

(* removed edges grouped by their smaller endpoint: sources ascending, each
   with the array of opposite endpoints *)
let removed_by_source g h =
  let n = Graph.n g in
  let buckets = Array.make n [] in
  let count = ref 0 in
  Graph.iter_edges g (fun u v ->
      if not (Graph.mem_edge h u v) then begin
        buckets.(u) <- v :: buckets.(u);
        incr count
      end);
  let groups = ref [] in
  for u = n - 1 downto 0 do
    match buckets.(u) with
    | [] -> ()
    | vs -> groups := (u, Array.of_list vs) :: !groups
  done;
  (Array.of_list !groups, !count)

let snapshot_of h = function Some c -> c | None -> Csr.snapshot h

(* worst detour over the groups in [groups.(lo .. lo+len-1)], answered by one
   batched sweep; [max_int] as soon as some edge is unreachable within
   [bound] *)
let batch_worst hc groups ~bound ~lo ~len =
  let sources = Array.init len (fun i -> fst groups.(lo + i)) in
  let rows = Bfs_batch.run ~bound hc sources in
  let worst = ref 1 in
  (try
     for i = 0 to len - 1 do
       let row = rows.(i) and _, targets = groups.(lo + i) in
       Array.iter
         (fun v ->
           let d = row.(v) in
           if d < 0 then begin
             worst := max_int;
             raise Exit
           end
           else if d > !worst then worst := d)
         targets
     done
   with Exit -> ());
  !worst

let exact_impl ?snapshot g h ~bound =
  Trace.with_span ~name:"spanner.certify" (fun () ->
      let hc = snapshot_of h snapshot in
      let groups, count = removed_by_source g h in
      if count = 0 then 1
      else
        Trace.with_span ~name:"bfs.sweep" (fun () ->
            let ng = Array.length groups in
            let worst = ref 1 and lo = ref 0 in
            while !worst < max_int && !lo < ng do
              let len = min Bfs_batch.width (ng - !lo) in
              worst := max !worst (batch_worst hc groups ~bound ~lo:!lo ~len);
              lo := !lo + len
            done;
            !worst))

let exact ?snapshot g h = exact_impl ?snapshot g h ~bound:max_int

let exact_parallel ?domains ?(bound = max_int) ?snapshot g h =
  Trace.with_span ~name:"spanner.certify" (fun () ->
      let hc = snapshot_of h snapshot in
      let groups, count = removed_by_source g h in
      if count = 0 then 1
      else begin
        let ng = Array.length groups in
        let nb = ((ng - 1) / Bfs_batch.width) + 1 in
        let per_batch b =
          let lo = b * Bfs_batch.width in
          batch_worst hc groups ~bound ~lo ~len:(min Bfs_batch.width (ng - lo))
        in
        Trace.with_span ~name:"bfs.sweep" (fun () ->
            (* one disconnected edge saturates the max: stop sweeping *)
            max 1 (Parallel.max_range_saturating ?domains nb per_batch ~saturate:max_int))
      end)

let exact_bounded ?snapshot g h ~bound = exact_impl ?snapshot g h ~bound

let exact_reference ?(bound = max_int) g h =
  let hc = Csr.snapshot h in
  let worst = ref 1 in
  (try
     Graph.iter_edges g (fun u v ->
         if not (Graph.mem_edge h u v) then begin
           let d = Bfs.distance_bounded hc u v ~bound in
           if d < 0 then begin
             worst := max_int;
             raise Exit
           end;
           worst := max !worst d
         end)
   with Exit -> ());
  !worst

let exact_grouped ?(bound = max_int) g h =
  let hc = Csr.snapshot h in
  let groups, count = removed_by_source g h in
  if count = 0 then 1
  else begin
    let worst = ref 1 in
    (try
       Array.iter
         (fun (u, targets) ->
           let dist = Bfs.distances_bounded hc u ~bound in
           Array.iter
             (fun v ->
               let d = dist.(v) in
               if d < 0 then begin
                 worst := max_int;
                 raise Exit
               end
               else if d > !worst then worst := d)
             targets)
         groups
     with Exit -> ());
    !worst
  end

let is_three_spanner g h = exact_bounded g h ~bound:3 <= 3

let sampled_pairs ?snapshots rng g h ~samples =
  let gc, hc =
    match snapshots with Some p -> p | None -> (Csr.snapshot g, Csr.snapshot h)
  in
  let n = Graph.n g in
  if n < 2 then 1.0
  else begin
    let worst = ref 1.0 in
    for _ = 1 to samples do
      let u = Prng.int rng n in
      let v = Prng.int rng n in
      if u <> v then begin
        let dg = Bfs.distance gc u v in
        if dg > 0 then begin
          let dh = Bfs.distance hc u v in
          let ratio =
            if dh < 0 then infinity else float_of_int dh /. float_of_int dg
          in
          worst := max !worst ratio
        end
      end
    done;
    !worst
  end

let violations g h ~bound =
  let hc = Csr.snapshot h in
  let groups, _ = removed_by_source g h in
  let bad = ref [] in
  let ng = Array.length groups in
  let lo = ref 0 in
  while !lo < ng do
    let len = min Bfs_batch.width (ng - !lo) in
    let sources = Array.init len (fun i -> fst groups.(!lo + i)) in
    let rows = Bfs_batch.run ~bound hc sources in
    for i = 0 to len - 1 do
      let u, targets = groups.(!lo + i) and row = rows.(i) in
      Array.iter
        (fun v ->
          let d = row.(v) in
          if d < 0 || d > bound then bad := (u, v) :: !bad)
        targets
    done;
    lo := !lo + len
  done;
  (* canonical order: callers (Repair, reports) must not depend on hashtable
     iteration order *)
  List.sort compare !bad

(* ---- incremental certification (the churn seam) ---- *)

(* Per-source cache of the bounded certificate.  After a localized mutation
   batch, a source group's verdict can only change if the group's removed-
   edge set changed (then an endpoint of the change was touched) or if the
   bounded distance to some target changed.  In the latter case the old or
   the new witness path (length <= bound) uses a changed edge, and its
   prefix up to the FIRST changed edge survives in the new spanner — so the
   source lies within [bound] hops of a touched node in the new spanner.
   Hence one multi-seed bounded sweep from the touched set marks every
   source whose cached verdict could be stale, and only those groups re-run
   their batched MS-BFS sweep. *)

type cert = {
  c_bound : int;
  c_worst : int array;
      (* worst bounded detour per source group; 1 when the source has no
         group, [max_int] when some target is unreachable within the bound *)
  c_viol : (int * int) list array;  (* violating pairs per source, ascending *)
  mutable c_groups : int;  (* group count at the last refresh *)
}

type inc_report = {
  inc_violations : (int * int) list;
  inc_swept : int;
  inc_groups : int;
  inc_dirty : int;
}

let m_inc_swept = Metrics.counter "stretch.inc_swept"
let m_inc_reused = Metrics.counter "stretch.inc_reused"

(* one batched sweep over [groups.(lo .. lo+len-1)], recording per-source
   worst detours and violation lists into the cache arrays *)
let sweep_into cert hc groups ~lo ~len =
  let bound = cert.c_bound in
  let sources = Array.init len (fun i -> fst groups.(lo + i)) in
  let rows = Bfs_batch.run ~bound hc sources in
  for i = 0 to len - 1 do
    let u, targets = groups.(lo + i) and row = rows.(i) in
    let worst = ref 1 and bad = ref [] in
    Array.iter
      (fun v ->
        let d = row.(v) in
        if d < 0 || d > bound then begin
          worst := max_int;
          bad := (u, v) :: !bad
        end
        else if d > !worst then worst := d)
      targets;
    cert.c_worst.(u) <- !worst;
    cert.c_viol.(u) <- List.sort compare !bad
  done

let cert_create ?snapshot g h ~bound =
  if Graph.n g <> Graph.n h then invalid_arg "Stretch.cert_create: node counts differ";
  if bound < 1 then invalid_arg "Stretch.cert_create: bound < 1";
  Trace.with_span ~name:"spanner.certify_incremental" (fun () ->
      let hc = snapshot_of h snapshot in
      let groups, _ = removed_by_source g h in
      let n = Graph.n g in
      let cert =
        { c_bound = bound; c_worst = Array.make n 1; c_viol = Array.make n []; c_groups = 0 }
      in
      let ng = Array.length groups in
      cert.c_groups <- ng;
      let lo = ref 0 in
      while !lo < ng do
        let len = min Bfs_batch.width (ng - !lo) in
        sweep_into cert hc groups ~lo:!lo ~len;
        lo := !lo + len
      done;
      cert)

let cert_bound cert = cert.c_bound

let cert_groups cert = cert.c_groups

let cert_violations cert =
  let bad = ref [] in
  for u = Array.length cert.c_viol - 1 downto 0 do
    bad := cert.c_viol.(u) @ !bad
  done;
  !bad

let cert_stretch_bound cert = Array.fold_left max 1 cert.c_worst

(* nodes within [bound] hops of any seed in [hc] (multi-seed bounded BFS);
   seeds themselves are always marked, even when isolated *)
let within_bound hc seeds ~bound =
  let n = Csr.n hc in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  let tail = ref 0 in
  Array.iter
    (fun s ->
      if s < 0 || s >= n then
        invalid_arg "Stretch.violations_incremental: touched node out of range";
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        queue.(!tail) <- s;
        incr tail
      end)
    seeds;
  let head = ref 0 in
  while !head < !tail do
    let v = queue.(!head) in
    incr head;
    if dist.(v) < bound then
      Csr.iter_neighbors hc v (fun u ->
          if dist.(u) < 0 then begin
            dist.(u) <- dist.(v) + 1;
            queue.(!tail) <- u;
            incr tail
          end)
  done;
  Array.map (fun d -> d >= 0) dist

let violations_incremental cert ?snapshot g h ~touched =
  if Graph.n g <> Graph.n h then
    invalid_arg "Stretch.violations_incremental: node counts differ";
  if Graph.n g <> Array.length cert.c_worst then
    invalid_arg "Stretch.violations_incremental: certificate built for a different node count";
  Trace.with_span ~name:"spanner.certify_incremental" (fun () ->
      let hc = snapshot_of h snapshot in
      let groups, _ = removed_by_source g h in
      let ng = Array.length groups in
      cert.c_groups <- ng;
      let dirty = within_bound hc touched ~bound:cert.c_bound in
      (* a dirty source whose group shrank or vanished must not keep stale
         entries; clean sources kept their groups (a group change touches
         its source), so their cache lines are current *)
      let ndirty = ref 0 in
      Array.iteri
        (fun v d ->
          if d then begin
            incr ndirty;
            cert.c_worst.(v) <- 1;
            cert.c_viol.(v) <- []
          end)
        dirty;
      (* compact the dirty groups and sweep them in width-sized batches *)
      let pending = Array.make (min ng (Array.length groups)) (0, [||]) in
      let np = ref 0 in
      Array.iter
        (fun ((u, _) as grp) ->
          if dirty.(u) then begin
            pending.(!np) <- grp;
            incr np
          end)
        groups;
      let swept = !np in
      let lo = ref 0 in
      while !lo < swept do
        let len = min Bfs_batch.width (swept - !lo) in
        sweep_into cert hc pending ~lo:!lo ~len;
        lo := !lo + len
      done;
      Metrics.add m_inc_swept swept;
      Metrics.add m_inc_reused (ng - swept);
      let bad = ref [] in
      for i = ng - 1 downto 0 do
        bad := cert.c_viol.(fst groups.(i)) @ !bad
      done;
      {
        inc_violations = !bad;
        inc_swept = swept;
        inc_groups = ng;
        inc_dirty = !ndirty;
      })
