(* The removed edges of a spanner cluster heavily by endpoint: a node that
   lost one of its Delta edges typically lost Theta(Delta) of them.  Grouping
   the removed edges by source answers all of a source's edges from ONE
   bounded sweep — a Delta-factor fewer sweeps than the per-edge path — and
   the batched kernel then runs up to [Bfs_batch.width] of those sweeps at
   once.  [exact_reference] keeps the per-edge scalar path as the oracle the
   property tests and the kernel-comparison bench compare against. *)

(* removed edges grouped by their smaller endpoint: sources ascending, each
   with the array of opposite endpoints *)
let removed_by_source g h =
  let n = Graph.n g in
  let buckets = Array.make n [] in
  let count = ref 0 in
  Graph.iter_edges g (fun u v ->
      if not (Graph.mem_edge h u v) then begin
        buckets.(u) <- v :: buckets.(u);
        incr count
      end);
  let groups = ref [] in
  for u = n - 1 downto 0 do
    match buckets.(u) with
    | [] -> ()
    | vs -> groups := (u, Array.of_list vs) :: !groups
  done;
  (Array.of_list !groups, !count)

(* weighted variant: each target carries the removed edge's weight *)
let removed_by_source_w g h =
  let n = Graph.n g in
  let buckets = Array.make n [] in
  let count = ref 0 in
  Graph.iter_edges_w g (fun u v w ->
      if not (Graph.mem_edge h u v) then begin
        buckets.(u) <- (v, w) :: buckets.(u);
        incr count
      end);
  let groups = ref [] in
  for u = n - 1 downto 0 do
    match buckets.(u) with
    | [] -> ()
    | vs -> groups := (u, Array.of_list vs) :: !groups
  done;
  (Array.of_list !groups, !count)

let snapshot_of h = function Some c -> c | None -> Csr.snapshot h

(* Kernel dispatch rule: a graph with any non-unit weight certifies through
   the Dijkstra / bounded Bellman–Ford path below; everything else keeps the
   bit-parallel MS-BFS path bit-for-bit.  The weighted stretch of a removed
   edge is the ceiling ratio [⌈d_H(u,v) / w(u,v)⌉], so "stretch ≤ bound" and
   "d_H ≤ bound·w" agree — the weighted generalization of the unweighted
   edge-detour criterion. *)
let weighted g h = Graph.is_weighted g || Graph.is_weighted h

let ratio_ceil d w = (d + w - 1) / w

(* Worst ceiling ratio over one weighted source group; [max_int] as soon as
   some target is unreachable or exceeds [bound].  The unbounded case runs a
   full Dijkstra; the bounded case runs the hop-capped Bellman–Ford with
   [bound * wmax] rounds — weights are >= 1, so any target within its
   weighted bound [bound * w] has a witness path of at most [bound * w <=
   bound * wmax] edges and gets its exact distance, while a violating target
   can only look worse (see {!Dijkstra.bellman_ford_bounded}). *)
let group_worst_w hc (u, targets) ~bound =
  let dist =
    if bound = max_int then Dijkstra.distances hc u
    else begin
      let wmax = Array.fold_left (fun acc (_, w) -> max acc w) 1 targets in
      Dijkstra.bellman_ford_bounded hc u ~hops:(bound * wmax)
    end
  in
  let worst = ref 1 in
  (try
     Array.iter
       (fun (v, w) ->
         let d = dist.(v) in
         if d < 0 || (bound < max_int && d > bound * w) then begin
           worst := max_int;
           raise Exit
         end
         else begin
           let r = ratio_ceil d w in
           if r > !worst then worst := r
         end)
       targets
   with Exit -> ());
  !worst

(* sequential weighted sweep over all groups, stopping once saturated *)
let exact_impl_w hc groups ~bound =
  Trace.with_span ~name:"dijkstra.sweep" (fun () ->
      let ng = Array.length groups in
      let worst = ref 1 and i = ref 0 in
      while !worst < max_int && !i < ng do
        worst := max !worst (group_worst_w hc groups.(!i) ~bound);
        incr i
      done;
      !worst)

(* worst detour over the groups in [groups.(lo .. lo+len-1)], answered by one
   batched sweep; [max_int] as soon as some edge is unreachable within
   [bound] *)
let batch_worst hc groups ~bound ~lo ~len =
  let sources = Array.init len (fun i -> fst groups.(lo + i)) in
  let rows = Bfs_batch.run ~bound hc sources in
  let worst = ref 1 in
  (try
     for i = 0 to len - 1 do
       let row = rows.(i) and _, targets = groups.(lo + i) in
       Array.iter
         (fun v ->
           let d = row.(v) in
           if d < 0 then begin
             worst := max_int;
             raise Exit
           end
           else if d > !worst then worst := d)
         targets
     done
   with Exit -> ());
  !worst

let exact_impl ?snapshot g h ~bound =
  Trace.with_span ~name:"spanner.certify" (fun () ->
      let hc = snapshot_of h snapshot in
      if weighted g h then begin
        let groups, count = removed_by_source_w g h in
        if count = 0 then 1 else exact_impl_w hc groups ~bound
      end
      else begin
        let groups, count = removed_by_source g h in
        if count = 0 then 1
        else
          Trace.with_span ~name:"bfs.sweep" (fun () ->
              let ng = Array.length groups in
              let worst = ref 1 and lo = ref 0 in
              while !worst < max_int && !lo < ng do
                let len = min Bfs_batch.width (ng - !lo) in
                worst := max !worst (batch_worst hc groups ~bound ~lo:!lo ~len);
                lo := !lo + len
              done;
              !worst)
      end)

let exact ?snapshot g h = exact_impl ?snapshot g h ~bound:max_int

let exact_parallel ?domains ?(bound = max_int) ?snapshot g h =
  Trace.with_span ~name:"spanner.certify" (fun () ->
      let hc = snapshot_of h snapshot in
      if weighted g h then begin
        let groups, count = removed_by_source_w g h in
        if count = 0 then 1
        else
          Trace.with_span ~name:"dijkstra.sweep" (fun () ->
              (* one weighted group per work unit; the Dijkstra scratch arena
                 is domain-local, so read-only fan-out is safe *)
              max 1
                (Parallel.max_range_saturating ?domains (Array.length groups)
                   (fun i -> group_worst_w hc groups.(i) ~bound)
                   ~saturate:max_int))
      end
      else begin
        let groups, count = removed_by_source g h in
        if count = 0 then 1
        else begin
          let ng = Array.length groups in
          let nb = ((ng - 1) / Bfs_batch.width) + 1 in
          let per_batch b =
            let lo = b * Bfs_batch.width in
            batch_worst hc groups ~bound ~lo ~len:(min Bfs_batch.width (ng - lo))
          in
          Trace.with_span ~name:"bfs.sweep" (fun () ->
              (* one disconnected edge saturates the max: stop sweeping *)
              max 1 (Parallel.max_range_saturating ?domains nb per_batch ~saturate:max_int))
        end
      end)

let exact_bounded ?snapshot g h ~bound = exact_impl ?snapshot g h ~bound

let exact_reference ?(bound = max_int) g h =
  let hc = Csr.snapshot h in
  if weighted g h then begin
    let worst = ref 1 in
    (try
       Graph.iter_edges_w g (fun u v w ->
           if not (Graph.mem_edge h u v) then begin
             let d =
               if bound = max_int then Dijkstra.distance hc u v
               else Dijkstra.distance_bounded hc u v ~bound:(bound * w)
             in
             if d < 0 then begin
               worst := max_int;
               raise Exit
             end;
             worst := max !worst (ratio_ceil d w)
           end)
     with Exit -> ());
    !worst
  end
  else begin
    let worst = ref 1 in
    (try
       Graph.iter_edges g (fun u v ->
           if not (Graph.mem_edge h u v) then begin
             let d = Bfs.distance_bounded hc u v ~bound in
             if d < 0 then begin
               worst := max_int;
               raise Exit
             end;
             worst := max !worst d
           end)
     with Exit -> ());
    !worst
  end

let exact_grouped ?(bound = max_int) g h =
  let hc = Csr.snapshot h in
  if weighted g h then begin
    let groups, count = removed_by_source_w g h in
    if count = 0 then 1 else exact_impl_w hc groups ~bound
  end
  else begin
    let groups, count = removed_by_source g h in
    if count = 0 then 1
    else begin
      let worst = ref 1 in
      (try
         Array.iter
           (fun (u, targets) ->
             let dist = Bfs.distances_bounded hc u ~bound in
             Array.iter
               (fun v ->
                 let d = dist.(v) in
                 if d < 0 then begin
                   worst := max_int;
                   raise Exit
                 end
                 else if d > !worst then worst := d)
               targets)
           groups
       with Exit -> ());
      !worst
    end
  end

let is_three_spanner g h = exact_bounded g h ~bound:3 <= 3

let sampled_pairs ?snapshots rng g h ~samples =
  let gc, hc =
    match snapshots with Some p -> p | None -> (Csr.snapshot g, Csr.snapshot h)
  in
  let n = Graph.n g in
  if n < 2 then 1.0
  else begin
    (* same draw sequence either way; only the kernel differs *)
    let dist = if weighted g h then Dijkstra.distance else Bfs.distance in
    let worst = ref 1.0 in
    for _ = 1 to samples do
      let u = Prng.int rng n in
      let v = Prng.int rng n in
      if u <> v then begin
        let dg = dist gc u v in
        if dg > 0 then begin
          let dh = dist hc u v in
          let ratio =
            if dh < 0 then infinity else float_of_int dh /. float_of_int dg
          in
          worst := max !worst ratio
        end
      end
    done;
    !worst
  end

(* weighted violation scan of one group: flags targets with d_H > bound * w *)
let group_violations_w hc (u, targets) ~bound bad =
  let wmax = Array.fold_left (fun acc (_, w) -> max acc w) 1 targets in
  let dist = Dijkstra.bellman_ford_bounded hc u ~hops:(bound * wmax) in
  Array.iter
    (fun (v, w) ->
      let d = dist.(v) in
      if d < 0 || d > bound * w then bad := (u, v) :: !bad)
    targets

let violations g h ~bound =
  let hc = Csr.snapshot h in
  let bad = ref [] in
  if weighted g h then begin
    let groups, _ = removed_by_source_w g h in
    Array.iter (fun grp -> group_violations_w hc grp ~bound bad) groups
  end
  else begin
    let groups, _ = removed_by_source g h in
    let ng = Array.length groups in
    let lo = ref 0 in
    while !lo < ng do
      let len = min Bfs_batch.width (ng - !lo) in
      let sources = Array.init len (fun i -> fst groups.(!lo + i)) in
      let rows = Bfs_batch.run ~bound hc sources in
      for i = 0 to len - 1 do
        let u, targets = groups.(!lo + i) and row = rows.(i) in
        Array.iter
          (fun v ->
            let d = row.(v) in
            if d < 0 || d > bound then bad := (u, v) :: !bad)
          targets
      done;
      lo := !lo + len
    done
  end;
  (* canonical order: callers (Repair, reports) must not depend on hashtable
     iteration order *)
  List.sort compare !bad

(* ---- incremental certification (the churn seam) ---- *)

(* Per-source cache of the bounded certificate.  After a localized mutation
   batch, a source group's verdict can only change if the group's removed-
   edge set changed (then an endpoint of the change was touched) or if the
   bounded distance to some target changed.  In the latter case the old or
   the new witness path (length <= bound) uses a changed edge, and its
   prefix up to the FIRST changed edge survives in the new spanner — so the
   source lies within [bound] hops of a touched node in the new spanner.
   Hence one multi-seed bounded sweep from the touched set marks every
   source whose cached verdict could be stale, and only those groups re-run
   their batched MS-BFS sweep. *)

type cert = {
  c_bound : int;
  c_worst : int array;
      (* worst bounded detour per source group; 1 when the source has no
         group, [max_int] when some target is unreachable within the bound *)
  c_viol : (int * int) list array;  (* violating pairs per source, ascending *)
  mutable c_groups : int;  (* group count at the last refresh *)
}

type inc_report = {
  inc_violations : (int * int) list;
  inc_swept : int;
  inc_groups : int;
  inc_dirty : int;
}

let m_inc_swept = Metrics.counter "stretch.inc_swept"
let m_inc_reused = Metrics.counter "stretch.inc_reused"

(* one batched sweep over [groups.(lo .. lo+len-1)], recording per-source
   worst detours and violation lists into the cache arrays *)
let sweep_into cert hc groups ~lo ~len =
  let bound = cert.c_bound in
  let sources = Array.init len (fun i -> fst groups.(lo + i)) in
  let rows = Bfs_batch.run ~bound hc sources in
  for i = 0 to len - 1 do
    let u, targets = groups.(lo + i) and row = rows.(i) in
    let worst = ref 1 and bad = ref [] in
    Array.iter
      (fun v ->
        let d = row.(v) in
        if d < 0 || d > bound then begin
          worst := max_int;
          bad := (u, v) :: !bad
        end
        else if d > !worst then worst := d)
      targets;
    cert.c_worst.(u) <- !worst;
    cert.c_viol.(u) <- List.sort compare !bad
  done

(* weighted counterpart of [sweep_into]: one hop-capped Bellman–Ford per
   group, ratio verdicts into the same cache arrays *)
let sweep_into_w cert hc groups ~lo ~len =
  let bound = cert.c_bound in
  for i = lo to lo + len - 1 do
    let u, targets = groups.(i) in
    let wmax = Array.fold_left (fun acc (_, w) -> max acc w) 1 targets in
    let dist = Dijkstra.bellman_ford_bounded hc u ~hops:(bound * wmax) in
    let worst = ref 1 and bad = ref [] in
    Array.iter
      (fun (v, w) ->
        let d = dist.(v) in
        if d < 0 || d > bound * w then begin
          worst := max_int;
          bad := (u, v) :: !bad
        end
        else begin
          let r = ratio_ceil d w in
          if r > !worst then worst := r
        end)
      targets;
    cert.c_worst.(u) <- !worst;
    cert.c_viol.(u) <- List.sort compare !bad
  done

let cert_create ?snapshot g h ~bound =
  if Graph.n g <> Graph.n h then invalid_arg "Stretch.cert_create: node counts differ";
  if bound < 1 then invalid_arg "Stretch.cert_create: bound < 1";
  Trace.with_span ~name:"spanner.certify_incremental" (fun () ->
      let hc = snapshot_of h snapshot in
      let n = Graph.n g in
      let cert =
        { c_bound = bound; c_worst = Array.make n 1; c_viol = Array.make n []; c_groups = 0 }
      in
      if weighted g h then begin
        let groups, _ = removed_by_source_w g h in
        cert.c_groups <- Array.length groups;
        sweep_into_w cert hc groups ~lo:0 ~len:(Array.length groups)
      end
      else begin
        let groups, _ = removed_by_source g h in
        let ng = Array.length groups in
        cert.c_groups <- ng;
        let lo = ref 0 in
        while !lo < ng do
          let len = min Bfs_batch.width (ng - !lo) in
          sweep_into cert hc groups ~lo:!lo ~len;
          lo := !lo + len
        done
      end;
      cert)

let cert_bound cert = cert.c_bound

let cert_groups cert = cert.c_groups

let cert_violations cert =
  let bad = ref [] in
  for u = Array.length cert.c_viol - 1 downto 0 do
    bad := cert.c_viol.(u) @ !bad
  done;
  !bad

let cert_stretch_bound cert = Array.fold_left max 1 cert.c_worst

(* nodes within [bound] hops of any seed in [hc] (multi-seed bounded BFS);
   seeds themselves are always marked, even when isolated *)
let within_bound hc seeds ~bound =
  let n = Csr.n hc in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  let tail = ref 0 in
  Array.iter
    (fun s ->
      if s < 0 || s >= n then
        invalid_arg "Stretch.violations_incremental: touched node out of range";
      if dist.(s) < 0 then begin
        dist.(s) <- 0;
        queue.(!tail) <- s;
        incr tail
      end)
    seeds;
  let head = ref 0 in
  while !head < !tail do
    let v = queue.(!head) in
    incr head;
    if dist.(v) < bound then
      Csr.iter_neighbors hc v (fun u ->
          if dist.(u) < 0 then begin
            dist.(u) <- dist.(v) + 1;
            queue.(!tail) <- u;
            incr tail
          end)
  done;
  Array.map (fun d -> d >= 0) dist

let violations_incremental cert ?snapshot g h ~touched =
  if Graph.n g <> Graph.n h then
    invalid_arg "Stretch.violations_incremental: node counts differ";
  if Graph.n g <> Array.length cert.c_worst then
    invalid_arg "Stretch.violations_incremental: certificate built for a different node count";
  Trace.with_span ~name:"spanner.certify_incremental" (fun () ->
      let hc = snapshot_of h snapshot in
      if weighted g h then begin
        (* The hop-based dirty-marking argument below is calibrated to
           unit-weight witness paths; for weighted graphs every group is
           conservatively re-swept (sound over-approximation — the churn
           workloads that lean on incrementality are unweighted). *)
        let n = Graph.n g in
        Array.iter
          (fun s ->
            if s < 0 || s >= n then
              invalid_arg "Stretch.violations_incremental: touched node out of range")
          touched;
        Array.fill cert.c_worst 0 n 1;
        Array.fill cert.c_viol 0 n [];
        let groups, _ = removed_by_source_w g h in
        let ng = Array.length groups in
        cert.c_groups <- ng;
        sweep_into_w cert hc groups ~lo:0 ~len:ng;
        Metrics.add m_inc_swept ng;
        let bad = ref [] in
        for i = ng - 1 downto 0 do
          bad := cert.c_viol.(fst groups.(i)) @ !bad
        done;
        { inc_violations = !bad; inc_swept = ng; inc_groups = ng; inc_dirty = n }
      end
      else begin
      let groups, _ = removed_by_source g h in
      let ng = Array.length groups in
      cert.c_groups <- ng;
      let dirty = within_bound hc touched ~bound:cert.c_bound in
      (* a dirty source whose group shrank or vanished must not keep stale
         entries; clean sources kept their groups (a group change touches
         its source), so their cache lines are current *)
      let ndirty = ref 0 in
      Array.iteri
        (fun v d ->
          if d then begin
            incr ndirty;
            cert.c_worst.(v) <- 1;
            cert.c_viol.(v) <- []
          end)
        dirty;
      (* compact the dirty groups and sweep them in width-sized batches *)
      let pending = Array.make (min ng (Array.length groups)) (0, [||]) in
      let np = ref 0 in
      Array.iter
        (fun ((u, _) as grp) ->
          if dirty.(u) then begin
            pending.(!np) <- grp;
            incr np
          end)
        groups;
      let swept = !np in
      let lo = ref 0 in
      while !lo < swept do
        let len = min Bfs_batch.width (swept - !lo) in
        sweep_into cert hc pending ~lo:!lo ~len;
        lo := !lo + len
      done;
      Metrics.add m_inc_swept swept;
      Metrics.add m_inc_reused (ng - swept);
      let bad = ref [] in
      for i = ng - 1 downto 0 do
        bad := cert.c_viol.(fst groups.(i)) @ !bad
      done;
      {
        inc_violations = !bad;
        inc_swept = swept;
        inc_groups = ng;
        inc_dirty = !ndirty;
      }
      end)
