let exact_impl g h ~bound =
  Trace.with_span ~name:"spanner.certify" (fun () ->
      let hc = Csr.of_graph h in
      let worst = ref 1 in
      Trace.with_span ~name:"bfs.sweep" (fun () ->
          try
            Graph.iter_edges g (fun u v ->
                if not (Graph.mem_edge h u v) then begin
                  let d = Bfs.distance_bounded hc u v ~bound in
                  if d < 0 then begin
                    worst := max_int;
                    raise Exit
                  end;
                  worst := max !worst d
                end)
          with Exit -> ());
      !worst)

let exact g h = exact_impl g h ~bound:max_int

let exact_parallel ?domains ?(bound = max_int) g h =
  Trace.with_span ~name:"spanner.certify" (fun () ->
      let hc = Csr.of_graph h in
      let removed = ref [] in
      Graph.iter_edges g (fun u v ->
          if not (Graph.mem_edge h u v) then removed := (u, v) :: !removed);
      let removed = Array.of_list !removed in
      if Array.length removed = 0 then 1
      else begin
        let per_edge i =
          let u, v = removed.(i) in
          let d = Bfs.distance_bounded hc u v ~bound in
          if d < 0 then max_int else d
        in
        Trace.with_span ~name:"bfs.sweep" (fun () ->
            max 1 (Parallel.max_range ?domains (Array.length removed) per_edge))
      end)

let exact_bounded g h ~bound = exact_impl g h ~bound

let is_three_spanner g h = exact_bounded g h ~bound:3 <= 3

let sampled_pairs rng g h ~samples =
  let gc = Csr.of_graph g and hc = Csr.of_graph h in
  let n = Graph.n g in
  if n < 2 then 1.0
  else begin
    let worst = ref 1.0 in
    for _ = 1 to samples do
      let u = Prng.int rng n in
      let v = Prng.int rng n in
      if u <> v then begin
        let dg = Bfs.distance gc u v in
        if dg > 0 then begin
          let dh = Bfs.distance hc u v in
          let ratio =
            if dh < 0 then infinity else float_of_int dh /. float_of_int dg
          in
          worst := max !worst ratio
        end
      end
    done;
    !worst
  end

let violations g h ~bound =
  let hc = Csr.of_graph h in
  let bad = ref [] in
  Graph.iter_edges g (fun u v ->
      if not (Graph.mem_edge h u v) then begin
        let d = Bfs.distance_bounded hc u v ~bound in
        if d < 0 || d > bound then bad := (u, v) :: !bad
      end);
  !bad
