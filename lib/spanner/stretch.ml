(* The removed edges of a spanner cluster heavily by endpoint: a node that
   lost one of its Delta edges typically lost Theta(Delta) of them.  Grouping
   the removed edges by source answers all of a source's edges from ONE
   bounded sweep — a Delta-factor fewer sweeps than the per-edge path — and
   the batched kernel then runs up to [Bfs_batch.width] of those sweeps at
   once.  [exact_reference] keeps the per-edge scalar path as the oracle the
   property tests and the kernel-comparison bench compare against. *)

(* removed edges grouped by their smaller endpoint: sources ascending, each
   with the array of opposite endpoints *)
let removed_by_source g h =
  let n = Graph.n g in
  let buckets = Array.make n [] in
  let count = ref 0 in
  Graph.iter_edges g (fun u v ->
      if not (Graph.mem_edge h u v) then begin
        buckets.(u) <- v :: buckets.(u);
        incr count
      end);
  let groups = ref [] in
  for u = n - 1 downto 0 do
    match buckets.(u) with
    | [] -> ()
    | vs -> groups := (u, Array.of_list vs) :: !groups
  done;
  (Array.of_list !groups, !count)

let snapshot_of h = function Some c -> c | None -> Csr.snapshot h

(* worst detour over the groups in [groups.(lo .. lo+len-1)], answered by one
   batched sweep; [max_int] as soon as some edge is unreachable within
   [bound] *)
let batch_worst hc groups ~bound ~lo ~len =
  let sources = Array.init len (fun i -> fst groups.(lo + i)) in
  let rows = Bfs_batch.run ~bound hc sources in
  let worst = ref 1 in
  (try
     for i = 0 to len - 1 do
       let row = rows.(i) and _, targets = groups.(lo + i) in
       Array.iter
         (fun v ->
           let d = row.(v) in
           if d < 0 then begin
             worst := max_int;
             raise Exit
           end
           else if d > !worst then worst := d)
         targets
     done
   with Exit -> ());
  !worst

let exact_impl ?snapshot g h ~bound =
  Trace.with_span ~name:"spanner.certify" (fun () ->
      let hc = snapshot_of h snapshot in
      let groups, count = removed_by_source g h in
      if count = 0 then 1
      else
        Trace.with_span ~name:"bfs.sweep" (fun () ->
            let ng = Array.length groups in
            let worst = ref 1 and lo = ref 0 in
            while !worst < max_int && !lo < ng do
              let len = min Bfs_batch.width (ng - !lo) in
              worst := max !worst (batch_worst hc groups ~bound ~lo:!lo ~len);
              lo := !lo + len
            done;
            !worst))

let exact ?snapshot g h = exact_impl ?snapshot g h ~bound:max_int

let exact_parallel ?domains ?(bound = max_int) ?snapshot g h =
  Trace.with_span ~name:"spanner.certify" (fun () ->
      let hc = snapshot_of h snapshot in
      let groups, count = removed_by_source g h in
      if count = 0 then 1
      else begin
        let ng = Array.length groups in
        let nb = ((ng - 1) / Bfs_batch.width) + 1 in
        let per_batch b =
          let lo = b * Bfs_batch.width in
          batch_worst hc groups ~bound ~lo ~len:(min Bfs_batch.width (ng - lo))
        in
        Trace.with_span ~name:"bfs.sweep" (fun () ->
            (* one disconnected edge saturates the max: stop sweeping *)
            max 1 (Parallel.max_range_saturating ?domains nb per_batch ~saturate:max_int))
      end)

let exact_bounded ?snapshot g h ~bound = exact_impl ?snapshot g h ~bound

let exact_reference ?(bound = max_int) g h =
  let hc = Csr.snapshot h in
  let worst = ref 1 in
  (try
     Graph.iter_edges g (fun u v ->
         if not (Graph.mem_edge h u v) then begin
           let d = Bfs.distance_bounded hc u v ~bound in
           if d < 0 then begin
             worst := max_int;
             raise Exit
           end;
           worst := max !worst d
         end)
   with Exit -> ());
  !worst

let exact_grouped ?(bound = max_int) g h =
  let hc = Csr.snapshot h in
  let groups, count = removed_by_source g h in
  if count = 0 then 1
  else begin
    let worst = ref 1 in
    (try
       Array.iter
         (fun (u, targets) ->
           let dist = Bfs.distances_bounded hc u ~bound in
           Array.iter
             (fun v ->
               let d = dist.(v) in
               if d < 0 then begin
                 worst := max_int;
                 raise Exit
               end
               else if d > !worst then worst := d)
             targets)
         groups
     with Exit -> ());
    !worst
  end

let is_three_spanner g h = exact_bounded g h ~bound:3 <= 3

let sampled_pairs ?snapshots rng g h ~samples =
  let gc, hc =
    match snapshots with Some p -> p | None -> (Csr.snapshot g, Csr.snapshot h)
  in
  let n = Graph.n g in
  if n < 2 then 1.0
  else begin
    let worst = ref 1.0 in
    for _ = 1 to samples do
      let u = Prng.int rng n in
      let v = Prng.int rng n in
      if u <> v then begin
        let dg = Bfs.distance gc u v in
        if dg > 0 then begin
          let dh = Bfs.distance hc u v in
          let ratio =
            if dh < 0 then infinity else float_of_int dh /. float_of_int dg
          in
          worst := max !worst ratio
        end
      end
    done;
    !worst
  end

let violations g h ~bound =
  let hc = Csr.snapshot h in
  let groups, _ = removed_by_source g h in
  let bad = ref [] in
  let ng = Array.length groups in
  let lo = ref 0 in
  while !lo < ng do
    let len = min Bfs_batch.width (ng - !lo) in
    let sources = Array.init len (fun i -> fst groups.(!lo + i)) in
    let rows = Bfs_batch.run ~bound hc sources in
    for i = 0 to len - 1 do
      let u, targets = groups.(!lo + i) and row = rows.(i) in
      Array.iter
        (fun v ->
          let d = row.(v) in
          if d < 0 || d > bound then bad := (u, v) :: !bad)
        targets
    done;
    lo := !lo + len
  done;
  (* canonical order: callers (Repair, reports) must not depend on hashtable
     iteration order *)
  List.sort compare !bad
