(** Expander sparsifiers standing in for rows 2 and 3 of Table 1.

    Row 3 cites Koutis–Xu [16] (spectral sparsification, [O(n log n)] edges);
    row 2 cites Becchetti et al. [5] (constant average degree inside a
    [Δ = Ω(n)] expander).  On {e regular expanders} effective resistances are
    within constant factors of uniform, so uniform edge sampling at the
    corresponding rate reproduces both guarantees w.h.p.; a union-find repair
    pass reconnects the rare stray node.  The surviving expansion is measured
    spectrally by the harness rather than assumed (DESIGN.md §3.2–3.3). *)

type t = {
  spanner : Graph.t;
  p : float;  (** edge-keep probability used *)
  repair_edges : int;  (** edges added back by the connectivity repair *)
}

val spectral : ?c:float -> Prng.t -> Graph.t -> t
(** [16]-substitute: keep each edge with probability [min 1 (c·ln n / Δ)]
    ([c] defaults to 6.0), i.e. expected degree [Θ(log n)] and [Θ(n log n)]
    edges. *)

val bounded_degree : ?target:int -> Prng.t -> Graph.t -> t
(** [5]-substitute: keep each edge with probability [target/Δ] ([target]
    defaults to 16), i.e. [O(n)] edges and constant expected degree. *)

val to_dc : name:string -> t -> Graph.t -> Dc.t
(** Package with the randomized-shortest-path router (the [25]-substitute
    for permutation routing on bounded-degree expanders). *)
