type t = { spanner : Graph.t; sampled : Graph.t; reinserted : int; repaired : int }

let build ?(repair = true) rng g =
  let n = Graph.n g in
  let local_degree u v = min (Graph.degree g u) (Graph.degree g v) in
  (* Degree-local sampling: rho_uv = 1/sqrt(min degree of endpoints). *)
  let sampled = Graph.empty_like g in
  Graph.iter_edges g (fun u v ->
      let d = max 1 (local_degree u v) in
      let rho = 1.0 /. sqrt (float_of_int d) in
      if Prng.bool rng rho then ignore (Graph.add_edge sampled u v));
  (* Support-based reinsertion with per-edge thresholds. *)
  let bm = Bitmat.of_graph g in
  let a = max 2 (int_of_float (ceil (log (float_of_int (max 2 n))))) in
  let spanner = Graph.copy sampled in
  let reinserted = ref 0 in
  Graph.iter_edges g (fun u v ->
      if not (Graph.mem_edge spanner u v) then begin
        let b = max 1 (local_degree u v / 4) in
        if not (Support.is_ab_supported g bm u v ~a ~b) then begin
          ignore (Graph.add_edge spanner u v);
          incr reinserted
        end
      end);
  (* Repair pass: identical to Regular_dc. *)
  let repaired = ref 0 in
  if repair then begin
    let missing = ref [] in
    Graph.iter_edges g (fun u v ->
        if not (Graph.mem_edge spanner u v) then begin
          let has_detour =
            Support.two_detours spanner ~u ~v ~cap:1 <> []
            || Support.three_detours spanner ~u ~v ~cap:1 <> []
          in
          if not has_detour then missing := (u, v) :: !missing
        end);
    List.iter
      (fun (u, v) ->
        ignore (Graph.add_edge spanner u v);
        incr repaired)
      !missing
  end;
  { spanner; sampled; reinserted = !reinserted; repaired = !repaired }

let to_dc ?(detour_cap = 64) t g =
  let h = t.spanner in
  let csr = lazy (Csr.snapshot h) in
  let route_matching rng pairs =
    Array.map
      (fun (u, v) ->
        if Graph.mem_edge h u v then [| u; v |]
        else begin
          let twos = Support.two_detours h ~u ~v ~cap:detour_cap in
          let threes = Support.three_detours h ~u ~v ~cap:detour_cap in
          let candidates =
            List.map (fun x -> [| u; x; v |]) twos
            @ List.map (fun (x, z) -> [| u; x; z; v |]) threes
          in
          match candidates with
          | [] -> (
              match Bfs.shortest_path (Lazy.force csr) u v with
              | Some p -> p
              | None -> invalid_arg "Irregular_dc: spanner disconnected for pair")
          | _ -> Prng.pick rng (Array.of_list candidates)
        end)
      pairs
  in
  { Dc.name = "irregular"; graph = g; spanner = h; route_matching }
