(* Weighted Baswana–Sen (2k−1)-spanner [BS07], the clustering construction.

   Phase 1 runs k−1 rounds over a residual copy of G.  Each round samples the
   current cluster centers with probability n^(−1/k); a vertex of an
   unsampled cluster looks at the lightest residual edge it has into every
   adjacent cluster and either (a) has no sampled neighbor cluster — keeps
   the lightest edge to EVERY adjacent cluster and retires from the residual
   graph — or (b) joins the sampled cluster reachable by the lightest edge,
   keeps that edge plus the lightest edge to every strictly lighter cluster,
   and drops its residual edges into all the clusters so covered.  Phase 2
   joins every surviving vertex to each adjacent cluster by its lightest
   remaining edge.  Every dropped edge thus has a same-or-lighter spanner
   edge into its endpoint's cluster, which is what drives the (2k−1)·w
   detour bound (checked against a Floyd–Warshall reference in the tests).

   Ties are broken by (weight, neighbor) — and (weight, neighbor, center)
   when choosing the cluster to join — so the construction is deterministic
   given the sampling draws.  Mutations are collected during a round and
   committed at its end, so every vertex sees the same round-start residual
   graph. *)

let lightest_edges residual cluster v =
  let best = Hashtbl.create 8 in
  Graph.iter_neighbors_w residual v (fun u w ->
      let c = cluster.(u) in
      if c >= 0 then
        match Hashtbl.find_opt best c with
        | Some (w', u') when (w', u') <= (w, u) -> ()
        | _ -> Hashtbl.replace best c (w, u));
  best

let build ?(k = 2) rng g =
  if k < 1 then invalid_arg "Baswana_sen_weighted.build: k < 1";
  let n = Graph.n g in
  let h = Graph.empty_like g in
  if n > 0 then begin
    let p = float_of_int n ** (-1.0 /. float_of_int k) in
    let residual = Graph.copy g in
    (* cluster.(v) = center id of v's current cluster, -1 once v retired *)
    let cluster = ref (Array.init n (fun v -> v)) in
    let add_edges adds =
      List.iter (fun (v, u, w) -> ignore (Graph.add_edge ~weight:w h v u)) adds
    in
    for _round = 1 to k - 1 do
      let cl = !cluster in
      (* step 1: sample the current centers *)
      let is_center = Array.make n false in
      for v = 0 to n - 1 do
        if cl.(v) >= 0 then is_center.(cl.(v)) <- true
      done;
      let sampled = Array.make n false in
      for c = 0 to n - 1 do
        if is_center.(c) then sampled.(c) <- Prng.bool rng p
      done;
      let next = Array.make n (-1) in
      for v = 0 to n - 1 do
        if cl.(v) >= 0 && sampled.(cl.(v)) then next.(v) <- cl.(v)
      done;
      (* steps 2–3: per-vertex case split, mutations deferred to round end *)
      let adds = ref [] and drops = ref [] and retired = ref [] in
      for v = 0 to n - 1 do
        if cl.(v) >= 0 && (not sampled.(cl.(v))) && Graph.degree residual v > 0 then begin
          let best = lightest_edges residual cl v in
          let best_sampled = ref None in
          Hashtbl.iter
            (fun c (w, u) ->
              if sampled.(c) then
                match !best_sampled with
                | Some (w', u', c') when (w', u', c') <= (w, u, c) -> ()
                | _ -> best_sampled := Some (w, u, c))
            best;
          match !best_sampled with
          | None ->
              (* no sampled neighbor cluster: cover every adjacent cluster
                 with its lightest edge, then retire from the residual graph *)
              Hashtbl.iter (fun _c (w, u) -> adds := (v, u, w) :: !adds) best;
              retired := v :: !retired
          | Some (wstar, ustar, cstar) ->
              adds := (v, ustar, wstar) :: !adds;
              next.(v) <- cstar;
              Hashtbl.iter
                (fun c (w, u) ->
                  if c <> cstar && (w, u) < (wstar, ustar) then adds := (v, u, w) :: !adds)
                best;
              (* drop v's residual edges into the joined cluster and into
                 every strictly lighter (now covered) cluster *)
              Graph.iter_neighbors_w residual v (fun u _w ->
                  let c = cl.(u) in
                  if c = cstar || (c >= 0 && Hashtbl.find best c < (wstar, ustar)) then
                    drops := (v, u) :: !drops)
        end
      done;
      add_edges !adds;
      List.iter (fun (v, u) -> ignore (Graph.remove_edge residual v u)) !drops;
      List.iter (fun v -> ignore (Graph.isolate residual v)) !retired;
      cluster := next
    done;
    (* phase 2: vertex–cluster joining over the surviving residual edges *)
    let cl = !cluster in
    let adds = ref [] in
    for v = 0 to n - 1 do
      if Graph.degree residual v > 0 then begin
        let best = lightest_edges residual cl v in
        Hashtbl.iter (fun _c (w, u) -> adds := (v, u, w) :: !adds) best
      end
    done;
    add_edges !adds
  end;
  h
