(** Weighted Baswana–Sen [(2k−1)]-distance spanner [BS07].

    The randomized clustering construction generalized to positive integer
    edge weights: [k − 1] sampling rounds form clusters over a residual copy
    of the graph, keeping per-cluster lightest edges, and a final
    vertex–cluster joining pass covers the surviving residual edges.  The
    spanner has expected [O(k · n^{1 + 1/k})] edges and deterministic
    weighted distance stretch [≤ 2k − 1] — every edge [(u,v)] of [G]
    satisfies [d_H(u,v) ≤ (2k−1) · w(u,v)] — regardless of the sampling
    draws (randomness only affects the size).  No congestion guarantee.

    On an unweighted graph this is simply Baswana–Sen with all weights 1;
    the registry entry [baswana-sen-weighted] (alias [bsw]) uses [k = 2] for
    a weighted stretch-3 baseline next to the paper's constructions. *)

val build : ?k:int -> Prng.t -> Graph.t -> Graph.t
(** [build ~k rng g] samples a [(2k−1)]-spanner of [g] ([k] defaults to 2).
    The result preserves edge weights (it is a subgraph).  Raises
    [Invalid_argument] if [k < 1].  Deterministic given the generator
    state. *)
