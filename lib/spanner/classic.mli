(** Classic distance-spanner baselines.

    These constructions control {e only} the distance stretch; the paper's
    motivation (Section 1, Figure 1) is precisely that they can blow up
    congestion.  The benchmark harness runs them next to the DC constructions
    to exhibit that gap. *)

val greedy : Graph.t -> k:int -> Graph.t
(** Althöfer et al. greedy [(2k−1)]-spanner: scan the edges (normalized
    order) and keep an edge iff the current spanner distance between its
    endpoints exceeds [2k−1].  Size [O(n^{1+1/k})] by the girth argument;
    stretch exactly certified by construction. *)

val baswana_sen_3 : Prng.t -> Graph.t -> Graph.t
(** Baswana–Sen randomized 3-spanner ([k = 2]): sample cluster centers with
    probability [1/√n]; unclustered nodes keep all incident edges, clustered
    nodes keep the edge to their center plus one edge into every adjacent
    cluster.  Expected size [O(n^{3/2})], stretch 3. *)
