(** Theorem 2: DC-spanner for dense regular expanders (paper Section 3).

    For an [n^{2/3+ε}]-regular expander with [λ = o(n^{1/3+2ε})]:

    + every edge is kept independently with probability [1/n^ε], so the
      spanner has [O(n^{5/3})] edges w.h.p. (Lemma 7);
    + for a removed edge [{u, v}], Lemma 4 (via the expander mixing lemma)
      guarantees a matching of size [Δ(1 − λn/Δ²)] between [N(u)] and [N(v)];
      a large fraction survives the sampling (Lemma 5), and both connector
      edges survive for at least one matching edge w.h.p. (Lemma 6), yielding
      a 3-hop replacement path and distance stretch 3;
    + the replacement path is chosen uniformly at random among the surviving
      3-hop paths across the matching, giving expected congestion [1 + o(1)]
      and [O(log n)] w.h.p. for matching routing problems (Lemma 7), hence
      [O(log² n)] for general routings via Theorem 1.

    The sampling probability defaults to [n^{2/3}/Δ] (the paper's [1/n^ε]
    expressed through the actual degree), so the construction applies to any
    given (near-)regular expander without naming [ε] explicitly. *)

type t = {
  spanner : Graph.t;
  p : float;  (** sampling probability used *)
  fallbacks : int ref;  (** router requests that needed a BFS fallback *)
  cache : (int * int, Routing.path array) Hashtbl.t;
      (** memoized surviving replacement paths per removed (normalized)
          edge; the Lemma 4 matching is request-independent, so repeated
          routing reuses it *)
}

val build : ?p:float -> Prng.t -> Graph.t -> t
(** Sample the spanner.  [p] overrides the default [n^{2/3}/Δ] (clamped to
    [(0, 1]]). *)

val router : t -> Graph.t -> Prng.t -> (int * int) array -> Routing.path array
(** The Lemma 6/7 matching router on spanner [t] of graph [g]: spanner-edge
    requests go direct; removed edges route across a uniformly random
    surviving 3-hop path over the maximum matching between the endpoint
    neighborhoods (2-hop paths via surviving common neighbors are also
    candidates).  BFS fallback if nothing survived (counted in
    [t.fallbacks]). *)

val to_dc : t -> Graph.t -> Dc.t
(** Package as a {!Dc.t}. *)
