(** Theorem premise diagnostics.

    The paper's guarantees are conditional: Theorem 3 needs [Δ ≥ n^{2/3}]
    (and near-regularity), Theorem 2 additionally needs spectral expansion
    [λ ≤ o(n^{1/3+2ε})] — equivalently [λ = o(Δ²/n)] when [Δ = n^{2/3+ε}].
    These checkers {e measure} the premises on a concrete input so that the
    CLI and harness can flag out-of-regime runs instead of silently reporting
    meaningless stretches. *)

type t = {
  n : int;
  delta : int;  (** max degree *)
  regular : bool;  (** exactly regular (near-regularity is reported via ratio) *)
  degree_ratio : float;  (** max degree / max(1, min degree) *)
  min_delta : float;  (** the [n^{2/3}] threshold *)
  delta_ok : bool;  (** [Δ ≥ n^{2/3}] *)
  lambda : float;  (** measured spectral expansion (Lanczos) *)
  lambda_budget : float;  (** [Δ²/n] — the Theorem 2 expansion allowance *)
  expander_ok : bool;  (** [λ ≤ Δ²/(2n)]: safely inside the o(·) regime *)
  weighted : bool;  (** some edge carries weight > 1 ({!Graph.is_weighted}) *)
}

val check : Graph.t -> t
(** Measure all premises (runs the Lanczos estimator). *)

val theorem3_ok : t -> bool
(** Premises of Theorem 3 / Algorithm 1: density and near-regularity
    (degree ratio ≤ 2, the paper's footnote-1 regime). *)

val theorem2_ok : t -> bool
(** Premises of Theorem 2: {!theorem3_ok} plus measured expansion within the
    allowance. *)

type requirement = Any | Weighted | Expander | Theorem3 | Theorem2
(** The premise a construction assumes of its input: nothing, a weighted
    graph (weighted variants reduce to their unweighted counterparts on
    unit-weight inputs, so sweeps skip them there), measured spectral
    expansion, the Theorem 3 density/regularity regime, or the full
    Theorem 2 regime.  The construction registry ({!Construction}) stores one
    of these per entry so that every consumer checks premises the same way. *)

val requirement_text : requirement -> string
(** One-line human description of the requirement (registry listings). *)

val satisfied : requirement -> t -> bool
(** Whether the measured premises meet the requirement ([Any] always does). *)

val violations : requirement -> t -> string list
(** The warnings relevant to this requirement (empty when {!satisfied}). *)

val describe : t -> string list
(** Human-readable warnings against the strongest (Theorem 2) requirement —
    [violations Theorem2]. *)
