type t = { spanner : Graph.t; sampled : Graph.t; k : int; rho : float; reinserted : int }

let default_rho ~delta ~k =
  if delta <= 1 then 1.0
  else float_of_int delta ** (-.float_of_int (k - 1) /. float_of_int k)

let build ?rho ~k rng g =
  if k < 1 then invalid_arg "Khop_dc.build: need k >= 1";
  let delta = Graph.max_degree g in
  let rho = match rho with Some r -> min 1.0 (max 0.0 r) | None -> default_rho ~delta ~k in
  if k = 1 then
    { spanner = Graph.copy g; sampled = Graph.copy g; k; rho = 1.0; reinserted = 0 }
  else begin
    let sampled =
      Trace.with_span ~name:"spanner.sampling" (fun () ->
          let sampled = Graph.empty_like g in
          Graph.iter_edges g (fun u v ->
              if Prng.bool rng rho then ignore (Graph.add_edge sampled u v));
          sampled)
    in
    let spanner = Graph.copy sampled in
    let bound = (2 * k) - 1 in
    (* Distance-repair: reinsert removed edges with no (2k-1)-detour.  The
       CSR snapshot is refreshed lazily — reinserted edges only shorten
       distances, so checking against a stale snapshot is conservative
       (it may reinsert a few extra edges, never too few). *)
    let reinserted = ref 0 in
    Trace.with_span ~name:"spanner.repair" (fun () ->
        let csr = Csr.snapshot sampled in
        Graph.iter_edges g (fun u v ->
            if not (Graph.mem_edge spanner u v) then begin
              let d = Bfs.distance_bounded csr u v ~bound in
              if d < 0 then begin
                ignore (Graph.add_edge spanner u v);
                incr reinserted
              end
            end));
    { spanner; sampled; k; rho; reinserted = !reinserted }
  end

let router t rng pairs =
  let csr = Csr.snapshot t.spanner in
  Array.map
    (fun (u, v) ->
      if Graph.mem_edge t.spanner u v then [| u; v |]
      else
        match Bfs.random_shortest_path csr rng u v with
        | Some p -> p
        | None -> invalid_arg "Khop_dc.router: spanner disconnected for pair")
    pairs

let to_dc t g =
  {
    Dc.name = Printf.sprintf "khop-%d" ((2 * t.k) - 1);
    graph = g;
    spanner = t.spanner;
    route_matching = (fun rng pairs -> router t rng pairs);
  }
