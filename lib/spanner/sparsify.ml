type t = { spanner : Graph.t; p : float; repair_edges : int }

let sample_with rng g p =
  let spanner = Graph.empty_like g in
  Graph.iter_edges g (fun u v -> if Prng.bool rng p then ignore (Graph.add_edge spanner u v));
  let repair_edges = Connectivity.repair spanner ~within:g in
  { spanner; p; repair_edges }

let spectral ?(c = 6.0) rng g =
  let n = float_of_int (max 2 (Graph.n g)) in
  let delta = float_of_int (max 1 (Graph.max_degree g)) in
  let p = min 1.0 (c *. log n /. delta) in
  sample_with rng g p

let bounded_degree ?(target = 16) rng g =
  let delta = float_of_int (max 1 (Graph.max_degree g)) in
  let p = min 1.0 (float_of_int target /. delta) in
  sample_with rng g p

let to_dc ~name t g = Dc.of_sp_router ~name ~graph:g ~spanner:t.spanner
