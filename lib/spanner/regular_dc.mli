(** Algorithm 1: DC-spanner for Δ-regular graphs (paper Section 4, Theorem 3).

    Pipeline, for a Δ-regular graph [G] with [Δ ≥ n^{2/3}]:

    + {b Sample} every edge independently with probability [ρ = Δ'/Δ]
      ([Δ' = √Δ]), giving [G'] with [O(n√Δ)] edges (Lemma 9);
    + {b Reinsert} every edge that is {e not} [(λΔ', c₁Δ)]-supported in either
      direction ([E'' = E \ Ê], line 9) — Lemma 10 bounds [|E''|] by
      [O(λ n² Δ'/Δ) = Õ(n^{5/3})];
    + optionally {b repair}: reinsert any removed supported edge whose
      3-detours all vanished from [G'] (the event Corollary 2 shows has
      probability [O(1/n)]); with repair the result is a 3-distance-spanner
      {e deterministically}.

    A removed edge is routed over one of its surviving 3-detours chosen
    uniformly at random; Lemma 17 bounds the congestion of any matching
    routed this way by [1 + 2√Δ], and Theorem 1 lifts this to
    [O(√Δ · log n)] for arbitrary routings.

    {b Constants.}  The paper's [λ = 2⁷ ln² n / c₁] makes [λΔ' > Δ] at any
    laptop-scale [n] (then [Ê = ∅] and the spanner degenerates to [G]).  The
    support thresholds [(a, b)] are therefore parameters; the defaults
    [a = ⌈ln n⌉, b = ⌈Δ/4⌉] keep the algorithm's structure (an edge stays
    removable only if it has [Θ(Δ ln n)] 3-detours) at experiment scale.
    [`Paper] selects the paper's formula (with [c₁ = 1/2]) for asymptotic
    fidelity.  See DESIGN.md §3.5. *)

type thresholds =
  | Scaled  (** [a = max 2 ⌈ln n⌉], [b = ⌈Δ/4⌉] — experiment-scale defaults *)
  | Paper  (** [a = ⌈λΔ'⌉] with [λ = 2⁷ ln² n / c₁], [b = ⌈c₁Δ⌉], [c₁ = 1/2] *)
  | Explicit of int * int  (** given [(a, b)] directly *)

type t = {
  spanner : Graph.t;  (** the DC-spanner [H] *)
  sampled : Graph.t;  (** the intermediate sampled graph [G'] *)
  reinserted : int;  (** [|E''|]: unsupported edges put back (line 9) *)
  repaired : int;  (** edges put back by the repair pass *)
  support_a : int;  (** the [a] threshold actually used *)
  support_b : int;  (** the [b] threshold actually used *)
  delta : int;  (** input degree [Δ] *)
  delta' : int;  (** [Δ' = ⌈√Δ⌉] *)
}

val build : ?thresholds:thresholds -> ?repair:bool -> Prng.t -> Graph.t -> t
(** Run Algorithm 1.  [repair] defaults to [true].  The input should be
    (near-)regular; [Δ] is taken as the maximum degree.  Deterministic given
    the generator state. *)

val router : t -> detour_cap:int -> Prng.t -> (int * int) array -> Routing.path array
(** The Lemma 17 matching router: requests that are spanner edges are routed
    directly; removed edges over a uniformly random surviving 2- or 3-detour
    (at most [detour_cap] candidates are enumerated).  Falls back to a
    BFS shortest path in [H] if no detour survived (counted by Corollary 2
    as a low-probability event).  Paths are oriented first→second. *)

val to_dc : ?detour_cap:int -> t -> Graph.t -> Dc.t
(** Package as a {!Dc.t} (detour cap defaults to 64). *)
