type thresholds = Scaled | Paper | Explicit of int * int

type t = {
  spanner : Graph.t;
  sampled : Graph.t;
  reinserted : int;
  repaired : int;
  support_a : int;
  support_b : int;
  delta : int;
  delta' : int;
}

let resolve_thresholds thresholds ~n ~delta ~delta' =
  match thresholds with
  | Explicit (a, b) -> (a, b)
  | Scaled ->
      let a = max 2 (int_of_float (ceil (log (float_of_int (max 2 n))))) in
      let b = max 1 (delta / 4) in
      (a, b)
  | Paper ->
      let c1 = 0.5 in
      let ln_n = log (float_of_int (max 2 n)) in
      let lambda = 128.0 *. ln_n *. ln_n /. c1 in
      let a = int_of_float (ceil (lambda *. float_of_int delta')) in
      let b = int_of_float (ceil (c1 *. float_of_int delta)) in
      (a, b)

let m_reinserted = Metrics.counter "spanner.reinserted"
let m_repaired = Metrics.counter "spanner.repaired"

let build ?(thresholds = Scaled) ?(repair = true) rng g =
  let n = Graph.n g in
  let delta = Graph.max_degree g in
  let delta' = max 1 (int_of_float (ceil (sqrt (float_of_int delta)))) in
  let rho = if delta = 0 then 1.0 else float_of_int delta' /. float_of_int delta in
  let support_a, support_b = resolve_thresholds thresholds ~n ~delta ~delta' in
  (* Line 3-5: keep each edge with probability ρ. *)
  let sampled =
    Trace.with_span ~name:"spanner.sampling" (fun () ->
        let sampled = Graph.empty_like g in
        Graph.iter_edges g (fun u v ->
            if Prng.bool rng rho then ignore (Graph.add_edge sampled u v));
        sampled)
  in
  (* Line 8-9: reinsert edges that are not (a, b)-supported in any direction. *)
  let spanner, reinserted =
    Trace.with_span ~name:"spanner.sparsify" (fun () ->
        let bm = Bitmat.of_graph g in
        let spanner = Graph.copy sampled in
        let reinserted = ref 0 in
        Graph.iter_edges g (fun u v ->
            if
              (not (Graph.mem_edge spanner u v))
              && not (Support.is_ab_supported g bm u v ~a:support_a ~b:support_b)
            then begin
              ignore (Graph.add_edge spanner u v);
              incr reinserted
            end);
        (spanner, reinserted))
  in
  Metrics.add m_reinserted !reinserted;
  (* Repair pass: a supported removed edge is safe only if one of its
     3-detours survived the sampling (Corollary 2 makes failures rare but
     possible); reinserting the stragglers makes stretch 3 unconditional. *)
  let repaired = ref 0 in
  if repair then
    Trace.with_span ~name:"spanner.repair" (fun () ->
        let missing = ref [] in
        Graph.iter_edges g (fun u v ->
            if not (Graph.mem_edge spanner u v) then begin
              let has_detour =
                Support.two_detours spanner ~u ~v ~cap:1 <> []
                || Support.three_detours spanner ~u ~v ~cap:1 <> []
              in
              if not has_detour then missing := (u, v) :: !missing
            end);
        List.iter
          (fun (u, v) ->
            ignore (Graph.add_edge spanner u v);
            incr repaired)
          !missing);
  Metrics.add m_repaired !repaired;
  {
    spanner;
    sampled;
    reinserted = !reinserted;
    repaired = !repaired;
    support_a;
    support_b;
    delta;
    delta';
  }

let router t ~detour_cap rng pairs =
  let h = t.spanner in
  let csr = lazy (Csr.snapshot h) in
  Array.map
    (fun (u, v) ->
      if Graph.mem_edge h u v then [| u; v |]
      else begin
        (* Candidate replacements: 2-detours u–x–v and 3-detours u–x–z–v
           surviving in H; uniform random choice spreads the congestion
           (Lemma 17 / proof of Lemma 7). *)
        let twos = Support.two_detours h ~u ~v ~cap:detour_cap in
        let threes = Support.three_detours h ~u ~v ~cap:detour_cap in
        let candidates =
          List.map (fun x -> [| u; x; v |]) twos
          @ List.map (fun (x, z) -> [| u; x; z; v |]) threes
        in
        match candidates with
        | [] -> (
            match Bfs.shortest_path (Lazy.force csr) u v with
            | Some p -> p
            | None -> invalid_arg "Regular_dc.router: spanner disconnected for pair")
        | _ -> Prng.pick rng (Array.of_list candidates)
      end)
    pairs

let to_dc ?(detour_cap = 64) t g =
  {
    Dc.name = "algorithm1";
    graph = g;
    spanner = t.spanner;
    route_matching = (fun rng pairs -> router t ~detour_cap rng pairs);
  }
