(** Generalized [(2k−1)]-stretch DC-spanners — the paper's open problem.

    Section 8 asks whether {e increasing} the distance stretch beyond 3 buys
    sparser spanners with better congestion.  This module explores the
    natural generalization of Algorithm 1's sample-and-repair scheme:

    + sample every edge with probability [ρ = Δ^{-(k-1)/k}] (for [k = 2]
      this is Algorithm 1's [1/√Δ]; larger [k] keeps fewer edges — expected
      degree [Δ^{1/k}]);
    + reinsert every removed edge whose endpoints are farther than [2k−1]
      apart in the sampled graph (the repair rule, generalized from
      3-detours to [(2k−1)]-detours);
    + route a removed matching edge along a uniformly random shortest path
      ([≤ 2k−1] hops) of the spanner, spreading congestion across the
      detour DAG.

    The [ablations/khop] bench block sweeps [k] and reports the
    edges / distance stretch / congestion frontier.  This is an exploratory
    construction: it generalizes the repair rule but not the support census,
    so it carries no analytical congestion guarantee — measurements only. *)

type t = {
  spanner : Graph.t;
  sampled : Graph.t;  (** the sampled graph before repair *)
  k : int;  (** stretch parameter: target stretch [2k−1] *)
  rho : float;  (** sampling probability used *)
  reinserted : int;  (** edges put back by the distance-repair rule *)
}

val build : ?rho:float -> k:int -> Prng.t -> Graph.t -> t
(** Build the [(2k−1)]-stretch spanner.  Requires [k ≥ 1]; [k = 1] returns
    [G] itself.  [rho] overrides the default [Δ^{-(k-1)/k}]. *)

val router : t -> Prng.t -> (int * int) array -> Routing.path array
(** Matching router: direct edges go direct, removed edges take a uniformly
    random shortest path in the spanner (length [≤ 2k−1] by construction). *)

val to_dc : t -> Graph.t -> Dc.t
(** Package as a {!Dc.t}. *)
