(** Elkin–Neiman near-linear-time sparse spanner.

    The O(m)-expected-time construction of Elkin and Neiman ({e Efficient
    Algorithms for Constructing Very Sparse Spanners and Emulators},
    PAPERS.md): truncated-exponential radii, [k] rounds of discounted
    max-propagation over the CSR snapshot, and one counting-sort build of
    the kept edges.  This is the distance-only construction that pairs with
    the flat {!Csr_store} engine — the whole pipeline is flat array sweeps,
    so it runs at memory bandwidth on 10^6-node graphs. *)

type result = {
  spanner : Graph.t;  (** the [(2k-1)]-spanner *)
  removed : int;  (** edges of [g] dropped by the keep rule (pre-repair) *)
  repaired : int;  (** violating edges re-added by the repair pass *)
}

val build : ?k:int -> ?repair:bool -> Prng.t -> Graph.t -> result
(** [build ~k rng g] (default [k = 2]) computes a [(2k-1)]-spanner with
    expected [O(n^{1+1/k})] edges in [O(k·m)] time.  With [repair] (the
    default) a single {!Stretch.violations} pass re-adds every edge whose
    spanner detour exceeds [2k-1], making the stretch bound hold
    deterministically; pass [~repair:false] at million-node scale and
    certify on a sample instead (the [engine] bench block does).  Requires
    [k >= 1].  Deterministic given the generator state. *)
