let base_support bm u z = Bitmat.common_count bm u z

let supported_extensions g bm ~u ~v ~a =
  Graph.fold_neighbors g v
    (fun acc z ->
      if z <> u && Bitmat.common_count_at_least bm u z (a + 1) then z :: acc else acc)
    []

let count_supported_extensions g bm ~u ~v ~a ~limit =
  let count = ref 0 in
  (try
     Graph.iter_neighbors g v (fun z ->
         if z <> u && Bitmat.common_count_at_least bm u z (a + 1) then begin
           incr count;
           if !count >= limit then raise Exit
         end)
   with Exit -> ());
  !count

let is_ab_supported_toward g bm ~u ~v ~a ~b =
  count_supported_extensions g bm ~u ~v ~a ~limit:b >= b

let is_ab_supported g bm u v ~a ~b =
  is_ab_supported_toward g bm ~u ~v ~a ~b || is_ab_supported_toward g bm ~u:v ~v:u ~a ~b

let three_detours h ~u ~v ~cap =
  let out = ref [] in
  let count = ref 0 in
  (try
     Graph.iter_neighbors h v (fun z ->
         if z <> u && z <> v then
           Graph.iter_neighbors h z (fun x ->
               if x <> v && x <> u && x <> z && Graph.mem_edge h u x then begin
                 out := (x, z) :: !out;
                 incr count;
                 if !count >= cap then raise Exit
               end))
   with Exit -> ());
  !out

let two_detours h ~u ~v ~cap =
  let out = ref [] in
  let count = ref 0 in
  (try
     Graph.iter_neighbors h u (fun x ->
         if x <> v && Graph.mem_edge h x v then begin
           out := x :: !out;
           incr count;
           if !count >= cap then raise Exit
         end)
   with Exit -> ());
  !out

type census = {
  edges_total : int;
  edges_supported : int;
  extension_counts : int array;
  detour_counts : int array;
}

let census ?(sample = 200) ?(cap = 1000) rng g ~a ~b =
  let bm = Bitmat.of_graph g in
  let edges = Graph.edge_array g in
  let total = Array.length edges in
  let supported = ref 0 in
  Array.iter (fun (u, v) -> if is_ab_supported g bm u v ~a ~b then incr supported) edges;
  let picked =
    if total <= sample then edges
    else Array.map (fun i -> edges.(i)) (Prng.sample_distinct rng ~n:total ~k:sample)
  in
  let extension_counts =
    Array.map
      (fun (u, v) ->
        max
          (count_supported_extensions g bm ~u ~v ~a ~limit:cap)
          (count_supported_extensions g bm ~u:v ~v:u ~a ~limit:cap))
      picked
  in
  let detour_counts =
    Array.map (fun (u, v) -> List.length (three_detours g ~u ~v ~cap)) picked
  in
  { edges_total = total; edges_supported = !supported; extension_counts; detour_counts }
