(** The support structure of Section 4 (Figures 3 and 4).

    Definitions, for a graph [G]:
    - a {e 2-detour} with base [{u, z}] and router [x] is the edge pair
      [(u,x), (x,z)]; the base is [a]-{e supported} when at least [a] distinct
      routers exist, i.e. [|N(u) ∩ N(z)| ≥ a];
    - an {e extension} of edge [(u,v)] toward [v] is an edge [(v,z)] with
      [z ≠ u]; it is [a]-supported when the base [{u, z}] is
      [(a+1)]-supported (one of the 2-detours being the one through [v]);
    - edge [(u,v)] is [(a,b)]-{e supported toward} [v] when at least [b] of
      its extensions toward [v] are [a]-supported.  Each such edge owns
      [≥ a·b] 3-detours [u–x–z–v].

    Algorithm 1 keeps an edge out of the spanner only if it is
    [(λΔ', c₁Δ)]-supported in some direction — i.e. it has enough 3-detours
    that some survive the sampling w.h.p. *)

val base_support : Bitmat.t -> int -> int -> int
(** [base_support bm u z = |N(u) ∩ N(z)|], the number of 2-detours with base
    [{u, z}]. *)

val supported_extensions : Graph.t -> Bitmat.t -> u:int -> v:int -> a:int -> int list
(** [supported_extensions g bm ~u ~v ~a] lists the routers [z] of
    [a]-supported extensions [(v, z)] of the edge [(u, v)] toward [v]. *)

val count_supported_extensions :
  Graph.t -> Bitmat.t -> u:int -> v:int -> a:int -> limit:int -> int
(** Same as above but only counts, stopping early at [limit] (the census and
    Algorithm 1 only need threshold comparisons). *)

val is_ab_supported_toward : Graph.t -> Bitmat.t -> u:int -> v:int -> a:int -> b:int -> bool
(** Whether edge [(u,v)] is [(a,b)]-supported toward [v]. *)

val is_ab_supported : Graph.t -> Bitmat.t -> int -> int -> a:int -> b:int -> bool
(** Whether the edge is [(a,b)]-supported toward at least one direction —
    the membership test for [Ê] in Algorithm 1 (line 8). *)

val three_detours : Graph.t -> u:int -> v:int -> cap:int -> (int * int) list
(** [three_detours h ~u ~v ~cap] enumerates up to [cap] pairs [(x, z)] such
    that [u–x–z–v] is a path in [h] avoiding the edge [(u,v)] itself
    ([x ≠ v], [z ≠ u], [x ≠ z]).  These are the candidate replacement paths
    for a removed edge. *)

val two_detours : Graph.t -> u:int -> v:int -> cap:int -> int list
(** Up to [cap] common neighbors [x] of [u] and [v] in [h]: 2-hop
    replacements [u–x–v]. *)

type census = {
  edges_total : int;
  edges_supported : int;  (** members of [Ê] for the thresholds used *)
  extension_counts : int array;  (** per sampled edge: #a-supported extensions (best direction) *)
  detour_counts : int array;  (** per sampled edge: #3-detours (capped) *)
}

val census :
  ?sample:int -> ?cap:int -> Prng.t -> Graph.t -> a:int -> b:int -> census
(** Support census over (a sample of) the edges — the quantitative version of
    Figures 3–4 printed by the [figures/fig34_support] bench block. *)
