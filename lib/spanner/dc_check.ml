type violation = Invalid_substitute | Distance of float | Congestion of float

type verdict = {
  ok : bool;
  dist_stretch : float;
  cong_stretch : float;
  violations : violation list;
}

let check_routing ~alpha ~beta (dc : Dc.t) rng routing =
  let n = Graph.n dc.Dc.graph in
  let problem =
    Array.map
      (fun p -> { Routing.src = p.(0); dst = p.(Array.length p - 1) })
      routing
  in
  let { Decompose.substitute; _ } = Dc.route_general dc rng routing in
  let valid = Routing.is_valid dc.Dc.spanner problem substitute in
  let dist_stretch = Routing.max_stretch substitute ~against:routing in
  let base_c = max 1 (Routing.congestion ~n routing) in
  let sub_c = Routing.congestion ~n substitute in
  let cong_stretch = float_of_int sub_c /. float_of_int base_c in
  let violations =
    (if valid then [] else [ Invalid_substitute ])
    @ (if dist_stretch > alpha +. 1e-9 then [ Distance dist_stretch ] else [])
    @ if cong_stretch > beta +. 1e-9 then [ Congestion cong_stretch ] else []
  in
  { ok = violations = []; dist_stretch; cong_stretch; violations }

type estimate = {
  trials : int;
  successes : int;
  rate : float;
  worst_dist : float;
  worst_cong : float;
  cert_dist : int;
}

let estimate ?(trials = 20) ~alpha ~beta (dc : Dc.t) rng =
  let g = dc.Dc.graph in
  let csr = Csr.snapshot g in
  let n = Graph.n g in
  let sample_routing i =
    let shape = i mod 4 in
    let problem =
      match shape with
      | 0 -> Problems.edge_matching rng g
      | 1 -> Problems.node_matching rng g ~k:(max 1 (n / 8))
      | 2 -> Problems.permutation rng g
      | _ -> Problems.random_pairs rng g ~k:(max 1 (n / 4))
    in
    if shape = 0 then
      (* route the matching by its own edges: the optimal routing *)
      Array.map (fun { Routing.src; dst } -> [| src; dst |]) problem
    else Sp_routing.route_random csr rng problem
  in
  let m_trials = Metrics.counter "dc_check.trials" in
  let m_successes = Metrics.counter "dc_check.successes" in
  let successes = ref 0 in
  let worst_dist = ref 0.0 and worst_cong = ref 0.0 in
  for i = 0 to trials - 1 do
    let verdict =
      Trace.with_span ~name:"dc_check.trial" (fun () ->
          let routing = sample_routing i in
          check_routing ~alpha ~beta dc rng routing)
    in
    Metrics.incr m_trials;
    if verdict.ok then begin
      incr successes;
      Metrics.incr m_successes
    end;
    worst_dist := max !worst_dist verdict.dist_stretch;
    worst_cong := max !worst_cong verdict.cong_stretch
  done;
  (* exact (non-sampled) distance certificate, via the batched kernel: the
     routing trials above only witness stretch on the sampled workloads *)
  let cert_dist = Stretch.exact_parallel dc.Dc.graph dc.Dc.spanner in
  {
    trials;
    successes = !successes;
    rate = float_of_int !successes /. float_of_int (max 1 trials);
    worst_dist = !worst_dist;
    worst_cong = !worst_cong;
    cert_dist;
  }
