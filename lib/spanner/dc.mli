(** The [(α, β)]-DC-spanner interface (Definition 3) and its measurement.

    A DC-spanner construction bundles the spanner graph [H] with a
    {e matching router}: a procedure that, given a matching routing problem
    whose requests are edges of [G], produces a substitute routing on [H].
    Theorem 1 then lifts the matching router to arbitrary routings through
    the Algorithm 2 decomposition ({!route_general}), multiplying the
    congestion by [O(log n)].

    The measurement helpers below are what the benchmark harness reports:
    because a matching of [G]-edges has optimal congestion exactly 1, the
    congestion of the substitute routing {e is} the congestion stretch for
    that problem. *)

type t = {
  name : string;  (** construction label used in reports *)
  graph : Graph.t;  (** the original graph [G] *)
  spanner : Graph.t;  (** the spanner [H ⊆ G] *)
  route_matching : Prng.t -> (int * int) array -> Routing.path array;
      (** substitute routing on [H] for a matching (pairs oriented
          first→second; returned paths must match endpoints). *)
}

val of_sp_router : name:string -> graph:Graph.t -> spanner:Graph.t -> t
(** Wrap a plain spanner with the randomized-shortest-path matching router —
    the router used for the distance-spanner baselines and the
    [5]/[16]-substitutes. *)

val route_general : t -> Prng.t -> Routing.routing -> Decompose.result
(** Theorem 1: decompose the routing into matchings, route each on [H], and
    splice.  The result's [stats] expose the Lemma 21/23 quantities. *)

type matching_report = {
  trials : int;
  mean_congestion : float;  (** average over trials of [C(P')] *)
  max_congestion : int;  (** worst trial *)
  max_mean_node_load : float;
      (** max over nodes of the node's load averaged across trials — the
          empirical version of Theorem 2's "expected node congestion"
          ([E[T_w] ≤ 1 + o(1)] for matchings, proof of Lemma 7) *)
  mean_path_len : float;  (** average substitute path length *)
  max_path_len : int;  (** worst substitute path length = distance stretch on the workload *)
}

val measure_matching : t -> Prng.t -> trials:int -> matching_report
(** Route random maximal edge-matchings of [G] on [H].  Optimal congestion of
    each problem is 1, so [max_congestion] is a lower bound certificate of
    the spanner's congestion stretch and [mean_congestion] estimates the
    expected stretch (paper Theorem 2 / Lemma 17 regime). *)

type general_report = {
  problem_size : int;
  base_congestion : int;  (** congestion of the routing in [G] *)
  spanner_congestion : int;  (** congestion of the substitute in [H] *)
  stretch : float;  (** ratio *)
  dist_stretch : float;  (** max path-length stretch of the substitute *)
  decompose : Decompose.stats;
}

val measure_general : t -> Prng.t -> Routing.routing -> general_report
(** Measure the congestion stretch of an arbitrary routing in [G] (e.g. a
    shortest-path permutation routing): routes it on [H] via
    {!route_general} and compares congestions. *)
