(** Empirical verification of the DC-spanner property (Definitions 3 and 4).

    A certificate that [H] is an [(α, β)]-DC-spanner would quantify over all
    routings; this module provides the strongest checks that are computable:

    - {!check_routing}: given a concrete routing [P] on [G], verify that the
      substitute routing produced by the construction is a valid
      [(α, β)]-stretch substitute — correct endpoints, paths in [H], every
      path at most [α·l(p)] long, congestion at most [β·C(P)];
    - {!estimate}: Definition 4's probabilistic variant — sample random
      routing problems of several shapes (edge matchings, node matchings,
      permutations, random pairs), run {!check_routing} on each, and report
      the success rate [ρ] together with the worst stretches observed.

    The test suite uses {!check_routing} as an oracle for every
    construction; the benchmark harness reports {!estimate} values. *)

type violation =
  | Invalid_substitute  (** endpoints or edges wrong — a construction bug *)
  | Distance of float  (** worst path stretch, exceeds [α] *)
  | Congestion of float  (** congestion ratio, exceeds [β] *)

type verdict = {
  ok : bool;
  dist_stretch : float;  (** max over paths of [l(p')/l(p)] *)
  cong_stretch : float;  (** [C(P')/C(P)] *)
  violations : violation list;
}

val check_routing :
  alpha:float -> beta:float -> Dc.t -> Prng.t -> Routing.routing -> verdict
(** Route [P] through the construction's Theorem 1 pipeline and check the
    [(α, β)]-stretch-substitute conditions against it. *)

type estimate = {
  trials : int;
  successes : int;
  rate : float;  (** empirical [ρ] of Definition 4 *)
  worst_dist : float;
  worst_cong : float;
  cert_dist : int;
      (** exact distance stretch over {e all} removed edges
          ({!Stretch.exact_parallel}, batched kernel) — an unconditional
          certificate alongside the sampled routing trials; [max_int] if the
          spanner disconnects some edge *)
}

val estimate :
  ?trials:int -> alpha:float -> beta:float -> Dc.t -> Prng.t -> estimate
(** Sample [trials] (default 20) random routing problems across the four
    workload shapes and report the fraction that admit an [(α, β)]-stretch
    substitute via the construction. *)
