type t = {
  name : string;
  graph : Graph.t;
  spanner : Graph.t;
  route_matching : Prng.t -> (int * int) array -> Routing.path array;
}

let of_sp_router ~name ~graph ~spanner =
  let csr = Csr.snapshot spanner in
  let route_matching rng pairs =
    Array.map
      (fun (u, v) ->
        match Bfs.random_shortest_path csr rng u v with
        | Some p -> p
        | None -> invalid_arg (name ^ ": spanner disconnects a routed pair"))
      pairs
  in
  { name; graph; spanner; route_matching }

let route_general t rng routing =
  Decompose.run ~n:(Graph.n t.graph) ~router:(t.route_matching rng) routing

type matching_report = {
  trials : int;
  mean_congestion : float;
  max_congestion : int;
  max_mean_node_load : float;
  mean_path_len : float;
  max_path_len : int;
}

let measure_matching t rng ~trials =
  let n = Graph.n t.graph in
  let congestions = Array.make trials 0.0 in
  let max_c = ref 0 in
  let load_totals = Array.make n 0 in
  let len_sum = ref 0.0 and len_count = ref 0 and max_len = ref 0 in
  for i = 0 to trials - 1 do
    let matching = Matching.random_maximal rng t.graph in
    let paths = t.route_matching rng matching in
    let loads = Routing.node_loads ~n paths in
    Array.iteri (fun v l -> load_totals.(v) <- load_totals.(v) + l) loads;
    let c = Array.fold_left max 0 loads in
    congestions.(i) <- float_of_int c;
    max_c := max !max_c c;
    Array.iter
      (fun p ->
        let l = Routing.length p in
        len_sum := !len_sum +. float_of_int l;
        incr len_count;
        max_len := max !max_len l)
      paths
  done;
  let max_mean_node_load =
    if trials = 0 then 0.0
    else
      float_of_int (Array.fold_left max 0 load_totals) /. float_of_int trials
  in
  {
    trials;
    mean_congestion = Stats.mean congestions;
    max_congestion = !max_c;
    max_mean_node_load;
    mean_path_len = (if !len_count = 0 then 0.0 else !len_sum /. float_of_int !len_count);
    max_path_len = !max_len;
  }

type general_report = {
  problem_size : int;
  base_congestion : int;
  spanner_congestion : int;
  stretch : float;
  dist_stretch : float;
  decompose : Decompose.stats;
}

let measure_general t rng routing =
  let n = Graph.n t.graph in
  let base = Routing.congestion ~n routing in
  let { Decompose.substitute; stats } = route_general t rng routing in
  let spanner_c = Routing.congestion ~n substitute in
  {
    problem_size = Array.length routing;
    base_congestion = base;
    spanner_congestion = spanner_c;
    stretch = (if base = 0 then 0.0 else float_of_int spanner_c /. float_of_int base);
    dist_stretch = Routing.max_stretch substitute ~against:routing;
    decompose = stats;
  }
