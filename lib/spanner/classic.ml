(* Bounded BFS on the mutable graph, used by the greedy construction where
   the spanner changes between queries (a CSR snapshot per edge would
   dominate the cost). *)
let distance_bounded_mut h u v ~bound =
  if u = v then 0
  else begin
    let n = Graph.n h in
    let dist = Array.make n (-1) in
    let queue = Queue.create () in
    dist.(u) <- 0;
    Queue.add u queue;
    let result = ref (-1) in
    (try
       while not (Queue.is_empty queue) do
         let x = Queue.pop queue in
         if dist.(x) < bound then
           Graph.iter_neighbors h x (fun y ->
               if dist.(y) < 0 then begin
                 dist.(y) <- dist.(x) + 1;
                 if y = v then begin
                   result := dist.(y);
                   raise Exit
                 end;
                 Queue.add y queue
               end)
       done
     with Exit -> ());
    !result
  end

let greedy g ~k =
  if k < 1 then invalid_arg "Classic.greedy: k must be >= 1";
  let bound = (2 * k) - 1 in
  let h = Graph.empty_like g in
  let edges = Graph.edge_array g in
  Array.sort compare edges;
  Array.iter
    (fun (u, v) ->
      let d = distance_bounded_mut h u v ~bound in
      if d < 0 then ignore (Graph.add_edge h u v))
    edges;
  h

let baswana_sen_3 rng g =
  let n = Graph.n g in
  let h = Graph.empty_like g in
  if n > 0 then begin
    let p = 1.0 /. sqrt (float_of_int n) in
    let center = Array.init n (fun _ -> Prng.bool rng p) in
    (* cluster.(v) = id of v's cluster center, or -1 if unclustered. *)
    let cluster = Array.make n (-1) in
    for v = 0 to n - 1 do
      if center.(v) then cluster.(v) <- v
    done;
    for v = 0 to n - 1 do
      if not center.(v) then begin
        let adjacent_center =
          Graph.fold_neighbors g v (fun acc u -> if center.(u) then Some u else acc) None
        in
        match adjacent_center with
        | None ->
            (* Not adjacent to any sampled center: keep all incident edges. *)
            Graph.iter_neighbors g v (fun u -> ignore (Graph.add_edge h v u))
        | Some c ->
            cluster.(v) <- c;
            ignore (Graph.add_edge h v c)
      end
    done;
    (* Phase 2: each node keeps one edge into every adjacent foreign cluster. *)
    for v = 0 to n - 1 do
      let seen = Hashtbl.create 8 in
      Graph.iter_neighbors g v (fun u ->
          let c = cluster.(u) in
          if c >= 0 && c <> cluster.(v) && not (Hashtbl.mem seen c) then begin
            Hashtbl.add seen c ();
            ignore (Graph.add_edge h v u)
          end)
    done
  end;
  h
