(* Elkin–Neiman near-linear-time sparse spanner (PAPERS.md: "Efficient
   Algorithms for Constructing Very Sparse Spanners and Emulators").

   Every node draws r_v ~ Exp(beta) with beta = ln(2n)/k, truncated below k;
   k rounds of discounted max-propagation compute
   x_i(v) = max_u { r_u - d(u, v) : d(u, v) <= i } together with the origin
   u attaining it.  A node keeps the edge to each neighbor whose incoming
   broadcast is within 1 of its own round-k maximum, one edge per distinct
   origin — the exponential race makes the number of near-maximal origins
   O((2n)^{1/k}) in expectation, giving E[m(H)] = O(n^{1+1/k}) while every
   kept broadcast path certifies a short detour.  Total work is O(k·m) plus
   one O(n + m) counting-sort build of the result.

   The propagation variant trades the paper's w.h.p. guarantee for a
   deterministic safety net: with [repair] on (the default), one
   Stretch.violations pass re-adds every edge whose detour exceeds 2k-1.
   Adding edges only shrinks spanner distances, so a single pass makes the
   stretch bound unconditional. *)

type result = { spanner : Graph.t; removed : int; repaired : int }

let build ?(k = 2) ?(repair = true) rng g =
  if k < 1 then invalid_arg "Elkin_neiman.build: k must be >= 1";
  let c = Csr.snapshot g in
  let size = Csr.n c in
  let beta = log (2.0 *. float_of_int (max 2 size)) /. float_of_int k in
  let fk = float_of_int k in
  let len = max 1 size in
  let r = Array.make len 0.0 in
  Trace.with_span ~name:"en.radii" (fun () ->
      for v = 0 to size - 1 do
        (* Truncated exponential: conditioning every r_v below k keeps the
           detour argument deterministic instead of w.h.p. *)
        let rec draw () =
          let x = -.log1p (-.Prng.float rng) /. beta in
          if x < fk then x else draw ()
        in
        r.(v) <- draw ()
      done);
  let pv = ref (Array.copy r) and po = ref (Array.init len (fun v -> v)) in
  let cv = ref (Array.make len 0.0) and co = ref (Array.make len 0) in
  Trace.with_span ~name:"en.propagate" (fun () ->
      for round = 1 to k do
        let pv_ = !pv and po_ = !po and cv_ = !cv and co_ = !co in
        for v = 0 to size - 1 do
          let bv = ref pv_.(v) and bo = ref po_.(v) in
          Csr.iter_neighbors c v (fun w ->
              let a = pv_.(w) -. 1.0 in
              if a > !bv then begin
                bv := a;
                bo := po_.(w)
              end);
          cv_.(v) <- !bv;
          co_.(v) <- !bo
        done;
        if round < k then begin
          let t = !pv in
          pv := !cv;
          cv := t;
          let t = !po in
          po := !co;
          co := t
        end
      done);
  (* !pv/!po = x_{k-1}, !cv = x_k *)
  let xp_val = !pv and xp_org = !po and xk_val = !cv in
  let h_csr =
    Trace.with_span ~name:"en.keep" (fun () ->
        Csr.of_stream ~m_hint:(Graph.m g) ~n:size (fun emit ->
            for v = 0 to size - 1 do
              let t = xk_val.(v) -. 1.0 in
              let seen = ref [] in
              Csr.iter_neighbors c v (fun w ->
                  let a = xp_val.(w) -. 1.0 in
                  if a >= t then begin
                    let o = xp_org.(w) in
                    if not (List.mem o !seen) then begin
                      seen := o :: !seen;
                      emit v w
                    end
                  end)
            done))
  in
  let h = Graph.of_csr h_csr in
  let removed = Graph.m g - Graph.m h in
  let repaired =
    if not repair then 0
    else
      Trace.with_span ~name:"en.repair" (fun () ->
          let viol = Stretch.violations g h ~bound:((2 * k) - 1) in
          List.iter (fun (u, v) -> ignore (Graph.add_edge h u v)) viol;
          List.length viol)
  in
  { spanner = h; removed; repaired }
