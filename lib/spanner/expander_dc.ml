type t = {
  spanner : Graph.t;
  p : float;
  fallbacks : int ref;
  (* candidate replacement paths per removed edge, computed once: the
     neighborhood matching (Lemma 4) is a property of G and the sampled
     spanner, not of the request stream *)
  cache : (int * int, Routing.path array) Hashtbl.t;
}

let norm u v = if u < v then (u, v) else (v, u)

let default_p g =
  let n = float_of_int (Graph.n g) in
  let delta = float_of_int (max 1 (Graph.max_degree g)) in
  min 1.0 ((n ** (2.0 /. 3.0)) /. delta)

let m_fallbacks = Metrics.counter "spanner.router_fallbacks"
let m_cache_miss = Metrics.counter "spanner.candidate_cache_miss"

let build ?p rng g =
  let p = match p with Some p -> min 1.0 (max 1e-9 p) | None -> default_p g in
  let spanner =
    Trace.with_span ~name:"spanner.sampling" (fun () ->
        let spanner = Graph.empty_like g in
        Graph.iter_edges g (fun u v -> if Prng.bool rng p then ignore (Graph.add_edge spanner u v));
        spanner)
  in
  { spanner; p; fallbacks = ref 0; cache = Hashtbl.create 256 }

(* Lemma 4 matching between the neighborhoods, then keep the 2/3-hop paths
   whose edges all survived the sampling (Lemma 6).  Candidates are oriented
   from the normalized edge's smaller endpoint. *)
let candidates_for t g u v =
  let u, v = norm u v in
  match Hashtbl.find_opt t.cache (u, v) with
  | Some c -> c
  | None ->
      Metrics.incr m_cache_miss;
      let h = t.spanner in
      let commons, matched = Bipartite_matching.neighborhood_matching g u v in
      let two_hop =
        List.filter_map
          (fun x ->
            if Graph.mem_edge h u x && Graph.mem_edge h x v then Some [| u; x; v |] else None)
          commons
      in
      let three_hop =
        Array.to_list matched
        |> List.filter_map (fun (x, y) ->
               if Graph.mem_edge h u x && Graph.mem_edge h x y && Graph.mem_edge h y v then
                 Some [| u; x; y; v |]
               else None)
      in
      let c = Array.of_list (two_hop @ three_hop) in
      Hashtbl.replace t.cache (u, v) c;
      c

let router t g rng pairs =
  let h = t.spanner in
  let csr = lazy (Csr.snapshot h) in
  let reverse p =
    let len = Array.length p in
    Array.init len (fun i -> p.(len - 1 - i))
  in
  Array.map
    (fun (u, v) ->
      if Graph.mem_edge h u v then [| u; v |]
      else begin
        let candidates = candidates_for t g u v in
        if Array.length candidates = 0 then begin
          incr t.fallbacks;
          Metrics.incr m_fallbacks;
          match Bfs.shortest_path (Lazy.force csr) u v with
          | Some p -> p
          | None -> invalid_arg "Expander_dc.router: spanner disconnected for pair"
        end
        else begin
          let p = Prng.pick rng candidates in
          if p.(0) = u then p else reverse p
        end
      end)
    pairs

let to_dc t g =
  {
    Dc.name = "theorem2";
    graph = g;
    spanner = t.spanner;
    route_matching = (fun rng pairs -> router t g rng pairs);
  }
