type t = {
  n : int;
  delta : int;
  regular : bool;
  degree_ratio : float;
  min_delta : float;
  delta_ok : bool;
  lambda : float;
  lambda_budget : float;
  expander_ok : bool;
}

let check g =
  let n = Graph.n g in
  let delta = Graph.max_degree g in
  let min_deg = Graph.min_degree g in
  let min_delta = float_of_int (max 1 n) ** (2.0 /. 3.0) in
  let lambda = Spectral.lambda_lanczos (Csr.of_graph g) in
  let lambda_budget =
    if n = 0 then 0.0 else float_of_int (delta * delta) /. float_of_int n
  in
  {
    n;
    delta;
    regular = Graph.is_regular g;
    degree_ratio = float_of_int delta /. float_of_int (max 1 min_deg);
    min_delta;
    delta_ok = float_of_int delta >= min_delta;
    lambda;
    lambda_budget;
    expander_ok = lambda <= lambda_budget /. 2.0;
  }

let theorem3_ok t = t.delta_ok && t.degree_ratio <= 2.0

let theorem2_ok t = theorem3_ok t && t.expander_ok

let describe t =
  let warnings = ref [] in
  if not t.delta_ok then
    warnings :=
      Printf.sprintf "degree %d below the n^{2/3} = %.1f density threshold" t.delta t.min_delta
      :: !warnings;
  if t.degree_ratio > 2.0 then
    warnings :=
      Printf.sprintf "degrees vary by %.1fx: outside the (near-)regular regime (consider Irregular)"
        t.degree_ratio
      :: !warnings;
  if not t.expander_ok then
    warnings :=
      Printf.sprintf "expansion lambda = %.1f exceeds the Theorem 2 allowance %.1f (= Delta^2/2n)"
        t.lambda (t.lambda_budget /. 2.0)
      :: !warnings;
  List.rev !warnings
