type t = {
  n : int;
  delta : int;
  regular : bool;
  degree_ratio : float;
  min_delta : float;
  delta_ok : bool;
  lambda : float;
  lambda_budget : float;
  expander_ok : bool;
  weighted : bool;
}

let check g =
  let n = Graph.n g in
  let delta = Graph.max_degree g in
  let min_deg = Graph.min_degree g in
  let min_delta = float_of_int (max 1 n) ** (2.0 /. 3.0) in
  let lambda = Spectral.lambda_lanczos (Csr.snapshot g) in
  let lambda_budget =
    if n = 0 then 0.0 else float_of_int (delta * delta) /. float_of_int n
  in
  {
    n;
    delta;
    regular = Graph.is_regular g;
    degree_ratio = float_of_int delta /. float_of_int (max 1 min_deg);
    min_delta;
    delta_ok = float_of_int delta >= min_delta;
    lambda;
    lambda_budget;
    expander_ok = lambda <= lambda_budget /. 2.0;
    weighted = Graph.is_weighted g;
  }

let theorem3_ok t = t.delta_ok && t.degree_ratio <= 2.0

let theorem2_ok t = theorem3_ok t && t.expander_ok

type requirement = Any | Weighted | Expander | Theorem3 | Theorem2

let requirement_text = function
  | Any -> "any graph"
  | Weighted -> "weighted graph (some edge weight > 1)"
  | Expander -> "spectral expander (lambda <= Delta^2/2n)"
  | Theorem3 -> "near-regular, Delta >= n^{2/3}"
  | Theorem2 -> "near-regular expander, Delta >= n^{2/3}"

let satisfied req t =
  match req with
  | Any -> true
  | Weighted -> t.weighted
  | Expander -> t.expander_ok
  | Theorem3 -> theorem3_ok t
  | Theorem2 -> theorem2_ok t

let density_warning t =
  if t.delta_ok then []
  else
    [ Printf.sprintf "degree %d below the n^{2/3} = %.1f density threshold" t.delta t.min_delta ]

let regularity_warning t =
  if t.degree_ratio <= 2.0 then []
  else
    [
      Printf.sprintf "degrees vary by %.1fx: outside the (near-)regular regime (consider Irregular)"
        t.degree_ratio;
    ]

let expansion_warning t =
  if t.expander_ok then []
  else
    [
      Printf.sprintf "expansion lambda = %.1f exceeds the Theorem 2 allowance %.1f (= Delta^2/2n)"
        t.lambda (t.lambda_budget /. 2.0);
    ]

let weight_warning t =
  if t.weighted then []
  else
    [
      "all edge weights are 1: the weighted variant reduces to its unweighted \
       counterpart here";
    ]

let violations req t =
  match req with
  | Any -> []
  | Weighted -> weight_warning t
  | Expander -> expansion_warning t
  | Theorem3 -> density_warning t @ regularity_warning t
  | Theorem2 -> density_warning t @ regularity_warning t @ expansion_warning t

let describe t = violations Theorem2 t
