(** DC-spanners for arbitrary-degree graphs — the paper's open problem 3.

    The paper proves Theorem 3 for Δ-regular graphs and notes (footnote 1)
    that the result extends to graphs with all degrees [Θ(Δ)]; Section 8
    leaves truly irregular graphs open.  This module implements the natural
    degree-local generalization of Algorithm 1:

    - edge [(u, v)] is kept with probability [ρ_{uv} = 1/√d_{uv}] where
      [d_{uv} = min(deg u, deg v)] — on a regular graph this is exactly
      Algorithm 1's [1/√Δ], and low-degree regions (which cannot afford to
      lose edges) sample at rate ≈ 1;
    - the support reinsertion rule uses per-edge thresholds
      [(a, b) = (⌈ln n⌉, ⌈d_{uv}/4⌉)]: an edge must have
      [Ω(d_{uv})] well-supported extensions to stay removable;
    - the repair pass and the random 2-/3-detour router are unchanged.

    Exploratory like {!Khop_dc}: measured in the [ablations/irregular] bench
    block on Chung–Lu and preferential-attachment graphs, no analytical
    guarantee claimed beyond the stretch-3 certificate (which repair makes
    unconditional). *)

type t = {
  spanner : Graph.t;
  sampled : Graph.t;
  reinserted : int;  (** unsupported edges put back *)
  repaired : int;  (** detour-less removed edges put back *)
}

val build : ?repair:bool -> Prng.t -> Graph.t -> t
(** Build the degree-local DC-spanner ([repair] defaults to [true]). *)

val to_dc : ?detour_cap:int -> t -> Graph.t -> Dc.t
(** Package with the random-detour matching router of Algorithm 1. *)
