type algorithm =
  | Theorem2
  | Algorithm1
  | Greedy of int
  | Baswana_sen
  | Baswana_sen_weighted
  | Elkin_neiman
  | Spectral_sparsify
  | Bounded_degree
  | Khop of int
  | Irregular

let algorithm_name = function
  | Theorem2 -> "theorem2"
  | Algorithm1 -> "algorithm1"
  | Greedy k -> Printf.sprintf "greedy-%d" ((2 * k) - 1)
  | Baswana_sen -> "baswana-sen"
  | Baswana_sen_weighted -> "baswana-sen-weighted"
  | Elkin_neiman -> "elkin-neiman"
  | Spectral_sparsify -> "spectral[16]"
  | Bounded_degree -> "bounded-deg[5]"
  | Khop k -> Printf.sprintf "khop-%d" ((2 * k) - 1)
  | Irregular -> "irregular"

let build algorithm rng g =
  match algorithm with
  | Theorem2 ->
      let t = Expander_dc.build rng g in
      Expander_dc.to_dc t g
  | Algorithm1 ->
      let t = Regular_dc.build rng g in
      Regular_dc.to_dc t g
  | Greedy k ->
      let h = Classic.greedy g ~k in
      Dc.of_sp_router ~name:(algorithm_name (Greedy k)) ~graph:g ~spanner:h
  | Baswana_sen ->
      let h = Classic.baswana_sen_3 rng g in
      Dc.of_sp_router ~name:"baswana-sen" ~graph:g ~spanner:h
  | Baswana_sen_weighted ->
      let h = Baswana_sen_weighted.build ~k:2 rng g in
      Dc.of_sp_router ~name:"baswana-sen-weighted" ~graph:g ~spanner:h
  | Elkin_neiman ->
      let r = Elkin_neiman.build rng g in
      Dc.of_sp_router ~name:"elkin-neiman" ~graph:g ~spanner:r.Elkin_neiman.spanner
  | Spectral_sparsify ->
      let t = Sparsify.spectral rng g in
      Sparsify.to_dc ~name:"spectral[16]" t g
  | Bounded_degree ->
      let t = Sparsify.bounded_degree rng g in
      Sparsify.to_dc ~name:"bounded-deg[5]" t g
  | Khop k ->
      let t = Khop_dc.build ~k rng g in
      Khop_dc.to_dc t g
  | Irregular ->
      let t = Irregular_dc.build rng g in
      Irregular_dc.to_dc t g

let stretch_guarantee = function
  | Theorem2 -> "(3, O(log^2 n)) with O(n^{5/3}) edges on dense regular expanders"
  | Algorithm1 -> "(3, O(sqrt(D) log n)) with O(n^{5/3} log^2 n) edges on D-regular, D >= n^{2/3}"
  | Greedy k -> Printf.sprintf "(%d, unbounded) with O(n^{1+1/%d}) edges" ((2 * k) - 1) k
  | Baswana_sen -> "(3, unbounded) with O(n^{3/2}) edges"
  | Baswana_sen_weighted -> "(3, unbounded) with O(n^{3/2}) edges; weighted: d_H <= 3*w per edge"
  | Elkin_neiman -> "(3, unbounded) with O(n^{3/2}) edges in O(m) expected time"
  | Spectral_sparsify -> "(O(log n), O(log^4 n)) with O(n log n) edges on expanders"
  | Bounded_degree -> "(O(log n), O(log^3 n)) with O(n) edges on dense expanders"
  | Khop k ->
      Printf.sprintf "(%d, measured) with ~n*D^{1/%d} edges; exploratory (Section 8)" ((2 * k) - 1) k
  | Irregular -> "(3, measured) degree-local Algorithm 1; exploratory (Section 8)"
