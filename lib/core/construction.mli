(** The first-class construction registry.

    Every spanner construction the system knows is one {!t} record here:
    canonical name, CLI aliases, paper reference, premise requirement,
    guarantee metadata and the build entry point.  Consumer layers derive
    their behavior from the registry instead of hand-maintaining per-variant
    lists — the CLI parses [--algorithm], validates premises and renders the
    [list] subcommand from it; the bench harness sweeps registry-driven
    construction lists; {!Experiment} reads the edge-count normalization
    exponent from the metadata.  Adding a construction is a one-record diff
    (see HACKING.md, "Adding a construction"). *)

type t = {
  name : string;  (** canonical CLI name, unique across the registry *)
  aliases : string list;  (** accepted alternative spellings, also unique *)
  algorithm : Dc_spanner.algorithm;  (** the underlying variant *)
  reference : string;  (** Table 1 row / theorem / section of the paper *)
  premise : Premise.requirement;  (** what the guarantee assumes of the input *)
  guarantee : string;  (** display form of the (distance, congestion) guarantee *)
  alpha : float option;
      (** numeric target distance stretch when it is a constant
          ([None] for the [O(log n)]-stretch sparsifiers) *)
  edge_exponent : float;
      (** expected [e] with [m(H) = O(n^e)] — the normalization exponent for
          {!Experiment.edges_norm} *)
  params : (string * string) list;  (** tunable parameters baked into the entry *)
  build : Prng.t -> Graph.t -> Dc.t;  (** construct the spanner + router *)
}

val all : t list
(** Every registered construction, in display order (Table 1 order first,
    then baselines and the Section 8 exploratory variants). *)

val names : string list
(** Canonical names, in registry order. *)

val all_names : string list
(** Canonical names and aliases (the strings {!find} accepts). *)

val expected : string
(** ["theorem2 | bounded-degree | ..."] — canonical names joined for docs. *)

val find : string -> (t, string) result
(** Case-insensitive lookup by name or alias.  The error message lists every
    accepted name and alias (generated, never hand-maintained). *)

val find_exn : string -> t
(** {!find}, raising [Invalid_argument] on unknown names (registry-driven
    callers with literal names, e.g. the bench harness). *)

val build : t -> Prng.t -> Graph.t -> Dc.t
(** Build the construction ([c.build]). *)

val premise_ok : t -> Premise.t -> bool
(** Whether a measured premise satisfies this construction's requirement. *)

val premise_warnings : t -> Graph.t -> string list
(** Measure the graph against the construction's requirement; empty when the
    premise holds (or the construction assumes nothing).  Runs the Lanczos
    estimator for non-[Any] requirements. *)

val accepting : Premise.t -> t list
(** The registry filtered to constructions whose premise accepts the measured
    graph — the bench sweeps use this instead of hardcoded lists. *)

val params_text : t -> string
(** ["k=2"]-style rendering of the tunables, ["-"] when there are none. *)

val to_json : unit -> string
(** The whole registry as a JSON document (the [list --json] payload). *)
