type t = {
  name : string;
  aliases : string list;
  algorithm : Dc_spanner.algorithm;
  reference : string;
  premise : Premise.requirement;
  guarantee : string;
  alpha : float option;
  edge_exponent : float;
  params : (string * string) list;
  build : Prng.t -> Graph.t -> Dc.t;
}

(* One record per construction.  Everything a consumer layer needs — CLI
   parsing, premise validation, guarantee display, bench sweeps, the edge
   normalization exponent — reads from here; adding construction #10 is a
   one-record diff.  The guarantee string is taken from
   [Dc_spanner.stretch_guarantee] so the display text has a single source. *)
let entry ?(aliases = []) ?alpha ?(params = []) ~name ~reference ~premise ~edge_exponent algorithm =
  {
    name;
    aliases;
    algorithm;
    reference;
    premise;
    guarantee = Dc_spanner.stretch_guarantee algorithm;
    alpha;
    edge_exponent;
    params;
    build = Dc_spanner.build algorithm;
  }

let all =
  [
    entry ~name:"theorem2" ~aliases:[ "expander" ]
      ~reference:"Table 1 row 1 (Theorem 2)" ~premise:Premise.Theorem2 ~alpha:3.0
      ~edge_exponent:(5.0 /. 3.0) Dc_spanner.Theorem2;
    entry ~name:"bounded-degree" ~aliases:[ "becchetti" ]
      ~reference:"Table 1 row 2 ([5]-substitute)" ~premise:Premise.Expander
      ~edge_exponent:1.0 Dc_spanner.Bounded_degree;
    entry ~name:"spectral" ~aliases:[ "koutis-xu" ]
      ~reference:"Table 1 row 3 ([16]-substitute)" ~premise:Premise.Expander
      ~edge_exponent:1.0 Dc_spanner.Spectral_sparsify;
    entry ~name:"algorithm1" ~aliases:[ "theorem3" ]
      ~reference:"Table 1 row 4 (Theorem 3, Algorithm 1)" ~premise:Premise.Theorem3 ~alpha:3.0
      ~edge_exponent:(5.0 /. 3.0) Dc_spanner.Algorithm1;
    entry ~name:"greedy" ~aliases:[ "greedy-3" ]
      ~reference:"baseline [ADDJS93] (distance-only)" ~premise:Premise.Any ~alpha:3.0
      ~edge_exponent:1.5
      ~params:[ ("k", "2") ]
      (Dc_spanner.Greedy 2);
    entry ~name:"baswana-sen"
      ~reference:"baseline [BS07] (distance-only)" ~premise:Premise.Any ~alpha:3.0
      ~edge_exponent:1.5 Dc_spanner.Baswana_sen;
    entry ~name:"baswana-sen-weighted" ~aliases:[ "bsw" ]
      ~reference:"baseline [BS07] (weighted, distance-only)" ~premise:Premise.Weighted ~alpha:3.0
      ~edge_exponent:1.5
      ~params:[ ("k", "2") ]
      Dc_spanner.Baswana_sen_weighted;
    entry ~name:"elkin-neiman" ~aliases:[ "en" ]
      ~reference:"baseline [EN17] (distance-only, O(m) expected time)" ~premise:Premise.Any
      ~alpha:3.0 ~edge_exponent:1.5
      ~params:[ ("k", "2") ]
      Dc_spanner.Elkin_neiman;
    entry ~name:"khop-5" ~aliases:[ "khop3" ]
      ~reference:"Section 8 open problem (k-hop, k = 3)" ~premise:Premise.Any ~alpha:5.0
      ~edge_exponent:(1.0 +. (1.0 /. 3.0))
      ~params:[ ("k", "3") ]
      (Dc_spanner.Khop 3);
    entry ~name:"khop-7" ~aliases:[ "khop4" ]
      ~reference:"Section 8 open problem (k-hop, k = 4)" ~premise:Premise.Any ~alpha:7.0
      ~edge_exponent:1.25
      ~params:[ ("k", "4") ]
      (Dc_spanner.Khop 4);
    entry ~name:"irregular"
      ~reference:"Section 8 open problem (degree-local Algorithm 1)" ~premise:Premise.Any
      ~alpha:3.0 ~edge_exponent:(5.0 /. 3.0) Dc_spanner.Irregular;
  ]

let names = List.map (fun c -> c.name) all

let all_names = List.concat_map (fun c -> c.name :: c.aliases) all

let matches query c =
  let q = String.lowercase_ascii query in
  String.lowercase_ascii c.name = q
  || List.exists (fun a -> String.lowercase_ascii a = q) c.aliases

let expected = String.concat " | " names

let find query =
  match List.find_opt (matches query) all with
  | Some c -> Ok c
  | None ->
      Error (Printf.sprintf "unknown algorithm %S (expected %s)" query (String.concat " | " all_names))

let find_exn query =
  match find query with Ok c -> c | Error msg -> invalid_arg ("Construction.find_exn: " ^ msg)

let build c = c.build

let premise_ok c p = Premise.satisfied c.premise p

let premise_warnings c g =
  match c.premise with
  | Premise.Any -> []
  | req ->
      let p = Premise.check g in
      if Premise.satisfied req p then []
      else begin
        let vs = Premise.violations req p in
        (* structured channel for the same warnings callers print: a sweep
           over many graphs can grep the JSONL for premise.violation *)
        List.iter
          (fun v ->
            Log.warn ~fields:[ ("construction", c.name); ("violation", v) ] "premise.violation")
          vs;
        vs
      end

let accepting p = List.filter (fun c -> premise_ok c p) all

let params_text c =
  match c.params with
  | [] -> "-"
  | ps -> String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) ps)

let to_json () =
  let entry_json c =
    Printf.sprintf
      "{\"name\":\"%s\",\"aliases\":[%s],\"reference\":\"%s\",\"premise\":\"%s\",\"guarantee\":\"%s\",\"alpha\":%s,\"edge_exponent\":%s,\"params\":{%s}}"
      (Obs.json_escape c.name)
      (String.concat "," (List.map (fun a -> "\"" ^ Obs.json_escape a ^ "\"") c.aliases))
      (Obs.json_escape c.reference)
      (Obs.json_escape (Premise.requirement_text c.premise))
      (Obs.json_escape c.guarantee)
      (match c.alpha with None -> "null" | Some a -> Obs.json_float a)
      (Obs.json_float c.edge_exponent)
      (String.concat ","
         (List.map
            (fun (k, v) ->
              Printf.sprintf "\"%s\":\"%s\"" (Obs.json_escape k) (Obs.json_escape v))
            c.params))
  in
  Printf.sprintf "{\"constructions\":[%s]}\n" (String.concat "," (List.map entry_json all))
