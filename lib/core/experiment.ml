type row = {
  label : string;
  n : int;
  m_graph : int;
  m_spanner : int;
  lambda : float;
  lambda_spanner : float;
  dist_stretch : int;
  matching : Dc.matching_report;
  general : Dc.general_report option;
}

let evaluate ?(trials = 5) ?(with_general = true) ?(with_lambda = true) rng (dc : Dc.t) =
  let g = dc.Dc.graph and h = dc.Dc.spanner in
  let n = Graph.n g in
  (* one CSR snapshot per graph for the whole evaluation: spectral, exact
     stretch and baseline routing all read the same immutable views *)
  let gc = Csr.snapshot g and hc = Csr.snapshot h in
  let lambda, lambda_spanner =
    Trace.with_span ~name:"experiment.spectral" (fun () ->
        if with_lambda then (Spectral.lambda gc, Spectral.lambda hc) else (0.0, 0.0))
  in
  let dist_stretch = Stretch.exact_parallel ~snapshot:hc g h in
  let matching =
    Trace.with_span ~name:"experiment.matching" (fun () -> Dc.measure_matching dc rng ~trials)
  in
  let general =
    if with_general then
      Trace.with_span ~name:"experiment.general" (fun () ->
          let problem = Problems.permutation rng g in
          let base_routing = Sp_routing.route_random gc rng problem in
          Some (Dc.measure_general dc rng base_routing))
    else None
  in
  {
    label = dc.Dc.name;
    n;
    m_graph = Graph.m g;
    m_spanner = Graph.m h;
    lambda;
    lambda_spanner;
    dist_stretch;
    matching;
    general;
  }

let edges_norm row e = float_of_int row.m_spanner /. (float_of_int row.n ** e)

let row_columns =
  [
    "n";
    "m(G)";
    "m(H)";
    "m(H)/n^e";
    "lam(G)";
    "lam(H)";
    "dist";
    "match-cong mean";
    "match-cong max";
    "gen-stretch";
    "decomp sum(dk+1)";
  ]

let row_cells row ~norm_exp =
  let f = Stats.fmt_float in
  [
    string_of_int row.n;
    string_of_int row.m_graph;
    string_of_int row.m_spanner;
    f (edges_norm row norm_exp);
    f row.lambda;
    f row.lambda_spanner;
    (if row.dist_stretch = max_int then "disc" else string_of_int row.dist_stretch);
    f row.matching.Dc.mean_congestion;
    string_of_int row.matching.Dc.max_congestion;
    (match row.general with None -> "-" | Some g -> f g.Dc.stretch);
    (match row.general with
    | None -> "-"
    | Some g -> string_of_int g.Dc.decompose.Decompose.degree_sum);
  ]

(* registry-driven normalization: the construction's metadata carries the
   expected edge exponent, so sweeps never pass magic floats *)
let row_cells_of ctor row = row_cells row ~norm_exp:ctor.Construction.edge_exponent
