(** Shared measurement harness.

    Every bench block, the CLI and the examples evaluate a spanner through
    this module so that "edges / distance stretch / congestion stretch" mean
    the same thing everywhere:

    - {b edges}: [|E(H)|], with the normalization [|E(H)| / n^e] for the
      shape checks against the paper's [O(n^{5/3})]-style claims;
    - {b distance stretch}: exact ([max_{(u,v) ∈ E} d_H(u,v)], see
      {!Stretch.exact});
    - {b matching congestion stretch}: congestion of the substitute routing
      of random maximal edge-matchings (optimum 1 by construction);
    - {b general congestion stretch}: permutation routing routed in [G] by
      randomized shortest paths, then re-routed on [H] through the Theorem 1
      decomposition, congestions compared. *)

type row = {
  label : string;
  n : int;
  m_graph : int;
  m_spanner : int;
  lambda : float;  (** measured spectral expansion of [G] *)
  lambda_spanner : float;  (** measured spectral expansion of [H] *)
  dist_stretch : int;  (** exact distance stretch of [H] ([max_int] = disconnected) *)
  matching : Dc.matching_report;
  general : Dc.general_report option;
}

val evaluate :
  ?trials:int ->
  ?with_general:bool ->
  ?with_lambda:bool ->
  Prng.t ->
  Dc.t ->
  row
(** Measure one construction.  [trials] (default 5) matching problems;
    [with_general] (default true) adds the permutation-routing measurement;
    [with_lambda] (default true) the spectral estimates. *)

val edges_norm : row -> float -> float
(** [edges_norm row e] is [m_spanner / n^e] — flat across a sweep iff the
    paper's size exponent [e] is right. *)

val row_cells : row -> norm_exp:float -> string list
(** Render the row for a {!Report.t} table with columns
    [n; m(G); m(H); m(H)/n^e; lambda(G); lambda(H); dist; match-cong(mean/max);
    gen-stretch; decomp]. *)

val row_cells_of : Construction.t -> row -> string list
(** {!row_cells} with the normalization exponent read from the construction's
    registry metadata ({!Construction.edge_exponent}) instead of a caller-
    supplied magic float. *)

val row_columns : string list
(** Matching column headers. *)
