(** Public facade of the DC-spanner library.

    This module gathers the whole system behind one entry point: pick a
    construction with {!type:algorithm}, call {!build} on a graph, and get a
    {!Dc.t} — the spanner plus its matching router — that {!Dc.route_general}
    lifts to arbitrary routings via the Theorem 1 decomposition.

    The underlying modules remain directly usable (the library is unwrapped):
    {!Graph}, {!Csr}, {!Bfs}, {!Generators}, {!Spectral} (substrate);
    {!Routing}, {!Matching}, {!Bipartite_matching}, {!Edge_coloring},
    {!Decompose} (routing machinery); {!Regular_dc}, {!Expander_dc},
    {!Classic}, {!Sparsify}, {!Support}, {!Stretch}, {!Dc} (spanners);
    {!Ray_line}, {!Design}, {!Theorem4}, {!Lemma2}, {!Vft_example} (lower
    bounds); {!Local_model}, {!Dist_spanner} (distributed). *)

type algorithm =
  | Theorem2  (** expander DC-spanner: stretch 3, [O(n^{5/3})] edges *)
  | Algorithm1  (** Δ-regular DC-spanner (Theorem 3): stretch 3, [Õ(n^{5/3})] edges *)
  | Greedy of int  (** [Greedy k]: classic [(2k−1)]-distance spanner (no congestion control) *)
  | Baswana_sen  (** randomized 3-distance spanner (no congestion control) *)
  | Baswana_sen_weighted
      (** weight-aware Baswana–Sen [(2k−1)]-spanner, [k = 2]: [d_H ≤ 3·w]
          per edge on weighted graphs (no congestion control) *)
  | Elkin_neiman  (** near-linear-time 3-distance spanner (no congestion control) *)
  | Spectral_sparsify  (** [16]-substitute: [Θ(n log n)]-edge expander sparsifier *)
  | Bounded_degree  (** [5]-substitute: [O(n)]-edge expander sparsifier *)
  | Khop of int  (** [Khop k]: exploratory [(2k−1)]-stretch generalization (Section 8 open problem) *)
  | Irregular  (** exploratory arbitrary-degree variant of Algorithm 1 (Section 8 open problem) *)

val algorithm_name : algorithm -> string
(** Short label used in reports. *)

val build : algorithm -> Prng.t -> Graph.t -> Dc.t
(** Construct the chosen spanner on [g] and package it with its matching
    router.  Deterministic given the generator state. *)

val stretch_guarantee : algorithm -> string
(** The paper's asymptotic (distance, congestion) guarantee for the
    construction, as a display string. *)
