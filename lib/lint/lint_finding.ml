type severity = Error | Warning

type t = {
  pass : string;
  file : string;
  line : int;
  col : int;
  severity : severity;
  msg : string;
  resolved_path : string option;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let make ?resolved_path ~pass ~file ~line ~col ~severity msg =
  { pass; file; line; col; severity; msg; resolved_path }

let compare_locs a b =
  let c = compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c else compare a.pass b.pass

let sort findings = List.sort compare_locs findings

(* JSON rendering is hand-rolled (mirroring lib/obs) so the linter stays
   dependency-free and usable before the rest of the tree even compiles. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let resolved =
    match t.resolved_path with
    | None -> ""
    | Some p -> Printf.sprintf ",\"resolved_path\":\"%s\"" (json_escape p)
  in
  Printf.sprintf
    "{\"pass\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"severity\":\"%s\",\"msg\":\"%s\"%s}"
    (json_escape t.pass) (json_escape t.file) t.line t.col (severity_name t.severity)
    (json_escape t.msg) resolved

let report_json ~files_scanned ~typed ~suppressed findings =
  let findings = sort findings in
  let errors = List.length (List.filter (fun f -> f.severity = Error) findings) in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n\"schema\":\"dcs-lint/2\",\n\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf ("\n  " ^ to_json f))
    findings;
  Buffer.add_string buf
    (Printf.sprintf
       "\n],\n\"summary\":{\"files\":%d,\"typed\":%d,\"findings\":%d,\"errors\":%d,\"warnings\":%d,\"suppressed\":%d}\n}\n"
       files_scanned typed (List.length findings) errors
       (List.length findings - errors)
       suppressed);
  Buffer.contents buf

(* Plain aligned-columns table, same visual convention as Dcs_util.Report;
   returned as a string so only the executable prints (lib/ output rules). *)
let table findings =
  match sort findings with
  | [] -> "no findings\n"
  | findings ->
      let rows =
        List.map
          (fun f ->
            [ f.pass; severity_name f.severity; Printf.sprintf "%s:%d" f.file f.line; f.msg ])
          findings
      in
      let header = [ "pass"; "severity"; "location"; "message" ] in
      let widths = Array.make 4 0 in
      List.iter
        (fun row -> List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
        (header :: rows);
      let buf = Buffer.create 1024 in
      let render row =
        Buffer.add_string buf "  ";
        Buffer.add_string buf
          (String.concat "  " (List.mapi (fun i c -> Printf.sprintf "%-*s" widths.(i) c) row));
        Buffer.add_char buf '\n'
      in
      render header;
      Buffer.add_string buf
        ("  " ^ String.make (Array.fold_left ( + ) 6 widths) '-' ^ "\n");
      List.iter render rows;
      Buffer.contents buf
