(** Typed-tier input: compiled [.cmt] units plus the environment plumbing
    that makes [Path.t] resolution and type expansion work outside the
    compiler.

    A {!t} is one compilation unit's typedtree.  {!load_index} discovers
    units under the scan roots (descending into dune's [.*.objs] object
    directories, and trying each root under [_build/default] as well),
    initializes the compiler load path from the recorded — and remapped —
    [cmt_loadpath]s, and resets the [Env]/[Envaux] caches so units from a
    previous index (say, a test fixture's stub [Csr]) cannot leak into this
    one.  Because the load path and those caches are global compiler state,
    passes over an index must finish before the next index is loaded. *)

type t = {
  src : string;  (** [cmt_sourcefile]: the path the compiler recorded *)
  cmt_path : string;
  modname : string;  (** compilation unit name, e.g. ["Csr"] *)
  structure : Typedtree.structure;
  imports : string list;
      (** compilation units this one depends on ([cmt_imports]) — the
          typed replacement for the lexical module-reference scan *)
}

type index = {
  units : t list;
  errors : (string * string) list;  (** unreadable cmt files: path, reason *)
}

val discover : roots:string list -> string list
(** All [.cmt] paths under the roots (and their [_build/default] twins). *)

val load_index : roots:string list -> index

val find : index -> string -> t option
(** The unit whose recorded source file suffix-matches the scanned path. *)

val expr_env : Typedtree.expression -> Env.t
(** The expression's environment, reconstructed from its summary. *)

val normalize_path : Env.t -> Path.t -> Path.t
(** Resolve the module part through module aliases ([module C = Csr]). *)

val canonical : Env.t -> Path.t -> string
(** [normalize_path] rendered with the [Stdlib.] / [Stdlib__X] prefixes
    stripped: [A.unsafe_get] under [module A = Array], [unsafe_get] under
    [open Array] and [Stdlib.Array.unsafe_get] all give
    ["Array.unsafe_get"]. *)

val is_qualified : Path.t -> bool
(** [Pdot]?  Locally-bound plain identifiers (e.g. a shadowed [compare])
    are [Pident] and must not match Stdlib-rule names. *)

val type_mentions : Env.t -> matches:(string -> bool) -> Types.type_expr -> bool
(** Does the type, expanding abbreviations at every level, mention an
    accepted constructor?  Enters tuples and constructor parameters
    ([Graph.t list]); does not enter arrows (a function returning state is
    a factory, not state). *)

val type_head : Env.t -> Types.type_expr -> string option
(** Canonical name of the type's head constructor after expansion, if the
    expanded type is a constructor at all. *)

val type_is_unit : Env.t -> Types.type_expr -> bool

val type_is_arrow : Env.t -> Types.type_expr -> bool
