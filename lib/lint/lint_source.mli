(** A source file under analysis: raw text, split lines and a lazily parsed
    parsetree (via [compiler-libs]; no ppx, so what is linted is exactly what
    is on disk). *)

type t = {
  path : string;
  text : string;
  lines : string array;
  ast : (Parsetree.structure, string * int) result Lazy.t;
}

val of_string : path:string -> string -> t
(** Wrap in-memory source (used by the test fixtures). *)

val load : string -> (t, string) result

val ast : t -> (Parsetree.structure, string * int) result
(** The parsetree, or [(message, line)] on a syntax error. *)

val line : t -> int -> string
(** 1-based; returns [""] out of range. *)

val marker_window : int
(** How many lines above a construct an annotation comment may sit (10). *)

val has_marker_above : ?within:int -> t -> marker:string -> line:int -> bool
(** True when some line in [[line - within, line]] contains [marker] —
    the mechanism behind [(* SAFETY: ... *)] and [(* DOMAIN-SAFE: ... *)]. *)

val referenced_modules : t -> string list
(** Capitalized identifiers followed by a dot, lexically ("Foo." -> "Foo").
    Over-approximates module references (strings/comments included). *)

val module_name : t -> string
(** ["lib/graph/csr.ml"] -> ["Csr"]. *)
