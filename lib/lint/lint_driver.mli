(** Orchestration: walk the requested roots, parse every [.ml], run the
    two-tier pass catalogue, apply the allowlist, render.

    Tier 1 (parse) needs only source text and runs on everything — including
    files that fail to compile.  Tier 2 (typed) runs on files whose [.cmt]
    the {!Lint_cmt} index found; for those files the parse-tier passes with
    a typed upgrade ([runs_when_typed = false]) are skipped, so each rule is
    enforced by exactly one tier per file.  A typed pass that crashes on a
    unit (cmi skew, truncated cmt) silently degrades that file back to the
    full parse tier.

    Unreadable or unparsable files surface as findings under the ["parse"]
    pseudo-pass rather than exceptions, so one bad file cannot hide the rest
    of the report. *)

type result = {
  findings : Lint_finding.t list;  (** non-suppressed, sorted *)
  files_scanned : int;
  typed_files : int;  (** how many of those got the typed tier *)
  suppressed : int;
}

val collect : string list -> string list
(** All files beneath the given roots (files are taken as-is), sorted,
    skipping dot-entries and [_build]. *)

val run :
  ?allow:Lint_allow.t ->
  ?passes:Lint_passes.pass list ->
  ?tpasses:Lint_typed.pass list ->
  ?typed:bool ->
  roots:string list ->
  unit ->
  result
(** [?typed:false] skips cmt discovery entirely (pure parse-tier run, the
    pre-v2 behaviour — used by tests to compare the tiers). *)

val to_json : result -> string

val to_table : result -> string
(** Findings table plus a one-line summary. *)

val exit_code : ?strict:bool -> result -> int
(** [0] clean (or warnings only without [strict]), [1] any error finding,
    [3] warnings only under [strict]. *)
