(** Orchestration: walk the requested roots, parse every [.ml], run the pass
    catalogue, apply the allowlist, render.

    Unreadable or unparsable files surface as findings under the ["parse"]
    pseudo-pass rather than exceptions, so one bad file cannot hide the rest
    of the report. *)

type result = {
  findings : Lint_finding.t list;  (** non-suppressed, sorted *)
  files_scanned : int;
  suppressed : int;
}

val collect : string list -> string list
(** All files beneath the given roots (files are taken as-is), sorted,
    skipping dot-entries and [_build]. *)

val run :
  ?allow:Lint_allow.t -> ?passes:Lint_passes.pass list -> roots:string list -> unit -> result

val to_json : result -> string

val to_table : result -> string
(** Findings table plus a one-line summary. *)

val exit_code : result -> int
(** [0] when clean, [1] when any finding survives the allowlist. *)
