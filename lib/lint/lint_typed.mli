(** The typed-tier pass catalogue: the repo's semantic rules re-stated over
    the typedtree ({!Lint_cmt}), where identifiers are resolved [Path.t]s
    and expressions carry inferred types.

    This is what makes the rules alias-, open- and functor-proof:
    [C.of_graph] under [module C = Csr], [of_graph] under [open Csr] and
    [Stdlib.Array.unsafe_get] under [module A = Array] all reduce to the
    same canonical identity, while a locally shadowed [compare] (a [Pident],
    not a [Pdot]) correctly stops matching the Stdlib rule.  Findings carry
    the resolved identity in {!Lint_finding.t.resolved_path}.

    Five passes: typed [banned-api] / [unsafe-audit] / [poly-compare]
    (upgrades of the parse-tier passes of the same id — the allowlist
    format is unchanged), plus the typed-only [mutable-escape] (inferred
    mutable types in [Parallel]/[Domain]-reachable modules, by
    [cmt_imports] closure) and [ignored-result] (non-unit verdicts of
    flagged functions discarded via [ignore]/[let _]). *)

type ctx = {
  source : Lint_source.t;
      (** the matching source file: scope rules key on its path, and the
          [SAFETY:]/[DOMAIN-SAFE:] markers live in comments only the raw
          text retains *)
  parallel_reachable : string -> bool;
      (** by compilation-unit name, from the [cmt_imports] closure *)
}

type pass = {
  id : string;
  title : string;
  doc : string;
  check : ctx -> Lint_cmt.t -> Lint_finding.t list;
}

val all : pass list
(** banned-api, unsafe-audit, poly-compare, mutable-escape,
    ignored-result. *)

val find : string -> pass option

val must_use : string -> bool
(** Is this resolved path on the ignored-result watchlist? *)

val parallel_closure : Lint_cmt.t list -> string -> bool
(** Typed replacement for the lexical reachability scan: a unit is audited
    when it transitively appears in the [cmt_imports] of a unit importing
    [Parallel] or [Domain]. *)
