(** The [lint.allow] suppression list.

    One entry per line: [<pass-id> <path-suffix> [message substring]].
    [#] starts a comment; blank lines are ignored.  A finding is suppressed
    when its pass id equals the entry's (or the entry is ["*"]), its file
    path ends with the entry's path (whole '/'-segments), and — if given —
    the entry's trailing words appear inside the message.  Both entry and
    message are compared in whitespace-normal form (runs of spaces/tabs/CRs
    collapse to one space, edges trimmed), so tab-separated entries and
    trailing whitespace cannot silently defeat a suppression.  Matching on
    path suffix + message rather than line numbers keeps entries stable
    across unrelated edits; the list is meant to stay empty (enforced in
    CI). *)

type entry = { pass : string; path : string; substring : string }

type t = entry list

val empty : t

val matches : t -> Lint_finding.t -> bool

val of_string : string -> (t, string) result

val to_string : t -> string
(** Canonical rendering; [of_string (to_string t) = Ok t]. *)

val load : string -> (t, string) result

val path_matches : pattern:string -> string -> bool
(** Exposed for the driver's built-in scoping rules (same suffix logic). *)

val normalize_ws : string -> string
(** The whitespace-normal form used for entry parsing and message
    matching. *)
