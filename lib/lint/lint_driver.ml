type result = {
  findings : Lint_finding.t list;
  files_scanned : int;
  typed_files : int;
  suppressed : int;
}

(* Deterministic walk: sorted entries, skip dot-entries and build dirs, so
   the findings order (and thus the JSON artifact) is stable across runs. *)
let rec walk path acc =
  if Sys.is_directory path then
    Array.to_list (Sys.readdir path)
    |> List.sort compare
    |> List.fold_left
         (fun acc entry ->
           if String.length entry = 0 || entry.[0] = '.' || entry = "_build" then acc
           else walk (Filename.concat path entry) acc)
         acc
  else path :: acc

let collect roots =
  let all =
    List.fold_left
      (fun acc root -> if Sys.file_exists root then walk root acc else acc)
      [] roots
  in
  List.sort compare all

let ml_files files =
  List.filter (fun p -> Filename.check_suffix p ".ml") files

(* Parse-tier reachability for the par-hygiene fallback: start from modules
   whose source mentions Parallel./Domain. and close over lexical module
   references (Lint_source.referenced_modules), restricted to modules in
   the scanned set.  Over-approximates: a module is audited if any
   parallel-touching module could call into it.  Typed files use the
   cmt_imports closure instead (Lint_typed.parallel_closure). *)
let parallel_closure sources =
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun src -> Hashtbl.replace by_name (Lint_source.module_name src) src)
    sources;
  let refs src =
    List.filter (Hashtbl.mem by_name) (Lint_source.referenced_modules src)
  in
  let reachable = Hashtbl.create 64 in
  let rec visit name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.replace reachable name ();
      match Hashtbl.find_opt by_name name with
      | Some src -> List.iter visit (refs src)
      | None -> ()
    end
  in
  List.iter
    (fun src ->
      let mentions = Lint_source.referenced_modules src in
      if List.mem "Parallel" mentions || List.mem "Domain" mentions then
        visit (Lint_source.module_name src))
    sources;
  fun name -> Hashtbl.mem reachable name

let run ?(allow = Lint_allow.empty) ?(passes = Lint_passes.all)
    ?(tpasses = Lint_typed.all) ?(typed = true) ~roots () =
  let missing =
    List.filter_map
      (fun root ->
        if Sys.file_exists root then None
        else
          Some
            (Lint_finding.make ~pass:"parse" ~file:root ~line:1 ~col:0
               ~severity:Lint_finding.Error "no such file or directory"))
      roots
  in
  let files = collect roots in
  let file_set = Hashtbl.create 256 in
  List.iter (fun f -> Hashtbl.replace file_set f ()) files;
  let parse_failures = ref [] in
  let sources =
    List.filter_map
      (fun path ->
        match Lint_source.load path with
        | Ok src -> Some src
        | Error msg ->
            parse_failures :=
              Lint_finding.make ~pass:"parse" ~file:path ~line:1 ~col:0
                ~severity:Lint_finding.Error msg
              :: !parse_failures;
            None)
      (ml_files files)
  in
  let index =
    if typed then Lint_cmt.load_index ~roots else { Lint_cmt.units = []; errors = [] }
  in
  let typed_reachable = Lint_typed.parallel_closure index.Lint_cmt.units in
  let ctx =
    {
      Lint_passes.file_exists = Hashtbl.mem file_set;
      parallel_reachable = parallel_closure sources;
    }
  in
  let typed_count = ref 0 in
  let lint_source src =
    let parse_tier ~typed_ran =
      List.concat_map
        (fun p ->
          if typed_ran && not p.Lint_passes.runs_when_typed then []
          else p.Lint_passes.check ctx src)
        passes
    in
    let typed_tier unit =
      let tctx = { Lint_typed.source = src; parallel_reachable = typed_reachable } in
      List.concat_map (fun (p : Lint_typed.pass) -> p.Lint_typed.check tctx unit) tpasses
    in
    match Lint_source.ast src with
    | Error (msg, line) ->
        [
          Lint_finding.make ~pass:"parse" ~file:src.Lint_source.path ~line ~col:0
            ~severity:Lint_finding.Error msg;
        ]
    | Ok _ -> (
        match Lint_cmt.find index src.Lint_source.path with
        | Some unit -> (
            (* A typed crash (cmi skew, truncated cmt) degrades the file to
               the parse tier rather than aborting the whole lint run. *)
            match typed_tier unit with
            | typed_findings ->
                incr typed_count;
                typed_findings @ parse_tier ~typed_ran:true
            | exception _ -> parse_tier ~typed_ran:false)
        | None -> parse_tier ~typed_ran:false)
  in
  let findings =
    List.concat_map lint_source sources @ !parse_failures @ missing
  in
  let kept, dropped = List.partition (fun f -> not (Lint_allow.matches allow f)) findings in
  {
    findings = Lint_finding.sort kept;
    files_scanned = List.length sources;
    typed_files = !typed_count;
    suppressed = List.length dropped;
  }

let to_json r =
  Lint_finding.report_json ~files_scanned:r.files_scanned ~typed:r.typed_files
    ~suppressed:r.suppressed r.findings

let to_table r =
  let summary =
    Printf.sprintf
      "%d file(s) scanned (%d typed), %d finding(s), %d suppressed by allowlist\n"
      r.files_scanned r.typed_files (List.length r.findings) r.suppressed
  in
  Lint_finding.table r.findings ^ summary

(* Warnings gate the build only under --strict (exit 3), so heuristic
   passes can land without instantly breaking @lint — CI runs strict, which
   is what keeps them from accumulating. *)
let exit_code ?(strict = false) r =
  if List.exists (fun f -> f.Lint_finding.severity = Lint_finding.Error) r.findings then 1
  else if r.findings <> [] && strict then 3
  else 0
