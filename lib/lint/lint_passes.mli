(** The parse-tier pass catalogue.

    Each pass inspects one {!Lint_source.t} (parsetree + raw text) against a
    repo invariant and returns findings.  These passes are syntactic: they
    see the parsetree, not types, so module-qualified names ([Csr.of_graph])
    are matched as written and local aliases escape them.  Since the typed
    tier landed ({!Lint_typed}), the syntactic variants serve as the
    fallback for files the compiler could not produce a [.cmt] for — a file
    that does not compile still gets linted, just with the weaker evidence
    ([runs_when_typed = false] marks exactly those fallback passes). *)

type ctx = {
  file_exists : string -> bool;
      (** membership in the scanned file set (used for .mli coverage); kept
          abstract so fixtures can fake a file system *)
  parallel_reachable : string -> bool;
      (** is this module (by capitalized name) in the transitive dependency
          closure of modules that touch [Parallel]/[Domain]? *)
}

type pass = {
  id : string;
  title : string;
  doc : string;
  runs_when_typed : bool;
      (** [false]: fallback for a typed pass, skipped when the typed tier
          covered the file; [true]: no typed counterpart, always runs *)
  check : ctx -> Lint_source.t -> Lint_finding.t list;
}

val all : pass list
(** banned-api, unsafe-audit, par-hygiene, iface-coverage, poly-compare. *)

val find : string -> pass option

val kernel_allowlist : string list
(** The only files allowed to contain [unsafe_*] accesses. *)

val under : dirs:string list -> string -> bool
(** [under ~dirs:["lib";"graph"] path]: the directory segments of [path]
    contain [dirs] as a contiguous run (prefix-insensitive, so it holds from
    any working directory). *)

val in_lib : string -> bool
(** [under ~dirs:["lib"]]. *)

val raise_exempt : string -> bool
(** May this file [failwith]/raise [Failure]?  ([lib/util/io_error.ml].) *)

val print_exempt : string -> bool
(** May this file print?  ([lib/util/report.ml] and [lib/obs/].) *)

val csr_exempt : string -> bool
(** May this file build CSRs directly?  ([lib/graph/].) *)

val has_context_prefix : string -> bool
(** Does an error message start with a capitalized ["Module.fn:"] /
    ["Module:"] context token? *)
