type entry = { pass : string; path : string; substring : string }

type t = entry list

let empty = []

(* A suffix match on '/'-separated segments, so "lib/graph/csr.ml" matches
   both "lib/graph/csr.ml" and "../lib/graph/csr.ml" regardless of the
   directory the linter was started from. *)
let segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

let path_matches ~pattern path =
  let p = segments pattern and s = segments path in
  let lp = List.length p and ls = List.length s in
  lp <= ls
  &&
  let tail = List.filteri (fun i _ -> i >= ls - lp) s in
  List.equal String.equal p tail

let is_ws c = c = ' ' || c = '\t' || c = '\r' || c = '\012'

(* Whitespace-normal form: every maximal run of spaces/tabs/CRs collapses to
   one space, leading/trailing runs drop.  Entries are parsed from and
   findings are matched in this form, so a tab-separated allowlist line or a
   trailing-whitespace edit cannot silently defeat a suppression. *)
let normalize_ws s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if is_ws c then begin
        if Buffer.length buf > 0
           && Buffer.nth buf (Buffer.length buf - 1) <> ' '
        then Buffer.add_char buf ' '
      end
      else Buffer.add_char buf c)
    s;
  let n = Buffer.length buf in
  if n > 0 && Buffer.nth buf (n - 1) = ' ' then Buffer.sub buf 0 (n - 1)
  else Buffer.contents buf

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  nn = 0
  ||
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let matches t (f : Lint_finding.t) =
  let msg = normalize_ws f.msg in
  List.exists
    (fun e ->
      (e.pass = "*" || e.pass = f.pass)
      && path_matches ~pattern:e.path f.file
      && contains ~needle:e.substring msg)
    t

let tokens line =
  String.split_on_char ' ' (normalize_ws line) |> List.filter (fun s -> s <> "")

let parse_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match tokens line with
  | [] -> Ok None
  | [ pass; path ] -> Ok (Some { pass; path; substring = "" })
  | pass :: path :: rest -> Ok (Some { pass; path; substring = String.concat " " rest })
  | [ _ ] -> Error "expected '<pass-id> <path-suffix> [message substring]'"

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line line with
        | Ok None -> go (i + 1) acc rest
        | Ok (Some e) -> go (i + 1) (e :: acc) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" i msg))
  in
  go 1 [] lines

let to_string t =
  String.concat ""
    (List.map
       (fun e ->
         if e.substring = "" then Printf.sprintf "%s %s\n" e.pass e.path
         else Printf.sprintf "%s %s %s\n" e.pass e.path e.substring)
       t)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> (
      match of_string text with
      | Ok t -> Ok t
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | exception Sys_error msg -> Error msg
