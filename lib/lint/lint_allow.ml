type entry = { pass : string; path : string; substring : string }

type t = entry list

let empty = []

(* A suffix match on '/'-separated segments, so "lib/graph/csr.ml" matches
   both "lib/graph/csr.ml" and "../lib/graph/csr.ml" regardless of the
   directory the linter was started from. *)
let segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

let path_matches ~pattern path =
  let p = segments pattern and s = segments path in
  let lp = List.length p and ls = List.length s in
  lp <= ls
  &&
  let tail = List.filteri (fun i _ -> i >= ls - lp) s in
  List.equal String.equal p tail

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  nn = 0
  ||
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let matches t (f : Lint_finding.t) =
  List.exists
    (fun e ->
      (e.pass = "*" || e.pass = f.pass)
      && path_matches ~pattern:e.path f.file
      && contains ~needle:e.substring f.msg)
    t

let parse_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match
    String.split_on_char ' ' (String.trim line)
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Ok None
  | [ pass; path ] -> Ok (Some { pass; path; substring = "" })
  | pass :: path :: rest -> Ok (Some { pass; path; substring = String.concat " " rest })
  | [ _ ] -> Error "expected '<pass-id> <path-suffix> [message substring]'"

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match parse_line line with
        | Ok None -> go (i + 1) acc rest
        | Ok (Some e) -> go (i + 1) (e :: acc) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" i msg))
  in
  go 1 [] lines

let to_string t =
  String.concat ""
    (List.map
       (fun e ->
         if e.substring = "" then Printf.sprintf "%s %s\n" e.pass e.path
         else Printf.sprintf "%s %s %s\n" e.pass e.path e.substring)
       t)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> (
      match of_string text with
      | Ok t -> Ok t
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | exception Sys_error msg -> Error msg
