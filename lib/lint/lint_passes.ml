open Parsetree

type ctx = {
  file_exists : string -> bool;
  parallel_reachable : string -> bool;
}

type pass = {
  id : string;
  title : string;
  doc : string;
  runs_when_typed : bool;
      (* false: this pass is the parse-tier fallback for a typed pass and is
         skipped on files the typed tier covered; true: it has no typed
         counterpart (e.g. the .mli-existence check) and always runs *)
  check : ctx -> Lint_source.t -> Lint_finding.t list;
}

(* ---- shared helpers ---- *)

let segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

(* [dirs] as a contiguous run of the path's directory segments: ["lib"]
   matches "lib/graph/csr.ml" and "../lib/graph/csr.ml" but not "bin/x.ml". *)
let under ~dirs path =
  let rec is_prefix p s =
    match (p, s) with
    | [], _ -> true
    | _, [] -> false
    | x :: p', y :: s' -> String.equal x y && is_prefix p' s'
  in
  let rec anywhere s =
    match s with [] -> false | _ :: tl -> is_prefix dirs s || anywhere tl
  in
  match List.rev (segments path) with
  | [] -> false
  | _basename :: rev_dirs -> anywhere (List.rev rev_dirs)

let in_lib path = under ~dirs:[ "lib" ] path

let is_file pattern path = Lint_allow.path_matches ~pattern path

(* Longident.flatten raises on functor applications; fold by hand. *)
let rec flatten_longident acc = function
  | Longident.Lident s -> Some (s :: acc)
  | Longident.Ldot (li, s) -> flatten_longident (s :: acc) li
  | Longident.Lapply _ -> None

let ident_path txt =
  match flatten_longident [] txt with
  | Some ("Stdlib" :: rest) -> Some rest
  | p -> p

let head_of expr =
  match expr.pexp_desc with Pexp_ident { txt; _ } -> ident_path txt | _ -> None

let loc_line_col (loc : Location.t) =
  (loc.loc_start.Lexing.pos_lnum, loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol)

let finding ~pass ~severity (src : Lint_source.t) loc msg =
  let line, col = loc_line_col loc in
  Lint_finding.make ~pass ~file:src.Lint_source.path ~line ~col ~severity msg

(* Run [f] on every expression of the file; parse failures are reported by
   the driver's parse pseudo-pass, so here they just yield no findings. *)
let on_exprs src f =
  match Lint_source.ast src with
  | Error _ -> []
  | Ok ast ->
      let out = ref [] in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match f e with [] -> () | fs -> out := fs @ !out);
              Ast_iterator.default_iterator.expr it e);
        }
      in
      it.structure it ast;
      List.rev !out

let string_literal expr =
  match expr.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* "Graph: node out of range" / "Bfs_batch.run: source out of range" both
   carry a capitalized context token containing '.' or ':' before the first
   space — the convention the banned-api pass enforces on messages. *)
let has_context_prefix s =
  String.length s > 0
  && s.[0] >= 'A'
  && s.[0] <= 'Z'
  &&
  let stop = match String.index_opt s ' ' with Some i -> i | None -> String.length s in
  let rec go i = i < stop && (s.[i] = '.' || s.[i] = ':' || go (i + 1)) in
  go 0

(* ---- pass 1: banned-api ---- *)

let banned_prints =
  [
    [ "Printf"; "printf" ];
    [ "Printf"; "eprintf" ];
    [ "Format"; "printf" ];
    [ "Format"; "eprintf" ];
    [ "print_endline" ];
    [ "print_string" ];
    [ "print_newline" ];
    [ "print_int" ];
    [ "print_char" ];
    [ "print_float" ];
    [ "print_bytes" ];
    [ "prerr_endline" ];
    [ "prerr_string" ];
    [ "prerr_newline" ];
    [ "prerr_bytes" ];
  ]

(* Scoping exemptions, shared with the typed tier (Lint_typed): the rules
   are the same, only the evidence (literal spelling vs resolved path)
   differs between tiers. *)
let raise_exempt path = is_file "lib/util/io_error.ml" path

let print_exempt path = is_file "lib/util/report.ml" path || under ~dirs:[ "lib"; "obs" ] path

let csr_exempt path = under ~dirs:[ "lib"; "graph" ] path

let check_banned_api _ctx src =
  let path = src.Lint_source.path in
  if not (in_lib path) then []
  else
    on_exprs src (fun e ->
        let err msg = [ finding ~pass:"banned-api" ~severity:Lint_finding.Error src e.pexp_loc msg ] in
        let check_message_arg name arg =
          match string_literal arg with
          | Some s when not (has_context_prefix s) ->
              err
                (Printf.sprintf
                   "%s message %S lacks a Module.fn/Module: context prefix" name s)
          | _ -> []
        in
        match e.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            match ident_path txt with
            | Some [ "failwith" ] when not (raise_exempt path) ->
                err "failwith in lib/ (raise a typed error: Io_error.raise_error or invalid_arg with a Module.fn prefix)"
            | Some p when List.mem p banned_prints && not (print_exempt path) ->
                err
                  (Printf.sprintf "%s in lib/ (route output through Report or Dcs_obs)"
                     (String.concat "." p))
            | Some [ "Csr"; "of_graph" ] when not (csr_exempt path) ->
                err "Csr.of_graph outside lib/graph (use the version-cached Csr.snapshot)"
            | Some [ "Graph"; "to_csr" ] when not (csr_exempt path) ->
                err "Graph.to_csr outside lib/graph (use the version-cached Graph.snapshot)"
            | _ -> [])
        | Pexp_apply (fn, (_, arg) :: _) when not (raise_exempt path) -> (
            match head_of fn with
            | Some [ "invalid_arg" ] -> check_message_arg "invalid_arg" arg
            | _ -> [])
        | Pexp_construct ({ txt = Longident.Lident "Failure"; _ }, Some _)
          when not (raise_exempt path) ->
            err "Failure constructor in lib/ (raise a typed error instead)"
        | Pexp_construct ({ txt = Longident.Lident "Invalid_argument"; _ }, Some arg)
          when not (raise_exempt path) ->
            check_message_arg "Invalid_argument" arg
        | _ -> [])

(* ---- pass 2: unsafe-audit ---- *)

let kernel_allowlist =
  [
    "lib/graph/bfs_batch.ml";
    "lib/graph/bitmat.ml";
    "lib/graph/csr_store.ml";
    "lib/graph/dijkstra.ml";
  ]

(* "Array1" catches Bigarray.Array1.unsafe_* referenced under [open Bigarray],
   where the head component the parsetree sees is Array1. *)
let unsafe_modules = [ "Array"; "Bytes"; "String"; "Bigarray"; "Array1" ]

let check_unsafe_audit _ctx src =
  let path = src.Lint_source.path in
  let allowed = List.exists (fun k -> is_file k path) kernel_allowlist in
  on_exprs src (fun e ->
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> (
          match ident_path txt with
          | Some (m :: rest)
            when List.mem m unsafe_modules
                 && List.exists
                      (fun c -> String.length c >= 7 && String.sub c 0 7 = "unsafe_")
                      rest ->
              let name = String.concat "." (m :: rest) in
              let line, _ = loc_line_col e.pexp_loc in
              if not allowed then
                [
                  finding ~pass:"unsafe-audit" ~severity:Lint_finding.Error src e.pexp_loc
                    (Printf.sprintf
                       "%s outside the allowlisted kernel set (%s)" name
                       (String.concat ", " (List.map Filename.basename kernel_allowlist)));
                ]
              else if not (Lint_source.has_marker_above src ~marker:"SAFETY:" ~line) then
                [
                  finding ~pass:"unsafe-audit" ~severity:Lint_finding.Error src e.pexp_loc
                    (Printf.sprintf
                       "%s without a (* SAFETY: ... *) comment within %d lines above" name
                       Lint_source.marker_window);
                ]
              else []
          | _ -> [])
      | _ -> [])

(* ---- pass 3: par-hygiene ---- *)

let pattern_vars pat =
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> out := txt :: !out
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it pat;
  !out

let mutable_ctors =
  [
    ([ "ref" ], "ref cell");
    ([ "Hashtbl"; "create" ], "Hashtbl.t");
    ([ "Array"; "make" ], "mutable array");
    ([ "Array"; "init" ], "mutable array");
    ([ "Array"; "make_matrix" ], "mutable array");
    ([ "Array"; "create_float" ], "mutable array");
    ([ "Bytes"; "create" ], "mutable bytes");
    ([ "Bytes"; "make" ], "mutable bytes");
    ([ "Buffer"; "create" ], "Buffer.t");
    ([ "Queue"; "create" ], "Queue.t");
    ([ "Stack"; "create" ], "Stack.t");
  ]

let rec mutable_kind expr =
  match expr.pexp_desc with
  | Pexp_apply (fn, _) -> (
      match head_of fn with
      | Some p -> List.assoc_opt p mutable_ctors
      | None -> None)
  | Pexp_array _ -> Some "array literal"
  | Pexp_constraint (e, _) -> mutable_kind e
  | _ -> None

let setfield_targets ast =
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_setfield ({ pexp_desc = Pexp_ident { txt = Longident.Lident x; _ }; _ }, _, _)
            ->
              out := x :: !out
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it ast;
  !out

let check_par_hygiene ctx src =
  let path = src.Lint_source.path in
  if not (in_lib path) then []
  else if not (ctx.parallel_reachable (Lint_source.module_name src)) then []
  else
    match Lint_source.ast src with
    | Error _ -> []
    | Ok ast ->
        let mutated = setfield_targets ast in
        let out = ref [] in
        let flag loc name kind =
          let line, _ = loc_line_col loc in
          if not (Lint_source.has_marker_above src ~marker:"DOMAIN-SAFE:" ~line) then
            out :=
              finding ~pass:"par-hygiene" ~severity:Lint_finding.Warning src loc
                (Printf.sprintf
                   "top-level mutable state: %s is a %s in a module reachable from \
                    Parallel/Domain code; annotate (* DOMAIN-SAFE: why *) or refactor"
                   name kind)
              :: !out
        in
        List.iter
          (fun item ->
            match item.pstr_desc with
            | Pstr_value (_, bindings) ->
                List.iter
                  (fun vb ->
                    let names = pattern_vars vb.pvb_pat in
                    let name = match names with n :: _ -> n | [] -> "_" in
                    match mutable_kind vb.pvb_expr with
                    | Some kind -> flag vb.pvb_loc name kind
                    | None -> (
                        match vb.pvb_expr.pexp_desc with
                        | Pexp_record _ when List.exists (fun n -> List.mem n mutated) names
                          ->
                            flag vb.pvb_loc name "mutated record global"
                        | _ -> ()))
                  bindings
            | _ -> ())
          ast;
        List.rev !out

(* ---- pass 4: iface-coverage ---- *)

let check_iface_coverage ctx src =
  let path = src.Lint_source.path in
  if not (in_lib path) then []
  else if ctx.file_exists (path ^ "i") then []
  else
    [
      Lint_finding.make ~pass:"iface-coverage" ~file:path ~line:1 ~col:0
        ~severity:Lint_finding.Error
        (Printf.sprintf "missing interface %si (every lib/ module ships a signature)"
           (Filename.basename path));
    ]

(* ---- pass 5: poly-compare ---- *)

let poly_compare_ops = [ "="; "<>"; "compare"; "min"; "max" ]

let graph_returning =
  [
    [ "Graph"; "create" ];
    [ "Graph"; "copy" ];
    [ "Graph"; "of_edges" ];
    [ "Graph"; "snapshot" ];
    [ "Graph"; "survivor" ];
    [ "Graph"; "to_csr" ];
    [ "Csr"; "of_graph" ];
    [ "Csr"; "snapshot" ];
  ]

let graphish_name name =
  let ends_with suffix =
    let ls = String.length suffix and ln = String.length name in
    ln >= ls && String.sub name (ln - ls) ls = suffix
  in
  List.mem name [ "graph"; "csr"; "spanner" ]
  || ends_with "_graph" || ends_with "_csr" || ends_with "_spanner"

let rec graphish expr =
  match expr.pexp_desc with
  | Pexp_ident { txt = Longident.Lident name; _ } -> graphish_name name
  | Pexp_field (e, _) -> graphish e
  | Pexp_constraint (e, _) -> graphish e
  | Pexp_apply (fn, _) -> (
      match head_of fn with
      | Some p -> List.mem p graph_returning || (match p with "Generators" :: _ -> true | _ -> false)
      | None -> false)
  | _ -> false

let check_poly_compare _ctx src =
  on_exprs src (fun e ->
      match e.pexp_desc with
      | Pexp_apply (fn, ((_, a) :: _ as args)) -> (
          match head_of fn with
          | Some [ op ] when List.mem op poly_compare_ops ->
              let operands = a :: (match args with _ :: (_, b) :: _ -> [ b ] | _ -> []) in
              if List.exists graphish operands then
                [
                  finding ~pass:"poly-compare" ~severity:Lint_finding.Error src e.pexp_loc
                    (Printf.sprintf
                       "polymorphic %s on a Graph.t/Csr.t-like value (deep compare on \
                        version-counted graphs; compare node/edge counts or use == identity)"
                       op);
                ]
              else []
          | _ -> [])
      | _ -> [])

(* ---- registry ---- *)

let all =
  [
    {
      id = "banned-api";
      title = "banned API calls";
      doc =
        "failwith/Failure and unprefixed invalid_arg messages in lib/ (except \
         lib/util/io_error.ml); Printf.printf/print_*/prerr_* in lib/ (except Report and \
         Dcs_obs); Csr.of_graph / Graph.to_csr outside lib/graph";
      runs_when_typed = false;
      check = check_banned_api;
    };
    {
      id = "unsafe-audit";
      title = "unsafe accesses confined and justified";
      doc =
        "Array/Bytes/String/Bigarray.Array1 unsafe_* only in bfs_batch.ml, bitmat.ml, \
         csr_store.ml, dijkstra.ml, and every site preceded by a (* SAFETY: ... *) comment";
      runs_when_typed = false;
      check = check_unsafe_audit;
    };
    {
      id = "par-hygiene";
      title = "parallelism hygiene";
      doc =
        "top-level mutable state (refs, hash tables, arrays, mutated record globals) in \
         modules reachable from Parallel/Domain code must carry a (* DOMAIN-SAFE: ... *) \
         justification; superseded by the typed mutable-escape pass on compiled files";
      runs_when_typed = false;
      check = check_par_hygiene;
    };
    {
      id = "iface-coverage";
      title = "interface coverage";
      doc = "every lib/**/*.ml has a matching .mli";
      runs_when_typed = true;
      check = check_iface_coverage;
    };
    {
      id = "poly-compare";
      title = "no polymorphic compare on graphs";
      doc =
        "flags =, <>, compare, min, max applied to values that look like Graph.t/Csr.t \
         (structural compare ignores the version counter and walks the whole graph)";
      runs_when_typed = false;
      check = check_poly_compare;
    };
  ]

let find id = List.find_opt (fun p -> p.id = id) all
