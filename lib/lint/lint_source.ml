type t = {
  path : string;
  text : string;
  lines : string array; (* line i (1-based) at lines.(i - 1) *)
  ast : (Parsetree.structure, string * int) result Lazy.t;
}

let parse ~path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      Error ("syntax error", loc.Location.loc_start.Lexing.pos_lnum)
  | exception exn -> Error (Printexc.to_string exn, 1)

let of_string ~path text =
  {
    path;
    text;
    lines = Array.of_list (String.split_on_char '\n' text);
    ast = lazy (parse ~path text);
  }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> Ok (of_string ~path text)
  | exception Sys_error msg -> Error msg

let ast t = Lazy.force t.ast

let line t i = if i >= 1 && i <= Array.length t.lines then t.lines.(i - 1) else ""

(* Annotation discipline: a justification comment must sit within [within]
   lines above the annotated construct (default 10, wide enough for one
   comment to cover a short loop body, tight enough to stay local). *)
let marker_window = 10

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  nn > 0
  &&
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let has_marker_above ?(within = marker_window) t ~marker ~line:ln =
  let lo = max 1 (ln - within) in
  let rec go i = i <= ln && (contains ~needle:marker (line t i) || go (i + 1)) in
  go lo

(* Capitalized-prefix references ("Foo." somewhere in the text), the lexical
   module-dependency approximation used by the parallelism-hygiene pass.  It
   over-approximates (comments and strings count) which errs on the side of
   auditing more modules, never fewer. *)
let referenced_modules t =
  let out = ref [] in
  let n = String.length t.text in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '\''
  in
  let i = ref 0 in
  while !i < n do
    let c = t.text.[!i] in
    if c >= 'A' && c <= 'Z' && (!i = 0 || not (is_ident t.text.[!i - 1])) then begin
      let j = ref (!i + 1) in
      while !j < n && is_ident t.text.[!j] do
        incr j
      done;
      if !j < n && t.text.[!j] = '.' then out := String.sub t.text !i (!j - !i) :: !out;
      i := !j
    end
    else incr i
  done;
  List.sort_uniq compare !out

let module_name t =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename t.path))
