(** Lint findings: location-tagged rule violations plus their renderings.

    A finding identifies the pass that produced it, the offending source
    location and a human-readable message.  [Error] findings are hard
    violations of a repo invariant; [Warning] marks heuristic passes (e.g.
    the parallelism-hygiene auditors) whose findings signal "audit me"
    rather than "definitely wrong" — they fail the build only under
    [--strict].  Typed-tier findings additionally carry the fully-resolved
    identity ([resolved_path]) of the flagged value, so the JSON report
    shows what an alias or open actually referred to. *)

type severity = Error | Warning

type t = {
  pass : string;  (** pass id, e.g. ["banned-api"] *)
  file : string;  (** path as scanned (relative to the lint invocation) *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler locations *)
  severity : severity;
  msg : string;
  resolved_path : string option;
      (** typed passes only: the canonical resolved identity behind the
          flagged source text, e.g. ["Csr.of_graph"] for [C.of_graph] under
          [module C = Csr] *)
}

val make :
  ?resolved_path:string ->
  pass:string -> file:string -> line:int -> col:int -> severity:severity -> string -> t

val severity_name : severity -> string

val sort : t list -> t list
(** Stable order: file, then line, then column, then pass. *)

val json_escape : string -> string

val to_json : t -> string
(** One finding as a JSON object ([resolved_path] key present iff typed). *)

val report_json : files_scanned:int -> typed:int -> suppressed:int -> t list -> string
(** Full machine-readable report, schema [dcs-lint/2]:
    [{"schema":...,"findings":[...],"summary":{...}}]. *)

val table : t list -> string
(** Aligned human-readable table (or ["no findings\n"]). *)
