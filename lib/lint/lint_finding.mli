(** Lint findings: location-tagged rule violations plus their renderings.

    A finding identifies the pass that produced it, the offending source
    location and a human-readable message.  [Error] findings are hard
    violations of a repo invariant; [Warning] marks heuristic passes (e.g.
    the parallelism-hygiene detector) whose findings still fail the build
    unless allowlisted, but signal "audit me" rather than "definitely wrong". *)

type severity = Error | Warning

type t = {
  pass : string;  (** pass id, e.g. ["banned-api"] *)
  file : string;  (** path as scanned (relative to the lint invocation) *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler locations *)
  severity : severity;
  msg : string;
}

val make :
  pass:string -> file:string -> line:int -> col:int -> severity:severity -> string -> t

val severity_name : severity -> string

val sort : t list -> t list
(** Stable order: file, then line, then column, then pass. *)

val json_escape : string -> string

val to_json : t -> string
(** One finding as a JSON object. *)

val report_json : files_scanned:int -> suppressed:int -> t list -> string
(** Full machine-readable report: [{"findings":[...],"summary":{...}}]. *)

val table : t list -> string
(** Aligned human-readable table (or ["no findings\n"]). *)
