(* Typed-tier input: .cmt units produced by the compiler under -bin-annot
   (dune emits them for every module it builds).  A unit bundles the
   typedtree with enough environment plumbing — load path, Envaux summary
   reconstruction — that passes can resolve Path.ts and expand types, which
   is what makes the typed passes alias-, open- and functor-proof. *)

type t = {
  src : string;  (* cmt_sourcefile as recorded by the compiler *)
  cmt_path : string;
  modname : string;
  structure : Typedtree.structure;
  imports : string list;
}

type index = {
  units : t list;
  errors : (string * string) list;
}

(* ---- discovery ---- *)

(* Unlike the source walk (Lint_driver.collect), this one descends into
   dot-directories: dune hides object files in lib/<d>/.<lib>.objs/byte. *)
let rec walk_cmts path acc =
  match Sys.is_directory path with
  | true ->
      Array.fold_left
        (fun acc entry ->
          if entry = "" then acc else walk_cmts (Filename.concat path entry) acc)
        acc
        (let es = Sys.readdir path in
         Array.sort compare es;
         es)
  | false -> if Filename.check_suffix path ".cmt" then path :: acc else acc
  | exception Sys_error _ -> acc

(* Each scan root is tried as given and under _build/default, so the same
   invocation works from the dune @lint rule (cwd = _build/default, cmts in
   place), from the repo root (cmts under _build/default/<root>) and from
   the test tree (roots like ../lib already point into _build). *)
let candidate_roots roots =
  List.concat_map
    (fun r -> [ r; Filename.concat (Filename.concat "_build" "default") r ])
    roots
  |> List.filter (fun r -> Sys.file_exists r)

let discover ~roots =
  List.fold_left (fun acc r -> walk_cmts r acc) [] (candidate_roots roots)
  |> List.sort_uniq compare

(* ---- loading ---- *)

let dir_exists d = (try Sys.is_directory d with Sys_error _ -> false)

(* cmt_loadpath entries are relative to the compiler's cwd at build time
   (_build/default for dune); remap them so cmi lookups also resolve from
   the repo root and from _build/default/test. *)
let remap_dir d =
  List.filter dir_exists
    [ d; Filename.concat (Filename.concat "_build" "default") d; Filename.concat ".." d ]

let load_index ~roots =
  let cmts = discover ~roots in
  let units = ref [] and errors = ref [] and dirs = ref [] in
  let add_dir d = if not (List.mem d !dirs) then dirs := d :: !dirs in
  List.iter
    (fun cmt_path ->
      match Cmt_format.read_cmt cmt_path with
      | exception exn -> errors := (cmt_path, Printexc.to_string exn) :: !errors
      | cmt -> (
          match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
          | Cmt_format.Implementation structure, Some src ->
              List.iter
                (fun d -> List.iter add_dir (remap_dir d))
                cmt.Cmt_format.cmt_loadpath;
              add_dir (Filename.dirname cmt_path);
              units :=
                {
                  src;
                  cmt_path;
                  modname = cmt.Cmt_format.cmt_modname;
                  structure;
                  imports = List.map fst cmt.Cmt_format.cmt_imports;
                }
                :: !units
          | _ -> ()))
    cmts;
  (* One global load path per index: Env/Envaux cache persistent structures
     keyed by module name, so stale entries from a previous index (e.g. a
     fixture's stub Csr vs the repo's) must be dropped before passes run. *)
  Load_path.init ~auto_include:Load_path.no_auto_include (List.rev !dirs);
  Env.reset_cache ();
  Envaux.reset_cache ();
  { units = List.rev !units; errors = List.rev !errors }

(* The scanned path and the recorded sourcefile rarely agree verbatim
   ("../lib/graph/csr.ml" vs "lib/graph/csr.ml"); match on whole-segment
   suffixes in either direction. *)
let find index scanned =
  List.find_opt
    (fun u ->
      Lint_allow.path_matches ~pattern:u.src scanned
      || Lint_allow.path_matches ~pattern:scanned u.src)
    index.units

(* ---- environment & path resolution ---- *)

(* cmt files store environments as summaries; reconstruct on demand.  Any
   failure (missing cmi, version skew) degrades to the raw env, which still
   answers local queries. *)
let expr_env (e : Typedtree.expression) =
  try Envaux.env_of_only_summary e.Typedtree.exp_env with _ -> e.Typedtree.exp_env

(* Resolve the module part of a value/type path through module aliases
   (module C = Csr), then render canonically: the Stdlib prefix and the
   Stdlib__X mangling both drop, so Stdlib.Array.unsafe_get, A.unsafe_get
   under module A = Array, and unsafe_get under open Array all render as
   "Array.unsafe_get". *)
let strip_stdlib name =
  match String.split_on_char '.' name with
  | "Stdlib" :: (_ :: _ as rest) -> String.concat "." rest
  | seg :: rest when String.length seg > 8 && String.sub seg 0 8 = "Stdlib__" ->
      String.concat "."
        (String.capitalize_ascii (String.sub seg 8 (String.length seg - 8)) :: rest)
  | _ -> name

let normalize_path env p =
  match p with
  | Path.Pdot (mp, last) -> (
      match Env.normalize_module_path None env mp with
      | mp' -> Path.Pdot (mp', last)
      | exception _ -> p)
  | _ -> p

let canonical env p = strip_stdlib (Path.name (normalize_path env p))

let is_qualified = function Path.Pdot _ -> true | _ -> false

(* ---- type inspection ---- *)

(* Does [ty], after expanding abbreviations at every level, mention a type
   constructor accepted by [matches]?  Aliases (type g = Graph.t) expand
   away; containers (Graph.t list, (int * Csr.t) array) are entered; arrow
   types are not — a function returning a Hashtbl.t is a factory, not
   state.  [matches] receives the canonical constructor name. *)
let type_mentions env ~matches ty =
  let seen = ref [] in
  let rec go ty =
    let ty = try Ctype.expand_head env ty with _ -> ty in
    let id = Types.get_id ty in
    if List.memq id !seen then false
    else begin
      seen := id :: !seen;
      match Types.get_desc ty with
      | Types.Tarrow _ -> false
      | Types.Tconstr (p, args, _) ->
          matches (canonical env p) || List.exists go args
      | Types.Ttuple tys -> List.exists go tys
      | Types.Tpoly (ty, _) -> go ty
      | Types.Tlink ty | Types.Tsubst (ty, _) -> go ty
      | _ -> false
    end
  in
  go ty

let type_head env ty =
  let ty = try Ctype.expand_head env ty with _ -> ty in
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (canonical env p)
  | _ -> None

let type_is_unit env ty = type_head env ty = Some "unit"

let type_is_arrow env ty =
  let ty = try Ctype.expand_head env ty with _ -> ty in
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false
