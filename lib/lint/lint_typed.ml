(* The typed-tier pass catalogue: rules re-stated over the typedtree, where
   identifiers are resolved Path.ts and expressions carry inferred types.
   That is what makes them alias-, open- and functor-proof: [C.of_graph]
   under [module C = Csr], [of_graph] under [open Csr] and a shadowing-free
   [compare] all reduce to the same canonical identity here, while a local
   [let compare = ...] (a Pident, not a Pdot) correctly stops matching the
   Stdlib rule.  Parse-tier passes (Lint_passes) remain as the fallback for
   files the compiler produced no .cmt for. *)

open Typedtree

type ctx = {
  source : Lint_source.t;
      (* the matching source file: scope rules key on its path, and the
         SAFETY:/DOMAIN-SAFE: markers live in comments only the raw text
         retains *)
  parallel_reachable : string -> bool;
      (* by compilation-unit name, from the cmt_imports closure *)
}

type pass = {
  id : string;
  title : string;
  doc : string;
  check : ctx -> Lint_cmt.t -> Lint_finding.t list;
}

(* ---- shared helpers ---- *)

let loc_line_col (loc : Location.t) =
  (loc.loc_start.Lexing.pos_lnum, loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol)

let finding ?resolved_path ~pass ~severity (src : Lint_source.t) (loc : Location.t) msg =
  let line, col = loc_line_col loc in
  Lint_finding.make ?resolved_path ~pass ~file:src.Lint_source.path ~line ~col ~severity msg

(* Run [f] on every expression of the unit's typedtree. *)
let on_exprs (unit : Lint_cmt.t) f =
  let out = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match f e with [] -> () | fs -> out := fs @ !out);
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it unit.Lint_cmt.structure;
  List.rev !out

let resolved_ident e =
  match e.exp_desc with
  | Texp_ident (p, _, _) when Lint_cmt.is_qualified p ->
      Some (Lint_cmt.canonical (Lint_cmt.expr_env e) p)
  | _ -> None

let starts_with ~prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.sub s 0 lp = prefix

let string_literal e =
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_string (s, _, _)) -> Some s
  | _ -> None

(* ---- banned-api (typed) ---- *)

let banned_prints =
  [
    "Printf.printf"; "Printf.eprintf"; "Format.printf"; "Format.eprintf";
    "print_endline"; "print_string"; "print_newline"; "print_int"; "print_char";
    "print_float"; "print_bytes"; "prerr_endline"; "prerr_string"; "prerr_newline";
    "prerr_bytes";
  ]

let is_exn env ty = Lint_cmt.type_head env ty = Some "exn"

let check_banned_api ctx unit =
  let path = ctx.source.Lint_source.path in
  if not (Lint_passes.in_lib path) then []
  else
    on_exprs unit (fun e ->
        let err ?resolved_path msg =
          [ finding ?resolved_path ~pass:"banned-api" ~severity:Lint_finding.Error
              ctx.source e.exp_loc msg ]
        in
        let check_message_arg name arg =
          match string_literal arg with
          | Some s when not (Lint_passes.has_context_prefix s) ->
              err
                (Printf.sprintf
                   "%s message %S lacks a Module.fn/Module: context prefix" name s)
          | _ -> []
        in
        match e.exp_desc with
        | Texp_ident _ -> (
            match resolved_ident e with
            | Some "failwith" when not (Lint_passes.raise_exempt path) ->
                err ~resolved_path:"Stdlib.failwith"
                  "failwith in lib/ (raise a typed error: Io_error.raise_error or \
                   invalid_arg with a Module.fn prefix)"
            | Some name when List.mem name banned_prints
                             && not (Lint_passes.print_exempt path) ->
                err ~resolved_path:name
                  (Printf.sprintf "%s in lib/ (route output through Report or Dcs_obs)" name)
            | Some ("Csr.of_graph" as name) when not (Lint_passes.csr_exempt path) ->
                err ~resolved_path:name
                  "Csr.of_graph outside lib/graph (use the version-cached Csr.snapshot)"
            | Some ("Graph.to_csr" as name) when not (Lint_passes.csr_exempt path) ->
                err ~resolved_path:name
                  "Graph.to_csr outside lib/graph (use the version-cached Graph.snapshot)"
            | _ -> [])
        | Texp_apply (fn, (_, Some arg) :: _) when not (Lint_passes.raise_exempt path) -> (
            match resolved_ident fn with
            | Some "invalid_arg" -> check_message_arg "invalid_arg" arg
            | _ -> [])
        | Texp_construct (_, cd, [ arg ]) when not (Lint_passes.raise_exempt path) -> (
            match cd.Types.cstr_name with
            | "Failure" when is_exn (Lint_cmt.expr_env e) e.exp_type ->
                err "Failure constructor in lib/ (raise a typed error instead)"
            | "Invalid_argument" when is_exn (Lint_cmt.expr_env e) e.exp_type ->
                check_message_arg "Invalid_argument" arg
            | _ -> [])
        | _ -> [])

(* ---- unsafe-audit (typed) ---- *)

let unsafe_resolved name =
  match String.rindex_opt name '.' with
  | None -> false
  | Some i ->
      let m = String.sub name 0 i in
      let f = String.sub name (i + 1) (String.length name - i - 1) in
      starts_with ~prefix:"unsafe_" f
      && (List.mem m [ "Array"; "Bytes"; "String" ] || starts_with ~prefix:"Bigarray" m)

let check_unsafe_audit ctx unit =
  let path = ctx.source.Lint_source.path in
  let allowed =
    List.exists (fun k -> Lint_allow.path_matches ~pattern:k path) Lint_passes.kernel_allowlist
  in
  on_exprs unit (fun e ->
      match resolved_ident e with
      | Some name when unsafe_resolved name ->
          let line, _ = loc_line_col e.exp_loc in
          if not allowed then
            [
              finding ~resolved_path:name ~pass:"unsafe-audit"
                ~severity:Lint_finding.Error ctx.source e.exp_loc
                (Printf.sprintf "%s outside the allowlisted kernel set (%s)" name
                   (String.concat ", "
                      (List.map Filename.basename Lint_passes.kernel_allowlist)));
            ]
          else if
            not (Lint_source.has_marker_above ctx.source ~marker:"SAFETY:" ~line)
          then
            [
              finding ~resolved_path:name ~pass:"unsafe-audit"
                ~severity:Lint_finding.Error ctx.source e.exp_loc
                (Printf.sprintf
                   "%s without a (* SAFETY: ... *) comment within %d lines above" name
                   Lint_source.marker_window);
            ]
          else []
      | _ -> [])

(* ---- poly-compare (typed) ---- *)

let poly_compare_ops = [ "="; "<>"; "compare"; "min"; "max" ]

(* The graph representations whose structural comparison is banned: deep
   compare walks the whole CSR and ignores the version counter.  Inside
   graph.ml / csr.ml / csr_store.ml the same types appear under their local
   name [t]. *)
let graph_type modname name =
  List.mem name [ "Graph.t"; "Csr.t"; "Csr_store.t"; "Graph.csr" ]
  || (name = "t" && List.mem modname [ "Graph"; "Csr"; "Csr_store" ])

let check_poly_compare ctx (unit : Lint_cmt.t) =
  on_exprs unit (fun e ->
      match e.exp_desc with
      | Texp_apply (fn, args) -> (
          match resolved_ident fn with
          | Some op when List.mem op poly_compare_ops ->
              let operands =
                List.filter_map (function _, Some a -> Some a | _ -> None) args
              in
              let hit = ref None in
              let matches name =
                graph_type unit.Lint_cmt.modname name
                && begin
                     if !hit = None then hit := Some name;
                     true
                   end
              in
              let offending =
                List.exists
                  (fun a -> Lint_cmt.type_mentions (Lint_cmt.expr_env a) ~matches a.exp_type)
                  operands
              in
              if offending then
                let tyname = Option.value ~default:"Graph.t" !hit in
                [
                  finding ~resolved_path:tyname ~pass:"poly-compare"
                    ~severity:Lint_finding.Error ctx.source e.exp_loc
                    (Printf.sprintf
                       "polymorphic %s on a value whose inferred type involves %s (deep \
                        compare on version-counted graphs; compare node/edge counts or \
                        use == identity)"
                       op tyname);
                ]
              else []
          | _ -> [])
      | _ -> [])

(* ---- mutable-escape (typed) ---- *)

let mutable_types =
  [
    "ref"; "array"; "bytes"; "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t";
    "Bigarray.Array1.t"; "Bigarray.Array2.t";
  ]
(* Atomic.t and Mutex.t are deliberately absent: they ARE the sanctioned
   cross-domain disciplines, flagging them would punish the fix. *)

let rec pattern_var : pattern -> string option =
 fun p ->
  match p.pat_desc with
  | Tpat_var (_, name) -> Some name.Asttypes.txt
  | Tpat_alias (_, _, name) -> Some name.Asttypes.txt
  | Tpat_tuple ps -> List.find_map pattern_var ps
  | _ -> None

(* Top-level bindings, descending into nested module structures: state in a
   submodule is just as reachable from another domain. *)
let rec toplevel_bindings_of_items items acc =
  List.fold_left
    (fun acc item ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.rev_append vbs acc
      | Tstr_module mb -> toplevel_bindings_of_module mb.mb_expr acc
      | Tstr_recmodule mbs ->
          List.fold_left (fun acc mb -> toplevel_bindings_of_module mb.mb_expr acc) acc mbs
      | Tstr_include i -> toplevel_bindings_of_module i.incl_mod acc
      | _ -> acc)
    acc items

and toplevel_bindings_of_module me acc =
  match me.mod_desc with
  | Tmod_structure s -> toplevel_bindings_of_items s.str_items acc
  | Tmod_constraint (me, _, _, _) -> toplevel_bindings_of_module me acc
  | _ -> acc

let check_mutable_escape ctx (unit : Lint_cmt.t) =
  let path = ctx.source.Lint_source.path in
  if not (Lint_passes.in_lib path) then []
  else if not (ctx.parallel_reachable unit.Lint_cmt.modname) then []
  else
    let bindings = List.rev (toplevel_bindings_of_items unit.Lint_cmt.structure.str_items []) in
    List.concat_map
      (fun vb ->
        let env = Lint_cmt.expr_env vb.vb_expr in
        let hit = ref None in
        let matches name =
          List.mem name mutable_types
          && begin
               if !hit = None then hit := Some name;
               true
             end
        in
        if not (Lint_cmt.type_mentions env ~matches vb.vb_pat.pat_type) then []
        else
          let line, _ = loc_line_col vb.vb_loc in
          if Lint_source.has_marker_above ctx.source ~marker:"DOMAIN-SAFE:" ~line then []
          else
            let name = Option.value ~default:"_" (pattern_var vb.vb_pat) in
            let tyname = Option.value ~default:"mutable" !hit in
            [
              finding ~resolved_path:tyname ~pass:"mutable-escape"
                ~severity:Lint_finding.Warning ctx.source vb.vb_loc
                (Printf.sprintf
                   "top-level mutable state: %s's inferred type involves %s in a module \
                    reachable from Parallel/Domain call graphs; annotate (* DOMAIN-SAFE: \
                    why *) or refactor"
                   name tyname);
            ])
      bindings

(* ---- ignored-result (typed) ---- *)

(* Functions whose result encodes a verdict the caller must act on:
   discarding it via ignore/let _ silently drops a certification or
   comparison outcome. *)
let must_use name =
  name = "Stretch.violations"
  || starts_with ~prefix:"Repair." name
  || starts_with ~prefix:"Bench_report.compare_" name

let flagged_application e =
  match e.exp_desc with
  | Texp_apply (fn, _) -> (
      match resolved_ident fn with
      | Some name when must_use name ->
          let env = Lint_cmt.expr_env e in
          if Lint_cmt.type_is_unit env e.exp_type || Lint_cmt.type_is_arrow env e.exp_type
          then None
          else Some name
      | _ -> None)
  | _ -> None

let check_ignored_result ctx (unit : Lint_cmt.t) =
  let out = ref [] in
  let flag loc name how =
    out :=
      finding ~resolved_path:name ~pass:"ignored-result" ~severity:Lint_finding.Error
        ctx.source loc
        (Printf.sprintf "result of %s discarded via %s (act on the verdict or bind it)"
           name how)
      :: !out
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_apply (fn, [ (_, Some a) ]) when resolved_ident fn = Some "ignore" -> (
              match flagged_application a with
              | Some name -> flag e.exp_loc name "ignore"
              | None -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
      value_binding =
        (fun it vb ->
          (match vb.vb_pat.pat_desc with
          | Tpat_any -> (
              match flagged_application vb.vb_expr with
              | Some name -> flag vb.vb_loc name "let _"
              | None -> ())
          | _ -> ());
          Tast_iterator.default_iterator.value_binding it vb);
    }
  in
  it.structure it unit.Lint_cmt.structure;
  List.rev !out

(* ---- registry ---- *)

let all =
  [
    {
      id = "banned-api";
      title = "banned API calls (typed)";
      doc =
        "same rules as the parse tier, but on resolved paths: any value resolving to \
         Stdlib.failwith, a banned printer, Csr.of_graph or Graph.to_csr fires however \
         it is spelled (module aliases, opens, functor arguments)";
      check = check_banned_api;
    };
    {
      id = "unsafe-audit";
      title = "unsafe accesses confined and justified (typed)";
      doc =
        "unsafe_* calls matched by resolved module — module A = Array cannot hide one, \
         and a local safe wrapper named unsafe_* no longer false-positives; kernel \
         allowlist and (* SAFETY: *) discipline unchanged";
      check = check_unsafe_audit;
    };
    {
      id = "poly-compare";
      title = "no polymorphic compare on graphs (typed)";
      doc =
        "=, <>, compare, min, max whose operand's inferred type involves \
         Graph.t/Csr.t/Csr_store.t, through type aliases and inside containers \
         (Graph.t list, tuples); locally shadowed operators no longer match";
      check = check_poly_compare;
    };
    {
      id = "mutable-escape";
      title = "typed parallelism hygiene";
      doc =
        "top-level bindings whose inferred type involves ref/array/bytes/Hashtbl.t/\
         Buffer.t/Queue.t/Stack.t/Bigarray.Array1.t in modules reachable (by \
         cmt_imports closure) from Parallel/Domain users, unless (* DOMAIN-SAFE: *) \
         annotated; replaces par-hygiene's lexical heuristic on compiled files";
      check = check_mutable_escape;
    };
    {
      id = "ignored-result";
      title = "must-use results not discarded";
      doc =
        "non-unit results of Stretch.violations, Repair.*, Bench_report.compare_* \
         discarded via ignore or let _ — dropping a certification verdict on the floor";
      check = check_ignored_result;
    };
  ]

let find id = List.find_opt (fun p -> p.id = id) all

(* Typed replacement for the lexical Parallel/Domain reachability scan: a
   unit is audited when it transitively appears in the cmt_imports of a
   unit that imports Parallel (the repo's domain pool) or Stdlib's Domain
   directly.  Imports over-approximate calls (types count), which errs on
   the side of auditing more modules — same bias as the lexical version. *)
let parallel_closure (units : Lint_cmt.t list) =
  let unit_names = Hashtbl.create 64 in
  List.iter (fun (u : Lint_cmt.t) -> Hashtbl.replace unit_names u.Lint_cmt.modname u) units;
  let triggers u =
    List.exists
      (fun i -> i = "Parallel" || i = "Domain" || i = "Stdlib__Domain")
      u.Lint_cmt.imports
    || u.Lint_cmt.modname = "Parallel"
  in
  let reachable = Hashtbl.create 64 in
  let rec visit name =
    if not (Hashtbl.mem reachable name) then begin
      Hashtbl.replace reachable name ();
      match Hashtbl.find_opt unit_names name with
      | Some u ->
          List.iter
            (fun i -> if Hashtbl.mem unit_names i then visit i)
            u.Lint_cmt.imports
      | None -> ()
    end
  in
  List.iter (fun u -> if triggers u then visit u.Lint_cmt.modname) units;
  fun name -> Hashtbl.mem reachable name
