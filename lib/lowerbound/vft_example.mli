(** The Figure 1 example: fault-tolerant spanners do not control congestion.

    [G] is two cliques of size [n/2] joined by a perfect matching.  An
    [f]-vertex-fault-tolerant 3-spanner of the size the paper compares
    against ([f = ⌈n^{1/3}⌉]) may keep only [f + 1] matching edges; the
    perfect-matching routing problem then forces [Ω(n^{2/3})] congestion on
    the endpoints of the kept matching edges, even though its congestion in
    [G] is 1. *)

type t = {
  graph : Graph.t;
  spanner : Graph.t;
  half : int;  (** clique size [n/2]; node [i < half] is matched to [i + half] *)
  kept : int array;  (** indices [i] whose matching edge [(i, i+half)] was kept *)
}

val make : int -> t
(** [make n] builds the graph and the VFT-style spanner keeping
    [⌈n^{1/3}⌉ + 1] matching edges (cliques left intact).  Requires even
    [n ≥ 4]. *)

val matching_problem : t -> Routing.problem
(** The perfect matching [(i, i + half)] as a routing problem (congestion 1
    in [G]). *)

val route : t -> Prng.t -> Routing.routing
(** Substitute routing in the spanner: a removed pair [(i, i+half)] routes
    [i → j → j+half → i+half] across a uniformly random kept matching edge
    [j] — the least-congested strategy available, still [Ω(n^{2/3})]. *)
