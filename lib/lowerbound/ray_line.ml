type t = { graph : Graph.t; k : int; s : int }

let a t i =
  if i < 1 || i > (2 * t.k) + 1 then invalid_arg "Ray_line.a: index out of range";
  i - 1

let make k =
  if k < 1 then invalid_arg "Ray_line.make: need k >= 1";
  let n = (2 * k) + 2 in
  let g = Graph.create n in
  let s = n - 1 in
  (* Line edges (a_i, a_{i+1}) = (i-1, i) for 1 <= i <= 2k. *)
  for i = 0 to (2 * k) - 1 do
    ignore (Graph.add_edge g i (i + 1))
  done;
  (* Ray edges r_i = (s, a_{2i+1}) for 0 <= i <= k. *)
  for i = 0 to k do
    ignore (Graph.add_edge g s (2 * i))
  done;
  { graph = g; k; s }

let extremal_spanner t =
  let h = Graph.copy t.graph in
  let removed =
    Array.init t.k (fun j ->
        let i = j + 1 in
        (* (a_{2i-1}, a_{2i}) in node indices: (2i-2, 2i-1). *)
        let e = ((2 * i) - 2, (2 * i) - 1) in
        ignore (Graph.remove_edge h (fst e) (snd e));
        e)
  in
  (h, removed)

let forced_routing t =
  Array.init t.k (fun j ->
      let i = j + 1 in
      (* a_{2i-1} -> s -> a_{2i+1} -> a_{2i}, i.e. 2i-2 -> s -> 2i -> 2i-1. *)
      [| (2 * i) - 2; t.s; 2 * i; (2 * i) - 1 |])
