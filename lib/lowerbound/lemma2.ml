type t = {
  graph : Graph.t;
  spanner : Graph.t;
  size : int;
  alpha : int;
  a : int array;
  b : int array;
  d : int array array;
}

(* Each detour chain D_i carries [alpha] interior nodes so the private detour
   has length alpha + 1 — one more than the stretch bound allows, which is
   exactly what the Lemma 2 proof uses ("the (alpha+1)-length detour along
   D_i").  The paper's text gives D_i only alpha-1 nodes, but that makes the
   detour length alpha and the separation disappears; see DESIGN.md. *)
let make ~alpha ~size =
  if alpha < 2 then invalid_arg "Lemma2.make: need alpha >= 2";
  if size < 1 then invalid_arg "Lemma2.make: need size >= 1";
  let n_nodes = (2 * size) + (size * alpha) in
  let g = Graph.create n_nodes in
  let a = Array.init size (fun i -> i) in
  let b = Array.init size (fun i -> size + i) in
  let d = Array.init size (fun i -> Array.init alpha (fun j -> (2 * size) + (i * alpha) + j)) in
  (* Cliques on A and on B. *)
  for i = 0 to size - 1 do
    for j = i + 1 to size - 1 do
      ignore (Graph.add_edge g a.(i) a.(j));
      ignore (Graph.add_edge g b.(i) b.(j))
    done
  done;
  (* Perfect matching and private detour chains. *)
  for i = 0 to size - 1 do
    ignore (Graph.add_edge g a.(i) b.(i));
    let chain = d.(i) in
    ignore (Graph.add_edge g a.(i) chain.(0));
    for j = 0 to alpha - 2 do
      ignore (Graph.add_edge g chain.(j) chain.(j + 1))
    done;
    ignore (Graph.add_edge g chain.(alpha - 1) b.(i))
  done;
  let spanner = Graph.copy g in
  for i = 1 to size - 1 do
    ignore (Graph.remove_edge spanner a.(i) b.(i))
  done;
  { graph = g; spanner; size; alpha; a; b; d }

let matching_problem t =
  Array.init t.size (fun i -> { Routing.src = t.a.(i); dst = t.b.(i) })

let detour_path t i =
  Array.concat [ [| t.a.(i) |]; t.d.(i); [| t.b.(i) |] ]

let detour_routing t = Array.init t.size (fun i -> detour_path t i)

let short_routing t =
  Array.init t.size (fun i ->
      if i = 0 then [| t.a.(0); t.b.(0) |] else [| t.a.(i); t.a.(0); t.b.(0); t.b.(i) |])

let congestion_2_substitute t routing =
  let removed u v =
    (* (a_i, b_i) with i >= 1, in either orientation. *)
    let i_of x = if x < t.size then Some x else if x < 2 * t.size then Some (x - t.size) else None
    in
    match (i_of u, i_of v) with
    | Some i, Some j when i = j && i >= 1 && u <> v -> Some i
    | _ -> None
  in
  Array.map
    (fun path ->
      let out = ref [ path.(0) ] in
      for idx = 0 to Array.length path - 2 do
        let u = path.(idx) and v = path.(idx + 1) in
        (match removed u v with
        | Some i ->
            (* Splice the private detour, oriented to start at u. *)
            let det = detour_path t i in
            let det = if det.(0) = u then det else Array.init (Array.length det) (fun j -> det.(Array.length det - 1 - j)) in
            for j = 1 to Array.length det - 1 do
              out := det.(j) :: !out
            done
        | None -> out := v :: !out)
      done;
      Array.of_list (List.rev !out))
    routing
