(** The Lemma 2 separation family.

    Shows that being an [α]-distance spanner {e and} a [β]-congestion spanner
    does not make a graph an [(α, β)]-DC-spanner: the two stretches must hold
    for the {e same} substitute routing.

    The graph [G] (for stretch parameter [α] and size [n]) has cliques
    [A = {a₁ … a_n}] and [B = {b₁ … b_n}], a perfect matching
    [(a_i, b_i)], and for each [i] a private detour path
    [a_i – d_{i,1} – … – d_{i,α} – b_i] of length [α + 1].  (The paper's text
    gives [D_i] only [α−1] nodes, but its proof routes over "the
    (α+1)-length detour along [D_i]", which needs [α] interior nodes — with
    [α−1] the detour would satisfy the stretch bound and the separation
    would vanish.  We follow the proof; see DESIGN.md.)  The spanner [H]
    removes every matching edge except [(a₁, b₁)].

    - [H] is a 3-distance spanner ([a_i → a₁ → b₁ → b_j]);
    - [H] is a 2-congestion spanner (route over the private detours);
    - but a substitute routing of the matching problem that also respects the
      [α] length bound must push all [n] paths through [(a₁, b₁)]:
      congestion [n] versus optimal 1. *)

type t = {
  graph : Graph.t;
  spanner : Graph.t;
  size : int;  (** [n], the number of matched pairs *)
  alpha : int;
  a : int array;  (** node ids of [a₁ … a_n] *)
  b : int array;  (** node ids of [b₁ … b_n] *)
  d : int array array;  (** [d.(i)] = detour chain of pair [i] ([α] nodes) *)
}

val make : alpha:int -> size:int -> t
(** Build the instance (requires [alpha ≥ 2], [size ≥ 1]). *)

val matching_problem : t -> Routing.problem
(** The adversarial routing problem [R = {(a_i, b_i)}]. *)

val detour_routing : t -> Routing.routing
(** Substitute routing over the private detours: valid in [H], congestion 1,
    but path length [α + 1 > α] — witnesses the 2-congestion-spanner
    property while violating the simultaneous length bound. *)

val short_routing : t -> Routing.routing
(** The only length-[≤ α] substitute shape: [a_i → a₁ → b₁ → b_i].  Valid in
    [H] with path lengths ≤ 3 but congestion [n] at [a₁] and [b₁]. *)

val congestion_2_substitute : t -> Routing.routing -> Routing.routing
(** The proof's congestion-preserving transformation: any routing of any
    problem in [G] is mapped to [H] by replacing each removed matching edge
    [(a_i, b_i)] with the private detour through [D_i]; congestion at most
    doubles (Lemma 2's 2-congestion-spanner argument). *)
