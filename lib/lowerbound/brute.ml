let bounded_paths g ~src ~dst ~max_len =
  let out = ref [] in
  let rec dfs v acc len =
    if v = dst then out := Array.of_list (List.rev (v :: acc)) :: !out
    else if len < max_len then
      Graph.iter_neighbors g v (fun u ->
          if not (List.mem u acc) && u <> v then dfs u (v :: acc) (len + 1))
  in
  if src = dst then [ [| src |] ]
  else begin
    dfs src [] 0;
    !out
  end

let add_path loads path delta =
  Array.iter (fun v -> loads.(v) <- loads.(v) + delta) path

let min_congestion g problem ~max_len =
  let n = Graph.n g in
  let k = Array.length problem in
  let choices =
    Array.map
      (fun { Routing.src; dst } -> Array.of_list (bounded_paths g ~src ~dst ~max_len))
      problem
  in
  if Array.exists (fun c -> Array.length c = 0) choices then None
  else begin
    let order = Array.init k (fun i -> i) in
    Array.sort (fun a b -> compare (Array.length choices.(a)) (Array.length choices.(b))) order;
    let loads = Array.make n 0 in
    let chosen = Array.make k [||] in
    let best = ref max_int in
    let best_routing = ref None in
    let rec search idx current_max =
      if current_max < !best then begin
        if idx = k then begin
          best := current_max;
          best_routing := Some (Array.copy chosen)
        end
        else begin
          let req = order.(idx) in
          Array.iter
            (fun p ->
              add_path loads p 1;
              let local = Array.fold_left (fun acc v -> max acc loads.(v)) current_max p in
              chosen.(req) <- p;
              search (idx + 1) local;
              add_path loads p (-1))
            choices.(req)
        end
      end
    in
    search 0 0;
    match !best_routing with None -> None | Some r -> Some (!best, r)
  end

let all_three_spanners g =
  let edges = Graph.edge_array g in
  Array.sort compare edges;
  let m = Array.length edges in
  if m > 20 then invalid_arg "Brute.all_three_spanners: graph too large for enumeration";
  let out = ref [] in
  for mask = 0 to (1 lsl m) - 1 do
    let h = Graph.copy g in
    let removed = ref [] in
    for i = 0 to m - 1 do
      if mask land (1 lsl i) <> 0 then begin
        let u, v = edges.(i) in
        ignore (Graph.remove_edge h u v);
        removed := (u, v) :: !removed
      end
    done;
    if Stretch.is_three_spanner g h then out := (h, Array.of_list (List.rev !removed)) :: !out
  done;
  !out
