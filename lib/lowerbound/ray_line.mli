(** The Lemma 18 gadget: a line with rays to a special node.

    The graph has nodes [a₁ … a_{2k+1}] connected in a line, plus a special
    node [s] with ray edges [r_i = (s, a_{2i+1})] for [0 ≤ i ≤ k]:
    [|V| = 2k + 2] and [|E| = 3k + 1].  Lemma 18 shows that any 3-distance
    spanner that removes [(k + x + 1)/3] edges must have congestion stretch
    [≥ x/4] — removing the most edges possible forces one removed line edge
    per face, and all their 3-hop substitute paths run through [s].

    Node numbering: [a_i] is node [i - 1] (so [0 .. 2k]), [s] is node
    [2k + 1]. *)

type t = {
  graph : Graph.t;
  k : int;
  s : int;  (** index of the special node *)
}

val make : int -> t
(** [make k] builds the gadget (requires [k ≥ 1]). *)

val a : t -> int -> int
(** [a t i] is the node index of [aᵢ] ([1 ≤ i ≤ 2k+1]). *)

val extremal_spanner : t -> Graph.t * (int * int) array
(** The optimal-size 3-distance spanner of the gadget ([x = 2k − 1] in
    Lemma 18): one line edge removed from every face — edge
    [(a_{2i-1}, a_{2i})] for each [1 ≤ i ≤ k].  Returns the spanner [H] and
    the removed set [E₁] (the adversarial routing requests). *)

val forced_routing : t -> Routing.routing
(** The unique (up to symmetry) length-≤3 substitute routing of the [E₁]
    requests in the extremal spanner: [a_{2i-1} → s → a_{2i+1} → a_{2i}].
    Every path crosses [s], so its congestion is [k] while [E₁] itself routes
    with congestion 1 in [G]. *)
