type instance = { special : int; line : int array }

type t = { graph : Graph.t; instances : instance array; k : int; pool : int }

let default_k ~pool =
  let two_k = (float_of_int pool /. 17.0) ** (1.0 /. 6.0) in
  max 1 (int_of_float (Float.round (two_k /. 2.0)))

let make rng ~pool ~instances ~k =
  if k < 1 then invalid_arg "Theorem4.make: need k >= 1";
  let line_size = (2 * k) + 1 in
  let design = Design.make rng ~n:pool ~subset_size:line_size ~count:instances in
  let graph = Graph.create (pool + instances) in
  let inst =
    Array.mapi
      (fun i line ->
        let special = pool + i in
        (* Line edges a_j — a_{j+1}. *)
        for j = 0 to line_size - 2 do
          ignore (Graph.add_edge graph line.(j) line.(j + 1))
        done;
        (* Ray edges (s, a_{2t+1}) for 0 <= t <= k: odd-indexed a's are the
           even positions of the 0-based [line] array. *)
        for t = 0 to k do
          ignore (Graph.add_edge graph special line.(2 * t))
        done;
        { special; line })
      design.Design.subsets
  in
  { graph; instances = inst; k; pool }

let removed_edges t inst =
  Array.init t.k (fun j ->
      let i = j + 1 in
      (inst.line.((2 * i) - 2), inst.line.((2 * i) - 1)))

let optimal_spanner t =
  let h = Graph.copy t.graph in
  let removed =
    Array.map
      (fun inst ->
        let edges = removed_edges t inst in
        Array.iter (fun (u, v) -> ignore (Graph.remove_edge h u v)) edges;
        edges)
      t.instances
  in
  (h, removed)

let forced_routing t i =
  let inst = t.instances.(i) in
  Array.init t.k (fun j ->
      let idx = j + 1 in
      (* a_{2i-1} -> s -> a_{2i+1} -> a_{2i}. *)
      [|
        inst.line.((2 * idx) - 2); inst.special; inst.line.(2 * idx); inst.line.((2 * idx) - 1);
      |])

let edge_routing t i =
  let inst = t.instances.(i) in
  Array.map (fun (u, v) -> [| u; v |]) (removed_edges t inst)
