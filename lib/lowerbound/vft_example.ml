type t = { graph : Graph.t; spanner : Graph.t; half : int; kept : int array }

let make n =
  if n < 4 || n mod 2 <> 0 then invalid_arg "Vft_example.make: need even n >= 4";
  let graph = Generators.two_cliques_matching n in
  let half = n / 2 in
  let f = int_of_float (ceil (float_of_int n ** (1.0 /. 3.0))) in
  let keep = min half (f + 1) in
  let kept = Array.init keep (fun i -> i) in
  let spanner = Graph.copy graph in
  for i = keep to half - 1 do
    ignore (Graph.remove_edge spanner i (half + i))
  done;
  { graph; spanner; half; kept }

let matching_problem t =
  Array.init t.half (fun i -> { Routing.src = i; dst = t.half + i })

let route t rng =
  Array.init t.half (fun i ->
      if Graph.mem_edge t.spanner i (t.half + i) then [| i; t.half + i |]
      else begin
        let j = Prng.pick rng t.kept in
        [| i; j; t.half + j; t.half + i |]
      end)
