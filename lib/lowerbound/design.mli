(** The Lemma 19 subset design.

    For a ground set [N] of size [n], Lemma 19 (probabilistic method) gives
    [count] subsets of size [subset_size] such that (i) every element lies in
    [Θ(n^{1/6})] subsets and (ii) any two subsets share at most one element.
    We realize it constructively: sample subsets uniformly and reject a draw
    whenever it would reuse a {e pair} of elements already covered by an
    earlier subset — exactly the pairwise-intersection-≤-1 condition.
    Concentration gives the balanced element loads, which the test suite and
    the Theorem 4 bench verify. *)

type t = {
  n : int;  (** ground-set size *)
  subsets : int array array;  (** the sampled subsets *)
}

val make : Prng.t -> n:int -> subset_size:int -> count:int -> t
(** Sample the design.  Raises [Failure] if a subset cannot be placed after
    many retries (parameters too dense — needs
    [count · subset_size² ≲ n²/2]). *)

val element_loads : t -> int array
(** How many subsets each ground element belongs to. *)

val max_pairwise_intersection : t -> int
(** Largest intersection size over all subset pairs (specification: ≤ 1).
    O(count² · size) — fine at experiment scale, used by tests. *)
