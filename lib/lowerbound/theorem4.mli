(** The Theorem 4 lower-bound graph.

    [instances] copies of the Lemma 18 gadget share a common pool of line
    nodes: instance [i] owns a private special node [s_i] and draws its
    [2k+1] line nodes from a Lemma 19 design subset, so that all instances
    are pairwise edge-disjoint while each pool node serves [Θ(n^{1/6})]
    instances.  Any optimal-size 3-distance spanner must apply the extremal
    Lemma 18 removal inside every instance, and the per-instance adversarial
    routing then forces congestion [k] through [s_i] against an optimum of 1:
    congestion stretch [Ω(n^{1/6})] at [Ω(n^{7/6})] spanner edges. *)

type instance = {
  special : int;  (** node index of [s_i] *)
  line : int array;  (** pool node indices of [a₁ … a_{2k+1}], in gadget order *)
}

type t = {
  graph : Graph.t;
  instances : instance array;
  k : int;
  pool : int;  (** number of shared line-pool nodes (they are nodes [0 .. pool-1]) *)
}

val default_k : pool:int -> int
(** The paper's parameterization: [2k = (pool/17)^{1/6}], at least 1. *)

val make : Prng.t -> pool:int -> instances:int -> k:int -> t
(** Build the composed graph.  Raises if the Lemma 19 design cannot be
    sampled at these parameters. *)

val optimal_spanner : t -> Graph.t * (int * int) array array
(** Apply the extremal Lemma 18 spanner inside every instance; returns the
    spanner and, per instance, the removed edges [E₁] (the adversarial
    requests). *)

val forced_routing : t -> int -> Routing.routing
(** [forced_routing t i]: the length-3 substitute routing of instance [i]'s
    removed edges in the optimal spanner — every path crosses [s_i]. *)

val edge_routing : t -> int -> Routing.routing
(** The optimal routing of the same requests in [G]: each request is an edge
    of [G], so the routing is the edges themselves (congestion 1). *)
