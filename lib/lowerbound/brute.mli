(** Exhaustive small-case verification of the lower-bound lemmas.

    The Theorem 4 pipeline rests on Lemma 18's combinatorial claims about
    the ray-line gadget ({i any} 3-distance spanner that removes
    [(k+x+1)/3] edges has congestion stretch [≥ x/4], and at most [k] edges
    can be removed at all).  For small [k] these are finite statements, so
    instead of trusting one extremal construction the test suite enumerates
    {e every} subset of gadget edges, filters the valid 3-spanners, and
    computes the {e exact} minimum congestion of the adversarial routing
    problem by branch-and-bound over all bounded-length paths.  *)

val bounded_paths : Graph.t -> src:int -> dst:int -> max_len:int -> Routing.path list
(** All simple paths from [src] to [dst] of length ≤ [max_len] (DFS).
    Exponential; intended for gadget-sized graphs. *)

val min_congestion :
  Graph.t -> Routing.problem -> max_len:int -> (int * Routing.routing) option
(** Exact minimum node congestion over all routings whose paths are simple
    and of length ≤ [max_len]; [None] if some request has no such path.
    Branch-and-bound, fewest-paths-first. *)

val all_three_spanners : Graph.t -> (Graph.t * (int * int) array) list
(** Every spanner of [g] obtained by removing a subset of edges that is
    still a 3-distance spanner, paired with its removed edge set (the empty
    removal included).  Enumerates [2^{|E|}] subsets — gadget-sized inputs
    only. *)
