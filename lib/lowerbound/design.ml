type t = { n : int; subsets : int array array }

let pair_key n x y = if x < y then (x * n) + y else (y * n) + x

let make rng ~n ~subset_size ~count =
  if subset_size < 1 || subset_size > n then invalid_arg "Design.make: bad subset size";
  let used_pairs = Hashtbl.create (4 * count * subset_size) in
  let sample_subset () =
    let retries = 1000 in
    let rec attempt r =
      if r >= retries then
        invalid_arg "Design.make: could not place a subset (parameters too dense)";
      let s = Prng.sample_distinct rng ~n ~k:subset_size in
      let ok = ref true in
      for i = 0 to subset_size - 1 do
        for j = i + 1 to subset_size - 1 do
          if Hashtbl.mem used_pairs (pair_key n s.(i) s.(j)) then ok := false
        done
      done;
      if !ok then begin
        for i = 0 to subset_size - 1 do
          for j = i + 1 to subset_size - 1 do
            Hashtbl.add used_pairs (pair_key n s.(i) s.(j)) ()
          done
        done;
        s
      end
      else attempt (r + 1)
    in
    attempt 0
  in
  { n; subsets = Array.init count (fun _ -> sample_subset ()) }

let element_loads t =
  let loads = Array.make t.n 0 in
  Array.iter (fun s -> Array.iter (fun x -> loads.(x) <- loads.(x) + 1) s) t.subsets;
  loads

let max_pairwise_intersection t =
  let worst = ref 0 in
  let count = Array.length t.subsets in
  for i = 0 to count - 1 do
    let set = Hashtbl.create (Array.length t.subsets.(i)) in
    Array.iter (fun x -> Hashtbl.replace set x ()) t.subsets.(i);
    for j = i + 1 to count - 1 do
      let inter = ref 0 in
      Array.iter (fun x -> if Hashtbl.mem set x then incr inter) t.subsets.(j);
      worst := max !worst !inter
    done
  done;
  !worst
