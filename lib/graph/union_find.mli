(** Disjoint-set forest with union by rank and path compression.

    Used for connectivity repair in sparsifiers and for component counting. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the set containing the element. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the two sets; returns [true] iff they were distinct. *)

val same : t -> int -> int -> bool
(** Whether two elements currently share a set. *)

val count : t -> int
(** Number of disjoint sets remaining. *)
