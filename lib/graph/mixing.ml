type report = { trials : int; worst_ratio : float; violations : int }

let e_between g s t =
  let n = Csr.n g in
  let in_t = Array.make n false in
  Array.iter (fun v -> in_t.(v) <- true) t;
  let count = ref 0 in
  Array.iter
    (fun u -> Csr.iter_neighbors g u (fun v -> if in_t.(v) then incr count))
    s;
  !count

let check ?(trials = 50) rng g ~lambda =
  let n = Csr.n g in
  let delta = float_of_int (Array.fold_left max 0 (Array.init n (Csr.degree g))) in
  let worst = ref 0.0 in
  let violations = ref 0 in
  for _ = 1 to trials do
    (* sizes spread over the scale: from tiny sets to ~n/3 *)
    let s_size = 1 + Prng.int rng (max 1 (n / 3)) in
    let t_size = 1 + Prng.int rng (max 1 (n / 3)) in
    if s_size + t_size <= n then begin
      let nodes = Prng.sample_distinct rng ~n ~k:(s_size + t_size) in
      let s = Array.sub nodes 0 s_size in
      let t = Array.sub nodes s_size t_size in
      let e = float_of_int (e_between g s t) in
      let expected = delta /. float_of_int n *. float_of_int s_size *. float_of_int t_size in
      let allowance = lambda *. sqrt (float_of_int s_size *. float_of_int t_size) in
      if allowance > 0.0 then begin
        let ratio = Float.abs (e -. expected) /. allowance in
        worst := max !worst ratio;
        if ratio > 1.0 then incr violations
      end
    end
  done;
  { trials; worst_ratio = !worst; violations = !violations }
