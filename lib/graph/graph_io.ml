let to_channel g oc =
  Printf.fprintf oc "n %d %d\n" (Graph.n g) (Graph.m g);
  if Graph.is_weighted g then begin
    let edges = ref [] in
    Graph.iter_edges_w g (fun u v w -> edges := (u, v, w) :: !edges);
    let edges = Array.of_list !edges in
    Array.sort compare edges;
    Array.iter (fun (u, v, w) -> Printf.fprintf oc "%d %d %d\n" u v w) edges
  end
  else begin
    let edges = Graph.edge_array g in
    Array.sort compare edges;
    Array.iter (fun (u, v) -> Printf.fprintf oc "%d %d\n" u v) edges
  end

let write g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel g oc)

let of_channel ?(file = "<channel>") ic =
  let fail line msg = Io_error.raise_error ~file ~line msg in
  let g = ref None in
  let expected_m = ref 0 in
  let line_no = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr line_no;
       let line = String.trim line in
       if line <> "" && line.[0] <> '#' then begin
         let fields =
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun s -> s <> "")
         in
         let add graph u v weight =
           match (int_of_string_opt u, int_of_string_opt v) with
           | Some u, Some v ->
               if u = v then fail !line_no "self-loop"
               else if u < 0 || v < 0 || u >= Graph.n graph || v >= Graph.n graph then
                 fail !line_no "endpoint out of range"
               else ignore (Graph.add_edge ~weight graph u v)
           | _ -> fail !line_no "bad edge line"
         in
         match (!g, fields) with
         | None, [ "n"; n; m ] -> (
             match (int_of_string_opt n, int_of_string_opt m) with
             | Some n, Some m when n >= 0 && m >= 0 ->
                 g := Some (Graph.create n);
                 expected_m := m
             | _ -> fail !line_no "bad header")
         | None, _ -> fail !line_no "expected header 'n <nodes> <edges>'"
         | Some graph, [ u; v ] -> add graph u v 1
         | Some graph, [ u; v; w ] -> (
             match int_of_string_opt w with
             | Some w when w >= 1 -> add graph u v w
             | Some _ -> fail !line_no "edge weight must be a positive integer"
             | None -> fail !line_no "bad edge line")
         | Some _, _ -> fail !line_no "bad edge line"
       end
     done
   with End_of_file -> ());
  match !g with
  | None -> fail 0 "empty input (missing header)"
  | Some graph ->
      if Graph.m graph <> !expected_m then
        fail !line_no
          (Printf.sprintf "header declares %d edges but %d were read" !expected_m (Graph.m graph));
      graph

let read path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ~file:path ic)
