
let complete n =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      ignore (Graph.add_edge g u v)
    done
  done;
  g

let complete_bipartite a b =
  let g = Graph.create (a + b) in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      ignore (Graph.add_edge g u v)
    done
  done;
  g

let cycle n =
  if n < 3 then invalid_arg "Generators.cycle: need n >= 3";
  let g = Graph.create n in
  for v = 0 to n - 1 do
    ignore (Graph.add_edge g v ((v + 1) mod n))
  done;
  g

let path n =
  let g = Graph.create n in
  for v = 0 to n - 2 do
    ignore (Graph.add_edge g v (v + 1))
  done;
  g

let star n =
  let g = Graph.create n in
  for v = 1 to n - 1 do
    ignore (Graph.add_edge g 0 v)
  done;
  g

let grid rows cols =
  let g = Graph.create (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then ignore (Graph.add_edge g (id r c) (id r (c + 1)));
      if r + 1 < rows then ignore (Graph.add_edge g (id r c) (id (r + 1) c))
    done
  done;
  g

let torus rows cols =
  let g = Graph.create (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      ignore (Graph.add_edge g (id r c) (id r ((c + 1) mod cols)));
      ignore (Graph.add_edge g (id r c) (id ((r + 1) mod rows) c))
    done
  done;
  g

let hypercube d =
  if d < 0 || d > 25 then invalid_arg "Generators.hypercube: dimension out of range";
  let n = 1 lsl d in
  let g = Graph.create n in
  for v = 0 to n - 1 do
    for bit = 0 to d - 1 do
      let u = v lxor (1 lsl bit) in
      if u > v then ignore (Graph.add_edge g v u)
    done
  done;
  g

let circulant n offsets =
  let g = Graph.create n in
  List.iter
    (fun o ->
      if o <> 0 then
        for v = 0 to n - 1 do
          ignore (Graph.add_edge g v (((v + o) mod n + n) mod n))
        done)
    offsets;
  g

let erdos_renyi rng n p =
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.bool rng p then ignore (Graph.add_edge g u v)
    done
  done;
  g

(* Dynamic edge list supporting O(1) uniform sampling and deletion, used by
   the configuration-model repair loop. *)
module Edge_pool = struct
  type t = {
    mutable edges : (int * int) array;
    mutable len : int;
    index : (int * int, int) Hashtbl.t;
  }

  let norm u v = if u < v then (u, v) else (v, u)

  let create () = { edges = Array.make 16 (0, 0); len = 0; index = Hashtbl.create 64 }

  let add t u v =
    let e = norm u v in
    if t.len = Array.length t.edges then begin
      let bigger = Array.make (2 * t.len) (0, 0) in
      Array.blit t.edges 0 bigger 0 t.len;
      t.edges <- bigger
    end;
    t.edges.(t.len) <- e;
    Hashtbl.replace t.index e t.len;
    t.len <- t.len + 1

  let remove t u v =
    let e = norm u v in
    let pos = Hashtbl.find t.index e in
    Hashtbl.remove t.index e;
    let last = t.len - 1 in
    if pos <> last then begin
      let moved = t.edges.(last) in
      t.edges.(pos) <- moved;
      Hashtbl.replace t.index moved pos
    end;
    t.len <- last

  let sample t rng = t.edges.(Prng.int rng t.len)
end

(* Configuration model: pair up d stubs per node, then repair self-loops and
   duplicate edges with degree-preserving edge switches.  For dense targets
   (d > (n-1)/2) the switches starve, so we generate the (n-1-d)-regular
   complement instead and invert it; n(n-1-d) is even whenever nd is. *)
let rec random_regular rng n d =
  if d < 0 || d >= n then invalid_arg "Generators.random_regular: need 0 <= d < n";
  if n * d mod 2 <> 0 then invalid_arg "Generators.random_regular: n*d must be even";
  if 2 * d > n - 1 then begin
    let co = random_regular rng n (n - 1 - d) in
    let g = Graph.create n in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if not (Graph.mem_edge co u v) then ignore (Graph.add_edge g u v)
      done
    done;
    g
  end
  else begin
  let g = Graph.create n in
  let pool = Edge_pool.create () in
  let stubs = Array.make (n * d) 0 in
  for v = 0 to n - 1 do
    for i = 0 to d - 1 do
      stubs.((v * d) + i) <- v
    done
  done;
  Prng.shuffle rng stubs;
  let bad = ref [] in
  let try_add u v =
    if u <> v && Graph.add_edge g u v then Edge_pool.add pool u v else bad := (u, v) :: !bad
  in
  let i = ref 0 in
  while !i + 1 < Array.length stubs do
    try_add stubs.(!i) stubs.(!i + 1);
    i := !i + 2
  done;
  (* Repair: a bad pair (u, v) means u and v each still miss one incidence
     (two for a self-loop).  A switch with a random existing edge (x, y)
     restores the degree sequence without introducing conflicts. *)
  let attempts = ref 0 in
  let budget = 1000 * (List.length !bad + 1) * (1 + (n / 10)) in
  let rec fix u v =
    incr attempts;
    if !attempts > budget then
      invalid_arg "Generators.random_regular: repair budget exhausted (graph too dense?)";
    let x, y = Edge_pool.sample pool rng in
    if u = v then begin
      (* Self-loop: u needs two new incidences.  Replace (x,y) by (u,x),(u,y). *)
      if u <> x && u <> y && (not (Graph.mem_edge g u x)) && not (Graph.mem_edge g u y)
      then begin
        ignore (Graph.remove_edge g x y);
        Edge_pool.remove pool x y;
        ignore (Graph.add_edge g u x);
        Edge_pool.add pool u x;
        ignore (Graph.add_edge g u y);
        Edge_pool.add pool u y
      end
      else fix u v
    end
    else if
      u <> x && u <> y && v <> x && v <> y
      && (not (Graph.mem_edge g u x))
      && not (Graph.mem_edge g v y)
    then begin
      ignore (Graph.remove_edge g x y);
      Edge_pool.remove pool x y;
      ignore (Graph.add_edge g u x);
      Edge_pool.add pool u x;
      ignore (Graph.add_edge g v y);
      Edge_pool.add pool v y
    end
    else fix u v
  in
  List.iter (fun (u, v) -> fix u v) !bad;
    g
  end

let margulis m =
  if m < 2 then invalid_arg "Generators.margulis: need m >= 2";
  let n = m * m in
  let g = Graph.create n in
  let id x y = (((x mod m) + m) mod m * m) + (((y mod m) + m) mod m) in
  for x = 0 to m - 1 do
    for y = 0 to m - 1 do
      let v = id x y in
      ignore (Graph.add_edge g v (id (x + (2 * y)) y));
      ignore (Graph.add_edge g v (id (x + (2 * y) + 1) y));
      ignore (Graph.add_edge g v (id x (y + (2 * x))));
      ignore (Graph.add_edge g v (id x (y + (2 * x) + 1)))
    done
  done;
  g

let two_cliques_matching n =
  if n < 2 || n mod 2 <> 0 then invalid_arg "Generators.two_cliques_matching: need even n >= 2";
  let half = n / 2 in
  let g = Graph.create n in
  for u = 0 to half - 1 do
    for v = u + 1 to half - 1 do
      ignore (Graph.add_edge g u v);
      ignore (Graph.add_edge g (half + u) (half + v))
    done
  done;
  for u = 0 to half - 1 do
    ignore (Graph.add_edge g u (half + u))
  done;
  g

let ring_of_cliques k s =
  if k < 1 || s < 1 then invalid_arg "Generators.ring_of_cliques";
  let g = Graph.create (k * s) in
  for c = 0 to k - 1 do
    let base = c * s in
    for u = 0 to s - 1 do
      for v = u + 1 to s - 1 do
        ignore (Graph.add_edge g (base + u) (base + v))
      done
    done
  done;
  if k > 1 then
    for c = 0 to k - 1 do
      let next = (c + 1) mod k in
      if k > 2 || c < next then
        ignore (Graph.add_edge g ((c * s) + s - 1) (next * s))
    done;
  g

let chung_lu rng w =
  let n = Array.length w in
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Generators.chung_lu: weights must be positive";
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let p = min 1.0 (w.(u) *. w.(v) /. total) in
      if Prng.bool rng p then ignore (Graph.add_edge g u v)
    done
  done;
  g

let power_law_weights rng ~n ~exponent ~w_min =
  if exponent <= 1.0 then invalid_arg "Generators.power_law_weights: exponent must exceed 1";
  let cap = sqrt (float_of_int n *. w_min) in
  Array.init n (fun _ ->
      let u = max 1e-12 (Prng.float rng) in
      min cap (w_min *. (u ** (-1.0 /. (exponent -. 1.0)))))

let preferential_attachment rng ~n ~m =
  if m < 1 || m >= n then invalid_arg "Generators.preferential_attachment: need 1 <= m < n";
  let g = Graph.create n in
  (* endpoint multiset for degree-proportional sampling, as a growable array *)
  let cap = ref 1024 in
  let endpoints = ref (Array.make !cap 0) in
  let len = ref 0 in
  let push v =
    if !len = !cap then begin
      cap := 2 * !cap;
      let bigger = Array.make !cap 0 in
      Array.blit !endpoints 0 bigger 0 !len;
      endpoints := bigger
    end;
    !endpoints.(!len) <- v;
    incr len
  in
  (* seed clique on the first m+1 nodes *)
  for u = 0 to m do
    for v = u + 1 to m do
      if Graph.add_edge g u v then begin
        push u;
        push v
      end
    done
  done;
  for v = m + 1 to n - 1 do
    let added = ref 0 in
    let guard = ref 0 in
    (* snapshot length so v's own fresh endpoints don't bias its sampling *)
    let frozen = !len in
    while !added < m && !guard < 200 * m do
      incr guard;
      let target = !endpoints.(Prng.int rng frozen) in
      if target <> v && Graph.add_edge g v target then begin
        incr added;
        push v;
        push target
      end
    done
  done;
  g

(* Streaming expander: never touches Graph.add_edge.  A Hamiltonian cycle
   guarantees connectivity; each random permutation contributes a 2-regular
   union of cycles, so the union is near-(2 + 2*rounds)-regular and an
   expander w.h.p. (random permutation unions mix like random regular
   graphs).  All arcs go straight into one O(n + m) counting-sort build. *)
let expander rng n d =
  if n < 3 then invalid_arg "Generators.expander: need n >= 3";
  if d < 2 || d >= n then invalid_arg "Generators.expander: need 2 <= d < n";
  let rounds = (d - 2 + 1) / 2 in
  let c =
    Csr_store.of_stream ~m_hint:(n * (d + 1) / 2) ~n (fun emit ->
        for v = 0 to n - 1 do
          emit v (if v = n - 1 then 0 else v + 1)
        done;
        for _ = 1 to rounds do
          let p = Prng.permutation rng n in
          Array.iteri (fun i j -> if i <> j then emit i j) p
        done)
  in
  Graph.of_csr c

(* Weighted families: uniform integer weights in [1, w_max].  A duplicate
   arc keeps the lighter weight (the counting-sort dedup rule), matching
   what a multigraph collapsed to its lightest parallel edge would give. *)
let weighted_expander rng n d ~w_max =
  if w_max < 1 then invalid_arg "Generators.weighted_expander: need w_max >= 1";
  if n < 3 then invalid_arg "Generators.weighted_expander: need n >= 3";
  if d < 2 || d >= n then invalid_arg "Generators.weighted_expander: need 2 <= d < n";
  let rounds = (d - 2 + 1) / 2 in
  let w () = 1 + Prng.int rng w_max in
  let c =
    Csr_store.of_weighted_stream ~m_hint:(n * (d + 1) / 2) ~n (fun emit ->
        for v = 0 to n - 1 do
          emit v (if v = n - 1 then 0 else v + 1) (w ())
        done;
        for _ = 1 to rounds do
          let p = Prng.permutation rng n in
          Array.iteri (fun i j -> if i <> j then emit i j (w ())) p
        done)
  in
  Graph.of_csr c

let weighted_torus rng rows cols ~w_max =
  if w_max < 1 then invalid_arg "Generators.weighted_torus: need w_max >= 1";
  let g = Graph.create (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      ignore (Graph.add_edge ~weight:(1 + Prng.int rng w_max) g (id r c) (id r ((c + 1) mod cols)));
      ignore (Graph.add_edge ~weight:(1 + Prng.int rng w_max) g (id r c) (id ((r + 1) mod rows) c))
    done
  done;
  g

let randomize_weights rng g ~w_max =
  if w_max < 1 then invalid_arg "Generators.randomize_weights: need w_max >= 1";
  let h = Graph.create (Graph.n g) in
  Graph.iter_edges g (fun u v ->
      ignore (Graph.add_edge ~weight:(1 + Prng.int rng w_max) h u v));
  h
