(** Packed adjacency-bitset view of a graph.

    Algorithm 1's support structure asks, for every edge and every extension,
    how many 2-detours a base [{u, z}] has — i.e. [|N(u) ∩ N(z)|].  Doing this
    with hash probes is O(Δ) per query; with one bitset row per node it is
    O(n/64) word operations, which makes the full support census feasible at
    benchmark sizes. *)

type t

val of_graph : Graph.t -> t
(** Build the packed adjacency matrix (O(n²/64) words). *)

val common_count : t -> int -> int -> int
(** [common_count b u z] is [|N(u) ∩ N(z)|] — the number of routers of
    2-detours with base [{u, z}] (paper Section 4, Figure 3). *)

val common_count_at_least : t -> int -> int -> int -> bool
(** [common_count_at_least b u z k]: early-exits once [k] common neighbors
    are found. *)

val mem : t -> int -> int -> bool
(** Adjacency test. *)
