(** Bit-parallel batched BFS: up to {!width} sources per sweep.

    The certification hot loops (stretch certificates, [Dc_check],
    all-pairs distances) run thousands of independent BFS traversals over
    the same read-only {!Csr.t} snapshot.  This kernel amortizes them: each
    node carries one machine word whose bit [j] means "source [j] has
    reached this node", so one level expansion serves every source in the
    batch with a single OR-scatter over the adjacency — the same 63-bits-
    per-word trick as {!Bitmat}.  A level costs [O(m + n)] word operations
    regardless of how many of the (up to 63) sources are active.

    Results are bit-identical to per-source {!Bfs.distances} /
    {!Bfs.distances_bounded}: BFS levels are hop distances and the kernel
    is deterministic, so row [j] of the output equals the scalar distance
    array of source [j] exactly (property-tested in [test_kernels]).

    Frontier/seen word arrays live in a per-domain scratch arena
    ({!Domain.DLS}), so repeated sweeps — e.g. one per batch of removed
    edges inside [Stretch.exact_parallel] — do not allocate them again.
    Observability: counters [bfs_batch.sweeps] (kernel invocations),
    [bfs_batch.words] (frontier/scatter word operations, batched into one
    add per sweep) and [bfs.scratch_reuses] (arena hits). *)

val width : int
(** Number of sources a single sweep can carry: the native word width,
    63 on 64-bit OCaml. *)

val run : ?bound:int -> Csr.t -> int array -> int array array
(** [run g sources] is the batched BFS from every source at once: row [j]
    is the hop-distance array from [sources.(j)] ([-1] where unreachable),
    exactly [Bfs.distances g sources.(j)].  With [~bound], expansion stops
    after [bound] levels and farther nodes report [-1], exactly
    [Bfs.distances_bounded].  Duplicate sources are allowed (their rows are
    equal).  Raises [Invalid_argument] if [Array.length sources > width]
    or a source is out of range. *)

val batches : int -> int array array
(** [batches n] splits the source range [0 .. n-1] into consecutive
    {!width}-sized slices — the canonical work units for feeding a full
    graph through {!run}, e.g. under [Parallel.map_range]. *)
