(* Delta-log graph over an immutable Bigarray CSR base.

   The committed edge set lives in [base] (a Csr_store.t); mutations are
   recorded in a small delta — [added] / [dels] keyed by normalized edge,
   plus per-node [adds] lists so added neighbors can be iterated — and the
   delta is replayed into a fresh base (an O(m) counting-sort rebuild) once
   it reaches half the base size.  The growth policy is geometric, so a
   build-by-add_edge of m edges costs O(m) total, while reads stay flat-array
   speed: a neighbor scan is the sorted base row (skipping deleted edges only
   when deletions exist) plus the node's few delta additions. *)

type csr = Csr_store.t = private {
  n : int;
  xadj : Csr_store.ba;
  adjncy : Csr_store.ba;
  weights : Csr_store.ba option;
}

type t = {
  mutable base : csr;  (* committed snapshot of the edge set *)
  added : (int, int) Hashtbl.t;  (* delta: edges present but not in base, with weight *)
  dels : (int, unit) Hashtbl.t;  (* delta: base edges currently absent *)
  adds : (int * int) list array;  (* delta: added (neighbor, weight), per node *)
  deg : int array;  (* maintained degrees *)
  mutable m : int;
  mutable weighted : bool;  (* monotone: some edge ever carried weight <> 1 *)
  mutable version : int;  (* bumped on every successful mutation *)
  mutable snap : (int * csr) option;  (* snapshot + the version it captured *)
}

type edge = int * int

let create size =
  if size < 0 then invalid_arg "Graph.create: negative size";
  {
    base = Csr_store.empty size;
    added = Hashtbl.create 16;
    dels = Hashtbl.create 16;
    adds = Array.make size [];
    deg = Array.make size 0;
    m = 0;
    weighted = false;
    version = 0;
    snap = None;
  }

let n g = Csr_store.n g.base

let m g = g.m

let check_node g v =
  if v < 0 || v >= n g then invalid_arg "Graph: node out of range"

(* Normalized edge key; n <= 10^7 keeps the product far below max_int. *)
let key g u v = if u < v then (u * n g) + v else (v * n g) + u

let mem_edge g u v =
  check_node g u;
  check_node g v;
  u <> v
  &&
  let k = key g u v in
  Hashtbl.mem g.added k
  || (Csr_store.mem g.base u v && not (Hashtbl.mem g.dels k))

let degree g v =
  check_node g v;
  g.deg.(v)

let iter_neighbors g v f =
  check_node g v;
  if Hashtbl.length g.dels = 0 then Csr_store.iter_row g.base v f
  else Csr_store.iter_row g.base v (fun u -> if not (Hashtbl.mem g.dels (key g u v)) then f u);
  List.iter (fun (u, _) -> f u) g.adds.(v)

let is_weighted g = g.weighted

let iter_neighbors_w g v f =
  check_node g v;
  if Hashtbl.length g.dels = 0 then Csr_store.iter_row_w g.base v f
  else
    Csr_store.iter_row_w g.base v (fun u w ->
        if not (Hashtbl.mem g.dels (key g u v)) then f u w);
  List.iter (fun (u, w) -> f u w) g.adds.(v)

let edge_weight g u v =
  check_node g u;
  check_node g v;
  if u = v then invalid_arg "Graph.edge_weight: no such edge";
  let k = key g u v in
  match Hashtbl.find_opt g.added k with
  | Some w -> w
  | None ->
      if Hashtbl.mem g.dels k || not (Csr_store.mem g.base u v) then
        invalid_arg "Graph.edge_weight: no such edge"
      else Csr_store.weight g.base u v

let neighbors g v =
  let acc = ref [] in
  iter_neighbors g v (fun u -> acc := u :: !acc);
  !acc

let fold_neighbors g v f init =
  check_node g v;
  let acc = ref init in
  iter_neighbors g v (fun u -> acc := f !acc u);
  !acc

let iter_edges g f =
  let no_dels = Hashtbl.length g.dels = 0 in
  for u = 0 to n g - 1 do
    Csr_store.iter_row g.base u (fun v ->
        if u < v && (no_dels || not (Hashtbl.mem g.dels (key g u v))) then f u v);
    List.iter (fun (v, _) -> if u < v then f u v) g.adds.(u)
  done

let iter_edges_w g f =
  let no_dels = Hashtbl.length g.dels = 0 in
  for u = 0 to n g - 1 do
    Csr_store.iter_row_w g.base u (fun v w ->
        if u < v && (no_dels || not (Hashtbl.mem g.dels (key g u v))) then f u v w);
    List.iter (fun (v, w) -> if u < v then f u v w) g.adds.(u)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  !acc

let edge_array g =
  let out = Array.make g.m (0, 0) in
  let i = ref 0 in
  iter_edges g (fun u v ->
      out.(!i) <- (u, v);
      incr i);
  out

(* CSR construction lives here (not in [Csr]) so that the cache slot inside
   [t] can name the snapshot type without a dependency cycle; [Csr] re-exports
   the record and the entry points. *)
let to_csr g =
  if g.weighted then
    Csr_store.of_weighted_stream ~m_hint:g.m ~n:(n g) (fun emit -> iter_edges_w g emit)
  else Csr_store.of_stream ~m_hint:g.m ~n:(n g) (fun emit -> iter_edges g emit)

(* Replay the delta into a fresh base.  Does not bump [version]: the edge set
   is unchanged, only its physical layout. *)
let commit g =
  if Hashtbl.length g.added > 0 || Hashtbl.length g.dels > 0 then begin
    g.base <- to_csr g;
    Hashtbl.reset g.added;
    Hashtbl.reset g.dels;
    Array.fill g.adds 0 (Array.length g.adds) []
  end

(* Commit once the delta reaches half the base: replay cost is O(m), and the
   base grows geometrically, so total replay work over any op sequence is
   O(total edges) amortized. *)
let maybe_commit g =
  let d = Hashtbl.length g.added + Hashtbl.length g.dels in
  if d >= 64 && 2 * d >= Csr_store.m g.base then commit g

let add_edge ?(weight = 1) g u v =
  check_node g u;
  check_node g v;
  if weight < 1 then invalid_arg "Graph.add_edge: weight must be positive";
  if u = v || mem_edge g u v then false
  else begin
    let k = key g u v in
    let record_delta () =
      Hashtbl.replace g.added k weight;
      g.adds.(u) <- (v, weight) :: g.adds.(u);
      g.adds.(v) <- (u, weight) :: g.adds.(v)
    in
    if Hashtbl.mem g.dels k then begin
      (* Resurrected base edge.  If the weight matches the base copy, just
         drop the deletion marker; otherwise keep the marker (the base copy
         stays hidden) and record the re-weighted edge in the delta. *)
      if weight = Csr_store.weight g.base u v then Hashtbl.remove g.dels k
      else record_delta ()
    end
    else record_delta ();
    g.deg.(u) <- g.deg.(u) + 1;
    g.deg.(v) <- g.deg.(v) + 1;
    g.m <- g.m + 1;
    if weight <> 1 then g.weighted <- true;
    g.version <- g.version + 1;
    maybe_commit g;
    true
  end

let remove_edge g u v =
  check_node g u;
  check_node g v;
  if u <> v && mem_edge g u v then begin
    let k = key g u v in
    if Hashtbl.mem g.added k then begin
      Hashtbl.remove g.added k;
      g.adds.(u) <- List.filter (fun (x, _) -> x <> v) g.adds.(u);
      g.adds.(v) <- List.filter (fun (x, _) -> x <> u) g.adds.(v)
    end
    else Hashtbl.replace g.dels k ();
    g.deg.(u) <- g.deg.(u) - 1;
    g.deg.(v) <- g.deg.(v) - 1;
    g.m <- g.m - 1;
    g.version <- g.version + 1;
    maybe_commit g;
    true
  end
  else false

(* the base and snapshot are immutable and version-tagged, so sharing them is
   safe: either copy mutating stops sharing the delta it changes *)
let copy g =
  {
    base = g.base;
    added = Hashtbl.copy g.added;
    dels = Hashtbl.copy g.dels;
    adds = Array.copy g.adds;
    deg = Array.copy g.deg;
    m = g.m;
    weighted = g.weighted;
    version = g.version;
    snap = g.snap;
  }

let of_edges size es =
  let g = create size in
  List.iter (fun (u, v) -> ignore (add_edge g u v)) es;
  g

let of_weighted_edges size es =
  let g = create size in
  List.iter (fun (u, v, w) -> ignore (add_edge ~weight:w g u v)) es;
  g

let of_csr c =
  let size = Csr_store.n c in
  let deg = Array.init size (fun v -> Csr_store.degree c v) in
  {
    base = c;
    added = Hashtbl.create 16;
    dels = Hashtbl.create 16;
    adds = Array.make size [];
    deg;
    m = Csr_store.m c;
    weighted = Csr_store.is_weighted c;
    version = 0;
    snap = Some (0, c);
  }

let empty_like g = create (n g)

let is_subgraph h ~of_:g =
  n h = n g
  &&
  let ok = ref true in
  iter_edges h (fun u v -> if not (mem_edge g u v) then ok := false);
  !ok

let max_degree g =
  let best = ref 0 in
  for v = 0 to n g - 1 do
    best := max !best (degree g v)
  done;
  !best

let min_degree g =
  if n g = 0 then 0
  else begin
    let best = ref max_int in
    for v = 0 to n g - 1 do
      best := min !best (degree g v)
    done;
    !best
  end

let is_regular g = n g = 0 || max_degree g = min_degree g

let isolate g v =
  check_node g v;
  let ns = neighbors g v in
  List.iter (fun u -> ignore (remove_edge g v u)) ns;
  List.length ns

let survivor g ~alive =
  if Array.length alive <> n g then invalid_arg "Graph.survivor: alive array size mismatch";
  let h = create (n g) in
  iter_edges_w g (fun u v w ->
      if alive.(u) && alive.(v) then ignore (add_edge ~weight:w h u v));
  h

let common_neighbors g u v =
  check_node g u;
  check_node g v;
  (* Scan the smaller neighborhood and probe the larger one. *)
  let u, v = if degree g u <= degree g v then (u, v) else (v, u) in
  fold_neighbors g u (fun acc x -> if mem_edge g v x then x :: acc else acc) []

let version g = g.version

let m_snapshot_hits = Metrics.counter "csr.snapshot_hits"
let m_snapshot_builds = Metrics.counter "csr.snapshot_builds"

let snapshot g =
  match g.snap with
  | Some (v, c) when v = g.version ->
      Metrics.incr m_snapshot_hits;
      c
  | _ ->
      Metrics.incr m_snapshot_builds;
      commit g;
      g.snap <- Some (g.version, g.base);
      g.base

let pp fmt g =
  Format.fprintf fmt "graph(n=%d, m=%d)" (n g) (m g);
  if n g <= 16 then
    for v = 0 to n g - 1 do
      let ns = List.sort compare (neighbors g v) in
      Format.fprintf fmt "@\n  %d: %s" v (String.concat " " (List.map string_of_int ns))
    done
