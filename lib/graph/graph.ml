type csr = { n : int; xadj : int array; adjncy : int array }

type t = {
  adj : (int, unit) Hashtbl.t array;
  mutable m : int;
  mutable version : int;  (* bumped on every successful mutation *)
  mutable snap : (int * csr) option;  (* snapshot + the version it captured *)
}

type edge = int * int

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { adj = Array.init n (fun _ -> Hashtbl.create 4); m = 0; version = 0; snap = None }

let n g = Array.length g.adj

let m g = g.m

let check_node g v =
  if v < 0 || v >= n g then invalid_arg "Graph: node out of range"

let mem_edge g u v =
  check_node g u;
  check_node g v;
  Hashtbl.mem g.adj.(u) v

let add_edge g u v =
  check_node g u;
  check_node g v;
  if u = v || Hashtbl.mem g.adj.(u) v then false
  else begin
    Hashtbl.replace g.adj.(u) v ();
    Hashtbl.replace g.adj.(v) u ();
    g.m <- g.m + 1;
    g.version <- g.version + 1;
    true
  end

let remove_edge g u v =
  check_node g u;
  check_node g v;
  if u <> v && Hashtbl.mem g.adj.(u) v then begin
    Hashtbl.remove g.adj.(u) v;
    Hashtbl.remove g.adj.(v) u;
    g.m <- g.m - 1;
    g.version <- g.version + 1;
    true
  end
  else false

let degree g v =
  check_node g v;
  Hashtbl.length g.adj.(v)

let iter_neighbors g v f =
  check_node g v;
  Hashtbl.iter (fun u () -> f u) g.adj.(v)

let neighbors g v =
  let acc = ref [] in
  iter_neighbors g v (fun u -> acc := u :: !acc);
  !acc

let fold_neighbors g v f init =
  check_node g v;
  Hashtbl.fold (fun u () acc -> f acc u) g.adj.(v) init

let iter_edges g f =
  for u = 0 to n g - 1 do
    Hashtbl.iter (fun v () -> if u < v then f u v) g.adj.(u)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  !acc

let edge_array g =
  let out = Array.make g.m (0, 0) in
  let i = ref 0 in
  iter_edges g (fun u v ->
      out.(!i) <- (u, v);
      incr i);
  out

(* the snapshot is immutable and version-tagged, so sharing it is safe:
   either copy mutating invalidates only its own tag *)
let copy g = { adj = Array.map Hashtbl.copy g.adj; m = g.m; version = g.version; snap = g.snap }

let of_edges size es =
  let g = create size in
  List.iter (fun (u, v) -> ignore (add_edge g u v)) es;
  g

let empty_like g = create (n g)

let is_subgraph h ~of_:g =
  n h = n g
  &&
  let ok = ref true in
  iter_edges h (fun u v -> if not (mem_edge g u v) then ok := false);
  !ok

let max_degree g =
  let best = ref 0 in
  for v = 0 to n g - 1 do
    best := max !best (degree g v)
  done;
  !best

let min_degree g =
  if n g = 0 then 0
  else begin
    let best = ref max_int in
    for v = 0 to n g - 1 do
      best := min !best (degree g v)
    done;
    !best
  end

let is_regular g = n g = 0 || max_degree g = min_degree g

let isolate g v =
  check_node g v;
  let ns = neighbors g v in
  List.iter (fun u -> ignore (remove_edge g v u)) ns;
  List.length ns

let survivor g ~alive =
  if Array.length alive <> n g then invalid_arg "Graph.survivor: alive array size mismatch";
  let h = create (n g) in
  iter_edges g (fun u v -> if alive.(u) && alive.(v) then ignore (add_edge h u v));
  h

let common_neighbors g u v =
  check_node g u;
  check_node g v;
  (* Scan the smaller adjacency set and probe the larger one. *)
  let u, v = if degree g u <= degree g v then (u, v) else (v, u) in
  fold_neighbors g u (fun acc x -> if Hashtbl.mem g.adj.(v) x then x :: acc else acc) []

let version g = g.version

(* CSR construction lives here (not in [Csr]) so that the cache slot inside
   [t] can name the snapshot type without a dependency cycle; [Csr] re-exports
   the record and both entry points. *)
let to_csr g =
  let size = n g in
  let xadj = Array.make (size + 1) 0 in
  for v = 0 to size - 1 do
    xadj.(v + 1) <- xadj.(v) + degree g v
  done;
  let adjncy = Array.make xadj.(size) 0 in
  for v = 0 to size - 1 do
    let pos = ref xadj.(v) in
    iter_neighbors g v (fun u ->
        adjncy.(!pos) <- u;
        incr pos);
    let lo = xadj.(v) and hi = xadj.(v + 1) in
    let slice = Array.sub adjncy lo (hi - lo) in
    Array.sort compare slice;
    Array.blit slice 0 adjncy lo (hi - lo)
  done;
  { n = size; xadj; adjncy }

let m_snapshot_hits = Metrics.counter "csr.snapshot_hits"
let m_snapshot_builds = Metrics.counter "csr.snapshot_builds"

let snapshot g =
  match g.snap with
  | Some (v, c) when v = g.version ->
      Metrics.incr m_snapshot_hits;
      c
  | _ ->
      Metrics.incr m_snapshot_builds;
      let c = to_csr g in
      g.snap <- Some (g.version, c);
      c

let pp fmt g =
  Format.fprintf fmt "graph(n=%d, m=%d)" (n g) (m g);
  if n g <= 16 then
    for v = 0 to n g - 1 do
      let ns = List.sort compare (neighbors g v) in
      Format.fprintf fmt "@\n  %d: %s" v (String.concat " " (List.map string_of_int ns))
    done
