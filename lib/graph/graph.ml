(* Delta-log graph over an immutable Bigarray CSR base.

   The committed edge set lives in [base] (a Csr_store.t); mutations are
   recorded in a small delta — [added] / [dels] keyed by normalized edge,
   plus per-node [adds] lists so added neighbors can be iterated — and the
   delta is replayed into a fresh base (an O(m) counting-sort rebuild) once
   it reaches half the base size.  The growth policy is geometric, so a
   build-by-add_edge of m edges costs O(m) total, while reads stay flat-array
   speed: a neighbor scan is the sorted base row (skipping deleted edges only
   when deletions exist) plus the node's few delta additions. *)

type csr = Csr_store.t = private { n : int; xadj : Csr_store.ba; adjncy : Csr_store.ba }

type t = {
  mutable base : csr;  (* committed snapshot of the edge set *)
  added : (int, unit) Hashtbl.t;  (* delta: edges present but not in base *)
  dels : (int, unit) Hashtbl.t;  (* delta: base edges currently absent *)
  adds : int list array;  (* delta: added neighbors, per node *)
  deg : int array;  (* maintained degrees *)
  mutable m : int;
  mutable version : int;  (* bumped on every successful mutation *)
  mutable snap : (int * csr) option;  (* snapshot + the version it captured *)
}

type edge = int * int

let create size =
  if size < 0 then invalid_arg "Graph.create: negative size";
  {
    base = Csr_store.empty size;
    added = Hashtbl.create 16;
    dels = Hashtbl.create 16;
    adds = Array.make size [];
    deg = Array.make size 0;
    m = 0;
    version = 0;
    snap = None;
  }

let n g = Csr_store.n g.base

let m g = g.m

let check_node g v =
  if v < 0 || v >= n g then invalid_arg "Graph: node out of range"

(* Normalized edge key; n <= 10^7 keeps the product far below max_int. *)
let key g u v = if u < v then (u * n g) + v else (v * n g) + u

let mem_edge g u v =
  check_node g u;
  check_node g v;
  u <> v
  &&
  let k = key g u v in
  Hashtbl.mem g.added k
  || (Csr_store.mem g.base u v && not (Hashtbl.mem g.dels k))

let degree g v =
  check_node g v;
  g.deg.(v)

let iter_neighbors g v f =
  check_node g v;
  if Hashtbl.length g.dels = 0 then Csr_store.iter_row g.base v f
  else Csr_store.iter_row g.base v (fun u -> if not (Hashtbl.mem g.dels (key g u v)) then f u);
  List.iter f g.adds.(v)

let neighbors g v =
  let acc = ref [] in
  iter_neighbors g v (fun u -> acc := u :: !acc);
  !acc

let fold_neighbors g v f init =
  check_node g v;
  let acc = ref init in
  iter_neighbors g v (fun u -> acc := f !acc u);
  !acc

let iter_edges g f =
  let no_dels = Hashtbl.length g.dels = 0 in
  for u = 0 to n g - 1 do
    Csr_store.iter_row g.base u (fun v ->
        if u < v && (no_dels || not (Hashtbl.mem g.dels (key g u v))) then f u v);
    List.iter (fun v -> if u < v then f u v) g.adds.(u)
  done

let edges g =
  let acc = ref [] in
  iter_edges g (fun u v -> acc := (u, v) :: !acc);
  !acc

let edge_array g =
  let out = Array.make g.m (0, 0) in
  let i = ref 0 in
  iter_edges g (fun u v ->
      out.(!i) <- (u, v);
      incr i);
  out

(* CSR construction lives here (not in [Csr]) so that the cache slot inside
   [t] can name the snapshot type without a dependency cycle; [Csr] re-exports
   the record and the entry points. *)
let to_csr g = Csr_store.of_stream ~m_hint:g.m ~n:(n g) (fun emit -> iter_edges g emit)

(* Replay the delta into a fresh base.  Does not bump [version]: the edge set
   is unchanged, only its physical layout. *)
let commit g =
  if Hashtbl.length g.added > 0 || Hashtbl.length g.dels > 0 then begin
    g.base <- to_csr g;
    Hashtbl.reset g.added;
    Hashtbl.reset g.dels;
    Array.fill g.adds 0 (Array.length g.adds) []
  end

(* Commit once the delta reaches half the base: replay cost is O(m), and the
   base grows geometrically, so total replay work over any op sequence is
   O(total edges) amortized. *)
let maybe_commit g =
  let d = Hashtbl.length g.added + Hashtbl.length g.dels in
  if d >= 64 && 2 * d >= Csr_store.m g.base then commit g

let add_edge g u v =
  check_node g u;
  check_node g v;
  if u = v || mem_edge g u v then false
  else begin
    let k = key g u v in
    if Hashtbl.mem g.dels k then Hashtbl.remove g.dels k (* resurrected base edge *)
    else begin
      Hashtbl.replace g.added k ();
      g.adds.(u) <- v :: g.adds.(u);
      g.adds.(v) <- u :: g.adds.(v)
    end;
    g.deg.(u) <- g.deg.(u) + 1;
    g.deg.(v) <- g.deg.(v) + 1;
    g.m <- g.m + 1;
    g.version <- g.version + 1;
    maybe_commit g;
    true
  end

let remove_edge g u v =
  check_node g u;
  check_node g v;
  if u <> v && mem_edge g u v then begin
    let k = key g u v in
    if Hashtbl.mem g.added k then begin
      Hashtbl.remove g.added k;
      g.adds.(u) <- List.filter (fun x -> x <> v) g.adds.(u);
      g.adds.(v) <- List.filter (fun x -> x <> u) g.adds.(v)
    end
    else Hashtbl.replace g.dels k ();
    g.deg.(u) <- g.deg.(u) - 1;
    g.deg.(v) <- g.deg.(v) - 1;
    g.m <- g.m - 1;
    g.version <- g.version + 1;
    maybe_commit g;
    true
  end
  else false

(* the base and snapshot are immutable and version-tagged, so sharing them is
   safe: either copy mutating stops sharing the delta it changes *)
let copy g =
  {
    base = g.base;
    added = Hashtbl.copy g.added;
    dels = Hashtbl.copy g.dels;
    adds = Array.copy g.adds;
    deg = Array.copy g.deg;
    m = g.m;
    version = g.version;
    snap = g.snap;
  }

let of_edges size es =
  let g = create size in
  List.iter (fun (u, v) -> ignore (add_edge g u v)) es;
  g

let of_csr c =
  let size = Csr_store.n c in
  let deg = Array.init size (fun v -> Csr_store.degree c v) in
  {
    base = c;
    added = Hashtbl.create 16;
    dels = Hashtbl.create 16;
    adds = Array.make size [];
    deg;
    m = Csr_store.m c;
    version = 0;
    snap = Some (0, c);
  }

let empty_like g = create (n g)

let is_subgraph h ~of_:g =
  n h = n g
  &&
  let ok = ref true in
  iter_edges h (fun u v -> if not (mem_edge g u v) then ok := false);
  !ok

let max_degree g =
  let best = ref 0 in
  for v = 0 to n g - 1 do
    best := max !best (degree g v)
  done;
  !best

let min_degree g =
  if n g = 0 then 0
  else begin
    let best = ref max_int in
    for v = 0 to n g - 1 do
      best := min !best (degree g v)
    done;
    !best
  end

let is_regular g = n g = 0 || max_degree g = min_degree g

let isolate g v =
  check_node g v;
  let ns = neighbors g v in
  List.iter (fun u -> ignore (remove_edge g v u)) ns;
  List.length ns

let survivor g ~alive =
  if Array.length alive <> n g then invalid_arg "Graph.survivor: alive array size mismatch";
  let h = create (n g) in
  iter_edges g (fun u v -> if alive.(u) && alive.(v) then ignore (add_edge h u v));
  h

let common_neighbors g u v =
  check_node g u;
  check_node g v;
  (* Scan the smaller neighborhood and probe the larger one. *)
  let u, v = if degree g u <= degree g v then (u, v) else (v, u) in
  fold_neighbors g u (fun acc x -> if mem_edge g v x then x :: acc else acc) []

let version g = g.version

let m_snapshot_hits = Metrics.counter "csr.snapshot_hits"
let m_snapshot_builds = Metrics.counter "csr.snapshot_builds"

let snapshot g =
  match g.snap with
  | Some (v, c) when v = g.version ->
      Metrics.incr m_snapshot_hits;
      c
  | _ ->
      Metrics.incr m_snapshot_builds;
      commit g;
      g.snap <- Some (g.version, g.base);
      g.base

let pp fmt g =
  Format.fprintf fmt "graph(n=%d, m=%d)" (n g) (m g);
  if n g <= 16 then
    for v = 0 to n g - 1 do
      let ns = List.sort compare (neighbors g v) in
      Format.fprintf fmt "@\n  %d: %s" v (String.concat " " (List.map string_of_int ns))
    done
