(** Simple undirected graphs on nodes [0 .. n-1].

    This is the central mutable representation used while *constructing*
    graphs and spanners.  Storage is a delta log over an immutable
    Bigarray-backed CSR base ({!Csr_store.t}): reads scan the flat base rows
    plus a small per-node delta, and mutations are O(1) amortized — once the
    delta reaches half the base size it is replayed into a fresh base by an
    O(m) counting-sort rebuild.  Algorithms that only traverse a fixed graph
    should take a {!Csr.t} snapshot (see {!snapshot}) for zero-overhead
    iteration.

    Edges are unordered pairs of distinct nodes; self-loops and parallel edges
    are rejected/ignored.  In printed form and in edge lists, an edge is
    normalized as [(u, v)] with [u < v]. *)

type t

type csr = Csr_store.t = private {
  n : int;  (** number of nodes *)
  xadj : Csr_store.ba;  (** offsets: neighbors of [v] live at [xadj.{v} .. xadj.{v+1} - 1] *)
  adjncy : Csr_store.ba;  (** concatenated neighbor lists, sorted ascending per node *)
  weights : Csr_store.ba option;
      (** per-arc positive weights aligned with [adjncy]; [None] = all 1 *)
}
(** Immutable compressed-sparse-row snapshot of a graph.  {!Csr.t} is an alias
    of this type; the traversal helpers live there. *)

type edge = int * int
(** Normalized edge: [(u, v)] with [u < v]. *)

val create : int -> t
(** [create n] is the empty graph on [n] nodes. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of edges. *)

val add_edge : ?weight:int -> t -> int -> int -> bool
(** [add_edge g u v] inserts the edge; returns [false] if it already existed
    or [u = v].  Raises [Invalid_argument] if an endpoint is out of range or
    [weight < 1].  [weight] defaults to [1]; passing any weight [<> 1] makes
    the graph weighted (see {!is_weighted}) — a graph whose edges all carry
    weight 1 is indistinguishable from, and treated as, an unweighted one. *)

val remove_edge : t -> int -> int -> bool
(** [remove_edge g u v] deletes the edge; returns [false] if absent. *)

val mem_edge : t -> int -> int -> bool
(** Edge membership test. *)

val degree : t -> int -> int
(** Number of neighbors of a node. *)

val neighbors : t -> int -> int list
(** Neighbor list of a node (unspecified order). *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Iterate over neighbors without materializing a list. *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** Fold over neighbors. *)

val edges : t -> edge list
(** All edges, normalized, in unspecified order. *)

val edge_array : t -> edge array
(** All edges as an array (normalized; unspecified order). *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate each edge exactly once as [(u, v)] with [u < v]. *)

val is_weighted : t -> bool
(** Whether some edge carries a weight [<> 1].  Monotone over the life of the
    graph (conservatively stays [true] even if all such edges are removed).
    This flag is the kernel dispatch rule: unweighted graphs take the
    bit-parallel MS-BFS certification path, weighted ones the Dijkstra /
    bounded Bellman–Ford path. *)

val edge_weight : t -> int -> int -> int
(** Weight of an edge ([1] on unweighted graphs).  Raises [Invalid_argument]
    if the edge is absent. *)

val iter_neighbors_w : t -> int -> (int -> int -> unit) -> unit
(** Like {!iter_neighbors} but passing each edge's weight. *)

val iter_edges_w : t -> (int -> int -> int -> unit) -> unit
(** Like {!iter_edges} but passing each edge's weight. *)

val copy : t -> t
(** Deep copy. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n es] builds a graph on [n] nodes from an edge list (duplicates
    and self-loops ignored). *)

val of_weighted_edges : int -> (int * int * int) list -> t
(** [of_weighted_edges n es] builds a graph from [(u, v, w)] triples via
    [add_edge ~weight:w] (duplicates keep their first weight). *)

val of_csr : csr -> t
(** [of_csr c] adopts a CSR store as the committed base of a new graph in
    O(n): no edges are copied, the delta starts empty, and the store is also
    installed as the cached {!snapshot}.  This is the bridge from streaming
    builders ({!Csr_store.of_stream}, {!Generators.expander}) into the mutable
    API. *)

val empty_like : t -> t
(** Graph with the same node set and no edges. *)

val is_subgraph : t -> of_:t -> bool
(** [is_subgraph h ~of_:g] checks [V(h) = V(g)] and [E(h) ⊆ E(g)] — the
    spanner well-formedness condition of the paper (Section 2). *)

val max_degree : t -> int
(** Largest node degree ([0] for the empty graph). *)

val min_degree : t -> int
(** Smallest node degree ([0] for the empty graph on ≥ 1 node). *)

val is_regular : t -> bool
(** Whether all nodes have equal degree. *)

val isolate : t -> int -> int
(** [isolate g v] removes every edge incident to [v] (the graph-side effect
    of a node failure: the node set is fixed, a failed node just loses its
    links).  Returns the number of edges removed. *)

val survivor : t -> alive:bool array -> t
(** [survivor g ~alive] is the subgraph on the same node set keeping exactly
    the edges whose two endpoints are alive.  Raises [Invalid_argument] if
    [alive] is not of length [n g]. *)

val common_neighbors : t -> int -> int -> int list
(** [common_neighbors g u v] lists nodes adjacent to both [u] and [v]; these
    are exactly the routers of 2-detours with base [{u, v}] (Section 4). *)

val version : t -> int
(** Mutation counter: incremented by every {!add_edge} / {!remove_edge} (and
    hence {!isolate}) that actually changes the edge set.  Two reads returning
    the same value bracket a window in which the graph was not mutated. *)

val to_csr : t -> csr
(** Build a fresh CSR snapshot, bypassing the cache (= {!Csr.of_graph}).
    Neighbor lists are sorted ascending, so the snapshot is canonical for a
    given edge set. *)

val snapshot : t -> csr
(** The memoized CSR snapshot: rebuilt only when {!version} has moved since
    the previous call, otherwise the cached (physically equal) snapshot is
    returned.  Taking a snapshot commits any outstanding delta into the base,
    so the returned store doubles as the graph's primary storage until the
    next mutation.  Cache behavior is observable through the
    [csr.snapshot_hits] / [csr.snapshot_builds] metrics.  The result is
    immutable and remains valid after further mutations (they simply stop
    sharing). *)

val pp : Format.formatter -> t -> unit
(** Debug printer: node/edge counts and adjacency of small graphs. *)
