(** Connected-component queries. *)

val components : Graph.t -> int array
(** [components g] labels each node with a component id in [0 ..].  Ids are
    assigned in order of first appearance by node index. *)

val count : Graph.t -> int
(** Number of connected components ([0] for the empty node set). *)

val is_connected : Graph.t -> bool
(** Whether the graph has exactly one component (vacuously true on 0 or 1
    nodes). *)

val repair : Graph.t -> within:Graph.t -> int
(** [repair h ~within:g] adds edges of [g] to [h] until [h] has as few
    components as possible given [g]'s topology (one per [g]-component).
    Greedy: scans [g]'s edges and keeps those that merge [h]-components.
    Returns the number of edges added.  Used by the [5]-substitute sparsifier
    (DESIGN.md §3.3) whose uniform sampling may disconnect a few nodes. *)
