(** Plain-text graph serialization.

    Format (one graph per file):
    {v
    # optional comment lines
    n <nodes> <edges>
    <u> <v> [<w>]
    ...
    v}
    Edges are written normalized ([u < v]), one per line.  A third field, when
    present, is the edge's positive integer weight; weighted graphs
    ({!Graph.is_weighted}) are written with it, unweighted graphs without, and
    an omitted weight reads back as 1, so unweighted files round-trip
    byte-for-byte.  [read] accepts any whitespace separation, ignores blank
    and [#]-comment lines, deduplicates edges, rejects self-loops and
    out-of-range endpoints, and rejects zero or negative weights
    ({!Io_error.Parse_error} with the file and line).

    This lets the CLI operate on externally produced graphs and makes spanner
    outputs inspectable with standard tools. *)

val write : Graph.t -> string -> unit
(** [write g path] serializes [g] to [path] (overwrites). *)

val read : string -> Graph.t
(** [read path] parses a graph.  Raises {!Io_error.Parse_error} carrying the
    path and 1-based line number on malformed input. *)

val to_channel : Graph.t -> out_channel -> unit
(** Serialize to an open channel (used by [write] and tests). *)

val of_channel : ?file:string -> in_channel -> Graph.t
(** Parse from an open channel.  [file] (default ["<channel>"]) is the name
    reported in {!Io_error.Parse_error}. *)
