(** Expander mixing lemma verification (paper Lemma 3, after [1, 15]).

    For a Δ-regular graph with spectral expansion λ and any node sets S, T:
    [|e(S,T) − (Δ/n)·|S|·|T|| ≤ λ·√(|S|·|T|)].

    Lemma 4's neighborhood-matching bound — the engine of Theorem 2 — is a
    direct corollary, so the harness verifies the mixing inequality
    empirically on the same graphs it builds spanners from.  We sample
    disjoint pairs [S, T], count crossing edges exactly, and report the worst
    discrepancy as a fraction of the λ·√(|S||T|) allowance (≤ 1 means the
    lemma holds on every sample). *)

type report = {
  trials : int;
  worst_ratio : float;
      (** max over samples of [|e(S,T) − Δ|S||T|/n| / (λ√(|S||T|))] *)
  violations : int;  (** samples with ratio > 1 *)
}

val e_between : Csr.t -> int array -> int array -> int
(** [e_between g s t] counts edges with one endpoint in [s] and the other in
    [t] (the sets are expected disjoint; edges inside either set are not
    counted). *)

val check : ?trials:int -> Prng.t -> Csr.t -> lambda:float -> report
(** Sample [trials] (default 50) random disjoint set pairs of varied sizes
    and evaluate the mixing inequality with the given (measured) [λ]. *)
