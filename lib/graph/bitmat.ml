type t = { words : int; rows : int array array }

let of_graph g =
  let n = Graph.n g in
  let words = (n + 62) / 63 in
  let rows = Array.init n (fun _ -> Array.make words 0) in
  let set u v =
    (* SAFETY: Graph.iter_edges only yields endpoints in [0, n), so u indexes
       rows (length n) and v / 63 < (n + 62) / 63 = words (row length). *)
    let r = Array.unsafe_get rows u in
    Array.unsafe_set r (v / 63) (Array.unsafe_get r (v / 63) lor (1 lsl (v mod 63)))
  in
  Graph.iter_edges g (fun u v ->
      set u v;
      set v u);
  { words; rows }

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let common_count t u z =
  (* the checked row lookups validate u and z; the word loop below stays
     within both rows, which [of_graph] allocated with [t.words] entries *)
  let ru = t.rows.(u) and rz = t.rows.(z) in
  let acc = ref 0 in
  for i = 0 to t.words - 1 do
    (* SAFETY: i < t.words = length of every row. *)
    acc := !acc + popcount (Array.unsafe_get ru i land Array.unsafe_get rz i)
  done;
  !acc

let common_count_at_least t u z k =
  if k <= 0 then true
  else begin
    (* checked row lookups validate u and z, as in [common_count] *)
    let ru = t.rows.(u) and rz = t.rows.(z) in
    let acc = ref 0 in
    let i = ref 0 in
    while !acc < k && !i < t.words do
      (* SAFETY: !i < t.words = length of every row. *)
      acc := !acc + popcount (Array.unsafe_get ru !i land Array.unsafe_get rz !i);
      incr i
    done;
    !acc >= k
  end

let mem t u v = t.rows.(u).(v / 63) land (1 lsl (v mod 63)) <> 0
