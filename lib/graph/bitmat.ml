type t = { words : int; rows : int array array }

let of_graph g =
  let n = Graph.n g in
  let words = (n + 62) / 63 in
  let rows = Array.init n (fun _ -> Array.make words 0) in
  Graph.iter_edges g (fun u v ->
      rows.(u).(v / 63) <- rows.(u).(v / 63) lor (1 lsl (v mod 63));
      rows.(v).(u / 63) <- rows.(v).(u / 63) lor (1 lsl (u mod 63)));
  { words; rows }

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let common_count t u z =
  let ru = t.rows.(u) and rz = t.rows.(z) in
  let acc = ref 0 in
  for i = 0 to t.words - 1 do
    acc := !acc + popcount (ru.(i) land rz.(i))
  done;
  !acc

let common_count_at_least t u z k =
  if k <= 0 then true
  else begin
    let ru = t.rows.(u) and rz = t.rows.(z) in
    let acc = ref 0 in
    let i = ref 0 in
    while !acc < k && !i < t.words do
      acc := !acc + popcount (ru.(!i) land rz.(!i));
      incr i
    done;
    !acc >= k
  end

let mem t u v = t.rows.(u).(v / 63) land (1 lsl (v mod 63)) <> 0
