(* Flat Bigarray-backed CSR storage: the primary representation behind both
   [Graph.t] snapshots and [Csr.t].  The int arrays live outside the OCaml
   heap, so a 10^6-node graph costs exactly (n + 1) + 2m words and never
   contributes to GC marking time. *)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { n : int; xadj : ba; adjncy : ba; weights : ba option }

let make_ba len : ba = Bigarray.Array1.create Bigarray.Int Bigarray.c_layout len

let empty size =
  if size < 0 then invalid_arg "Csr_store.empty: negative size";
  let xadj = make_ba (size + 1) in
  Bigarray.Array1.fill xadj 0;
  { n = size; xadj; adjncy = make_ba 0; weights = None }

let is_weighted t = t.weights <> None

let n t = t.n

let arcs t = Bigarray.Array1.dim t.adjncy

let m t = arcs t / 2

let degree t v = t.xadj.{v + 1} - t.xadj.{v}

let check_node t v =
  if v < 0 || v >= t.n then invalid_arg "Csr_store: node out of range"

let iter_row t v f =
  check_node t v;
  (* SAFETY: v is range-checked above, xadj has n+1 entries, and every xadj
     value is bounded by dim adjncy by construction, so all indices below are
     in range. *)
  let lo = Bigarray.Array1.unsafe_get t.xadj v
  and hi = Bigarray.Array1.unsafe_get t.xadj (v + 1) in
  for i = lo to hi - 1 do
    f (Bigarray.Array1.unsafe_get t.adjncy i)
  done

let fold_row t v f init =
  check_node t v;
  let acc = ref init in
  iter_row t v (fun u -> acc := f !acc u);
  !acc

(* Binary search for v in u's sorted row; index into adjncy, or -1. *)
let find_arc t u v =
  check_node t u;
  check_node t v;
  let lo = ref t.xadj.{u} and hi = ref (t.xadj.{u + 1} - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    (* SAFETY: xadj.{u} <= lo <= mid <= hi < xadj.{u+1} <= dim adjncy, by the
       CSR construction invariant; rows are sorted ascending so the binary
       search is well-founded. *)
    let x = Bigarray.Array1.unsafe_get t.adjncy mid in
    if x = v then found := mid else if x < v then lo := mid + 1 else hi := mid - 1
  done;
  !found

let mem t u v = find_arc t u v >= 0

let weight t u v =
  let i = find_arc t u v in
  if i < 0 then invalid_arg "Csr_store.weight: no such edge";
  match t.weights with None -> 1 | Some w -> w.{i}

let iter_row_w t v f =
  check_node t v;
  (* SAFETY: v is range-checked above; xadj bounds index adjncy and the
     weights array has dim adjncy by construction. *)
  let lo = Bigarray.Array1.unsafe_get t.xadj v
  and hi = Bigarray.Array1.unsafe_get t.xadj (v + 1) in
  (match t.weights with
  | None ->
      (* SAFETY: lo .. hi - 1 index adjncy as established above. *)
      for i = lo to hi - 1 do
        f (Bigarray.Array1.unsafe_get t.adjncy i) 1
      done
  | Some w ->
      (* SAFETY: lo .. hi - 1 index adjncy, and w has dim adjncy. *)
      for i = lo to hi - 1 do
        f (Bigarray.Array1.unsafe_get t.adjncy i) (Bigarray.Array1.unsafe_get w i)
      done)

(* O(m) construction by counting sort.  The stream pushes each undirected edge
   once; both arcs are recorded, arcs are grouped by destination with one
   counting sort, and a transpose scatter (destinations visited in ascending
   order) emits every row already sorted.  Duplicate edges land adjacently in
   their row and are dropped on the spot; self-loops are dropped at push. *)
let of_stream ?m_hint ~n:size emit_edges =
  if size < 0 then invalid_arg "Csr_store.of_stream: negative size";
  let cap = ref (max 64 (match m_hint with Some h -> 2 * h | None -> 64)) in
  let src = ref (make_ba !cap) and dst = ref (make_ba !cap) in
  let len = ref 0 in
  let grow () =
    let c = 2 * !cap in
    let s = make_ba c and d = make_ba c in
    Bigarray.Array1.blit !src (Bigarray.Array1.sub s 0 !cap);
    Bigarray.Array1.blit !dst (Bigarray.Array1.sub d 0 !cap);
    src := s;
    dst := d;
    cap := c
  in
  let push u v =
    if !len = !cap then grow ();
    (* SAFETY: len < cap = dim of both scratch arrays, ensured just above. *)
    Bigarray.Array1.unsafe_set !src !len u;
    Bigarray.Array1.unsafe_set !dst !len v;
    incr len
  in
  let emit u v =
    if u < 0 || u >= size || v < 0 || v >= size then
      invalid_arg "Csr_store.of_stream: node out of range";
    if u <> v then begin
      push u v;
      push v u
    end
  in
  emit_edges emit;
  let na = !len in
  let src = !src and dst = !dst in
  (* Counting sort of the arcs by destination: start.{d} = first index of the
     dst-group d in by_src. *)
  let start = make_ba (size + 1) in
  Bigarray.Array1.fill start 0;
  for i = 0 to na - 1 do
    (* SAFETY: i < na = number of pushed arcs <= dim src/dst, and every pushed
       endpoint was range-checked in emit, so dst values index start. *)
    let d = Bigarray.Array1.unsafe_get dst i in
    Bigarray.Array1.unsafe_set start (d + 1) (Bigarray.Array1.unsafe_get start (d + 1) + 1)
  done;
  for d = 1 to size do
    start.{d} <- start.{d} + start.{d - 1}
  done;
  let by_src = make_ba na in
  let pos = make_ba (max size 1) in
  if size > 0 then Bigarray.Array1.blit (Bigarray.Array1.sub start 0 size) pos;
  for i = 0 to na - 1 do
    (* SAFETY: same bounds as the counting pass; pos.{d} walks the half-open
       dst-group [start.{d}, start.{d+1}) and so stays below na. *)
    let d = Bigarray.Array1.unsafe_get dst i in
    let p = Bigarray.Array1.unsafe_get pos d in
    Bigarray.Array1.unsafe_set by_src p (Bigarray.Array1.unsafe_get src i);
    Bigarray.Array1.unsafe_set pos d (p + 1)
  done;
  (* Row offsets from raw (pre-dedup) source degrees. *)
  let xadj = make_ba (size + 1) in
  Bigarray.Array1.fill xadj 0;
  for i = 0 to na - 1 do
    let s = by_src.{i} in
    xadj.{s + 1} <- xadj.{s + 1} + 1
  done;
  for v = 1 to size do
    xadj.{v} <- xadj.{v} + xadj.{v - 1}
  done;
  (* Transpose scatter: visiting destinations in ascending order appends each
     row's neighbors in sorted order, so a duplicate edge is always adjacent
     to its first copy and can be dropped with one comparison. *)
  let adjncy = make_ba na in
  let next = make_ba (max size 1) in
  if size > 0 then Bigarray.Array1.blit (Bigarray.Array1.sub xadj 0 size) next;
  let dropped = ref 0 in
  for d = 0 to size - 1 do
    for i = start.{d} to start.{d + 1} - 1 do
      (* SAFETY: i ranges over the dst-group of d, so i < na; s was
         range-checked in emit; next.{s} walks [xadj.{s}, xadj.{s+1}) and so
         stays below na. *)
      let s = Bigarray.Array1.unsafe_get by_src i in
      let p = Bigarray.Array1.unsafe_get next s in
      if p > Bigarray.Array1.unsafe_get xadj s && Bigarray.Array1.unsafe_get adjncy (p - 1) = d
      then incr dropped
      else begin
        Bigarray.Array1.unsafe_set adjncy p d;
        Bigarray.Array1.unsafe_set next s (p + 1)
      end
    done
  done;
  if !dropped = 0 then { n = size; xadj; adjncy; weights = None }
  else begin
    (* Some rows shrank: compact them left and rebuild the offsets. *)
    let xadj2 = make_ba (size + 1) in
    let adjncy2 = make_ba (na - !dropped) in
    xadj2.{0} <- 0;
    for v = 0 to size - 1 do
      let lo = xadj.{v} and hi = next.{v} in
      let o = xadj2.{v} in
      for i = lo to hi - 1 do
        adjncy2.{o + i - lo} <- adjncy.{i}
      done;
      xadj2.{v + 1} <- o + (hi - lo)
    done;
    { n = size; xadj = xadj2; adjncy = adjncy2; weights = None }
  end

(* Weighted variant of [of_stream]: the same counting-sort/transpose-scatter
   pipeline with one extra word per arc carried alongside.  Both arcs of an
   edge record the same weight, so the min-wins dedup below is symmetric and
   the resulting store stays canonical for a given weighted edge set. *)
let of_weighted_stream ?m_hint ~n:size emit_edges =
  if size < 0 then invalid_arg "Csr_store.of_weighted_stream: negative size";
  let cap = ref (max 64 (match m_hint with Some h -> 2 * h | None -> 64)) in
  let src = ref (make_ba !cap) and dst = ref (make_ba !cap) and wgt = ref (make_ba !cap) in
  let len = ref 0 in
  let grow () =
    let c = 2 * !cap in
    let s = make_ba c and d = make_ba c and w = make_ba c in
    Bigarray.Array1.blit !src (Bigarray.Array1.sub s 0 !cap);
    Bigarray.Array1.blit !dst (Bigarray.Array1.sub d 0 !cap);
    Bigarray.Array1.blit !wgt (Bigarray.Array1.sub w 0 !cap);
    src := s;
    dst := d;
    wgt := w;
    cap := c
  in
  let push u v w =
    if !len = !cap then grow ();
    (* SAFETY: len < cap = dim of all three scratch arrays, ensured above. *)
    Bigarray.Array1.unsafe_set !src !len u;
    Bigarray.Array1.unsafe_set !dst !len v;
    Bigarray.Array1.unsafe_set !wgt !len w;
    incr len
  in
  let emit u v w =
    if u < 0 || u >= size || v < 0 || v >= size then
      invalid_arg "Csr_store.of_weighted_stream: node out of range";
    if w < 1 then invalid_arg "Csr_store.of_weighted_stream: weight must be positive";
    if u <> v then begin
      push u v w;
      push v u w
    end
  in
  emit_edges emit;
  let na = !len in
  let src = !src and dst = !dst and wgt = !wgt in
  let start = make_ba (size + 1) in
  Bigarray.Array1.fill start 0;
  for i = 0 to na - 1 do
    (* SAFETY: i < na = number of pushed arcs <= dim src/dst/wgt, and every
       pushed endpoint was range-checked in emit, so dst values index start. *)
    let d = Bigarray.Array1.unsafe_get dst i in
    Bigarray.Array1.unsafe_set start (d + 1) (Bigarray.Array1.unsafe_get start (d + 1) + 1)
  done;
  for d = 1 to size do
    start.{d} <- start.{d} + start.{d - 1}
  done;
  let by_src = make_ba na and by_w = make_ba na in
  let pos = make_ba (max size 1) in
  if size > 0 then Bigarray.Array1.blit (Bigarray.Array1.sub start 0 size) pos;
  for i = 0 to na - 1 do
    (* SAFETY: same bounds as the counting pass; pos.{d} walks the half-open
       dst-group [start.{d}, start.{d+1}) and so stays below na. *)
    let d = Bigarray.Array1.unsafe_get dst i in
    let p = Bigarray.Array1.unsafe_get pos d in
    Bigarray.Array1.unsafe_set by_src p (Bigarray.Array1.unsafe_get src i);
    Bigarray.Array1.unsafe_set by_w p (Bigarray.Array1.unsafe_get wgt i);
    Bigarray.Array1.unsafe_set pos d (p + 1)
  done;
  let xadj = make_ba (size + 1) in
  Bigarray.Array1.fill xadj 0;
  for i = 0 to na - 1 do
    let s = by_src.{i} in
    xadj.{s + 1} <- xadj.{s + 1} + 1
  done;
  for v = 1 to size do
    xadj.{v} <- xadj.{v} + xadj.{v - 1}
  done;
  let adjncy = make_ba na and weights = make_ba na in
  let next = make_ba (max size 1) in
  if size > 0 then Bigarray.Array1.blit (Bigarray.Array1.sub xadj 0 size) next;
  let dropped = ref 0 in
  for d = 0 to size - 1 do
    for i = start.{d} to start.{d + 1} - 1 do
      (* SAFETY: i ranges over the dst-group of d, so i < na; s was
         range-checked in emit; next.{s} walks [xadj.{s}, xadj.{s+1}) and so
         stays below na; weights has dim na. *)
      let s = Bigarray.Array1.unsafe_get by_src i in
      let w = Bigarray.Array1.unsafe_get by_w i in
      let p = Bigarray.Array1.unsafe_get next s in
      if p > Bigarray.Array1.unsafe_get xadj s && Bigarray.Array1.unsafe_get adjncy (p - 1) = d
      then begin
        (* Duplicate weighted edge: the lightest parallel copy wins.
           SAFETY: xadj.{s} < p <= next bound established above, and
           weights has dim na, so p - 1 is in range for both arrays. *)
        incr dropped;
        if w < Bigarray.Array1.unsafe_get weights (p - 1) then
          Bigarray.Array1.unsafe_set weights (p - 1) w
      end
      else begin
        (* SAFETY: p walks [xadj.{s}, xadj.{s+1}) and so stays below na =
           dim adjncy = dim weights; s < size = dim next. *)
        Bigarray.Array1.unsafe_set adjncy p d;
        Bigarray.Array1.unsafe_set weights p w;
        Bigarray.Array1.unsafe_set next s (p + 1)
      end
    done
  done;
  if !dropped = 0 then { n = size; xadj; adjncy; weights = Some weights }
  else begin
    let xadj2 = make_ba (size + 1) in
    let adjncy2 = make_ba (na - !dropped) in
    let weights2 = make_ba (na - !dropped) in
    xadj2.{0} <- 0;
    for v = 0 to size - 1 do
      let lo = xadj.{v} and hi = next.{v} in
      let o = xadj2.{v} in
      for i = lo to hi - 1 do
        adjncy2.{o + i - lo} <- adjncy.{i};
        weights2.{o + i - lo} <- weights.{i}
      done;
      xadj2.{v + 1} <- o + (hi - lo)
    done;
    { n = size; xadj = xadj2; adjncy = adjncy2; weights = Some weights2 }
  end

let iter_edges t f =
  for u = 0 to t.n - 1 do
    iter_row t u (fun v -> if u < v then f u v)
  done

let iter_edges_w t f =
  for u = 0 to t.n - 1 do
    iter_row_w t u (fun v w -> if u < v then f u v w)
  done
