let width = Sys.int_size (* 63 usable bits per native word on 64-bit *)

let m_sweeps = Metrics.counter "bfs_batch.sweeps"
let m_words = Metrics.counter "bfs_batch.words"
let m_reuses = Metrics.counter "bfs.scratch_reuses"
let m_sweep_us = Metrics.histo "bfs_batch.sweep_us" (* wall time per batched sweep *)

(* shared with the scalar kernel: one (source, node) discovery = one visit,
   so dashboards see total BFS work regardless of which kernel ran it *)
let m_visited = Metrics.counter "bfs.nodes_visited"

(* Per-domain word arenas: [seen]/[frontier]/[next] hold one source-bitmask
   per node.  Domains spawned by [Parallel] each get their own arena, so
   concurrent sweeps never share state. *)
type scratch = {
  mutable seen : int array;
  mutable frontier : int array;
  mutable next : int array;
}

let scratch_key =
  Domain.DLS.new_key (fun () -> { seen = [||]; frontier = [||]; next = [||] })

let scratch n =
  let s = Domain.DLS.get scratch_key in
  if Array.length s.seen < n then begin
    s.seen <- Array.make n 0;
    s.frontier <- Array.make n 0;
    s.next <- Array.make n 0
  end
  else begin
    Metrics.incr m_reuses;
    Array.fill s.seen 0 n 0;
    Array.fill s.frontier 0 n 0;
    Array.fill s.next 0 n 0
  end;
  s

(* Index of the single set bit of [b] (bits 0..62; [b] may be the sign bit,
   so only logical shifts below). *)
let bit_index b =
  let i = ref 0 and b = ref b in
  if !b land 0xFFFFFFFF = 0 then begin i := !i + 32; b := !b lsr 32 end;
  if !b land 0xFFFF = 0 then begin i := !i + 16; b := !b lsr 16 end;
  if !b land 0xFF = 0 then begin i := !i + 8; b := !b lsr 8 end;
  if !b land 0xF = 0 then begin i := !i + 4; b := !b lsr 4 end;
  if !b land 0x3 = 0 then begin i := !i + 2; b := !b lsr 2 end;
  if !b land 0x1 = 0 then incr i;
  !i

let run ?(bound = max_int) (g : Csr.t) sources =
  let k = Array.length sources in
  if k = 0 then [||]
  else begin
    if k > width then
      invalid_arg
        (Printf.sprintf "Bfs_batch.run: %d sources exceed the word width %d" k width);
    let n = g.Csr.n in
    let t_start = if !Obs.metrics then Obs.now_us () else 0.0 in
    let s = scratch n in
    let seen = s.seen and frontier = s.frontier and next = s.next in
    let xadj = g.Csr.xadj and adjncy = g.Csr.adjncy in
    let dist = Array.init k (fun _ -> Array.make n (-1)) in
    for j = 0 to k - 1 do
      let src = sources.(j) in
      if src < 0 || src >= n then invalid_arg "Bfs_batch.run: source out of range";
      seen.(src) <- seen.(src) lor (1 lsl j);
      frontier.(src) <- frontier.(src) lor (1 lsl j);
      dist.(j).(src) <- 0
    done;
    let words = ref 0 in
    let visited = ref k in
    let level = ref 0 in
    let active = ref true in
    while !active && !level < bound do
      incr level;
      (* scatter: OR each frontier node's source mask into its neighbors *)
      for v = 0 to n - 1 do
        (* SAFETY: v < n <= length of the arena arrays ([scratch n] grows
           them); xadj has n+1 entries so v+1 is in bounds; CSR construction
           bounds every xadj value by dim adjncy and every adjncy entry
           by n (Graph.snapshot builds both from validated edges). *)
        let fv = Array.unsafe_get frontier v in
        if fv <> 0 then begin
          let start = Bigarray.Array1.unsafe_get xadj v in
          let stop = Bigarray.Array1.unsafe_get xadj (v + 1) in
          for i = start to stop - 1 do
            let u = Bigarray.Array1.unsafe_get adjncy i in
            Array.unsafe_set next u (Array.unsafe_get next u lor fv)
          done;
          words := !words + (stop - start)
        end
      done;
      (* gather: freshly-reached bits settle at this level and form the next
         frontier *)
      active := false;
      for u = 0 to n - 1 do
        (* SAFETY: u < n <= length of seen/frontier/next (arena arrays). *)
        let fresh = Array.unsafe_get next u land lnot (Array.unsafe_get seen u) in
        Array.unsafe_set next u 0;
        Array.unsafe_set frontier u fresh;
        if fresh <> 0 then begin
          active := true;
          Array.unsafe_set seen u (Array.unsafe_get seen u lor fresh);
          let b = ref fresh in
          (* SAFETY: masks only ever hold bits 0..k-1 (seeded that way and
             OR/AND preserve it), so bit_index low < k = length dist, and
             every dist row was allocated with n entries (u < n). *)
          while !b <> 0 do
            let low = !b land - !b in
            Array.unsafe_set (Array.unsafe_get dist (bit_index low)) u !level;
            incr visited;
            b := !b lxor low
          done
        end
      done;
      words := !words + (2 * n)
    done;
    if !Obs.metrics then begin
      Metrics.incr m_sweeps;
      Metrics.add m_words !words;
      Metrics.add m_visited !visited;
      Metrics.observe m_sweep_us (int_of_float (Obs.now_us () -. t_start))
    end;
    dist
  end

let batches n =
  if n <= 0 then [||]
  else begin
    let nb = ((n - 1) / width) + 1 in
    Array.init nb (fun b ->
        let lo = b * width in
        Array.init (min width (n - lo)) (fun i -> lo + i))
  end
