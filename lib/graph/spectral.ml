let matvec g src dst =
  let n = Csr.n g in
  for v = 0 to n - 1 do
    let acc = ref 0.0 in
    Csr.iter_neighbors g v (fun u -> acc := !acc +. src.(u));
    dst.(v) <- !acc
  done

(* Remove the component along the all-ones direction (the Perron vector of a
   regular graph), so power iteration converges to max(|λ₂|, |λₙ|). *)
let deflate_ones vec =
  let n = Array.length vec in
  if n > 0 then begin
    let mean = Array.fold_left ( +. ) 0.0 vec /. float_of_int n in
    for i = 0 to n - 1 do
      vec.(i) <- vec.(i) -. mean
    done
  end

let norm vec = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 vec)

let normalize vec =
  let len = norm vec in
  if len > 0.0 then Array.iteri (fun i x -> vec.(i) <- x /. len) vec

let lambda ?(iterations = 300) ?(seed = 0x5eed) g =
  let n = Csr.n g in
  if n <= 1 then 0.0
  else begin
    let rng = Prng.create seed in
    let v = Array.init n (fun _ -> Prng.float rng -. 0.5) in
    deflate_ones v;
    normalize v;
    let w = Array.make n 0.0 in
    let estimate = ref 0.0 in
    for _ = 1 to iterations do
      matvec g v w;
      deflate_ones w;
      estimate := norm w;
      Array.blit w 0 v 0 n;
      normalize v
    done;
    !estimate
  end

let expansion_ratio ?iterations ?seed g =
  let delta = ref 0 in
  for v = 0 to Csr.n g - 1 do
    delta := max !delta (Csr.degree g v)
  done;
  if !delta = 0 then 0.0 else lambda ?iterations ?seed g /. float_of_int !delta

let is_expander ?(threshold = 0.5) g = expansion_ratio g <= threshold

(* ---- Lanczos with full reorthogonalization on the deflated operator ---- *)

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

(* Number of eigenvalues of the symmetric tridiagonal (alpha, beta) smaller
   than x, by the Sturm sequence / LDL^T sign count. *)
let sturm_count alpha beta x =
  let m = Array.length alpha in
  let count = ref 0 in
  let d = ref 1.0 in
  for i = 0 to m - 1 do
    let b2 = if i = 0 then 0.0 else beta.(i - 1) *. beta.(i - 1) in
    let nd = alpha.(i) -. x -. (b2 /. !d) in
    let nd = if Float.abs nd < 1e-300 then -1e-300 else nd in
    if nd < 0.0 then incr count;
    d := nd
  done;
  !count

let tridiag_extreme alpha beta =
  let m = Array.length alpha in
  if m = 0 then 0.0
  else begin
    (* Gershgorin bounds *)
    let lo = ref infinity and hi = ref neg_infinity in
    for i = 0 to m - 1 do
      let r =
        (if i > 0 then Float.abs beta.(i - 1) else 0.0)
        +. if i < m - 1 then Float.abs beta.(i) else 0.0
      in
      lo := min !lo (alpha.(i) -. r);
      hi := max !hi (alpha.(i) +. r)
    done;
    let bisect target_count =
      (* smallest x such that (number of eigenvalues < x) >= target_count *)
      let a = ref !lo and b = ref (!hi +. 1e-9) in
      for _ = 1 to 100 do
        let mid = 0.5 *. (!a +. !b) in
        if sturm_count alpha beta mid >= target_count then b := mid else a := mid
      done;
      0.5 *. (!a +. !b)
    in
    let smallest = bisect 1 in
    let largest = bisect m in
    max (Float.abs smallest) (Float.abs largest)
  end

let lambda_lanczos ?(iterations = 60) ?(seed = 0x5eed) g =
  let n = Csr.n g in
  if n <= 1 then 0.0
  else begin
    let m = min iterations (max 1 (n - 1)) in
    let rng = Prng.create seed in
    let v = Array.init n (fun _ -> Prng.float rng -. 0.5) in
    deflate_ones v;
    normalize v;
    let basis = Array.make m [||] in
    let alpha = Array.make m 0.0 in
    let beta = Array.make (max 0 (m - 1)) 0.0 in
    let w = Array.make n 0.0 in
    let steps = ref 0 in
    (try
       for j = 0 to m - 1 do
         basis.(j) <- Array.copy v;
         matvec g v w;
         deflate_ones w;
         alpha.(j) <- dot w v;
         (* full reorthogonalization against the stored basis *)
         for i = 0 to j do
           let c = dot w basis.(i) in
           Array.iteri (fun idx x -> w.(idx) <- x -. (c *. basis.(i).(idx))) w
         done;
         incr steps;
         if j < m - 1 then begin
           let b = norm w in
           if b < 1e-10 then raise Exit;
           beta.(j) <- b;
           Array.iteri (fun idx x -> v.(idx) <- x /. b) w
         end
       done
     with Exit -> ());
    let k = !steps in
    tridiag_extreme (Array.sub alpha 0 k) (Array.sub beta 0 (max 0 (k - 1)))
  end
