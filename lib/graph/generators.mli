(** Synthetic graph families.

    These are the inputs of every experiment: deterministic topologies for
    unit tests and closed-form spectral checks, random Δ-regular graphs
    (near-Ramanujan w.h.p., the paper's expander stand-in — DESIGN.md §3.1),
    the explicit Margulis–Gabber–Galil expander, and the
    two-cliques-plus-matching graph of Figure 1. *)

val complete : int -> Graph.t
(** Complete graph [K_n]. *)

val complete_bipartite : int -> int -> Graph.t
(** [complete_bipartite a b] is [K_{a,b}] with left part [0..a-1]. *)

val cycle : int -> Graph.t
(** Cycle [C_n] (requires [n >= 3]). *)

val path : int -> Graph.t
(** Path on [n] nodes. *)

val star : int -> Graph.t
(** Star with center [0] and [n-1] leaves. *)

val grid : int -> int -> Graph.t
(** [grid rows cols]: 2-D mesh, node [(r, c)] is index [r*cols + c]. *)

val torus : int -> int -> Graph.t
(** [torus rows cols]: mesh with wrap-around edges (4-regular when both
    dimensions exceed 2). *)

val hypercube : int -> Graph.t
(** [hypercube d]: the [d]-dimensional Boolean hypercube on [2^d] nodes;
    adjacency eigenvalues are [d - 2k], so [λ = d - 2]. *)

val circulant : int -> int list -> Graph.t
(** [circulant n offsets] connects [i] to [i ± o mod n] for each offset. *)

val erdos_renyi : Prng.t -> int -> float -> Graph.t
(** [erdos_renyi rng n p]: each of the [n(n-1)/2] edges present independently
    with probability [p]. *)

val random_regular : Prng.t -> int -> int -> Graph.t
(** [random_regular rng n d]: uniform-ish simple [d]-regular graph via the
    configuration model with edge-switch repair of self-loops and duplicate
    pairs.  Requires [0 <= d < n] and [n*d] even.  The repair preserves the
    degree sequence exactly; by Friedman's theorem the result has
    [λ = O(√d)] w.h.p., which the experiments verify spectrally. *)

val margulis : int -> Graph.t
(** [margulis m]: the Margulis–Gabber–Galil expander on the [m × m] torus
    ([n = m²] nodes, degree ≤ 8, [λ ≤ 5√2] — a fully explicit bounded-degree
    expander). *)

val two_cliques_matching : int -> Graph.t
(** [two_cliques_matching n] (requires even [n]): two cliques [C_A], [C_B] of
    size [n/2] inter-connected by a perfect matching — the Figure 1 graph.
    Node [i < n/2] is in [C_A] and matched to [i + n/2]. *)

val ring_of_cliques : int -> int -> Graph.t
(** [ring_of_cliques k s]: [k] cliques of size [s] joined in a ring by single
    bridge edges — a natural non-expander control case. *)

val chung_lu : Prng.t -> float array -> Graph.t
(** [chung_lu rng w]: the Chung–Lu random graph with expected degree sequence
    [w] — edge [(i, j)] present with probability [min 1 (w_i·w_j / Σw)].
    Used (with power-law weights) to exercise the arbitrary-degree
    DC-spanner extension on heavy-tailed graphs. *)

val power_law_weights : Prng.t -> n:int -> exponent:float -> w_min:float -> float array
(** Pareto-distributed expected degrees [w_i = w_min · u^{-1/(exponent-1)}]
    for uniform [u], capped at [√(n·w_min)] so Chung–Lu probabilities stay
    below 1.  Typical social/internet-like exponent: 2.5. *)

val preferential_attachment : Prng.t -> n:int -> m:int -> Graph.t
(** Barabási–Albert graph: nodes arrive one at a time and attach [m] edges
    to existing nodes with probability proportional to current degree
    (realized by sampling uniformly from the edge-endpoint multiset).
    Requires [n > m >= 1]. *)

val expander : Prng.t -> int -> int -> Graph.t
(** [expander rng n d]: streaming O(n + m) near-[d]-regular expander — a
    Hamiltonian cycle (connectivity) unioned with [⌈(d-2)/2⌉] uniform random
    permutations (each a 2-regular union of cycles).  Built entirely through
    {!Csr_store.of_stream}, never {!Graph.add_edge}, so a 10^6-node instance
    costs one counting sort.  Degrees are [d] rounded up to even, minus
    permutation fixed points and duplicate collisions (a o(1) fraction);
    requires [2 <= d < n]. *)

val weighted_expander : Prng.t -> int -> int -> w_max:int -> Graph.t
(** [weighted_expander rng n d ~w_max]: the {!expander} family with uniform
    integer edge weights in [[1, w_max]], streamed through
    {!Csr_store.of_weighted_stream} (duplicate arcs keep the lighter
    weight).  Requires [w_max >= 1]. *)

val weighted_torus : Prng.t -> int -> int -> w_max:int -> Graph.t
(** [weighted_torus rng rows cols ~w_max]: the {!torus} topology with
    uniform integer edge weights in [[1, w_max]].  Requires [w_max >= 1]. *)

val randomize_weights : Prng.t -> Graph.t -> w_max:int -> Graph.t
(** [randomize_weights rng g ~w_max]: a copy of [g] (same node set, same
    edge set) with every edge's weight redrawn uniformly from
    [[1, w_max]] — turns any generator into a weighted family.  Requires
    [w_max >= 1]. *)
