(** Weighted single-source shortest paths over {!Csr.t} snapshots.

    This is the weighted counterpart of {!Bfs}: a binary-heap Dijkstra with a
    lazy-deletion heap held in a per-domain scratch arena ({!Bfs.Scratch}
    style), so the steady state allocates nothing beyond the returned
    distance rows.  On an unweighted snapshot every arc costs 1 and the
    results coincide exactly with {!Bfs} — the cross-kernel oracle the test
    suite checks.  All weights are positive by the {!Csr_store} invariant.

    The kernel dispatch rule: unweighted graphs are certified by the
    bit-parallel MS-BFS path ({!Bfs_batch}); these routines serve the
    weighted path only.  Observability: [dijkstra.runs],
    [dijkstra.nodes_settled], [dijkstra.heap_peak],
    [dijkstra.scratch_reuses]. *)

val distances : Csr.t -> int -> int array
(** [distances g s] is the weighted distance from [s] to every node, [-1] for
    unreachable nodes.  O((n + m) log n). *)

val distances_bounded : Csr.t -> int -> bound:int -> int array
(** Like {!distances} but nodes at weighted distance [> bound] report [-1];
    the run stops as soon as the settled distance exceeds [bound]. *)

val distance : Csr.t -> int -> int -> int
(** [distance g u v] is the weighted distance from [u] to [v], [-1] if
    disconnected.  Settles only up to [v]'s distance. *)

val distance_bounded : Csr.t -> int -> int -> bound:int -> int
(** Like {!distance} but returns [-1] when the distance exceeds [bound]. *)

val bellman_ford_bounded : Csr.t -> int -> hops:int -> int array
(** [bellman_ford_bounded g s ~hops] runs [hops] rounds of frontier-based
    Bellman–Ford relaxation.  The returned value for a node never
    under-shoots its true weighted distance, and equals it whenever some
    minimum-weight path from [s] uses at most [hops] edges (a round may
    consume same-round improvements, so values can be closer to the true
    distance than the strict [≤ hops]-edge optimum); unreached nodes report
    [-1].  With [hops >= n - 1] this is exactly {!distances}.  This one-sided
    guarantee is what the bounded certification sweeps rely on: weights are
    [≥ 1], so any pair within a weighted bound [b] has a witness path of at
    most [b] edges and gets its exact distance, while a violating pair can
    only look worse. *)
