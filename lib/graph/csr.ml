type t = Graph.csr = private { n : int; xadj : Csr_store.ba; adjncy : Csr_store.ba }

let of_graph = Graph.to_csr

let snapshot = Graph.snapshot

let of_stream = Csr_store.of_stream

let empty = Csr_store.empty

let n = Csr_store.n

let m = Csr_store.m

let degree = Csr_store.degree

let iter_neighbors = Csr_store.iter_row

let fold_neighbors = Csr_store.fold_row

let mem_edge = Csr_store.mem

let iter_edges = Csr_store.iter_edges
