type t = { n : int; xadj : int array; adjncy : int array }

let of_graph g =
  let size = Graph.n g in
  let xadj = Array.make (size + 1) 0 in
  for v = 0 to size - 1 do
    xadj.(v + 1) <- xadj.(v) + Graph.degree g v
  done;
  let adjncy = Array.make xadj.(size) 0 in
  for v = 0 to size - 1 do
    let pos = ref xadj.(v) in
    Graph.iter_neighbors g v (fun u ->
        adjncy.(!pos) <- u;
        incr pos);
    let lo = xadj.(v) and hi = xadj.(v + 1) in
    let slice = Array.sub adjncy lo (hi - lo) in
    Array.sort compare slice;
    Array.blit slice 0 adjncy lo (hi - lo)
  done;
  { n = size; xadj; adjncy }

let n t = t.n

let m t = Array.length t.adjncy / 2

let degree t v = t.xadj.(v + 1) - t.xadj.(v)

let iter_neighbors t v f =
  for i = t.xadj.(v) to t.xadj.(v + 1) - 1 do
    f t.adjncy.(i)
  done

let mem_edge t u v =
  let lo = ref t.xadj.(u) and hi = ref (t.xadj.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = t.adjncy.(mid) in
    if x = v then found := true else if x < v then lo := mid + 1 else hi := mid - 1
  done;
  !found
