type t = Graph.csr = private { n : int; xadj : int array; adjncy : int array }

let of_graph = Graph.to_csr

let snapshot = Graph.snapshot

let n t = t.n

let m t = Array.length t.adjncy / 2

let degree t v = t.xadj.(v + 1) - t.xadj.(v)

let iter_neighbors t v f =
  (* the checked xadj reads validate v before the unsafe adjncy scan *)
  for i = t.xadj.(v) to t.xadj.(v + 1) - 1 do
    (* SAFETY: CSR construction bounds every xadj value by length adjncy,
       so i < length adjncy throughout the row. *)
    f (Array.unsafe_get t.adjncy i)
  done

let mem_edge t u v =
  (* the checked xadj reads validate u before the unsafe binary search *)
  let lo = ref t.xadj.(u) and hi = ref (t.xadj.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    (* SAFETY: xadj.(u) <= lo <= mid <= hi < xadj.(u+1) <= length adjncy,
       by the CSR construction invariant. *)
    let x = Array.unsafe_get t.adjncy mid in
    if x = v then found := true else if x < v then lo := mid + 1 else hi := mid - 1
  done;
  !found
