type t = Graph.csr = private {
  n : int;
  xadj : Csr_store.ba;
  adjncy : Csr_store.ba;
  weights : Csr_store.ba option;
}

let of_graph = Graph.to_csr

let snapshot = Graph.snapshot

let of_stream = Csr_store.of_stream

let of_weighted_stream = Csr_store.of_weighted_stream

let empty = Csr_store.empty

let n = Csr_store.n

let m = Csr_store.m

let degree = Csr_store.degree

let iter_neighbors = Csr_store.iter_row

let fold_neighbors = Csr_store.fold_row

let mem_edge = Csr_store.mem

let iter_edges = Csr_store.iter_edges

let is_weighted = Csr_store.is_weighted

let edge_weight = Csr_store.weight

let iter_neighbors_w = Csr_store.iter_row_w

let iter_edges_w = Csr_store.iter_edges_w
