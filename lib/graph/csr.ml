type t = Graph.csr = private { n : int; xadj : int array; adjncy : int array }

let of_graph = Graph.to_csr

let snapshot = Graph.snapshot

let n t = t.n

let m t = Array.length t.adjncy / 2

let degree t v = t.xadj.(v + 1) - t.xadj.(v)

let iter_neighbors t v f =
  for i = t.xadj.(v) to t.xadj.(v + 1) - 1 do
    f t.adjncy.(i)
  done

let mem_edge t u v =
  let lo = ref t.xadj.(u) and hi = ref (t.xadj.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = t.adjncy.(mid) in
    if x = v then found := true else if x < v then lo := mid + 1 else hi := mid - 1
  done;
  !found
