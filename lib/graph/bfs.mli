(** Breadth-first search primitives.

    All distance-stretch measurements in the paper reduce to BFS: the
    3-distance certificate checks [d_H(u,v) ≤ 3] for removed edges, and the
    exact stretch of a spanner compares single-source distances in [G] and
    [H].  Distances are hop counts ([-1] encodes "unreachable").

    {b Scratch arenas.}  Scalar traversals draw their work arrays from a
    per-domain arena ({!Domain.DLS}), so the point-to-point queries on the
    certification hot path ({!distance}, {!distance_bounded}) allocate
    nothing at all and {!distances} allocates only the result row it
    returns.  Arena hits are counted in the [bfs.scratch_reuses] metric.
    Multi-source sweeps ({!all_distances}, {!diameter_sampled}) route
    through the bit-parallel {!Bfs_batch} kernel — up to 63 sources per
    sweep — with outputs bit-identical to repeated scalar BFS. *)

val distances : Csr.t -> int -> int array
(** [distances g s] is the array of hop distances from [s]; [-1] where
    unreachable. *)

val distances_bounded : Csr.t -> int -> bound:int -> int array
(** Like {!distances} but stops expanding beyond [bound] hops; nodes farther
    than [bound] report [-1].  Used for cheap [d ≤ 3] certificates. *)

val distance : Csr.t -> int -> int -> int
(** [distance g u v] is the hop distance, [-1] if disconnected.
    Allocation-free (per-domain scratch arena). *)

val distance_bounded : Csr.t -> int -> int -> bound:int -> int
(** [distance_bounded g u v ~bound] is the hop distance if it is [≤ bound],
    otherwise [-1].  Early-exits as soon as [v] is discovered.
    Allocation-free (per-domain scratch arena). *)

val shortest_path : Csr.t -> int -> int -> int array option
(** [shortest_path g u v] is a node sequence [u ... v] realizing the hop
    distance, or [None] if disconnected.  Parent choice is deterministic
    (smallest-index parent). *)

val random_shortest_path : Csr.t -> Prng.t -> int -> int -> int array option
(** Like {!shortest_path}, but each node's BFS parent is chosen uniformly at
    random among its shortest-path predecessors.  This is the randomized
    shortest-path routing used as the [25]-substitute (DESIGN.md §3.4): the
    random choice spreads congestion across the shortest-path DAG. *)

val eccentricity : Csr.t -> int -> int
(** Largest distance from the node; [max_int] when some node is unreachable
    (disconnected graphs signal instead of being silently ignored). *)

val diameter_sampled : Csr.t -> Prng.t -> samples:int -> int
(** Lower bound on the diameter from BFS at [samples] random sources
    (exact when [samples >= n]); [max_int] when a sampled source cannot
    reach the whole graph, i.e. the graph is disconnected.  Sweeps run
    through the batched kernel. *)

val all_distances : Csr.t -> int array array
(** All-pairs hop distances via {!Bfs_batch} (63 sources per sweep);
    bit-identical to per-source {!distances}.  O(n·m / word-width) on
    low-diameter graphs; for tests and exact stretch on modest instances. *)

val all_distances_parallel : ?domains:int -> Csr.t -> int array array
(** {!all_distances} with the batched sweeps fanned out over OCaml 5
    domains (one batch of 63 sources per work unit); identical output. *)
