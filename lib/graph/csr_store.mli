(** Flat Bigarray-backed CSR storage — the primary graph representation.

    Both {!Graph.t} snapshots and {!Csr.t} are this type: [n + 1] row offsets
    and [2m] concatenated neighbor lists held in off-heap [int] Bigarrays, so
    storage is exactly [(n + 1) + 2m] machine words, invisible to the GC, and
    laid out for sequential scans.  Rows are sorted ascending and free of
    duplicates and self-loops, which makes the structure canonical for a given
    edge set: two stores over the same edges are element-for-element equal.

    {!of_stream} builds the structure in O(n + m) time by counting sort from
    an arbitrary edge stream — no per-node hash tables, no comparison sort —
    which is what keeps 10^6-node builds at memory bandwidth. *)

type ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Off-heap [int] array; element [i] reads as [a.{i}]. *)

type t = private {
  n : int;  (** number of nodes *)
  xadj : ba;  (** offsets: neighbors of [v] live at [xadj.{v} .. xadj.{v+1} - 1] *)
  adjncy : ba;  (** concatenated neighbor lists, sorted ascending per node *)
  weights : ba option;
      (** per-arc positive weights aligned with [adjncy]; [None] means every
          edge has weight 1 (the unweighted stores are bit-identical to what
          they were before weights existed) *)
}

val empty : int -> t
(** [empty n] is the edgeless store on [n] nodes. *)

val of_stream : ?m_hint:int -> n:int -> ((int -> int -> unit) -> unit) -> t
(** [of_stream ~n produce] runs [produce emit] and builds the CSR from every
    [emit u v] call in O(n + m): arcs are buffered (doubling growth, so pass
    [~m_hint] when the edge count is known to avoid regrows), counting-sorted
    by destination, and transpose-scattered into sorted rows.  Emitting an
    edge once suffices; duplicates (either orientation) and self-loops are
    dropped.  Raises [Invalid_argument] if an endpoint is out of range. *)

val of_weighted_stream :
  ?m_hint:int -> n:int -> ((int -> int -> int -> unit) -> unit) -> t
(** [of_weighted_stream ~n produce] is {!of_stream} for weighted edges: each
    [emit u v w] records edge [(u, v)] with positive integer weight [w],
    carried through the same counting-sort scatter.  When duplicate edges are
    emitted, the minimum weight wins.  Raises [Invalid_argument] on
    out-of-range endpoints or [w < 1].  The result always has
    [is_weighted t = true], even if every emitted weight is 1. *)

val is_weighted : t -> bool
(** Whether the store carries an explicit weight array. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of undirected edges. *)

val arcs : t -> int
(** Number of stored arcs, [2 * m t] (= [dim adjncy]). *)

val degree : t -> int -> int
(** Row length of a node.  Raises [Invalid_argument] out of range. *)

val iter_row : t -> int -> (int -> unit) -> unit
(** Iterate a node's neighbors in ascending order, without copying. *)

val fold_row : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** Fold over a node's neighbors in ascending order. *)

val mem : t -> int -> int -> bool
(** Edge membership by binary search over the sorted row: O(log deg). *)

val weight : t -> int -> int -> int
(** Weight of an edge (1 on unweighted stores), by the same binary search as
    {!mem}.  Raises [Invalid_argument] if the edge is absent. *)

val iter_row_w : t -> int -> (int -> int -> unit) -> unit
(** Like {!iter_row} but passing each neighbor's edge weight (1 when the
    store is unweighted). *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate each edge once as [(u, v)] with [u < v], ascending
    lexicographically. *)

val iter_edges_w : t -> (int -> int -> int -> unit) -> unit
(** Like {!iter_edges} but passing each edge's weight (1 when unweighted). *)
