(* Binary-heap Dijkstra over (optionally weighted) CSR snapshots — the
   weighted counterpart of [Bfs].  The heap is a pair of flat int arrays
   (tentative distance / node) with lazy deletion: a relaxation pushes a new
   entry instead of decreasing a key, and stale entries are skipped at pop
   because their recorded distance no longer matches [dist].  On unweighted
   stores every arc costs 1, so the results coincide with [Bfs] — that
   property is the cross-kernel oracle used by the test suite.

   Counters are batched like in [Bfs]: tallied into locals, flushed once per
   run. *)

let m_runs = Metrics.counter "dijkstra.runs"
let m_settled = Metrics.counter "dijkstra.nodes_settled"
let m_heap = Metrics.gauge "dijkstra.heap_peak"

(* Per-domain scratch arena in the style of [Bfs.Scratch]: dist/stamp are
   epoch-stamped so reuse needs no O(n) clear, and the heap arrays persist
   across runs (growing monotonically), so the steady state allocates
   nothing.  Domains spawned by [Parallel] get fresh arenas. *)
module Scratch = struct
  type t = {
    mutable dist : int array;
    mutable stamp : int array;
    mutable hd : int array;  (* heap: tentative distances *)
    mutable hv : int array;  (* heap: nodes, parallel to [hd] *)
    mutable epoch : int;
  }

  let m_reuses = Metrics.counter "dijkstra.scratch_reuses"

  let key =
    Domain.DLS.new_key (fun () ->
        { dist = [||]; stamp = [||]; hd = [||]; hv = [||]; epoch = 0 })

  let get n =
    let s = Domain.DLS.get key in
    if Array.length s.dist < n then begin
      s.dist <- Array.make n 0;
      s.stamp <- Array.make n (-1);
      if Array.length s.hd < n then begin
        s.hd <- Array.make (max n 16) 0;
        s.hv <- Array.make (max n 16) 0
      end;
      s.epoch <- 0
    end
    else Metrics.incr m_reuses;
    s.epoch <- s.epoch + 1;
    s
end

(* Core run: settle nodes in nondecreasing distance order, calling [settle]
   once per node, stopping once a popped distance exceeds [bound] (every
   remaining node is then farther than [bound]) or [stop_at] is settled. *)
let run g s ~bound ~stop_at ~settle =
  let n = Csr.n g in
  if s < 0 || s >= n then invalid_arg "Dijkstra: source out of range";
  let sc = Scratch.get n in
  let dist = sc.Scratch.dist and stamp = sc.Scratch.stamp and ep = sc.Scratch.epoch in
  let hd = ref sc.Scratch.hd and hv = ref sc.Scratch.hv in
  let size = ref 0 in
  let heap_peak = ref 0 in
  let grow () =
    let c = 2 * Array.length !hd in
    let d2 = Array.make c 0 and v2 = Array.make c 0 in
    Array.blit !hd 0 d2 0 !size;
    Array.blit !hv 0 v2 0 !size;
    hd := d2;
    hv := v2;
    sc.Scratch.hd <- d2;
    sc.Scratch.hv <- v2
  in
  let push d v =
    if !size = Array.length !hd then grow ();
    let hd = !hd and hv = !hv in
    let i = ref !size in
    incr size;
    if !size > !heap_peak then heap_peak := !size;
    (* Sift up. SAFETY: 0 <= parent < i < size <= length hd = length hv
       throughout, so all heap indices below are in range. *)
    let continue_ = ref true in
    while !continue_ && !i > 0 do
      let p = (!i - 1) / 2 in
      if Array.unsafe_get hd p > d then begin
        Array.unsafe_set hd !i (Array.unsafe_get hd p);
        Array.unsafe_set hv !i (Array.unsafe_get hv p);
        i := p
      end
      else continue_ := false
    done;
    (* SAFETY: i only moved to in-range parent slots, so i < size <= length. *)
    Array.unsafe_set hd !i d;
    Array.unsafe_set hv !i v
  in
  let pop_to = ref 0 and pop_node = ref 0 in
  let pop () =
    let hd = !hd and hv = !hv in
    pop_to := hd.(0);
    pop_node := hv.(0);
    decr size;
    if !size > 0 then begin
      let d = hd.(!size) and v = hv.(!size) in
      (* Sift down. SAFETY: i and its children are always < size <= length. *)
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 in
        if l >= !size then continue_ := false
        else begin
          (* SAFETY: l < size and (when inspected) l + 1 < size, and i < size
             by the loop invariant, with size <= length hd = length hv. *)
          let c =
            if l + 1 < !size && Array.unsafe_get hd (l + 1) < Array.unsafe_get hd l then l + 1
            else l
          in
          if Array.unsafe_get hd c < d then begin
            Array.unsafe_set hd !i (Array.unsafe_get hd c);
            Array.unsafe_set hv !i (Array.unsafe_get hv c);
            i := c
          end
          else continue_ := false
        end
      done;
      (* SAFETY: i only moved to in-range child slots, so i < size <= length. *)
      Array.unsafe_set hd !i d;
      Array.unsafe_set hv !i v
    end
  in
  let xadj = g.Csr.xadj and adjncy = g.Csr.adjncy in
  let consider u nd =
    if stamp.(u) <> ep || nd < dist.(u) then begin
      stamp.(u) <- ep;
      dist.(u) <- nd;
      push nd u
    end
  in
  let relax =
    match g.Csr.weights with
    | None ->
        fun v dv ->
          (* SAFETY: v was range-checked when pushed; xadj has n+1 entries and
             bounds adjncy by the CSR construction invariant. *)
          let lo = Bigarray.Array1.unsafe_get xadj v
          and hi = Bigarray.Array1.unsafe_get xadj (v + 1) in
          for i = lo to hi - 1 do
            consider (Bigarray.Array1.unsafe_get adjncy i) (dv + 1)
          done
    | Some w ->
        fun v dv ->
          (* SAFETY: same bounds as above; the weight array has dim adjncy. *)
          let lo = Bigarray.Array1.unsafe_get xadj v
          and hi = Bigarray.Array1.unsafe_get xadj (v + 1) in
          for i = lo to hi - 1 do
            consider
              (Bigarray.Array1.unsafe_get adjncy i)
              (dv + Bigarray.Array1.unsafe_get w i)
          done
  in
  stamp.(s) <- ep;
  dist.(s) <- 0;
  push 0 s;
  let settled = ref 0 in
  let finished = ref false in
  while (not !finished) && !size > 0 do
    pop ();
    let d = !pop_to and v = !pop_node in
    (* Lazy deletion: an entry is live iff it still matches the tentative
       distance.  A node's live entry is popped exactly once, since pushes
       for a node carry strictly decreasing distances. *)
    if d = dist.(v) && stamp.(v) = ep then begin
      if d > bound then finished := true
      else begin
        settle v d;
        incr settled;
        if v = stop_at then finished := true else relax v d
      end
    end
  done;
  if !Obs.metrics then begin
    Metrics.incr m_runs;
    Metrics.add m_settled !settled;
    Metrics.set_gauge m_heap !heap_peak
  end

let distances_impl g s ~bound ~stop_at =
  let out = Array.make (Csr.n g) (-1) in
  run g s ~bound ~stop_at ~settle:(fun v d -> out.(v) <- d);
  out

let distances g s = distances_impl g s ~bound:max_int ~stop_at:(-1)

let distances_bounded g s ~bound = distances_impl g s ~bound ~stop_at:(-1)

let point_query g u v ~bound =
  let res = ref (-1) in
  run g u ~bound ~stop_at:v ~settle:(fun x d -> if x = v then res := d);
  !res

let distance g u v = if u = v then 0 else point_query g u v ~bound:max_int

let distance_bounded g u v ~bound = if u = v then 0 else point_query g u v ~bound

(* Hop-bounded Bellman–Ford by frontier relaxation: round [r] relaxes out of
   every node improved in round [r - 1].  Because a round may consume
   improvements made earlier in the same round, the result can only be
   *closer* to the true distance than the strict ≤hops-walk optimum — it
   never under-shoots the true distance, and it is exact whenever some
   shortest path uses at most [hops] edges.  That one-sided guarantee is
   precisely what the certification sweeps need (a non-violating pair gets
   its exact distance; a violating pair can only look worse). *)
let bellman_ford_bounded g s ~hops =
  let n = Csr.n g in
  if s < 0 || s >= n then invalid_arg "Dijkstra.bellman_ford_bounded: source out of range";
  if hops < 0 then invalid_arg "Dijkstra.bellman_ford_bounded: negative hops";
  let dist = Array.make n max_int in
  let mark = Array.make n (-1) in
  let cur = ref (Array.make (max n 1) 0) and nxt = ref (Array.make (max n 1) 0) in
  let clen = ref 1 and nlen = ref 0 in
  dist.(s) <- 0;
  !cur.(0) <- s;
  let r = ref 0 in
  while !r < hops && !clen > 0 do
    incr r;
    nlen := 0;
    for i = 0 to !clen - 1 do
      let v = (!cur).(i) in
      let dv = dist.(v) in
      Csr.iter_neighbors_w g v (fun u w ->
          let nd = dv + w in
          if nd < dist.(u) then begin
            dist.(u) <- nd;
            if mark.(u) <> !r then begin
              mark.(u) <- !r;
              (!nxt).(!nlen) <- u;
              incr nlen
            end
          end)
    done;
    let t = !cur in
    cur := !nxt;
    nxt := t;
    clen := !nlen
  done;
  for v = 0 to n - 1 do
    if dist.(v) = max_int then dist.(v) <- -1
  done;
  dist
