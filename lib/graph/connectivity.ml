let components g =
  let size = Graph.n g in
  let label = Array.make size (-1) in
  let next = ref 0 in
  let stack = ref [] in
  for s = 0 to size - 1 do
    if label.(s) < 0 then begin
      let id = !next in
      incr next;
      label.(s) <- id;
      stack := [ s ];
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | v :: rest ->
            stack := rest;
            Graph.iter_neighbors g v (fun u ->
                if label.(u) < 0 then begin
                  label.(u) <- id;
                  stack := u :: !stack
                end)
      done
    end
  done;
  label

let count g =
  let label = components g in
  Array.fold_left max (-1) label + 1

let is_connected g = Graph.n g <= 1 || count g = 1

let repair h ~within:g =
  if Graph.n h <> Graph.n g then invalid_arg "Connectivity.repair: size mismatch";
  let uf = Union_find.create (Graph.n h) in
  Graph.iter_edges h (fun u v -> ignore (Union_find.union uf u v));
  let added = ref 0 in
  Graph.iter_edges g (fun u v ->
      if not (Union_find.same uf u v) then begin
        ignore (Union_find.union uf u v);
        ignore (Graph.add_edge h u v);
        incr added
      end);
  !added
