(* Counters are batched: the hot loops below tally into their own locals and
   the metric cells are touched once per BFS run, so the disabled-mode cost
   is one flag check per *call*, not per node. *)
let m_runs = Metrics.counter "bfs.runs"
let m_visited = Metrics.counter "bfs.nodes_visited"
let m_frontier = Metrics.gauge "bfs.frontier_peak"

(* Per-domain scratch arena: the queue (and, for scalar distance queries,
   the dist/stamp pair) is reused across BFS runs on the same domain instead
   of being allocated per call.  Visited-ness is epoch-stamped so a reused
   dist array needs no O(n) clear: node [v] is reached iff
   [stamp.(v) = epoch].  Domains spawned by [Parallel] get fresh arenas. *)
module Scratch = struct
  type t = {
    mutable dist : int array;
    mutable stamp : int array;
    mutable queue : int array;
    mutable epoch : int;
  }

  let m_reuses = Metrics.counter "bfs.scratch_reuses"

  let key =
    Domain.DLS.new_key (fun () ->
        { dist = [||]; stamp = [||]; queue = [||]; epoch = 0 })

  let get n =
    let s = Domain.DLS.get key in
    if Array.length s.queue < n then begin
      s.dist <- Array.make n 0;
      s.stamp <- Array.make n (-1);
      s.queue <- Array.make n 0;
      s.epoch <- 0
    end
    else Metrics.incr m_reuses;
    s.epoch <- s.epoch + 1;
    s
end

let distances_impl g s ~bound ~stop_at =
  let n = Csr.n g in
  let sc = Scratch.get n in
  let dist = Array.make n (-1) in
  let queue = sc.Scratch.queue in
  let head = ref 0 and tail = ref 0 in
  dist.(s) <- 0;
  queue.(0) <- s;
  tail := 1;
  let frontier_peak = ref 1 in
  (* Early exit at *discovery* of [stop_at], not at pop: on dense graphs the
     final BFS layer dominates the work and the target is usually discovered
     long before its layer is settled. *)
  let finished = ref (stop_at = s) in
  while (not !finished) && !head < !tail do
    let v = queue.(!head) in
    incr head;
    if dist.(v) < bound then begin
      try
        Csr.iter_neighbors g v (fun u ->
            if dist.(u) < 0 then begin
              dist.(u) <- dist.(v) + 1;
              if u = stop_at then raise Exit;
              queue.(!tail) <- u;
              incr tail
            end)
      with Exit -> finished := true
    end;
    if !tail - !head > !frontier_peak then frontier_peak := !tail - !head
  done;
  if !Obs.metrics then begin
    Metrics.incr m_runs;
    Metrics.add m_visited !tail;
    Metrics.set_gauge m_frontier !frontier_peak
  end;
  dist

(* Scalar point-to-point query on the scratch arena: same traversal as
   [distances_impl] but the dist array is epoch-stamped and reused, so the
   per-edge certification path allocates nothing at all. *)
let distance_impl g s t ~bound =
  let n = Csr.n g in
  let sc = Scratch.get n in
  let dist = sc.Scratch.dist
  and stamp = sc.Scratch.stamp
  and queue = sc.Scratch.queue
  and ep = sc.Scratch.epoch in
  let head = ref 0 and tail = ref 0 in
  stamp.(s) <- ep;
  dist.(s) <- 0;
  queue.(0) <- s;
  tail := 1;
  let frontier_peak = ref 1 in
  let finished = ref (t = s) in
  while (not !finished) && !head < !tail do
    let v = queue.(!head) in
    incr head;
    if dist.(v) < bound then begin
      try
        Csr.iter_neighbors g v (fun u ->
            if stamp.(u) <> ep then begin
              stamp.(u) <- ep;
              dist.(u) <- dist.(v) + 1;
              if u = t then raise Exit;
              queue.(!tail) <- u;
              incr tail
            end)
      with Exit -> finished := true
    end;
    if !tail - !head > !frontier_peak then frontier_peak := !tail - !head
  done;
  if !Obs.metrics then begin
    Metrics.incr m_runs;
    Metrics.add m_visited !tail;
    Metrics.set_gauge m_frontier !frontier_peak
  end;
  if stamp.(t) = ep then dist.(t) else -1

let distances g s = distances_impl g s ~bound:max_int ~stop_at:(-1)

let distances_bounded g s ~bound = distances_impl g s ~bound ~stop_at:(-1)

let distance g u v = if u = v then 0 else distance_impl g u v ~bound:max_int

let distance_bounded g u v ~bound =
  if u = v then 0
  else begin
    let d = distance_impl g u v ~bound in
    if d > bound then -1 else d
  end

(* BFS parent tracking shared by the deterministic and randomized path
   extraction.  [choose] picks among shortest-path predecessors of a node. *)
let path_impl g u v ~choose =
  if u = v then Some [| u |]
  else begin
    let dist = distances_impl g u ~bound:max_int ~stop_at:v in
    if dist.(v) < 0 then None
    else begin
      let rec build node acc =
        if node = u then node :: acc
        else begin
          let preds = ref [] in
          Csr.iter_neighbors g node (fun w ->
              if dist.(w) >= 0 && dist.(w) = dist.(node) - 1 then preds := w :: !preds);
          let parent = choose (List.sort compare !preds) in
          build parent (node :: acc)
        end
      in
      Some (Array.of_list (build v []))
    end
  end

let shortest_path g u v =
  let choose = function
    | [] -> assert false
    | p :: _ -> p
  in
  path_impl g u v ~choose

let random_shortest_path g rng u v =
  let choose preds =
    let arr = Array.of_list preds in
    Prng.pick rng arr
  in
  path_impl g u v ~choose

(* max over a distance row, [max_int] when some node is unreachable *)
let ecc_of_row dist =
  let worst = ref 0 and disconnected = ref false in
  Array.iter (fun d -> if d < 0 then disconnected := true else if d > !worst then worst := d) dist;
  if !disconnected then max_int else !worst

let eccentricity g v = ecc_of_row (distances g v)

let diameter_sampled g rng ~samples =
  let n = Csr.n g in
  if n = 0 then 0
  else begin
    let sources =
      if samples >= n then Array.init n (fun i -> i)
      else Prng.sample_distinct rng ~n ~k:samples
    in
    (* batched sweeps, Bfs_batch.width sources at a time *)
    let worst = ref 0 in
    let k = Array.length sources in
    let lo = ref 0 in
    while !worst < max_int && !lo < k do
      let len = min Bfs_batch.width (k - !lo) in
      let rows = Bfs_batch.run g (Array.sub sources !lo len) in
      Array.iter (fun row -> worst := max !worst (ecc_of_row row)) rows;
      lo := !lo + len
    done;
    !worst
  end

let all_distances g =
  Trace.with_span ~name:"bfs.all_distances" (fun () ->
      let n = Csr.n g in
      let out = Array.make n [||] in
      Array.iter
        (fun batch ->
          let rows = Bfs_batch.run g batch in
          Array.iteri (fun j row -> out.(batch.(j)) <- row) rows)
        (Bfs_batch.batches n);
      out)

let all_distances_parallel ?domains g =
  Trace.with_span ~name:"bfs.all_distances" (fun () ->
      let bs = Bfs_batch.batches (Csr.n g) in
      let parts = Parallel.map_range ?domains (Array.length bs) (fun b -> Bfs_batch.run g bs.(b)) in
      (* batches are consecutive source ranges, so concatenation is in order *)
      Array.concat (Array.to_list parts))
