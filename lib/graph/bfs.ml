(* Counters are batched: the hot loop below tallies into its own locals and
   the metric cells are touched once per BFS run, so the disabled-mode cost
   is one flag check per *call*, not per node. *)
let m_runs = Metrics.counter "bfs.runs"
let m_visited = Metrics.counter "bfs.nodes_visited"
let m_frontier = Metrics.gauge "bfs.frontier_peak"

let distances_impl g s ~bound ~stop_at =
  let n = Csr.n g in
  let dist = Array.make n (-1) in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  dist.(s) <- 0;
  queue.(0) <- s;
  tail := 1;
  let frontier_peak = ref 1 in
  (* Early exit at *discovery* of [stop_at], not at pop: on dense graphs the
     final BFS layer dominates the work and the target is usually discovered
     long before its layer is settled. *)
  let finished = ref (stop_at = s) in
  while (not !finished) && !head < !tail do
    let v = queue.(!head) in
    incr head;
    if dist.(v) < bound then begin
      try
        Csr.iter_neighbors g v (fun u ->
            if dist.(u) < 0 then begin
              dist.(u) <- dist.(v) + 1;
              if u = stop_at then raise Exit;
              queue.(!tail) <- u;
              incr tail
            end)
      with Exit -> finished := true
    end;
    if !tail - !head > !frontier_peak then frontier_peak := !tail - !head
  done;
  if !Obs.metrics then begin
    Metrics.incr m_runs;
    Metrics.add m_visited !tail;
    Metrics.set_gauge m_frontier !frontier_peak
  end;
  dist

let distances g s = distances_impl g s ~bound:max_int ~stop_at:(-1)

let distances_bounded g s ~bound = distances_impl g s ~bound ~stop_at:(-1)

let distance g u v =
  if u = v then 0 else (distances_impl g u ~bound:max_int ~stop_at:v).(v)

let distance_bounded g u v ~bound =
  if u = v then 0
  else begin
    let d = (distances_impl g u ~bound ~stop_at:v).(v) in
    if d > bound then -1 else d
  end

(* BFS parent tracking shared by the deterministic and randomized path
   extraction.  [choose] picks among shortest-path predecessors of a node. *)
let path_impl g u v ~choose =
  if u = v then Some [| u |]
  else begin
    let dist = distances_impl g u ~bound:max_int ~stop_at:v in
    if dist.(v) < 0 then None
    else begin
      let rec build node acc =
        if node = u then node :: acc
        else begin
          let preds = ref [] in
          Csr.iter_neighbors g node (fun w ->
              if dist.(w) >= 0 && dist.(w) = dist.(node) - 1 then preds := w :: !preds);
          let parent = choose (List.sort compare !preds) in
          build parent (node :: acc)
        end
      in
      Some (Array.of_list (build v []))
    end
  end

let shortest_path g u v =
  let choose = function
    | [] -> assert false
    | p :: _ -> p
  in
  path_impl g u v ~choose

let random_shortest_path g rng u v =
  let choose preds =
    let arr = Array.of_list preds in
    Prng.pick rng arr
  in
  path_impl g u v ~choose

let eccentricity g v =
  let dist = distances g v in
  Array.fold_left max 0 dist

let diameter_sampled g rng ~samples =
  let n = Csr.n g in
  if n = 0 then 0
  else begin
    let sources =
      if samples >= n then Array.init n (fun i -> i)
      else Prng.sample_distinct rng ~n ~k:samples
    in
    Array.fold_left (fun acc s -> max acc (eccentricity g s)) 0 sources
  end

let all_distances g =
  Trace.with_span ~name:"bfs.all_distances" (fun () ->
      Array.init (Csr.n g) (fun s -> distances g s))

let all_distances_parallel ?domains g =
  Trace.with_span ~name:"bfs.all_distances" (fun () ->
      Parallel.map_range ?domains (Csr.n g) (fun s -> distances g s))
