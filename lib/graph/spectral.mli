(** Spectral expansion estimation.

    The paper calls an [n]-node graph a (spectral) expander with expansion
    [λ] when [max(|λ₂|, |λₙ|) ≤ λ], where [λ₁ ≥ … ≥ λₙ] (by magnitude) are the
    adjacency eigenvalues.  For a Δ-regular graph the top eigenvector is the
    all-ones vector with eigenvalue Δ; the expansion is the dominant
    magnitude in its orthogonal complement, which power iteration with
    deflation recovers.  Every expander experiment in the benchmark harness
    *measures* this quantity instead of assuming it (DESIGN.md §3.1). *)

val lambda : ?iterations:int -> ?seed:int -> Csr.t -> float
(** [lambda g] estimates [max(|λ₂|, |λₙ|)] of the adjacency matrix by power
    iteration on the complement of the all-ones vector.  Intended for regular
    or near-regular graphs (all paper inputs).  [iterations] defaults to 300.
    Result is a slight under-estimate on hard instances; accurate to ~1% on
    the graph families used here (validated against closed forms in the test
    suite). *)

val lambda_lanczos : ?iterations:int -> ?seed:int -> Csr.t -> float
(** Like {!lambda} but via the Lanczos process (with full
    reorthogonalization) on the deflated operator, extracting the extreme
    eigenvalues of the tridiagonal matrix by Sturm bisection.  Converges much
    faster than power iteration when [|λ₂| ≈ |λ₃|]; the test suite asserts
    agreement with closed forms and with {!lambda}. *)

val expansion_ratio : ?iterations:int -> ?seed:int -> Csr.t -> float
(** [expansion_ratio g] is [lambda g / Δ] for a Δ-regular graph — the
    normalized second eigenvalue in [0, 1]; small means strong expander.
    Uses the maximum degree for near-regular graphs. *)

val is_expander : ?threshold:float -> Csr.t -> bool
(** [is_expander g] checks [expansion_ratio g <= threshold]
    (default [0.5]). *)
