(** Immutable compressed-sparse-row snapshot of a graph.

    BFS sweeps, spectral power iteration, and the routing measurements are the
    hot loops of the benchmark harness; they all run over this flat
    Bigarray-backed representation ({!Csr_store.t}) instead of the delta-log
    {!Graph.t}.  Kernels borrow rows in place: [xadj.{v} .. xadj.{v+1} - 1]
    indexes straight into [adjncy] with no copying. *)

type t = Graph.csr = private {
  n : int;  (** number of nodes *)
  xadj : Csr_store.ba;  (** offsets: neighbors of [v] live at [xadj.{v} .. xadj.{v+1} - 1] *)
  adjncy : Csr_store.ba;  (** concatenated neighbor lists, sorted ascending per node *)
  weights : Csr_store.ba option;
      (** per-arc positive weights aligned with [adjncy]; [None] = all 1 *)
}

val of_graph : Graph.t -> t
(** Build a fresh snapshot, bypassing the version cache ({!Graph.to_csr}).
    Neighbor lists are sorted ascending so that the snapshot is canonical for
    a given edge set.  Prefer {!snapshot} unless you specifically need a new
    physical copy. *)

val snapshot : Graph.t -> t
(** The memoized snapshot ({!Graph.snapshot}): rebuilt only when the graph's
    mutation {!Graph.version} has moved, otherwise the cached, physically
    equal snapshot is returned.  [csr.snapshot_hits] / [csr.snapshot_builds]
    metrics count the cache behavior. *)

val of_stream : ?m_hint:int -> n:int -> ((int -> int -> unit) -> unit) -> t
(** O(n + m) counting-sort construction from an edge stream, bypassing
    {!Graph.t} entirely ({!Csr_store.of_stream}).  The streaming path for
    million-node graphs. *)

val of_weighted_stream :
  ?m_hint:int -> n:int -> ((int -> int -> int -> unit) -> unit) -> t
(** Weighted streaming construction ({!Csr_store.of_weighted_stream}): each
    [emit u v w] records a positively weighted edge; duplicate edges keep the
    minimum weight. *)

val empty : int -> t
(** The edgeless snapshot on [n] nodes. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (undirected) edges. *)

val degree : t -> int -> int
(** Degree of a node. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Iterate over the neighbors of a node, ascending. *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
(** Fold over the neighbors of a node, ascending. *)

val mem_edge : t -> int -> int -> bool
(** Edge membership by binary search over the sorted neighbor list:
    O(log deg). *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Iterate each edge exactly once as [(u, v)] with [u < v]. *)

val is_weighted : t -> bool
(** Whether the snapshot carries an explicit weight array. *)

val edge_weight : t -> int -> int -> int
(** Weight of an edge (1 on unweighted snapshots); raises [Invalid_argument]
    if absent. *)

val iter_neighbors_w : t -> int -> (int -> int -> unit) -> unit
(** Like {!iter_neighbors} but passing each edge's weight (1 when
    unweighted). *)

val iter_edges_w : t -> (int -> int -> int -> unit) -> unit
(** Like {!iter_edges} but passing each edge's weight (1 when unweighted). *)
