(** Immutable compressed-sparse-row snapshot of a graph.

    BFS sweeps, spectral power iteration, and the routing measurements are the
    hot loops of the benchmark harness; they all run over this flat-array
    representation instead of the hash-based {!Graph.t}. *)

type t = Graph.csr = private {
  n : int;  (** number of nodes *)
  xadj : int array;  (** offsets: neighbors of [v] live at [xadj.(v) .. xadj.(v+1) - 1] *)
  adjncy : int array;  (** concatenated neighbor lists *)
}

val of_graph : Graph.t -> t
(** Build a fresh snapshot, bypassing the version cache ({!Graph.to_csr}).
    Neighbor lists are sorted ascending so that the snapshot is canonical for
    a given edge set.  Prefer {!snapshot} unless you specifically need a new
    physical copy. *)

val snapshot : Graph.t -> t
(** The memoized snapshot ({!Graph.snapshot}): rebuilt only when the graph's
    mutation {!Graph.version} has moved, otherwise the cached, physically
    equal snapshot is returned.  [csr.snapshot_hits] / [csr.snapshot_builds]
    metrics count the cache behavior. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (undirected) edges. *)

val degree : t -> int -> int
(** Degree of a node. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Iterate over the neighbors of a node. *)

val mem_edge : t -> int -> int -> bool
(** Edge membership by binary search over the sorted neighbor list:
    O(log deg). *)
