(** Immutable compressed-sparse-row snapshot of a graph.

    BFS sweeps, spectral power iteration, and the routing measurements are the
    hot loops of the benchmark harness; they all run over this flat-array
    representation instead of the hash-based {!Graph.t}. *)

type t = private {
  n : int;  (** number of nodes *)
  xadj : int array;  (** offsets: neighbors of [v] live at [xadj.(v) .. xadj.(v+1) - 1] *)
  adjncy : int array;  (** concatenated neighbor lists *)
}

val of_graph : Graph.t -> t
(** Snapshot a mutable graph.  Neighbor lists are sorted ascending so that the
    snapshot is canonical for a given edge set. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (undirected) edges. *)

val degree : t -> int -> int
(** Degree of a node. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Iterate over the neighbors of a node. *)

val mem_edge : t -> int -> int -> bool
(** Edge membership by binary search over the sorted neighbor list:
    O(log deg). *)
