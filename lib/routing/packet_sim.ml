type packet = { id : int; path : Routing.path; mutable pos : int }

type stats = {
  makespan : int;
  max_queue : int;
  avg_latency : float;
  congestion : int;
  dilation : int;
  forward_load : int;
}

let remaining p = Array.length p.path - 1 - p.pos

let m_rounds = Metrics.counter "packet_sim.rounds"
let m_round_queue = Metrics.gauge "packet_sim.round_queue"
let m_latency = Metrics.histo "packet_sim.latency"

let run ~n routing = Trace.with_span ~name:"packet_sim.run" @@ fun () ->
  Array.iter
    (fun p -> if Array.length p = 0 then invalid_arg "Packet_sim.run: empty path")
    routing;
  let k = Array.length routing in
  let congestion = Routing.congestion ~n routing in
  (* populate the per-edge load distribution too; the simulation itself only
     needs node congestion, but metric consumers want both histograms *)
  if !Obs.metrics then ignore (Routing.edge_congestion ~n routing);
  let dilation = Array.fold_left (fun acc p -> max acc (Routing.length p)) 0 routing in
  let forward_load =
    let loads = Array.make n 0 in
    Array.iter
      (fun path ->
        (* positions 0 .. len-2 must forward (dedup within a path) *)
        let seen = Hashtbl.create 8 in
        for i = 0 to Array.length path - 2 do
          if not (Hashtbl.mem seen path.(i)) then begin
            Hashtbl.add seen path.(i) ();
            loads.(path.(i)) <- loads.(path.(i)) + 1
          end
        done)
      routing;
    Array.fold_left max 0 loads
  in
  let delivery = Array.make k 0 in
  let queues = Array.make n [] in
  let pending = ref 0 in
  Array.iteri
    (fun id path ->
      let p = { id; path; pos = 0 } in
      if remaining p = 0 then delivery.(id) <- 0
      else begin
        queues.(path.(0)) <- p :: queues.(path.(0));
        incr pending
      end)
    routing;
  let max_queue = ref (Array.fold_left (fun acc q -> max acc (List.length q)) 0 queues) in
  let round = ref 0 in
  (* A greedy schedule of k packets of dilation D and congestion C finishes
     within C*D + D rounds; anything longer is a bug. *)
  let guard = (congestion * dilation) + dilation + 1 in
  while !pending > 0 && !round <= guard do
    incr round;
    (* each node forwards its furthest-to-go packet *)
    let arrivals = ref [] in
    for v = 0 to n - 1 do
      match queues.(v) with
      | [] -> ()
      | q ->
          let best =
            List.fold_left
              (fun acc p ->
                match acc with
                | None -> Some p
                | Some b ->
                    if
                      remaining p > remaining b
                      || (remaining p = remaining b && p.id < b.id)
                    then Some p
                    else acc)
              None q
          in
          (match best with
          | None -> ()
          | Some p ->
              queues.(v) <- List.filter (fun q -> q.id <> p.id) q;
              p.pos <- p.pos + 1;
              if remaining p = 0 then begin
                delivery.(p.id) <- !round;
                decr pending
              end
              else arrivals := p :: !arrivals)
    done;
    List.iter (fun p -> queues.(p.path.(p.pos)) <- p :: queues.(p.path.(p.pos))) !arrivals;
    let widest = Array.fold_left (fun acc q -> max acc (List.length q)) 0 queues in
    max_queue := max !max_queue widest;
    (* the widest queue this round is the instantaneous congestion *)
    Metrics.incr m_rounds;
    Metrics.set_gauge m_round_queue widest
  done;
  if !pending > 0 then invalid_arg "Packet_sim.run: schedule exceeded the C*D guard (bug)";
  if !Obs.metrics then Array.iter (fun d -> Metrics.observe m_latency d) delivery;
  let makespan = Array.fold_left max 0 delivery in
  let avg_latency =
    if k = 0 then 0.0
    else Array.fold_left (fun acc d -> acc +. float_of_int d) 0.0 delivery /. float_of_int k
  in
  { makespan; max_queue = !max_queue; avg_latency; congestion; dilation; forward_load }

let lower_bound s = max s.forward_load s.dilation
