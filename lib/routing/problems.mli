(** Routing-problem generators used as experiment workloads.

    The paper's congestion-stretch statements quantify over all routing
    problems; the benchmarks exercise the canonical hard cases: matchings of
    graph edges (optimal congestion exactly 1), random node matchings, full
    permutations (every node one source and one destination), and the
    all-edges problem from Lemma 1. *)

val edge_matching : Prng.t -> Graph.t -> Routing.problem
(** Random maximal matching of [G]-edges as requests; the matching itself is
    a routing with [C = 1], so measured spanner congestion {e is} the
    congestion stretch. *)

val node_matching : Prng.t -> Graph.t -> k:int -> Routing.problem
(** [k] disjoint random source–destination pairs (endpoints distinct across
    requests; requests need not be edges). *)

val permutation : Prng.t -> Graph.t -> Routing.problem
(** Permutation routing: node [i] sends to [π(i)] for a uniform permutation
    [π] (fixed points dropped). *)

val all_edges : Graph.t -> Routing.problem
(** Every edge a request — the problem used in the proof of Lemma 1 to show
    that a DC-spanner is a distance spanner. *)

val random_pairs : Prng.t -> Graph.t -> k:int -> Routing.problem
(** [k] independent uniform (source ≠ destination) pairs; nodes may repeat
    across requests, so optimal congestion can exceed 1. *)
