(* Hopcroft–Karp over index spaces [0..l-1] (left) and [0..r-1] (right). *)

let infinity_dist = max_int

let m_phases = Metrics.counter "matching.phases"
let m_augmentations = Metrics.counter "matching.augmentations"
let m_path_len = Metrics.histo "matching.augment_path_len"

let hopcroft_karp ~l ~r ~edges =
  (* edges.(i) : list of right indices adjacent to left index i *)
  ignore r;
  let match_l = Array.make l (-1) in
  let match_r = Array.make r (-1) in
  let dist = Array.make l infinity_dist in
  let queue = Queue.create () in
  let bfs () =
    Queue.clear queue;
    for i = 0 to l - 1 do
      if match_l.(i) < 0 then begin
        dist.(i) <- 0;
        Queue.add i queue
      end
      else dist.(i) <- infinity_dist
    done;
    let reachable_free = ref false in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      List.iter
        (fun j ->
          let next = match_r.(j) in
          if next < 0 then reachable_free := true
          else if dist.(next) = infinity_dist then begin
            dist.(next) <- dist.(i) + 1;
            Queue.add next queue
          end)
        edges.(i)
    done;
    !reachable_free
  in
  (* [leaf_depth] is the number of matched edges the successful augmenting
     path traversed; the path length in edges is [2 * leaf_depth + 1]. *)
  let leaf_depth = ref 0 in
  let rec dfs i depth =
    let rec try_edges = function
      | [] ->
          dist.(i) <- infinity_dist;
          false
      | j :: rest ->
          let next = match_r.(j) in
          let ok =
            if next < 0 then begin
              leaf_depth := depth;
              true
            end
            else if dist.(next) = dist.(i) + 1 then dfs next (depth + 1)
            else false
          in
          if ok then begin
            match_l.(i) <- j;
            match_r.(j) <- i;
            true
          end
          else try_edges rest
    in
    try_edges edges.(i)
  in
  while bfs () do
    Metrics.incr m_phases;
    for i = 0 to l - 1 do
      if match_l.(i) < 0 && dfs i 0 then begin
        Metrics.incr m_augmentations;
        Metrics.observe m_path_len ((2 * !leaf_depth) + 1)
      end
    done
  done;
  match_l

let maximum ~left ~right ~adj =
  let l = Array.length left and r = Array.length right in
  let edges =
    Array.init l (fun i ->
        let acc = ref [] in
        for j = r - 1 downto 0 do
          if adj left.(i) right.(j) then acc := j :: !acc
        done;
        !acc)
  in
  let match_l = hopcroft_karp ~l ~r ~edges in
  let out = ref [] in
  Array.iteri (fun i j -> if j >= 0 then out := (left.(i), right.(j)) :: !out) match_l;
  Array.of_list (List.rev !out)

(* Sorted neighbor arrays make the result canonical: it depends only on the
   edge set, not on adjacency-hashtable iteration order.  The distributed
   router relies on this to reproduce the centralized choice from local
   knowledge. *)
let sorted_neighbors g u =
  let a = Array.make (Graph.degree g u) 0 in
  let i = ref 0 in
  Graph.iter_neighbors g u (fun x ->
      a.(!i) <- x;
      incr i);
  Array.sort compare a;
  a

let neighborhood_matching g u v =
  let nu = sorted_neighbors g u in
  let nv = sorted_neighbors g v in
  let in_nv = Hashtbl.create (Array.length nv) in
  Array.iter (fun x -> Hashtbl.replace in_nv x ()) nv;
  let in_nu = Hashtbl.create (Array.length nu) in
  Array.iter (fun x -> Hashtbl.replace in_nu x ()) nu;
  let commons =
    List.filter (fun x -> Hashtbl.mem in_nv x && x <> v && x <> u) (Array.to_list nu)
  in
  let left =
    Array.of_list
      (List.filter
         (fun x -> (not (Hashtbl.mem in_nv x)) && x <> v && x <> u)
         (Array.to_list nu))
  in
  let right =
    Array.of_list
      (List.filter
         (fun x -> (not (Hashtbl.mem in_nu x)) && x <> u && x <> v)
         (Array.to_list nv))
  in
  let matched = maximum ~left ~right ~adj:(fun x y -> Graph.mem_edge g x y) in
  (commons, matched)
