type t = { colors : (int * int, int) Hashtbl.t; num : int }

let norm u v = if u < v then (u, v) else (v, u)

(* Misra & Gries (1992).  State: [at.(v).(c)] is the neighbor joined to [v] by
   the edge colored [c], or -1.  Colors range over [0 .. max_degree]. *)
let misra_gries g =
  let n = Graph.n g in
  let ncolors = Graph.max_degree g + 1 in
  let at = Array.init n (fun _ -> Array.make (max ncolors 1) (-1)) in
  let tbl = Hashtbl.create (2 * Graph.m g) in
  let color_of u v = Hashtbl.find_opt tbl (norm u v) in
  let set u v c =
    at.(u).(c) <- v;
    at.(v).(c) <- u;
    Hashtbl.replace tbl (norm u v) c
  in
  let unset u v =
    match color_of u v with
    | None -> ()
    | Some c ->
        at.(u).(c) <- -1;
        at.(v).(c) <- -1;
        Hashtbl.remove tbl (norm u v)
  in
  let free v =
    let rec go c = if at.(v).(c) < 0 then c else go (c + 1) in
    go 0
  in
  let is_free v c = at.(v).(c) < 0 in
  (* Invert the maximal path through [start] of edges alternately colored
     [d], [c] (starting with [d]). *)
  let invert_path start c d =
    let rec collect node col acc =
      let next = at.(node).(col) in
      if next < 0 then acc
      else collect next (if col = d then c else d) ((node, next) :: acc)
    in
    let path_edges = List.rev (collect start d []) in
    let colored =
      List.map
        (fun (a, b) ->
          match color_of a b with
          | Some col -> (a, b, col)
          | None -> assert false)
        path_edges
    in
    List.iter (fun (a, b, _) -> unset a b) colored;
    List.iter (fun (a, b, col) -> set a b (if col = d then c else d)) colored
  in
  (* Maximal fan of [u] starting at the uncolored edge towards [v]. *)
  let build_fan u v =
    let fan = ref [ v ] in
    let in_fan = Hashtbl.create 8 in
    Hashtbl.add in_fan v ();
    let rec extend last =
      let found = ref None in
      let c = ref 0 in
      while !found = None && !c < ncolors do
        let w = at.(u).(!c) in
        if w >= 0 && (not (Hashtbl.mem in_fan w)) && is_free last !c then found := Some w;
        incr c
      done;
      match !found with
      | Some w ->
          fan := w :: !fan;
          Hashtbl.add in_fan w ();
          extend w
      | None -> ()
    in
    extend v;
    Array.of_list (List.rev !fan)
  in
  let color_edge u v =
    let fan = build_fan u v in
    let k = Array.length fan - 1 in
    let c = free u in
    let d = free fan.(k) in
    if c <> d then invert_path u c d;
    (* After the inversion, find the shortest fan prefix [fan.(0..i)] that is
       still a fan and whose end has [d] free; rotate it and finish with [d]. *)
    let rec find i =
      if i > k then None
      else begin
        let valid =
          i = 0
          ||
          match color_of u fan.(i) with
          | None -> false
          | Some col -> is_free fan.(i - 1) col
        in
        if not valid then None
        else if is_free fan.(i) d then Some i
        else find (i + 1)
      end
    in
    let w_idx =
      match find 0 with
      | Some i -> i
      | None ->
          (* Guaranteed by the Misra–Gries invariant. *)
          assert false
    in
    for j = 0 to w_idx - 1 do
      match color_of u fan.(j + 1) with
      | None -> assert false
      | Some col ->
          unset u fan.(j + 1);
          set u fan.(j) col
    done;
    set u fan.(w_idx) d
  in
  Graph.iter_edges g color_edge;
  let used = Hashtbl.fold (fun _ c acc -> max acc (c + 1)) tbl 0 in
  { colors = tbl; num = used }

let greedy g =
  let tbl = Hashtbl.create (2 * Graph.m g) in
  let n = Graph.n g in
  let limit = max 1 ((2 * Graph.max_degree g) + 1) in
  let used = Array.init n (fun _ -> Array.make limit false) in
  let maxc = ref 0 in
  Graph.iter_edges g (fun u v ->
      let c = ref 0 in
      while used.(u).(!c) || used.(v).(!c) do
        incr c
      done;
      used.(u).(!c) <- true;
      used.(v).(!c) <- true;
      Hashtbl.replace tbl (norm u v) !c;
      maxc := max !maxc (!c + 1));
  { colors = tbl; num = !maxc }

let color_classes { colors; num } =
  let classes = Array.make num [] in
  Hashtbl.iter (fun e c -> classes.(c) <- e :: classes.(c)) colors;
  Array.map Array.of_list classes

let is_proper g { colors; num = _ } =
  let complete = ref true in
  Graph.iter_edges g (fun u v -> if not (Hashtbl.mem colors (norm u v)) then complete := false);
  !complete
  &&
  let proper = ref true in
  for v = 0 to Graph.n g - 1 do
    let seen = Hashtbl.create 8 in
    Graph.iter_neighbors g v (fun u ->
        match Hashtbl.find_opt colors (norm u v) with
        | None -> proper := false
        | Some c ->
            if Hashtbl.mem seen c then proper := false else Hashtbl.add seen c ())
  done;
  !proper
