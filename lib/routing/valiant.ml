let leg g rng a b =
  match Bfs.random_shortest_path g rng a b with
  | Some p -> p
  | None -> invalid_arg "Valiant.route: disconnected request"

let route g rng problem =
  let n = Csr.n g in
  Array.map
    (fun { Routing.src; dst } ->
      let intermediate =
        if n <= 2 then src
        else begin
          let rec draw () =
            let w = Prng.int rng n in
            if w = src || w = dst then draw () else w
          in
          draw ()
        end
      in
      if intermediate = src then leg g rng src dst
      else begin
        let first = leg g rng src intermediate in
        let second = leg g rng intermediate dst in
        (* splice, dropping the duplicated intermediate *)
        Array.append first (Array.sub second 1 (Array.length second - 1))
      end)
    problem

let congestion g rng problem = Routing.congestion ~n:(Csr.n g) (route g rng problem)

let torus_transpose side =
  let id r c = (r * side) + c in
  let out = ref [] in
  for r = 0 to side - 1 do
    for c = 0 to side - 1 do
      if r <> c then out := { Routing.src = id r c; dst = id c r } :: !out
    done
  done;
  Array.of_list (List.rev !out)

let hypercube_bit_reversal d =
  let n = 1 lsl d in
  let reverse x =
    let r = ref 0 in
    for bit = 0 to d - 1 do
      if x land (1 lsl bit) <> 0 then r := !r lor (1 lsl (d - 1 - bit))
    done;
    !r
  in
  let out = ref [] in
  for v = n - 1 downto 0 do
    let w = reverse v in
    if w <> v then out := { Routing.src = v; dst = w } :: !out
  done;
  Array.of_list !out
