type matching_router = (int * int) array -> Routing.path array

type stats = {
  levels : int;
  degree_sum : int;
  matchings : int;
  max_level_degree : int;
}

type result = { substitute : Routing.routing; stats : stats }

let norm u v = if u < v then (u, v) else (v, u)

(* The paper's level loop (Algorithm 2, lines 4–10) pops, at every level, one
   owning path per live edge.  Equivalently: if an edge is used by paths
   [p₁ … p_t] (in scan order), the pair [(p_i, e)] gets level [i-1], and the
   level subgraph [Y_k] consists of the edges with more than [k] owners.  We
   compute that closed form directly. *)
let assign_levels routing =
  let owners = Hashtbl.create 1024 in
  (* level_of : (path_index, edge) -> level *)
  let level_of = Hashtbl.create 1024 in
  Array.iteri
    (fun pi path ->
      for i = 0 to Array.length path - 2 do
        let e = norm path.(i) path.(i + 1) in
        let count = try Hashtbl.find owners e with Not_found -> 0 in
        Hashtbl.replace owners e (count + 1);
        (* A simple path uses each edge once; if a degenerate path repeats an
           edge we keep the first (lowest) level for it, matching the set
           semantics of A_p. *)
        if not (Hashtbl.mem level_of (pi, e)) then Hashtbl.add level_of (pi, e) count
      done)
    routing;
  let max_level = Hashtbl.fold (fun _ c acc -> max acc c) owners 0 in
  (owners, level_of, max_level)

(* The paper's while-loop, literally (for cross-checking the closed form):
   pick, per level, one owning path per live edge, in ascending path order. *)
let literal_levels routing =
  let a_sets =
    Array.map
      (fun path ->
        let set = Hashtbl.create 8 in
        for i = 0 to Array.length path - 2 do
          Hashtbl.replace set (norm path.(i) path.(i + 1)) ()
        done;
        set)
      routing
  in
  let out = ref [] in
  let level = ref 0 in
  let continue = ref true in
  while !continue do
    (* Y_r = union of the remaining A_p *)
    let owners = Hashtbl.create 64 in
    Array.iteri
      (fun pi set ->
        Hashtbl.iter
          (fun e () -> if not (Hashtbl.mem owners e) then Hashtbl.add owners e pi)
          set)
      a_sets;
    if Hashtbl.length owners = 0 then continue := false
    else begin
      Hashtbl.iter
        (fun e pi ->
          Hashtbl.remove a_sets.(pi) e;
          out := ((pi, e), !level) :: !out)
        owners;
      incr level
    end
  done;
  !out

let level_graphs ~n routing =
  let owners, level_of, max_level = assign_levels routing in
  let graphs = Array.init max_level (fun _ -> Graph.create n) in
  Hashtbl.iter
    (fun (u, v) count ->
      for k = 0 to count - 1 do
        ignore (Graph.add_edge graphs.(k) u v)
      done)
    owners;
  (graphs, level_of)

let level_matchings ~n routing =
  let graphs, _ = level_graphs ~n routing in
  Array.to_list graphs
  |> List.concat_map (fun g ->
         let coloring = Edge_coloring.misra_gries g in
         Array.to_list (Edge_coloring.color_classes coloring))
  |> Array.of_list

let run ~n ~router routing =
  let graphs, level_of = level_graphs ~n routing in
  let levels = Array.length graphs in
  (* replacement : (level, edge) -> spanner path oriented by the normalized
     edge (from min endpoint to max endpoint). *)
  let replacement = Hashtbl.create 1024 in
  let degree_sum = ref 0 in
  let matchings = ref 0 in
  let max_level_degree = ref 0 in
  Array.iteri
    (fun k g ->
      let d = Graph.max_degree g in
      degree_sum := !degree_sum + d + 1;
      max_level_degree := max !max_level_degree d;
      let coloring = Edge_coloring.misra_gries g in
      let classes = Edge_coloring.color_classes coloring in
      Array.iter
        (fun matching ->
          if Array.length matching > 0 then begin
            incr matchings;
            let paths = router matching in
            if Array.length paths <> Array.length matching then
              invalid_arg "Decompose.run: router returned wrong number of paths";
            Array.iteri
              (fun i (u, v) ->
                let p = paths.(i) in
                let len = Array.length p in
                if len = 0 || p.(0) <> u || p.(len - 1) <> v then
                  invalid_arg "Decompose.run: router path endpoints mismatch";
                Hashtbl.replace replacement (k, norm u v) p)
              matching
          end)
        classes)
    graphs;
  let reverse p =
    let len = Array.length p in
    Array.init len (fun i -> p.(len - 1 - i))
  in
  let splice pi path =
    if Array.length path <= 1 then path
    else begin
      let out = ref [ path.(0) ] in
      for i = 0 to Array.length path - 2 do
        let a = path.(i) and b = path.(i + 1) in
        let e = norm a b in
        let k =
          match Hashtbl.find_opt level_of (pi, e) with
          | Some k -> k
          | None -> assert false
        in
        let q =
          match Hashtbl.find_opt replacement (k, e) with
          | Some q -> q
          | None -> assert false
        in
        let q = if q.(0) = a then q else reverse q in
        for j = 1 to Array.length q - 1 do
          out := q.(j) :: !out
        done
      done;
      Array.of_list (List.rev !out)
    end
  in
  let substitute = Array.mapi splice routing in
  {
    substitute;
    stats =
      {
        levels;
        degree_sum = !degree_sum;
        matchings = !matchings;
        max_level_degree = !max_level_degree;
      };
  }
