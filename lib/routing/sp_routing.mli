(** Shortest-path routing of a problem on a graph.

    This is the baseline router: it realizes each request along a (randomized)
    BFS shortest path.  On the original graph [G] it provides the reference
    congestion [C_G(R)] that stretch measurements compare against; on
    bounded-degree expanders it also serves as the substitute for the
    permutation-routing strategies of Scheideler [25] (DESIGN.md §3.4). *)

val route : Csr.t -> Routing.problem -> Routing.routing
(** Deterministic shortest paths (smallest-index parents).  Raises [Failure]
    if some request is disconnected. *)

val route_random : Csr.t -> Prng.t -> Routing.problem -> Routing.routing
(** Shortest paths with uniformly random parent choice in the BFS DAG —
    spreads load across equally short paths. *)

val congestion_of_problem : Csr.t -> Prng.t -> Routing.problem -> int
(** Congestion of the randomized shortest-path routing on the graph: the
    baseline [C_G(R)] proxy used in experiments (exact lower bound 1 holds
    when the problem is an edge matching). *)
