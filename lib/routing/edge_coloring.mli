(** Proper edge coloring.

    Algorithm 2 (paper Section 6) colors each level subgraph [G_k] with
    [m_k ≤ d_k + 1] colors so that every color class is a matching.  The
    Misra–Gries constructive proof of Vizing's theorem achieves exactly the
    [Δ+1] bound the paper requires; the greedy variant (≤ 2Δ−1 colors) is
    kept as an ablation baseline. *)

type t = {
  colors : (int * int, int) Hashtbl.t;  (** normalized edge → color in [0 .. num - 1] *)
  num : int;  (** number of distinct colors used *)
}

val misra_gries : Graph.t -> t
(** Proper edge coloring with at most [Δ + 1] colors in O(m·Δ) time. *)

val greedy : Graph.t -> t
(** First-fit proper edge coloring (≤ [2Δ − 1] colors); ablation baseline. *)

val color_classes : t -> (int * int) array array
(** [color_classes c] groups edges by color; every class is a matching. *)

val is_proper : Graph.t -> t -> bool
(** Every edge colored, and no two incident edges share a color. *)
