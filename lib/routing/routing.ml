type pair = { src : int; dst : int }
type problem = pair array
type path = int array
type routing = path array

let length p = Array.length p - 1

(* Congestion is the paper's central quantity, so its full distribution (not
   just the max) is observed whenever metrics are on: every nonzero per-node
   load and every per-edge load lands in a histogram, giving p50/p90/p99
   congestion in metric dumps for free. *)
let m_node_load = Metrics.histo "routing.node_load"
let m_edge_load = Metrics.histo "routing.edge_load"

(* Count each path at most once per node: mark nodes with the path's id. *)
let node_loads ~n routing =
  let loads = Array.make n 0 in
  let stamp = Array.make n (-1) in
  Array.iteri
    (fun id path ->
      Array.iter
        (fun v ->
          if stamp.(v) <> id then begin
            stamp.(v) <- id;
            loads.(v) <- loads.(v) + 1
          end)
        path)
    routing;
  loads

let congestion ~n routing =
  let loads = node_loads ~n routing in
  if !Obs.metrics then
    Array.iter (fun l -> if l > 0 then Metrics.observe m_node_load l) loads;
  Array.fold_left max 0 loads

let edge_congestion ~n routing =
  ignore n;
  let loads = Hashtbl.create 256 in
  let bump u v =
    let e = if u < v then (u, v) else (v, u) in
    let cur = try Hashtbl.find loads e with Not_found -> 0 in
    Hashtbl.replace loads e (cur + 1)
  in
  Array.iter
    (fun path ->
      let seen = Hashtbl.create 8 in
      for i = 0 to Array.length path - 2 do
        let u = path.(i) and v = path.(i + 1) in
        let e = if u < v then (u, v) else (v, u) in
        if not (Hashtbl.mem seen e) then begin
          Hashtbl.add seen e ();
          bump u v
        end
      done)
    routing;
  if !Obs.metrics then Hashtbl.iter (fun _ c -> Metrics.observe m_edge_load c) loads;
  Hashtbl.fold (fun _ c acc -> max acc c) loads 0

let is_valid_path g p =
  Array.length p > 0
  &&
  let ok = ref true in
  for i = 0 to Array.length p - 2 do
    if not (Graph.mem_edge g p.(i) p.(i + 1)) then ok := false
  done;
  !ok

let is_valid g problem routing =
  Array.length problem = Array.length routing
  && Array.for_all2
       (fun { src; dst } path ->
         is_valid_path g path
         && Array.length path > 0
         && path.(0) = src
         && path.(Array.length path - 1) = dst)
       problem routing

let problem_of_edges edges = Array.map (fun (u, v) -> { src = u; dst = v }) edges

let max_stretch substitute ~against =
  if Array.length substitute <> Array.length against then
    invalid_arg "Routing.max_stretch: routing size mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun i p ->
      let orig = length against.(i) in
      if orig > 0 then
        worst := max !worst (float_of_int (length p) /. float_of_int orig))
    substitute;
  !worst

let pp_path fmt p =
  Format.fprintf fmt "[%s]" (String.concat ";" (Array.to_list (Array.map string_of_int p)))
