(** Valiant's randomized routing (random intermediate destinations).

    Rows 2–3 of the paper's Table 1 rely on permutation routing on
    bounded-degree expanders with polylogarithmic congestion (Scheideler
    [25]).  The classical constructive way to beat {e adversarial}
    permutations obliviously is Valiant's two-phase scheme: route each
    request [u → v] as [u → w → v] through an independent uniformly random
    intermediate node [w], each leg along a (randomized) shortest path.  Any
    fixed permutation then behaves like two random routings, so the maximum
    load concentrates near its mean.

    The [ablations/valiant] bench block compares direct shortest-path routing
    against Valiant routing on adversarial permutations (torus transpose,
    hypercube bit-reversal) and on random permutations — reproducing the
    textbook phenomenon that motivates the [25] citation. *)

val route : Csr.t -> Prng.t -> Routing.problem -> Routing.routing
(** Two-phase Valiant routing; each returned path is the concatenation of
    two randomized shortest paths (through a uniform intermediate, resampled
    if it equals an endpoint on graphs with ≥ 3 nodes).  Raises [Failure] on
    disconnected requests. *)

val congestion : Csr.t -> Prng.t -> Routing.problem -> int
(** Node congestion of one {!route} draw. *)

val torus_transpose : int -> Routing.problem
(** The transpose permutation [(r, c) → (c, r)] on a [side × side] torus
    (node ids as in {!Generators.torus}) — the classic adversarial pattern
    for dimension-ordered mesh routing. *)

val hypercube_bit_reversal : int -> Routing.problem
(** The bit-reversal permutation on the [d]-dimensional hypercube — the
    classic adversarial pattern for oblivious hypercube routing. *)
