(** Next-hop routing tables.

    The paper's introduction motivates DC-spanners by routing-table size:
    a node's forwarding state has one {e port} per incident spanner edge,
    and (for shortest-path routing) one next-hop entry per destination.
    This module compiles a graph into concrete forwarding tables so that the
    examples and benches can report real state sizes rather than proxies:

    - [entries] — total (source, destination) next-hop entries, [n(n−1)]
      for a connected graph (destination-indexed tables);
    - [ports] — total port state, [2·m]: this is the component a sparse
      spanner shrinks.

    Tables implement deterministic shortest-path forwarding (smallest-index
    BFS parents), so a packet forwarded hop by hop follows a shortest path —
    verified against {!Bfs.distance} in the test suite. *)

type t

val compile : Csr.t -> t
(** Build tables by one reverse-BFS sweep per destination: O(n·m) time,
    O(n²) ints of memory — sized for experiment-scale graphs. *)

val next_hop : t -> src:int -> dst:int -> int option
(** The neighbor [src] forwards to for [dst]; [None] if unreachable or
    [src = dst]. *)

val forward : t -> src:int -> dst:int -> Routing.path option
(** Follow the tables hop by hop; the resulting path is a shortest path. *)

val entries : t -> int
(** Total next-hop entries stored (pairs with a defined hop). *)

val ports : t -> int
(** Total port state: sum of node degrees = [2m]. *)
