let write problem path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "p %d\n" (Array.length problem);
      Array.iter (fun { Routing.src; dst } -> Printf.fprintf oc "%d %d\n" src dst) problem)

let read ?n path =
  let fail line msg = Io_error.raise_error ~file:path ~line msg in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let expected = ref None in
      let acc = ref [] in
      let line_no = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr line_no;
           let line = String.trim line in
           if line <> "" && line.[0] <> '#' then begin
             let fields =
               String.split_on_char ' ' line
               |> List.concat_map (String.split_on_char '\t')
               |> List.filter (fun s -> s <> "")
             in
             match (!expected, fields) with
             | None, [ "p"; k ] -> (
                 match int_of_string_opt k with
                 | Some k when k >= 0 -> expected := Some k
                 | _ -> fail !line_no "bad header")
             | None, _ -> fail !line_no "expected header 'p <requests>'"
             | Some _, [ a; b ] -> (
                 match (int_of_string_opt a, int_of_string_opt b) with
                 | Some src, Some dst ->
                     if src = dst then fail !line_no "self-loop request"
                     else begin
                       (match n with
                       | Some n when src < 0 || dst < 0 || src >= n || dst >= n ->
                           fail !line_no "endpoint out of range"
                       | _ -> ());
                       acc := { Routing.src; dst } :: !acc
                     end
                 | _ -> fail !line_no "bad request line")
             | Some _, _ -> fail !line_no "bad request line"
           end
         done
       with End_of_file -> ());
      match !expected with
      | None -> fail 0 "empty input (missing header)"
      | Some k ->
          let problem = Array.of_list (List.rev !acc) in
          if Array.length problem <> k then
            fail !line_no
              (Printf.sprintf "header declares %d requests but %d were read" k
                 (Array.length problem));
          problem)
