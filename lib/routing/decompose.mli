(** Algorithm 2: substitute routings via matchings (paper Section 6).

    Given a routing [P] on [G] and a way to route any {e matching} of
    [G]-edges on a spanner [H], this module constructs a substitute routing
    [P'] on [H]:

    + every edge of every path is assigned a {e level}: an edge used by [t]
      paths appears in the nested level subgraphs [Y_0 ⊇ Y_1 ⊇ … ⊇ Y_{t-1}],
      once per owning path (paper's while-loop, lines 4–10);
    + each level subgraph [G_k] is properly edge-colored with
      [m_k ≤ d_k + 1] colors (Misra–Gries), so each color class is a matching
      [M_{k,i}];
    + each matching is routed on [H] by the caller-supplied router, and the
      replacement paths are spliced back into the original paths.

    Lemma 21/22 give [Σ_k (d_k + 1) ≤ 12·C(P)·log n] and hence congestion
    [C(P') ≤ 12·β'·C(P)·log n] when the router guarantees congestion [β'] per
    matching; Lemma 23 bounds the number of distinct matchings by [O(n³)].
    The benchmark harness measures all three quantities. *)

type matching_router = (int * int) array -> Routing.path array
(** [route pairs] must return one path per pair, oriented from the first to
    the second element, using only spanner edges.  Pairs within one call form
    a matching. *)

type stats = {
  levels : int;  (** [r], the number of level subgraphs *)
  degree_sum : int;  (** [Σ_k (d_k + 1)] — bounded by [12·C(P)·log n] (Lemma 21) *)
  matchings : int;  (** total number of matchings routed *)
  max_level_degree : int;  (** [d_1], the largest level degree *)
}

type result = { substitute : Routing.routing; stats : stats }

val run : n:int -> router:matching_router -> Routing.routing -> result
(** Full Algorithm 2.  [n] is the node count of the underlying graphs.
    Raises if the router returns a path with wrong endpoints (corrupted
    splice would silently mis-route otherwise). *)

val literal_levels : Routing.routing -> ((int * (int * int)) * int) list
(** The paper's Algorithm 2 while-loop (lines 1–10), executed literally:
    maintain the per-path edge sets [A_p]; while any is non-empty, form
    [Y_r = ∪ A_p], pick for every edge of [Y_r] one owning path, remove the
    edge from it and record level [r] for the pair [(p, e)].  Returns the
    [(path index, edge) → level] assignment.  Exposed so the test suite can
    assert it coincides with the closed-form assignment {!run} uses (an edge
    used by [t] paths appears once per level [0 .. t-1]). *)

val level_matchings : n:int -> Routing.routing -> (int * int) array array
(** Just the decomposition: all matchings [M_{k,i}] produced across levels;
    exposed for the Lemma 23 measurements and for property tests (each
    returned class is a matching; their multiset union is exactly the
    multiset of path edges). *)
