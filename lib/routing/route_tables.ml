type t = {
  n : int;
  hops : int array array;  (** hops.(dst).(src) = next hop from src toward dst, -1 if none *)
  ports : int;
}

let compile g =
  let n = Csr.n g in
  let hops =
    Array.init n (fun dst ->
        (* reverse BFS from the destination: the parent pointer of [src]
           (toward smaller distance) is its next hop *)
        let dist = Bfs.distances g dst in
        let hop = Array.make n (-1) in
        for src = 0 to n - 1 do
          if src <> dst && dist.(src) > 0 then begin
            let best = ref (-1) in
            Csr.iter_neighbors g src (fun u ->
                if dist.(u) >= 0 && dist.(u) = dist.(src) - 1 && (!best < 0 || u < !best) then
                  best := u);
            hop.(src) <- !best
          end
        done;
        hop)
  in
  let ports = ref 0 in
  for v = 0 to n - 1 do
    ports := !ports + Csr.degree g v
  done;
  { n; hops; ports = !ports }

let next_hop t ~src ~dst =
  if src = dst then None
  else begin
    let h = t.hops.(dst).(src) in
    if h < 0 then None else Some h
  end

let forward t ~src ~dst =
  if src = dst then Some [| src |]
  else begin
    let rec go v acc steps =
      if steps > t.n then None (* defensive: would mean a forwarding loop *)
      else if v = dst then Some (Array.of_list (List.rev (v :: acc)))
      else
        match next_hop t ~src:v ~dst with
        | None -> None
        | Some h -> go h (v :: acc) (steps + 1)
    in
    go src [] 0
  end

let entries t =
  let count = ref 0 in
  Array.iter (fun hop -> Array.iter (fun h -> if h >= 0 then incr count) hop) t.hops;
  !count

let ports t = t.ports
