(** Maximum bipartite matching (Hopcroft–Karp).

    Lemma 4 of the paper guarantees a matching of size [Δ(1 − λn/Δ²)] between
    the neighborhoods of any two nodes of an expander; Theorem 2's spanner
    routes a removed edge [{u,v}] over a random edge of that matching that
    survived the sampling.  This module computes those matchings exactly. *)

val maximum :
  left:int array -> right:int array -> adj:(int -> int -> bool) -> (int * int) array
(** [maximum ~left ~right ~adj] computes a maximum matching of the bipartite
    graph whose parts are the two node arrays and where [adj l r] tells
    whether the pair is connected.  Both arrays must contain distinct values
    (within themselves); entries shared between the two arrays are treated as
    distinct left/right copies with no implicit self-edge.  Returns pairs of
    node {e values} [(l, r)].  Runs in [O(E √V)]. *)

val neighborhood_matching : Graph.t -> int -> int -> int list * (int * int) array
(** [neighborhood_matching g u v] realizes Lemma 4 / Figure 2 for the pair
    [(u, v)]: it returns [(commons, matched)] where [commons] are the common
    neighbors of [u] and [v] (each yields a 2-hop path [u–x–v]), and
    [matched] is a maximum matching, using [E(g)], between the exclusive
    neighborhoods [N(u) \ (N(v) ∪ {v})] and [N(v) \ (N(u) ∪ {u})] (each edge
    [(x, y)] yields the 3-hop path [u–x–y–v]).  The Lemma 4 bound applies to
    [|commons| + |matched|]. *)
