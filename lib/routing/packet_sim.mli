(** Store-and-forward packet simulation under node capacity 1.

    The paper's wireless motivation (Section 1.1, [12]) is that {e node}
    congestion governs packet latency and queue growth: a wireless node can
    receive/forward at most one packet per time slot.  This simulator makes
    that concrete: given a routing (one path per packet), it plays out
    synchronous rounds in which every node forwards at most one queued
    packet along its path, and reports the realized makespan, latency and
    queue statistics.

    Scheduling policy: furthest-to-go first (ties by packet id) — a standard
    greedy policy under which the makespan lands between the trivial lower
    bound [max(C, D)] (congestion / dilation) and the naive upper bound
    [C·D + D]; the classic Leighton–Maggs–Rao result says [O(C + D)] is
    achievable, and on our workloads greedy tracks [C + D] closely, which the
    benches report.

    Model details: a packet occupies its source's queue at time 0; one packet
    departs per node per round (the paper's node-capacity model); delivery
    happens when the packet reaches the last node of its path.  Packets with
    single-node paths deliver at time 0. *)

type stats = {
  makespan : int;  (** round by which every packet was delivered *)
  max_queue : int;  (** largest queue length observed at any node *)
  avg_latency : float;  (** mean delivery round over packets *)
  congestion : int;  (** [C]: node congestion of the routing (endpoints included) *)
  dilation : int;  (** [D]: longest path length *)
  forward_load : int;
      (** max over nodes of the number of packets the node must {e forward}
          (paths through a non-final position) — the capacity-1 lower bound;
          differs from [C] only by endpoint terms *)
}

val run : n:int -> Routing.routing -> stats
(** Simulate the routing on an [n]-node network.  Deterministic.  Raises
    [Invalid_argument] on an empty path. *)

val lower_bound : stats -> int
(** [max(forward_load, D)] — no schedule can beat it: a node forwards at
    most one packet per round and the longest path needs [D] rounds.  ([C]
    itself is {e not} a makespan bound because destinations absorb arrivals
    without forwarding.) *)
