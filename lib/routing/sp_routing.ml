let route_with find g problem =
  Array.map
    (fun { Routing.src; dst } ->
      match find g src dst with
      | Some p -> p
      | None -> invalid_arg "Sp_routing: request endpoints are disconnected")
    problem

let route g problem = route_with Bfs.shortest_path g problem

let route_random g rng problem =
  route_with (fun g u v -> Bfs.random_shortest_path g rng u v) g problem

let congestion_of_problem g rng problem =
  let routing = route_random g rng problem in
  Routing.congestion ~n:(Csr.n g) routing
