(** Routing problems, routings, and node congestion (paper Section 2).

    A {e routing problem} [R] is a set of source–destination pairs.  A
    {e routing} [P] for [R] assigns each pair a path.  The {e node congestion}
    [C(P)] is the maximum, over nodes [v], of the number of paths that use
    [v] — each path counts at most once per node even if it revisits it,
    matching the paper's definition [C(P, v) = |{p ∈ P : v ∈ p}|]. *)

type pair = { src : int; dst : int }
(** One routing request. *)

type problem = pair array
(** A routing problem [R = {(u₁,v₁), …, (u_k,v_k)}]. *)

type path = int array
(** A path as its node sequence; [p.(0)] is the source. *)

type routing = path array
(** One path per request, in the same order as the problem. *)

val length : path -> int
(** [length p] is the number of edges [l(p)]. *)

val node_loads : n:int -> routing -> int array
(** [node_loads ~n p] gives [C(P, v)] for every node [v] of a graph with [n]
    nodes. *)

val congestion : n:int -> routing -> int
(** [congestion ~n p] is [C(P) = max_v C(P, v)]; [0] for an empty routing. *)

val edge_congestion : n:int -> routing -> int
(** Maximum number of paths crossing any single edge (paths count once per
    edge).  Not used by the paper's definitions but reported in experiments
    for context. *)

val is_valid_path : Graph.t -> path -> bool
(** Consecutive nodes are adjacent in the graph and the path is non-empty.
    A single node is a valid (empty) path. *)

val is_valid : Graph.t -> problem -> routing -> bool
(** The routing solves the problem on the graph: same cardinality, matching
    endpoints, all paths valid. *)

val problem_of_edges : (int * int) array -> problem
(** Treat each edge as a request (arbitrary orientation) — the construction
    used in Lemma 1 and for matching routing problems [R_M]. *)

val max_stretch : routing -> against:routing -> float
(** [max_stretch p' ~against:p] is [max_i l(p'_i)/l(p_i)] (paths of length 0
    are skipped); the distance-stretch certificate for a substitute routing. *)

val pp_path : Format.formatter -> path -> unit
(** Debug printer. *)
