(** Matchings on general graphs.

    A matching routing problem (paper Theorem 1) is a set of requests in which
    every node occurs at most once; when the requests are graph edges the
    matching itself is a routing of congestion 1. *)

val is_matching : (int * int) array -> bool
(** No node appears twice across the pairs and no pair is a self-loop. *)

val greedy_maximal : Graph.t -> (int * int) array
(** Maximal (not maximum) matching by scanning edges in normalized order:
    deterministic, size ≥ half of maximum. *)

val random_maximal : Prng.t -> Graph.t -> (int * int) array
(** Maximal matching built over a uniformly shuffled edge order; used to
    generate random matching routing problems whose requests are [G]-edges. *)

val random_node_matching : Prng.t -> int -> k:int -> (int * int) array
(** [random_node_matching rng n ~k] pairs [2k] distinct random nodes into [k]
    source–destination pairs (not necessarily edges) — a matching routing
    problem in the paper's sense.  Requires [2k ≤ n]. *)
