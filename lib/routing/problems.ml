
let edge_matching rng g = Routing.problem_of_edges (Matching.random_maximal rng g)

let node_matching rng g ~k =
  Routing.problem_of_edges (Matching.random_node_matching rng (Graph.n g) ~k)

let permutation rng g =
  let n = Graph.n g in
  let pi = Prng.permutation rng n in
  let pairs = ref [] in
  for i = n - 1 downto 0 do
    if pi.(i) <> i then pairs := { Routing.src = i; dst = pi.(i) } :: !pairs
  done;
  Array.of_list !pairs

let all_edges g = Routing.problem_of_edges (Graph.edge_array g)

let random_pairs rng g ~k =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Problems.random_pairs: need at least 2 nodes";
  Array.init k (fun _ ->
      let src = Prng.int rng n in
      let rec other () =
        let d = Prng.int rng n in
        if d = src then other () else d
      in
      { Routing.src; dst = other () })
