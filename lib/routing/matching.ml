let is_matching pairs =
  let seen = Hashtbl.create (2 * Array.length pairs) in
  let ok = ref true in
  Array.iter
    (fun (u, v) ->
      if u = v || Hashtbl.mem seen u || Hashtbl.mem seen v then ok := false
      else begin
        Hashtbl.add seen u ();
        Hashtbl.add seen v ()
      end)
    pairs;
  !ok

let maximal_over_edges edges n =
  let used = Array.make n false in
  let out = ref [] in
  Array.iter
    (fun (u, v) ->
      if (not used.(u)) && not used.(v) then begin
        used.(u) <- true;
        used.(v) <- true;
        out := (u, v) :: !out
      end)
    edges;
  Array.of_list (List.rev !out)

let greedy_maximal g =
  let edges = Graph.edge_array g in
  Array.sort compare edges;
  maximal_over_edges edges (Graph.n g)

let random_maximal rng g =
  let edges = Graph.edge_array g in
  Prng.shuffle rng edges;
  maximal_over_edges edges (Graph.n g)

let random_node_matching rng n ~k =
  if 2 * k > n then invalid_arg "Matching.random_node_matching: 2k > n";
  let nodes = Prng.sample_distinct rng ~n ~k:(2 * k) in
  Array.init k (fun i -> (nodes.(2 * i), nodes.((2 * i) + 1)))
