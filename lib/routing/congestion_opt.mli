(** Congestion-minimizing routing heuristics.

    The paper's congestion stretch compares against [C_G(R)], the {e optimal}
    congestion of the problem on [G].  Computing it is NP-hard in general,
    so the experiments need good baselines:

    - for matching problems over [G]-edges the optimum is trivially 1;
    - for everything else, {!route} improves on randomized shortest-path
      routing by (a) inserting requests in a congestion-aware order, routing
      each along a path that is shortest under node weights that penalize
      already-loaded nodes, and (b) iteratively ripping up and rerouting the
      paths through the current maximum-congestion nodes (the classic
      rip-up-and-reroute scheme from VLSI routing);
    - for tiny instances {!exact} finds the true optimum by exhaustive
      branch-and-bound over near-shortest paths, which the test suite uses
      to validate the heuristic.

    Paths produced are simple and at most [slack] hops longer than shortest
    (default 0: only shortest paths are considered, so the result is also a
    valid routing for distance-stretch purposes). *)

val route :
  ?rounds:int -> ?slack:int -> Csr.t -> Prng.t -> Routing.problem -> Routing.routing
(** [route g rng problem] returns a low-congestion routing.  [rounds]
    (default 3) rip-up-and-reroute passes; [slack] (default 0) extra hops
    allowed over the shortest path for each request.  Guaranteed never worse
    than plain shortest-path routing: the result is the best of the
    optimizer's output, a deterministic-SP routing and a randomized-SP
    routing (a portfolio). *)

val congestion : ?rounds:int -> ?slack:int -> Csr.t -> Prng.t -> Routing.problem -> int
(** Congestion of {!route}'s result — the [C_G(R)] baseline used by the
    experiment harness. *)

val exact : ?max_paths:int -> Csr.t -> Routing.problem -> (int * Routing.routing) option
(** [exact g problem] computes the optimal congestion over all routings whose
    paths are shortest paths, by branch-and-bound over each request's
    shortest-path set.  Returns [None] when some request enumerates more than
    [max_paths] (default 2000) shortest paths or the search is otherwise
    infeasible.  Exponential: intended for [n ≲ 30], tests only. *)
