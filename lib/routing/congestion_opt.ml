(* Node-weighted, hop-bounded shortest path via Dijkstra on the layered
   graph (node, hops): finds the minimum-total-node-weight path from src to
   dst among paths of length <= bound.  Node weights penalize load
   exponentially, the classic potential that keeps the online maximum low. *)

let weight load = 4.0 ** float_of_int (min load 30)

(* per-request routing latency (one observation per Dijkstra call,
   including rip-up rerouting passes) *)
let m_pair_us = Metrics.histo "congestion_opt.pair_us"

module Pq = struct
  (* Binary min-heap over (cost, state id). *)
  type t = { mutable data : (float * int) array; mutable len : int }

  let create () = { data = Array.make 64 (0.0, 0); len = 0 }

  let swap t i j =
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(j);
    t.data.(j) <- tmp

  let push t cost v =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) t.data.(0) in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- (cost, v);
    let i = ref t.len in
    t.len <- t.len + 1;
    while !i > 0 && fst t.data.((!i - 1) / 2) > fst t.data.(!i) do
      swap t !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop t =
    if t.len = 0 then None
    else begin
      let top = t.data.(0) in
      t.len <- t.len - 1;
      t.data.(0) <- t.data.(t.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && fst t.data.(l) < fst t.data.(!smallest) then smallest := l;
        if r < t.len && fst t.data.(r) < fst t.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap t !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

(* Min-weight path from src to dst using at most [bound] hops; [dist_dst]
   prunes states that cannot reach dst in the remaining budget. *)
let weighted_bounded_path g ~loads ~src ~dst ~bound ~dist_dst =
  let n = Csr.n g in
  let states = n * (bound + 1) in
  let best = Array.make states infinity in
  let parent = Array.make states (-1) in
  let id v t = (v * (bound + 1)) + t in
  let pq = Pq.create () in
  let start_cost = weight loads.(src) in
  best.(id src 0) <- start_cost;
  Pq.push pq start_cost (id src 0);
  let answer = ref None in
  let continue = ref true in
  while !continue do
    match Pq.pop pq with
    | None -> continue := false
    | Some (cost, s) ->
        if cost <= best.(s) then begin
          let v = s / (bound + 1) and t = s mod (bound + 1) in
          if v = dst then begin
            answer := Some s;
            continue := false
          end
          else if t < bound then
            Csr.iter_neighbors g v (fun u ->
                if dist_dst.(u) >= 0 && t + 1 + dist_dst.(u) <= bound then begin
                  let s' = id u (t + 1) in
                  let cost' = cost +. weight loads.(u) in
                  if cost' < best.(s') then begin
                    best.(s') <- cost';
                    parent.(s') <- s;
                    Pq.push pq cost' s'
                  end
                end)
        end
  done;
  match !answer with
  | None -> None
  | Some s ->
      let rec build s acc =
        let v = s / (bound + 1) in
        if parent.(s) < 0 then v :: acc else build parent.(s) (v :: acc)
      in
      Some (Array.of_list (build s []))

let add_path loads path delta =
  (* count each path once per node even on revisits *)
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun v ->
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        loads.(v) <- loads.(v) + delta
      end)
    path

let route_with_fallback g problem =
  Array.map
    (fun { Routing.src; dst } ->
      match Bfs.shortest_path g src dst with
      | Some p -> p
      | None -> invalid_arg "Congestion_opt.route: disconnected request")
    problem

let route ?(rounds = 3) ?(slack = 0) g rng problem =
  let n = Csr.n g in
  let k = Array.length problem in
  let loads = Array.make n 0 in
  let paths = Array.make k [||] in
  (* Per-request data: distance bound and reverse BFS distances. *)
  let bounds = Array.make k 0 in
  let dist_dsts = Array.make k [||] in
  Array.iteri
    (fun i { Routing.src; dst } ->
      let dist_dst = Bfs.distances g dst in
      if dist_dst.(src) < 0 then invalid_arg "Congestion_opt.route: disconnected request";
      dist_dsts.(i) <- dist_dst;
      bounds.(i) <- dist_dst.(src) + slack)
    problem;
  let route_one i =
    let { Routing.src; dst } = problem.(i) in
    let t_start = if !Obs.metrics then Obs.now_us () else 0.0 in
    match
      weighted_bounded_path g ~loads ~src ~dst ~bound:bounds.(i) ~dist_dst:dist_dsts.(i)
    with
    | Some p ->
        if !Obs.metrics then Metrics.observe m_pair_us (int_of_float (Obs.now_us () -. t_start));
        paths.(i) <- p;
        add_path loads p 1
    | None -> invalid_arg "Congestion_opt.route: no bounded path (internal)"
  in
  let order = Prng.permutation rng k in
  Array.iter route_one order;
  (* Rip-up and reroute the paths through the hottest nodes. *)
  for _ = 2 to rounds do
    let cmax = Array.fold_left max 0 loads in
    if cmax > 1 then begin
      let hot = Array.map (fun l -> l = cmax) loads in
      let victims = ref [] in
      Array.iteri
        (fun i p -> if Array.exists (fun v -> hot.(v)) p then victims := i :: !victims)
        paths;
      let victims = Array.of_list !victims in
      Prng.shuffle rng victims;
      Array.iter (fun i -> add_path loads paths.(i) (-1)) victims;
      Array.iter route_one victims
    end
  done;
  (* Portfolio guarantee: never return anything worse than plain
     shortest-path routing (both deterministic and one randomized draw are
     valid slack-0 routings, so they are admissible here too). *)
  let n = Csr.n g in
  let det = route_with_fallback g problem in
  let rnd =
    Array.map
      (fun { Routing.src; dst } ->
        match Bfs.random_shortest_path g rng src dst with
        | Some p -> p
        | None -> invalid_arg "Congestion_opt.route: disconnected request")
      problem
  in
  let best =
    List.fold_left
      (fun acc cand ->
        if Routing.congestion ~n cand < Routing.congestion ~n acc then cand else acc)
      paths [ det; rnd ]
  in
  best

let congestion ?rounds ?slack g rng problem =
  let paths = route ?rounds ?slack g rng problem in
  Routing.congestion ~n:(Csr.n g) paths

(* ---- exact optimum over shortest paths (tiny instances) ---- *)

let enumerate_shortest_paths g ~src ~dst ~cap =
  let dist_src = Bfs.distances g src in
  let dist_dst = Bfs.distances g dst in
  if dist_dst.(src) < 0 then None
  else begin
    let d = dist_dst.(src) in
    let out = ref [] in
    let count = ref 0 in
    let overflow = ref false in
    let rec dfs v acc =
      if not !overflow then begin
        if v = dst then begin
          incr count;
          if !count > cap then overflow := true
          else out := Array.of_list (List.rev (v :: acc)) :: !out
        end
        else
          Csr.iter_neighbors g v (fun u ->
              if dist_src.(u) = dist_src.(v) + 1 && dist_src.(u) + dist_dst.(u) = d then
                dfs u (v :: acc))
      end
    in
    dfs src [];
    if !overflow then None else Some (Array.of_list !out)
  end

let exact ?(max_paths = 2000) g problem =
  let n = Csr.n g in
  let k = Array.length problem in
  let all_paths = Array.make k [||] in
  let feasible = ref true in
  Array.iteri
    (fun i { Routing.src; dst } ->
      match enumerate_shortest_paths g ~src ~dst ~cap:max_paths with
      | Some ps when Array.length ps > 0 -> all_paths.(i) <- ps
      | _ -> feasible := false)
    problem;
  if not !feasible then None
  else begin
    (* Branch and bound, fewest-choices-first. *)
    let order = Array.init k (fun i -> i) in
    Array.sort (fun a b -> compare (Array.length all_paths.(a)) (Array.length all_paths.(b))) order;
    let loads = Array.make n 0 in
    let chosen = Array.make k [||] in
    let best_c = ref max_int in
    let best_routing = ref None in
    let rec search idx current_max =
      if current_max < !best_c then begin
        if idx = k then begin
          best_c := current_max;
          best_routing := Some (Array.copy chosen)
        end
        else begin
          let req = order.(idx) in
          Array.iter
            (fun p ->
              add_path loads p 1;
              let local_max =
                Array.fold_left (fun acc v -> max acc loads.(v)) current_max p
              in
              chosen.(req) <- p;
              search (idx + 1) local_max;
              add_path loads p (-1))
            all_paths.(req)
        end
      end
    in
    search 0 0;
    match !best_routing with None -> None | Some r -> Some (!best_c, r)
  end
