(** Plain-text serialization of routing problems.

    Format:
    {v
    # optional comments
    p <requests>
    <src> <dst>
    ...
    v}
    Lets the CLI replay externally defined workloads and makes experiment
    inputs archivable next to their graphs (see {!Graph_io}). *)

val write : Routing.problem -> string -> unit
(** Serialize a problem to a file (overwrites). *)

val read : ?n:int -> string -> Routing.problem
(** Parse a problem.  When [n] is given, endpoints are validated against
    [0 .. n-1].  Raises {!Io_error.Parse_error} carrying the path and 1-based
    line number on malformed input (bad header, self-loop, arity,
    out-of-range endpoint). *)
