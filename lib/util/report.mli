(** Plain-text report tables for the experiment harness.

    Every bench block prints one of these tables; keeping the renderer here
    guarantees that the benchmark output, the CLI and the examples all format
    results identically. *)

type t
(** A table under construction. *)

val create : title:string -> columns:string list -> t
(** [create ~title ~columns] starts a table with the given header row. *)

val add_row : t -> string list -> unit
(** Append a data row.  Raises [Invalid_argument] if the row width differs
    from the header width. *)

val add_note : t -> string -> unit
(** Append a free-form footnote printed under the table. *)

val print : t -> unit
(** Render to stdout with column alignment and a rule under the header.
    When the [DCS_BENCH_CSV] (resp. [DCS_BENCH_DIR]) environment variable
    names a directory, also write the table there as [<slug-of-title>.csv]
    (see {!csv}) resp. [.json] (see {!to_json}). *)

val csv : t -> string
(** The table as RFC-4180-ish CSV (header row + data rows; cells containing
    commas or quotes are quoted).  Notes are emitted as trailing comment
    lines starting with [#]. *)

val to_json : t -> string
(** The table as a JSON object
    [{"title": ..., "columns": [...], "rows": [[...]], "notes": [...]}] —
    the machine-readable form used for perf-trajectory tracking across
    bench runs. *)

val section : string -> unit
(** Print a prominent section banner. *)

val subsection : string -> unit
(** Print a lighter sub-banner. *)
