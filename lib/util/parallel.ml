(* Per-domain utilization: one span per chunk (the trace viewer renders one
   lane per domain id) and a histogram of chunk wall times.  The timing reads
   happen only when the corresponding flag is on, so the disabled path adds
   one closure call per *chunk* (not per element). *)
let m_spawns = Metrics.counter "parallel.spawns"
let m_chunks = Metrics.counter "parallel.chunks"
let m_chunk_us = Metrics.histo "parallel.chunk_us"

let observed_chunk f =
  Trace.with_span ~name:"parallel.chunk" (fun () ->
      if not !Obs.metrics then f ()
      else begin
        let t = Obs.now_us () in
        let r = f () in
        Metrics.incr m_chunks;
        Metrics.observe m_chunk_us (int_of_float (Obs.now_us () -. t));
        r
      end)

let default_domains () =
  match Sys.getenv_opt "DCS_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d -> max 1 (min 64 d)
      | None -> 1)
  | None -> max 1 (min 4 (Domain.recommended_domain_count ()))

(* Split [0, n) into [domains] contiguous chunks; run the tail chunk on the
   current domain so a single-domain call never spawns. *)
let chunks n domains =
  let domains = max 1 (min domains n) in
  let base = n / domains and extra = n mod domains in
  let out = ref [] in
  let start = ref 0 in
  for i = 0 to domains - 1 do
    let len = base + if i < extra then 1 else 0 in
    if len > 0 then out := (!start, len) :: !out;
    start := !start + len
  done;
  List.rev !out

let map_range ?domains n f =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if n <= 0 then [||]
  else if domains <= 1 || n < 2 * domains then Array.init n f
  else begin
    match chunks n domains with
    | [] -> [||]
    | (head_start, head_len) :: rest ->
        let handles =
          List.map
            (fun (start, len) ->
              Metrics.incr m_spawns;
              Domain.spawn (fun () ->
                  observed_chunk (fun () -> Array.init len (fun i -> f (start + i)))))
            rest
        in
        let head = observed_chunk (fun () -> Array.init head_len (fun i -> f (head_start + i))) in
        let parts = head :: List.map Domain.join handles in
        Array.concat parts
  end

let max_range_saturating ?domains n f ~saturate =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if n <= 0 then min_int
  else if domains <= 1 || n < 2 * domains then begin
    let best = ref min_int in
    let i = ref 0 in
    while !best < saturate && !i < n do
      best := max !best (f !i);
      incr i
    done;
    !best
  end
  else begin
    (* A shared flag lets every chunk stop scheduling work once some value
       reached [saturate]; the max over the evaluated prefix is returned, so
       the result equals the full max whenever [saturate] is the largest
       value [f] can take (the [max_int]-on-disconnection case). *)
    let stop = Atomic.make false in
    let chunk_max (start, len) =
      let best = ref min_int in
      let i = ref start in
      while (not (Atomic.get stop)) && !i < start + len do
        let v = f !i in
        if v > !best then best := v;
        if v >= saturate then Atomic.set stop true;
        incr i
      done;
      !best
    in
    match chunks n domains with
    | [] -> min_int
    | head :: rest ->
        let handles =
          List.map
            (fun c ->
              Metrics.incr m_spawns;
              Domain.spawn (fun () -> observed_chunk (fun () -> chunk_max c)))
            rest
        in
        let acc = observed_chunk (fun () -> chunk_max head) in
        List.fold_left (fun acc h -> max acc (Domain.join h)) acc handles
  end

let max_range ?domains n f =
  let domains = match domains with Some d -> d | None -> default_domains () in
  if n <= 0 then min_int
  else if domains <= 1 || n < 2 * domains then begin
    let best = ref min_int in
    for i = 0 to n - 1 do
      best := max !best (f i)
    done;
    !best
  end
  else begin
    let chunk_max (start, len) =
      let best = ref min_int in
      for i = start to start + len - 1 do
        best := max !best (f i)
      done;
      !best
    in
    match chunks n domains with
    | [] -> min_int
    | head :: rest ->
        let handles =
          List.map
            (fun c ->
              Metrics.incr m_spawns;
              Domain.spawn (fun () -> observed_chunk (fun () -> chunk_max c)))
            rest
        in
        let acc = observed_chunk (fun () -> chunk_max head) in
        List.fold_left (fun acc h -> max acc (Domain.join h)) acc handles
  end
