type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  (* A second mixing constant decorrelates the child stream from the parent. *)
  let seed = int64 t in
  { state = Int64.mul seed 0xDA942042E4DD58B5L }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = 0x3FFFFFFFFFFFFFFFL in
  let rec loop () =
    let r = Int64.to_int (Int64.logand (int64 t) mask) in
    let v = r mod bound in
    if r - v + (bound - 1) >= 0 then v else loop ()
  in
  loop ()

let float t =
  (* 53 random bits scaled to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let bool t p = float t < p

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  arr

let sample_distinct t ~n ~k =
  if k < 0 || k > n then invalid_arg "Prng.sample_distinct";
  if 3 * k >= n then begin
    (* Dense case: shuffle a full index array and take a prefix. *)
    let arr = permutation t n in
    Array.sub arr 0 k
  end else begin
    (* Sparse case: rejection sampling with a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let x = int t n in
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        out.(!filled) <- x;
        incr filled
      end
    done;
    out
  end
