(** Structured parse failures for the plain-text readers.

    {!Graph_io} and {!Routing_io} raise {!Parse_error} instead of a bare
    [Failure] so that callers (the CLI in particular) can distinguish
    malformed input from programming errors and report the offending file and
    line.  The CLI maps it to a proper Cmdliner runtime error (exit 123). *)

exception Parse_error of { file : string; line : int; msg : string }
(** [file] is the path being parsed (["<channel>"] when parsing from an
    anonymous channel); [line] is 1-based ([0] when no line applies, e.g. an
    empty file). *)

val raise_error : file:string -> line:int -> string -> 'a
(** Raise {!Parse_error} with the given context. *)

val message : file:string -> line:int -> string -> string
(** ["file: line N: msg"] — the rendering used by the CLI and the registered
    [Printexc] printer. *)
