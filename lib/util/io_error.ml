exception Parse_error of { file : string; line : int; msg : string }

let message ~file ~line msg = Printf.sprintf "%s: line %d: %s" file line msg

let raise_error ~file ~line msg = raise (Parse_error { file; line; msg })

let () =
  Printexc.register_printer (function
    | Parse_error { file; line; msg } -> Some ("Parse_error: " ^ message ~file ~line msg)
    | _ -> None)
