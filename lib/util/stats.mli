(** Descriptive statistics over float and int samples, used by the benchmark
    harness and the experiment reports. *)

val mean : float array -> float
(** Arithmetic mean; 0 on an empty array. *)

val variance : float array -> float
(** Population variance; 0 on arrays of length < 2. *)

val stddev : float array -> float
(** Population standard deviation. *)

val minimum : float array -> float
(** Smallest element.  Raises [Invalid_argument] on an empty array. *)

val maximum : float array -> float
(** Largest element.  Raises [Invalid_argument] on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] is the [p]-th percentile ([0 <= p <= 100]) using linear
    interpolation between closest ranks.  Raises on empty input. *)

val median : float array -> float
(** 50th percentile. *)

val of_ints : int array -> float array
(** Widen an int sample to floats. *)

val histogram : bucket:int -> int array -> (int * int) list
(** [histogram ~bucket xs] buckets values into [[k*bucket, (k+1)*bucket)]
    ranges and returns [(bucket_start, count)] pairs sorted by bucket,
    omitting empty buckets.  Requires [bucket > 0]. *)

val log2 : float -> float
(** Base-2 logarithm. *)

val linear_fit : (float * float) array -> float * float
(** Least-squares line [(slope, intercept)] through the points.  Requires at
    least two points with distinct x.  Used on log-log data to fit size
    exponents (e.g. [m(H) ~ n^e] → slope of [log m] vs [log n]). *)

val fitted_exponent : (int * int) array -> float
(** [fitted_exponent [(n, y); ...]] is the slope of [ln y] against [ln n] —
    the empirical growth exponent of a sweep.  Requires positive values and
    ≥ 2 distinct [n]. *)

val fmt_float : float -> string
(** Compact human-readable rendering used in report tables: large values get
    thousands separators-free fixed notation, small values keep 3 significant
    decimals. *)
