type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
  mutable notes : string list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = []; notes = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Report.add_row: row width mismatch";
  t.rows <- row :: t.rows

let add_note t note = t.notes <- note :: t.notes

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else cell

let csv t =
  let buf = Buffer.create 256 in
  let row cells = Buffer.add_string buf (String.concat "," (List.map csv_cell cells) ^ "\n") in
  row t.columns;
  List.iter row (List.rev t.rows);
  List.iter (fun note -> Buffer.add_string buf ("# " ^ note ^ "\n")) (List.rev t.notes);
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 512 in
  let str s = "\"" ^ Obs.json_escape s ^ "\"" in
  let str_list l = "[" ^ String.concat "," (List.map str l) ^ "]" in
  Buffer.add_string buf (Printf.sprintf "{\n\"title\":%s,\n\"columns\":%s,\n\"rows\":[" (str t.title) (str_list t.columns));
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf ("\n  " ^ str_list row))
    (List.rev t.rows);
  Buffer.add_string buf (Printf.sprintf "\n],\n\"notes\":%s\n}\n" (str_list (List.rev t.notes)));
  Buffer.contents buf

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    title

let write_into dir ext render t =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    let path = Filename.concat dir (slug t.title ^ ext) in
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (render t))
  end

let maybe_write env ext render t =
  match Sys.getenv_opt env with None -> () | Some dir -> write_into dir ext render t

let maybe_write_csv t = maybe_write "DCS_BENCH_CSV" ".csv" csv t

(* DCS_BENCH_DIR is the one export-directory convention (see EXPERIMENTS.md). *)
let maybe_write_json t = maybe_write "DCS_BENCH_DIR" ".json" to_json t

let print t =
  maybe_write_csv t;
  maybe_write_json t;
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let record row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter record all;
  let render row =
    let cells =
      List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell) row
    in
    "  " ^ String.concat "  " cells
  in
  Printf.printf "%s\n" t.title;
  Printf.printf "%s\n" (render t.columns);
  let total = Array.fold_left ( + ) (2 * ncols) widths in
  Printf.printf "  %s\n" (String.make total '-');
  List.iter (fun row -> Printf.printf "%s\n" (render row)) rows;
  List.iter (fun note -> Printf.printf "  note: %s\n" note) (List.rev t.notes);
  Printf.printf "\n"

let section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n\n" bar title bar

let subsection title =
  Printf.printf "--- %s ---\n" title
