(** Multicore helpers (OCaml 5 domains).

    The measurement hot loops — per-edge stretch certificates, all-pairs BFS,
    per-pair matching computations — are embarrassingly parallel over
    read-only graph snapshots, so they scale with plain domain fan-out; no
    scheduler dependency is needed.  All functions are deterministic: work is
    split into contiguous index chunks and results are reassembled in order,
    so parallel and sequential runs produce identical outputs.

    The domain count defaults to [min 4 recommended] and can be pinned with
    the [DCS_DOMAINS] environment variable ([1] disables spawning). *)

val default_domains : unit -> int
(** Configured domain count: [DCS_DOMAINS] if set (clamped to [1, 64]),
    otherwise [min 4 (Domain.recommended_domain_count ())]. *)

val map_range : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [map_range n f] is [Array.init n f] computed on [domains] domains.
    [f] must only read shared state (graphs passed to it are treated as
    read-only snapshots). *)

val max_range : ?domains:int -> int -> (int -> int) -> int
(** [max_range n f] is [max_{0 ≤ i < n} f i] ([min_int] when [n = 0]),
    without materializing the intermediate array. *)

val max_range_saturating : ?domains:int -> int -> (int -> int) -> saturate:int -> int
(** Like {!max_range}, but once some [f i] reaches [saturate] the remaining
    indices may be skipped (a shared flag short-circuits every domain's
    chunk loop).  The result then is the max over the evaluated prefix,
    which is [≥ saturate] — identical to {!max_range} whenever [saturate]
    is the largest value [f] can produce.  The stretch certificates use
    this with [saturate = max_int]: one disconnected removed edge decides
    the answer, so the remaining sweeps are pure waste.  Requires
    [saturate > min_int]. *)
