(** Deterministic pseudo-random number generator (SplitMix64).

    All randomized algorithms in this repository draw from an explicit
    generator so that every experiment is reproducible from a seed.  SplitMix64
    passes BigCrush, has a 64-bit state, and supports cheap splitting, which we
    use to give independent deterministic streams to the nodes of the
    distributed simulator. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator determined entirely by [seed]. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Deterministic:
    the same call sequence yields the same split generator. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound).  Requires [bound > 0]. *)

val float : t -> float
(** [float t] is uniform on [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  Raises [Invalid_argument] on
    an empty array. *)

val sample_distinct : t -> n:int -> k:int -> int array
(** [sample_distinct t ~n ~k] draws [k] distinct integers uniformly from
    [0, n), in random order.  Requires [0 <= k <= n]. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform permutation of [0, n). *)
