let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    !acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let minimum xs =
  if Array.length xs = 0 then invalid_arg "Stats.minimum: empty";
  Array.fold_left min xs.(0) xs

let maximum xs =
  if Array.length xs = 0 then invalid_arg "Stats.maximum: empty";
  Array.fold_left max xs.(0) xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0

let of_ints xs = Array.map float_of_int xs

let histogram ~bucket xs =
  if bucket <= 0 then invalid_arg "Stats.histogram: bucket must be positive";
  let counts = Hashtbl.create 16 in
  Array.iter
    (fun x ->
      let b = (x / bucket) * bucket in
      let b = if x < 0 && x mod bucket <> 0 then b - bucket else b in
      let cur = try Hashtbl.find counts b with Not_found -> 0 in
      Hashtbl.replace counts b (cur + 1))
    xs;
  Hashtbl.fold (fun b c acc -> (b, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let log2 x = log x /. log 2.0

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 100.0 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.3f" x

let linear_fit points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    points;
  let fn = float_of_int n in
  let denom = (fn *. !sxx) -. (!sx *. !sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((fn *. !sxy) -. (!sx *. !sy)) /. denom in
  let intercept = (!sy -. (slope *. !sx)) /. fn in
  (slope, intercept)

let fitted_exponent points =
  let logs =
    Array.map
      (fun (n, y) ->
        if n <= 0 || y <= 0 then invalid_arg "Stats.fitted_exponent: values must be positive";
        (log (float_of_int n), log (float_of_int y)))
      points
  in
  fst (linear_fit logs)
