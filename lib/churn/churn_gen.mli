(** Seeded churn-event generators for the soak harness.

    A churn batch is a list of graph mutations drawn against the current
    [(g, h)] state.  Generation works on scratch copies, so every event in a
    batch is applicable in sequence (no duplicate deletes, no re-adds), and
    each batch is a pure function of the {!Prng.t} and the pre-batch graphs
    — reproducible from the soak seed, per the determinism contract of
    HACKING.md.

    The kinds extend the {!Fault_plan} generator family from one-shot plans
    to sustained churn: [Uniform] background noise, [Adversarial] damage
    aimed at the routing's most-loaded nodes (the congestion-stretch threat
    model of the paper), and [Targeted] deletion of the spanner's own hub
    edges (maximal recertification pressure).  Destructive events dominate
    each mix but a steady share of random insertions keeps the graph alive
    over arbitrarily long runs. *)

type event =
  | Add_edge of int * int  (** insert into the base graph (not the spanner) *)
  | Del_edge of int * int  (** delete from base graph and spanner *)
  | Isolate of int  (** node failure: drop every incident edge *)

type kind = Uniform | Adversarial | Targeted

val kind_name : kind -> string
(** Lower-case name, the [--plan] spelling of the CLI. *)

val kind_of_string : string -> kind option
(** Inverse of {!kind_name} (case-insensitive). *)

val generate :
  kind ->
  Prng.t ->
  g:Graph.t ->
  h:Graph.t ->
  loads:int array ->
  count:int ->
  event list
(** [generate kind rng ~g ~h ~loads ~count] draws up to [count] events
    (fewer only when the graph saturates, e.g. no edge left to delete and no
    non-edge left to add).  [loads] are the per-node loads of the current
    routing ({!Routing.node_loads}); only [Adversarial] consults them.
    Inputs are not mutated.  Raises [Invalid_argument] on negative [count],
    node-count mismatch, or a [loads] array of the wrong length. *)

val to_fault_plan : ?round:int -> network:Graph.t -> event list -> Fault_plan.t
(** Project a batch onto a {!Fault_plan} striking at [round] (default 1):
    [Isolate] becomes [Fail_node]; [Del_edge] becomes [Fail_edge] when the
    edge exists in [network] (the links traffic can actually lose);
    [Add_edge] has no fault-plan counterpart.  This is how a churn batch
    degrades the in-flight {!Fault_sim} traffic. *)

type applied = {
  ap_touched : int array;
      (** sorted distinct endpoints churned in either graph — for an
          isolated node, the node and its former neighbours; the seed set
          for {!Stretch.violations_incremental} *)
  ap_added : int;  (** edges actually inserted into [g] *)
  ap_deleted : int;  (** edges actually removed from [g] or [h] *)
  ap_isolated : int;  (** isolations that cut at least one edge *)
}

val apply : g:Graph.t -> h:Graph.t -> event list -> applied
(** Apply a batch in order, mutating [g] and [h] in place.  Neighbourhoods
    of isolated nodes are collected {e before} cutting, so [ap_touched]
    satisfies the touched-set contract of the incremental certifier.
    Raises [Invalid_argument] on out-of-range nodes or self-loops. *)
