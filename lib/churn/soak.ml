(* The soak loop maintains the paper's distance-stretch guarantee as an
   invariant over time rather than a one-shot certificate.  Each batch:

   1. sample traffic inside the current spanner's components and route it
      ({!Sp_routing.route_random});
   2. play the batch's destructive events as a {!Fault_plan} against that
      in-flight traffic ({!Fault_sim.run}) — packets keep flowing while the
      network degrades;
   3. apply the batch to [g] and [h], collecting the touched endpoints;
   4. heal: iterate {!Stretch.violations_incremental}, re-adding every
      violating removed edge, until no violation remains.  Adding edges only
      shortens spanner distances, so the second pass (seeded by the added
      endpoints) terminates the loop; an empty violation set also implies
      per-[g]-component connectivity, because a [g]-edge crossing two
      [h]-components is itself a violation.

   Determinism: the whole run is a function of the config (explicit
   SplitMix64 streams for events and traffic; Fault_sim consumes no
   randomness), so two runs with one seed produce byte-identical reports —
   wall-clock readings go only to the Metrics histograms, never into the
   report. *)

type config = {
  events : int;
  batch : int;
  seed : int;
  alpha : int;
  kind : Churn_gen.kind;
  requests : int;
  timeout : int;
  max_attempts : int;
}

let default =
  {
    events = 1000;
    batch = 50;
    seed = 1;
    alpha = 3;
    kind = Churn_gen.Uniform;
    requests = 16;
    timeout = 4;
    max_attempts = 5;
  }

type batch_stats = {
  bs_round : int;
  bs_events : int;  (** events generated for this batch *)
  bs_applied : int;  (** add + delete + isolate events that changed a graph *)
  bs_readded : int;
  bs_swept : int;
  bs_groups : int;
  bs_dirty : int;
  bs_delivered : int;
  bs_dropped : int;
  bs_retransmits : int;
  bs_reroutes : int;
  bs_makespan : int;
  bs_traffic_stretch : float;
  bs_dist_stretch : int;
  bs_certified : bool;
  bs_m_graph : int;
  bs_m_spanner : int;
}

type report = {
  r_kind : string;
  r_seed : int;
  r_alpha : int;
  r_events : int;
  r_batch : int;
  r_requests : int;
  r_batches : batch_stats list;  (** chronological *)
  r_events_generated : int;
  r_events_applied : int;
  r_edges_readded : int;
  r_swept : int;
  r_groups_total : int;
  r_delivered : int;
  r_dropped : int;
  r_retransmits : int;
  r_reroutes : int;
  r_certified_batches : int;
  r_batch_count : int;
  r_final_stretch : int;
  r_final_certified : bool;
  r_m_graph_start : int;
  r_m_graph_end : int;
  r_m_spanner_start : int;
  r_m_spanner_end : int;
}

let m_batches = Metrics.counter "churn.batches"
let m_events = Metrics.counter "churn.events"
let m_readded = Metrics.counter "churn.edges_readded"
let h_repair_us = Metrics.histo "churn.repair_us"
let h_staleness_us = Metrics.histo "churn.cert_staleness_us"

(* heal the spanner after a mutation batch: re-add every violating removed
   edge and re-certify incrementally until clean.  Returns
   (readded, swept, groups, dirty) accumulated over the healing passes. *)
let heal cert g h ~touched =
  let readded = ref 0 and swept = ref 0 and dirty = ref 0 and groups = ref 0 in
  let rec go touched =
    let r = Stretch.violations_incremental cert g h ~touched in
    swept := !swept + r.Stretch.inc_swept;
    dirty := !dirty + r.Stretch.inc_dirty;
    (* denominator of the sweep-saving ratio: what a from-scratch certifier
       would have re-swept on each pass; [swept <= groups] always holds *)
    groups := !groups + r.Stretch.inc_groups;
    match r.Stretch.inc_violations with
    | [] -> ()
    | viols ->
        let ends =
          List.fold_left
            (fun acc (u, v) ->
              ignore (Graph.add_edge h u v);
              incr readded;
              u :: v :: acc)
            [] viols
        in
        go (Array.of_list ends)
  in
  go touched;
  (!readded, !swept, !groups, !dirty)

(* routing requests sampled within the spanner's components (so every
   request is routable); nodes in singleton components carry no traffic *)
let sample_problem rng h ~requests =
  let n = Graph.n h in
  if requests = 0 || n < 2 then [||]
  else begin
    let labels = Connectivity.components h in
    let ncomp = Array.fold_left (fun a c -> max a (c + 1)) 0 labels in
    let sizes = Array.make (max ncomp 1) 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) labels;
    let eligible = ref [] in
    for v = n - 1 downto 0 do
      if sizes.(labels.(v)) >= 2 then eligible := v :: !eligible
    done;
    match !eligible with
    | [] -> [||]
    | el ->
        let eligible = Array.of_list el in
        let members = Array.make ncomp [] in
        for v = n - 1 downto 0 do
          members.(labels.(v)) <- v :: members.(labels.(v))
        done;
        let members = Array.map Array.of_list members in
        Array.init requests (fun _ ->
            let src = Prng.pick rng eligible in
            let comp = members.(labels.(src)) in
            let rec draw () =
              let d = Prng.pick rng comp in
              if d = src then draw () else d
            in
            { Routing.src; dst = draw () })
  end

(* worst routed-path stretch vs the base graph: max over requests of
   l(path) / d_G(src, dst); 1.0 for an empty routing.  h ⊆ g keeps every
   ratio finite and >= 1. *)
let routed_stretch gc problem routing =
  let worst = ref 1.0 in
  Array.iteri
    (fun i path ->
      let { Routing.src; dst } = problem.(i) in
      let dg = Bfs.distance gc src dst in
      if dg > 0 then
        let r = float_of_int (Routing.length path) /. float_of_int dg in
        if r > !worst then worst := r)
    routing;
  !worst

let validate config =
  if config.events < 1 then invalid_arg "Soak.run: events < 1";
  if config.batch < 1 then invalid_arg "Soak.run: batch < 1";
  if config.alpha < 1 then invalid_arg "Soak.run: alpha < 1";
  if config.requests < 0 then invalid_arg "Soak.run: negative requests";
  if config.timeout < 1 then invalid_arg "Soak.run: timeout < 1";
  if config.max_attempts < 1 then invalid_arg "Soak.run: max_attempts < 1"

let run ?(on_batch = fun (_ : batch_stats) -> ()) config ~graph ~spanner =
  validate config;
  if Graph.n graph <> Graph.n spanner then invalid_arg "Soak.run: node counts differ";
  if not (Graph.is_subgraph spanner ~of_:graph) then
    invalid_arg "Soak.run: spanner is not a subgraph of the base graph";
  Trace.with_span ~name:"churn.soak" (fun () ->
      let g = Graph.copy graph and h = Graph.copy spanner in
      let n = Graph.n g in
      let master = Prng.create config.seed in
      let rng_events = Prng.split master in
      let rng_traffic = Prng.split master in
      let m_graph_start = Graph.m g and m_spanner_start = Graph.m h in
      (* establish the invariant before churning: heal any violation the
         input spanner arrives with (a certified construction adds nothing) *)
      let cert = Stretch.cert_create g h ~bound:config.alpha in
      let initial_readded =
        match Stretch.cert_violations cert with
        | [] -> 0
        | viols ->
            let ends =
              List.fold_left
                (fun acc (u, v) ->
                  ignore (Graph.add_edge h u v);
                  u :: v :: acc)
                [] viols
            in
            let readded, _, _, _ = heal cert g h ~touched:(Array.of_list ends) in
            List.length viols + readded
      in
      let batches = ref [] in
      let generated = ref 0
      and applied = ref 0
      and readded = ref initial_readded
      and swept = ref 0
      and groups_total = ref 0
      and delivered = ref 0
      and dropped = ref 0
      and retransmits = ref 0
      and reroutes = ref 0
      and certified_batches = ref 0 in
      let nbatches = (config.events + config.batch - 1) / config.batch in
      for b = 1 to nbatches do
        let count = min config.batch (config.events - ((b - 1) * config.batch)) in
        let t_batch0 = Obs.now_us () in
        (* 1. traffic on the pre-batch spanner *)
        let problem = sample_problem rng_traffic h ~requests:config.requests in
        let routing =
          if Array.length problem = 0 then [||]
          else Sp_routing.route_random (Csr.snapshot h) rng_traffic problem
        in
        let traffic_stretch = routed_stretch (Csr.snapshot g) problem routing in
        let loads = Routing.node_loads ~n routing in
        (* 2. draw the batch; its destructive half degrades the traffic *)
        let events = Churn_gen.generate config.kind rng_events ~g ~h ~loads ~count in
        let plan = Churn_gen.to_fault_plan ~round:2 ~network:h events in
        let sim =
          Fault_sim.run ~timeout:config.timeout ~max_attempts:config.max_attempts ~n
            ~network:h ~plan routing
        in
        (* 3. commit the batch, 4. heal and re-certify incrementally *)
        let ap = Churn_gen.apply ~g ~h events in
        let t_repair0 = Obs.now_us () in
        let b_readded, b_swept, b_groups, b_dirty =
          heal cert g h ~touched:ap.Churn_gen.ap_touched
        in
        let t_done = Obs.now_us () in
        Metrics.observe h_repair_us (int_of_float (t_done -. t_repair0));
        Metrics.observe h_staleness_us (int_of_float (t_done -. t_batch0));
        let certified = Stretch.cert_violations cert = [] in
        let dist_stretch = Stretch.cert_stretch_bound cert in
        let nevents = List.length events in
        let stats =
          {
            bs_round = b;
            bs_events = nevents;
            bs_applied =
              ap.Churn_gen.ap_added + ap.Churn_gen.ap_deleted + ap.Churn_gen.ap_isolated;
            bs_readded = b_readded;
            bs_swept = b_swept;
            bs_groups = b_groups;
            bs_dirty = b_dirty;
            bs_delivered = sim.Fault_sim.delivered;
            bs_dropped = sim.Fault_sim.dropped;
            bs_retransmits = sim.Fault_sim.retransmits;
            bs_reroutes = sim.Fault_sim.reroutes;
            bs_makespan = sim.Fault_sim.makespan;
            bs_traffic_stretch = traffic_stretch;
            bs_dist_stretch = dist_stretch;
            bs_certified = certified;
            bs_m_graph = Graph.m g;
            bs_m_spanner = Graph.m h;
          }
        in
        Metrics.incr m_batches;
        Metrics.add m_events nevents;
        Metrics.add m_readded b_readded;
        Log.info "churn.batch"
          ~fields:
            [
              ("round", string_of_int b);
              ("events", string_of_int nevents);
              ("readded", string_of_int b_readded);
              ("swept", string_of_int b_swept);
              ("groups", string_of_int b_groups);
              ("certified", string_of_bool certified);
            ];
        if not certified then
          Log.warn "churn.uncertified"
            ~fields:[ ("round", string_of_int b); ("stretch", string_of_int dist_stretch) ];
        generated := !generated + nevents;
        applied := !applied + stats.bs_applied;
        readded := !readded + b_readded;
        swept := !swept + b_swept;
        groups_total := !groups_total + b_groups;
        delivered := !delivered + sim.Fault_sim.delivered;
        dropped := !dropped + sim.Fault_sim.dropped;
        retransmits := !retransmits + sim.Fault_sim.retransmits;
        reroutes := !reroutes + sim.Fault_sim.reroutes;
        if certified then incr certified_batches;
        batches := stats :: !batches;
        on_batch stats
      done;
      (* closing audit: a full non-incremental certificate of the end state *)
      let final_stretch = Stretch.exact g h in
      let final_certified = final_stretch <= config.alpha in
      {
        r_kind = Churn_gen.kind_name config.kind;
        r_seed = config.seed;
        r_alpha = config.alpha;
        r_events = config.events;
        r_batch = config.batch;
        r_requests = config.requests;
        r_batches = List.rev !batches;
        r_events_generated = !generated;
        r_events_applied = !applied;
        r_edges_readded = !readded;
        r_swept = !swept;
        r_groups_total = !groups_total;
        r_delivered = !delivered;
        r_dropped = !dropped;
        r_retransmits = !retransmits;
        r_reroutes = !reroutes;
        r_certified_batches = !certified_batches;
        r_batch_count = nbatches;
        r_final_stretch = final_stretch;
        r_final_certified = final_certified;
        r_m_graph_start = m_graph_start;
        r_m_graph_end = Graph.m g;
        r_m_spanner_start = m_spanner_start;
        r_m_spanner_end = Graph.m h;
      })

(* deterministic JSON: counts and seeded quantities only — no wall-clock
   fields, so same-seed runs are byte-identical (CI diffs the bytes) *)
let to_json r =
  let b = Buffer.create 4096 in
  let stretch_json d = if d = max_int then "null" else string_of_int d in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"dcs-soak/1\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"plan\": \"%s\",\n  \"seed\": %d,\n  \"alpha\": %d,\n"
       (Obs.json_escape r.r_kind) r.r_seed r.r_alpha);
  Buffer.add_string b
    (Printf.sprintf "  \"events\": %d,\n  \"batch\": %d,\n  \"requests\": %d,\n"
       r.r_events r.r_batch r.r_requests);
  Buffer.add_string b
    (Printf.sprintf
       "  \"totals\": {\"generated\": %d, \"applied\": %d, \"readded\": %d, \
        \"swept\": %d, \"groups\": %d, \"delivered\": %d, \"dropped\": %d, \
        \"retransmits\": %d, \"reroutes\": %d},\n"
       r.r_events_generated r.r_events_applied r.r_edges_readded r.r_swept
       r.r_groups_total r.r_delivered r.r_dropped r.r_retransmits r.r_reroutes);
  Buffer.add_string b
    (Printf.sprintf
       "  \"certified_batches\": %d,\n  \"batch_count\": %d,\n\
       \  \"final\": {\"dist_stretch\": %s, \"certified\": %b},\n"
       r.r_certified_batches r.r_batch_count (stretch_json r.r_final_stretch)
       r.r_final_certified);
  Buffer.add_string b
    (Printf.sprintf
       "  \"edges\": {\"graph_start\": %d, \"graph_end\": %d, \"spanner_start\": \
        %d, \"spanner_end\": %d},\n"
       r.r_m_graph_start r.r_m_graph_end r.r_m_spanner_start r.r_m_spanner_end);
  Buffer.add_string b "  \"batches\": [\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"round\": %d, \"events\": %d, \"applied\": %d, \"readded\": %d, \
            \"swept\": %d, \"groups\": %d, \"dirty\": %d, \"delivered\": %d, \
            \"dropped\": %d, \"retransmits\": %d, \"reroutes\": %d, \"makespan\": \
            %d, \"traffic_stretch\": %s, \"dist_stretch\": %s, \"certified\": %b, \
            \"m_graph\": %d, \"m_spanner\": %d}"
           s.bs_round s.bs_events s.bs_applied s.bs_readded s.bs_swept s.bs_groups
           s.bs_dirty s.bs_delivered s.bs_dropped s.bs_retransmits s.bs_reroutes
           s.bs_makespan
           (Obs.json_float s.bs_traffic_stretch)
           (stretch_json s.bs_dist_stretch) s.bs_certified s.bs_m_graph s.bs_m_spanner))
    r.r_batches;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b
