(** Sustained-churn soak harness: a live spanner under continuous faults and
    traffic.

    Where {!Fault_sim} + {!Repair} play one plan and heal once, the soak
    loop keeps the paper's distance-stretch guarantee (Definition 1 /
    Theorem 2's [alpha]) as an {e invariant over time}: every batch of churn
    events is followed by incremental repair and re-certification via
    {!Stretch.violations_incremental}, while degraded-mode packet traffic
    keeps flowing through the spanner the whole run.

    Per batch: (1) routing requests are sampled inside the current
    spanner's components and routed by {!Sp_routing.route_random}; (2) the
    batch's destructive events, projected to a {!Fault_plan}, strike that
    in-flight traffic mid-simulation ({!Fault_sim.run}); (3) the batch is
    committed to the base graph and the spanner; (4) the healer re-adds
    every violating removed edge and re-certifies, sweeping only the dirty
    source groups.  Re-adding violations also restores per-component
    connectivity: a base-graph edge crossing two spanner components is
    itself a violation.

    Determinism: one seed drives independent SplitMix64 streams for events
    and traffic, {!Fault_sim} consumes no randomness, and {!to_json}
    excludes wall-clock readings — so same-seed runs are byte-identical
    (asserted by CI).  Wall-clock repair latency and certification
    staleness go to the [churn.repair_us] / [churn.cert_staleness_us]
    Metrics histograms; progress is logged as [churn.batch] /
    [churn.uncertified] events. *)

type config = {
  events : int;  (** total churn events to generate (>= 1) *)
  batch : int;  (** events per batch (>= 1) *)
  seed : int;
  alpha : int;  (** stretch bound to maintain (>= 1) *)
  kind : Churn_gen.kind;
  requests : int;  (** routing requests sampled per batch (>= 0) *)
  timeout : int;  (** {!Fault_sim} retransmission timeout *)
  max_attempts : int;  (** {!Fault_sim} retransmission budget *)
}

val default : config
(** 1000 uniform events in batches of 50, seed 1, alpha 3, 16 requests per
    batch, Fault_sim defaults. *)

type batch_stats = {
  bs_round : int;  (** 1-based batch index *)
  bs_events : int;  (** events generated for this batch *)
  bs_applied : int;  (** events that actually changed a graph *)
  bs_readded : int;  (** edges the healer re-added *)
  bs_swept : int;  (** source groups re-swept (all healing passes) *)
  bs_groups : int;
      (** source groups a from-scratch certifier would have swept, summed
          over the same passes — [bs_swept <= bs_groups] *)
  bs_dirty : int;  (** dirty-set sizes summed over healing passes *)
  bs_delivered : int;
  bs_dropped : int;
  bs_retransmits : int;
  bs_reroutes : int;
  bs_makespan : int;
  bs_traffic_stretch : float;
      (** worst routed-path length over base-graph distance, pre-fault *)
  bs_dist_stretch : int;  (** {!Stretch.cert_stretch_bound} after healing *)
  bs_certified : bool;  (** no violation remains (implies stretch <= alpha) *)
  bs_m_graph : int;  (** base-graph edges after the batch *)
  bs_m_spanner : int;  (** spanner edges after the batch *)
}

type report = {
  r_kind : string;
  r_seed : int;
  r_alpha : int;
  r_events : int;
  r_batch : int;
  r_requests : int;
  r_batches : batch_stats list;  (** chronological *)
  r_events_generated : int;
  r_events_applied : int;
  r_edges_readded : int;  (** incl. any initial heal of an uncertified input *)
  r_swept : int;
  r_groups_total : int;  (** sum of per-batch group counts (sweep-saving denominator) *)
  r_delivered : int;
  r_dropped : int;
  r_retransmits : int;
  r_reroutes : int;
  r_certified_batches : int;
  r_batch_count : int;
  r_final_stretch : int;
      (** closing audit: full non-incremental {!Stretch.exact} of the end
          state ([max_int] on a disconnected removed edge) *)
  r_final_certified : bool;  (** [r_final_stretch <= alpha] *)
  r_m_graph_start : int;
  r_m_graph_end : int;
  r_m_spanner_start : int;
  r_m_spanner_end : int;
}

val run :
  ?on_batch:(batch_stats -> unit) -> config -> graph:Graph.t -> spanner:Graph.t -> report
(** [run config ~graph ~spanner] soaks copies of the inputs (the arguments
    are not mutated); [on_batch] fires after each batch, in order.  An
    uncertified input spanner is healed before the first batch.  Raises
    [Invalid_argument] on bad config bounds, node-count mismatch, or a
    [spanner] that is not a subgraph of [graph]. *)

val to_json : report -> string
(** Deterministic [dcs-soak/1] JSON document (trailing newline): config
    echo, totals, final audit, and the per-batch series.  Contains no
    wall-clock values, so same-seed reports are byte-identical. *)
