(* Churn batches are drawn against a scratch copy of the current state, so
   every generated event is applicable in sequence (no duplicate deletes, no
   re-adds of existing edges) and the whole batch is a pure function of the
   generator seed and the pre-batch graphs — the determinism contract of
   HACKING.md.  The three kinds mirror the Fault_plan generator family:
   uniform background churn, an adversary aiming at the routing's hot spots
   (the congestion-stretch threat model), and a structural attack on the
   spanner's own hub edges. *)

type event =
  | Add_edge of int * int
  | Del_edge of int * int
  | Isolate of int

type kind = Uniform | Adversarial | Targeted

let kind_name = function
  | Uniform -> "uniform"
  | Adversarial -> "adversarial"
  | Targeted -> "targeted"

let kind_of_string s =
  match String.lowercase_ascii s with
  | "uniform" -> Some Uniform
  | "adversarial" -> Some Adversarial
  | "targeted" -> Some Targeted
  | _ -> None

(* Graph.edge_array order is unspecified: sort before any seeded draw *)
let sorted_edges g =
  let es = Graph.edge_array g in
  Array.sort compare es;
  es

let norm u v = if u < v then (u, v) else (v, u)

(* rejection-sample a non-edge of [scratch]; None when the graph is (nearly)
   complete and 64 draws all collide *)
let draw_add scratch rng =
  let n = Graph.n scratch in
  if n < 2 then None
  else begin
    let found = ref None and attempts = ref 64 in
    while !found = None && !attempts > 0 do
      decr attempts;
      let u = Prng.int rng n and v = Prng.int rng n in
      if u <> v && not (Graph.mem_edge scratch u v) then found := Some (norm u v)
    done;
    !found
  end

let draw_del scratch rng =
  let es = sorted_edges scratch in
  if Array.length es = 0 then None else Some (Prng.pick rng es)

let draw_isolate scratch rng =
  let n = Graph.n scratch in
  let live = ref [] in
  for v = n - 1 downto 0 do
    if Graph.degree scratch v > 0 then live := v :: !live
  done;
  match !live with [] -> None | l -> Some (Prng.pick rng (Array.of_list l))

(* the score-maximizing edge of [scratch]; ties keep the first edge in
   iteration order, which is deterministic for a given mutation history *)
let hottest_edge scratch score =
  let best = ref None in
  Graph.iter_edges scratch (fun u v ->
      let s = score u + score v in
      match !best with
      | Some (s', _, _) when s' >= s -> ()
      | _ -> best := Some (s, u, v));
  match !best with None -> None | Some (_, u, v) -> Some (u, v)

(* the score-maximizing non-isolated node (ties: smallest id); falls back to
   degree when every live node scores 0 *)
let hottest_node scratch score =
  let n = Graph.n scratch in
  let best = ref None in
  let consider by =
    for v = 0 to n - 1 do
      if Graph.degree scratch v > 0 then
        match !best with
        | Some (s, _) when s >= by v -> ()
        | _ -> best := Some (by v, v)
    done
  in
  consider score;
  (match !best with Some (0, _) -> best := None | _ -> ());
  if !best = None then consider (Graph.degree scratch);
  match !best with None -> None | Some (_, v) -> Some v

let check_loads n loads =
  if Array.length loads <> n then
    invalid_arg "Churn_gen.generate: loads length does not match node count"

let generate kind rng ~g ~h ~loads ~count =
  if count < 0 then invalid_arg "Churn_gen.generate: negative count";
  if Graph.n g <> Graph.n h then invalid_arg "Churn_gen.generate: node counts differ";
  check_loads (Graph.n g) loads;
  let gs = Graph.copy g and hs = Graph.copy h in
  let apply_scratch = function
    | Add_edge (u, v) -> ignore (Graph.add_edge gs u v)
    | Del_edge (u, v) ->
        ignore (Graph.remove_edge hs u v);
        ignore (Graph.remove_edge gs u v)
    | Isolate v ->
        ignore (Graph.isolate hs v);
        ignore (Graph.isolate gs v)
  in
  let load v = loads.(v) in
  let events = ref [] in
  for _ = 1 to count do
    let r = Prng.float rng in
    let ev =
      match kind with
      | Uniform ->
          (* an isolation cuts ~avg-degree edges at once, so its share is
             kept small; the mix self-stabilizes where the per-event edge
             drain (0.40 + 0.05 * avg_degree) meets the 0.55 add share *)
          if r < 0.55 then Option.map (fun (u, v) -> Add_edge (u, v)) (draw_add gs rng)
          else if r < 0.95 then
            Option.map (fun (u, v) -> Del_edge (u, v)) (draw_del gs rng)
          else Option.map (fun v -> Isolate v) (draw_isolate gs rng)
      | Adversarial ->
          (* destruction aims at the routing's hot spots; the add share is
             the background maintenance that keeps the soak sustained *)
          if r < 0.30 then Option.map (fun (u, v) -> Add_edge (u, v)) (draw_add gs rng)
          else if r < 0.80 then
            let scratch = if Graph.m hs > 0 then hs else gs in
            Option.map (fun (u, v) -> Del_edge (u, v)) (hottest_edge scratch load)
          else Option.map (fun v -> Isolate v) (hottest_node gs load)
      | Targeted ->
          (* attack the spanner's own hub edges: maximal recertification
             pressure per deleted edge *)
          if r < 0.35 then Option.map (fun (u, v) -> Add_edge (u, v)) (draw_add gs rng)
          else if r < 0.90 then
            let scratch = if Graph.m hs > 0 then hs else gs in
            Option.map (fun (u, v) -> Del_edge (u, v)) (hottest_edge scratch (Graph.degree hs))
          else Option.map (fun v -> Isolate v) (hottest_node hs (Graph.degree hs))
    in
    match ev with
    | None -> ()
    | Some ev ->
        apply_scratch ev;
        events := ev :: !events
  done;
  List.rev !events

let to_fault_plan ?(round = 1) ~network events =
  let n = Graph.n network in
  let faults =
    List.filter_map
      (function
        | Del_edge (u, v) when Graph.mem_edge network u v ->
            Some (Fault_plan.Fail_edge (u, v))
        | Isolate v -> Some (Fault_plan.Fail_node v)
        | Del_edge _ | Add_edge _ -> None)
      events
  in
  Fault_plan.schedule ~n [ (round, faults) ]

type applied = {
  ap_touched : int array;
  ap_added : int;
  ap_deleted : int;
  ap_isolated : int;
}

let apply ~g ~h events =
  let n = Graph.n g in
  if Graph.n h <> n then invalid_arg "Churn_gen.apply: node counts differ";
  let marked = Array.make n false in
  let touched = ref [] in
  let mark v =
    if v < 0 || v >= n then invalid_arg "Churn_gen.apply: node out of range";
    if not marked.(v) then begin
      marked.(v) <- true;
      touched := v :: !touched
    end
  in
  let added = ref 0 and deleted = ref 0 and isolated = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Add_edge (u, v) ->
          mark u;
          mark v;
          if u = v then invalid_arg "Churn_gen.apply: self-loop";
          if Graph.add_edge g u v then incr added
      | Del_edge (u, v) ->
          mark u;
          mark v;
          let in_h = Graph.remove_edge h u v in
          let in_g = Graph.remove_edge g u v in
          if in_h || in_g then incr deleted
      | Isolate v ->
          mark v;
          (* collect the neighbourhood BEFORE cutting: those nodes lose an
             incident edge and must enter the dirty seed set *)
          Graph.iter_neighbors g v mark;
          Graph.iter_neighbors h v mark;
          let cut = Graph.isolate g v + Graph.isolate h v in
          if cut > 0 then incr isolated)
    events;
  let touched = Array.of_list !touched in
  Array.sort compare touched;
  { ap_touched = touched; ap_added = !added; ap_deleted = !deleted; ap_isolated = !isolated }
