(** Fault-aware store-and-forward packet simulation (degraded-mode routing).

    Extends {!Packet_sim}'s node-capacity-1 model (Section 1.1's wireless
    setting — exactly the setting where nodes fail mid-routing) with a fault
    plan played out against the routing:

    - round [r] faults strike before any forwarding in round [r]; packets
      queued at a node that dies are lost, and a transmission towards a dead
      node or across a removed edge is lost (the sender burns its slot — it
      only discovers the failure by timeout);
    - a lost packet is retransmitted {e from its source} after a timeout
      with capped exponential backoff (the [k]-th retransmission waits
      [min(timeout * 2^(k-1), backoff_cap)] rounds);
    - a retransmission reuses the original path if it is still intact, and is
      otherwise rerouted around the failures via BFS in the survivor of
      [network] (deterministic smallest-index-parent shortest path);
    - a packet is permanently dropped when its source or destination is dead,
      when no survivor path exists, or after [max_attempts]
      retransmissions.

    Scheduling is {!Packet_sim}'s: every alive node forwards its
    furthest-to-go queued packet (ties by packet id) each round.  {b With an
    empty fault plan the simulation is field-for-field identical to
    [Packet_sim.run]} — the equivalence is asserted by the test suite — and
    everything is deterministic: no PRNG is consumed, so a (routing, plan)
    pair always reproduces the same stats.

    Fault events scheduled after the last packet settles never strike;
    [failed_nodes]/[failed_edges] count the faults actually applied. *)

type stats = {
  delivered : int;  (** packets that reached their destination *)
  dropped : int;  (** packets permanently dropped *)
  retransmits : int;  (** re-injections at the source after a loss *)
  reroutes : int;  (** retransmissions that needed a BFS detour *)
  makespan : int;  (** last delivery round ([0] if nothing was delivered) *)
  max_queue : int;  (** largest queue length observed at any node *)
  avg_latency : float;  (** mean delivery round over {e delivered} packets *)
  congestion : int;  (** [C] of the original routing (as in {!Packet_sim}) *)
  dilation : int;  (** [D] of the original routing *)
  forward_load : int;  (** capacity-1 lower bound of the original routing *)
  failed_nodes : int;  (** node faults applied during the run *)
  failed_edges : int;  (** edge faults applied during the run *)
}

val run :
  ?timeout:int ->
  ?max_attempts:int ->
  ?backoff_cap:int ->
  n:int ->
  network:Graph.t ->
  plan:Fault_plan.t ->
  Routing.routing ->
  stats
(** [run ~n ~network ~plan routing] simulates the routing on an [n]-node
    network under the fault plan.  [network] is the graph the routing lives
    in (the spanner): its survivor subgraph is what reroutes search.
    Defaults: [timeout = 4], [max_attempts = 5], [backoff_cap = 64].
    Raises [Invalid_argument] on an empty path or non-positive parameters. *)

val base_stats : stats -> Packet_sim.stats
(** Project onto {!Packet_sim.stats} — with an empty plan this equals
    [Packet_sim.run ~n routing] exactly (the fault-rate-0 contract). *)
