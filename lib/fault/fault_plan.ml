type fault = Fail_node of int | Fail_edge of int * int

type t = { n : int; events : (int * fault list) list }

let normalize_edge u v = if u <= v then (u, v) else (v, u)

let validate_fault n = function
  | Fail_node v ->
      if v < 0 || v >= n then invalid_arg "Fault_plan: node out of range";
      Fail_node v
  | Fail_edge (u, v) ->
      if u < 0 || v < 0 || u >= n || v >= n then invalid_arg "Fault_plan: edge endpoint out of range";
      if u = v then invalid_arg "Fault_plan: self-loop edge";
      let u, v = normalize_edge u v in
      Fail_edge (u, v)

let schedule ~n events =
  if n < 0 then invalid_arg "Fault_plan.schedule: negative node count";
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (round, faults) ->
      if round < 1 then invalid_arg "Fault_plan.schedule: rounds start at 1";
      let faults = List.map (validate_fault n) faults in
      let prev = Option.value (Hashtbl.find_opt tbl round) ~default:[] in
      Hashtbl.replace tbl round (faults @ prev))
    events;
  let rounds = Hashtbl.fold (fun r fs acc -> (r, fs) :: acc) tbl [] in
  let events =
    rounds
    |> List.map (fun (r, fs) -> (r, List.sort_uniq compare fs))
    |> List.filter (fun (_, fs) -> fs <> [])
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { n; events }

let empty n = schedule ~n []

let uniform_nodes ?(round = 1) rng g ~p =
  let n = Graph.n g in
  let acc = ref [] in
  for v = 0 to n - 1 do
    if Prng.bool rng p then acc := Fail_node v :: !acc
  done;
  schedule ~n [ (round, List.rev !acc) ]

let uniform_edges ?(round = 1) rng g ~p =
  let edges = Graph.edge_array g in
  Array.sort compare edges;
  let acc = ref [] in
  Array.iter (fun (u, v) -> if Prng.bool rng p then acc := Fail_edge (u, v) :: !acc) edges;
  schedule ~n:(Graph.n g) [ (round, List.rev !acc) ]

let adversarial_load ?(round = 1) ~n routing ~k =
  let loads = Routing.node_loads ~n routing in
  let order = Array.init n (fun v -> v) in
  (* heaviest first, ties by smaller id: deterministic adversary *)
  Array.sort (fun a b -> if loads.(a) <> loads.(b) then compare loads.(b) loads.(a) else compare a b) order;
  let acc = ref [] in
  let taken = ref 0 in
  Array.iter
    (fun v ->
      if !taken < k && loads.(v) > 0 then begin
        acc := Fail_node v :: !acc;
        incr taken
      end)
    order;
  schedule ~n [ (round, List.rev !acc) ]

let targeted_edges ?(round = 1) ~n edges =
  schedule ~n [ (round, List.map (fun (u, v) -> Fail_edge (u, v)) edges) ]

let merge a b =
  if a.n <> b.n then invalid_arg "Fault_plan.merge: node counts differ";
  schedule ~n:a.n (a.events @ b.events)

let events t = t.events

let n t = t.n

let is_empty t = t.events = []

let last_round t = List.fold_left (fun acc (r, _) -> max acc r) 0 t.events

let count pred t =
  List.fold_left
    (fun acc (_, fs) -> acc + List.length (List.filter pred fs))
    0 t.events

let node_faults t = count (function Fail_node _ -> true | Fail_edge _ -> false) t

let edge_faults t = count (function Fail_edge _ -> true | Fail_node _ -> false) t

let failed_nodes t =
  let dead = Array.make t.n false in
  List.iter
    (fun (_, fs) ->
      List.iter (function Fail_node v -> dead.(v) <- true | Fail_edge _ -> ()) fs)
    t.events;
  dead

let survivor g t =
  if Graph.n g <> t.n then invalid_arg "Fault_plan.survivor: node counts differ";
  let h = Graph.copy g in
  List.iter
    (fun (_, fs) ->
      List.iter
        (function
          | Fail_node v -> ignore (Graph.isolate h v)
          | Fail_edge (u, v) -> ignore (Graph.remove_edge h u v))
        fs)
    t.events;
  h
