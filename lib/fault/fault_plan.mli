(** Deterministic fault plans: which nodes and edges fail, and when.

    The paper motivates DC-spanners against fault-tolerant spanners
    (Figure 1, {!Vft_example}): VFT constructions survive deletions but blow
    up congestion.  This module supplies the damage side of that comparison —
    reproducible failure scenarios that {!Fault_sim} plays out against a
    routing and {!Repair} heals a spanner from.

    A plan is a schedule of fault events over simulation rounds (rounds are
    1-based; round [r] faults strike {e before} any packet is forwarded in
    round [r]).  Every randomized constructor draws from an explicit
    {!Prng.t}, so a plan — and therefore an entire degraded-mode experiment —
    is reproducible from its seed (the determinism contract of HACKING.md).
    Faults are monotone: the network only degrades, nothing heals mid-run. *)

type fault =
  | Fail_node of int  (** the node loses every incident link *)
  | Fail_edge of int * int  (** normalized [(u, v)] with [u < v] *)

type t
(** A fault plan over a graph on [n] nodes: per-round fault lists, sorted by
    round, each round's faults sorted and deduplicated (canonical, so
    structural equality means plan equality). *)

val empty : int -> t
(** The no-fault plan on [n] nodes. *)

val schedule : n:int -> (int * fault list) list -> t
(** Build a plan from explicit [(round, faults)] pairs.  Rounds must be
    [>= 1]; node ids and edge endpoints must lie in [0 .. n-1]; self-loop
    edges are rejected.  Duplicate rounds are merged, edges normalized,
    duplicate faults dropped.  Raises [Invalid_argument] on violations. *)

val uniform_nodes : ?round:int -> Prng.t -> Graph.t -> p:float -> t
(** Every node fails independently with probability [p] at [round]
    (default 1).  Nodes are scanned in index order, one PRNG draw each, so
    the plan is a pure function of the seed. *)

val uniform_edges : ?round:int -> Prng.t -> Graph.t -> p:float -> t
(** Every edge fails independently with probability [p] at [round]
    (default 1).  Edges are scanned in normalized sorted order. *)

val adversarial_load : ?round:int -> n:int -> Routing.routing -> k:int -> t
(** Kill the [k] most-loaded nodes of the routing (ties broken by smaller
    id) — the adversary that aims at exactly the hot spots the congestion
    stretch is supposed to keep cool.  Nodes with zero load are never
    targeted, so fewer than [k] faults may result. *)

val targeted_edges : ?round:int -> n:int -> (int * int) list -> t
(** Kill exactly the given edges — e.g. the surviving matching edges of the
    Figure 1 VFT spanner ({!Vft_example.kept}), the attack the paper's
    congestion argument is about. *)

val merge : t -> t -> t
(** Union of two plans over the same node count. *)

val events : t -> (int * fault list) list
(** The canonical schedule: rounds ascending, faults sorted within a round. *)

val n : t -> int
(** Node count the plan applies to. *)

val is_empty : t -> bool

val last_round : t -> int
(** Round of the final event ([0] for the empty plan). *)

val node_faults : t -> int
(** Total number of node-failure events. *)

val edge_faults : t -> int
(** Total number of edge-failure events. *)

val failed_nodes : t -> bool array
(** [failed_nodes plan] marks every node that fails at {e some} round. *)

val survivor : Graph.t -> t -> Graph.t
(** The graph after the whole plan has struck: a copy of [g] with every
    failed node isolated and every failed edge removed.  This is the
    survivor network that {!Repair} heals within and degraded routings must
    live in. *)
